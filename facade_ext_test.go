package xsact

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestComparisonFormats(t *testing.T) {
	doc, _ := ParseString(demoDoc)
	results, _ := doc.Search("tomtom")
	cmp, err := Compare(results, CompareOptions{SizeBound: 5})
	if err != nil {
		t.Fatal(err)
	}
	md := cmp.Markdown()
	if !strings.HasPrefix(md, "| feature |") {
		t.Fatalf("markdown = %q...", md[:40])
	}
	records, err := csv.NewReader(strings.NewReader(cmp.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not reparse: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("CSV records = %d", len(records))
	}
}

func TestSearchRankedFacade(t *testing.T) {
	doc, _ := ParseString(demoDoc)
	results, scores, err := doc.SearchRanked("tomtom compact")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scores) || len(results) == 0 {
		t.Fatalf("results/scores = %d/%d", len(results), len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1] < scores[i] {
			t.Fatal("scores not descending")
		}
	}
	// Ranked results are usable downstream.
	if len(results) >= 2 {
		if _, err := Compare(results[:2], CompareOptions{SizeBound: 4}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchCleanedFacade(t *testing.T) {
	doc, _ := ParseString(demoDoc)
	results, cleaned, err := doc.SearchCleaned("tomtim")
	if err != nil {
		t.Fatalf("err = %v (cleaned %v)", err, cleaned)
	}
	if cleaned[0] != "tomtom" {
		t.Fatalf("cleaned = %v", cleaned)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestCompareInteresting(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareInteresting(results[:3], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DoD <= 0 {
		t.Fatalf("DoD = %d", cmp.DoD)
	}
	if len(cmp.Labels) != 3 {
		t.Fatalf("labels = %v", cmp.Labels)
	}
	if !strings.Contains(cmp.Text(), "review:pro") {
		t.Fatalf("table missing pro row:\n%s", cmp.Text())
	}
	// Error paths.
	if _, err := CompareInteresting(results[:1], CompareOptions{}); err == nil {
		t.Fatal("single result should error")
	}
	other, _ := BuiltinDataset("reviews", 2)
	otherResults, _ := other.Search("tomtom gps")
	if _, err := CompareInteresting([]*Result{results[0], otherResults[0]}, CompareOptions{}); err == nil {
		t.Fatal("cross-document comparison should error")
	}
}

func TestLibraryRouting(t *testing.T) {
	lib := NewLibrary()
	for _, name := range []string{"reviews", "retailer", "movies"} {
		doc, err := BuiltinDataset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		lib.Add(name, doc)
	}
	if got := lib.Names(); len(got) != 3 || got[0] != "reviews" {
		t.Fatalf("Names = %v", got)
	}
	cases := map[string]string{
		"tomtom gps":     "reviews",
		"rain jackets":   "retailer",
		"horror vampire": "movies",
	}
	for query, want := range cases {
		name, results, err := lib.Search(query)
		if err != nil {
			t.Fatalf("%q: %v", query, err)
		}
		if name != want {
			t.Errorf("Search(%q) routed to %q, want %q", query, name, want)
		}
		if len(results) == 0 {
			t.Errorf("Search(%q) returned no results", query)
		}
	}
	if _, _, err := lib.Search("xyzzyplugh"); err == nil {
		t.Fatal("hopeless query should error")
	}
}

func TestLibraryAddReplaces(t *testing.T) {
	lib := NewLibrary()
	a, _ := ParseString(`<r><x>alpha</x><x>alpha2</x></r>`)
	b, _ := ParseString(`<r><y>beta</y><y>beta2</y></r>`)
	lib.Add("one", a)
	lib.Add("one", b) // replace
	if len(lib.Names()) != 1 {
		t.Fatalf("Names = %v", lib.Names())
	}
	if _, _, err := lib.Search("beta"); err != nil {
		t.Fatalf("replacement not in effect: %v", err)
	}
}

func TestSearchPageFacade(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := doc.Search("product")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("corpus too small for pagination test: %d results", len(full))
	}
	var got []*Result
	for off := 0; ; off += 3 {
		page, total, err := doc.SearchPage("product", 3, off)
		if err != nil {
			t.Fatal(err)
		}
		if total != len(full) {
			t.Fatalf("total = %d, want %d", total, len(full))
		}
		if len(page) == 0 {
			break
		}
		got = append(got, page...)
	}
	if len(got) != len(full) {
		t.Fatalf("concatenated %d results, want %d", len(got), len(full))
	}
	for i := range full {
		if got[i].res.Node != full[i].res.Node {
			t.Fatalf("page concat diverges at %d: %q vs %q", i, got[i].Label, full[i].Label)
		}
	}
	// Out-of-range offset: empty page, not an error.
	page, total, err := doc.SearchPage("product", 3, len(full)+10)
	if err != nil || len(page) != 0 || total != len(full) {
		t.Fatalf("out-of-range page = %d results, total %d, err %v", len(page), total, err)
	}
}

func TestSearchRankedPageFacade(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	fullResults, fullScores, err := doc.SearchRanked("product review")
	if err != nil {
		t.Fatal(err)
	}
	if len(fullResults) < 4 {
		t.Fatalf("corpus too small for pagination test: %d results", len(fullResults))
	}
	var got []*Result
	var scores []float64
	for off := 0; ; off += 3 {
		page, pageScores, total, err := doc.SearchRankedPage("product review", 3, off)
		if err != nil {
			t.Fatal(err)
		}
		if total != len(fullResults) {
			t.Fatalf("total = %d, want %d", total, len(fullResults))
		}
		if len(page) == 0 {
			break
		}
		got = append(got, page...)
		scores = append(scores, pageScores...)
	}
	if len(got) != len(fullResults) {
		t.Fatalf("concatenated %d results, want %d", len(got), len(fullResults))
	}
	for i := range fullResults {
		if got[i].res.Node != fullResults[i].res.Node || scores[i] != fullScores[i] {
			t.Fatalf("ranked page concat diverges at %d: %q (%.4f) vs %q (%.4f)",
				i, got[i].Label, scores[i], fullResults[i].Label, fullScores[i])
		}
	}
}

// TestSearchRankedPageOptsApprox: the options form with Approx set
// serves the identical page and scores; only the total may come back
// as TotalUnknown.
func TestSearchRankedPageOptsApprox(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, exactScores, exactTotal, err := doc.SearchRankedPage("product review", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx, approxScores, approxTotal, err := doc.SearchRankedPageOpts("product review",
		RankedPageOptions{Limit: 3, Approx: true})
	if err != nil {
		t.Fatal(err)
	}
	if approxTotal != exactTotal && approxTotal != TotalUnknown {
		t.Fatalf("approx total = %d, want %d or TotalUnknown", approxTotal, exactTotal)
	}
	if len(approx) != len(exact) || len(approxScores) != len(exactScores) {
		t.Fatalf("approx page shape %d/%d, exact %d/%d",
			len(approx), len(approxScores), len(exact), len(exactScores))
	}
	for i := range exact {
		if approx[i].res.Node != exact[i].res.Node || approxScores[i] != exactScores[i] {
			t.Fatalf("approx page diverges at %d: %q (%.4f) vs %q (%.4f)",
				i, approx[i].Label, approxScores[i], exact[i].Label, exactScores[i])
		}
	}

	// The options form without Approx matches the positional form.
	plain, plainScores, plainTotal, err := doc.SearchRankedPageOpts("product review",
		RankedPageOptions{Limit: 3})
	if err != nil || plainTotal != exactTotal || len(plain) != len(exact) {
		t.Fatalf("exact opts form: %d results, total %d, err %v", len(plain), plainTotal, err)
	}
	for i := range exact {
		if plainScores[i] != exactScores[i] {
			t.Fatalf("exact opts form score %d = %v, want %v", i, plainScores[i], exactScores[i])
		}
	}
}
