package xsact

import (
	"io"
	"strings"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/xmltree"
)

// SaveSnapshot writes the document's derived state — inverted index,
// inferred schema, and corpus metadata — so a later process can reopen
// the same XML with LoadSnapshot and skip index construction and
// schema inference entirely. A document with live updates is written
// in the journaled live layout: the base snapshot plus the pending
// writes, replayed on load.
func (d *Document) SaveSnapshot(w io.Writer) error {
	return persist.Save(w, d.eng, persist.Meta{})
}

// SnapshotFormatCompact selects the compact v4 layout for
// SaveSnapshotFormat: symbol table plus varint-compressed postings in
// self-describing checksummed sections. A file in this layout is
// mmap-ed by persist.LoadFile and served without materializing the
// postings; LoadSnapshot reads it through the generic path, decoding
// blocks lazily as queries touch them.
const SnapshotFormatCompact = persist.CompactFormatVersion

// SaveSnapshotFormat is SaveSnapshot with an explicit layout: 0 writes
// the automatic legacy layout (exactly SaveSnapshot), and
// SnapshotFormatCompact the compact sectioned one. A document with
// pending (uncompacted) live writes falls back to the journaled legacy
// layout even when the compact one is requested — the journal must
// travel, and the compact layout carries none by design.
func (d *Document) SaveSnapshotFormat(w io.Writer, format int) error {
	return persist.SaveFormat(w, d.eng, persist.Meta{}, format)
}

// LoadSnapshot parses the XML document and attaches a snapshot written
// by SaveSnapshot over the same XML. It fails when the snapshot is
// corrupt or from an old format version; callers should fall back to
// Parse, which rebuilds. An immutable snapshot is additionally
// rejected when it was taken from a different document (corpus
// fingerprint check). A live snapshot instead carries its own base
// document — the caller's XML cannot know about applied writes — so
// its identity rests on the snapshot's internal checksums and
// fingerprint, the xml argument is superseded, and the returned
// Document resumes with every pending write intact.
func LoadSnapshot(xml, snapshot io.Reader) (*Document, error) {
	root, err := xmltree.Parse(xml)
	if err != nil {
		return nil, err
	}
	eng, _, err := persist.Load(snapshot, root, engine.Config{})
	if err != nil {
		return nil, err
	}
	return &Document{root: eng.Root(), eng: eng}, nil
}

// LoadSnapshotString is LoadSnapshot over an in-memory document.
func LoadSnapshotString(xml string, snapshot io.Reader) (*Document, error) {
	return LoadSnapshot(strings.NewReader(xml), snapshot)
}
