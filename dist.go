package xsact

import (
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/xmltree"
)

// This file is the facade over distributed serving (internal/dist): a
// Document whose queries fan out over HTTP to a cluster of shard
// servers (xsactd -shard-server) and whose writes are broadcast under
// the cluster's epoch protocol. Search results, ranking scores, tie
// order, and paging envelopes are bit-identical to a single-process
// Document built with Options.Shards = number of legs.

// ClusterOptions configures a distributed Document.
type ClusterOptions struct {
	// AutoCompactEvery triggers a background cluster-wide compaction
	// once that many uncompacted writes are pending; 0 leaves
	// compaction to explicit Compact calls.
	AutoCompactEvery int
	// Timeout bounds each leg request (default 5s); Retries the extra
	// attempts after a transport failure (default 2).
	Timeout time.Duration
	Retries int
	// Hedge, when > 0, launches a duplicate leg read if the first has
	// not answered within this delay; the first response wins.
	Hedge time.Duration
	// AllowPartial lets ranked queries degrade to flagged partial pages
	// (total reported unknown) when a leg stays unreachable, instead of
	// failing. Document-order search stays strict either way.
	AllowPartial bool
	// Replicas groups the endpoint list into consecutive replica sets
	// of this size (default 1): with Replicas = 2 the first two
	// endpoints serve shard 0, the next two shard 1, and so on. Reads
	// spread round-robin across a group's replicas and fail over on
	// per-replica errors; writes reach every replica.
	Replicas int
	// MaxInflight caps concurrently running ranked queries at the
	// coordinator; excess queries wait in a bounded queue (MaxQueue
	// deep, defaulting to MaxInflight) and beyond that are shed with
	// ErrOverloaded. 0 disables admission control.
	MaxInflight int
	MaxQueue    int
}

// ErrOverloaded is returned by ranked queries the coordinator's
// admission control shed; retry after a short delay.
var ErrOverloaded = dist.ErrOverloaded

// FromCluster connects a corpus to a running shard cluster: root must
// be the same document every shard server bootstrapped the named
// corpus from, and endpoints the legs' base URLs in shard order
// (grouped into replica sets when ClusterOptions.Replicas > 1). The
// returned Document serves the full API — search, ranking, compare,
// live writes — through the coordinator.
func FromCluster(root *xmltree.Node, endpoints []string, corpus string, opts ClusterOptions) (*Document, error) {
	groups, err := dist.GroupEndpoints(endpoints, opts.Replicas)
	if err != nil {
		return nil, err
	}
	co, err := dist.DialReplicas(groups, corpus, root, dist.Config{
		Timeout: opts.Timeout, Retries: opts.Retries,
		Hedge: opts.Hedge, AllowPartial: opts.AllowPartial,
		MaxInflight: opts.MaxInflight, MaxQueue: opts.MaxQueue,
	})
	if err != nil {
		return nil, err
	}
	return &Document{
		root: root,
		eng:  engine.FromDist(co, engine.Config{AutoCompactThreshold: opts.AutoCompactEvery}),
	}, nil
}
