package xsact

import (
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/xmltree"
)

// This file is the facade over distributed serving (internal/dist): a
// Document whose queries fan out over HTTP to a cluster of shard
// servers (xsactd -shard-server) and whose writes are broadcast under
// the cluster's epoch protocol. Search results, ranking scores, tie
// order, and paging envelopes are bit-identical to a single-process
// Document built with Options.Shards = number of legs.

// ClusterOptions configures a distributed Document.
type ClusterOptions struct {
	// AutoCompactEvery triggers a background cluster-wide compaction
	// once that many uncompacted writes are pending; 0 leaves
	// compaction to explicit Compact calls.
	AutoCompactEvery int
	// Timeout bounds each leg request (default 5s); Retries the extra
	// attempts after a transport failure (default 2).
	Timeout time.Duration
	Retries int
	// Hedge, when > 0, launches a duplicate leg read if the first has
	// not answered within this delay; the first response wins.
	Hedge time.Duration
	// AllowPartial lets ranked queries degrade to flagged partial pages
	// (total reported unknown) when a leg stays unreachable, instead of
	// failing. Document-order search stays strict either way.
	AllowPartial bool
}

// FromCluster connects a corpus to a running shard cluster: root must
// be the same document every shard server bootstrapped the named
// corpus from, and endpoints the legs' base URLs in shard order. The
// returned Document serves the full API — search, ranking, compare,
// live writes — through the coordinator.
func FromCluster(root *xmltree.Node, endpoints []string, corpus string, opts ClusterOptions) (*Document, error) {
	co, err := dist.Dial(endpoints, corpus, root, dist.Config{
		Timeout: opts.Timeout, Retries: opts.Retries,
		Hedge: opts.Hedge, AllowPartial: opts.AllowPartial,
	})
	if err != nil {
		return nil, err
	}
	return &Document{
		root: root,
		eng:  engine.FromDist(co, engine.Config{AutoCompactThreshold: opts.AutoCompactEvery}),
	}, nil
}
