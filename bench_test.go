package xsact

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus the ablations listed in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Figure 4(a) quality numbers are emitted as the custom metric "DoD";
// Figure 4(b) is the benchmark's own ns/op. Absolute times will not
// match the paper's 2010 hardware; the shape (single-swap usually
// cheaper per query, multi-swap achieving >= DoD) is the reproduction
// target. cmd/xsact-bench prints the same data as paper-style tables.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/slca"
	"repro/internal/snippet"
	"repro/internal/xseek"
)

var benchSetup struct {
	once    sync.Once
	eng     *xseek.Engine
	queries []string
	stats   [][]*feature.Stats // per query
}

func setupMovies(b *testing.B) {
	b.Helper()
	benchSetup.once.Do(func() {
		root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 300})
		benchSetup.eng = xseek.New(root)
		benchSetup.queries = dataset.MovieQueries()
		for _, q := range benchSetup.queries {
			st, err := experiment.ResultStats(benchSetup.eng, q)
			if err != nil {
				panic(fmt.Sprintf("bench setup: %v", err))
			}
			benchSetup.stats = append(benchSetup.stats, st)
		}
	})
}

// BenchmarkFigure4aQuality regenerates Figure 4(a): per query, the DoD
// each algorithm achieves (custom metric "DoD"); wall time per
// generation is the benchmark time.
func BenchmarkFigure4aQuality(b *testing.B) {
	setupMovies(b)
	opts := core.Options{SizeBound: 10, Threshold: 0.10}
	for qi, q := range benchSetup.queries {
		for _, alg := range []core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap} {
			b.Run(fmt.Sprintf("QM%d/%s", qi+1, alg), func(b *testing.B) {
				stats := benchSetup.stats[qi]
				var dod int
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dfss := core.Generate(alg, stats, opts)
					dod = core.TotalDoD(dfss, opts.Threshold)
				}
				b.ReportMetric(float64(dod), "DoD")
				b.ReportMetric(float64(len(stats)), "results")
				_ = q
			})
		}
	}
}

// BenchmarkFigure4bTime regenerates Figure 4(b): end-to-end DFS
// generation latency per query per algorithm (search and extraction
// excluded, as in the paper's "processing time" of the DFS modules).
func BenchmarkFigure4bTime(b *testing.B) {
	setupMovies(b)
	opts := core.Options{SizeBound: 10, Threshold: 0.10}
	for qi := range benchSetup.queries {
		for _, alg := range []core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap} {
			b.Run(fmt.Sprintf("QM%d/%s", qi+1, alg), func(b *testing.B) {
				stats := benchSetup.stats[qi]
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = core.Generate(alg, stats, opts)
				}
			})
		}
	}
}

// BenchmarkFigure1To2SnippetGap regenerates the qualitative Figure 1 →
// Figure 2 claim on the Product Reviews corpus: snippet DoD vs XSACT
// DoD on the {tomtom, gps} walkthrough, reported as custom metrics.
func BenchmarkFigure1To2SnippetGap(b *testing.B) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		b.Fatal(err)
	}
	results, err := doc.Search("tomtom gps")
	if err != nil {
		b.Fatal(err)
	}
	if len(results) > 3 {
		results = results[:3]
	}
	var snip, multi int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snip, err = SnippetDoD(results, "tomtom gps", 8)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := Compare(results, CompareOptions{SizeBound: 8})
		if err != nil {
			b.Fatal(err)
		}
		multi = cmp.DoD
	}
	b.ReportMetric(float64(snip), "snippetDoD")
	b.ReportMetric(float64(multi), "xsactDoD")
}

// BenchmarkAblationSLCA compares the Indexed Lookup Eager SLCA
// algorithm against the naive scan (DESIGN.md ablation) on the movie
// corpus's densest benchmark query.
func BenchmarkAblationSLCA(b *testing.B) {
	setupMovies(b)
	idx := benchSetup.eng.Index()
	terms := index.TokenizeQuery("thriller detective")
	lists, _, err := idx.QueryLists(terms)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = slca.IndexedLookupEager(lists)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = slca.Naive(lists)
		}
	})
}

// BenchmarkAblationThreshold sweeps the differentiation threshold x on
// QM1 (DESIGN.md ablation), reporting DoD at each point.
func BenchmarkAblationThreshold(b *testing.B) {
	setupMovies(b)
	stats := benchSetup.stats[0]
	for _, x := range []float64{0.05, 0.10, 0.25, 0.50} {
		b.Run(fmt.Sprintf("x=%g", x), func(b *testing.B) {
			var dod int
			for i := 0; i < b.N; i++ {
				dfss := core.MultiSwap(stats, core.Options{SizeBound: 10, Threshold: x})
				dod = core.TotalDoD(dfss, x)
			}
			b.ReportMetric(float64(dod), "DoD")
		})
	}
}

// BenchmarkAblationSizeBound sweeps the size bound L on QM1 (DESIGN.md
// ablation), reporting DoD at each point.
func BenchmarkAblationSizeBound(b *testing.B) {
	setupMovies(b)
	stats := benchSetup.stats[0]
	for _, L := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("L=%d", L), func(b *testing.B) {
			var dod int
			for i := 0; i < b.N; i++ {
				dfss := core.MultiSwap(stats, core.Options{SizeBound: L, Threshold: 0.10})
				dod = core.TotalDoD(dfss, 0.10)
			}
			b.ReportMetric(float64(dod), "DoD")
		})
	}
}

// BenchmarkAblationAnneal compares simulated annealing (the "better
// algorithms" probe) against multi-swap on QM2: DoD as custom metrics,
// time as the benchmark measurement. Annealing needs orders of
// magnitude more work to approach the DP-based fixpoint.
func BenchmarkAblationAnneal(b *testing.B) {
	setupMovies(b)
	stats := benchSetup.stats[1] // QM2
	opts := core.Options{SizeBound: 10, Threshold: 0.10}
	b.Run("multi-swap", func(b *testing.B) {
		var dod int
		for i := 0; i < b.N; i++ {
			dod = core.TotalDoD(core.MultiSwap(stats, opts), opts.Threshold)
		}
		b.ReportMetric(float64(dod), "DoD")
	})
	b.Run("anneal-10k", func(b *testing.B) {
		var dod int
		for i := 0; i < b.N; i++ {
			dfss := core.Anneal(stats, core.AnnealOptions{Options: opts, Seed: 1, Steps: 10000})
			dod = core.TotalDoD(dfss, opts.Threshold)
		}
		b.ReportMetric(float64(dod), "DoD")
	})
}

// BenchmarkPipelineEndToEnd measures the full demo path — search,
// entity identification, feature extraction, DFS generation, table
// rendering — for one interactive comparison, the latency a demo user
// experiences per click.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := doc.Search("tomtom gps")
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := Compare(results[:2], CompareOptions{SizeBound: 8})
		if err != nil {
			b.Fatal(err)
		}
		_ = cmp.Text()
	}
}

// BenchmarkCompareCached contrasts the first (cold) Compare over a
// result set against repeated (warm) Compares of the same results
// through the engine's feature-stats and DFS caches. The warm path
// must be at least 2× faster — it skips re-extraction and
// re-optimization entirely, paying only for table assembly.
func BenchmarkCompareCached(b *testing.B) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := CompareOptions{SizeBound: 8}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Fresh serving caches over the shared index: every Compare
			// is a first Compare.
			fresh := &Document{root: doc.root, eng: engine.FromXseek(doc.eng.Xseek(), engine.Config{})}
			results, err := fresh.Search("tomtom gps")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := Compare(results[:2], opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		results, err := doc.Search("tomtom gps")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Compare(results[:2], opts); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Compare(results[:2], opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineBuildParallel contrasts serial engine construction
// (index build + schema inference in one walk) against the fanned-out
// path used by engine.New — the startup cost of a dataset.
func BenchmarkEngineBuildParallel(b *testing.B) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 300})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = xseek.New(root)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = xseek.NewParallel(root)
		}
	})
}

// BenchmarkSnippetGeneration measures the eXtract-style baseline
// snippet generator on one product result.
func BenchmarkSnippetGeneration(b *testing.B) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		b.Fatal(err)
	}
	results, err := doc.Search("tomtom gps")
	if err != nil {
		b.Fatal(err)
	}
	stats := feature.Extract(results[0].res.Node, doc.eng.Schema(), results[0].Label)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snippet.Generate(stats, snippet.Options{Size: 8, Query: "tomtom gps"})
	}
}

// BenchmarkSearchRankedTopK contrasts ranking the full result list
// (sort all N) against the paginated top-k path (bounded heap) at
// Limit=10, on the largest built-in corpus. The query cache is warmed
// first so both paths measure ranking, not SLCA; the win is the sort
// the heap never performs.
func BenchmarkSearchRankedTopK(b *testing.B) {
	doc := FromTree(dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 2000}))
	results, _, err := doc.SearchRanked("movie")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := doc.SearchRanked("movie"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(results)), "results")
	})
	b.Run("top-10-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := doc.SearchRankedPage("movie", 10, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(results)), "results")
	})
}

// BenchmarkShardedBuild contrasts engine construction layouts on a
// multi-entity corpus: one serially-built index, the fanned-out
// monolithic build (engine.New's default), and the sharded build —
// K per-shard indexes constructed concurrently, each over its own
// contiguous run of entity subtrees.
func BenchmarkShardedBuild(b *testing.B) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 600})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = xseek.New(root)
		}
	})
	b.Run("parallel-monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = xseek.NewParallel(root)
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = shard.Build(root, k)
			}
		})
	}
}

// BenchmarkShardedSearch measures cold query execution (SLCA + entity
// mapping, no serving-layer cache) against the same corpus with the
// monolithic and the fan-out/merge executors, plus the ranked top-10
// page path that exercises the K-way heap merge.
func BenchmarkShardedSearch(b *testing.B) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 600})
	queries := dataset.MovieQueries()
	mono := xseek.NewParallel(root)
	run := func(b *testing.B, search func(q string) error) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := search(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("monolithic", func(b *testing.B) {
		run(b, func(q string) error { _, err := mono.Search(q); return err })
	})
	for _, k := range []int{2, 4, 8} {
		sharded := shard.Build(root, k)
		b.Run(fmt.Sprintf("shards-%d", k), func(b *testing.B) {
			run(b, func(q string) error { _, err := sharded.Search(q); return err })
		})
	}
	top10 := xseek.SearchOptions{Limit: 10}
	b.Run("monolithic-ranked-top10", func(b *testing.B) {
		run(b, func(q string) error {
			rs, err := mono.Search(q)
			if err != nil {
				return err
			}
			_ = mono.RankPage(rs, q, top10)
			return nil
		})
	})
	sharded := shard.Build(root, 4)
	b.Run("shards-4-ranked-top10", func(b *testing.B) {
		run(b, func(q string) error {
			rs, err := sharded.Search(q)
			if err != nil {
				return err
			}
			_ = sharded.RankPage(rs, q, top10)
			return nil
		})
	})
}
