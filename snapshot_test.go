package xsact

import (
	"bytes"
	"strings"
	"testing"
)

func TestDocumentSnapshotRoundTrip(t *testing.T) {
	fresh, err := ParseString(demoDoc)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := fresh.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotString(demoDoc, &snap)
	if err != nil {
		t.Fatal(err)
	}

	want, err := fresh.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("result %d: %q vs %q", i, got[i].Label, want[i].Label)
		}
	}

	wantCmp, err := Compare(want, CompareOptions{SizeBound: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotCmp, err := Compare(got, CompareOptions{SizeBound: 6})
	if err != nil {
		t.Fatal(err)
	}
	if gotCmp.Text() != wantCmp.Text() || gotCmp.DoD != wantCmp.DoD {
		t.Fatalf("comparison differs after snapshot load:\n%s\nvs\n%s", gotCmp.Text(), wantCmp.Text())
	}
}

// TestDocumentSnapshotFormatCompact: the compact layout round-trips
// through the facade with identical answers.
func TestDocumentSnapshotFormatCompact(t *testing.T) {
	fresh, err := ParseString(demoDoc)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := fresh.SaveSnapshotFormat(&snap, SnapshotFormatCompact); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(snap.String(), "XSACTSNAP 4\n") {
		t.Fatalf("compact snapshot header = %q", snap.String()[:12])
	}
	loaded, err := LoadSnapshotString(demoDoc, &snap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("result %d: %q vs %q", i, got[i].Label, want[i].Label)
		}
	}
}

func TestLoadSnapshotRejectsMismatch(t *testing.T) {
	doc, err := ParseString(demoDoc)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := doc.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// A snapshot of one document must not attach to another.
	other := `<library><book><title>go</title></book><book><title>xml</title></book></library>`
	if _, err := LoadSnapshotString(other, bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("snapshot attached to a different document")
	}
	// Corrupt snapshots fail instead of producing a broken engine.
	if _, err := LoadSnapshotString(demoDoc, strings.NewReader("garbage")); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
}
