package xsact

import (
	"fmt"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// This file is the facade over the live write path (internal/update):
// incremental entity ingest and deletion on an already-built Document,
// with reads served from an epoch-swapped composite of the immutable
// base plus the pending delta and tombstones. Search results after any
// sequence of writes are indistinguishable from re-parsing the updated
// corpus from scratch — at a small fraction of the cost.

// AddEntity parses an XML fragment (one element subtree) and appends
// it as a new top-level entity of the live corpus. The entity is
// searchable as soon as AddEntity returns. It returns the entity's ID
// string — the handle RemoveEntity and the HTTP API accept.
func (d *Document) AddEntity(xmlFragment string) (string, error) {
	n, err := xmltree.ParseString(xmlFragment)
	if err != nil {
		return "", fmt.Errorf("xsact: add entity: %w", err)
	}
	id, err := d.eng.AddEntity(n)
	if err != nil {
		return "", err
	}
	return id.String(), nil
}

// RemoveEntity removes the top-level entity with the given ID string
// (as reported by AddEntity, Result.Describe listings, or the JSON
// API's id field) from the live corpus. The entity stops matching
// queries immediately; its index postings are masked by a tombstone
// until the next compaction drops them physically.
func (d *Document) RemoveEntity(id string) error {
	did, err := dewey.Parse(id)
	if err != nil {
		return fmt.Errorf("xsact: remove entity %q: %w", id, err)
	}
	return d.eng.RemoveEntity(did)
}

// Compact folds pending additions and removals back into the
// document's base index under an atomic epoch swap — concurrent
// searches are never blocked. Compaction happens automatically when
// Options.AutoCompactEvery is set; calling it explicitly is useful
// before snapshotting or after a burst of removals.
func (d *Document) Compact() error { return d.eng.Compact() }

// PendingUpdates reports the write backlog awaiting compaction: how
// many added entities sit in the delta index and how many removals are
// masked by tombstones. Both are zero for a never-written document and
// right after a compaction.
func (d *Document) PendingUpdates() (deltaEntities, tombstones int) {
	if live := d.eng.Live(); live != nil {
		return live.Pending()
	}
	return 0, 0
}
