package xsact

import (
	"bytes"
	"testing"
)

// TestFacadeShardedEquivalence: documents built with Options.Shards
// must answer every facade search exactly like the unsharded document
// — results, ranking scores, and paging envelopes.
func TestFacadeShardedEquivalence(t *testing.T) {
	mono, err := BuiltinDataset("reviews", 21)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"tomtom gps", "easy", "camera zoom", "garmin", "nosuchterm"}
	for _, k := range []int{1, 2, 8} {
		sharded, err := BuiltinDatasetWith("reviews", 21, Options{Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		if k > 1 && sharded.Shards() != k {
			t.Fatalf("Shards() = %d, want %d", sharded.Shards(), k)
		}
		for _, q := range queries {
			want, errW := mono.Search(q)
			got, errG := sharded.Search(q)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("K=%d %q: err %v vs %v", k, q, errG, errW)
			}
			if len(got) != len(want) {
				t.Fatalf("K=%d %q: %d results vs %d", k, q, len(got), len(want))
			}
			for i := range want {
				if got[i].Label != want[i].Label {
					t.Fatalf("K=%d %q result %d: %q vs %q", k, q, i, got[i].Label, want[i].Label)
				}
			}
			if errW != nil {
				continue
			}

			// Ranked paging: equality of every window plus the
			// concatenation invariant.
			fullR, fullScores, errW := mono.SearchRanked(q)
			if errW != nil {
				t.Fatal(errW)
			}
			var concat []string
			for off := 0; ; off += 3 {
				rs, scores, total, err := sharded.SearchRankedPage(q, 3, off)
				if err != nil {
					t.Fatalf("K=%d %q: %v", k, q, err)
				}
				if total != len(fullR) {
					t.Fatalf("K=%d %q: total %d, want %d", k, q, total, len(fullR))
				}
				for i, r := range rs {
					if r.Label != fullR[off+i].Label || scores[i] != fullScores[off+i] {
						t.Fatalf("K=%d %q page offset %d entry %d: %q@%v vs %q@%v",
							k, q, off, i, r.Label, scores[i], fullR[off+i].Label, fullScores[off+i])
					}
					concat = append(concat, r.Label)
				}
				if off+len(rs) >= total {
					break
				}
			}
			if len(concat) != len(fullR) {
				t.Fatalf("K=%d %q: concatenated pages cover %d of %d results", k, q, len(concat), len(fullR))
			}
		}
	}
}

// TestFacadeShardedCompare: the comparison pipeline (feature stats,
// DFS generation, tables) runs unchanged on sharded documents.
func TestFacadeShardedCompare(t *testing.T) {
	doc, err := BuiltinDatasetWith("reviews", 21, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := doc.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 2 {
		t.Fatalf("need ≥2 results, got %d", len(rs))
	}
	cmp, err := Compare(rs[:2], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DoD <= 0 || cmp.Text() == "" {
		t.Fatalf("comparison broken on sharded doc: DoD=%d", cmp.DoD)
	}

	mono, _ := BuiltinDataset("reviews", 21)
	monoRs, _ := mono.Search("tomtom gps")
	monoCmp, err := Compare(monoRs[:2], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Text() != monoCmp.Text() {
		t.Fatal("comparison table differs between sharded and monolithic documents")
	}
}

// TestFacadeShardedSnapshot: a sharded document snapshots through the
// facade and reloads as a sharded document with identical results.
func TestFacadeShardedSnapshot(t *testing.T) {
	const catalog = `<store><product><name>TomTom</name><pro>easy</pro></product>` +
		`<product><name>Garmin</name><pro>fast</pro></product>` +
		`<product><name>Nuvi</name><pro>easy</pro></product></store>`
	doc, err := ParseStringWith(catalog, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := doc.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshotString(catalog, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != 3 {
		t.Fatalf("reloaded document has %d shards, want 3", back.Shards())
	}
	want, _ := doc.Search("easy")
	got, err := back.Search("easy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results after reload, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("result %d: %q vs %q", i, got[i].Label, want[i].Label)
		}
	}
}

// TestLibraryWithShardedDocs: database selection must route queries
// over a mixed library of sharded and unsharded documents.
func TestLibraryWithShardedDocs(t *testing.T) {
	lib := NewLibrary()
	reviews, _ := BuiltinDatasetWith("reviews", 1, Options{Shards: 4})
	movies, _ := BuiltinDataset("movies", 1)
	lib.Add("reviews", reviews)
	lib.Add("movies", movies)
	name, rs, err := lib.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if name != "reviews" || len(rs) == 0 {
		t.Fatalf("routed to %q with %d results, want reviews", name, len(rs))
	}
	if _, _, err := lib.Search("zzzznope"); err == nil {
		t.Fatal("uncovered query should error")
	}
}
