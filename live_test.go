package xsact

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func liveFacadeXML(n int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		kind := []string{"gps", "radio", "solar"}[i%3]
		fmt.Fprintf(&b, "<product><name>unit%d</name><kind>%s</kind></product>", i, kind)
	}
	b.WriteString("</catalog>")
	return b.String()
}

// facadeFingerprint canonicalizes a document's full query behaviour:
// document-order results, ranked pages with exact score bits, paging
// envelopes, and the serialized corpus itself.
func facadeFingerprint(t *testing.T, d *Document, queries []string) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		rs, err := d.Search(q)
		fmt.Fprintf(&b, "q=%s err=%v n=%d\n", q, err, len(rs))
		for _, r := range rs {
			b.WriteString(r.Describe())
			b.WriteString("\n")
		}
		for _, limit := range []int{0, 2} {
			for _, offset := range []int{0, 1} {
				page, scores, total, err := d.SearchRankedPage(q, limit, offset)
				fmt.Fprintf(&b, "page l=%d o=%d err=%v total=%d\n", limit, offset, err, total)
				for i, r := range page {
					fmt.Fprintf(&b, "%016x %s\n", math.Float64bits(scores[i]), r.Describe())
				}
			}
		}
	}
	b.WriteString(d.XML())
	return b.String()
}

// TestFacadeLiveEquivalence is the end-to-end version of the update
// package's property test: after interleaved facade writes (through
// the caching engine layer), every query answer and the serialized
// corpus must be byte-identical to a from-scratch ParseWith of the
// same logical corpus — at K ∈ {1, 2, 8} shards.
func TestFacadeLiveEquivalence(t *testing.T) {
	queries := []string{"gps", "radio unit4", "solar", "unit1", "nothere"}
	for _, k := range []int{1, 2, 8} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			doc, err := ParseStringWith(liveFacadeXML(9), Options{Shards: k})
			if err != nil {
				t.Fatal(err)
			}

			// Mirror the logical corpus as XML fragments.
			frags := make([]string, 0, 12)
			for i := 0; i < 9; i++ {
				kind := []string{"gps", "radio", "solar"}[i%3]
				frags = append(frags, fmt.Sprintf("<product><name>unit%d</name><kind>%s</kind></product>", i, kind))
			}
			ids := make([]string, len(frags))
			for i := range ids {
				ids[i] = fmt.Sprint(i)
			}

			check := func(step string) {
				t.Helper()
				cold, err := ParseStringWith("<catalog>"+strings.Join(frags, "")+"</catalog>", Options{Shards: k})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := facadeFingerprint(t, doc, queries), facadeFingerprint(t, cold, queries); got != want {
					t.Fatalf("%s: live document diverges from cold parse:\nlive:\n%s\ncold:\n%s", step, got, want)
				}
			}

			add := func(frag string) {
				t.Helper()
				id, err := doc.AddEntity(frag)
				if err != nil {
					t.Fatal(err)
				}
				frags = append(frags, frag)
				ids = append(ids, id)
			}
			remove := func(i int) {
				t.Helper()
				if err := doc.RemoveEntity(ids[i]); err != nil {
					t.Fatal(err)
				}
				frags = append(frags[:i], frags[i+1:]...)
				ids = append(ids[:i], ids[i+1:]...)
			}

			add(`<product><name>fresh10</name><kind>gps</kind></product>`)
			check("after add")
			remove(2)
			check("after remove")
			add(`<product><name>fresh11</name><kind>radio</kind></product>`)
			remove(0)
			check("after mixed batch")
			if delta, tombs := doc.PendingUpdates(); delta == 0 && tombs == 0 {
				t.Fatal("no pending backlog before compaction")
			}
			if err := doc.Compact(); err != nil {
				t.Fatal(err)
			}
			// Compaction renumbers; refresh the handles positionally.
			for i := range ids {
				ids[i] = fmt.Sprint(i)
			}
			check("after compact")
			if delta, tombs := doc.PendingUpdates(); delta != 0 || tombs != 0 {
				t.Fatalf("backlog after compaction: %d/%d", delta, tombs)
			}
			remove(len(ids) - 1)
			check("after post-compaction remove")
		})
	}
}

// TestLiveSnapshotFacadeRoundTrip: a written document snapshots in the
// journaled layout and LoadSnapshot resumes it, pending writes intact.
func TestLiveSnapshotFacadeRoundTrip(t *testing.T) {
	doc, err := ParseString(liveFacadeXML(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AddEntity(`<product><name>fresh</name><kind>laser</kind></product>`); err != nil {
		t.Fatal(err)
	}
	if err := doc.RemoveEntity("1"); err != nil {
		t.Fatal(err)
	}
	var snap strings.Builder
	if err := doc.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// The XML argument is superseded by the snapshot's own base.
	loaded, err := LoadSnapshotString("<catalog/>", strings.NewReader(snap.String()))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"laser", "gps", "unit1"}
	if got, want := facadeFingerprint(t, loaded, queries), facadeFingerprint(t, doc, queries); got != want {
		t.Fatalf("snapshot round-trip diverges:\n%s\nvs\n%s", got, want)
	}
	if delta, tombs := loaded.PendingUpdates(); delta != 1 || tombs != 1 {
		t.Fatalf("pending backlog lost in round-trip: %d/%d", delta, tombs)
	}
}

// TestLiveRandomizedFacadeOps is a lighter random interleaving at the
// facade level (the update package holds the exhaustive property
// test), catching regressions in the cache layer's epoch handling.
func TestLiveRandomizedFacadeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doc, err := ParseString(liveFacadeXML(6))
	if err != nil {
		t.Fatal(err)
	}
	live := 6
	serial := 100
	for op := 0; op < 30; op++ {
		switch {
		case rng.Float64() < 0.5 || live <= 1:
			frag := fmt.Sprintf("<product><name>r%d</name><kind>gps</kind></product>", serial)
			serial++
			if _, err := doc.AddEntity(frag); err != nil {
				t.Fatal(err)
			}
			live++
		case rng.Float64() < 0.7:
			rs, err := doc.Search("gps")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) == 0 {
				t.Fatal("gps matched nothing despite gps entities present")
			}
		default:
			if err := doc.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Final sanity: search count equals the number of gps entities.
	if _, err := doc.Search("gps"); err != nil {
		t.Fatal(err)
	}
}
