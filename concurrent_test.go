package xsact

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSearchAndCompare drives one shared Document from many
// goroutines mixing Search, Compare, Snippet, and SnippetDoD — the
// serving pattern cmd/xsactd puts the facade under. Run with -race;
// the assertions also check cross-goroutine result coherence.
func TestConcurrentSearchAndCompare(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := doc.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) < 2 {
		t.Fatalf("need >= 2 results, got %d", len(baseline))
	}
	want, err := Compare(baseline[:2], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"tomtom gps", "garmin gps", "camera"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				q := queries[(g+iter)%len(queries)]
				results, err := doc.Search(q)
				if err != nil {
					errs <- fmt.Errorf("search %q: %w", q, err)
					return
				}
				if len(results) < 2 {
					continue
				}
				cmp, err := Compare(results[:2], CompareOptions{SizeBound: 8})
				if err != nil {
					errs <- fmt.Errorf("compare %q: %w", q, err)
					return
				}
				if cmp.Text() == "" {
					errs <- fmt.Errorf("compare %q: empty table", q)
					return
				}
				if q == "tomtom gps" && cmp.DoD != want.DoD {
					errs <- fmt.Errorf("compare %q: DoD %d, want %d", q, cmp.DoD, want.DoD)
					return
				}
				_ = results[0].Snippet(q, 4)
				if _, err := SnippetDoD(results[:2], q, 4); err != nil {
					errs <- fmt.Errorf("snippet DoD %q: %w", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCompareDoesNotReextract asserts the engine-layer guarantee the
// caches exist for: a second Compare over the same results performs
// zero feature extractions — both the stats and the DFS set come back
// from cache.
func TestCompareDoesNotReextract(t *testing.T) {
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("need >= 2 results, got %d", len(results))
	}
	first, err := Compare(results[:2], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := doc.Engine().Metrics()
	if afterFirst.StatsMisses == 0 {
		t.Fatal("cold Compare should have extracted stats")
	}
	second, err := Compare(results[:2], CompareOptions{SizeBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := doc.Engine().Metrics()
	if afterSecond.StatsMisses != afterFirst.StatsMisses {
		t.Fatalf("second Compare re-extracted: %d -> %d misses",
			afterFirst.StatsMisses, afterSecond.StatsMisses)
	}
	if afterSecond.DFSHits != afterFirst.DFSHits+1 {
		t.Fatalf("second Compare missed the DFS cache: %+v -> %+v", afterFirst, afterSecond)
	}
	if first.DoD != second.DoD || first.Text() != second.Text() {
		t.Fatal("cached comparison differs from the cold one")
	}
	// Snippet over the same result also rides the stats cache.
	before := doc.Engine().Metrics()
	_ = results[0].Snippet("tomtom gps", 4)
	if m := doc.Engine().Metrics(); m.StatsMisses != before.StatsMisses {
		t.Fatal("Snippet re-extracted cached stats")
	}
}

// TestRepeatedSearchServedFromCache pins the query LRU behavior at the
// facade level.
func TestRepeatedSearchServedFromCache(t *testing.T) {
	doc, err := BuiltinDataset("movies", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := doc.Search("horror vampire")
	if err != nil {
		t.Fatal(err)
	}
	b, err := doc.Search("horror vampire")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cached search returned %d results, want %d", len(b), len(a))
	}
	if m := doc.Engine().Metrics(); m.QueryHits == 0 {
		t.Fatalf("repeated search should hit the cache: %+v", m)
	}
}
