// Package xsact is the public API of the XSACT reproduction: keyword
// search over structured (XML) data plus automatic comparison of
// selected results via Differentiation Feature Sets (DFSs), as
// described in "XSACT: A Comparison Tool for Structured Search
// Results" (VLDB 2010) and "Structured Search Result Differentiation"
// (PVLDB 2009).
//
// The typical flow mirrors the demo system's architecture:
//
//	doc, _ := xsact.ParseString(xmlData)        // or BuiltinDataset
//	results, _ := doc.Search("tomtom gps")      // XSeek-style SLCA search
//	cmp, _ := xsact.Compare(results[:2], xsact.CompareOptions{SizeBound: 8})
//	fmt.Println(cmp.Text())                     // the comparison table
//
// The heavy lifting lives in the internal packages (xmltree, index,
// slca, xseek, feature, core, table); this package exposes a compact,
// stable surface over them.
package xsact

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/snippet"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Engine exposes the document's serving engine for callers that need
// cache metrics or lower-level access (benchmarks, the HTTP server).
func (d *Document) Engine() *engine.Engine { return d.eng }

// Document is a parsed, indexed XML corpus ready for search. It is a
// thin wrapper over the concurrent serving engine (internal/engine):
// searches, feature statistics, and generated DFS sets are cached
// there, and every method is safe for concurrent use. The corpus is
// live — AddEntity/RemoveEntity/Compact mutate it while it serves —
// so corpus reads go through the engine, not the construction-time
// root kept here.
type Document struct {
	root *xmltree.Node // the tree at construction; the live tree is eng.Root()
	eng  *engine.Engine
}

// Options configures how a Document's serving engine is built. The
// zero value is the default configuration.
type Options struct {
	// Shards splits the corpus into that many index shards, built in
	// parallel at top-level entity boundaries and searched with a
	// fan-out/merge executor. Results are identical to the unsharded
	// engine; 0 or 1 keeps the single monolithic index. The count is
	// clamped to the number of top-level entities in the corpus.
	Shards int
	// AutoCompactEvery compacts the live write path in the background
	// once that many uncompacted writes (AddEntity/RemoveEntity calls)
	// are pending. 0 leaves compaction to explicit Compact calls.
	AutoCompactEvery int
}

// engineConfig translates the facade options to the engine layer's
// configuration.
func (o Options) engineConfig() engine.Config {
	return engine.Config{Shards: o.Shards, AutoCompactThreshold: o.AutoCompactEvery}
}

// Parse reads an XML document and builds the search engine (inverted
// index + schema summary) over it.
func Parse(r io.Reader) (*Document, error) {
	return ParseWith(r, Options{})
}

// ParseWith is Parse with explicit engine options.
func ParseWith(r io.Reader, opts Options) (*Document, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromTreeWith(root, opts), nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Document, error) {
	return ParseStringWith(s, Options{})
}

// ParseStringWith is ParseString with explicit engine options.
func ParseStringWith(s string, opts Options) (*Document, error) {
	root, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return FromTreeWith(root, opts), nil
}

// FromTree wraps an already-built tree (e.g. from a generator).
func FromTree(root *xmltree.Node) *Document {
	return FromTreeWith(root, Options{})
}

// FromTreeWith is FromTree with explicit engine options.
func FromTreeWith(root *xmltree.Node, opts Options) *Document {
	return &Document{root: root, eng: engine.NewWithConfig(root, opts.engineConfig())}
}

// BuiltinDataset loads one of the synthetic corpora: "reviews"
// (Product Reviews), "retailer" (Outdoor Retailer) or "movies"
// (the Figure 4 benchmark corpus). The seed makes runs reproducible.
func BuiltinDataset(name string, seed int64) (*Document, error) {
	return BuiltinDatasetWith(name, seed, Options{})
}

// BuiltinDatasetWith is BuiltinDataset with explicit engine options.
func BuiltinDatasetWith(name string, seed int64, opts Options) (*Document, error) {
	switch name {
	case "reviews":
		return FromTreeWith(dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}), opts), nil
	case "retailer":
		return FromTreeWith(dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed}), opts), nil
	case "movies":
		return FromTreeWith(dataset.Movies(dataset.MoviesConfig{Seed: seed}), opts), nil
	default:
		return nil, fmt.Errorf("xsact: unknown builtin dataset %q", name)
	}
}

// Shards reports how many index shards the document's engine runs
// (1 when unsharded).
func (d *Document) Shards() int { return d.eng.ShardCount() }

// XML serializes the document back to XML. It reflects live updates:
// added entities appear, removed ones don't.
func (d *Document) XML() string { return xmltree.XMLString(d.eng.Root()) }

// Result is one search result: an entity subtree of the document.
type Result struct {
	doc *Document
	res *xseek.Result
	// Label is a short human identifier (product name, movie title...).
	Label string
}

// Search runs a keyword query and returns the matching entities in
// document order (XSeek semantics: SLCA matching, results lifted to
// their nearest enclosing entity).
func (d *Document) Search(query string) ([]*Result, error) {
	rs, err := d.eng.Search(query)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = &Result{doc: d, res: r, Label: r.Label}
	}
	return out, nil
}

// Describe renders a one-line result listing (label plus leading
// attribute values), as the demo UI's result list does.
func (r *Result) Describe() string { return xseek.DescribeResult(r.res, 4) }

// Snippet returns the eXtract-style frequency snippet of the result —
// the baseline XSACT improves upon. Size 0 means 4 features.
func (r *Result) Snippet(query string, size int) string {
	stats := r.doc.eng.Stats(r.res.Node, r.Label)
	return snippet.Generate(stats, snippet.Options{Size: size, Query: query}).String()
}

// Lift re-roots the result at its nearest ancestor element with the
// given tag, or returns the result unchanged if no such ancestor
// exists. Use it to compare at a coarser granularity — e.g. lifting
// product results of "men jackets" to their brands, as in the paper's
// Outdoor Retailer walkthrough.
func (r *Result) Lift(tag string) *Result {
	for cur := r.res.Node.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind == xmltree.Element && cur.Tag == tag {
			lifted := &xseek.Result{Node: cur, Match: r.res.Match, Label: xseek.LabelFor(cur)}
			return &Result{doc: r.doc, res: lifted, Label: lifted.Label}
		}
	}
	return r
}

// Dedupe removes results that share the same subtree root (useful
// after Lift, when several products collapse into one brand),
// preserving first occurrence order.
func Dedupe(results []*Result) []*Result {
	seen := make(map[string]bool)
	var out []*Result
	for _, r := range results {
		key := r.res.Node.ID.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

// SnippetDoD measures how well eXtract-style snippets of the given
// size differentiate the results: it generates each result's snippet
// independently (as Figure 1 of the paper does), interprets the
// snippets as feature selections, and evaluates the same DoD objective
// on them. This is the number XSACT's coordinated DFSs improve upon
// (the paper's Figure 1 snippets score 2 where its Figure 2 table
// scores 5).
func SnippetDoD(results []*Result, query string, size int) (int, error) {
	if len(results) < 2 {
		return 0, fmt.Errorf("xsact: snippet DoD needs at least 2 results, got %d", len(results))
	}
	doc, inner, err := sameDocResults(results)
	if err != nil {
		return 0, err
	}
	stats := doc.eng.StatsForResults(inner)
	dfss := make([]*core.DFS, len(results))
	for i, s := range stats {
		sn := snippet.Generate(s, snippet.Options{Size: size, Query: query})
		dfss[i] = &core.DFS{Stats: s, Sel: core.Selection(sn.AsSelection())}
	}
	return core.TotalDoD(dfss, core.DefaultThreshold), nil
}

// sameDocResults checks that all results come from one Document and
// unwraps them to the engine's result type.
func sameDocResults(results []*Result) (*Document, []*xseek.Result, error) {
	doc := results[0].doc
	inner := make([]*xseek.Result, len(results))
	for i, r := range results {
		if r.doc != doc {
			return nil, nil, fmt.Errorf("xsact: results from different documents")
		}
		inner[i] = r.res
	}
	return doc, inner, nil
}

// CompareOptions configures Compare.
type CompareOptions struct {
	// SizeBound is L, the max features per result. 0 = 10.
	SizeBound int
	// Threshold is x, the differentiation threshold. 0 = 0.10.
	Threshold float64
	// Algorithm is "multi-swap" (default), "single-swap" or "top-k".
	Algorithm string
}

// Comparison is the outcome of comparing a set of results.
type Comparison struct {
	tbl *table.Table
	// DoD is the total degree of differentiation achieved.
	DoD int
	// Labels names the compared results in column order.
	Labels []string
}

// Compare generates DFSs for the given results and assembles their
// comparison table. At least two results are required; they must come
// from the same Document.
func Compare(results []*Result, opts CompareOptions) (*Comparison, error) {
	if len(results) < 2 {
		return nil, fmt.Errorf("xsact: comparison needs at least 2 results, got %d", len(results))
	}
	doc, inner, err := sameDocResults(results)
	if err != nil {
		return nil, err
	}
	alg := core.Algorithm(opts.Algorithm)
	if opts.Algorithm == "" {
		alg = core.AlgMultiSwap
	}
	copts := core.Options{SizeBound: opts.SizeBound, Threshold: opts.Threshold, Pad: true}
	dfss := doc.eng.Generate(alg, inner, copts)
	if dfss == nil {
		return nil, fmt.Errorf("xsact: unknown algorithm %q", opts.Algorithm)
	}
	x := opts.Threshold
	if x <= 0 {
		x = core.DefaultThreshold
	}
	cmp := &Comparison{
		tbl: table.Build(dfss),
		DoD: core.TotalDoD(dfss, x),
	}
	for _, d := range dfss {
		cmp.Labels = append(cmp.Labels, d.Stats.Label)
	}
	return cmp, nil
}

// Text renders the comparison as an aligned plain-text table.
func (c *Comparison) Text() string { return c.tbl.Text() }

// HTML renders the comparison as an HTML <table> fragment.
func (c *Comparison) HTML() string { return c.tbl.HTML() }
