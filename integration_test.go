package xsact

// Integration matrix: every built-in dataset × its canonical queries ×
// every deterministic algorithm, checking pipeline-wide invariants the
// unit tests cannot see (search → entity inference → extraction → DFS
// → table must agree with each other).

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/table"
	"repro/internal/xseek"
)

func datasetQueries() map[string][]string {
	return map[string][]string{
		"reviews":  dataset.ReviewQueries(),
		"retailer": dataset.RetailerQueries(),
		"movies":   dataset.MovieQueries(),
	}
}

func TestIntegrationMatrix(t *testing.T) {
	opts := core.Options{SizeBound: 8, Threshold: 0.1, Pad: true}
	algs := []core.Algorithm{core.AlgTopK, core.AlgGreedy, core.AlgSingleSwap, core.AlgMultiSwap}
	for name, queries := range datasetQueries() {
		doc, err := BuiltinDataset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng := xseek.New(doc.root) // same-package test: reach the parsed tree directly
		for _, q := range queries {
			results, err := eng.Search(q)
			if err != nil {
				t.Fatalf("%s %q: %v", name, q, err)
			}
			if len(results) < 2 {
				continue // nothing to differentiate
			}
			if len(results) > 6 {
				results = results[:6]
			}
			stats := make([]*feature.Stats, len(results))
			for i, r := range results {
				stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
				if stats[i].FeatureCount() == 0 {
					t.Fatalf("%s %q: result %q extracted no features", name, q, r.Label)
				}
			}
			for _, alg := range algs {
				dfss := core.Generate(alg, stats, opts)
				for ri, d := range dfss {
					if err := d.Validate(opts.SizeBound); err != nil {
						t.Fatalf("%s %q %s result %d: %v", name, q, alg, ri, err)
					}
				}
				// The rendered table must contain every selected type
				// exactly once as a row, and one column per result.
				tbl := table.Build(dfss)
				if len(tbl.Labels) != len(dfss) {
					t.Fatalf("%s %q %s: %d columns for %d results", name, q, alg, len(tbl.Labels), len(dfss))
				}
				typeSet := map[feature.Type]bool{}
				for _, d := range dfss {
					for tp := range d.Sel {
						typeSet[tp] = true
					}
				}
				if len(tbl.Rows) != len(typeSet) {
					t.Fatalf("%s %q %s: %d rows for %d selected types", name, q, alg, len(tbl.Rows), len(typeSet))
				}
				// DoD consistency: the table's known/unknown structure
				// must reflect the selections.
				for _, row := range tbl.Rows {
					for ci, cell := range row.Cells {
						_, selected := dfss[ci].Sel[row.Type]
						if cell.Known != selected {
							t.Fatalf("%s %q %s: cell known=%v but selected=%v for %s",
								name, q, alg, cell.Known, selected, row.Type)
						}
					}
				}
			}
		}
	}
}

func TestIntegrationSnippetVsDFSAcrossDatasets(t *testing.T) {
	// The Figure-1-vs-2 direction must hold on every dataset, not just
	// product reviews: coordinated multi-swap >= snippet selections.
	for name, queries := range datasetQueries() {
		doc, err := BuiltinDataset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		results, err := doc.Search(queries[0])
		if err != nil || len(results) < 2 {
			t.Fatalf("%s: %v (%d results)", name, err, len(results))
		}
		if len(results) > 4 {
			results = results[:4]
		}
		snip, err := SnippetDoD(results, queries[0], 8)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(results, CompareOptions{SizeBound: 8})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.DoD < snip {
			t.Errorf("%s: multi-swap DoD %d < snippet DoD %d", name, cmp.DoD, snip)
		}
	}
}

func TestIntegrationTableFormatsAgree(t *testing.T) {
	doc, err := BuiltinDataset("retailer", 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("rain jackets")
	if err != nil {
		t.Fatal(err)
	}
	var brands []*Result
	for _, r := range results {
		brands = append(brands, r.Lift("brand"))
	}
	brands = Dedupe(brands)
	if len(brands) < 2 {
		t.Fatalf("brands = %d", len(brands))
	}
	cmp, err := Compare(brands[:2], CompareOptions{SizeBound: 6})
	if err != nil {
		t.Fatal(err)
	}
	// All four renderings must mention the same labels.
	for _, out := range []string{cmp.Text(), cmp.HTML(), cmp.Markdown(), cmp.CSV()} {
		for _, label := range cmp.Labels {
			if !strings.Contains(out, label) {
				t.Fatalf("a rendering lost label %q", label)
			}
		}
	}
}
