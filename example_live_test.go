package xsact_test

import (
	"fmt"
	"log"

	xsact "repro"
)

// ExampleDocument_AddEntity shows live ingest: a new entity appended to
// a built document is searchable immediately, without a reparse or
// index rebuild.
func ExampleDocument_AddEntity() {
	doc, err := xsact.ParseString(`
<store>
  <product><name>Go 630</name><kind>navigator</kind></product>
  <product><name>Go 730</name><kind>navigator</kind></product>
</store>`)
	if err != nil {
		log.Fatal(err)
	}
	id, err := doc.AddEntity(`<product><name>Rider 550</name><kind>navigator motorcycle</kind></product>`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := doc.Search("navigator")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("id=%s results=%d\n", id, len(results))
	for _, r := range results {
		fmt.Println(r.Label)
	}
	// Output:
	// id=2 results=3
	// Go 630
	// Go 730
	// Rider 550
}

// ExampleDocument_RemoveEntity shows live deletion: the removed entity
// stops matching at once (a tombstone masks its index postings), and
// Compact later folds the pending writes back into a clean base.
func ExampleDocument_RemoveEntity() {
	doc, err := xsact.ParseString(`
<store>
  <product><name>Go 630</name><kind>navigator</kind></product>
  <product><name>Go 730</name><kind>navigator discontinued</kind></product>
</store>`)
	if err != nil {
		log.Fatal(err)
	}
	// "1" is the second top-level entity — the ID search results and
	// AddEntity report.
	if err := doc.RemoveEntity("1"); err != nil {
		log.Fatal(err)
	}
	results, err := doc.Search("navigator")
	if err != nil {
		log.Fatal(err)
	}
	delta, tombstones := doc.PendingUpdates()
	fmt.Printf("results=%d pending=%d/%d\n", len(results), delta, tombstones)
	if err := doc.Compact(); err != nil {
		log.Fatal(err)
	}
	delta, tombstones = doc.PendingUpdates()
	fmt.Printf("after compact pending=%d/%d\n", delta, tombstones)
	// Output:
	// results=1 pending=0/1
	// after compact pending=0/0
}
