package xsact_test

import (
	"fmt"
	"log"

	xsact "repro"
)

// Example shows the whole pipeline on a two-product catalog: search,
// then a comparison table whose rows expose how the results differ.
func Example() {
	doc, err := xsact.ParseString(`
<store>
  <product>
    <name>Go 630</name>
    <rating>4.2</rating>
  </product>
  <product>
    <name>Go 730</name>
    <rating>4.1</rating>
  </product>
</store>`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := doc.Search("go")
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := xsact.Compare(results, xsact.CompareOptions{SizeBound: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results=%d DoD=%d\n", len(results), cmp.DoD)
	fmt.Print(cmp.Markdown())
	// Output:
	// results=2 DoD=2
	// | feature | Go 630 | Go 730 |
	// |---|---|---|
	// | product:name | Go 630 | Go 730 |
	// | product:rating | 4.2 | 4.1 |
}

// ExampleDocument_SearchCleaned shows spelling correction against the
// corpus vocabulary before searching.
func ExampleDocument_SearchCleaned() {
	doc, err := xsact.ParseString(`
<store>
  <product><name>TomTom navigator</name></product>
  <product><name>TomTom mount</name></product>
</store>`)
	if err != nil {
		log.Fatal(err)
	}
	results, cleaned, err := doc.SearchCleaned("tomtim")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cleaned[0], len(results))
	// Output: tomtom 2
}

// ExampleResult_Lift shows coarsening results to an enclosing entity,
// as the paper's brand-comparison walkthrough does.
func ExampleResult_Lift() {
	doc, err := xsact.ParseString(`
<retailer>
  <brand>
    <name>Marmot</name>
    <products>
      <product><name>Ridge jacket</name><gender>men</gender></product>
      <product><name>Basin jacket</name><gender>men</gender></product>
    </products>
  </brand>
  <brand>
    <name>Columbia</name>
    <products>
      <product><name>Peak jacket</name><gender>men</gender></product>
    </products>
  </brand>
</retailer>`)
	if err != nil {
		log.Fatal(err)
	}
	products, err := doc.Search("men jacket")
	if err != nil {
		log.Fatal(err)
	}
	var brands []*xsact.Result
	for _, p := range products {
		brands = append(brands, p.Lift("brand"))
	}
	brands = xsact.Dedupe(brands)
	fmt.Printf("%d products across %d brands: %s, %s\n",
		len(products), len(brands), brands[0].Label, brands[1].Label)
	// Output: 3 products across 2 brands: Marmot, Columbia
}
