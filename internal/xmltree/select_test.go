package xmltree

import "testing"

const selectDoc = `
<store>
  <product sku="A1">
    <name>Go 630</name>
    <reviews>
      <review><pro>compact</pro><pro>bright</pro></review>
      <review><pro>compact</pro></review>
    </reviews>
  </product>
  <product sku="B2">
    <name>Go 730</name>
    <reviews>
      <review><pro>fast</pro></review>
    </reviews>
  </product>
</store>`

func sel(t *testing.T, path string) []*Node {
	t.Helper()
	root := MustParseString(selectDoc)
	out, err := root.Select(path)
	if err != nil {
		t.Fatalf("Select(%q): %v", path, err)
	}
	return out
}

func TestSelectChild(t *testing.T) {
	if got := sel(t, "product"); len(got) != 2 {
		t.Fatalf("product -> %d nodes", len(got))
	}
	if got := sel(t, "product/name"); len(got) != 2 || got[0].Value() != "Go 630" {
		t.Fatalf("product/name -> %v", got)
	}
}

func TestSelectDescendant(t *testing.T) {
	if got := sel(t, "//pro"); len(got) != 4 {
		t.Fatalf("//pro -> %d nodes", len(got))
	}
	if got := sel(t, "product//pro"); len(got) != 4 {
		t.Fatalf("product//pro -> %d nodes", len(got))
	}
	if got := sel(t, "//review/pro"); len(got) != 4 {
		t.Fatalf("//review/pro -> %d nodes", len(got))
	}
}

func TestSelectWildcard(t *testing.T) {
	if got := sel(t, "product/*"); len(got) != 4 { // 2x name + 2x reviews
		t.Fatalf("product/* -> %d nodes", len(got))
	}
}

func TestSelectIndex(t *testing.T) {
	got := sel(t, "product[2]/name")
	if len(got) != 1 || got[0].Value() != "Go 730" {
		t.Fatalf("product[2]/name -> %v", got)
	}
	if got := sel(t, "product[9]"); got != nil {
		t.Fatalf("out-of-range index -> %v", got)
	}
	// Index over a descendant axis picks from the flattened match list.
	got = sel(t, "//pro[3]")
	if len(got) != 1 || got[0].Value() != "compact" {
		t.Fatalf("//pro[3] -> %v", got)
	}
}

func TestSelectAttribute(t *testing.T) {
	got := sel(t, "//@sku")
	if len(got) != 2 || got[0].Tag != "product" {
		t.Fatalf("//@sku -> %v", got)
	}
	first, err := MustParseString(selectDoc).SelectFirst("product/@sku")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := first.Attr("sku"); v != "A1" {
		t.Fatalf("first sku = %q", v)
	}
}

func TestSelectNoMatch(t *testing.T) {
	if got := sel(t, "zebra"); got != nil {
		t.Fatalf("zebra -> %v", got)
	}
	first, err := MustParseString(selectDoc).SelectFirst("zebra")
	if err != nil || first != nil {
		t.Fatalf("SelectFirst(zebra) = %v, %v", first, err)
	}
}

func TestSelectDocumentOrderAndDedup(t *testing.T) {
	got := sel(t, "//pro")
	for i := 1; i < len(got); i++ {
		if got[i-1].ID.Compare(got[i].ID) >= 0 {
			t.Fatal("selection not in document order")
		}
	}
}

func TestSelectErrors(t *testing.T) {
	root := MustParseString(selectDoc)
	for _, bad := range []string{"", "  ", "a/", "a//", "//", "a//@x/y", "a[x]", "a[0]"} {
		if _, err := root.Select(bad); err == nil {
			t.Errorf("Select(%q) should error", bad)
		}
	}
	var nilNode *Node
	if _, err := nilNode.Select("a"); err == nil {
		t.Error("Select on nil node should error")
	}
}

func TestSelectOnSubtree(t *testing.T) {
	root := MustParseString(selectDoc)
	prod := root.ChildElements()[0]
	got, err := prod.Select("//pro")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("subtree //pro -> %d, want 3", len(got))
	}
}
