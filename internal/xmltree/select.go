package xmltree

import (
	"fmt"
	"strings"
)

// Select evaluates a small XPath-like path expression against n and
// returns the matching nodes in document order. Supported syntax:
//
//	tag          child elements with that tag
//	*            any child element
//	//tag        descendants-or-self with that tag (at segment start
//	             or between segments)
//	tag[i]       the i-th (1-based) match of the segment
//	@attr        final segment: nodes having the attribute (value via
//	             Node.Attr)
//
// Examples: "product/name", "//review/pro", "product[2]//pro",
// "product/@sku". It is deliberately a subset — enough for tooling
// and tests without an XPath engine dependency.
func (n *Node) Select(path string) ([]*Node, error) {
	if n == nil {
		return nil, fmt.Errorf("xmltree: Select on nil node")
	}
	path = strings.TrimSpace(path)
	if path == "" {
		return nil, fmt.Errorf("xmltree: empty path")
	}
	segs, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	cur := []*Node{n}
	for _, seg := range segs {
		var next []*Node
		for _, c := range cur {
			next = append(next, seg.apply(c)...)
		}
		if seg.index > 0 {
			if seg.index > len(next) {
				next = nil
			} else {
				next = next[seg.index-1 : seg.index]
			}
		}
		cur = dedupeNodes(next)
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

// SelectFirst returns the first match of Select, or nil.
func (n *Node) SelectFirst(path string) (*Node, error) {
	all, err := n.Select(path)
	if err != nil || len(all) == 0 {
		return nil, err
	}
	return all[0], nil
}

type pathSeg struct {
	tag   string // "*" = any element; "@x" = attribute test
	deep  bool   // // prefix: search descendants
	index int    // 1-based [i] filter; 0 = all
}

func parsePath(path string) ([]pathSeg, error) {
	// Mark descendant steps so a plain split on "/" suffices:
	// "a//b" -> segments ["a", "\x00b"], "//a" -> ["\x00a"].
	norm := strings.ReplaceAll(path, "//", "/\x00")
	norm = strings.TrimPrefix(norm, "/")
	var segs []pathSeg
	for _, part := range strings.Split(norm, "/") {
		deep := strings.HasPrefix(part, "\x00")
		segs = append(segs, makeSeg(strings.TrimPrefix(part, "\x00"), deep))
	}
	for i, s := range segs {
		if s.tag == "" {
			return nil, fmt.Errorf("xmltree: path %q has an empty segment", path)
		}
		if strings.HasPrefix(s.tag, "@") && i != len(segs)-1 {
			return nil, fmt.Errorf("xmltree: attribute segment %q must be last", s.tag)
		}
		if s.index < 0 {
			return nil, fmt.Errorf("xmltree: bad index in path %q", path)
		}
	}
	return segs, nil
}

func makeSeg(token string, deep bool) pathSeg {
	seg := pathSeg{deep: deep}
	if i := strings.Index(token, "["); i >= 0 && strings.HasSuffix(token, "]") {
		idx := 0
		numeric := true
		for _, r := range token[i+1 : len(token)-1] {
			if r < '0' || r > '9' {
				numeric = false
				break
			}
			idx = idx*10 + int(r-'0')
		}
		if numeric && idx > 0 {
			seg.index = idx
			token = token[:i]
		} else {
			seg.index = -1 // flagged invalid; parsePath rejects
		}
	}
	seg.tag = token
	return seg
}

func (s pathSeg) apply(n *Node) []*Node {
	if strings.HasPrefix(s.tag, "@") {
		name := s.tag[1:]
		var out []*Node
		check := func(m *Node) {
			if _, ok := m.Attr(name); ok {
				out = append(out, m)
			}
		}
		if s.deep {
			n.Walk(func(m *Node) bool {
				if m.Kind == Element {
					check(m)
				}
				return true
			})
		} else {
			check(n)
		}
		return out
	}
	match := func(m *Node) bool {
		return m.Kind == Element && (s.tag == "*" || m.Tag == s.tag)
	}
	var out []*Node
	if s.deep {
		n.Walk(func(m *Node) bool {
			if match(m) {
				out = append(out, m)
			}
			return true
		})
		return out
	}
	for _, c := range n.Children {
		if match(c) {
			out = append(out, c)
		}
	}
	return out
}

func dedupeNodes(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
