package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Limits bounds resource use when parsing untrusted documents. Zero
// fields are unlimited.
type Limits struct {
	// MaxDepth caps element nesting; beyond it parsing fails instead
	// of building a tree whose recursive traversals would blow the
	// stack.
	MaxDepth int
	// MaxNodes caps the total number of tree nodes (elements + text).
	MaxNodes int
}

// Parse reads an XML document from r and returns its root element as a
// DOM-style tree with Dewey IDs assigned. Whitespace-only text is
// dropped; comments, processing instructions and directives are
// ignored. Multiple root elements or content outside the root are
// rejected. No resource limits are applied; use ParseLimited for
// untrusted input.
func Parse(r io.Reader) (*Node, error) {
	return ParseLimited(r, Limits{})
}

// ParseLimited is Parse with resource limits enforced during parsing.
func ParseLimited(r io.Reader, lim Limits) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	nodes := 0
	count := func() error {
		nodes++
		if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
			return fmt.Errorf("xmltree: parse: document exceeds %d nodes", lim.MaxNodes)
		}
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if lim.MaxDepth > 0 && len(stack) >= lim.MaxDepth {
				return nil, fmt.Errorf("xmltree: parse: nesting exceeds depth %d", lim.MaxDepth)
			}
			if err := count(); err != nil {
				return nil, err
			}
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements (%q after %q)", t.Name.Local, root.Tag)
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unexpected end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: character data %q outside root element", truncate(text, 24))
			}
			if err := count(); err != nil {
				return nil, err
			}
			stack[len(stack)-1].AppendText(text)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// ignored: they carry no queryable content
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed element %q", stack[len(stack)-1].Tag)
	}
	root.AssignIDs(nil)
	return root, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string) (*Node, error) {
	return Parse(strings.NewReader(doc))
}

// MustParseString parses doc and panics on error. Intended for tests
// and package-level fixtures only.
func MustParseString(doc string) *Node {
	n, err := ParseString(doc)
	if err != nil {
		panic(err)
	}
	return n
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// WriteXML serializes n's subtree as XML to w. Elements with only text
// children render on one line; containers indent their children by two
// spaces per level. The output round-trips through Parse.
func WriteXML(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n, 0)
	return sw.err
}

// XMLString returns the serialized form of n's subtree.
func XMLString(n *Node) string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = WriteXML(&b, n)
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) writeString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeNode(w *stickyWriter, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Kind == Text {
		w.writeString(indent)
		w.writeString(escapeText(n.Text))
		w.writeString("\n")
		return
	}
	w.writeString(indent)
	w.writeString("<")
	w.writeString(n.Tag)
	for _, a := range n.Attrs {
		w.writeString(" ")
		w.writeString(a.Name)
		w.writeString(`="`)
		w.writeString(escapeAttr(a.Value))
		w.writeString(`"`)
	}
	if len(n.Children) == 0 {
		w.writeString("/>\n")
		return
	}
	if n.IsLeafElement() {
		w.writeString(">")
		w.writeString(escapeText(n.Value()))
		w.writeString("</")
		w.writeString(n.Tag)
		w.writeString(">\n")
		return
	}
	w.writeString(">\n")
	for _, c := range n.Children {
		writeNode(w, c, depth+1)
	}
	w.writeString(indent)
	w.writeString("</")
	w.writeString(n.Tag)
	w.writeString(">\n")
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
