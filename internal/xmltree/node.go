package xmltree

import (
	"sort"
	"strings"

	"repro/internal/dewey"
)

// Kind discriminates the node variants stored in a tree.
type Kind int

const (
	// Element is an XML element node; Tag holds its local name.
	Element Kind = iota
	// Text is a character-data node; Text holds the (trimmed) content.
	Text
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return "unknown"
	}
}

// Node is one node of a DOM-style XML tree. Nodes are created through
// NewElement/NewText or Parse and wired with AppendChild; fields are
// exported for read access, but mutate the tree only through the
// methods so parent pointers and Dewey IDs stay consistent.
type Node struct {
	Kind Kind
	// Tag is the element name (Kind == Element only).
	Tag string
	// Text is the character data (Kind == Text only).
	Text string
	// Attrs holds XML attributes of an element in document order.
	Attrs []Attr

	Parent   *Node
	Children []*Node

	// ID is the node's Dewey label, assigned by AssignIDs (Parse does
	// this automatically). The root has the empty ID.
	ID dewey.ID
}

// Attr is a single XML attribute.
type Attr struct {
	Name  string
	Value string
}

// NewElement returns a fresh element node with the given tag.
func NewElement(tag string) *Node { return &Node{Kind: Element, Tag: tag} }

// NewText returns a fresh text node with the given content.
func NewText(text string) *Node { return &Node{Kind: Text, Text: text} }

// AppendChild appends c to n's children and sets c.Parent. It returns
// n so element construction chains. The caller must re-run AssignIDs
// if Dewey labels are needed after structural edits.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// AppendText is shorthand for appending a text child.
func (n *Node) AppendText(text string) *Node {
	return n.AppendChild(NewText(text))
}

// Elem creates a child element with the given tag, appends it, and
// returns the child (not n), which makes nested construction natural.
func (n *Node) Elem(tag string) *Node {
	c := NewElement(tag)
	n.AppendChild(c)
	return c
}

// Leaf creates a child element with the given tag whose only child is
// a text node with the given value. It returns n for chaining.
func (n *Node) Leaf(tag, value string) *Node {
	c := NewElement(tag)
	c.AppendText(value)
	n.AppendChild(c)
	return n
}

// SetAttr sets (or replaces) an attribute on an element.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it is set.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n != nil && n.Kind == Element }

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n != nil && n.Kind == Text }

// IsLeafElement reports whether n is an element whose children are all
// text nodes (or that has no children). Leaf elements carry values and
// map to attributes in the entity model.
func (n *Node) IsLeafElement() bool {
	if !n.IsElement() {
		return false
	}
	for _, c := range n.Children {
		if c.Kind != Text {
			return false
		}
	}
	return true
}

// Value returns the concatenated text content of n's direct text
// children, trimmed. For a Text node it returns the text itself.
func (n *Node) Value() string {
	if n == nil {
		return ""
	}
	if n.Kind == Text {
		return strings.TrimSpace(n.Text)
	}
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == Text {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strings.TrimSpace(c.Text))
		}
	}
	return b.String()
}

// DeepValue returns all text content in n's subtree, in document order,
// joined by single spaces.
func (n *Node) DeepValue() string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.Kind == Text {
			if t := strings.TrimSpace(m.Text); t != "" {
				parts = append(parts, t)
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

// ChildElements returns n's element children (skipping text nodes).
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given tag,
// or nil.
func (n *Node) FirstChildElement(tag string) *Node {
	for _, c := range n.Children {
		if c.Kind == Element && c.Tag == tag {
			return c
		}
	}
	return nil
}

// FindAll returns, in document order, every element in n's subtree
// (including n) whose tag equals tag.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Kind == Element && m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Walk visits n and every descendant in document (pre-)order. If fn
// returns false for a node, that node's subtree is not descended into.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// AssignIDs assigns Dewey IDs to n's subtree, treating n as the node
// with label base. Text nodes receive labels too (they are children in
// the ordinal numbering), which keeps keyword postings addressable.
func (n *Node) AssignIDs(base dewey.ID) {
	n.ID = base
	for i, c := range n.Children {
		c.AssignIDs(base.Child(i))
	}
}

// NodeAt resolves a Dewey ID relative to n (n has the empty relative
// path). It returns nil if the path walks off the tree.
//
// On trees whose ordinals are contiguous, ordinal = child position and
// the walk is pure indexing. A live tree can carry ordinal holes after
// removals (ordinals are never reused); there the positional candidate
// carries a different ID and a binary search over the ordinal-sorted
// children resolves the step instead.
func (n *Node) NodeAt(id dewey.ID) *Node {
	cur := n
	for _, ord := range id {
		if cur == nil || ord < 0 {
			return nil
		}
		cur = childAt(cur, ord)
	}
	return cur
}

// childAt finds the child carrying ordinal ord: positional fast path,
// with a binary search fallback for trees with ordinal holes. A
// positional candidate without an assigned ID is trusted as-is (ID-less
// trees have no holes to account for).
func childAt(parent *Node, ord int) *Node {
	cs := parent.Children
	if ord < len(cs) {
		cid := cs[ord].ID
		if len(cid) == 0 || cid[len(cid)-1] == ord {
			return cs[ord]
		}
	}
	k := sort.Search(len(cs), func(i int) bool {
		cid := cs[i].ID
		return len(cid) > 0 && cid[len(cid)-1] >= ord
	})
	if k < len(cs) {
		if cid := cs[k].ID; len(cid) > 0 && cid[len(cid)-1] == ord {
			return cs[k]
		}
	}
	return nil
}

// Depth returns the number of ancestors of n (root = 0), computed via
// parent pointers.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// Path returns the tag path from the root to n, e.g. "products/product/name".
// Text nodes contribute "#text".
func (n *Node) Path() string {
	var tags []string
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind == Element {
			tags = append(tags, cur.Tag)
		} else {
			tags = append(tags, "#text")
		}
	}
	// reverse
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return strings.Join(tags, "/")
}

// CountNodes returns the number of nodes in n's subtree (including n).
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Clone returns a deep copy of n's subtree. The copy's Parent is nil
// and Dewey IDs are copied verbatim (re-run AssignIDs if the copy is
// grafted elsewhere).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Kind: n.Kind,
		Tag:  n.Tag,
		Text: n.Text,
		ID:   n.ID.Clone(),
	}
	if len(n.Attrs) > 0 {
		out.Attrs = make([]Attr, len(n.Attrs))
		copy(out.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		out.AppendChild(c.Clone())
	}
	return out
}
