// Package xmltree provides a DOM-style tree representation of XML
// documents: a mutable node tree with parent/child/sibling navigation,
// Dewey labelling, document-order traversal, and (de)serialization on
// top of the encoding/xml tokenizer.
//
// XSACT's entire pipeline — indexing, SLCA matching, entity inference,
// feature extraction — operates on these trees, so the package is the
// foundational substrate of the repository.
package xmltree
