package xmltree

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dewey"
)

const sampleDoc = `
<products>
  <product sku="A1">
    <name>TomTom Go 630</name>
    <rating>4.2</rating>
    <reviews>
      <review>
        <pros><pro>compact</pro><pro>easy to read</pro></pros>
        <uses><bestuse>auto</bestuse></uses>
      </review>
      <review>
        <pros><pro>compact</pro></pros>
      </review>
    </reviews>
  </product>
  <product sku="B2">
    <name>TomTom Go 730</name>
    <rating>4.1</rating>
  </product>
</products>`

func mustSample(t *testing.T) *Node {
	t.Helper()
	root, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatalf("parse sample: %v", err)
	}
	return root
}

func TestParseBasicShape(t *testing.T) {
	root := mustSample(t)
	if root.Tag != "products" {
		t.Fatalf("root tag = %q", root.Tag)
	}
	prods := root.ChildElements()
	if len(prods) != 2 {
		t.Fatalf("got %d products, want 2", len(prods))
	}
	if got := prods[0].FirstChildElement("name").Value(); got != "TomTom Go 630" {
		t.Fatalf("name = %q", got)
	}
	if sku, ok := prods[0].Attr("sku"); !ok || sku != "A1" {
		t.Fatalf("sku = %q, %v", sku, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unclosed":       `<a><b></a>`,
		"empty":          ``,
		"two roots":      `<a/><b/>`,
		"text outside":   `hello<a/>`,
		"stray end":      `</a>`,
		"trailing text2": `<a/>world`,
	}
	for name, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("%s: ParseString(%q) succeeded, want error", name, doc)
		}
	}
}

func TestDeweyIDsAssigned(t *testing.T) {
	root := mustSample(t)
	if root.ID.Level() != 0 {
		t.Fatalf("root ID = %v", root.ID)
	}
	second := root.Children[1]
	if !second.ID.Equal(dewey.New(1)) {
		t.Fatalf("second product ID = %v, want 1", second.ID)
	}
	name := second.FirstChildElement("name")
	if !name.ID.Equal(dewey.New(1, 0)) {
		t.Fatalf("name ID = %v, want 1.0", name.ID)
	}
	// NodeAt inverts the labelling.
	if got := root.NodeAt(name.ID); got != name {
		t.Fatalf("NodeAt(%v) = %v", name.ID, got)
	}
}

func TestNodeAtBadPaths(t *testing.T) {
	root := mustSample(t)
	if root.NodeAt(dewey.New(9)) != nil {
		t.Fatal("NodeAt out-of-range ordinal should be nil")
	}
	if root.NodeAt(dewey.New(0, 0, 0, 0, 0, 0, 0)) != nil {
		t.Fatal("NodeAt too-deep path should be nil")
	}
	if root.NodeAt(dewey.Root()) != root {
		t.Fatal("NodeAt(root) should be the node itself")
	}
}

func TestWalkPreorderAndPrune(t *testing.T) {
	root := mustSample(t)
	var order []string
	root.Walk(func(n *Node) bool {
		if n.Kind == Element {
			order = append(order, n.Tag)
		}
		return n.Tag != "reviews" // prune below reviews
	})
	joined := strings.Join(order, ",")
	for _, tag := range order {
		if tag == "review" || tag == "pros" || tag == "pro" {
			t.Fatalf("pruning failed: %s", joined)
		}
	}
	if !strings.HasPrefix(joined, "products,product,name") {
		t.Fatalf("unexpected preorder prefix: %s", joined)
	}
}

func TestValueAndDeepValue(t *testing.T) {
	root := mustSample(t)
	prod := root.Children[0]
	if v := prod.Value(); v != "" {
		t.Fatalf("container Value() = %q, want empty", v)
	}
	dv := prod.DeepValue()
	for _, want := range []string{"TomTom Go 630", "4.2", "compact", "auto"} {
		if !strings.Contains(dv, want) {
			t.Fatalf("DeepValue missing %q: %s", want, dv)
		}
	}
}

func TestLeafElement(t *testing.T) {
	root := mustSample(t)
	name := root.Children[0].FirstChildElement("name")
	if !name.IsLeafElement() {
		t.Fatal("name should be a leaf element")
	}
	if root.IsLeafElement() {
		t.Fatal("root is not a leaf element")
	}
	empty := NewElement("empty")
	if !empty.IsLeafElement() {
		t.Fatal("childless element counts as leaf")
	}
}

func TestFindAll(t *testing.T) {
	root := mustSample(t)
	pros := root.FindAll("pro")
	if len(pros) != 3 {
		t.Fatalf("found %d pro nodes, want 3", len(pros))
	}
	// Document order.
	for i := 1; i < len(pros); i++ {
		if pros[i-1].ID.Compare(pros[i].ID) >= 0 {
			t.Fatalf("FindAll not in document order: %v !< %v", pros[i-1].ID, pros[i].ID)
		}
	}
}

func TestPathAndDepth(t *testing.T) {
	root := mustSample(t)
	pro := root.FindAll("pro")[0]
	if got := pro.Path(); got != "products/product/reviews/review/pros/pro" {
		t.Fatalf("Path = %q", got)
	}
	if pro.Depth() != 5 {
		t.Fatalf("Depth = %d, want 5", pro.Depth())
	}
	if pro.Root() != root {
		t.Fatal("Root() did not find tree root")
	}
}

func TestBuilderAPI(t *testing.T) {
	doc := NewElement("catalog")
	b := doc.Elem("book")
	b.Leaf("title", "TAoCP").Leaf("author", "Knuth")
	b.SetAttr("isbn", "0-201-89683-4")
	doc.AssignIDs(nil)

	if doc.CountNodes() != 6 { // catalog, book, title, #text, author, #text
		t.Fatalf("CountNodes = %d, want 6", doc.CountNodes())
	}
	if got := b.FirstChildElement("title").Value(); got != "TAoCP" {
		t.Fatalf("title = %q", got)
	}
	if v, ok := b.Attr("isbn"); !ok || v != "0-201-89683-4" {
		t.Fatalf("attr = %q %v", v, ok)
	}
	if _, ok := b.Attr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("x").SetAttr("a", "1").SetAttr("a", "2")
	if len(n.Attrs) != 1 || n.Attrs[0].Value != "2" {
		t.Fatalf("SetAttr did not replace: %+v", n.Attrs)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	root := mustSample(t)
	out := XMLString(root)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse serialized output: %v\n%s", err, out)
	}
	assertTreesEqual(t, root, back)
}

func TestSerializeEscaping(t *testing.T) {
	n := NewElement("m")
	n.Leaf("v", `a<b & "c">d`)
	n.SetAttr("q", `x"y<z`)
	out := XMLString(n)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, out)
	}
	if got := back.FirstChildElement("v").Value(); got != `a<b & "c">d` {
		t.Fatalf("escaped value round trip = %q", got)
	}
	if got, _ := back.Attr("q"); got != `x"y<z` {
		t.Fatalf("escaped attr round trip = %q", got)
	}
}

func assertTreesEqual(t *testing.T, a, b *Node) {
	t.Helper()
	if a.Kind != b.Kind || a.Tag != b.Tag {
		t.Fatalf("node mismatch: %v %q vs %v %q", a.Kind, a.Tag, b.Kind, b.Tag)
	}
	if a.Kind == Text && strings.TrimSpace(a.Text) != strings.TrimSpace(b.Text) {
		t.Fatalf("text mismatch: %q vs %q", a.Text, b.Text)
	}
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("attr count mismatch on <%s>: %v vs %v", a.Tag, a.Attrs, b.Attrs)
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			t.Fatalf("attr mismatch on <%s>: %v vs %v", a.Tag, a.Attrs[i], b.Attrs[i])
		}
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("child count mismatch on <%s>: %d vs %d", a.Tag, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		assertTreesEqual(t, a.Children[i], b.Children[i])
	}
}

func TestCloneDeepAndIndependent(t *testing.T) {
	root := mustSample(t)
	cp := root.Clone()
	assertTreesEqual(t, root, cp)
	if cp.Parent != nil {
		t.Fatal("clone root should have nil parent")
	}
	cp.Children[0].FirstChildElement("name").Children[0].Text = "changed"
	if root.Children[0].FirstChildElement("name").Value() == "changed" {
		t.Fatal("clone shares storage with original")
	}
}

// randomTree builds a random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	tags := []string{"a", "b", "c", "d"}
	n := NewElement(tags[r.Intn(len(tags))])
	if depth == 0 || r.Intn(3) == 0 {
		n.AppendText("v" + string(rune('a'+r.Intn(26))))
		return n
	}
	kids := 1 + r.Intn(3)
	for i := 0; i < kids; i++ {
		n.AppendChild(randomTree(r, depth-1))
	}
	return n
}

func TestPropSerializeParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		tree.AssignIDs(nil)
		back, err := ParseString(XMLString(tree))
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, XMLString(tree))
		}
		assertTreesEqual(t, tree, back)
	}
}

func TestPropDeweyIDsMatchStructure(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		tree := randomTree(r, 4)
		tree.AssignIDs(nil)
		tree.Walk(func(n *Node) bool {
			if tree.NodeAt(n.ID) != n {
				t.Fatalf("NodeAt(%v) does not resolve to the labelled node", n.ID)
			}
			for j, c := range n.Children {
				if !c.ID.Equal(n.ID.Child(j)) {
					t.Fatalf("child %d of %v has ID %v", j, n.ID, c.ID)
				}
			}
			return true
		})
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(sampleDoc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	root := MustParseString(sampleDoc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = XMLString(root)
	}
}
