package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestPropParseNeverPanics: arbitrary byte soup must produce either a
// tree or an error, never a panic — the parser fronts untrusted files
// in cmd/xsact.
func TestPropParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = ParseString(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropParseXMLishNeverPanics: byte soup wrapped in a valid root is
// more likely to reach deeper parser states.
func TestPropParseXMLishNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = ParseString("<r>" + string(data) + "</r>")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTruncatedDocuments(t *testing.T) {
	full := `<store><product><name>TomTom</name><rating>4.2</rating></product></store>`
	for cut := 1; cut < len(full); cut++ {
		doc := full[:cut]
		root, err := ParseString(doc)
		if err == nil {
			// A prefix that happens to be well-formed must still be a
			// coherent tree.
			if root == nil || root.Tag == "" {
				t.Fatalf("cut %d: nil/empty tree without error", cut)
			}
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("deep document rejected: %v", err)
	}
	n := root
	for n.FirstChildElement("d") != nil {
		n = n.FirstChildElement("d")
	}
	if n.Depth() != depth-1 {
		t.Fatalf("depth = %d, want %d", n.Depth(), depth-1)
	}
	// Dewey IDs and serialization survive the depth too.
	if root.NodeAt(n.ID) != n {
		t.Fatal("deep node unresolvable by ID")
	}
	if _, err := ParseString(XMLString(root)); err != nil {
		t.Fatalf("deep document does not round-trip: %v", err)
	}
}

func TestParseManyChildren(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 10000; i++ {
		b.WriteString("<c>v</c>")
	}
	b.WriteString("</r>")
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 10000 {
		t.Fatalf("children = %d", len(root.Children))
	}
	last := root.Children[9999]
	if last.ID[0] != 9999 {
		t.Fatalf("last child ID = %v", last.ID)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	root, err := ParseString(`<r><v>a &amp; b &lt;c&gt;</v><w><![CDATA[raw <stuff> here]]></w></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.FirstChildElement("v").Value(); got != "a & b <c>" {
		t.Fatalf("entity decoding = %q", got)
	}
	if got := root.FirstChildElement("w").Value(); got != "raw <stuff> here" {
		t.Fatalf("CDATA = %q", got)
	}
}

func TestParseCommentsAndPIsIgnored(t *testing.T) {
	root, err := ParseString(`<?xml version="1.0"?><!-- hi --><r><!-- inner --><v>x</v><?pi data?></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.CountNodes() != 3 { // r, v, text
		t.Fatalf("nodes = %d, want 3", root.CountNodes())
	}
}

func TestParseMixedContent(t *testing.T) {
	root, err := ParseString(`<p>before <b>bold</b> after</p>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 3 {
		t.Fatalf("mixed content children = %d", len(root.Children))
	}
	if root.DeepValue() != "before bold after" {
		t.Fatalf("DeepValue = %q", root.DeepValue())
	}
}

func TestParseLimitedDepth(t *testing.T) {
	doc := "<a><b><c><d>x</d></c></b></a>"
	if _, err := ParseLimited(strings.NewReader(doc), Limits{MaxDepth: 3}); err == nil {
		t.Fatal("depth-4 document should exceed MaxDepth 3")
	}
	root, err := ParseLimited(strings.NewReader(doc), Limits{MaxDepth: 4})
	if err != nil {
		t.Fatalf("depth-4 document within MaxDepth 4: %v", err)
	}
	if root.Tag != "a" {
		t.Fatalf("root = %q", root.Tag)
	}
}

func TestParseLimitedNodes(t *testing.T) {
	doc := "<r><a>1</a><b>2</b><c>3</c></r>" // 7 nodes
	if _, err := ParseLimited(strings.NewReader(doc), Limits{MaxNodes: 6}); err == nil {
		t.Fatal("7-node document should exceed MaxNodes 6")
	}
	if _, err := ParseLimited(strings.NewReader(doc), Limits{MaxNodes: 7}); err != nil {
		t.Fatalf("7-node document within MaxNodes 7: %v", err)
	}
}

func TestParseLimitedZeroMeansUnlimited(t *testing.T) {
	doc := "<a><b><c>x</c></b></a>"
	if _, err := ParseLimited(strings.NewReader(doc), Limits{}); err != nil {
		t.Fatal(err)
	}
}
