package xseek

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// wandTestCorpus builds n sibling entities with deliberately varied
// term frequencies: a block of heavy entities (several occurrences of
// both query terms) scattered through a long tail of light ones, so a
// small top-k settles early and the block-max bounds have something to
// prune. heavyEvery controls the scatter; heavyEvery=0 front-loads all
// heavy entities at the start of document order.
func wandTestCorpus(n, heavyEvery int) *Engine {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		heavy := (heavyEvery == 0 && i < n/20+1) || (heavyEvery > 0 && i%heavyEvery == 0)
		b.WriteString("<item>")
		reps := 1
		if heavy {
			reps = 6
		}
		for r := 0; r < reps; r++ {
			fmt.Fprintf(&b, "<f%d>alpha beta</f%d>", r, r)
		}
		if i%3 == 0 {
			b.WriteString("<tag>gamma</tag>")
		}
		fmt.Fprintf(&b, "<desc>filler%d</desc>", i%13)
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return NewParallel(xmltree.MustParseString(b.String()))
}

// requireSamePages fails unless the two ranked pages are bit-identical:
// same length, same node IDs, same labels, and scores equal down to the
// last float64 bit.
func requireSamePages(t *testing.T, ctx string, got, want []*RankedResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: page has %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !got[i].Node.ID.Equal(want[i].Node.ID) {
			t.Fatalf("%s: result %d = %v, want %v", ctx, i, got[i].Node.ID, want[i].Node.ID)
		}
		if got[i].Label != want[i].Label {
			t.Fatalf("%s: result %d label = %q, want %q", ctx, i, got[i].Label, want[i].Label)
		}
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: result %d score bits %x, want %x (scores %v vs %v)",
				ctx, i, math.Float64bits(got[i].Score), math.Float64bits(want[i].Score),
				got[i].Score, want[i].Score)
		}
	}
}

// TestWANDExactBitIdentical: the exact-mode score-bounded page must be
// bit-identical to both the eager and the plain streamed rankings for
// every window shape, including paging envelopes, while actually
// pruning on small windows.
func TestWANDExactBitIdentical(t *testing.T) {
	for _, scatter := range []int{0, 7} {
		e := wandTestCorpus(900, scatter)
		for _, query := range []string{"alpha beta", "alpha gamma", "beta"} {
			for _, k := range []int{1, 2, 8} {
				for _, off := range []int{0, 3} {
					ctx := fmt.Sprintf("scatter=%d q=%q k=%d off=%d", scatter, query, k, off)
					opts := SearchOptions{Limit: k, Offset: off}
					eager := opts
					eager.Mode = ExecEager
					eRes, eTotal, err := e.SearchRankedPage(query, eager)
					if err != nil {
						t.Fatalf("%s: eager: %v", ctx, err)
					}
					sRes, sTotal, err := e.SearchRankedPageStream(query, opts)
					if err != nil {
						t.Fatalf("%s: streamed: %v", ctx, err)
					}
					wRes, wTotal, st, err := e.SearchRankedPageWAND(query, opts)
					if err != nil {
						t.Fatalf("%s: wand: %v", ctx, err)
					}
					if eTotal != sTotal || eTotal != wTotal {
						t.Fatalf("%s: totals eager=%d streamed=%d wand=%d", ctx, eTotal, sTotal, wTotal)
					}
					requireSamePages(t, ctx+" wand-vs-eager", wRes, eRes)
					requireSamePages(t, ctx+" wand-vs-streamed", wRes, sRes)
					if !st.Bounded {
						t.Fatalf("%s: WANDStats.Bounded = false, want bounds active", ctx)
					}
					if st.Terminated {
						t.Fatalf("%s: exact mode reported Terminated", ctx)
					}
				}
			}
		}
	}

	// The front-loaded corpus must actually prune a small window.
	e := wandTestCorpus(900, 0)
	_, _, st, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned == 0 {
		t.Fatal("front-loaded corpus, k=5: nothing pruned")
	}
	if st.BlocksSkipped == 0 {
		t.Fatal("front-loaded corpus, k=5: no blocks skipped")
	}
}

// TestWANDApproxPageExactTotalBounded: approximate mode may give up on
// the total — never on the page. The page must stay bit-identical to
// the exact ranking, and the total is either the exact one or
// StreamTotalUnknown (exactly when the consumer reports Terminated).
func TestWANDApproxPageExactTotalBounded(t *testing.T) {
	for _, scatter := range []int{0, 7} {
		e := wandTestCorpus(900, scatter)
		for _, k := range []int{1, 2, 8} {
			ctx := fmt.Sprintf("scatter=%d k=%d", scatter, k)
			exactRes, exactTotal, _, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: k})
			if err != nil {
				t.Fatalf("%s: exact: %v", ctx, err)
			}
			aRes, aTotal, st, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: k, Accuracy: AccuracyApprox})
			if err != nil {
				t.Fatalf("%s: approx: %v", ctx, err)
			}
			requireSamePages(t, ctx+" approx-vs-exact", aRes, exactRes)
			if st.Terminated {
				if aTotal != StreamTotalUnknown {
					t.Fatalf("%s: terminated but total = %d", ctx, aTotal)
				}
			} else if aTotal != exactTotal {
				t.Fatalf("%s: not terminated but total = %d, want %d", ctx, aTotal, exactTotal)
			}
		}
	}
	// The front-loaded shape must terminate early.
	e := wandTestCorpus(900, 0)
	_, total, st, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: 5, Accuracy: AccuracyApprox})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Terminated || total != StreamTotalUnknown {
		t.Fatalf("front-loaded approx: Terminated=%v total=%d, want early stop", st.Terminated, total)
	}
}

// TestWANDPagePrefixConsistency is the paging property test over
// randomized corpora: for any K, the approximate page must be exactly
// the first K entries of the full exact ranking (a prefix-consistent
// subset), and consecutive windows must concatenate to it — the
// approximation only ever touches the total.
func TestWANDPagePrefixConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := 120 + r.Intn(500)
		var b strings.Builder
		b.WriteString("<catalog>")
		for i := 0; i < n; i++ {
			b.WriteString("<item>")
			for k := 0; k < 1+r.Intn(6); k++ {
				fmt.Fprintf(&b, "<f%d>alpha</f%d>", k, k)
			}
			if r.Intn(3) > 0 {
				b.WriteString("<g>beta</g>")
			}
			fmt.Fprintf(&b, "<h>w%d</h>", r.Intn(9))
			b.WriteString("</item>")
		}
		b.WriteString("</catalog>")
		e := NewParallel(xmltree.MustParseString(b.String()))

		// The full exact ranking, eager — the reference ordering.
		full, total, err := e.SearchRankedPage("alpha beta", SearchOptions{Mode: ExecEager})
		if err != nil {
			t.Fatalf("trial %d: eager full: %v", trial, err)
		}
		for _, acc := range []Accuracy{AccuracyExact, AccuracyApprox} {
			for _, k := range []int{1, 3, 10} {
				page, pTotal, _, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: k, Accuracy: acc})
				if err != nil {
					t.Fatalf("trial %d acc=%d k=%d: %v", trial, acc, k, err)
				}
				want := full
				if k < len(want) {
					want = want[:k]
				}
				requireSamePages(t, fmt.Sprintf("trial %d acc=%d k=%d prefix", trial, acc, k), page, want)
				if pTotal != total && pTotal != StreamTotalUnknown {
					t.Fatalf("trial %d acc=%d k=%d: total %d, want %d or unknown", trial, acc, k, pTotal, total)
				}
				if acc == AccuracyExact && pTotal != total {
					t.Fatalf("trial %d k=%d: exact total %d, want %d", trial, k, pTotal, total)
				}
				// Two consecutive half-windows must tile the same prefix.
				if k > 1 {
					lo := k / 2
					tail, _, _, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{Limit: k - lo, Offset: lo, Accuracy: acc})
					if err != nil {
						t.Fatalf("trial %d acc=%d k=%d offset window: %v", trial, acc, k, err)
					}
					wantTail := want
					if lo < len(wantTail) {
						wantTail = wantTail[lo:]
					} else {
						wantTail = nil
					}
					requireSamePages(t, fmt.Sprintf("trial %d acc=%d k=%d tail", trial, acc, k), tail, wantTail)
				}
			}
		}
	}
}

// TestWANDUnboundedWindowFallsBack: with no window to prune for, the
// consumer must delegate to plain streaming and report Bounded=false.
func TestWANDUnboundedWindowFallsBack(t *testing.T) {
	e := wandTestCorpus(300, 5)
	wRes, wTotal, st, err := e.SearchRankedPageWAND("alpha beta", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Bounded || st.Pruned != 0 {
		t.Fatalf("unbounded window: stats = %+v, want unbounded passthrough", st)
	}
	eRes, eTotal, err := e.SearchRankedPage("alpha beta", SearchOptions{Mode: ExecEager})
	if err != nil {
		t.Fatal(err)
	}
	if wTotal != eTotal {
		t.Fatalf("unbounded totals: wand %d, eager %d", wTotal, eTotal)
	}
	requireSamePages(t, "unbounded", wRes, eRes)
}

// TestSharedThresholdMonotone pins the lock-free threshold's contract:
// Raise is monotone max over non-negative scores.
func TestSharedThresholdMonotone(t *testing.T) {
	var s SharedThreshold
	if s.Load() != 0 {
		t.Fatalf("fresh threshold = %v", s.Load())
	}
	s.Raise(1.5)
	s.Raise(0.5) // lower: no-op
	if got := s.Load(); got != 1.5 {
		t.Fatalf("after Raise(1.5), Raise(0.5): %v", got)
	}
	s.Raise(2.25)
	if got := s.Load(); got != 2.25 {
		t.Fatalf("after Raise(2.25): %v", got)
	}
	s.Raise(0) // zero: no-op by contract
	if got := s.Load(); got != 2.25 {
		t.Fatalf("after Raise(0): %v", got)
	}
}
