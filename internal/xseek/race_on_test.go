//go:build race

package xseek

// raceEnabled reports whether the race detector is compiled in. The
// timing-ratio regression guards skip under it: instrumentation slows
// the two compared paths by different factors, so the asserted floors
// only hold for uninstrumented builds (CI runs them in a dedicated
// no-race step).
const raceEnabled = true
