package xseek

import (
	"container/heap"
	"sort"

	"repro/internal/index"
	"repro/internal/slca"
)

// RankedResult is a search result with a relevance score. XSACT's demo
// lists results before the user ticks the ones to compare; ranking
// puts the most relevant first, as the paper's "result ranking"
// companion technique does.
type RankedResult struct {
	*Result
	// Score is a TF-IDF-style relevance score: higher is better.
	Score float64
}

// SearchRanked runs Search and orders the results by relevance:
// for each query term, the number of matching elements inside the
// result subtree (term frequency), dampened logarithmically and
// weighted by the term's inverse document frequency in the corpus.
// Ties keep document order, so ranking is deterministic.
func (e *Engine) SearchRanked(query string) ([]*RankedResult, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	return e.RankResults(results, query), nil
}

// SearchRankedPage runs Search and returns the options' window of the
// relevance ordering, plus the total result count — selecting the top
// Offset+Limit results with a bounded heap instead of sorting the full
// set. Concatenating consecutive pages reproduces SearchRanked.
//
// Execution strategy follows opts.Mode: ExecEager materializes then
// ranks; ExecStream runs the lazy pipeline; ExecAuto (the default)
// streams when the planner judges the window small relative to the
// result bound (slca.PlanStreamed) and stays eager otherwise. Both
// pipelines return bit-identical pages and totals — the ranked stream
// consumes all SLCAs (so Total stays exact) but skips materializing,
// sorting, and labelling the non-window results.
func (e *Engine) SearchRankedPage(query string, opts SearchOptions) ([]*RankedResult, int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, 0, err
	}
	stream := opts.Mode == ExecStream
	if opts.Mode == ExecAuto {
		lo := opts.Offset
		if lo < 0 {
			lo = 0
		}
		need := 0
		if opts.Limit > 0 {
			if n := lo + opts.Limit; n > lo {
				need = n
			}
		}
		if slca.PlanStreamed(q.Stats, need) {
			stream = true
			e.plannerStreamed.Add(1)
		}
	}
	if stream {
		return q.RankStream(opts)
	}
	results, err := q.Execute()
	if err != nil {
		return nil, 0, err
	}
	return e.RankPage(results, query, opts), len(results), nil
}

// RankResults scores and orders an already-computed result set for a
// query — the scoring half of SearchRanked, split out so callers that
// cache search results (the serving engine) can rank without repeating
// the SLCA search.
func (e *Engine) RankResults(results []*Result, query string) []*RankedResult {
	out := e.scoreResults(results, query)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RankPage returns one window of the ranking RankResults would
// produce, without a full sort: the top Offset+Limit entries are
// selected with a bounded min-heap (O(n log k) for k ≪ n), then the
// window is cut from their sorted order. A window covering the whole
// set falls back to the full sort.
func (e *Engine) RankPage(results []*Result, query string, opts SearchOptions) []*RankedResult {
	lo, hi := opts.Window(len(results))
	if hi >= len(results) {
		return e.RankResults(results, query)[lo:]
	}
	scored := e.scoreResults(results, query)
	top := topK(scored, hi)
	return top[lo:]
}

// scoreResults computes each result's TF-IDF score in input order,
// using the corpus constants precomputed at engine construction.
func (e *Engine) scoreResults(results []*Result, query string) []*RankedResult {
	terms := index.TokenizeQuery(query)
	out := make([]*RankedResult, len(results))
	for i, r := range results {
		score := 0.0
		for _, t := range terms {
			idf := e.termIDF(t)
			if idf == 0 {
				continue
			}
			tf := index.CountUnder(e.idx.Lookup(t), r.Node.ID)
			if tf == 0 {
				continue
			}
			score += TermWeight(tf, idf)
		}
		out[i] = &RankedResult{Result: r, Score: score}
	}
	return out
}

// rankHeap is a min-heap of the k best entries seen so far: the worst
// of the kept entries sits at the root, ready to be displaced. Order
// matches the full stable sort exactly — higher score first, input
// index (document order for Search output) breaking ties — so a page
// cut from the heap's result equals the same page of RankResults.
type rankHeap struct {
	entries []*RankedResult
	idx     []int // input index of each entry, the tie-breaker
}

// beats reports whether entry a ranks strictly before entry b.
func (h *rankHeap) beats(a, b int) bool {
	if h.entries[a].Score != h.entries[b].Score {
		return h.entries[a].Score > h.entries[b].Score
	}
	return h.idx[a] < h.idx[b]
}

func (h *rankHeap) Len() int           { return len(h.entries) }
func (h *rankHeap) Less(i, j int) bool { return h.beats(j, i) } // min-heap: worst on top
func (h *rankHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *rankHeap) Push(x any) { panic("unused: rankHeap is fixed-size") }
func (h *rankHeap) Pop() any {
	n := len(h.entries) - 1
	e := h.entries[n]
	h.entries = h.entries[:n]
	h.idx = h.idx[:n]
	return e
}

// topK returns the k best entries of scored in rank order. scored is
// indexed in input order (the tie-break key).
func topK(scored []*RankedResult, k int) []*RankedResult {
	if k >= len(scored) {
		k = len(scored)
	}
	h := &rankHeap{entries: make([]*RankedResult, 0, k), idx: make([]int, 0, k)}
	for i, r := range scored {
		if len(h.entries) < k {
			h.entries = append(h.entries, r)
			h.idx = append(h.idx, i)
			if len(h.entries) == k {
				heap.Init(h)
			}
			continue
		}
		// Replace the root (worst kept) when r outranks it. Later
		// entries never beat equal-scored kept ones: ties go to the
		// lower input index.
		h.entries = append(h.entries, r)
		h.idx = append(h.idx, i)
		if h.beats(k, 0) {
			h.Swap(0, k)
		}
		h.entries, h.idx = h.entries[:k], h.idx[:k]
		heap.Fix(h, 0)
	}
	// Drain worst-first, filling the output back to front.
	out := make([]*RankedResult, len(h.entries))
	for n := len(h.entries) - 1; n >= 0; n-- {
		out[n] = heap.Pop(h).(*RankedResult)
	}
	return out
}
