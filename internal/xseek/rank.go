package xseek

import (
	"math"
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
)

// RankedResult is a search result with a relevance score. XSACT's demo
// lists results before the user ticks the ones to compare; ranking
// puts the most relevant first, as the paper's "result ranking"
// companion technique does.
type RankedResult struct {
	*Result
	// Score is a TF-IDF-style relevance score: higher is better.
	Score float64
}

// SearchRanked runs Search and orders the results by relevance:
// for each query term, the number of matching elements inside the
// result subtree (term frequency), dampened logarithmically and
// weighted by the term's inverse document frequency in the corpus.
// Ties keep document order, so ranking is deterministic.
func (e *Engine) SearchRanked(query string) ([]*RankedResult, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	return e.RankResults(results, query), nil
}

// RankResults scores and orders an already-computed result set for a
// query — the scoring half of SearchRanked, split out so callers that
// cache search results (the serving engine) can rank without repeating
// the SLCA search.
func (e *Engine) RankResults(results []*Result, query string) []*RankedResult {
	terms := index.TokenizeQuery(query)
	total := e.root.CountNodes()

	out := make([]*RankedResult, len(results))
	for i, r := range results {
		score := 0.0
		for _, t := range terms {
			postings := e.idx.Lookup(t)
			tf := countUnder(postings, r.Node.ID)
			if tf == 0 {
				continue
			}
			idf := math.Log(float64(total+1) / float64(len(postings)+1))
			score += (1 + math.Log(float64(tf))) * idf
		}
		out[i] = &RankedResult{Result: r, Score: score}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// countUnder returns how many posting IDs fall inside the subtree
// rooted at root. Descendants form a contiguous block in document
// order, so two binary searches bound the range.
func countUnder(postings index.PostingList, root dewey.ID) int {
	lo := sort.Search(len(postings), func(i int) bool {
		return postings[i].Compare(root) >= 0
	})
	hi := sort.Search(len(postings), func(i int) bool {
		return postings[i].Compare(root) > 0 && !root.IsAncestorOrSelf(postings[i])
	})
	if hi < lo {
		return 0
	}
	return hi - lo
}
