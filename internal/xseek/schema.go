package xseek

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// Category classifies a node type per the XSeek entity model.
type Category int

const (
	// ConnectionNode is structural glue (e.g. a <reviews> wrapper).
	ConnectionNode Category = iota
	// EntityNode denotes an instance of an entity set (a *-node).
	EntityNode
	// AttributeNode denotes a property of an entity (a valued leaf).
	AttributeNode
)

// String returns a human-readable category name.
func (c Category) String() string {
	switch c {
	case EntityNode:
		return "entity"
	case AttributeNode:
		return "attribute"
	default:
		return "connection"
	}
}

// typeInfo aggregates evidence about one node type (identified by its
// root-to-node tag path) across the whole document.
type typeInfo struct {
	path      string
	tag       string
	instances int
	// maxSiblings is the maximum number of same-tag children observed
	// under any single parent instance; >1 marks a *-node.
	maxSiblings int
	// leafInstances counts instances that are leaf elements.
	leafInstances int
}

// Schema is a schema summary inferred from one document. It maps each
// node-type path to a category. Paths use the xmltree.Node.Path form
// ("products/product/name").
type Schema struct {
	types map[string]*typeInfo

	// children links each type to its child types by tag, derived
	// lazily (once — Schemas are immutable after construction) so the
	// streaming path walker can classify nodes with two pointer-keyed
	// map hits instead of building a path string per node.
	childOnce sync.Once
	children  map[*typeInfo]map[string]*typeInfo
}

// InferSchema builds the schema summary for the tree rooted at root.
func InferSchema(root *xmltree.Node) *Schema {
	s := &Schema{types: make(map[string]*typeInfo)}
	s.visit(root, root.Tag)
	return s
}

// visit folds the subtree rooted at n (whose root-to-n tag path is
// path) into the schema's evidence.
func (s *Schema) visit(n *xmltree.Node, path string) {
	info := s.types[path]
	if info == nil {
		info = &typeInfo{path: path, tag: n.Tag}
		s.types[path] = info
	}
	info.instances++
	if n.IsLeafElement() {
		info.leafInstances++
	}
	counts := make(map[string]int)
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		counts[c.Tag]++
	}
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		childPath := path + "/" + c.Tag
		s.visit(c, childPath)
		ci := s.types[childPath]
		if counts[c.Tag] > ci.maxSiblings {
			ci.maxSiblings = counts[c.Tag]
		}
	}
}

// CategoryOf returns the category of the node type at the given path.
// Unknown paths are connection nodes.
func (s *Schema) CategoryOf(path string) Category {
	info := s.types[path]
	if info == nil {
		return ConnectionNode
	}
	if info.maxSiblings > 1 {
		return EntityNode
	}
	// Non-repeating leaf elements carry values: attributes.
	if info.leafInstances > 0 {
		return AttributeNode
	}
	return ConnectionNode
}

// CategoryOfNode classifies a concrete node via its path.
func (s *Schema) CategoryOfNode(n *xmltree.Node) Category {
	if n == nil || n.Kind != xmltree.Element {
		return ConnectionNode
	}
	return s.CategoryOf(n.Path())
}

// IsEntity reports whether the node is an entity instance.
func (s *Schema) IsEntity(n *xmltree.Node) bool {
	return s.CategoryOfNode(n) == EntityNode
}

// NearestEntity returns the closest ancestor-or-self of n that is an
// entity instance, or nil if none exists (then the document root acts
// as the conceptual entity).
func (s *Schema) NearestEntity(n *xmltree.Node) *xmltree.Node {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.Kind == xmltree.Element && s.IsEntity(cur) {
			return cur
		}
	}
	return nil
}

// linkChildren derives the child-type links from the path-keyed type
// map. Idempotent and cheap (one pass over the types); every Schema
// construction path funnels through it on first walker use.
func (s *Schema) linkChildren() {
	s.childOnce.Do(func() {
		s.children = make(map[*typeInfo]map[string]*typeInfo, len(s.types))
		for path, info := range s.types {
			cut := strings.LastIndexByte(path, '/')
			if cut < 0 {
				continue // a root type has no parent
			}
			parent := s.types[path[:cut]]
			if parent == nil {
				continue
			}
			m := s.children[parent]
			if m == nil {
				m = make(map[string]*typeInfo)
				s.children[parent] = m
			}
			m[info.tag] = info
		}
	})
}

// typeOf returns the type at a root-level path (the root's own tag).
func (s *Schema) typeOf(path string) *typeInfo { return s.types[path] }

// childType resolves the type of a child element by tag under parent;
// nil parents or unknown tags yield nil (connection semantics).
func (s *Schema) childType(parent *typeInfo, tag string) *typeInfo {
	if parent == nil {
		return nil
	}
	return s.children[parent][tag]
}

// isEntityInfo mirrors CategoryOf's entity rule on a resolved type.
func isEntityInfo(info *typeInfo) bool { return info != nil && info.maxSiblings > 1 }

// Paths returns every known node-type path in lexicographic order.
func (s *Schema) Paths() []string {
	out := make([]string, 0, len(s.types))
	for p := range s.types {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Instances returns how many instances of the node type at path were
// observed.
func (s *Schema) Instances(path string) int {
	if info := s.types[path]; info != nil {
		return info.instances
	}
	return 0
}
