package xseek

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// stableSortByScore applies the same ordering rule RankResults uses,
// as the reference for the heap-selection tests.
func stableSortByScore(rs []*RankedResult) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}

// pagedDoc is a corpus with enough results (and score ties) to make
// pagination and partial ranking interesting: every product matches
// "gps", with term frequencies cycling 1..3 so distinct scores repeat.
func pagedDoc(n int) string {
	var b strings.Builder
	b.WriteString("<store>")
	for i := 0; i < n; i++ {
		extra := strings.Repeat(" gps", i%3)
		fmt.Fprintf(&b, "<product><name>P%02d gps</name><blurb>unit%s</blurb></product>", i, extra)
	}
	b.WriteString("</store>")
	return b.String()
}

func TestSearchPageConcatenationEqualsSearch(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(23)))
	full, err := e.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 23 {
		t.Fatalf("full = %d results, want 23", len(full))
	}
	for _, limit := range []int{1, 4, 7, 23, 100} {
		var got []*Result
		for off := 0; ; off += limit {
			page, total, err := e.SearchPage("gps", SearchOptions{Limit: limit, Offset: off})
			if err != nil {
				t.Fatal(err)
			}
			if total != len(full) {
				t.Fatalf("limit %d offset %d: total = %d, want %d", limit, off, total, len(full))
			}
			if len(page) == 0 {
				break
			}
			got = append(got, page...)
		}
		if len(got) != len(full) {
			t.Fatalf("limit %d: concatenated %d results, want %d", limit, len(got), len(full))
		}
		for i := range full {
			// Each search re-runs the pipeline, so compare node
			// identity rather than result-struct pointers.
			if got[i].Node != full[i].Node {
				t.Fatalf("limit %d: page concat diverges at %d: %q vs %q", limit, i, got[i].Label, full[i].Label)
			}
		}
	}
}

func TestSearchPageOutOfRangeOffset(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(5)))
	page, total, err := e.SearchPage("gps", SearchOptions{Limit: 10, Offset: 99})
	if err != nil {
		t.Fatalf("out-of-range offset errored: %v", err)
	}
	if len(page) != 0 || total != 5 {
		t.Fatalf("page = %d results, total = %d; want empty page, total 5", len(page), total)
	}
	// Negative values clamp instead of failing.
	page, total, err = e.SearchPage("gps", SearchOptions{Limit: -3, Offset: -7})
	if err != nil || len(page) != 5 || total != 5 {
		t.Fatalf("negative options: page=%d total=%d err=%v, want full list", len(page), total, err)
	}
}

func TestWindowBounds(t *testing.T) {
	cases := []struct {
		opts   SearchOptions
		n      int
		lo, hi int
	}{
		{SearchOptions{}, 10, 0, 10},
		{SearchOptions{Limit: 3}, 10, 0, 3},
		{SearchOptions{Limit: 3, Offset: 9}, 10, 9, 10},
		{SearchOptions{Offset: 4}, 10, 4, 10},
		{SearchOptions{Limit: 5, Offset: 20}, 10, 10, 10},
		{SearchOptions{Limit: -1, Offset: -1}, 10, 0, 10},
		{SearchOptions{Limit: 2}, 0, 0, 0},
		// Adversarial limits (e.g. strconv.Atoi range-clamping an HTTP
		// parameter to MaxInt) must not overflow lo+Limit.
		{SearchOptions{Limit: math.MaxInt, Offset: 1}, 10, 1, 10},
		{SearchOptions{Limit: math.MaxInt, Offset: math.MaxInt}, 10, 10, 10},
	}
	for _, c := range cases {
		lo, hi := c.opts.Window(c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Window(%+v, %d) = [%d, %d), want [%d, %d)", c.opts, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

// TestRankPageEqualsRankResults is the partial top-k invariant: every
// window of RankPage must equal the same window of the full stable
// sort, including on score ties (broken by document order).
func TestRankPageEqualsRankResults(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(37)))
	results, err := e.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	full := e.RankResults(results, "gps")
	for _, limit := range []int{1, 2, 5, 10, 36, 37, 50} {
		for _, offset := range []int{0, 1, 7, 30, 36, 37, 99} {
			page := e.RankPage(results, "gps", SearchOptions{Limit: limit, Offset: offset})
			lo, hi := (SearchOptions{Limit: limit, Offset: offset}).Window(len(full))
			want := full[lo:hi]
			if len(page) != len(want) {
				t.Fatalf("limit %d offset %d: %d results, want %d", limit, offset, len(page), len(want))
			}
			for i := range want {
				if page[i].Result != want[i].Result || page[i].Score != want[i].Score {
					t.Fatalf("limit %d offset %d: rank page diverges at %d: %q (%.4f) vs %q (%.4f)",
						limit, offset, i, page[i].Label, page[i].Score, want[i].Label, want[i].Score)
				}
			}
		}
	}
}

// TestTopKRandomizedAgainstFullSort drives the heap selection with
// random scores (including duplicates) and checks it against the
// stable full sort for every k.
func TestTopKRandomizedAgainstFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(40) + 1
		scored := make([]*RankedResult, n)
		for i := range scored {
			scored[i] = &RankedResult{
				Result: &Result{Label: fmt.Sprintf("r%d", i)},
				Score:  float64(r.Intn(5)), // few distinct values → many ties
			}
		}
		full := make([]*RankedResult, n)
		copy(full, scored)
		// Reference: the same stable ordering RankResults applies.
		stableSortByScore(full)
		for k := 0; k <= n+2; k++ {
			got := topK(scored, k)
			want := full
			if k < n {
				want = full[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: topK diverges at %d: %s vs %s", n, k, i, got[i].Label, want[i].Label)
				}
			}
		}
	}
}

func TestSearchRankedPageConcatenationEqualsSearchRanked(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(29)))
	full, err := e.SearchRanked("gps")
	if err != nil {
		t.Fatal(err)
	}
	var got []*RankedResult
	for off := 0; ; off += 6 {
		page, total, err := e.SearchRankedPage("gps", SearchOptions{Limit: 6, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		if total != len(full) {
			t.Fatalf("total = %d, want %d", total, len(full))
		}
		if len(page) == 0 {
			break
		}
		got = append(got, page...)
	}
	if len(got) != len(full) {
		t.Fatalf("concatenated %d, want %d", len(got), len(full))
	}
	for i := range full {
		// Each search re-runs the pipeline, so compare node identity
		// and score rather than result-struct pointers.
		if got[i].Node != full[i].Node || got[i].Score != full[i].Score {
			t.Fatalf("ranked page concat diverges at %d: %q vs %q", i, got[i].Label, full[i].Label)
		}
	}
}

func TestExecuteRejectsUnknownAlgorithmOverride(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(4)))
	q, err := e.Compile("gps")
	if err != nil {
		t.Fatal(err)
	}
	q.Alg = "scan" // typo'd override must fail loudly, not match nothing
	if _, err := q.Execute(); err == nil {
		t.Fatal("unknown algorithm override did not error")
	}
	q.Alg = "" // empty defers to the planner
	if rs, err := q.Execute(); err != nil || len(rs) == 0 {
		t.Fatalf("empty algorithm override: %d results, err %v", len(rs), err)
	}
}

func TestPlannerCountersAdvance(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(8)))
	i0, s0 := e.PlannerDecisions()
	if _, err := e.Search("gps unit"); err != nil {
		t.Fatal(err)
	}
	i1, s1 := e.PlannerDecisions()
	if (i1-i0)+(s1-s0) != 1 {
		t.Fatalf("planner decisions advanced by %d, want 1", (i1-i0)+(s1-s0))
	}
}
