package xseek

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

func TestCleanQueryPassesKnownTerms(t *testing.T) {
	e := New(shopTree(t))
	got := e.CleanQuery("tomtom compact")
	if !reflect.DeepEqual(got, []string{"tomtom", "compact"}) {
		t.Fatalf("CleanQuery = %v", got)
	}
}

func TestCleanQueryFixesTypos(t *testing.T) {
	e := New(shopTree(t))
	got := e.CleanQuery("tomtim compct")
	if !reflect.DeepEqual(got, []string{"tomtom", "compact"}) {
		t.Fatalf("CleanQuery(typos) = %v", got)
	}
}

func TestCleanQueryKeepsHopelessTerms(t *testing.T) {
	e := New(shopTree(t))
	got := e.CleanQuery("xqzptlk")
	if !reflect.DeepEqual(got, []string{"xqzptlk"}) {
		t.Fatalf("CleanQuery(hopeless) = %v", got)
	}
}

func TestSearchCleanedEndToEnd(t *testing.T) {
	e := New(shopTree(t))
	res, cleaned, err := e.SearchCleaned("tomtim 630")
	if err != nil {
		t.Fatalf("cleaned search failed: %v (cleaned=%v)", err, cleaned)
	}
	if len(res) != 1 || res[0].Label != "TomTom Go 630" {
		t.Fatalf("results = %v", res)
	}
	if cleaned[0] != "tomtom" {
		t.Fatalf("cleaned = %v", cleaned)
	}
}

func TestSearchELCASupersetOfSearch(t *testing.T) {
	doc := `
<library>
  <shelf>
    <book><title>go systems</title></book>
    <book><title>go networks</title></book>
    <topic>systems</topic>
  </shelf>
</library>`
	e := New(xmltree.MustParseString(doc))
	slcaRes, err := e.Search("go systems")
	if err != nil {
		t.Fatal(err)
	}
	elcaRes, err := e.SearchELCA("go systems")
	if err != nil {
		t.Fatal(err)
	}
	if len(elcaRes) < len(slcaRes) {
		t.Fatalf("ELCA results %d < SLCA results %d", len(elcaRes), len(slcaRes))
	}
	seen := map[string]bool{}
	for _, r := range elcaRes {
		seen[r.Node.ID.String()] = true
	}
	for _, r := range slcaRes {
		if !seen[r.Node.ID.String()] {
			t.Fatalf("SLCA result %s missing from ELCA results", r.Label)
		}
	}
}

func TestSearchELCAEmptyQuery(t *testing.T) {
	e := New(shopTree(t))
	if _, err := e.SearchELCA("..."); err == nil {
		t.Fatal("empty ELCA query should error")
	}
}
