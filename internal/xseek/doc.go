// Package xseek implements an XSeek-style keyword search engine for
// XML (Liu & Chen, SIGMOD 2007 / VLDB 2008): SLCA-based matching plus
// inference of the result's meaningful return information. It supplies
// XSACT's "Search Engine" and "Entity Identifier" boxes (Figure 3 of
// the demo paper).
//
// The entity identifier reasons over a schema summary inferred from
// the data, in the spirit of the Entity-Relationship model:
//
//   - a node type is a *-node if some parent instance has two or more
//     children of that tag — multiple instances indicate an entity set;
//   - a non-*-node leaf carrying a value denotes an attribute;
//   - remaining nodes are connection nodes (structural glue).
package xseek
