package xseek

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xmltree"
)

// This file is the streaming execution path: SLCAs pulled lazily from
// slca.Iterator are lifted to entities, deduplicated, and either
// emitted in document order (ResultStream — early-terminating paging)
// or fed through a bounded heap (consumeRankedStream — exact top-k
// with scores bit-identical to the eager ranking). The shard and
// update engines reuse EntityStream and consumeRankedStream with
// their own tf sources.

// ExecMode selects how a paged query executes.
type ExecMode int

const (
	// ExecAuto lets the planner choose between eager and streamed
	// execution per query (the default).
	ExecAuto ExecMode = iota
	// ExecEager forces the materialize-then-window pipeline.
	ExecEager
	// ExecStream forces the lazy pipeline.
	ExecStream
)

// StreamTotalUnknown is the Total a doc-order streamed page reports
// when early termination stopped before the result count was known.
const StreamTotalUnknown = -1

// pathWalker resolves document-ordered Dewey IDs against a tree and
// schema while maintaining the root-to-node stack across calls, so n
// lookups cost amortized O(depth change) with no path-string
// allocation — the streaming replacement for NodeAt + NearestEntity.
type pathWalker struct {
	schema *Schema
	nodes  []*xmltree.Node // nodes[i] is the depth-i ancestor of the current node
	infos  []*typeInfo     // schema type of nodes[i] (nil off-schema / text)
	cur    dewey.ID        // ID the stack currently describes
	// One-entry memo for schema child-type resolution: consecutive
	// descents overwhelmingly step through siblings of one type (the
	// result entities), so the same (parent type, tag) pair repeats and
	// the map lookups can be skipped.
	memoParent *typeInfo
	memoTag    string
	memoChild  *typeInfo
}

func newPathWalker(root *xmltree.Node, schema *Schema) *pathWalker {
	schema.linkChildren()
	return &pathWalker{
		schema: schema,
		nodes:  []*xmltree.Node{root},
		infos:  []*typeInfo{schema.typeOf(root.Tag)},
	}
}

// descend moves the walker to id (which must not precede the previous
// target in document order) and returns its node, or nil when id is
// not in the tree.
func (w *pathWalker) descend(id dewey.ID) *xmltree.Node {
	keep := dewey.CommonPrefixLen(w.cur, id)
	w.nodes = w.nodes[:keep+1]
	w.infos = w.infos[:keep+1]
	for level := keep; level < len(id); level++ {
		parent := w.nodes[level]
		child := childByOrdinal(parent, id[level])
		if child == nil {
			return nil
		}
		var info *typeInfo
		if child.Kind == xmltree.Element {
			if parentInfo := w.infos[level]; parentInfo == w.memoParent && child.Tag == w.memoTag {
				info = w.memoChild
			} else {
				info = w.schema.childType(parentInfo, child.Tag)
				w.memoParent, w.memoTag, w.memoChild = parentInfo, child.Tag, info
			}
		}
		w.nodes = append(w.nodes, child)
		w.infos = append(w.infos, info)
	}
	w.cur = append(w.cur[:0], id...)
	return w.nodes[len(w.nodes)-1]
}

// childByOrdinal finds the child carrying Dewey ordinal ord. Positional
// indexing answers directly on cold trees; live roots have ordinal
// holes after removals, so a binary search over the (ordinal-sorted)
// children backs it up.
func childByOrdinal(parent *xmltree.Node, ord int) *xmltree.Node {
	cs := parent.Children
	if ord >= 0 && ord < len(cs) {
		if cid := cs[ord].ID; len(cid) > 0 && cid[len(cid)-1] == ord {
			return cs[ord]
		}
	}
	k := sort.Search(len(cs), func(i int) bool {
		cid := cs[i].ID
		return len(cid) > 0 && cid[len(cid)-1] >= ord
	})
	if k < len(cs) {
		if cid := cs[k].ID; len(cid) > 0 && cid[len(cid)-1] == ord {
			return cs[k]
		}
	}
	return nil
}

// nearestEntity returns the deepest stack entry that is an entity
// instance, or nil — exactly NearestEntity over the current node.
func (w *pathWalker) nearestEntity() *xmltree.Node {
	for i := len(w.infos) - 1; i >= 0; i-- {
		if isEntityInfo(w.infos[i]) {
			return w.nodes[i]
		}
	}
	return nil
}

// entityAncestorBlocks reports whether some entity at level 1..limit of
// the current stack is an ancestor-or-self of the entity at eID — the
// hold condition of the streamed entity buffer. limit must already be
// clamped to min(len(eID), CommonPrefixLen(eID, current)).
func (w *pathWalker) entityAncestorBlocks(limit int) bool {
	for i := 1; i <= limit && i < len(w.infos); i++ {
		if isEntityInfo(w.infos[i]) {
			return true
		}
	}
	return false
}

// EntityHit is one streamed search hit before labelling: the result
// entity and the SLCA match that produced it.
type EntityHit struct {
	Node  *xmltree.Node
	Match *xmltree.Node
}

// EntityStream lifts a document-ordered SLCA stream to a document-
// ordered stream of distinct result entities — the lazy twin of
// mapToEntities, with identical output. Entities are held in a small
// pending buffer until no unseen SLCA can map to them or one of their
// entity ancestors (which would reorder or duplicate the output), so
// every hit is emitted exactly once, in document order, as early as
// correctness allows.
type EntityStream struct {
	it      slca.Iterator
	w       *pathWalker
	pending []EntityHit
	out     []EntityHit // flushed, ready to emit (FIFO)
	outPos  int
	done    bool
	err     error
	// keep/drop implement FilterEntities: hits failing keep are
	// diverted to drop instead of emitted.
	keep func(*xmltree.Node) bool
	drop func(EntityHit)
}

// NewEntityStream builds an entity stream over the given SLCA iterator
// and live tree/schema pair. A stream whose SLCA is missing from the
// tree stops with an error (the strict mapToEntities contract).
func NewEntityStream(it slca.Iterator, root *xmltree.Node, schema *Schema) *EntityStream {
	return &EntityStream{it: it, w: newPathWalker(root, schema)}
}

// FilterEntities diverts hits whose entity fails keep to drop (when
// non-nil) instead of emitting them: consumers never see them and
// totals never count them. The sharded executor installs it so a leg
// keeps spine-rooted entities — whose matches can span shard groups —
// out of its own stream while still reporting them for the fan-out's
// cross-group fix-up. Deduplication runs before the filter, so drop
// sees each distinct entity at most once, in document order.
func (es *EntityStream) FilterEntities(keep func(*xmltree.Node) bool, drop func(EntityHit)) {
	es.keep = keep
	es.drop = drop
}

// Next returns the next result entity in document order.
func (es *EntityStream) Next() (EntityHit, bool) {
	for {
		if es.outPos < len(es.out) {
			h := es.out[es.outPos]
			es.outPos++
			if es.keep != nil && !es.keep(h.Node) {
				if es.drop != nil {
					es.drop(h)
				}
				continue
			}
			return h, true
		}
		es.out = es.out[:0]
		es.outPos = 0
		if es.done || es.err != nil {
			return EntityHit{}, false
		}
		m, ok := es.it.Next()
		if !ok {
			// Exhausted: everything pending is final.
			es.done = true
			es.out = append(es.out, es.pending...)
			es.pending = es.pending[:0]
			continue
		}
		matchNode := es.w.descend(m)
		if matchNode == nil {
			es.err = fmt.Errorf("xseek: internal: SLCA %v not in tree", m)
			return EntityHit{}, false
		}
		// Flush pending entities that no future SLCA can affect: a
		// later SLCA maps into entity e (duplicate) or an entity
		// ancestor of e (document-order inversion) only through an
		// entity ancestor-or-self of e that also contains the current
		// SLCA — i.e. an entity on the current stack at a level within
		// both e's ID and the common prefix.
		flushed := 0
		for flushed < len(es.pending) {
			e := es.pending[flushed]
			limit := dewey.CommonPrefixLen(e.Node.ID, m)
			if len(e.Node.ID) < limit {
				limit = len(e.Node.ID)
			}
			if es.w.entityAncestorBlocks(limit) {
				break
			}
			es.out = append(es.out, e)
			flushed++
		}
		if flushed > 0 {
			// Compact in place rather than advancing the slice base, so
			// the buffer's capacity keeps being reused (pending stays
			// tiny — usually one entry — so the copy is cheap).
			n := copy(es.pending, es.pending[flushed:])
			es.pending = es.pending[:n]
		}
		ent := es.w.nearestEntity()
		if ent == nil {
			ent = matchNode
		}
		es.insertPending(EntityHit{Node: ent, Match: matchNode})
	}
}

// insertPending adds a hit in document order, merging duplicates (the
// first match wins, as the eager seen-map does).
func (es *EntityStream) insertPending(h EntityHit) {
	k := sort.Search(len(es.pending), func(i int) bool {
		return es.pending[i].Node.ID.Compare(h.Node.ID) >= 0
	})
	if k < len(es.pending) && es.pending[k].Node.ID.Equal(h.Node.ID) {
		return
	}
	es.pending = append(es.pending, EntityHit{})
	copy(es.pending[k+1:], es.pending[k:])
	es.pending[k] = h
}

// Err reports a stream-terminating internal error, if any.
func (es *EntityStream) Err() error { return es.err }

// Cursor is the document-ordered pull interface over labelled search
// results that every executor's streaming path exposes: the lazy
// ResultStream here and on the live-update engine, and a materialized
// fallback (SliceCursor) where a true stream is not available. After
// Next returns false, Err distinguishes exhaustion from an internal
// error, and Emitted is the exact result total.
type Cursor interface {
	Next() (*Result, bool)
	Err() error
	Emitted() int
}

// ResultStream is a pull cursor over labelled search results in
// document order — the streaming twin of Execute. Labels are computed
// per emitted result, so a consumer stopping after k results pays k
// labelling calls, not one per result.
type ResultStream struct {
	es *EntityStream
	n  int
}

// NewResultStream wraps an entity stream in the labelling cursor —
// the bridge the live-update engine uses to reuse this pipeline stage
// over its own composite iterators.
func NewResultStream(es *EntityStream) *ResultStream { return &ResultStream{es: es} }

// Next returns the next result; after false, check Err.
func (rs *ResultStream) Next() (*Result, bool) {
	h, ok := rs.es.Next()
	if !ok {
		return nil, false
	}
	rs.n++
	return &Result{Node: h.Node, Match: h.Match, Label: LabelFor(h.Node)}, true
}

// Err reports a stream-terminating internal error, if any.
func (rs *ResultStream) Err() error { return rs.es.Err() }

// Emitted returns how many results the stream has produced so far;
// once Next has returned false with a nil Err, it is the exact total.
func (rs *ResultStream) Emitted() int { return rs.n }

// SLCAIter returns the lazy SLCA stage of the compiled query: a
// pull-based iterator equivalent to SLCAs(), honouring the planned (or
// overridden) algorithm's seek discipline. Galloping plans ride the
// index's skip ladders on long lists.
func (q *Query) SLCAIter() (slca.Iterator, error) {
	alg := q.Alg
	if alg == slca.AlgAuto || alg == "" {
		alg = slca.Plan(q.Stats)
	}
	switch alg {
	case slca.AlgNaive:
		return slca.IterOver(slca.Naive(q.Lists)), nil
	case slca.AlgScanEager, slca.AlgIndexedLookup:
	default:
		return nil, fmt.Errorf("xseek: unknown SLCA algorithm %q", q.Alg)
	}
	for _, l := range q.Lists {
		if len(l) == 0 {
			return slca.IterOver(nil), nil
		}
	}
	smallest := 0
	for i, l := range q.Lists {
		if len(l) < len(q.Lists[smallest]) {
			smallest = i
		}
	}
	others := make([]index.Iter, 0, len(q.Lists)-1)
	for i, l := range q.Lists {
		if i == smallest {
			continue
		}
		if alg == slca.AlgScanEager {
			others = append(others, index.ListIterLinear(l))
		} else {
			others = append(others, q.eng.idx.TermIter(q.Terms[i]))
		}
	}
	return slca.StreamIters(index.ListIter(q.Lists[smallest]), others), nil
}

// Stream runs the lazy pipeline — SLCA, entity mapping, labelling —
// returning a document-ordered result cursor. Consuming it to
// exhaustion yields exactly Execute's result list.
func (q *Query) Stream() (*ResultStream, error) {
	it, err := q.SLCAIter()
	if err != nil {
		return nil, err
	}
	return &ResultStream{es: NewEntityStream(it, q.eng.root, q.eng.schema)}, nil
}

// SearchStream compiles the query and returns the lazy doc-order
// result cursor — the entry point of the serving layer's resumable
// stream cache.
func (e *Engine) SearchStream(query string) (Cursor, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.Stream()
}

// sliceCursor adapts a materialized result list to the Cursor shape.
type sliceCursor struct {
	results []*Result
	pos     int
}

// SliceCursor wraps an already-computed, document-ordered result list
// as a Cursor — the fallback for executors whose doc-order path has no
// lazy pipeline (the sharded fan-out materializes per-shard anyway).
func SliceCursor(results []*Result) Cursor { return &sliceCursor{results: results} }

func (c *sliceCursor) Next() (*Result, bool) {
	if c.pos >= len(c.results) {
		return nil, false
	}
	r := c.results[c.pos]
	c.pos++
	return r, true
}

func (c *sliceCursor) Err() error   { return nil }
func (c *sliceCursor) Emitted() int { return c.pos }

// Scorer computes one entity's full relevance score. Each engine
// flavour supplies its own tf source (cursor counters here, analytic
// composite counts on the live path); the weight formula is shared so
// streamed scores stay bit-identical to eager ones.
type Scorer func(entity dewey.ID) float64

// StreamScorer returns this engine's scorer for the query's terms:
// per-term monotone counters over the index posting lists, weighted
// with the engine's precomputed IDF. Entities must be scored in
// document order (the EntityStream emission order).
func (e *Engine) StreamScorer(terms []string) Scorer {
	type termCursor struct {
		idf     float64
		counter index.Counter
	}
	cursors := make([]termCursor, 0, len(terms))
	for _, t := range terms {
		idf := e.termIDF(t)
		if idf == 0 {
			continue // absent term: contributes nothing, as eager skips it
		}
		cursors = append(cursors, termCursor{idf: idf, counter: index.NewCounter(e.idx.Lookup(t))})
	}
	return func(id dewey.ID) float64 {
		score := 0.0
		for i := range cursors {
			if tf := cursors[i].counter.CountUnder(id); tf > 0 {
				score += TermWeight(tf, cursors[i].idf)
			}
		}
		return score
	}
}

// streamHit is one scored entity awaiting the top-k cut. ord is the
// emission index — document order, the ranking tie-break.
type streamHit struct {
	hit   EntityHit
	score float64
	ord   int
}

// streamHeap is a bounded min-heap of the best hits so far, ordered
// exactly like rankHeap (score desc, document order asc) so the drain
// equals the same window of the eager stable ranking.
type streamHeap []streamHit

func (h streamHeap) beats(a, b streamHit) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.ord < b.ord
}
func (h streamHeap) Len() int           { return len(h) }
func (h streamHeap) Less(i, j int) bool { return h.beats(h[j], h[i]) } // min-heap: worst on top
func (h streamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)        { *h = append(*h, x.(streamHit)) }
func (h *streamHeap) Pop() any          { old := *h; n := len(old) - 1; v := old[n]; *h = old[:n]; return v }

// ConsumeRankedStream drains an entity stream through a bounded heap
// and returns the options' window of the exact relevance ranking plus
// the exact total. Only the window's survivors are labelled. The
// output is bit-identical — scores, order, length — to scoring the
// eager result list and ranking it with RankPage/RankResults. Shared
// by every executor's streamed ranked path; each supplies its own tf
// source through the Scorer.
func ConsumeRankedStream(es *EntityStream, opts SearchOptions, score Scorer) ([]*RankedResult, int, error) {
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	want := 0 // 0: unbounded (whole ranking)
	if opts.Limit > 0 {
		if c := lo + opts.Limit; c > lo { // overflow-safe, mirroring Window
			want = c
		}
	}
	var h streamHeap
	total := 0
	for {
		hit, ok := es.Next()
		if !ok {
			break
		}
		sc := score(hit.Node.ID)
		entry := streamHit{hit: hit, score: sc, ord: total}
		total++
		if want == 0 || len(h) < want {
			h = append(h, entry)
			if len(h) == want {
				heap.Init(&h)
			}
			continue
		}
		// Bounded: displace the worst kept entry when beaten. Ties keep
		// the earlier document position, so a later equal score never
		// displaces.
		if h.beats(entry, h[0]) {
			h[0] = entry
			heap.Fix(&h, 0)
		}
	}
	if err := es.Err(); err != nil {
		return nil, 0, err
	}
	// Drain into rank order. The unbounded (or under-filled) heap was
	// never heapified; sort it by the same key.
	var ranked []streamHit
	if want != 0 && len(h) == want {
		ranked = make([]streamHit, len(h))
		for n := len(h) - 1; n >= 0; n-- {
			ranked[n] = heap.Pop(&h).(streamHit)
		}
	} else {
		ranked = h
		sort.Slice(ranked, func(i, j int) bool { return h.beats(ranked[i], ranked[j]) })
	}
	if lo > len(ranked) {
		lo = len(ranked)
	}
	out := make([]*RankedResult, 0, len(ranked)-lo)
	for _, s := range ranked[lo:] {
		out = append(out, &RankedResult{
			Result: &Result{Node: s.hit.Node, Match: s.hit.Match, Label: LabelFor(s.hit.Node)},
			Score:  s.score,
		})
	}
	return out, total, nil
}

// RankStream runs the streamed ranked pipeline on the compiled query:
// lazy SLCAs, streamed entity mapping, bounded-heap top-k. The window
// and total are bit-identical to SearchRankedPage's eager path.
func (q *Query) RankStream(opts SearchOptions) ([]*RankedResult, int, error) {
	it, err := q.SLCAIter()
	if err != nil {
		return nil, 0, err
	}
	es := NewEntityStream(it, q.eng.root, q.eng.schema)
	return ConsumeRankedStream(es, opts, q.eng.StreamScorer(q.Terms))
}

// SearchRankedPageStream is the always-streamed twin of
// SearchRankedPage, for callers (and benchmarks) that want to bypass
// the planner's routing. It still counts toward StreamedDecisions —
// the counter reports pages that ran streamed, however chosen — and
// matches the update and shard engines' accounting.
func (e *Engine) SearchRankedPageStream(query string, opts SearchOptions) ([]*RankedResult, int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, 0, err
	}
	e.plannerStreamed.Add(1)
	return q.RankStream(opts)
}

// EstimateResults bounds the query's result count for stream planning:
// the driving (smallest) posting list length, 0 when the query cannot
// match. It is a cheap upper bound, not an exact count.
func (e *Engine) EstimateResults(query string) int {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return 0
	}
	est := -1
	for _, t := range terms {
		df := e.idx.DocFreq(t)
		if df == 0 {
			return 0
		}
		if est == -1 || df < est {
			est = df
		}
	}
	return est
}
