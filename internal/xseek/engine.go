package xseek

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xmltree"
)

// ErrEmptyQuery is returned when a query tokenizes to no keywords.
var ErrEmptyQuery = fmt.Errorf("xseek: empty query")

// Engine is an XSeek-style keyword search engine over one XML document:
// an inverted index, a schema summary, and SLCA + return-node logic.
//
// Search runs as a staged pipeline — tokenize → plan → SLCA →
// entity-map → label — with the first two stages reified as a Query
// value (Compile) so callers can inspect or override the plan, and the
// final result list addressable in windows (SearchPage).
type Engine struct {
	root   *xmltree.Node
	idx    *index.Index
	schema *Schema

	// Derived corpus constants, computed once at construction instead
	// of per ranking call: the corpus node count (a full tree walk) and
	// each term's inverse document frequency.
	totalNodes int
	idf        map[string]float64
	// idfID is the same table keyed by symbol ID — a dense slice, so
	// the ranking inner loop indexes an array instead of hashing the
	// term string. Only self-derived engines (initDerived) carry it;
	// shard engines share one late-filled idf map instead (see
	// FromPartsRanked) and resolve through that.
	idfID []float64

	// Cost-planner decision counters for this corpus's compiled
	// queries, surfaced through the serving layer's metrics.
	plannerIndexed atomic.Int64
	plannerScan    atomic.Int64
	// plannerStreamed counts ranked pages the planner's third choice
	// routed to the lazy pipeline (orthogonal to the algorithm
	// counters above: a streamed query still picks a seek discipline).
	plannerStreamed atomic.Int64
}

// New builds an engine (index + schema summary) over root. The tree
// must carry Dewey IDs (xmltree.Parse assigns them).
func New(root *xmltree.Node) *Engine {
	e := &Engine{
		root:   root,
		idx:    index.Build(root),
		schema: InferSchema(root),
	}
	e.initDerived()
	return e
}

// FromParts assembles an engine from already-built derived state —
// typically an index and schema loaded from a snapshot (package
// persist) instead of rebuilt from the tree. The caller is responsible
// for the parts describing the same document; idx must be attached to
// root (index.Load does this).
func FromParts(root *xmltree.Node, idx *index.Index, schema *Schema) *Engine {
	e := &Engine{root: root, idx: idx, schema: schema}
	e.initDerived()
	return e
}

// initDerived computes the per-corpus ranking constants every
// construction path (New, NewParallel, FromParts) shares: the corpus
// node count and the IDF of every indexed term.
func (e *Engine) initDerived() {
	e.totalNodes = e.root.CountNodes()
	e.idfID = make([]float64, e.idx.Symbols().Len())
	e.idx.EachTermID(func(id uint32, df int) {
		if int(id) < len(e.idfID) {
			e.idfID[id] = IDF(e.totalNodes, df)
		}
	})
}

// termIDF resolves a term's precomputed IDF: by symbol ID when the
// engine derived its own table, else through the (possibly shared,
// late-filled) string-keyed map. 0 means the term contributes no
// weight — absent terms and terms present in every node alike, exactly
// as TermWeight treats them.
func (e *Engine) termIDF(t string) float64 {
	if e.idfID != nil {
		if id, ok := e.idx.TermID(t); ok && int(id) < len(e.idfID) {
			return e.idfID[id]
		}
		return 0
	}
	return e.idf[t]
}

// Root returns the document the engine searches.
func (e *Engine) Root() *xmltree.Node { return e.root }

// Schema returns the inferred schema summary.
func (e *Engine) Schema() *Schema { return e.schema }

// Index returns the underlying inverted index.
func (e *Engine) Index() *index.Index { return e.idx }

// TotalNodes returns the corpus node count, cached at construction.
func (e *Engine) TotalNodes() int { return e.totalNodes }

// PlannerDecisions reports how many compiled queries the SLCA cost
// planner routed to each eager algorithm on this engine.
func (e *Engine) PlannerDecisions() (indexedLookup, scanEager int64) {
	return e.plannerIndexed.Load(), e.plannerScan.Load()
}

// StreamedDecisions reports how many ranked pages the planner routed
// to the streamed (early-terminating) pipeline on this engine.
func (e *Engine) StreamedDecisions() int64 { return e.plannerStreamed.Load() }

// Result is one search result: the entity subtree that contains an
// SLCA match, as XSeek's return-node inference dictates.
type Result struct {
	// Node is the result's root: the nearest entity ancestor-or-self
	// of the SLCA (or the SLCA itself when no entity encloses it).
	Node *xmltree.Node
	// Match is the SLCA node that triggered this result.
	Match *xmltree.Node
	// Label is a short human identifier: the value of the entity's
	// first name-like attribute, falling back to tag + Dewey ID.
	Label string
}

// ID returns the Dewey ID of the result root.
func (r *Result) ID() dewey.ID { return r.Node.ID }

// SearchOptions selects a window of a search's full result list.
type SearchOptions struct {
	// Limit caps the number of results returned; 0 (or negative)
	// returns all.
	Limit int
	// Offset skips that many results from the start; out-of-range
	// offsets yield an empty window, not an error.
	Offset int
	// Mode picks the execution strategy: ExecAuto (default) defers to
	// the planner, ExecEager and ExecStream force a pipeline.
	Mode ExecMode
	// Accuracy applies to the score-bounded (WAND) ranked paths:
	// AccuracyExact (default) keeps pages and totals bit-identical to
	// eager execution, AccuracyApprox may stop draining at the score
	// cutoff and report StreamTotalUnknown (wand.go).
	Accuracy Accuracy
}

// Window clamps the options to [lo, hi) slice bounds over a full
// result list of n entries. Callers holding a materialized list (the
// serving layer's caches) use it to cut pages without re-searching.
func (o SearchOptions) Window(n int) (lo, hi int) {
	lo = o.Offset
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	hi = n
	// Compare before adding: lo+Limit could overflow on an adversarial
	// Limit (e.g. MaxInt from an HTTP parameter), flipping hi negative.
	if o.Limit > 0 && o.Limit < n-lo {
		hi = lo + o.Limit
	}
	return lo, hi
}

// Query is a compiled keyword query: the outcome of the pipeline's
// tokenize and plan stages. The remaining stages (SLCA, entity
// mapping, labelling) run on Execute. Fields are read-only snapshots;
// Alg may be overwritten before Execute to force an algorithm — it
// must name one of slca's known algorithms, or Execute errors.
type Query struct {
	// Terms are the tokenized keywords.
	Terms []string
	// Lists are the resolved posting lists, in term order.
	Lists []index.PostingList
	// Stats are the plan statistics of Lists.
	Stats index.PlanStats
	// Alg is the planner's algorithm choice for the SLCA stage.
	Alg slca.Algorithm

	eng *Engine
}

// Compile runs the tokenize and plan stages: resolve the query's terms
// to posting lists and pick an SLCA algorithm from their shape. An
// empty query or one with unmatched keywords fails here, before any
// list is touched by the SLCA stage.
func (e *Engine) Compile(query string) (*Query, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, ErrEmptyQuery
	}
	lists, stats, err := e.idx.QueryLists(terms)
	if err != nil {
		return nil, err
	}
	alg := slca.Plan(stats)
	if alg == slca.AlgIndexedLookup {
		e.plannerIndexed.Add(1)
	} else {
		e.plannerScan.Add(1)
	}
	return &Query{Terms: terms, Lists: lists, Stats: stats, Alg: alg, eng: e}, nil
}

// SLCAs runs the SLCA stage with the query's planned (or overridden)
// algorithm.
func (q *Query) SLCAs() []dewey.ID {
	return slca.ComputeWith(q.Alg, q.Lists)
}

// Execute runs the remaining pipeline stages — SLCA, entity mapping,
// labelling — and returns the full result list in document order. An
// unrecognized Alg override is an error, not an empty result list.
func (q *Query) Execute() ([]*Result, error) {
	if !slca.KnownAlgorithm(q.Alg) {
		return nil, fmt.Errorf("xseek: unknown SLCA algorithm %q", q.Alg)
	}
	return q.eng.mapToEntities(q.SLCAs(), true)
}

// ExecutePage runs Execute and returns the options' window of the
// result list plus the full result count. Under ExecStream the page is
// pulled lazily and the pipeline stops as soon as Offset+Limit results
// exist; if that stops before exhaustion the Total is
// StreamTotalUnknown. ExecAuto keeps doc-order pages eager — only the
// ranked path auto-routes, since its Total stays exact.
func (q *Query) ExecutePage(opts SearchOptions) ([]*Result, int, error) {
	if opts.Mode == ExecStream {
		return q.executePageStream(opts)
	}
	all, err := q.Execute()
	if err != nil {
		return nil, 0, err
	}
	lo, hi := opts.Window(len(all))
	return all[lo:hi], len(all), nil
}

// executePageStream cuts a doc-order page from the lazy pipeline,
// pulling only until the window is full.
func (q *Query) executePageStream(opts SearchOptions) ([]*Result, int, error) {
	rs, err := q.Stream()
	if err != nil {
		return nil, 0, err
	}
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	need := 0 // 0: no bound, drain the stream
	if opts.Limit > 0 {
		if n := lo + opts.Limit; n > lo {
			need = n
		}
	}
	var page []*Result
	for need == 0 || rs.Emitted() < need {
		r, ok := rs.Next()
		if !ok {
			if err := rs.Err(); err != nil {
				return nil, 0, err
			}
			// Exhausted: the emitted count is the exact total.
			return page, rs.Emitted(), nil
		}
		if rs.Emitted() > lo {
			page = append(page, r)
		}
	}
	return page, StreamTotalUnknown, nil
}

// mapToEntities is the entity-map + label stage shared by the SLCA and
// ELCA paths: lift each match to its nearest enclosing entity, merge
// matches falling in the same entity, and label the survivors. When
// strict is set, a match ID absent from the tree is an internal error;
// otherwise it is skipped (ELCA considers ancestors liberally).
func (e *Engine) mapToEntities(matches []dewey.ID, strict bool) ([]*Result, error) {
	var out []*Result
	seen := make(map[string]bool)
	for _, m := range matches {
		matchNode := e.root.NodeAt(m)
		if matchNode == nil {
			if strict {
				return nil, fmt.Errorf("xseek: internal: SLCA %v not in tree", m)
			}
			continue
		}
		resultRoot := e.schema.NearestEntity(matchNode)
		if resultRoot == nil {
			resultRoot = matchNode
		}
		key := resultRoot.ID.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, &Result{
			Node:  resultRoot,
			Match: matchNode,
			Label: LabelFor(resultRoot),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID.Compare(out[j].Node.ID) < 0 })
	return out, nil
}

// Search runs a keyword query and returns results in document order.
// Distinct SLCAs falling in the same entity are merged into one
// result. A query with no matches returns an empty slice and the
// index.NoMatchError describing the missing keywords.
func (e *Engine) Search(query string) ([]*Result, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.Execute()
}

// SearchPage runs the pipeline and returns the window the options
// select, along with the total result count. Concatenating consecutive
// pages reproduces the full Search result list.
func (e *Engine) SearchPage(query string, opts SearchOptions) ([]*Result, int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, 0, err
	}
	return q.ExecutePage(opts)
}

// nameLikeTags are attribute tags that make good result labels, in
// preference order.
var nameLikeTags = []string{"name", "title", "id", "brand", "label"}

// LabelFor returns a short human identifier for an entity subtree: the
// value of its first name-like attribute, falling back to tag + Dewey
// ID. It is the single labelling rule shared by search results and the
// facade's Lift.
func LabelFor(n *xmltree.Node) string {
	for _, tag := range nameLikeTags {
		if c := n.FirstChildElement(tag); c != nil && c.IsLeafElement() {
			if v := c.Value(); v != "" {
				return v
			}
		}
	}
	return fmt.Sprintf("%s@%s", n.Tag, n.ID)
}

// DescribeResult renders a one-line, depth-limited summary of a result
// for listings (product name + first few attribute values), mirroring
// the result list of the demo UI.
func DescribeResult(r *Result, maxParts int) string {
	parts := []string{r.Label}
	for _, c := range r.Node.ChildElements() {
		if len(parts) >= maxParts {
			break
		}
		if c.IsLeafElement() {
			if v := c.Value(); v != "" && v != r.Label {
				parts = append(parts, c.Tag+"="+v)
			}
		}
	}
	return strings.Join(parts, " | ")
}
