package xseek

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xmltree"
)

// errEmptyQuery is returned when a query tokenizes to no keywords.
var errEmptyQuery = fmt.Errorf("xseek: empty query")

// Engine is an XSeek-style keyword search engine over one XML document:
// an inverted index, a schema summary, and SLCA + return-node logic.
type Engine struct {
	root   *xmltree.Node
	idx    *index.Index
	schema *Schema
}

// New builds an engine (index + schema summary) over root. The tree
// must carry Dewey IDs (xmltree.Parse assigns them).
func New(root *xmltree.Node) *Engine {
	return &Engine{
		root:   root,
		idx:    index.Build(root),
		schema: InferSchema(root),
	}
}

// FromParts assembles an engine from already-built derived state —
// typically an index and schema loaded from a snapshot (package
// persist) instead of rebuilt from the tree. The caller is responsible
// for the parts describing the same document; idx must be attached to
// root (index.Load does this).
func FromParts(root *xmltree.Node, idx *index.Index, schema *Schema) *Engine {
	return &Engine{root: root, idx: idx, schema: schema}
}

// Root returns the document the engine searches.
func (e *Engine) Root() *xmltree.Node { return e.root }

// Schema returns the inferred schema summary.
func (e *Engine) Schema() *Schema { return e.schema }

// Index returns the underlying inverted index.
func (e *Engine) Index() *index.Index { return e.idx }

// Result is one search result: the entity subtree that contains an
// SLCA match, as XSeek's return-node inference dictates.
type Result struct {
	// Node is the result's root: the nearest entity ancestor-or-self
	// of the SLCA (or the SLCA itself when no entity encloses it).
	Node *xmltree.Node
	// Match is the SLCA node that triggered this result.
	Match *xmltree.Node
	// Label is a short human identifier: the value of the entity's
	// first name-like attribute, falling back to tag + Dewey ID.
	Label string
}

// ID returns the Dewey ID of the result root.
func (r *Result) ID() dewey.ID { return r.Node.ID }

// Search runs a keyword query and returns results in document order.
// Distinct SLCAs falling in the same entity are merged into one
// result. A query with no matches returns an empty slice and the
// index.NoMatchError describing the missing keywords.
func (e *Engine) Search(query string) ([]*Result, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, errEmptyQuery
	}
	lists, err := e.idx.QueryLists(terms)
	if err != nil {
		return nil, err
	}
	matches := slca.Compute(lists)
	var out []*Result
	seen := make(map[string]bool)
	for _, m := range matches {
		matchNode := e.root.NodeAt(m)
		if matchNode == nil {
			return nil, fmt.Errorf("xseek: internal: SLCA %v not in tree", m)
		}
		resultRoot := e.schema.NearestEntity(matchNode)
		if resultRoot == nil {
			resultRoot = matchNode
		}
		key := resultRoot.ID.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, &Result{
			Node:  resultRoot,
			Match: matchNode,
			Label: e.labelFor(resultRoot),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID.Compare(out[j].Node.ID) < 0 })
	return out, nil
}

// nameLikeTags are attribute tags that make good result labels, in
// preference order.
var nameLikeTags = []string{"name", "title", "id", "brand", "label"}

// LabelFor returns a short human identifier for an entity subtree: the
// value of its first name-like attribute, falling back to tag + Dewey
// ID. It is the single labelling rule shared by search results and the
// facade's Lift.
func LabelFor(n *xmltree.Node) string {
	for _, tag := range nameLikeTags {
		if c := n.FirstChildElement(tag); c != nil && c.IsLeafElement() {
			if v := c.Value(); v != "" {
				return v
			}
		}
	}
	return fmt.Sprintf("%s@%s", n.Tag, n.ID)
}

func (e *Engine) labelFor(n *xmltree.Node) string { return LabelFor(n) }

// DescribeResult renders a one-line, depth-limited summary of a result
// for listings (product name + first few attribute values), mirroring
// the result list of the demo UI.
func DescribeResult(r *Result, maxParts int) string {
	parts := []string{r.Label}
	for _, c := range r.Node.ChildElements() {
		if len(parts) >= maxParts {
			break
		}
		if c.IsLeafElement() {
			if v := c.Value(); v != "" && v != r.Label {
				parts = append(parts, c.Tag+"="+v)
			}
		}
	}
	return strings.Join(parts, " | ")
}
