package xseek

import (
	"math"
	"sort"

	"repro/internal/index"
)

// DatabaseScore rates how well one corpus can answer a keyword query —
// the "database selection" companion technique the paper lists for a
// full keyword-search stack. Coverage counts the query keywords the
// corpus contains at all; Score adds a CORI-style sum of dampened
// document frequencies so that, among corpora covering equally many
// keywords, the one where the terms are better represented wins.
type DatabaseScore struct {
	Name     string
	Coverage int // query keywords present in the corpus
	Score    float64
}

// CorpusStats is the per-corpus evidence database selection scores:
// the corpus size and each term's document frequency. *Engine
// implements it for a single index; the sharded executor implements it
// with frequencies aggregated across its shards, so selection treats a
// sharded corpus exactly like an unsharded one.
type CorpusStats interface {
	TotalNodes() int
	DocFreq(term string) int
}

// ScoreCorpora rates every named corpus against the query and returns
// the scores best-first (higher coverage, then higher score, then name
// for determinism).
func ScoreCorpora[S CorpusStats](corpora map[string]S, query string) []DatabaseScore {
	terms := index.TokenizeQuery(query)
	out := make([]DatabaseScore, 0, len(corpora))
	for name, c := range corpora {
		s := DatabaseScore{Name: name}
		total := c.TotalNodes()
		for _, t := range terms {
			df := c.DocFreq(t)
			if df == 0 {
				continue
			}
			s.Coverage++
			// Dampened df normalized by corpus size: frequent-in-
			// corpus terms signal topical fit without letting one
			// giant corpus dominate on raw counts.
			s.Score += math.Log1p(float64(df)) / math.Log1p(float64(total))
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Coverage != b.Coverage {
			return a.Coverage > b.Coverage
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Name < b.Name
	})
	return out
}

// SelectCorpus returns the best-scoring corpus name for the query, or
// "" when no corpus contains any query keyword.
func SelectCorpus[S CorpusStats](corpora map[string]S, query string) string {
	scores := ScoreCorpora(corpora, query)
	if len(scores) == 0 || scores[0].Coverage == 0 {
		return ""
	}
	return scores[0].Name
}

// ScoreDatabases is ScoreCorpora over single-index engines.
func ScoreDatabases(engines map[string]*Engine, query string) []DatabaseScore {
	return ScoreCorpora(engines, query)
}

// SelectDatabase returns the best-scoring engine for the query, or
// ("", nil) when no corpus contains any query keyword.
func SelectDatabase(engines map[string]*Engine, query string) (string, *Engine) {
	name := SelectCorpus(engines, query)
	if name == "" {
		return "", nil
	}
	return name, engines[name]
}
