package xseek

import (
	"math"
	"sort"

	"repro/internal/index"
)

// DatabaseScore rates how well one corpus can answer a keyword query —
// the "database selection" companion technique the paper lists for a
// full keyword-search stack. Coverage counts the query keywords the
// corpus contains at all; Score adds a CORI-style sum of dampened
// document frequencies so that, among corpora covering equally many
// keywords, the one where the terms are better represented wins.
type DatabaseScore struct {
	Name     string
	Coverage int // query keywords present in the corpus
	Score    float64
}

// ScoreDatabases rates every named engine against the query and
// returns the scores best-first (higher coverage, then higher score,
// then name for determinism).
func ScoreDatabases(engines map[string]*Engine, query string) []DatabaseScore {
	terms := index.TokenizeQuery(query)
	out := make([]DatabaseScore, 0, len(engines))
	for name, eng := range engines {
		s := DatabaseScore{Name: name}
		total := eng.totalNodes
		for _, t := range terms {
			df := eng.idx.DocFreq(t)
			if df == 0 {
				continue
			}
			s.Coverage++
			// Dampened df normalized by corpus size: frequent-in-
			// corpus terms signal topical fit without letting one
			// giant corpus dominate on raw counts.
			s.Score += math.Log1p(float64(df)) / math.Log1p(float64(total))
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Coverage != b.Coverage {
			return a.Coverage > b.Coverage
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Name < b.Name
	})
	return out
}

// SelectDatabase returns the best-scoring engine for the query, or
// ("", nil) when no corpus contains any query keyword.
func SelectDatabase(engines map[string]*Engine, query string) (string, *Engine) {
	scores := ScoreDatabases(engines, query)
	if len(scores) == 0 || scores[0].Coverage == 0 {
		return "", nil
	}
	return scores[0].Name, engines[scores[0].Name]
}
