package xseek

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// randomNestedDoc builds a corpus with entities at several nesting
// depths (shelf* > book* > note*) and a small keyword vocabulary, so
// streamed entity mapping has to handle nested results, duplicate
// SLCA→entity hits, and out-of-order ancestor entities.
func randomNestedDoc(r *rand.Rand, shelves int) string {
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega"}
	pick := func() string { return vocab[r.Intn(len(vocab))] }
	var b strings.Builder
	b.WriteString("<lib>")
	for s := 0; s < shelves; s++ {
		b.WriteString("<shelf>")
		fmt.Fprintf(&b, "<code>%s</code>", pick())
		for k := 0; k < 1+r.Intn(3); k++ {
			b.WriteString("<book>")
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "<name>B%d-%d %s</name>", s, k, pick())
			}
			for n := 0; n < r.Intn(3); n++ {
				fmt.Fprintf(&b, "<note>%s %s</note>", pick(), pick())
			}
			b.WriteString("</book>")
		}
		b.WriteString("</shelf>")
	}
	b.WriteString("</lib>")
	return b.String()
}

var streamQueries = []string{
	"alpha", "beta", "omega",
	"alpha beta", "gamma delta", "alpha omega",
	"alpha beta gamma",
}

// TestStreamEqualsExecute: draining the doc-order result stream must
// reproduce Execute exactly — same entities, same match nodes, same
// labels, same order — across random nested corpora and queries.
func TestStreamEqualsExecute(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		e := New(xmltree.MustParseString(randomNestedDoc(r, 1+r.Intn(6))))
		for _, query := range streamQueries {
			q, err := e.Compile(query)
			if err != nil {
				continue // vocabulary miss on a tiny corpus
			}
			want, err := q.Execute()
			if err != nil {
				t.Fatal(err)
			}
			rs, err := q.Stream()
			if err != nil {
				t.Fatal(err)
			}
			var got []*Result
			for {
				res, ok := rs.Next()
				if !ok {
					break
				}
				got = append(got, res)
			}
			if err := rs.Err(); err != nil {
				t.Fatal(err)
			}
			compareResults(t, got, want, fmt.Sprintf("trial %d query %q", trial, query))
		}
	}
}

// TestStreamPrefixInvariance: the first k pulls of the stream equal
// the first k results of Execute for every k — the property paging
// relies on.
func TestStreamPrefixInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		e := New(xmltree.MustParseString(randomNestedDoc(r, 2+r.Intn(5))))
		for _, query := range streamQueries {
			q, err := e.Compile(query)
			if err != nil {
				continue
			}
			want, err := q.Execute()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 5} {
				if k > len(want) {
					k = len(want)
				}
				rs, err := q.Stream()
				if err != nil {
					t.Fatal(err)
				}
				var got []*Result
				for i := 0; i < k; i++ {
					res, ok := rs.Next()
					if !ok {
						break
					}
					got = append(got, res)
				}
				compareResults(t, got, want[:k], fmt.Sprintf("trial %d query %q prefix %d", trial, query, k))
			}
		}
	}
}

// TestRankStreamEqualsEagerRankedPage: the streamed ranked pipeline
// must be bit-identical to the eager one — scores, order, labels,
// window clamping, and totals — for every paging shape.
func TestRankStreamEqualsEagerRankedPage(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	optsGrid := []SearchOptions{
		{},
		{Limit: 1},
		{Limit: 3},
		{Limit: 3, Offset: 2},
		{Limit: 100},
		{Offset: 4},
		{Limit: 2, Offset: 999},
		{Limit: -1, Offset: -5},
	}
	for trial := 0; trial < 25; trial++ {
		e := New(xmltree.MustParseString(randomNestedDoc(r, 2+r.Intn(6))))
		for _, query := range streamQueries {
			for _, opts := range optsGrid {
				eagerOpts, streamOpts := opts, opts
				eagerOpts.Mode = ExecEager
				streamOpts.Mode = ExecStream
				want, wantTotal, errW := e.SearchRankedPage(query, eagerOpts)
				got, gotTotal, errG := e.SearchRankedPage(query, streamOpts)
				if (errW == nil) != (errG == nil) {
					t.Fatalf("query %q opts %+v: eager err %v vs stream err %v", query, opts, errW, errG)
				}
				if errW != nil {
					continue
				}
				if gotTotal != wantTotal {
					t.Fatalf("query %q opts %+v: total %d want %d", query, opts, gotTotal, wantTotal)
				}
				if len(got) != len(want) {
					t.Fatalf("query %q opts %+v: %d results want %d", query, opts, len(got), len(want))
				}
				for i := range want {
					if got[i].Node != want[i].Node || got[i].Score != want[i].Score || got[i].Label != want[i].Label {
						t.Fatalf("query %q opts %+v: rank %d diverges: got (%q score %v) want (%q score %v)",
							query, opts, i, got[i].Label, got[i].Score, want[i].Label, want[i].Score)
					}
				}
			}
		}
	}
}

// TestExecutePageStreamMode: doc-order pages under ExecStream match
// the eager pages; the total is exact when the stream was exhausted
// and StreamTotalUnknown when early termination cut it short.
func TestExecutePageStreamMode(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(23)))
	for _, opts := range []SearchOptions{
		{Limit: 5},
		{Limit: 5, Offset: 10},
		{Limit: 100},
		{},
		{Limit: 5, Offset: 99},
	} {
		eager, total, err := e.SearchPage("gps", opts)
		if err != nil {
			t.Fatal(err)
		}
		streamOpts := opts
		streamOpts.Mode = ExecStream
		got, streamTotal, err := e.SearchPage("gps", streamOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(eager) {
			t.Fatalf("opts %+v: %d results want %d", opts, len(got), len(eager))
		}
		for i := range eager {
			if got[i].Node != eager[i].Node || got[i].Label != eager[i].Label {
				t.Fatalf("opts %+v: page diverges at %d", opts, i)
			}
		}
		earlyStop := opts.Limit > 0 && opts.Offset+opts.Limit < total
		if earlyStop {
			if streamTotal != StreamTotalUnknown {
				t.Fatalf("opts %+v: early-stopped total = %d, want StreamTotalUnknown", opts, streamTotal)
			}
		} else if streamTotal != total {
			t.Fatalf("opts %+v: exhausted total = %d, want %d", opts, streamTotal, total)
		}
	}
}

// TestAutoModeRoutesSmallWindowsStreamed: on a corpus whose driving
// list dwarfs the requested window, ExecAuto must take the streamed
// path (counter advances) and still return the eager answer.
func TestAutoModeRoutesSmallWindowsStreamed(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(60)))
	before := e.StreamedDecisions()
	got, total, err := e.SearchRankedPage("gps", SearchOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.StreamedDecisions() != before+1 {
		t.Fatalf("streamed decisions = %d, want %d", e.StreamedDecisions(), before+1)
	}
	want, wantTotal, err := e.SearchRankedPage("gps", SearchOptions{Limit: 3, Mode: ExecEager})
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal || len(got) != len(want) {
		t.Fatalf("auto (%d of %d) vs eager (%d of %d)", len(got), total, len(want), wantTotal)
	}
	for i := range want {
		if got[i].Node != want[i].Node || got[i].Score != want[i].Score {
			t.Fatalf("auto page diverges at %d", i)
		}
	}
	// A window spanning the whole corpus must stay eager.
	before = e.StreamedDecisions()
	if _, _, err := e.SearchRankedPage("gps", SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if e.StreamedDecisions() != before {
		t.Fatal("unbounded query took the streamed path")
	}
}

// TestStreamErrorOnUnknownAlgorithm mirrors Execute's override
// contract on the lazy path.
func TestStreamErrorOnUnknownAlgorithm(t *testing.T) {
	e := New(xmltree.MustParseString(pagedDoc(4)))
	q, err := e.Compile("gps")
	if err != nil {
		t.Fatal(err)
	}
	q.Alg = "bogus"
	if _, err := q.Stream(); err == nil {
		t.Fatal("unknown algorithm must fail the stream")
	}
	if _, _, err := q.RankStream(SearchOptions{Limit: 1}); err == nil {
		t.Fatal("unknown algorithm must fail the ranked stream")
	}
}

func compareResults(t *testing.T, got, want []*Result, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d (got %v want %v)", ctx, len(got), len(want), labels(got), labels(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node {
			t.Fatalf("%s: result %d entity %s, want %s", ctx, i, got[i].Node.ID, want[i].Node.ID)
		}
		if got[i].Match != want[i].Match {
			t.Fatalf("%s: result %d match %s, want %s", ctx, i, got[i].Match.ID, want[i].Match.ID)
		}
		if got[i].Label != want[i].Label {
			t.Fatalf("%s: result %d label %q, want %q", ctx, i, got[i].Label, want[i].Label)
		}
	}
}

func labels(rs []*Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Label
	}
	return out
}
