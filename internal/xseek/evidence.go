package xseek

import "repro/internal/xmltree"

// This file exposes schema inference in a decomposed, incrementally
// recomposable form for the live write path (package update): the
// evidence a single top-level subtree contributes is collected once and
// cached, and the whole-corpus schema is recomposed from the cached
// pieces after every add/remove — exactly equal to InferSchema over the
// logical tree, without re-walking unchanged subtrees.

// Evidence is the schema-inference contribution of one subtree: the
// per-node-type instance tallies and sibling maxima observed inside it.
// Evidence values are immutable once collected and may be shared by any
// number of ComposeSchema calls.
type Evidence struct {
	types map[string]*typeInfo
}

// CollectEvidence gathers the evidence of the subtree rooted at child,
// whose parent is the document root with tag rootTag. It observes
// everything InferSchema's visit of that child observes except the
// child's own sibling count under the root, which belongs to the root
// and is supplied by ComposeSchema.
func CollectEvidence(child *xmltree.Node, rootTag string) *Evidence {
	local := &Schema{types: make(map[string]*typeInfo)}
	local.visit(child, rootTag+"/"+child.Tag)
	return &Evidence{types: local.types}
}

// ComposeSchema assembles the whole-corpus schema from the document
// root plus the evidence of each of its live element children, in any
// order. children must be exactly the root's live element children
// (the sibling counts among them are the root's own evidence); ev maps
// each child to its collected Evidence. The result equals
// InferSchema over the tree the arguments describe — same instance
// counts, leaf tallies, and sibling maxima on every path.
func ComposeSchema(root *xmltree.Node, children []*xmltree.Node, ev func(*xmltree.Node) *Evidence) *Schema {
	s := &Schema{types: make(map[string]*typeInfo)}
	rootInfo := &typeInfo{path: root.Tag, tag: root.Tag, instances: 1}
	if rootIsLeafOver(root, children) {
		rootInfo.leafInstances = 1
	}
	s.types[root.Tag] = rootInfo
	for _, c := range children {
		for path, info := range ev(c).types {
			dst := s.types[path]
			if dst == nil {
				// Copy: cached evidence must never be mutated by a merge.
				cp := *info
				s.types[path] = &cp
				continue
			}
			dst.instances += info.instances
			dst.leafInstances += info.leafInstances
			if info.maxSiblings > dst.maxSiblings {
				dst.maxSiblings = info.maxSiblings
			}
		}
	}
	counts := make(map[string]int)
	for _, c := range children {
		counts[c.Tag]++
	}
	for tag, n := range counts {
		if ci := s.types[root.Tag+"/"+tag]; ci != nil && n > ci.maxSiblings {
			ci.maxSiblings = n
		}
	}
	return s
}

// WithChildEvidence returns a copy of s with one more top-level
// child's evidence folded in — the O(distinct paths) add-path twin of
// ComposeSchema. siblingCount is the new number of live root children
// sharing the child's tag. Additions only ever grow instance sums and
// sibling maxima, so the fold equals a full recomposition; removals
// must recompose (maxima cannot be decremented).
func (s *Schema) WithChildEvidence(ev *Evidence, rootTag, childTag string, siblingCount int) *Schema {
	ns := &Schema{types: make(map[string]*typeInfo, len(s.types)+len(ev.types))}
	for p, info := range s.types {
		cp := *info
		ns.types[p] = &cp
	}
	// The root has an element child now, so it is no longer a leaf.
	if ri := ns.types[rootTag]; ri != nil {
		ri.leafInstances = 0
	}
	for p, info := range ev.types {
		dst := ns.types[p]
		if dst == nil {
			cp := *info
			ns.types[p] = &cp
			continue
		}
		dst.instances += info.instances
		dst.leafInstances += info.leafInstances
		if info.maxSiblings > dst.maxSiblings {
			dst.maxSiblings = info.maxSiblings
		}
	}
	if ci := ns.types[rootTag+"/"+childTag]; ci != nil && siblingCount > ci.maxSiblings {
		ci.maxSiblings = siblingCount
	}
	return ns
}

// rootIsLeafOver reports whether the root counts as a leaf element for
// schema purposes given its live element children: leaf means no
// element children at all (its text children, which never change under
// entity adds/removes, don't disqualify it).
func rootIsLeafOver(root *xmltree.Node, children []*xmltree.Node) bool {
	return root.IsElement() && len(children) == 0
}
