package xseek

import (
	"container/heap"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
)

// This file is the score-bounded (block-max WAND) twin of
// ConsumeRankedStream: the same lazy SLCA → entity → bounded-heap
// pipeline, but once the top-k heap is full, each entity is first
// checked against an upper bound on its score — each term's block-max
// tf bound (index.BoundCursor) pushed through the shared TermWeight
// with the term's precomputed IDF. The bound is a suffix maximum, so
// it only falls as the stream advances while the heap's k-th score
// only rises; the first entity whose bound cannot displace the kept
// worst therefore proves the same for every later entity, and the
// consumer stops scoring (exact mode — the total stays exact) or
// stops draining entirely (approximate mode — the total is reported
// as StreamTotalUnknown). Exact mode is bit-identical to the eager
// and plain streamed rankings: pruned entities score strictly within
// the bound, and ties keep the earlier document position, which every
// pruned entity loses by construction.

// Accuracy selects how a score-bounded ranked page may trade the
// exact total for work.
type Accuracy int

const (
	// AccuracyExact (the default) keeps pages and totals bit-identical
	// to eager execution: the cutoff only skips scoring work.
	AccuracyExact Accuracy = iota
	// AccuracyApprox lets the consumer stop draining at the cutoff:
	// the page is still exact, but the total is StreamTotalUnknown.
	AccuracyApprox
)

// WANDStats reports what the score-bounded consumer did with one
// page, for the serving layer's metrics.
type WANDStats struct {
	// Bounded reports whether bound metadata was available; false
	// means the query fell back to the plain streamed pipeline (e.g.
	// a legacy v4 snapshot without block maxima, or an unbounded
	// window).
	Bounded bool
	// Pruned counts entities whose exact scoring was skipped.
	Pruned int64
	// BlocksSkipped counts posting blocks past the cutoff point that
	// scoring never touched, summed over the query's terms.
	BlocksSkipped int64
	// Terminated reports an approximate-mode early stop: the stream
	// was abandoned and the total is unknown.
	Terminated bool
}

// Add folds another page's stats in (the shard fan-out aggregates its
// legs).
func (st *WANDStats) Add(o WANDStats) {
	st.Bounded = st.Bounded || o.Bounded
	st.Pruned += o.Pruned
	st.BlocksSkipped += o.BlocksSkipped
	st.Terminated = st.Terminated || o.Terminated
}

// TermBound is one query term's contribution to the score upper
// bound: its precomputed IDF and a monotone cursor over its block-max
// metadata. The cursor must bound the same tf the consumer's Scorer
// counts.
type TermBound struct {
	IDF float64
	Cur index.BoundCursor
}

// SharedThreshold is a monotone-max score threshold shared across
// concurrent consumers — the shard fan-out hands one to every leg so
// a leg can prune with the global k-th-best score, not just its own.
// Scores are non-negative, so their float64 bit patterns order like
// the values and a plain uint64 CAS keeps Raise lock-free.
type SharedThreshold struct {
	bits atomic.Uint64
}

// Raise lifts the threshold to at least v. Values at or below the
// current threshold (or zero) are no-ops.
func (s *SharedThreshold) Raise(v float64) {
	if v <= 0 {
		return
	}
	b := math.Float64bits(v)
	for {
		old := s.bits.Load()
		if old >= b || s.bits.CompareAndSwap(old, b) {
			return
		}
	}
}

// Load returns the current threshold (0 until the first Raise).
func (s *SharedThreshold) Load() float64 {
	return math.Float64frombits(s.bits.Load())
}

// boundBelow reports whether the score upper bound at id — and, by
// the suffix-max construction, at every later document position —
// cannot displace the kept top-k. tau is the consumer's own k-th
// score: a later entity scoring exactly tau still loses the tie (ties
// keep the earlier position), so <= is safe. Against the shared
// cross-leg threshold only strict < is safe — an equal-scored entity
// in another leg may sit later in document order than this one.
func boundBelow(bounds []TermBound, id dewey.ID, tau float64, shared *SharedThreshold) bool {
	if len(id) == 0 {
		// The root spans every depth-1 group, so the per-group bounds
		// do not cover it; score it exactly. (It is also always the
		// first emission, so in practice the heap is not full yet.)
		return false
	}
	ub := 0.0
	for i := range bounds {
		if tf := bounds[i].Cur.MaxTFFrom(id); tf > 0 {
			ub += TermWeight(tf, bounds[i].IDF)
		}
	}
	if ub <= tau {
		return true
	}
	return shared != nil && ub < shared.Load()
}

// ConsumeRankedWAND drains an entity stream through the bounded heap
// with score-bound pruning. The page is always bit-identical to
// ConsumeRankedStream's; the total is exact except after an
// approximate-mode early stop, which reports StreamTotalUnknown. A
// nil bounds slice or an unbounded window disables pruning and
// delegates to ConsumeRankedStream (Bounded stays false). shared may
// be nil; when set, the consumer raises it with its own k-th score
// and prunes against it strictly.
func ConsumeRankedWAND(es *EntityStream, opts SearchOptions, score Scorer, bounds []TermBound, shared *SharedThreshold) ([]*RankedResult, int, WANDStats, error) {
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	want := 0
	if opts.Limit > 0 {
		if c := lo + opts.Limit; c > lo { // overflow-safe, mirroring Window
			want = c
		}
	}
	if want == 0 || len(bounds) == 0 {
		// Unbounded windows need every exact score; without bound
		// metadata there is nothing to prune with.
		out, total, err := ConsumeRankedStream(es, opts, score)
		return out, total, WANDStats{}, err
	}
	st := WANDStats{Bounded: true}
	var h streamHeap
	total := 0
	cut := false // the permanent cutoff: no later entity can displace
	for {
		hit, ok := es.Next()
		if !ok {
			break
		}
		ord := total
		total++
		if cut {
			st.Pruned++
			continue
		}
		if len(h) == want && boundBelow(bounds, hit.Node.ID, h[0].score, shared) {
			// The bound is non-increasing and both thresholds are
			// non-decreasing, so the first failure is final: stop
			// scoring, and in approximate mode stop draining too.
			cut = true
			st.Pruned++
			for i := range bounds {
				st.BlocksSkipped += int64(bounds[i].Cur.BlocksLeft())
			}
			if opts.Accuracy == AccuracyApprox {
				st.Terminated = true
				break
			}
			continue
		}
		entry := streamHit{hit: hit, score: score(hit.Node.ID), ord: ord}
		if len(h) < want {
			h = append(h, entry)
			if len(h) == want {
				heap.Init(&h)
				if shared != nil {
					shared.Raise(h[0].score)
				}
			}
			continue
		}
		// Bounded: displace the worst kept entry when beaten. Ties keep
		// the earlier document position, so a later equal score never
		// displaces.
		if h.beats(entry, h[0]) {
			h[0] = entry
			heap.Fix(&h, 0)
			if shared != nil {
				shared.Raise(h[0].score)
			}
		}
	}
	if err := es.Err(); err != nil {
		return nil, 0, st, err
	}
	// Drain into rank order, exactly as ConsumeRankedStream does.
	var ranked []streamHit
	if len(h) == want {
		ranked = make([]streamHit, len(h))
		for n := len(h) - 1; n >= 0; n-- {
			ranked[n] = heap.Pop(&h).(streamHit)
		}
	} else {
		ranked = h
		sort.Slice(ranked, func(i, j int) bool { return h.beats(ranked[i], ranked[j]) })
	}
	if lo > len(ranked) {
		lo = len(ranked)
	}
	out := make([]*RankedResult, 0, len(ranked)-lo)
	for _, s := range ranked[lo:] {
		out = append(out, &RankedResult{
			Result: &Result{Node: s.hit.Node, Match: s.hit.Match, Label: LabelFor(s.hit.Node)},
			Score:  s.score,
		})
	}
	if st.Terminated {
		total = StreamTotalUnknown
	}
	return out, total, st, nil
}

// TermBounds builds one score-bound cursor per scoring term (terms
// with zero IDF contribute no weight and are skipped, matching
// StreamScorer), or nil when any term's block maxima are unavailable
// — the signal to fall back to unpruned streaming.
func (e *Engine) TermBounds(terms []string) []TermBound {
	out := make([]TermBound, 0, len(terms))
	for _, t := range terms {
		idf := e.termIDF(t)
		if idf == 0 {
			continue
		}
		lb := e.idx.TermBounds(t)
		if lb == nil {
			return nil
		}
		out = append(out, TermBound{IDF: idf, Cur: lb.Cursor()})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// RankWAND runs the score-bounded ranked pipeline on the compiled
// query. shared may be nil (monolithic execution); the shard fan-out
// passes one threshold to all legs.
func (q *Query) RankWAND(opts SearchOptions, shared *SharedThreshold) ([]*RankedResult, int, WANDStats, error) {
	it, err := q.SLCAIter()
	if err != nil {
		return nil, 0, WANDStats{}, err
	}
	es := NewEntityStream(it, q.eng.root, q.eng.schema)
	return ConsumeRankedWAND(es, opts, q.eng.StreamScorer(q.Terms), q.eng.TermBounds(q.Terms), shared)
}

// SearchRankedPageWAND is the score-bounded twin of
// SearchRankedPageStream: same page bytes in exact mode, with
// pruning stats alongside. It counts toward StreamedDecisions — the
// counter reports pages that ran the lazy pipeline, however bounded.
func (e *Engine) SearchRankedPageWAND(query string, opts SearchOptions) ([]*RankedResult, int, WANDStats, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, 0, WANDStats{}, err
	}
	e.plannerStreamed.Add(1)
	return q.RankWAND(opts, nil)
}
