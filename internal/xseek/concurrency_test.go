package xseek

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentSearches: an Engine is read-only after construction,
// so any number of goroutines may search it concurrently. Run with
// -race to verify.
func TestConcurrentSearches(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 9, ProductsPerCategory: 4, MinReviews: 5, MaxReviews: 10})
	eng := New(root)
	queries := []string{"tomtom gps", "garmin gps", "nokia phone", "canon camera", "gps travel"}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := eng.Search(q); err != nil {
					errs <- err
					return
				}
				if _, err := eng.SearchRanked(q); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
