package xseek

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
)

func TestSchemaSaveLoadRoundTrip(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 4})
	orig := InferSchema(root)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Paths(), orig.Paths()) {
		t.Fatalf("paths after round trip = %v, want %v", back.Paths(), orig.Paths())
	}
	for _, p := range orig.Paths() {
		if back.CategoryOf(p) != orig.CategoryOf(p) {
			t.Fatalf("path %s: category %v, want %v", p, back.CategoryOf(p), orig.CategoryOf(p))
		}
		if back.Instances(p) != orig.Instances(p) {
			t.Fatalf("path %s: %d instances, want %d", p, back.Instances(p), orig.Instances(p))
		}
	}
}

func TestLoadSchemaRejectsWrongWireVersion(t *testing.T) {
	var buf bytes.Buffer
	stale := gobSchema{Version: SchemaWireVersion + 1}
	if err := gob.NewEncoder(&buf).Encode(&stale); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSchema(&buf)
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("LoadSchema of stale version: err = %v, want wire-version error", err)
	}
}

func TestLoadSchemaGarbage(t *testing.T) {
	if _, err := LoadSchema(strings.NewReader("not gob")); err == nil {
		t.Fatal("LoadSchema of garbage succeeded")
	}
}

// TestFromPartsMatchesNew: an engine assembled from persisted parts
// must search identically to one built from scratch.
func TestFromPartsMatchesNew(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 4})
	fresh := New(root)

	var idxBuf, schBuf bytes.Buffer
	if err := fresh.Index().Save(&idxBuf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Schema().Save(&schBuf); err != nil {
		t.Fatal(err)
	}
	idx, err := index.Load(&idxBuf, root)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := LoadSchema(&schBuf)
	if err != nil {
		t.Fatal(err)
	}
	loaded := FromParts(root, idx, schema)

	for _, q := range []string{"tomtom gps", "garmin", "camera review"} {
		want, err1 := fresh.Search(q)
		got, err2 := loaded.Search(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %q: errors differ: %v vs %v", q, err1, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Label != want[i].Label {
				t.Fatalf("query %q result %d: %q vs %q", q, i, got[i].Label, want[i].Label)
			}
		}
	}
}
