package xseek

import (
	"encoding/gob"
	"fmt"
	"io"
)

// SchemaWireVersion identifies the Schema Save/Load encoding. Bump it
// whenever the wire form changes incompatibly; LoadSchema rejects
// mismatches so stale snapshots fall back to re-inference.
const SchemaWireVersion = 1

// gobTypeInfo is the wire form of one node type's evidence. The path
// is the enclosing map's key, not repeated here.
type gobTypeInfo struct {
	Tag           string
	Instances     int
	MaxSiblings   int
	LeafInstances int
}

// gobSchema is the wire form of a Schema.
type gobSchema struct {
	Version int
	Types   map[string]gobTypeInfo
}

// Save writes the schema summary with encoding/gob, prefixed by the
// wire version. Inference walks the whole corpus, so snapshotting the
// schema alongside the inverted index lets a server restart skip both
// passes.
func (s *Schema) Save(w io.Writer) error {
	g := gobSchema{Version: SchemaWireVersion, Types: make(map[string]gobTypeInfo, len(s.types))}
	for path, info := range s.types {
		g.Types[path] = gobTypeInfo{
			Tag:           info.tag,
			Instances:     info.instances,
			MaxSiblings:   info.maxSiblings,
			LeafInstances: info.leafInstances,
		}
	}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("xseek: save schema: %w", err)
	}
	return nil
}

// LoadSchema reads a schema summary written by Save. A schema written
// under a different wire version is rejected.
func LoadSchema(r io.Reader) (*Schema, error) {
	var g gobSchema
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("xseek: load schema: %w", err)
	}
	if g.Version != SchemaWireVersion {
		return nil, fmt.Errorf("xseek: load schema: wire version %d, want %d", g.Version, SchemaWireVersion)
	}
	s := &Schema{types: make(map[string]*typeInfo, len(g.Types))}
	for path, info := range g.Types {
		s.types[path] = &typeInfo{
			path:          path,
			tag:           info.Tag,
			instances:     info.Instances,
			maxSiblings:   info.MaxSiblings,
			leafInstances: info.LeafInstances,
		}
	}
	return s, nil
}
