package xseek

import (
	"math"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// IDF is the inverse-document-frequency formula every ranking path
// shares: log((N+1)/(df+1)) for a corpus of N nodes. It is exported so
// the sharded executor (package shard), which aggregates document
// frequencies across shard indexes, produces bit-identical weights to
// a single-index engine's initDerived.
func IDF(totalNodes, df int) float64 {
	return math.Log(float64(totalNodes+1) / float64(df+1))
}

// TermWeight is the per-term TF-IDF contribution shared by every
// scoring path: logarithmically dampened term frequency times inverse
// document frequency, zero when the term is absent. Keeping the
// formula in one place is what makes sharded scores bit-identical to
// monolithic ones.
func TermWeight(tf int, idf float64) float64 {
	switch tf {
	case 0:
		return 0
	case 1:
		// log(1) == 0 exactly, so the weight is the bare IDF — worth
		// special-casing because single occurrences dominate real text.
		return idf
	}
	return (1 + math.Log(float64(tf))) * idf
}

// FromPartsRanked is FromParts with the ranking constants supplied by
// the caller instead of derived from the engine's own index: totalNodes
// is the whole corpus's node count and idf maps every corpus term to
// its global IDF (per the IDF formula; the map is retained, not
// copied).
//
// Package shard uses it to build one engine per shard whose index
// covers only that shard's subtrees while scoring results with
// whole-corpus weights — the combination that makes per-shard ranking
// bit-identical to monolithic ranking for results the shard owns.
func FromPartsRanked(root *xmltree.Node, idx *index.Index, schema *Schema, totalNodes int, idf map[string]float64) *Engine {
	return &Engine{root: root, idx: idx, schema: schema, totalNodes: totalNodes, idf: idf}
}

// DocFreq returns the number of corpus nodes containing term — the
// engine half of the CorpusStats interface.
func (e *Engine) DocFreq(term string) int { return e.idx.DocFreq(term) }

// MapToEntities runs the pipeline's entity-map + label stage on an
// externally computed SLCA set: each match is lifted to its nearest
// enclosing entity, matches falling in the same entity merge, and the
// survivors come back labelled in document order. A match ID absent
// from the tree is an internal error.
//
// The sharded executor fans the SLCA stage out per shard and feeds the
// per-shard ID sets through this stage, so sharded and monolithic
// searches share one entity-inference implementation.
func (e *Engine) MapToEntities(matches []dewey.ID) ([]*Result, error) {
	return e.mapToEntities(matches, true)
}
