package xseek

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// wandBenchCorpus builds n sibling entities where every entity matches
// a broad two-term query, so the streamed path has no rare term to
// lean on and must score the whole candidate stream. A small fraction
// of heavy entities carries ~8 occurrences of both terms; with
// scatter=0 they are front-loaded in document order, so the top-k heap
// saturates within the first few blocks and the block-max bounds rule
// out everything after. scatter>0 spreads a heavy entity into every
// scatter-th slot instead, planting a high block maximum in nearly
// every block — the shape where bounds cannot prune and WAND should
// merely stay competitive.
func wandBenchCorpus(n, scatter int) *Engine {
	var b strings.Builder
	b.WriteString("<catalog>")
	heavyCount := n/50 + 1
	for i := 0; i < n; i++ {
		heavy := (scatter == 0 && i < heavyCount) || (scatter > 0 && i%scatter == 0)
		b.WriteString("<item>")
		reps := 1
		if heavy {
			reps = 8
		}
		for r := 0; r < reps; r++ {
			fmt.Fprintf(&b, "<f%d>common broad</f%d>", r, r)
		}
		for a := 0; a < 24; a++ {
			fmt.Fprintf(&b, "<attr%d>v%d</attr%d>", a, (i+a)%97, a)
		}
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return NewParallel(xmltree.MustParseString(b.String()))
}

// BenchmarkWANDTopK contrasts the plain streamed ranked page (score
// every candidate, heap-select the window) with the score-bounded
// consumer in both accuracy modes, across heavy-entity placement ×
// window size. BENCH_WAND.json records a run. scatter=front is the
// prunable shape; scatter=48 poisons every block's maximum so the
// bounds buy nothing — the regression guard that pruning bookkeeping
// stays cheap.
func BenchmarkWANDTopK(b *testing.B) {
	const nEntities = 20000
	for _, scatter := range []int{0, 48} {
		ss := "front"
		if scatter > 0 {
			ss = fmt.Sprint(scatter)
		}
		b.Run(fmt.Sprintf("scatter=%s", ss), func(b *testing.B) {
			e := wandBenchCorpus(nEntities, scatter)
			for _, limit := range []int{10, 100} {
				opts := SearchOptions{Limit: limit}
				b.Run(fmt.Sprintf("limit=%d/streamed", limit), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := e.SearchRankedPageStream("common broad", opts); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(fmt.Sprintf("limit=%d/wand-exact", limit), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, _, err := e.SearchRankedPageWAND("common broad", opts); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(fmt.Sprintf("limit=%d/wand-approx", limit), func(b *testing.B) {
					b.ReportAllocs()
					aopts := opts
					aopts.Accuracy = AccuracyApprox
					for i := 0; i < b.N; i++ {
						if _, _, _, err := e.SearchRankedPageWAND("common broad", aopts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestWANDTopKSpeedup is the benchmark's claim as a regression guard:
// on the prunable shape (broad low-skew query, heavy entities
// front-loaded) a small approximate window must beat plain streaming
// by at least 2x, with blocks actually skipped. The floor sits well
// below the benchmarked ratio (BENCH_WAND.json records the real
// number) so CI timing noise cannot flake the suite. Exact mode still
// has to count the tail for the total, so its ratio is only logged.
func TestWANDTopKSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the streamed/WAND ratio; CI runs this in a no-race step")
	}
	e := wandBenchCorpus(20000, 0)
	opts := SearchOptions{Limit: 10}
	aopts := opts
	aopts.Accuracy = AccuracyApprox
	query := "common broad"

	// Warm every path once (first-touch schema child links, page cache).
	if _, _, err := e.SearchRankedPageStream(query, opts); err != nil {
		t.Fatal(err)
	}
	_, _, st, err := e.SearchRankedPageWAND(query, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Bounded || st.BlocksSkipped == 0 || st.Pruned == 0 {
		t.Fatalf("prunable shape did not prune: %+v", st)
	}
	if _, _, _, err := e.SearchRankedPageWAND(query, opts); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, _, err := e.SearchRankedPageStream(query, opts); err != nil {
			t.Fatal(err)
		}
	}
	streamTime := time.Since(start) / rounds

	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, _, _, err := e.SearchRankedPageWAND(query, aopts); err != nil {
			t.Fatal(err)
		}
	}
	approxTime := time.Since(start) / rounds

	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, _, _, err := e.SearchRankedPageWAND(query, opts); err != nil {
			t.Fatal(err)
		}
	}
	exactTime := time.Since(start) / rounds

	ratio := float64(streamTime) / float64(approxTime)
	t.Logf("streamed %v, wand-exact %v (%.1fx), wand-approx %v (%.1fx faster)",
		streamTime, exactTime, float64(streamTime)/float64(exactTime), approxTime, ratio)
	if ratio < 2 {
		t.Fatalf("approximate WAND top-k only %.1fx faster than streamed (wand %v, streamed %v)",
			ratio, approxTime, streamTime)
	}
}
