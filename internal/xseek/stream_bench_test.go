package xseek

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// streamBenchCorpus builds n sibling entities, each carrying several
// leaf attributes and deliberately NO name-like field: the eager path
// materializes a labelled Result for every match (paying the label
// fallback's child scans and Sprintf per result), while the streamed
// path labels only the hits that survive the bounded heap. The common
// term appears in every entity, the rare term in every skew-th — the
// same shape BENCH_PLANNER.json calibrates the SLCA planner on.
func streamBenchCorpus(n, skew int) *Engine {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		b.WriteString("<item>")
		fmt.Fprintf(&b, "<desc>common widget %d</desc>", i)
		if i%skew == 0 {
			b.WriteString("<tag>rare</tag>")
		}
		for a := 0; a < 24; a++ {
			fmt.Fprintf(&b, "<attr%d>v%d</attr%d>", a, (i+a)%97, a)
		}
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return NewParallel(xmltree.MustParseString(b.String()))
}

// BenchmarkStreamTopK contrasts the eager ranked page (materialize and
// label every result, then heap-select the window) with the streamed
// pipeline (lazy iterators end-to-end, labels only for survivors)
// across window size × posting-list skew. BENCH_STREAM.json records a
// run. limit=0 ranks everything — the shape with no early termination
// to exploit, where streamed should merely stay competitive.
func BenchmarkStreamTopK(b *testing.B) {
	const nEntities = 20000
	for _, skew := range []int{1, 48, 256} {
		b.Run(fmt.Sprintf("skew=%d", skew), func(b *testing.B) {
			e := streamBenchCorpus(nEntities, skew)
			for _, limit := range []int{10, 100, 0} {
				ls := fmt.Sprint(limit)
				if limit == 0 {
					ls = "all"
				}
				opts := SearchOptions{Limit: limit}
				b.Run(fmt.Sprintf("limit=%s/eager", ls), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						eo := opts
						eo.Mode = ExecEager
						if _, _, err := e.SearchRankedPage("common rare", eo); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(fmt.Sprintf("limit=%s/streamed", ls), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := e.SearchRankedPageStream("common rare", opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// TestStreamTopKSpeedup is the benchmark's claim as a regression
// guard: a small ranked window over a skewed workload must run
// markedly faster streamed than eager. The asserted floor is
// deliberately below the benchmarked ratio (BENCH_STREAM.json records
// the real number) so CI timing noise cannot flake the suite.
func TestStreamTopKSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the eager/streamed ratio; CI runs this in a no-race step")
	}
	e := streamBenchCorpus(20000, 48)
	opts := SearchOptions{Limit: 10}
	query := "common rare"

	// Warm both paths once (first-touch schema child links, page cache).
	eager := opts
	eager.Mode = ExecEager
	if _, _, err := e.SearchRankedPage(query, eager); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.SearchRankedPageStream(query, opts); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, _, err := e.SearchRankedPage(query, eager); err != nil {
			t.Fatal(err)
		}
	}
	eagerTime := time.Since(start) / rounds

	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, _, err := e.SearchRankedPageStream(query, opts); err != nil {
			t.Fatal(err)
		}
	}
	streamTime := time.Since(start) / rounds

	ratio := float64(eagerTime) / float64(streamTime)
	t.Logf("eager %v, streamed %v (%.1fx faster)", eagerTime, streamTime, ratio)
	if ratio < 4 {
		t.Fatalf("streamed top-k only %.1fx faster than eager (stream %v, eager %v)",
			ratio, streamTime, eagerTime)
	}
}
