package xseek

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// schemasEqual compares two schemas on every path either knows about:
// identical path sets and identical category + instance evidence.
func schemasEqual(t *testing.T, got, want *Schema) {
	t.Helper()
	if !reflect.DeepEqual(got.Paths(), want.Paths()) {
		t.Fatalf("paths: got %v, want %v", got.Paths(), want.Paths())
	}
	for _, p := range want.Paths() {
		if got.CategoryOf(p) != want.CategoryOf(p) {
			t.Fatalf("path %q: category %v, want %v", p, got.CategoryOf(p), want.CategoryOf(p))
		}
		if got.Instances(p) != want.Instances(p) {
			t.Fatalf("path %q: instances %d, want %d", p, got.Instances(p), want.Instances(p))
		}
	}
}

func TestComposeSchemaEqualsInferSchema(t *testing.T) {
	root := xmltree.MustParseString(`<shop>
	  <product><name>a</name><review>good</review><review>bad</review></product>
	  <product><name>b</name><review>ok</review></product>
	  <info>opening hours</info>
	</shop>`)
	kids := root.ChildElements()
	cache := make(map[*xmltree.Node]*Evidence)
	ev := func(c *xmltree.Node) *Evidence {
		if e := cache[c]; e != nil {
			return e
		}
		e := CollectEvidence(c, root.Tag)
		cache[c] = e
		return e
	}
	schemasEqual(t, ComposeSchema(root, kids, ev), InferSchema(root))

	// Removing one product must recompose to exactly the schema a cold
	// inference of the pruned tree produces — including the category
	// flip of <product> from entity to non-entity when only one is left.
	pruned := root.Clone()
	pruned.Children = append([]*xmltree.Node{}, pruned.Children[1:]...)
	pruned.AssignIDs(nil)
	cold := InferSchema(pruned)
	composed := ComposeSchema(root, kids[1:], ev)
	schemasEqual(t, composed, cold)
	if composed.CategoryOf("shop/product") == EntityNode {
		t.Fatalf("single remaining product should not be an entity")
	}

	// Composition must not have mutated the cached evidence: composing
	// the full child set again still equals the cold full schema.
	schemasEqual(t, ComposeSchema(root, kids, ev), InferSchema(root))
}
