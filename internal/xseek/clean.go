package xseek

import (
	"strings"

	"repro/internal/index"
	"repro/internal/slca"
)

// CleanQuery maps each query keyword to the closest indexed term:
// keywords already in the vocabulary pass through; unmatched keywords
// are replaced by their best spelling suggestion (edit distance ≤ 2);
// keywords with no suggestion are kept as-is (Search will then report
// them via NoMatchError). The returned slice preserves keyword order.
// This is the paper's "query cleaning" companion technique.
func (e *Engine) CleanQuery(query string) []string {
	terms := index.TokenizeQuery(query)
	out := make([]string, len(terms))
	for i, t := range terms {
		if e.idx.DocFreq(t) > 0 {
			out[i] = t
			continue
		}
		if sugg := e.idx.Suggest(t, 2); len(sugg) > 0 {
			out[i] = sugg[0]
		} else {
			out[i] = t
		}
	}
	return out
}

// SearchCleaned cleans the query first and then searches, returning
// the corrected keywords alongside the results so a UI can display
// "showing results for ...".
func (e *Engine) SearchCleaned(query string) ([]*Result, []string, error) {
	cleaned := e.CleanQuery(query)
	res, err := e.Search(strings.Join(cleaned, " "))
	return res, cleaned, err
}

// SearchELCA runs the query under Exclusive LCA semantics instead of
// SLCA: ancestors that contain all keywords through witnesses outside
// their candidate descendants are also returned. ELCA is a superset of
// SLCA; some XSeek variants prefer it for recall.
func (e *Engine) SearchELCA(query string) ([]*Result, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, ErrEmptyQuery
	}
	lists, _, err := e.idx.QueryLists(terms)
	if err != nil {
		return nil, err
	}
	return e.mapToEntities(slca.ELCA(lists), false)
}
