package xseek

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/xmltree"
)

func threeEngines(t *testing.T) map[string]*Engine {
	t.Helper()
	return map[string]*Engine{
		"reviews":  New(dataset.ProductReviews(dataset.ReviewsConfig{Seed: 1, ProductsPerCategory: 4, MinReviews: 5, MaxReviews: 10})),
		"retailer": New(dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: 1, ProductsPerBrand: 20})),
		"movies":   New(dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 80})),
	}
}

func TestSelectDatabaseRoutesByTopic(t *testing.T) {
	engines := threeEngines(t)
	cases := map[string]string{
		"tomtom gps":     "reviews",
		"rain jackets":   "retailer",
		"horror vampire": "movies",
		"marmot":         "retailer",
	}
	for query, want := range cases {
		name, eng := SelectDatabase(engines, query)
		if name != want || eng == nil {
			t.Errorf("SelectDatabase(%q) = %q, want %q", query, name, want)
		}
	}
}

func TestSelectDatabaseNoMatch(t *testing.T) {
	engines := threeEngines(t)
	name, eng := SelectDatabase(engines, "xyzzyplugh")
	if name != "" || eng != nil {
		t.Fatalf("no-match selection = %q, %v", name, eng)
	}
}

func TestScoreDatabasesOrdering(t *testing.T) {
	engines := threeEngines(t)
	scores := ScoreDatabases(engines, "tomtom gps travel")
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		a, b := scores[i-1], scores[i]
		if a.Coverage < b.Coverage {
			t.Fatalf("not ordered by coverage: %+v before %+v", a, b)
		}
		if a.Coverage == b.Coverage && a.Score < b.Score {
			t.Fatalf("not ordered by score: %+v before %+v", a, b)
		}
	}
	if scores[0].Name != "reviews" {
		t.Fatalf("top corpus = %q", scores[0].Name)
	}
}

func TestScoreDatabasesCoverageBeatsScore(t *testing.T) {
	// A corpus matching both keywords must outrank one matching only
	// the (locally very frequent) first keyword.
	both := New(xmltree.MustParseString(`<r><x>alpha beta</x></r>`))
	one := New(xmltree.MustParseString(`<r><x>alpha</x><x>alpha</x><x>alpha</x><x>alpha</x></r>`))
	scores := ScoreDatabases(map[string]*Engine{"both": both, "one": one}, "alpha beta")
	if scores[0].Name != "both" {
		t.Fatalf("coverage should dominate: %+v", scores)
	}
}

func TestScoreDatabasesDeterministicTies(t *testing.T) {
	a := New(xmltree.MustParseString(`<r><x>alpha</x></r>`))
	b := New(xmltree.MustParseString(`<r><x>alpha</x></r>`))
	for i := 0; i < 10; i++ {
		scores := ScoreDatabases(map[string]*Engine{"bbb": b, "aaa": a}, "alpha")
		if scores[0].Name != "aaa" {
			t.Fatalf("tie break not by name: %+v", scores)
		}
	}
}
