package xseek

import (
	"testing"

	"repro/internal/dataset"
)

// TestInferSchemaParallelMatchesSerial checks the merged schema agrees
// with the serial one on every node-type path, instance tally, and
// category.
func TestInferSchemaParallelMatchesSerial(t *testing.T) {
	root := dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: 5})
	serial := InferSchema(root)
	for _, workers := range []int{1, 2, 3, 8} {
		par := InferSchemaParallel(root, workers)
		sp, pp := serial.Paths(), par.Paths()
		if len(sp) != len(pp) {
			t.Fatalf("workers=%d: %d paths, want %d", workers, len(pp), len(sp))
		}
		for i, p := range sp {
			if pp[i] != p {
				t.Fatalf("workers=%d: path %d = %q, want %q", workers, i, pp[i], p)
			}
			if got, want := par.Instances(p), serial.Instances(p); got != want {
				t.Fatalf("workers=%d: %q instances = %d, want %d", workers, p, got, want)
			}
			if got, want := par.CategoryOf(p), serial.CategoryOf(p); got != want {
				t.Fatalf("workers=%d: %q category = %v, want %v", workers, p, got, want)
			}
		}
	}
}

// TestNewParallelSearchEquivalence runs the same queries through a
// serially- and a parallel-built engine and demands identical results.
func TestNewParallelSearchEquivalence(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 2, Movies: 80})
	serial := New(root)
	par := NewParallel(root)
	for _, q := range dataset.MovieQueries() {
		a, errA := serial.Search(q)
		b, errB := par.Search(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query %q: error mismatch: %v vs %v", q, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("query %q: %d results vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Node != b[i].Node || a[i].Label != b[i].Label {
				t.Fatalf("query %q: result %d differs: %s vs %s", q, i, a[i].Label, b[i].Label)
			}
		}
	}
}

// TestLabelForFallback covers the tag@dewey fallback for unlabelled
// subtrees (shared by search results and the facade's Lift).
func TestLabelForFallback(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 3})
	if got := LabelFor(root); got == "" {
		t.Fatal("LabelFor returned empty label")
	}
}
