package xseek

import (
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestCountUnder(t *testing.T) {
	postings := index.PostingList{
		dewey.New(0, 0), dewey.New(0, 1), dewey.New(0, 1, 2),
		dewey.New(1), dewey.New(2, 0),
	}
	cases := []struct {
		root dewey.ID
		want int
	}{
		{dewey.New(0), 3},
		{dewey.New(0, 1), 2},
		{dewey.New(1), 1},
		{dewey.New(2), 1},
		{dewey.New(3), 0},
		{dewey.Root(), 5},
	}
	for _, c := range cases {
		if got := index.CountUnder(postings, c.root); got != c.want {
			t.Errorf("countUnder(%v) = %d, want %d", c.root, got, c.want)
		}
	}
}

func TestSearchRankedOrdersByRelevance(t *testing.T) {
	// Product B mentions "gps" three times, product A once; B must
	// rank first even though A precedes it in document order.
	doc := `
<store>
  <product><name>A gps</name><blurb>solid unit</blurb></product>
  <product><name>B gps</name><blurb>gps with gps antenna</blurb></product>
  <product><name>C radio</name></product>
</store>`
	e := New(xmltree.MustParseString(doc))
	ranked, err := e.SearchRanked("gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("results = %d", len(ranked))
	}
	if ranked[0].Label != "B gps" {
		t.Fatalf("top result = %q, want B", ranked[0].Label)
	}
	if ranked[0].Score <= ranked[1].Score {
		t.Fatalf("scores not descending: %f, %f", ranked[0].Score, ranked[1].Score)
	}
}

func TestSearchRankedStableOnTies(t *testing.T) {
	doc := `
<store>
  <product><name>A gps</name></product>
  <product><name>B gps</name></product>
</store>`
	e := New(xmltree.MustParseString(doc))
	ranked, err := e.SearchRanked("gps")
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Label != "A gps" || ranked[1].Label != "B gps" {
		t.Fatalf("tie break lost document order: %q, %q", ranked[0].Label, ranked[1].Label)
	}
}

func TestSearchRankedRareTermWeighsMore(t *testing.T) {
	// Both products match "gps"; only one matches the rarer "marine".
	// With equal term frequencies, the marine product's extra rare
	// term must outweigh the common one.
	doc := `
<store>
  <product><name>A gps</name><blurb>gps gps unit</blurb></product>
  <product><name>B gps marine</name></product>
  <product><name>C gps</name></product>
  <product><name>D gps</name></product>
</store>`
	e := New(xmltree.MustParseString(doc))
	ranked, err := e.SearchRanked("gps marine")
	if err == nil {
		// All terms matched somewhere; B is the only result containing
		// both, but SLCA semantics may surface others. B must be top.
		if ranked[0].Label != "B gps marine" {
			t.Fatalf("top = %q, want B", ranked[0].Label)
		}
		return
	}
	t.Fatalf("unexpected error: %v", err)
}

func TestSearchRankedPropagatesErrors(t *testing.T) {
	e := New(xmltree.MustParseString(`<r><x>a</x><x>b</x></r>`))
	if _, err := e.SearchRanked("missing-term"); err == nil {
		t.Fatal("want error for unmatched keyword")
	}
}

func BenchmarkSearchRanked(b *testing.B) {
	root := xmltree.MustParseString(shopDoc)
	e := New(root)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SearchRanked("tomtom"); err != nil {
			b.Fatal(err)
		}
	}
}
