package xseek

import (
	"runtime"
	"sync"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// NewParallel builds the same engine as New but constructs the
// inverted index and the schema summary concurrently, each internally
// fanned out over the root's child subtrees. The result is
// indistinguishable from New's; only the startup latency differs.
func NewParallel(root *xmltree.Node) *Engine {
	e := &Engine{root: root}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.idx = index.BuildParallel(root, 0)
	}()
	go func() {
		defer wg.Done()
		e.schema = InferSchemaParallel(root, 0)
	}()
	wg.Wait()
	e.initDerived()
	return e
}

// InferSchemaParallel builds the same schema summary as InferSchema by
// visiting the root's child subtrees in parallel chunks and merging
// the per-chunk evidence. Child subtrees only share node-type paths,
// never parent/child sibling counts, so the merge is: sum instance
// tallies, max sibling maxima, then apply the root-level sibling
// counts (owned by the root, not by any chunk) on top.
// workers <= 0 selects GOMAXPROCS.
func InferSchemaParallel(root *xmltree.Node, workers int) *Schema {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	kids := root.ChildElements()
	if workers == 1 || len(kids) < 2*workers {
		return InferSchema(root)
	}

	chunks := make([]*Schema, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(kids)/workers, (w+1)*len(kids)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := &Schema{types: make(map[string]*typeInfo)}
			for _, c := range kids[lo:hi] {
				local.visit(c, root.Tag+"/"+c.Tag)
			}
			chunks[w] = local
		}(w, lo, hi)
	}
	wg.Wait()

	s := &Schema{types: make(map[string]*typeInfo)}
	// The root's own evidence, which no chunk observed.
	rootInfo := &typeInfo{path: root.Tag, tag: root.Tag, instances: 1}
	if root.IsLeafElement() {
		rootInfo.leafInstances = 1
	}
	s.types[root.Tag] = rootInfo
	for _, local := range chunks {
		if local == nil {
			continue
		}
		for path, info := range local.types {
			dst := s.types[path]
			if dst == nil {
				s.types[path] = info
				continue
			}
			dst.instances += info.instances
			dst.leafInstances += info.leafInstances
			if info.maxSiblings > dst.maxSiblings {
				dst.maxSiblings = info.maxSiblings
			}
		}
	}
	// Sibling counts among the root's direct children.
	counts := make(map[string]int)
	for _, c := range kids {
		counts[c.Tag]++
	}
	for tag, n := range counts {
		ci := s.types[root.Tag+"/"+tag]
		if ci != nil && n > ci.maxSiblings {
			ci.maxSiblings = n
		}
	}
	return s
}
