package xseek

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

const shopDoc = `
<store>
  <product>
    <name>TomTom Go 630</name>
    <rating>4.2</rating>
    <reviews>
      <review><pro>compact</pro><pro>easy to read</pro><bestuse>auto</bestuse></review>
      <review><pro>compact</pro></review>
    </reviews>
  </product>
  <product>
    <name>TomTom Go 730</name>
    <rating>4.1</rating>
    <reviews>
      <review><pro>acquire satellites quickly</pro></review>
    </reviews>
  </product>
  <product>
    <name>Garmin Nuvi</name>
    <rating>3.9</rating>
  </product>
</store>`

func shopTree(t *testing.T) *xmltree.Node {
	t.Helper()
	root, err := xmltree.ParseString(shopDoc)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestSchemaCategories(t *testing.T) {
	root := shopTree(t)
	s := InferSchema(root)
	cases := map[string]Category{
		"store":                                ConnectionNode,
		"store/product":                        EntityNode,
		"store/product/name":                   AttributeNode,
		"store/product/rating":                 AttributeNode,
		"store/product/reviews":                ConnectionNode,
		"store/product/reviews/review":         EntityNode,
		"store/product/reviews/review/pro":     EntityNode, // repeats within a review
		"store/product/reviews/review/bestuse": AttributeNode,
	}
	for path, want := range cases {
		if got := s.CategoryOf(path); got != want {
			t.Errorf("CategoryOf(%s) = %v, want %v", path, got, want)
		}
	}
}

func TestSchemaUnknownPathIsConnection(t *testing.T) {
	s := InferSchema(shopTree(t))
	if got := s.CategoryOf("no/such/path"); got != ConnectionNode {
		t.Fatalf("unknown path category = %v", got)
	}
}

func TestSchemaInstances(t *testing.T) {
	s := InferSchema(shopTree(t))
	if got := s.Instances("store/product"); got != 3 {
		t.Fatalf("product instances = %d, want 3", got)
	}
	if got := s.Instances("store/product/reviews/review"); got != 3 {
		t.Fatalf("review instances = %d, want 3", got)
	}
}

func TestNearestEntity(t *testing.T) {
	root := shopTree(t)
	s := InferSchema(root)
	name := root.Children[0].FirstChildElement("name")
	ent := s.NearestEntity(name)
	if ent == nil || ent.Tag != "product" {
		t.Fatalf("NearestEntity(name) = %v", ent)
	}
	// A review's bestuse belongs to the review entity.
	bestuse := root.FindAll("bestuse")[0]
	if got := s.NearestEntity(bestuse); got == nil || got.Tag != "review" {
		t.Fatalf("NearestEntity(bestuse) = %v", got)
	}
	// The store root has no entity ancestor.
	if got := s.NearestEntity(root); got != nil {
		t.Fatalf("NearestEntity(store) = %v, want nil", got)
	}
}

func TestSearchReturnsEntities(t *testing.T) {
	e := New(shopTree(t))
	res, err := e.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Node.Tag != "product" || res[1].Node.Tag != "product" {
		t.Fatalf("result tags: %s, %s", res[0].Node.Tag, res[1].Node.Tag)
	}
	if res[0].Label != "TomTom Go 630" || res[1].Label != "TomTom Go 730" {
		t.Fatalf("labels: %q, %q", res[0].Label, res[1].Label)
	}
}

func TestSearchMergesSLCAsWithinOneEntity(t *testing.T) {
	e := New(shopTree(t))
	// "compact" matches two <pro> nodes in product 1 (distinct SLCAs),
	// both inside the same product entity — and their nearest entity is
	// the <pro>?? pro repeats so pro is an entity itself. Each match IS
	// a pro entity, so we get two results rooted at pro nodes... those
	// are distinct entities. Use a query matching name+rating instead.
	res, err := e.Search("tomtom 630")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		for _, r := range res {
			t.Logf("result: %s %s", r.Node.Tag, r.Label)
		}
		t.Fatalf("got %d results, want 1", len(res))
	}
}

func TestSearchNoMatch(t *testing.T) {
	e := New(shopTree(t))
	_, err := e.Search("tomtom unicornium")
	var nm *index.NoMatchError
	if !errors.As(err, &nm) {
		t.Fatalf("err = %v, want NoMatchError", err)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	e := New(shopTree(t))
	if _, err := e.Search("  ... "); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestSearchDocumentOrder(t *testing.T) {
	e := New(shopTree(t))
	res, err := e.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Node.ID.Compare(res[i].Node.ID) >= 0 {
			t.Fatal("results not in document order")
		}
	}
}

func TestLabelFallback(t *testing.T) {
	root := xmltree.MustParseString(`<r><thing><w>alpha</w></thing><thing><w>beta</w></thing></r>`)
	e := New(root)
	res, err := e.Search("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if !strings.Contains(res[0].Label, "thing@") {
		t.Fatalf("fallback label = %q", res[0].Label)
	}
}

func TestDescribeResult(t *testing.T) {
	e := New(shopTree(t))
	res, err := e.Search("garmin")
	if err != nil {
		t.Fatal(err)
	}
	desc := DescribeResult(res[0], 4)
	if !strings.Contains(desc, "Garmin Nuvi") || !strings.Contains(desc, "rating=3.9") {
		t.Fatalf("DescribeResult = %q", desc)
	}
}

func TestResultID(t *testing.T) {
	e := New(shopTree(t))
	res, err := e.Search("garmin")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Root().NodeAt(res[0].ID()); got != res[0].Node {
		t.Fatal("Result.ID does not resolve to the result node")
	}
}

func BenchmarkSearch(b *testing.B) {
	root := xmltree.MustParseString(shopDoc)
	e := New(root)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search("tomtom"); err != nil {
			b.Fatal(err)
		}
	}
}
