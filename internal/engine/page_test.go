package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func pagedCorpus(t *testing.T, n int) *Engine {
	t.Helper()
	var b strings.Builder
	b.WriteString("<store>")
	for i := 0; i < n; i++ {
		extra := strings.Repeat(" gps", i%3)
		fmt.Fprintf(&b, "<product><name>P%02d gps</name><blurb>unit%s</blurb></product>", i, extra)
	}
	b.WriteString("</store>")
	return New(xmltree.MustParseString(b.String()))
}

func TestEngineSearchPageConcatenation(t *testing.T) {
	e := pagedCorpus(t, 17)
	full, err := e.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	var got []*xseek.Result
	for off := 0; ; off += 5 {
		page, err := e.SearchPage("gps", xseek.SearchOptions{Limit: 5, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != len(full) {
			t.Fatalf("total = %d, want %d", page.Total, len(full))
		}
		if page.Offset != off && off < len(full) {
			t.Fatalf("offset = %d, want %d", page.Offset, off)
		}
		if len(page.Results) == 0 {
			break
		}
		got = append(got, page.Results...)
	}
	if len(got) != len(full) {
		t.Fatalf("concatenated %d results, want %d", len(got), len(full))
	}
	for i := range full {
		// Pages are windows over the one cached result list, so
		// pointer equality must hold at the serving layer.
		if got[i] != full[i] {
			t.Fatalf("page concat diverges at %d", i)
		}
	}
}

func TestEngineSearchPageOutOfRange(t *testing.T) {
	e := pagedCorpus(t, 4)
	page, err := e.SearchPage("gps", xseek.SearchOptions{Limit: 3, Offset: 50})
	if err != nil {
		t.Fatalf("out-of-range offset errored: %v", err)
	}
	if len(page.Results) != 0 || page.Total != 4 || page.Offset != 4 {
		t.Fatalf("page = %+v, want empty results, total 4, offset clamped to 4", page)
	}
}

func TestEngineSearchRankedPageConcatenation(t *testing.T) {
	e := pagedCorpus(t, 21)
	full, err := e.SearchRanked("gps")
	if err != nil {
		t.Fatal(err)
	}
	var got []*xseek.RankedResult
	for off := 0; ; off += 4 {
		page, err := e.SearchRankedPage("gps", xseek.SearchOptions{Limit: 4, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != len(full) {
			t.Fatalf("total = %d, want %d", page.Total, len(full))
		}
		if len(page.Results) == 0 {
			break
		}
		got = append(got, page.Results...)
	}
	if len(got) != len(full) {
		t.Fatalf("concatenated %d results, want %d", len(got), len(full))
	}
	for i := range full {
		if got[i].Result != full[i].Result || got[i].Score != full[i].Score {
			t.Fatalf("ranked page concat diverges at %d: %q vs %q", i, got[i].Label, full[i].Label)
		}
	}
}

func TestMetricsPlannerCounters(t *testing.T) {
	e := pagedCorpus(t, 9)
	if _, err := e.Search("gps unit"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search("gps unit"); err != nil { // cache hit: no new decision
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.PlannerIndexedLookup+m.PlannerScanEager != 1 {
		t.Fatalf("planner decisions = %d indexed + %d scan, want exactly 1 total (second search was cached)",
			m.PlannerIndexedLookup, m.PlannerScanEager)
	}
}

func TestStatsCacheBounded(t *testing.T) {
	root := xmltree.MustParseString(`<store>
		<product><name>A</name><price>1</price></product>
		<product><name>B</name><price>2</price></product>
		<product><name>C</name><price>3</price></product>
		<product><name>D</name><price>4</price></product>
	</store>`)
	e := NewWithConfig(root, Config{StatsCacheSize: 2})
	products := root.ChildElements()
	if len(products) != 4 {
		t.Fatalf("test corpus has %d products, want 4", len(products))
	}
	for _, p := range products {
		e.Stats(p, xseek.LabelFor(p))
	}
	m := e.Metrics()
	if m.StatsMisses != 4 {
		t.Fatalf("stats misses = %d, want 4", m.StatsMisses)
	}
	if m.StatsEvictions != 2 {
		t.Fatalf("stats evictions = %d, want 2 (4 inserts into a 2-slot cache)", m.StatsEvictions)
	}
	if got := e.stats.len(); got != 2 {
		t.Fatalf("stats cache holds %d entries, want 2", got)
	}
	// The two oldest were evicted: re-requesting the first is a miss,
	// re-requesting the last is a hit.
	e.Stats(products[0], xseek.LabelFor(products[0]))
	e.Stats(products[3], xseek.LabelFor(products[3]))
	m = e.Metrics()
	if m.StatsMisses != 5 || m.StatsHits != 1 {
		t.Fatalf("after re-requests: misses = %d, hits = %d; want 5 and 1", m.StatsMisses, m.StatsHits)
	}
}
