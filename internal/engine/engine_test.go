package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/xseek"
)

func reviewsEngine(t testing.TB) *Engine {
	t.Helper()
	return New(dataset.ProductReviews(dataset.ReviewsConfig{Seed: 1}))
}

func TestSearchMatchesXseek(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 1})
	e := New(root)
	want, err := xseek.New(root).Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node || got[i].Label != want[i].Label {
			t.Fatalf("result %d: %q vs %q", i, got[i].Label, want[i].Label)
		}
	}
}

func TestSearchQueryCache(t *testing.T) {
	e := reviewsEngine(t)
	first, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	// Different surface forms of the same token sequence share a slot.
	second, err := e.Search("  Tomtom   GPS ")
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Fatal("cache hit should return the shared result slice")
	}
	m := e.Metrics()
	if m.QueryMisses != 1 || m.QueryHits != 1 {
		t.Fatalf("metrics = %+v, want 1 miss + 1 hit", m)
	}
}

// TestSearchQueryCacheOrderInsensitive is the regression test for the
// order-sensitive cache key: SLCA treats a query as a keyword set, so
// permutations must share one slot.
func TestSearchQueryCacheOrderInsensitive(t *testing.T) {
	e := reviewsEngine(t)
	first, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Search("gps tomtom")
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Fatal("reordered keywords should return the shared cached slice")
	}
	m := e.Metrics()
	if m.QueryMisses != 1 || m.QueryHits != 1 {
		t.Fatalf("metrics = %+v, want 1 miss + 1 hit across permutations", m)
	}
}

// TestSearchNoMatchCached is the regression test for missing negative
// caching: a repeated miss query must be answered from the cache, with
// the same NoMatchError, without re-running SLCA.
func TestSearchNoMatchCached(t *testing.T) {
	e := reviewsEngine(t)
	var errs []error
	for i := 0; i < 2; i++ {
		rs, err := e.Search("zzznope gps")
		if err == nil {
			t.Fatal("expected no-match error")
		}
		if len(rs) != 0 {
			t.Fatalf("no-match search returned %d results", len(rs))
		}
		errs = append(errs, err)
	}
	var noMatch *index.NoMatchError
	if !errors.As(errs[1], &noMatch) {
		t.Fatalf("cached outcome lost its error type: %v", errs[1])
	}
	m := e.Metrics()
	if m.QueryMisses != 1 || m.QueryHits != 1 {
		t.Fatalf("repeated miss query must hit the negative cache: %+v", m)
	}
}

// TestSearchEmptyQueryNotCached: the empty-query error is a caller
// mistake, not a corpus outcome, and must not occupy a cache slot.
func TestSearchEmptyQueryNotCached(t *testing.T) {
	e := reviewsEngine(t)
	for i := 0; i < 2; i++ {
		if _, err := e.Search(""); err == nil {
			t.Fatal("empty query should error")
		}
	}
	m := e.Metrics()
	if m.QueryHits != 0 || m.QueryMisses != 2 {
		t.Fatalf("empty-query errors must not populate the cache: %+v", m)
	}
}

func TestStatsCache(t *testing.T) {
	e := reviewsEngine(t)
	results, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("need >= 2 results, got %d", len(results))
	}
	a := e.Stats(results[0].Node, results[0].Label)
	b := e.Stats(results[0].Node, results[0].Label)
	if a != b {
		t.Fatal("second Stats call must return the cached pointer")
	}
	m := e.Metrics()
	if m.StatsMisses != 1 || m.StatsHits != 1 {
		t.Fatalf("metrics = %+v, want 1 extraction + 1 hit", m)
	}
}

func TestStatsForResultsCachesEachSubtree(t *testing.T) {
	e := reviewsEngine(t)
	results, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	first := e.StatsForResults(results)
	before := e.Metrics()
	if before.StatsMisses != int64(len(results)) {
		t.Fatalf("cold extraction count = %d, want %d", before.StatsMisses, len(results))
	}
	second := e.StatsForResults(results)
	after := e.Metrics()
	if after.StatsMisses != before.StatsMisses {
		t.Fatalf("warm StatsForResults re-extracted: %d -> %d misses", before.StatsMisses, after.StatsMisses)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("result %d stats not shared", i)
		}
	}
}

func TestGenerateCachedAndEquivalent(t *testing.T) {
	e := reviewsEngine(t)
	results, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{SizeBound: 8, Pad: true}
	cold := e.Generate(core.AlgMultiSwap, results, opts)
	if cold == nil {
		t.Fatal("Generate returned nil for known algorithm")
	}
	// Equivalent to the uncached core path.
	want := core.Generate(core.AlgMultiSwap, e.StatsForResults(results), opts)
	if a, b := core.TotalDoD(cold, core.DefaultThreshold), core.TotalDoD(want, core.DefaultThreshold); a != b {
		t.Fatalf("engine DoD %d, core DoD %d", a, b)
	}
	before := e.Metrics()
	warm := e.Generate(core.AlgMultiSwap, results, opts)
	after := e.Metrics()
	if &warm[0] != &cold[0] {
		t.Fatal("repeated Generate must return the memoized DFS set")
	}
	if after.DFSHits != before.DFSHits+1 || after.StatsMisses != before.StatsMisses {
		t.Fatalf("warm Generate should hit the DFS cache without re-extraction: %+v -> %+v", before, after)
	}
	// A different bound is a different cache entry, not a stale hit.
	other := e.Generate(core.AlgMultiSwap, results, core.Options{SizeBound: 4, Pad: true})
	if len(other) > 0 && len(cold) > 0 && other[0].Sel.Size() == cold[0].Sel.Size() && cold[0].Sel.Size() > 4 {
		t.Fatal("options must participate in the DFS cache key")
	}
	if e.Generate(core.Algorithm("bogus"), results, opts) != nil {
		t.Fatal("unknown algorithm should return nil")
	}
}

// TestGenerateNormalizesOptionsKey is the regression test for the
// duplicate DFS-cache entries: a zero SizeBound selects the default,
// so Options{} and Options{SizeBound: DefaultSizeBound} must share one
// cache entry instead of re-running generation.
func TestGenerateNormalizesOptionsKey(t *testing.T) {
	e := reviewsEngine(t)
	results, err := e.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	cold := e.Generate(core.AlgMultiSwap, results, core.Options{Pad: true})
	if cold == nil {
		t.Fatal("Generate returned nil")
	}
	warm := e.Generate(core.AlgMultiSwap, results,
		core.Options{SizeBound: core.DefaultSizeBound, Threshold: core.DefaultThreshold, Pad: true})
	if &warm[0] != &cold[0] {
		t.Fatal("defaulted and explicit default options must share one DFS cache entry")
	}
	m := e.Metrics()
	if m.DFSMisses != 1 || m.DFSHits != 1 {
		t.Fatalf("metrics = %+v, want 1 generation + 1 hit", m)
	}
}

func TestSearchCleanedRoutesThroughCache(t *testing.T) {
	e := reviewsEngine(t)
	_, cleaned, err := e.SearchCleaned("tomtim gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned) != 2 || cleaned[0] != "tomtom" {
		t.Fatalf("cleaned = %v", cleaned)
	}
	// The corrected query now sits in the cache under its token key.
	if _, err := e.Search("tomtom gps"); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.QueryHits != 1 {
		t.Fatalf("cleaned search should prime the query cache: %+v", m)
	}
}

func TestSearchRankedAgainstXseek(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 40})
	e := New(root)
	want, err := xseek.New(root).SearchRanked("horror vampire")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SearchRanked("horror vampire")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d ranked results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label || got[i].Score != want[i].Score {
			t.Fatalf("rank %d: (%q, %g) vs (%q, %g)", i, got[i].Label, got[i].Score, want[i].Label, want[i].Score)
		}
	}
}

// TestConcurrentServing hammers one shared engine from many goroutines
// mixing search, stats extraction, and DFS generation. Run under
// -race; correctness here is the absence of data races plus coherent
// results.
func TestConcurrentServing(t *testing.T) {
	e := reviewsEngine(t)
	queries := []string{"tomtom gps", "garmin gps", "camera", "tomtom gps"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			for iter := 0; iter < 5; iter++ {
				results, err := e.Search(q)
				if err != nil {
					errs <- fmt.Errorf("search %q: %w", q, err)
					return
				}
				if len(results) < 2 {
					continue
				}
				dfss := e.Generate(core.AlgSingleSwap, results[:2], core.Options{SizeBound: 6, Pad: true})
				if dfss == nil || len(dfss) != 2 {
					errs <- fmt.Errorf("generate %q returned %d DFSs", q, len(dfss))
					return
				}
				if core.TotalDoD(dfss, core.DefaultThreshold) < 0 {
					errs <- fmt.Errorf("negative DoD")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 16 goroutines × 5 iterations over 3 distinct queries: the steady
	// state must be cache hits (concurrent first misses may duplicate).
	m := e.Metrics()
	if m.QueryHits == 0 {
		t.Fatalf("concurrent serving never hit the query cache: %+v", m)
	}
}
