package engine

import "container/list"

// lru is a bounded least-recently-used cache from string keys to
// arbitrary values. It is not safe for concurrent use; Engine guards
// each instance with its own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entries when over capacity, and returns how many were evicted. A
// cache with capacity <= 0 stores nothing.
func (c *lru) put(key string, val any) (evicted int) {
	if c.cap <= 0 {
		return 0
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached entries.
func (c *lru) len() int { return c.order.Len() }

// purge drops every entry, keeping the capacity.
func (c *lru) purge() {
	c.order.Init()
	c.items = make(map[string]*list.Element)
}
