package engine

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Config bounds the engine's caches and selects the execution layout.
// Zero values select defaults; a negative cache capacity disables that
// cache.
type Config struct {
	// QueryCacheSize bounds the query → results LRU. Default 256.
	QueryCacheSize int
	// DFSCacheSize bounds the (results, algorithm, options) → DFS-set
	// LRU. Default 128.
	DFSCacheSize int
	// StatsCacheSize bounds the result-root → feature-stats LRU.
	// Default 4096 (stats are small relative to the subtrees they
	// summarize, but diverse traffic must not grow the cache without
	// bound).
	StatsCacheSize int
	// Shards selects the sharded executor with that many index shards
	// (clamped to the corpus's top-level entity count). 0 or 1 keeps
	// the monolithic single-index executor. Results are identical
	// either way; sharding trades one big index for K that build in
	// parallel and answer fan-out queries.
	Shards int
}

func (c Config) normalized() Config {
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 256
	}
	if c.DFSCacheSize == 0 {
		c.DFSCacheSize = 128
	}
	if c.StatsCacheSize == 0 {
		c.StatsCacheSize = 4096
	}
	return c
}

// Metrics is a point-in-time snapshot of the engine's cache and
// planner counters. The JSON form is served by xsactd's
// /api/v1/metrics endpoint.
type Metrics struct {
	// Query → results LRU (hits include cached no-match outcomes).
	QueryHits      int64 `json:"query_hits"`
	QueryMisses    int64 `json:"query_misses"`
	QueryEvictions int64 `json:"query_evictions"`
	// Feature-stats LRU (misses = extractions).
	StatsHits      int64 `json:"stats_hits"`
	StatsMisses    int64 `json:"stats_misses"`
	StatsEvictions int64 `json:"stats_evictions"`
	// DFS-set LRU (misses = generations).
	DFSHits      int64 `json:"dfs_hits"`
	DFSMisses    int64 `json:"dfs_misses"`
	DFSEvictions int64 `json:"dfs_evictions"`
	// SLCA cost-planner decisions for compiled (cache-miss) queries,
	// summed across shards for a sharded engine (each shard plans its
	// own leg of a fan-out).
	PlannerIndexedLookup int64 `json:"planner_indexed_lookup"`
	PlannerScanEager     int64 `json:"planner_scan_eager"`
	// Shards is the executor's shard count (1 = monolithic index);
	// ShardRebuilds counts shards rebuilt from the tree because their
	// snapshot section was missing or corrupt.
	Shards        int   `json:"shards"`
	ShardRebuilds int64 `json:"shard_rebuilds"`
}

// executor is the search substrate the serving layer plumbs onto: the
// monolithic xseek.Engine and the fan-out shard.Engine both satisfy
// it, and are required to produce identical output for the same
// corpus — the engine's caches and the layers above never know which
// one is running.
type executor interface {
	Root() *xmltree.Node
	Schema() *xseek.Schema
	Search(query string) ([]*xseek.Result, error)
	CleanQuery(query string) []string
	RankResults(results []*xseek.Result, query string) []*xseek.RankedResult
	RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult
	PlannerDecisions() (indexedLookup, scanEager int64)
	TotalNodes() int
	DocFreq(term string) int
}

// Engine is a concurrency-safe serving engine over one corpus.
type Engine struct {
	exec executor
	x    *xseek.Engine // non-nil for the monolithic executor
	sh   *shard.Engine // non-nil for the sharded executor

	statsMu sync.Mutex
	stats   *lru // result-root Dewey ID + label → *feature.Stats
	queryMu sync.Mutex
	queries *lru // normalized query → queryOutcome
	dfsMu   sync.Mutex
	dfs     *lru // selection key → []*core.DFS

	queryHits, queryMisses atomic.Int64
	statsHits, statsMisses atomic.Int64
	dfsHits, dfsMisses     atomic.Int64

	queryEvictions, statsEvictions, dfsEvictions atomic.Int64
}

// New builds an engine over root with default cache bounds, using the
// parallel index + schema construction path.
func New(root *xmltree.Node) *Engine {
	return NewWithConfig(root, Config{})
}

// NewWithConfig is New with explicit cache bounds and executor layout:
// Config.Shards > 1 builds the fan-out sharded executor, anything else
// the monolithic one.
func NewWithConfig(root *xmltree.Node, cfg Config) *Engine {
	if cfg.Shards > 1 {
		return FromSharded(shard.Build(root, cfg.Shards), cfg)
	}
	return FromXseek(xseek.NewParallel(root), cfg)
}

// FromXseek wraps an already-built monolithic search engine (e.g. one
// whose index was loaded from disk) in the serving layer.
func FromXseek(x *xseek.Engine, cfg Config) *Engine {
	e := newServing(cfg)
	e.exec, e.x = x, x
	return e
}

// FromSharded wraps an already-built sharded executor (fresh-built or
// snapshot-loaded) in the serving layer.
func FromSharded(s *shard.Engine, cfg Config) *Engine {
	e := newServing(cfg)
	e.exec, e.sh = s, s
	return e
}

// newServing allocates the cache layer shared by both executors.
func newServing(cfg Config) *Engine {
	cfg = cfg.normalized()
	return &Engine{
		stats:   newLRU(cfg.StatsCacheSize),
		queries: newLRU(cfg.QueryCacheSize),
		dfs:     newLRU(cfg.DFSCacheSize),
	}
}

// Root returns the corpus the engine serves.
func (e *Engine) Root() *xmltree.Node { return e.exec.Root() }

// Schema returns the inferred schema summary.
func (e *Engine) Schema() *xseek.Schema { return e.exec.Schema() }

// Index returns the underlying inverted index, or nil for a sharded
// engine (whose postings live in per-shard indexes; see IndexStats and
// Sharded for the aggregate views).
func (e *Engine) Index() *index.Index {
	if e.x == nil {
		return nil
	}
	return e.x.Index()
}

// Xseek returns the wrapped monolithic search engine, or nil for a
// sharded engine. Callers that only need corpus statistics should use
// TotalNodes/DocFreq, which work for both executors.
func (e *Engine) Xseek() *xseek.Engine { return e.x }

// Sharded returns the sharded executor, or nil for a monolithic
// engine.
func (e *Engine) Sharded() *shard.Engine { return e.sh }

// ShardCount returns the executor's number of index shards (1 for the
// monolithic layout).
func (e *Engine) ShardCount() int {
	if e.sh != nil {
		return e.sh.ShardCount()
	}
	return 1
}

// IndexStats returns the corpus's index statistics, aggregated across
// shards for a sharded engine (the numbers equal the monolithic
// index's either way).
func (e *Engine) IndexStats() index.Stats {
	if e.sh != nil {
		return e.sh.IndexStats()
	}
	return e.x.Index().Stats()
}

// TotalNodes returns the corpus node count.
func (e *Engine) TotalNodes() int { return e.exec.TotalNodes() }

// DocFreq returns the number of corpus nodes containing term. With
// TotalNodes it implements xseek.CorpusStats, so serving engines feed
// database selection directly.
func (e *Engine) DocFreq(term string) int { return e.exec.DocFreq(term) }

// SelectEngine routes a query to the best-covering corpus among named
// serving engines (sharded or not), or ("", nil) when no corpus
// contains any query keyword. It is xseek's database selection lifted
// to the serving layer.
func SelectEngine(engines map[string]*Engine, query string) (string, *Engine) {
	name := xseek.SelectCorpus(engines, query)
	if name == "" {
		return "", nil
	}
	return name, engines[name]
}

// Metrics returns a snapshot of the cache and planner counters.
func (e *Engine) Metrics() Metrics {
	indexed, scan := e.exec.PlannerDecisions()
	m := Metrics{
		QueryHits: e.queryHits.Load(), QueryMisses: e.queryMisses.Load(),
		QueryEvictions: e.queryEvictions.Load(),
		StatsHits:      e.statsHits.Load(), StatsMisses: e.statsMisses.Load(),
		StatsEvictions: e.statsEvictions.Load(),
		DFSHits:        e.dfsHits.Load(), DFSMisses: e.dfsMisses.Load(),
		DFSEvictions:         e.dfsEvictions.Load(),
		PlannerIndexedLookup: indexed, PlannerScanEager: scan,
		Shards: 1,
	}
	if e.sh != nil {
		m.Shards = e.sh.ShardCount()
		m.ShardRebuilds = e.sh.Rebuilds()
	}
	return m
}

// queryKey normalizes a query to its sorted token set so "Tomtom  GPS"
// and "gps tomtom" share one cache slot: SLCA treats a query as a set
// of keywords, so results are independent of keyword order.
func queryKey(query string) string {
	terms := index.TokenizeQuery(query)
	sort.Strings(terms)
	return strings.Join(terms, " ")
}

// queryOutcome is one cached search outcome: either a result slice or
// a deterministic no-match error. Caching the error too means repeated
// miss queries are answered without touching the posting lists.
type queryOutcome struct {
	results []*xseek.Result
	err     error
}

// Search runs a keyword query through the query LRU: a hit returns the
// cached outcome (the result slice is shared and immutable — callers
// must not modify it), a miss delegates to xseek. Successful searches
// and no-match outcomes (index.NoMatchError, a pure function of corpus
// and keywords) are cached; other errors are not.
func (e *Engine) Search(query string) ([]*xseek.Result, error) {
	key := queryKey(query)
	e.queryMu.Lock()
	v, ok := e.queries.get(key)
	e.queryMu.Unlock()
	if ok {
		e.queryHits.Add(1)
		out := v.(queryOutcome)
		return out.results, out.err
	}
	e.queryMisses.Add(1)
	rs, err := e.exec.Search(query)
	var noMatch *index.NoMatchError
	if err != nil && !errors.As(err, &noMatch) {
		return rs, err
	}
	e.queryMu.Lock()
	e.queryEvictions.Add(int64(e.queries.put(key, queryOutcome{results: rs, err: err})))
	e.queryMu.Unlock()
	return rs, err
}

// SearchCleaned spell-corrects the query against the corpus vocabulary
// and then searches through the cache, returning the corrected
// keywords alongside the results.
func (e *Engine) SearchCleaned(query string) ([]*xseek.Result, []string, error) {
	cleaned := e.exec.CleanQuery(query)
	rs, err := e.Search(strings.Join(cleaned, " "))
	return rs, cleaned, err
}

// SearchRanked searches through the cache and orders the cached
// results by TF-IDF relevance. Ranking re-scores on every call (it is
// cheap relative to SLCA); only the underlying result set is cached.
func (e *Engine) SearchRanked(query string) ([]*xseek.RankedResult, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	return e.exec.RankResults(results, query), nil
}

// Page is one window of a search's full result list. The engine caches
// the full outcome once (Search) and serves any number of windows over
// it, so pagination costs a slice header, not a re-search.
type Page struct {
	// Results is the window's result slice (shared, read-only).
	Results []*xseek.Result
	// Total is the full result count, for "x–y of N" displays.
	Total int
	// Offset is the window's clamped start position within the full
	// list; Results[i] is overall result Offset+i.
	Offset int
}

// RankedPage is Page for relevance-ordered results.
type RankedPage struct {
	Results []*xseek.RankedResult
	Total   int
	Offset  int
}

// SearchPage searches through the cache and returns the options'
// window of the document-ordered result list.
func (e *Engine) SearchPage(query string, opts xseek.SearchOptions) (*Page, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	lo, hi := opts.Window(len(results))
	// Full slice expression: the backing array is the cached result
	// list, so cap the window to keep a caller's append from writing
	// into the query cache.
	return &Page{Results: results[lo:hi:hi], Total: len(results), Offset: lo}, nil
}

// SearchCleanedPage is SearchPage over the spell-corrected query,
// returning the corrected keywords alongside the page.
func (e *Engine) SearchCleanedPage(query string, opts xseek.SearchOptions) (*Page, []string, error) {
	cleaned := e.exec.CleanQuery(query)
	page, err := e.SearchPage(strings.Join(cleaned, " "), opts)
	return page, cleaned, err
}

// SearchRankedPage searches through the cache and returns the options'
// window of the relevance ordering, selected with a bounded heap
// instead of a full sort when the window ends before the result list
// does.
func (e *Engine) SearchRankedPage(query string, opts xseek.SearchOptions) (*RankedPage, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	page := e.exec.RankPage(results, query, opts)
	lo, _ := opts.Window(len(results))
	return &RankedPage{Results: page, Total: len(results), Offset: lo}, nil
}

// Stats returns the feature statistics of the result subtree rooted at
// node, computing them on first use and serving every later request
// for the same subtree from a bounded LRU. Stats are immutable after
// construction, so the cached pointer is shared freely.
func (e *Engine) Stats(node *xmltree.Node, label string) *feature.Stats {
	key := node.ID.String() + "\x00" + label
	e.statsMu.Lock()
	v, ok := e.stats.get(key)
	e.statsMu.Unlock()
	if ok {
		e.statsHits.Add(1)
		return v.(*feature.Stats)
	}
	e.statsMisses.Add(1)
	s := feature.Extract(node, e.exec.Schema(), label)
	e.statsMu.Lock()
	if prior, ok := e.stats.get(key); ok {
		s = prior.(*feature.Stats) // another goroutine raced us; keep one canonical copy
	} else {
		e.statsEvictions.Add(int64(e.stats.put(key, s)))
	}
	e.statsMu.Unlock()
	return s
}

// StatsForResults extracts (or recalls) the feature statistics of each
// result, fanning cold extractions out over a worker pool.
func (e *Engine) StatsForResults(results []*xseek.Result) []*feature.Stats {
	out := make([]*feature.Stats, len(results))
	core.ForEachParallel(len(results), 0, func(i int) {
		out[i] = e.Stats(results[i].Node, results[i].Label)
	})
	return out
}

// selectionKey identifies a (results, algorithm, options) combination
// for the DFS cache. Callers pass normalized options so defaulted and
// explicit spellings of the same configuration share one entry.
func selectionKey(results []*xseek.Result, alg core.Algorithm, opts core.Options) string {
	var b strings.Builder
	b.WriteString(string(alg))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.SizeBound))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.Threshold, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.MaxRounds))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(opts.Pad))
	for _, r := range results {
		b.WriteByte('|')
		b.WriteString(r.Node.ID.String())
	}
	return b.String()
}

// Generate produces the Differentiation Feature Sets for a set of
// results: feature stats come from the cache (cold ones extracted in
// parallel), DFS generation runs its per-result phases on a worker
// pool, and the finished DFS set is memoized in a bounded LRU so a
// repeated comparison of the same results is served without
// re-optimization. The returned slice and its DFSs are shared and must
// be treated as read-only. Unknown algorithms return nil, matching
// core.Generate.
func (e *Engine) Generate(alg core.Algorithm, results []*xseek.Result, opts core.Options) []*core.DFS {
	// Key on the canonical options (the generators normalize anyway) so
	// e.g. SizeBound 0 and SizeBound 10 share one cache entry.
	opts = opts.Normalized()
	key := selectionKey(results, alg, opts)
	e.dfsMu.Lock()
	v, ok := e.dfs.get(key)
	e.dfsMu.Unlock()
	if ok {
		e.dfsHits.Add(1)
		return v.([]*core.DFS)
	}
	e.dfsMisses.Add(1)
	stats := e.StatsForResults(results)
	dfss := core.GenerateParallel(alg, stats, opts)
	if dfss == nil {
		return nil
	}
	e.dfsMu.Lock()
	e.dfsEvictions.Add(int64(e.dfs.put(key, dfss)))
	e.dfsMu.Unlock()
	return dfss
}
