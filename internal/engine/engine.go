package engine

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Config bounds the engine's caches and selects the execution layout.
// Zero values select defaults; a negative cache capacity disables that
// cache.
type Config struct {
	// QueryCacheSize bounds the query → results LRU. Default 256.
	QueryCacheSize int
	// DFSCacheSize bounds the (results, algorithm, options) → DFS-set
	// LRU. Default 128.
	DFSCacheSize int
	// StatsCacheSize bounds the result-root → feature-stats LRU.
	// Default 4096 (stats are small relative to the subtrees they
	// summarize, but diverse traffic must not grow the cache without
	// bound).
	StatsCacheSize int
	// StreamCursorCacheSize bounds the resumable stream-cursor LRU
	// behind SearchStreamPage (each entry holds a live lazy pipeline
	// plus its consumed prefix). Default 32.
	StreamCursorCacheSize int
	// Shards selects the sharded executor with that many index shards
	// (clamped to the corpus's top-level entity count). 0 or 1 keeps
	// the monolithic single-index executor. Results are identical
	// either way; sharding trades one big index for K that build in
	// parallel and answer fan-out queries.
	Shards int
	// AutoCompactThreshold triggers a background compaction of the live
	// write path once that many uncompacted writes (adds + removes) are
	// pending. 0 disables auto-compaction (Compact must be called
	// explicitly). Compaction runs under an epoch swap and never blocks
	// in-flight queries.
	AutoCompactThreshold int
	// MaterializePostings makes a compact (v4) snapshot decode every
	// posting list into the heap at load, the pre-v4 resident behavior:
	// maximum steady-state query speed at the cost of the cold-start
	// and memory wins. Off (the default) decodes blocks lazily as
	// queries touch them.
	MaterializePostings bool
}

func (c Config) normalized() Config {
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 256
	}
	if c.DFSCacheSize == 0 {
		c.DFSCacheSize = 128
	}
	if c.StatsCacheSize == 0 {
		c.StatsCacheSize = 4096
	}
	if c.StreamCursorCacheSize == 0 {
		c.StreamCursorCacheSize = 32
	}
	return c
}

// Metrics is a point-in-time snapshot of the engine's cache, planner,
// and live-update counters. The JSON form is served by xsactd's
// /api/v1/metrics endpoint.
type Metrics struct {
	// Query → results LRU (hits include cached no-match outcomes).
	QueryHits      int64 `json:"query_hits"`
	QueryMisses    int64 `json:"query_misses"`
	QueryEvictions int64 `json:"query_evictions"`
	// Feature-stats LRU (misses = extractions).
	StatsHits      int64 `json:"stats_hits"`
	StatsMisses    int64 `json:"stats_misses"`
	StatsEvictions int64 `json:"stats_evictions"`
	// DFS-set LRU (misses = generations).
	DFSHits      int64 `json:"dfs_hits"`
	DFSMisses    int64 `json:"dfs_misses"`
	DFSEvictions int64 `json:"dfs_evictions"`
	// Cache occupancy gauges, read under the same mutexes that guard
	// the caches so a metrics probe never reports a torn size.
	QueryCacheLen int `json:"query_cache_len"`
	StatsCacheLen int `json:"stats_cache_len"`
	DFSCacheLen   int `json:"dfs_cache_len"`
	// SLCA cost-planner decisions for compiled (cache-miss) queries,
	// summed across shards for a sharded engine (each shard plans its
	// own leg of a fan-out).
	PlannerIndexedLookup int64 `json:"planner_indexed_lookup"`
	PlannerScanEager     int64 `json:"planner_scan_eager"`
	// Streamed-execution counters: PlannerStreamed is the executor's
	// count of ranked pages that ran the lazy early-terminating
	// pipeline; RankedStreamed/RankedEager split SearchRankedPage's
	// serving-level routing decisions; the Stream* trio tracks the
	// resumable doc-order stream-cursor cache behind SearchStreamPage.
	PlannerStreamed int64 `json:"planner_streamed"`
	RankedStreamed  int64 `json:"ranked_streamed"`
	RankedEager     int64 `json:"ranked_eager"`
	StreamHits      int64 `json:"stream_hits"`
	StreamMisses    int64 `json:"stream_misses"`
	StreamCursorLen int   `json:"stream_cursor_len"`
	// Score-bounded (block-max WAND) execution: RankedWAND counts ranked
	// pages that ran with bound metadata active (a subset of
	// RankedStreamed), WANDPruned entities whose exact scoring the bound
	// skipped, and BlocksSkipped posting blocks never touched past the
	// cutoffs.
	RankedWAND    int64 `json:"ranked_wand"`
	WANDPruned    int64 `json:"wand_pruned"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	// Shards is the executor's shard count (1 = monolithic index);
	// ShardRebuilds counts shards rebuilt from the tree because their
	// snapshot section was missing or corrupt.
	Shards        int   `json:"shards"`
	ShardRebuilds int64 `json:"shard_rebuilds"`
	// Index residency: IndexBytes is the compact snapshot payload
	// backing the index (0 when fully heap-built), ResidentBlocks the
	// 64-posting blocks decoded into the heap. A freshly mmap-loaded
	// engine reports large IndexBytes and near-zero ResidentBlocks;
	// the gap closing is queries faulting lists in.
	IndexBytes     int64 `json:"index_bytes"`
	ResidentBlocks int64 `json:"resident_blocks"`
	// Live-update counters: lifetime writes and compactions, the state
	// epoch (bumped by every write and compaction), and the pending
	// backlog awaiting compaction. All zero until the first write makes
	// the engine live.
	Updates           int64  `json:"updates"`
	Compactions       int64  `json:"compactions"`
	Epoch             uint64 `json:"epoch"`
	PendingDelta      int    `json:"pending_delta"`
	PendingTombstones int    `json:"pending_tombstones"`
	// Distributed-serving counters, all zero for in-process engines:
	// legs the coordinator fans out to, replicas per shard group,
	// transport retries, hedged reads launched, degraded (partial)
	// pages served, leg calls failed after all retries, reads failed
	// over to another replica, and ranked queries shed by admission
	// control.
	DistLegs      int   `json:"dist_legs,omitempty"`
	DistReplicas  int   `json:"dist_replicas,omitempty"`
	DistRetries   int64 `json:"dist_retries,omitempty"`
	DistHedges    int64 `json:"dist_hedges,omitempty"`
	DistDegraded  int64 `json:"dist_degraded,omitempty"`
	DistLegErrs   int64 `json:"dist_leg_errs,omitempty"`
	DistFailovers int64 `json:"dist_failovers,omitempty"`
	DistShed      int64 `json:"dist_shed,omitempty"`
}

// executor is the search substrate the serving layer plumbs onto: the
// monolithic xseek.Engine, the fan-out shard.Engine, and the live
// update.Engine all satisfy it, and are required to produce identical
// output for the same logical corpus — the engine's caches and the
// layers above never know which one is running.
type executor interface {
	Root() *xmltree.Node
	Schema() *xseek.Schema
	Search(query string) ([]*xseek.Result, error)
	CleanQuery(query string) []string
	RankResults(results []*xseek.Result, query string) []*xseek.RankedResult
	RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult
	PlannerDecisions() (indexedLookup, scanEager int64)
	TotalNodes() int
	DocFreq(term string) int
	// Streamed read paths: a lazy doc-order cursor, the early-
	// terminating ranked page (bit-identical to Search + RankPage), the
	// result-count estimate the stream planner keys on, and the
	// executor's streamed-decision counter.
	SearchStream(query string) (xseek.Cursor, error)
	SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error)
	// SearchRankedPageWAND is the score-bounded ranked page: exact mode
	// stays bit-identical to SearchRankedPageStream while skipping
	// provably non-competitive scoring; approximate mode may additionally
	// stop draining and report xseek.StreamTotalUnknown. Executors
	// without bound metadata (legacy snapshots) fall back to the plain
	// streamed pipeline internally, reported via WANDStats.Bounded.
	SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error)
	EstimateResults(query string) int
	StreamedDecisions() int64
}

// executorBox is the engine's current executor with its concrete
// identity alongside. It is swapped atomically exactly once — when the
// first write installs the live update layer — so every read path
// loads one box and sees a consistent (executor, epoch) pair.
type executorBox struct {
	exec executor
	x    *xseek.Engine  // non-nil for the monolithic executor
	sh   *shard.Engine  // non-nil for the sharded executor
	live *update.Engine // non-nil once updates are enabled
	dist DistExecutor   // non-nil for a distributed coordinator
}

// epoch returns the live state version (0 while the corpus is
// immutable). Cache entries are tagged with it, so entries minted
// before a write or compaction self-invalidate.
func (b *executorBox) epoch() uint64 {
	if b.dist != nil {
		return b.dist.Epoch()
	}
	if b.live != nil {
		return b.live.Epoch()
	}
	return 0
}

// xseek returns the current monolithic engine: the wrapped one, or the
// live layer's current base.
func (b *executorBox) xseek() *xseek.Engine {
	if b.live != nil {
		return b.live.BaseXseek()
	}
	return b.x
}

// sharded returns the current sharded engine, if any.
func (b *executorBox) sharded() *shard.Engine {
	if b.live != nil {
		return b.live.BaseSharded()
	}
	return b.sh
}

// Engine is a concurrency-safe serving engine over one corpus.
type Engine struct {
	cfg Config

	liveMu sync.Mutex // serializes the one-time live-executor install
	cur    atomic.Pointer[executorBox]

	compacting atomic.Bool // auto-compaction single-flight guard

	statsMu  sync.Mutex
	stats    *lru // result-root Dewey ID + label → cacheEntry{*feature.Stats}
	queryMu  sync.Mutex
	queries  *lru // normalized query → queryOutcome
	dfsMu    sync.Mutex
	dfs      *lru // selection key → cacheEntry{[]*core.DFS}
	streamMu sync.Mutex
	streams  *lru // normalized query → *streamCursor

	queryHits, queryMisses   atomic.Int64
	statsHits, statsMisses   atomic.Int64
	dfsHits, dfsMisses       atomic.Int64
	streamHits, streamMisses atomic.Int64

	rankedStreamed, rankedEager atomic.Int64

	rankedWAND, wandPruned, blocksSkipped atomic.Int64

	queryEvictions, statsEvictions, dfsEvictions atomic.Int64
}

// New builds an engine over root with default cache bounds, using the
// parallel index + schema construction path.
func New(root *xmltree.Node) *Engine {
	return NewWithConfig(root, Config{})
}

// NewWithConfig is New with explicit cache bounds and executor layout:
// Config.Shards > 1 builds the fan-out sharded executor, anything else
// the monolithic one.
func NewWithConfig(root *xmltree.Node, cfg Config) *Engine {
	if cfg.Shards > 1 {
		return FromSharded(shard.Build(root, cfg.Shards), cfg)
	}
	return FromXseek(xseek.NewParallel(root), cfg)
}

// FromXseek wraps an already-built monolithic search engine (e.g. one
// whose index was loaded from disk) in the serving layer.
func FromXseek(x *xseek.Engine, cfg Config) *Engine {
	e := newServing(cfg)
	e.cur.Store(&executorBox{exec: x, x: x})
	return e
}

// FromSharded wraps an already-built sharded executor (fresh-built or
// snapshot-loaded) in the serving layer.
func FromSharded(s *shard.Engine, cfg Config) *Engine {
	e := newServing(cfg)
	e.cur.Store(&executorBox{exec: s, sh: s})
	return e
}

// newServing allocates the cache layer shared by all executors.
func newServing(cfg Config) *Engine {
	cfg = cfg.normalized()
	return &Engine{
		cfg:     cfg,
		stats:   newLRU(cfg.StatsCacheSize),
		queries: newLRU(cfg.QueryCacheSize),
		dfs:     newLRU(cfg.DFSCacheSize),
		streams: newLRU(cfg.StreamCursorCacheSize),
	}
}

// box returns the current executor box.
func (e *Engine) box() *executorBox { return e.cur.Load() }

// Root returns the corpus the engine serves (the live tree once
// updates have been applied).
func (e *Engine) Root() *xmltree.Node { return e.box().exec.Root() }

// Schema returns the inferred schema summary.
func (e *Engine) Schema() *xseek.Schema { return e.box().exec.Schema() }

// Index returns the underlying inverted index, or nil for a sharded
// engine (whose postings live in per-shard indexes; see IndexStats and
// Sharded for the aggregate views). For a live engine it is the
// current base index — pending delta postings live beside it until
// compaction folds them in.
func (e *Engine) Index() *index.Index {
	x := e.box().xseek()
	if x == nil {
		return nil
	}
	return x.Index()
}

// Xseek returns the wrapped monolithic search engine, or nil for a
// sharded engine. Callers that only need corpus statistics should use
// TotalNodes/DocFreq, which work for every executor.
func (e *Engine) Xseek() *xseek.Engine { return e.box().xseek() }

// Sharded returns the sharded executor, or nil for a monolithic
// engine.
func (e *Engine) Sharded() *shard.Engine { return e.box().sharded() }

// Live returns the live update layer, or nil while the corpus has
// never been written to.
func (e *Engine) Live() *update.Engine { return e.box().live }

// Epoch returns the live state version; 0 while the corpus is
// immutable.
func (e *Engine) Epoch() uint64 { return e.box().epoch() }

// ShardCount returns the executor's number of index shards (1 for the
// monolithic layout).
func (e *Engine) ShardCount() int {
	if sh := e.box().sharded(); sh != nil {
		return sh.ShardCount()
	}
	return 1
}

// IndexStats returns the corpus's index statistics, aggregated across
// shards — and across base ⊕ delta − tombstones for a live engine (the
// numbers equal a cold index over the current logical corpus).
func (e *Engine) IndexStats() index.Stats {
	box := e.box()
	switch {
	case box.dist != nil:
		return box.dist.IndexStats()
	case box.live != nil:
		return box.live.IndexStats()
	case box.sh != nil:
		return box.sh.IndexStats()
	default:
		return box.x.Index().Stats()
	}
}

// TotalNodes returns the corpus node count.
func (e *Engine) TotalNodes() int { return e.box().exec.TotalNodes() }

// DocFreq returns the number of corpus nodes containing term. With
// TotalNodes it implements xseek.CorpusStats, so serving engines feed
// database selection directly.
func (e *Engine) DocFreq(term string) int { return e.box().exec.DocFreq(term) }

// SelectEngine routes a query to the best-covering corpus among named
// serving engines (sharded or not), or ("", nil) when no corpus
// contains any query keyword. It is xseek's database selection lifted
// to the serving layer.
func SelectEngine(engines map[string]*Engine, query string) (string, *Engine) {
	name := xseek.SelectCorpus(engines, query)
	if name == "" {
		return "", nil
	}
	return name, engines[name]
}

// ensureLive installs the update layer over the current executor on
// first use. The box swap is the only executor transition the engine
// ever performs; it happens under liveMu and is published atomically,
// so concurrent readers either keep the immutable executor (correct:
// no write has committed yet) or see the live one.
func (e *Engine) ensureLive() *update.Engine {
	if live := e.box().live; live != nil {
		return live
	}
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	box := e.box()
	if box.live != nil {
		return box.live
	}
	var live *update.Engine
	if box.sh != nil {
		live = update.WrapSharded(box.sh)
	} else {
		live = update.Wrap(box.x)
	}
	e.cur.Store(&executorBox{exec: live, live: live})
	return live
}

// AddEntity appends an entity subtree as a new top-level child of the
// live corpus and makes it immediately searchable. The engine takes
// ownership of n. Returns the entity's Dewey ID — the handle
// RemoveEntity accepts.
func (e *Engine) AddEntity(n *xmltree.Node) (dewey.ID, error) {
	if d := e.box().dist; d != nil {
		id, err := d.AddEntity(n)
		if err != nil {
			return nil, err
		}
		e.purgeCaches()
		e.maybeAutoCompactDist(d)
		return id, nil
	}
	live := e.ensureLive()
	id, err := live.AddEntity(n)
	if err != nil {
		return nil, err
	}
	e.purgeCaches()
	e.maybeAutoCompact(live)
	return id, nil
}

// RemoveEntity removes the top-level entity with the given Dewey ID
// from the live corpus.
func (e *Engine) RemoveEntity(id dewey.ID) error {
	if d := e.box().dist; d != nil {
		if err := d.RemoveEntity(id); err != nil {
			return err
		}
		e.purgeCaches()
		e.maybeAutoCompactDist(d)
		return nil
	}
	live := e.ensureLive()
	if err := live.RemoveEntity(id); err != nil {
		return err
	}
	e.purgeCaches()
	e.maybeAutoCompact(live)
	return nil
}

// Compact folds pending writes back into a clean base under an epoch
// swap. In-flight queries are never blocked; the engine's caches are
// flushed afterwards (entries minted mid-compaction self-invalidate
// through their epoch tags).
func (e *Engine) Compact() error {
	if d := e.box().dist; d != nil {
		if err := d.Compact(); err != nil {
			return err
		}
		e.purgeCaches()
		return nil
	}
	live := e.box().live
	if live == nil {
		return nil // nothing was ever written
	}
	if err := live.Compact(); err != nil {
		return err
	}
	e.purgeCaches()
	return nil
}

// maybeAutoCompact schedules a background compaction when the
// pending-write backlog crosses the configured threshold. Single-
// flight: a compaction already in progress absorbs later triggers.
func (e *Engine) maybeAutoCompact(live *update.Engine) {
	if e.cfg.AutoCompactThreshold <= 0 || live.PendingOps() < e.cfg.AutoCompactThreshold {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.compacting.Store(false)
		if err := live.Compact(); err == nil {
			e.purgeCaches()
		}
	}()
}

// purgeCaches drops every cached query outcome, feature-stat, and DFS
// set. Epoch tags already keep stale entries from being served; the
// purge reclaims their memory eagerly after a write.
func (e *Engine) purgeCaches() {
	e.queryMu.Lock()
	e.queries.purge()
	e.queryMu.Unlock()
	e.statsMu.Lock()
	e.stats.purge()
	e.statsMu.Unlock()
	e.dfsMu.Lock()
	e.dfs.purge()
	e.dfsMu.Unlock()
	e.streamMu.Lock()
	e.streams.purge()
	e.streamMu.Unlock()
}

// Metrics returns a snapshot of the cache, planner, and live-update
// counters. The executor identity, epoch, and pending backlog are read
// from one atomically loaded state, and cache gauges under the caches'
// own mutexes, so concurrent writes never produce a torn snapshot.
func (e *Engine) Metrics() Metrics {
	box := e.box()
	indexed, scan := box.exec.PlannerDecisions()
	m := Metrics{
		QueryHits: e.queryHits.Load(), QueryMisses: e.queryMisses.Load(),
		QueryEvictions: e.queryEvictions.Load(),
		StatsHits:      e.statsHits.Load(), StatsMisses: e.statsMisses.Load(),
		StatsEvictions: e.statsEvictions.Load(),
		DFSHits:        e.dfsHits.Load(), DFSMisses: e.dfsMisses.Load(),
		DFSEvictions:         e.dfsEvictions.Load(),
		PlannerIndexedLookup: indexed, PlannerScanEager: scan,
		PlannerStreamed: box.exec.StreamedDecisions(),
		RankedStreamed:  e.rankedStreamed.Load(),
		RankedEager:     e.rankedEager.Load(),
		RankedWAND:      e.rankedWAND.Load(),
		WANDPruned:      e.wandPruned.Load(),
		BlocksSkipped:   e.blocksSkipped.Load(),
		StreamHits:      e.streamHits.Load(),
		StreamMisses:    e.streamMisses.Load(),
		Shards:          1,
	}
	if sh := box.sharded(); sh != nil {
		m.Shards = sh.ShardCount()
		m.ShardRebuilds = sh.Rebuilds()
		ms := sh.MemStats()
		m.IndexBytes, m.ResidentBlocks = ms.DataBytes, ms.ResidentBlocks
	} else if x := box.xseek(); x != nil {
		ms := x.Index().MemStats()
		m.IndexBytes, m.ResidentBlocks = ms.DataBytes, ms.ResidentBlocks
	}
	if box.live != nil {
		m.Updates = box.live.Updates()
		m.Compactions = box.live.Compactions()
		m.Epoch = box.live.Epoch()
		m.PendingDelta, m.PendingTombstones = box.live.Pending()
	}
	if box.dist != nil {
		m.Shards = box.dist.LegCount()
		m.DistLegs = box.dist.LegCount()
		m.DistReplicas = box.dist.Replicas()
		m.Updates = box.dist.Updates()
		m.Compactions = box.dist.Compactions()
		m.Epoch = box.dist.Epoch()
		m.PendingDelta = box.dist.PendingOps()
		m.DistRetries, m.DistHedges, m.DistDegraded, m.DistLegErrs,
			m.DistFailovers, m.DistShed = box.dist.DistCounters()
	}
	e.queryMu.Lock()
	m.QueryCacheLen = e.queries.len()
	e.queryMu.Unlock()
	e.statsMu.Lock()
	m.StatsCacheLen = e.stats.len()
	e.statsMu.Unlock()
	e.dfsMu.Lock()
	m.DFSCacheLen = e.dfs.len()
	e.dfsMu.Unlock()
	e.streamMu.Lock()
	m.StreamCursorLen = e.streams.len()
	e.streamMu.Unlock()
	return m
}

// queryKey normalizes a query to its sorted token set so "Tomtom  GPS"
// and "gps tomtom" share one cache slot: SLCA treats a query as a set
// of keywords, so results are independent of keyword order.
func queryKey(query string) string {
	terms := index.TokenizeQuery(query)
	sort.Strings(terms)
	return strings.Join(terms, " ")
}

// queryOutcome is one cached search outcome: either a result slice or
// a deterministic no-match error, tagged with the live epoch it was
// computed under. Caching the error too means repeated miss queries
// are answered without touching the posting lists.
type queryOutcome struct {
	results []*xseek.Result
	err     error
	epoch   uint64
}

// cacheEntry tags an arbitrary cached value (feature stats, DFS sets)
// with its epoch.
type cacheEntry struct {
	val   any
	epoch uint64
}

// Search runs a keyword query through the query LRU: a hit returns the
// cached outcome (the result slice is shared and immutable — callers
// must not modify it), a miss delegates to the executor. Successful
// searches and no-match outcomes (index.NoMatchError, a pure function
// of corpus and keywords) are cached; other errors are not. Entries
// carry the epoch they were computed under, so a cached outcome from
// before a write or compaction is never served afterwards — even if a
// racing reader re-inserts it after the post-write purge.
func (e *Engine) Search(query string) ([]*xseek.Result, error) {
	box := e.box()
	epoch := box.epoch()
	key := queryKey(query)
	e.queryMu.Lock()
	v, ok := e.queries.get(key)
	e.queryMu.Unlock()
	if ok {
		out := v.(queryOutcome)
		if out.epoch == epoch {
			e.queryHits.Add(1)
			return out.results, out.err
		}
	}
	e.queryMisses.Add(1)
	rs, err := box.exec.Search(query)
	var noMatch *index.NoMatchError
	if err != nil && !errors.As(err, &noMatch) {
		return rs, err
	}
	// Cache only when no write landed mid-search; a stale insert would
	// still be rejected by the epoch check above, this just avoids it.
	if box.epoch() == epoch {
		e.queryMu.Lock()
		e.queryEvictions.Add(int64(e.queries.put(key, queryOutcome{results: rs, err: err, epoch: epoch})))
		e.queryMu.Unlock()
	}
	return rs, err
}

// SearchCleaned spell-corrects the query against the corpus vocabulary
// and then searches through the cache, returning the corrected
// keywords alongside the results.
func (e *Engine) SearchCleaned(query string) ([]*xseek.Result, []string, error) {
	cleaned := e.box().exec.CleanQuery(query)
	rs, err := e.Search(strings.Join(cleaned, " "))
	return rs, cleaned, err
}

// rankedAttempts bounds the retry loop of the ranked read paths: a
// write landing between the search and the scoring pass would mix two
// epochs' views, so the whole read is retried while the epoch is
// moving. Under a sustained write storm the last attempt's page is
// served as a best-effort answer (well-formed, possibly spanning two
// adjacent epochs).
const rankedAttempts = 4

// SearchRanked searches through the cache and orders the cached
// results by TF-IDF relevance. Ranking re-scores on every call (it is
// cheap relative to SLCA); only the underlying result set is cached.
// The search and the scoring pass are retried together until they
// observe one stable epoch.
func (e *Engine) SearchRanked(query string) ([]*xseek.RankedResult, error) {
	var ranked []*xseek.RankedResult
	for i := 0; i < rankedAttempts; i++ {
		box := e.box()
		epoch := box.epoch()
		results, err := e.Search(query)
		if err != nil {
			return nil, err
		}
		ranked = box.exec.RankResults(results, query)
		if box.epoch() == epoch {
			break
		}
	}
	return ranked, nil
}

// Page is one window of a search's full result list. The engine caches
// the full outcome once (Search) and serves any number of windows over
// it, so pagination costs a slice header, not a re-search.
type Page struct {
	// Results is the window's result slice (shared, read-only).
	Results []*xseek.Result
	// Total is the full result count, for "x–y of N" displays.
	Total int
	// Offset is the window's clamped start position within the full
	// list; Results[i] is overall result Offset+i.
	Offset int
}

// RankedPage is Page for relevance-ordered results.
type RankedPage struct {
	Results []*xseek.RankedResult
	Total   int
	Offset  int
}

// SearchPage searches through the cache and returns the options'
// window of the document-ordered result list.
func (e *Engine) SearchPage(query string, opts xseek.SearchOptions) (*Page, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	lo, hi := opts.Window(len(results))
	// Full slice expression: the backing array is the cached result
	// list, so cap the window to keep a caller's append from writing
	// into the query cache.
	return &Page{Results: results[lo:hi:hi], Total: len(results), Offset: lo}, nil
}

// SearchCleanedPage is SearchPage over the spell-corrected query,
// returning the corrected keywords alongside the page.
func (e *Engine) SearchCleanedPage(query string, opts xseek.SearchOptions) (*Page, []string, error) {
	cleaned := e.box().exec.CleanQuery(query)
	page, err := e.SearchPage(strings.Join(cleaned, " "), opts)
	return page, cleaned, err
}

// SearchRankedPage searches through the cache and returns the options'
// window of the relevance ordering. On a query-cache hit the cached
// result list is re-scored eagerly (windowing over it is nearly free);
// on a miss with a small bounded window over a large estimated result
// set it routes to the executor's streamed pipeline, which never
// materializes the full result list. Both routes produce bit-identical
// pages and exact totals. Like SearchRanked, each attempt is retried
// until it observes one stable epoch.
//
// The streamed route deliberately does not populate the query cache —
// it never computes the full result list, and a partial entry would
// poison doc-order paging. A later Search of the same query warms the
// cache as usual, after which ranked pages go eager.
//
// Routed streamed pages run the score-bounded (block-max WAND)
// consumer, which degrades to plain streaming by itself when bound
// metadata is missing — WANDStats.Bounded reports which happened, and
// feeds the ranked_wand / wand_pruned / blocks_skipped metrics.
// Requesting xseek.AccuracyApprox forces the bounded route regardless
// of cache state: the page is still exact, but the total may come back
// xseek.StreamTotalUnknown.
func (e *Engine) SearchRankedPage(query string, opts xseek.SearchOptions) (*RankedPage, error) {
	var out *RankedPage
	for i := 0; i < rankedAttempts; i++ {
		box := e.box()
		epoch := box.epoch()
		if opts.Accuracy == xseek.AccuracyApprox || e.routeStreamed(box, epoch, query, opts) {
			page, total, st, err := box.exec.SearchRankedPageWAND(query, opts)
			if err != nil {
				return nil, err
			}
			e.rankedStreamed.Add(1)
			if st.Bounded {
				e.rankedWAND.Add(1)
				e.wandPruned.Add(st.Pruned)
				e.blocksSkipped.Add(st.BlocksSkipped)
			}
			lo := opts.Offset
			if lo < 0 {
				lo = 0
			}
			if total >= 0 {
				lo, _ = opts.Window(total)
			}
			out = &RankedPage{Results: page, Total: total, Offset: lo}
		} else {
			results, err := e.Search(query)
			if err != nil {
				return nil, err
			}
			e.rankedEager.Add(1)
			page := box.exec.RankPage(results, query, opts)
			lo, _ := opts.Window(len(results))
			out = &RankedPage{Results: page, Total: len(results), Offset: lo}
		}
		if box.epoch() == epoch {
			break
		}
	}
	return out, nil
}

// SearchCleanedRankedPage is SearchRankedPage over the spell-corrected
// query, returning the corrected keywords alongside the page.
func (e *Engine) SearchCleanedRankedPage(query string, opts xseek.SearchOptions) (*RankedPage, []string, error) {
	cleaned := e.box().exec.CleanQuery(query)
	page, err := e.SearchRankedPage(strings.Join(cleaned, " "), opts)
	return page, cleaned, err
}

// Stats returns the feature statistics of the result subtree rooted at
// node, computing them on first use and serving every later request
// for the same subtree from a bounded LRU. Stats are immutable after
// construction, so the cached pointer is shared freely; entries are
// epoch-tagged because the schema they were extracted under changes
// with live writes.
func (e *Engine) Stats(node *xmltree.Node, label string) *feature.Stats {
	box := e.box()
	epoch := box.epoch()
	key := node.ID.String() + "\x00" + label
	e.statsMu.Lock()
	v, ok := e.stats.get(key)
	e.statsMu.Unlock()
	if ok {
		if ent := v.(cacheEntry); ent.epoch == epoch {
			e.statsHits.Add(1)
			return ent.val.(*feature.Stats)
		}
	}
	e.statsMisses.Add(1)
	s := feature.Extract(node, box.exec.Schema(), label)
	e.statsMu.Lock()
	if prior, ok := e.stats.get(key); ok && prior.(cacheEntry).epoch == epoch {
		s = prior.(cacheEntry).val.(*feature.Stats) // another goroutine raced us; keep one canonical copy
	} else if box.epoch() == epoch {
		e.statsEvictions.Add(int64(e.stats.put(key, cacheEntry{val: s, epoch: epoch})))
	}
	e.statsMu.Unlock()
	return s
}

// StatsForResults extracts (or recalls) the feature statistics of each
// result, fanning cold extractions out over a worker pool.
func (e *Engine) StatsForResults(results []*xseek.Result) []*feature.Stats {
	out := make([]*feature.Stats, len(results))
	core.ForEachParallel(len(results), 0, func(i int) {
		out[i] = e.Stats(results[i].Node, results[i].Label)
	})
	return out
}

// selectionKey identifies a (results, algorithm, options) combination
// for the DFS cache. Callers pass normalized options so defaulted and
// explicit spellings of the same configuration share one entry.
func selectionKey(results []*xseek.Result, alg core.Algorithm, opts core.Options) string {
	var b strings.Builder
	b.WriteString(string(alg))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.SizeBound))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.Threshold, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.MaxRounds))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(opts.Pad))
	for _, r := range results {
		b.WriteByte('|')
		b.WriteString(r.Node.ID.String())
	}
	return b.String()
}

// Generate produces the Differentiation Feature Sets for a set of
// results: feature stats come from the cache (cold ones extracted in
// parallel), DFS generation runs its per-result phases on a worker
// pool, and the finished DFS set is memoized in a bounded LRU so a
// repeated comparison of the same results is served without
// re-optimization. The returned slice and its DFSs are shared and must
// be treated as read-only. Unknown algorithms return nil, matching
// core.Generate.
func (e *Engine) Generate(alg core.Algorithm, results []*xseek.Result, opts core.Options) []*core.DFS {
	// Key on the canonical options (the generators normalize anyway) so
	// e.g. SizeBound 0 and SizeBound 10 share one cache entry.
	opts = opts.Normalized()
	epoch := e.box().epoch()
	key := selectionKey(results, alg, opts)
	e.dfsMu.Lock()
	v, ok := e.dfs.get(key)
	e.dfsMu.Unlock()
	if ok {
		if ent := v.(cacheEntry); ent.epoch == epoch {
			e.dfsHits.Add(1)
			return ent.val.([]*core.DFS)
		}
	}
	e.dfsMisses.Add(1)
	stats := e.StatsForResults(results)
	dfss := core.GenerateParallel(alg, stats, opts)
	if dfss == nil {
		return nil
	}
	if e.box().epoch() == epoch {
		e.dfsMu.Lock()
		e.dfsEvictions.Add(int64(e.dfs.put(key, cacheEntry{val: dfss, epoch: epoch})))
		e.dfsMu.Unlock()
	}
	return dfss
}
