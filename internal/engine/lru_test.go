package engine

import "testing"

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", 3) // evicts b: a was touched more recently
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("a", 10) // refresh, not insert
	c.put("c", 3)  // evicts b
	if v, ok := c.get("a"); !ok || v.(int) != 10 {
		t.Fatalf("a = %v, %v; want refreshed value", v, ok)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUZeroCapacityStoresNothing(t *testing.T) {
	c := newLRU(0)
	c.put("a", 1)
	if _, ok := c.get("a"); ok || c.len() != 0 {
		t.Fatal("zero-capacity LRU must stay empty")
	}
}
