package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func liveTestCorpus() *xmltree.Node {
	return xmltree.MustParseString(`<shop>
	  <product><name>alpha</name><kind>gps</kind></product>
	  <product><name>beta</name><kind>gps</kind></product>
	  <product><name>gamma</name><kind>radio</kind></product>
	</shop>`)
}

func mustAdd(t *testing.T, e *Engine, xml string) {
	t.Helper()
	n, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddEntity(n); err != nil {
		t.Fatal(err)
	}
}

// TestLiveCacheInvalidationOnEpochBump is the cache-coherence proof:
// a cached query outcome must never be served across a write or a
// compaction, at every cache (query, stats, DFS).
func TestLiveCacheInvalidationOnEpochBump(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := NewWithConfig(liveTestCorpus(), Config{Shards: shards})
			rs, err := e.Search("gps")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 2 {
				t.Fatalf("seed corpus: %d gps results, want 2", len(rs))
			}
			// Warm the cache, then write.
			if _, err := e.Search("gps"); err != nil {
				t.Fatal(err)
			}
			hitsBefore := e.Metrics().QueryHits

			mustAdd(t, e, "<product><name>delta</name><kind>gps</kind></product>")
			rs, err = e.Search("gps")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 3 {
				t.Fatalf("after add: %d gps results, want 3 (stale cache served?)", len(rs))
			}
			if e.Metrics().QueryHits != hitsBefore {
				t.Fatalf("post-write search was served from the stale cache")
			}

			// Remove one of the originals; the cached 3-result outcome must
			// die with the epoch.
			if err := e.RemoveEntity([]int{0}); err != nil {
				t.Fatal(err)
			}
			rs, err = e.Search("gps")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 2 {
				t.Fatalf("after remove: %d gps results, want 2", len(rs))
			}
			for _, r := range rs {
				if r.Label == "alpha" {
					t.Fatal("removed entity still in results")
				}
			}

			// Compaction bumps the epoch too.
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			rs, err = e.Search("gps")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 2 {
				t.Fatalf("after compact: %d gps results, want 2", len(rs))
			}
			m := e.Metrics()
			if m.Updates != 2 || m.Compactions != 1 || m.Epoch == 0 {
				t.Fatalf("metrics = %+v, want 2 updates / 1 compaction / nonzero epoch", m)
			}
			if m.PendingDelta != 0 || m.PendingTombstones != 0 {
				t.Fatalf("post-compaction backlog nonzero: %+v", m)
			}
		})
	}
}

// TestLiveSnippetsAndComparisonsFollowWrites exercises the stats and
// DFS caches across epochs: a comparison computed before a write must
// be recomputed, not replayed, afterwards.
func TestLiveStatsFollowWrites(t *testing.T) {
	e := New(liveTestCorpus())
	rs, err := e.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.Stats(rs[0].Node, rs[0].Label)
	if s1 == nil {
		t.Fatal("nil stats")
	}
	if got := e.Stats(rs[0].Node, rs[0].Label); got != s1 {
		t.Fatal("same-epoch stats not served from cache")
	}
	mustAdd(t, e, "<product><name>delta</name><kind>gps</kind></product>")
	// Same node, new epoch: extraction reruns under the live schema.
	misses := e.Metrics().StatsMisses
	e.Stats(rs[0].Node, rs[0].Label)
	if e.Metrics().StatsMisses != misses+1 {
		t.Fatal("stats cache served a stale epoch entry")
	}
}

// TestMetricsConsistentUnderRace is the regression test for the
// metrics torn-read audit: Metrics() must be safe — and internally
// consistent — while searches, writes, and compactions run
// concurrently. Run with -race.
func TestMetricsConsistentUnderRace(t *testing.T) {
	e := NewWithConfig(liveTestCorpus(), Config{Shards: 2})
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup

	// One write up front so the final progress check cannot be starved
	// by scheduling: on a loaded single-core runner the readers can
	// finish all their iterations before the writer goroutine ever
	// runs.
	if _, err := e.AddEntity(xmltree.MustParseString("<product><name>seed</name><kind>gps</kind></product>")); err != nil {
		t.Fatal(err)
	}

	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				n := xmltree.MustParseString(fmt.Sprintf("<product><name>n%d</name><kind>gps</kind></product>", i))
				if _, err := e.AddEntity(n); err != nil {
					t.Error(err)
					return
				}
			case 1:
				_ = e.Compact()
			default:
				_, _ = e.Search("gps")
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				m := e.Metrics()
				if m.QueryCacheLen < 0 || m.Updates < 0 || m.PendingDelta < 0 {
					t.Error("nonsense metrics snapshot")
					return
				}
				_, _ = e.Search("gps")
				_ = e.IndexStats()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()

	m := e.Metrics()
	if m.Shards < 1 {
		t.Fatalf("shards = %d", m.Shards)
	}
	if m.Updates == 0 {
		t.Fatal("writer made no progress")
	}
}
