package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/xseek"
)

// TestShardedEngineEquivalence: the serving engine with Config.Shards
// set must produce identical Search, SearchPage, and SearchRankedPage
// envelopes (results, totals, offsets, scores, tie order) to the
// monolithic serving engine, across K ∈ {1, 2, 8} — through the cache
// on repeat queries too.
func TestShardedEngineEquivalence(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 9, ProductsPerCategory: 6})
	mono := New(root)
	queries := append(dataset.ReviewQueries(), "easy", "gps camera", "nosuchword", "")
	for _, k := range []int{1, 2, 8} {
		sharded := NewWithConfig(root, Config{Shards: k})
		if k > 1 && sharded.Sharded() == nil {
			t.Fatalf("K=%d: expected a sharded executor", k)
		}
		for pass := 0; pass < 2; pass++ { // second pass = query-cache hits
			for _, q := range queries {
				want, wantErr := mono.Search(q)
				got, gotErr := sharded.Search(q)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("K=%d %q: err %v vs %v", k, q, gotErr, wantErr)
				}
				if len(got) != len(want) {
					t.Fatalf("K=%d %q: %d results vs %d", k, q, len(got), len(want))
				}
				for i := range want {
					if got[i].Node != want[i].Node || got[i].Label != want[i].Label {
						t.Fatalf("K=%d %q result %d: %s vs %s", k, q, i, got[i].Label, want[i].Label)
					}
				}
				if wantErr != nil {
					continue
				}

				for _, opts := range []xseek.SearchOptions{
					{}, {Limit: 3}, {Limit: 4, Offset: 2}, {Limit: 100, Offset: 1}, {Offset: 999},
				} {
					wp, err1 := mono.SearchPage(q, opts)
					gp, err2 := sharded.SearchPage(q, opts)
					if err1 != nil || err2 != nil {
						t.Fatalf("K=%d %q page: %v / %v", k, q, err1, err2)
					}
					if gp.Total != wp.Total || gp.Offset != wp.Offset || len(gp.Results) != len(wp.Results) {
						t.Fatalf("K=%d %q page %+v: envelope {%d %d %d} vs {%d %d %d}", k, q, opts,
							gp.Total, gp.Offset, len(gp.Results), wp.Total, wp.Offset, len(wp.Results))
					}
					wr, err1 := mono.SearchRankedPage(q, opts)
					gr, err2 := sharded.SearchRankedPage(q, opts)
					if err1 != nil || err2 != nil {
						t.Fatalf("K=%d %q ranked page: %v / %v", k, q, err1, err2)
					}
					if gr.Total != wr.Total || gr.Offset != wr.Offset || len(gr.Results) != len(wr.Results) {
						t.Fatalf("K=%d %q ranked page %+v: envelope mismatch", k, q, opts)
					}
					for i := range wr.Results {
						if gr.Results[i].Node != wr.Results[i].Node || gr.Results[i].Score != wr.Results[i].Score {
							t.Fatalf("K=%d %q ranked page %+v entry %d: %s@%v vs %s@%v", k, q, opts, i,
								gr.Results[i].Label, gr.Results[i].Score, wr.Results[i].Label, wr.Results[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestShardedMetrics: the metrics snapshot must report the shard
// count, aggregate planner decisions across shards, and keep the
// cache counters working.
func TestShardedMetrics(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 2, ProductsPerCategory: 4})
	e := NewWithConfig(root, Config{Shards: 3})
	if _, err := e.Search("tomtom gps"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search("tomtom gps"); err != nil { // cache hit
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Shards != 3 {
		t.Fatalf("metrics shards = %d, want 3", m.Shards)
	}
	if m.QueryHits != 1 || m.QueryMisses != 1 {
		t.Fatalf("query cache counters = %d hits / %d misses, want 1/1", m.QueryHits, m.QueryMisses)
	}
	if m.PlannerIndexedLookup+m.PlannerScanEager == 0 {
		t.Fatal("planner decisions should aggregate across shards")
	}
	if mono := New(root).Metrics(); mono.Shards != 1 {
		t.Fatalf("monolithic metrics shards = %d, want 1", mono.Shards)
	}
}

// TestShardedIndexStats: aggregated index statistics must equal the
// monolithic index's.
func TestShardedIndexStats(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 4})
	mono := New(root)
	sharded := NewWithConfig(root, Config{Shards: 4})
	a, b := mono.IndexStats(), sharded.IndexStats()
	if a != b {
		t.Fatalf("index stats diverge: monolithic %+v, sharded %+v", a, b)
	}
	if sharded.Index() != nil {
		t.Fatal("sharded engine should expose no monolithic index")
	}
	if mono.IndexStats() != mono.Index().Stats() {
		t.Fatal("monolithic IndexStats should equal Index().Stats()")
	}
}

// TestSelectEngine: database selection over serving engines must pick
// the same corpus regardless of sharding.
func TestSelectEngine(t *testing.T) {
	reviews := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 1})
	movies := dataset.Movies(dataset.MoviesConfig{Seed: 1})
	for _, k := range []int{1, 4} {
		engines := map[string]*Engine{
			"reviews": NewWithConfig(reviews, Config{Shards: k}),
			"movies":  NewWithConfig(movies, Config{Shards: k}),
		}
		name, eng := SelectEngine(engines, "tomtom gps")
		if name != "reviews" || eng == nil {
			t.Fatalf("K=%d: tomtom gps routed to %q, want reviews", k, name)
		}
		if name, _ := SelectEngine(engines, "zzzznope"); name != "" {
			t.Fatalf("K=%d: uncovered query routed to %q, want none", k, name)
		}
	}
}
