package engine

import (
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// DistExecutor is the surface a distributed coordinator serves: the
// full executor contract (so reads flow through the same caches,
// routing, and retry loops as every in-process executor) plus the
// write path, epoch, and transport-health counters. internal/dist's
// Coordinator satisfies it; the engine package deliberately does not
// import dist (persist imports engine, dist imports persist), so the
// dependency points this way.
type DistExecutor interface {
	executor
	Epoch() uint64
	AddEntity(n *xmltree.Node) (dewey.ID, error)
	RemoveEntity(id dewey.ID) error
	Compact() error
	PendingOps() int
	Updates() int64
	Compactions() int64
	IndexStats() index.Stats
	LegCount() int
	Replicas() int
	DistCounters() (retries, hedges, degraded, legErrs, failovers, shed int64)
}

// FromDist wraps a distributed coordinator in the serving layer. All
// read paths (query/stats/DFS caches, streamed routing, ranked epoch
// retries) behave exactly as over an in-process executor — cache
// entries are tagged with the coordinator's epoch, so entries minted
// before a distributed write self-invalidate. Writes route to the
// coordinator's broadcast path instead of the local live layer.
func FromDist(d DistExecutor, cfg Config) *Engine {
	e := newServing(cfg)
	e.cur.Store(&executorBox{exec: d, dist: d})
	return e
}

// Dist returns the distributed coordinator, or nil for an in-process
// engine.
func (e *Engine) Dist() DistExecutor { return e.box().dist }

// maybeAutoCompactDist is maybeAutoCompact for the distributed write
// path: a background cluster-wide compaction once the coordinator's
// journal crosses the threshold, single-flight like the local one.
func (e *Engine) maybeAutoCompactDist(d DistExecutor) {
	if e.cfg.AutoCompactThreshold <= 0 || d.PendingOps() < e.cfg.AutoCompactThreshold {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.compacting.Store(false)
		if err := d.Compact(); err == nil {
			e.purgeCaches()
		}
	}()
}
