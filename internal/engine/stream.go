package engine

import (
	"strings"
	"sync"

	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xseek"
)

// This file is the serving layer's side of the lazy execution paths:
// the cache-aware routing decision for ranked pages and a resumable
// doc-order cursor cache, so sequential pagination over a streamed
// query pulls each result from the pipeline exactly once.

// routeStreamed decides whether a ranked page should run the
// executor's streamed pipeline instead of Search + RankPage. Streaming
// wins only when all of these hold: the window is bounded, the full
// result list is not already sitting in the query cache (windowing a
// cached list is a heap pass over materialized results — cheaper than
// any re-execution), and the stream planner judges the window small
// against the estimated result count.
func (e *Engine) routeStreamed(box *executorBox, epoch uint64, query string, opts xseek.SearchOptions) bool {
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	if opts.Limit <= 0 {
		return false
	}
	need := lo + opts.Limit
	if need <= lo { // overflow
		return false
	}
	key := queryKey(query)
	e.queryMu.Lock()
	v, ok := e.queries.get(key)
	e.queryMu.Unlock()
	if ok && v.(queryOutcome).epoch == epoch {
		return false
	}
	est := box.exec.EstimateResults(query)
	return slca.PlanStreamed(index.PlanStats{Min: est}, need)
}

// SearchStream opens a fresh lazy doc-order cursor over the query's
// results. It bypasses the engine's caches entirely — each pull runs
// the SLCA → entity → label pipeline just far enough for the next
// result. For cached, shareable pagination use SearchStreamPage; for
// a materialized list use Search.
func (e *Engine) SearchStream(query string) (xseek.Cursor, error) {
	return e.box().exec.SearchStream(query)
}

// streamCursor is one resumable doc-order stream: the live cursor plus
// the prefix of results consumed so far. Sequential page requests for
// the same query pull only the delta beyond the longest page served;
// the epoch tag keeps a cursor opened before a write from ever serving
// the new corpus (its underlying iterators hold the old snapshot).
type streamCursor struct {
	mu     sync.Mutex
	cur    xseek.Cursor
	prefix []*xseek.Result
	done   bool // cur is exhausted; prefix is the full result list
	epoch  uint64
}

// SearchStreamPage returns the options' window of the document-ordered
// result list, pulling lazily from a per-query resumable cursor: the
// pipeline advances only to the window's end, so page 1 of a
// million-result query costs one page of work, and paging forward
// resumes where the last page stopped instead of re-searching. While
// the cursor is not exhausted the page's Total is
// xseek.StreamTotalUnknown; once any window reaches the end of the
// results the exact total is reported (and sticks for later pages).
// An unbounded window (Limit <= 0) drains the cursor.
func (e *Engine) SearchStreamPage(query string, opts xseek.SearchOptions) (*Page, error) {
	box := e.box()
	epoch := box.epoch()
	key := queryKey(query)

	var sc *streamCursor
	e.streamMu.Lock()
	if v, ok := e.streams.get(key); ok {
		if ent := v.(*streamCursor); ent.epoch == epoch {
			sc = ent
		}
	}
	e.streamMu.Unlock()
	if sc != nil {
		e.streamHits.Add(1)
	} else {
		e.streamMisses.Add(1)
		cur, err := box.exec.SearchStream(query)
		if err != nil {
			return nil, err
		}
		sc = &streamCursor{cur: cur, epoch: epoch}
		e.streamMu.Lock()
		if v, ok := e.streams.get(key); ok && v.(*streamCursor).epoch == epoch {
			sc = v.(*streamCursor) // another goroutine raced us; share its cursor
		} else if box.epoch() == epoch {
			e.streams.put(key, sc)
		}
		e.streamMu.Unlock()
	}

	sc.mu.Lock()
	defer sc.mu.Unlock()
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	need := 0 // 0 = drain
	if opts.Limit > 0 {
		if n := lo + opts.Limit; n > lo {
			need = n
		}
	}
	for !sc.done && (need == 0 || len(sc.prefix) < need) {
		r, ok := sc.cur.Next()
		if !ok {
			sc.done = true
			break
		}
		sc.prefix = append(sc.prefix, r)
	}
	if err := sc.cur.Err(); err != nil {
		return nil, err
	}
	if sc.done {
		wlo, whi := opts.Window(len(sc.prefix))
		return &Page{Results: sc.prefix[wlo:whi:whi], Total: len(sc.prefix), Offset: wlo}, nil
	}
	hi := len(sc.prefix) // == need: the loop stopped at the window's end
	if lo > hi {
		lo = hi
	}
	return &Page{Results: sc.prefix[lo:hi:hi], Total: xseek.StreamTotalUnknown, Offset: lo}, nil
}

// SearchCleanedStreamPage is SearchStreamPage over the spell-corrected
// query, returning the corrected keywords alongside the page.
func (e *Engine) SearchCleanedStreamPage(query string, opts xseek.SearchOptions) (*Page, []string, error) {
	cleaned := e.box().exec.CleanQuery(query)
	page, err := e.SearchStreamPage(strings.Join(cleaned, " "), opts)
	return page, cleaned, err
}
