package engine

import (
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// TestEngineStreamPageConcatenation: paging through SearchStreamPage
// reproduces Search's full result list, reports StreamTotalUnknown
// until some window reaches the end, and resumes the one cached cursor
// instead of re-searching.
func TestEngineStreamPageConcatenation(t *testing.T) {
	e := pagedCorpus(t, 17)
	full, err := e.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	var got []*xseek.Result
	calls := 0
	for off := 0; ; off += 5 {
		page, err := e.SearchStreamPage("gps", xseek.SearchOptions{Limit: 5, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		calls++
		if off+5 < len(full) {
			if page.Total != xseek.StreamTotalUnknown {
				t.Fatalf("offset %d: total = %d, want unknown (%d)", off, page.Total, xseek.StreamTotalUnknown)
			}
		} else if page.Total != len(full) {
			t.Fatalf("offset %d: total = %d, want %d", off, page.Total, len(full))
		}
		if len(page.Results) == 0 {
			break
		}
		got = append(got, page.Results...)
	}
	if len(got) != len(full) {
		t.Fatalf("concatenated %d results, want %d", len(got), len(full))
	}
	for i := range full {
		// Streamed results are fresh structs from the lazy pipeline, but
		// they resolve to the same tree nodes and labels.
		if got[i].Node != full[i].Node || got[i].Label != full[i].Label {
			t.Fatalf("stream concat diverges at %d: %q vs %q", i, got[i].Label, full[i].Label)
		}
	}
	m := e.Metrics()
	if m.StreamMisses != 1 || m.StreamHits != int64(calls-1) {
		t.Fatalf("stream cache: %d misses / %d hits, want 1 / %d", m.StreamMisses, m.StreamHits, calls-1)
	}
	if m.StreamCursorLen != 1 {
		t.Fatalf("stream cursor cache holds %d entries, want 1", m.StreamCursorLen)
	}
}

// TestEngineRankedStreamRouting: a small bounded window over a large
// uncached result set routes to the streamed pipeline (bit-identical
// page, exact total); warming the query cache flips the same request
// back to the eager route.
func TestEngineRankedStreamRouting(t *testing.T) {
	e := pagedCorpus(t, 60)
	eager := pagedCorpus(t, 60)
	wantFull, err := eager.SearchRanked("gps")
	if err != nil {
		t.Fatal(err)
	}

	page, err := e.SearchRankedPage("gps", xseek.SearchOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.RankedStreamed != 1 || m.RankedEager != 0 {
		t.Fatalf("cold small window: streamed %d / eager %d, want 1 / 0", m.RankedStreamed, m.RankedEager)
	}
	if m.PlannerStreamed == 0 {
		t.Fatal("executor streamed counter did not move")
	}
	if page.Total != len(wantFull) {
		t.Fatalf("streamed total = %d, want %d", page.Total, len(wantFull))
	}
	if len(page.Results) != 3 {
		t.Fatalf("streamed page has %d results, want 3", len(page.Results))
	}
	for i, r := range page.Results {
		if r.Label != wantFull[i].Label || r.Score != wantFull[i].Score {
			t.Fatalf("streamed rank %d: %q@%v, want %q@%v", i, r.Label, r.Score, wantFull[i].Label, wantFull[i].Score)
		}
	}

	// Warm the query cache: the identical request now re-scores the
	// cached list instead of re-executing.
	if _, err := e.Search("gps"); err != nil {
		t.Fatal(err)
	}
	page2, err := e.SearchRankedPage("gps", xseek.SearchOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.RankedStreamed != 1 || m.RankedEager != 1 {
		t.Fatalf("warm small window: streamed %d / eager %d, want 1 / 1", m.RankedStreamed, m.RankedEager)
	}
	for i := range page.Results {
		if page2.Results[i].Label != page.Results[i].Label || page2.Results[i].Score != page.Results[i].Score {
			t.Fatalf("eager route diverges from streamed at %d", i)
		}
	}

	// An unbounded window has nothing to terminate early: always eager.
	e2 := pagedCorpus(t, 60)
	if _, err := e2.SearchRankedPage("gps", xseek.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	m = e2.Metrics()
	if m.RankedStreamed != 0 || m.RankedEager != 1 {
		t.Fatalf("unbounded window: streamed %d / eager %d, want 0 / 1", m.RankedStreamed, m.RankedEager)
	}
}

// TestEngineStreamPageWriteInvalidation: a write bumps the epoch, so
// the next stream page abandons the stale cursor and serves the new
// corpus.
func TestEngineStreamPageWriteInvalidation(t *testing.T) {
	e := pagedCorpus(t, 6)
	if _, err := e.SearchStreamPage("gps", xseek.SearchOptions{Limit: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddEntity(xmltree.MustParseString("<product><name>PX gps</name><blurb>unit</blurb></product>")); err != nil {
		t.Fatal(err)
	}
	page, err := e.SearchStreamPage("gps", xseek.SearchOptions{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 7 {
		t.Fatalf("post-write streamed total = %d, want 7", page.Total)
	}
	m := e.Metrics()
	if m.StreamMisses != 2 {
		t.Fatalf("stream misses = %d, want 2 (stale cursor must not be reused)", m.StreamMisses)
	}
}
