package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// wandCorpus is a serving-layer copy of the prunable benchmark shape:
// every entity matches the broad two-term query, heavy entities are
// front-loaded in document order, so a small window's threshold rules
// out the tail blocks early.
func wandCorpus(t *testing.T, n int) *Engine {
	t.Helper()
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		b.WriteString("<item>")
		reps := 1
		if i < n/20+1 {
			reps = 6
		}
		for r := 0; r < reps; r++ {
			fmt.Fprintf(&b, "<f%d>alpha beta</f%d>", r, r)
		}
		fmt.Fprintf(&b, "<desc>filler%d</desc>", i%13)
		b.WriteString("</item>")
	}
	b.WriteString("</catalog>")
	return New(xmltree.MustParseString(b.String()))
}

// TestEngineWANDMetrics: a cold small ranked window routes to the
// score-bounded consumer and the serving metrics must show it —
// ranked_wand counted under ranked_streamed, pruned entities and
// skipped blocks accumulated.
func TestEngineWANDMetrics(t *testing.T) {
	e := wandCorpus(t, 900)
	page, err := e.SearchRankedPage("alpha beta", xseek.SearchOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 900 {
		t.Fatalf("exact-mode total = %d, want 900", page.Total)
	}
	if len(page.Results) != 5 {
		t.Fatalf("page has %d results, want 5", len(page.Results))
	}
	m := e.Metrics()
	if m.RankedStreamed != 1 || m.RankedWAND != 1 {
		t.Fatalf("ranked_streamed %d / ranked_wand %d, want 1 / 1", m.RankedStreamed, m.RankedWAND)
	}
	if m.WANDPruned == 0 {
		t.Fatal("wand_pruned did not move on the prunable shape")
	}
	if m.BlocksSkipped == 0 {
		t.Fatal("blocks_skipped did not move on the prunable shape")
	}
}

// TestEngineApproxRouting: accuracy=approx forces the score-bounded
// route even where the planner would go eager, keeps the page identical
// to the exact one, and clamps the returned offset when the total
// degrades to unknown.
func TestEngineApproxRouting(t *testing.T) {
	e := wandCorpus(t, 900)
	// Warm the query cache so the planner would pick the eager route.
	if _, err := e.Search("alpha beta"); err != nil {
		t.Fatal(err)
	}
	exact, err := e.SearchRankedPage("alpha beta", xseek.SearchOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.RankedEager != 1 {
		t.Fatalf("warm exact window went streamed (eager=%d)", m.RankedEager)
	}
	approx, err := e.SearchRankedPage("alpha beta", xseek.SearchOptions{Limit: 5, Accuracy: xseek.AccuracyApprox})
	if err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.RankedWAND != 1 {
		t.Fatalf("approx request did not take the WAND route (ranked_wand=%d)", m.RankedWAND)
	}
	if len(approx.Results) != len(exact.Results) {
		t.Fatalf("approx page has %d results, want %d", len(approx.Results), len(exact.Results))
	}
	for i := range exact.Results {
		if approx.Results[i].Label != exact.Results[i].Label || approx.Results[i].Score != exact.Results[i].Score {
			t.Fatalf("approx result %d %q@%v, want %q@%v", i,
				approx.Results[i].Label, approx.Results[i].Score,
				exact.Results[i].Label, exact.Results[i].Score)
		}
	}
	if approx.Total != exact.Total && approx.Total != xseek.StreamTotalUnknown {
		t.Fatalf("approx total = %d, want %d or unknown", approx.Total, exact.Total)
	}

	// With an unknown total the offset cannot be re-derived from
	// Window(total); it must come back as the (clamped) requested offset.
	off, err := e.SearchRankedPage("alpha beta",
		xseek.SearchOptions{Limit: 3, Offset: 2, Accuracy: xseek.AccuracyApprox})
	if err != nil {
		t.Fatal(err)
	}
	if off.Offset != 2 {
		t.Fatalf("approx offset echoed as %d, want 2", off.Offset)
	}
	neg, err := e.SearchRankedPage("alpha beta",
		xseek.SearchOptions{Limit: 3, Offset: -4, Accuracy: xseek.AccuracyApprox})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Offset != 0 {
		t.Fatalf("negative approx offset clamped to %d, want 0", neg.Offset)
	}
}
