// Package engine is XSACT's concurrent query-serving layer: one
// Engine per corpus owns every piece of per-document derived state —
// the inverted index (or K shard indexes), the inferred schema, a
// feature-statistics cache keyed by result subtree, a bounded LRU of
// query → SLCA results, and a bounded LRU of generated DFS sets — and
// is safe for any number of concurrent readers.
//
// The layers above plumb through it instead of recomputing:
//
//	facade (xsact.Document)  ─┐
//	HTTP server (cmd/xsactd) ─┼→ engine.Engine ─→ executor ─→ index / slca
//	                          │        │             │
//	                          │        │             ├ xseek.Engine  (monolithic)
//	                          │        │             ├ shard.Engine  (K-shard fan-out/merge)
//	                          │        │             └ update.Engine (live writes over either)
//	                          │        └→ feature (cached) → core (pooled) → table
//
// The executor is chosen by Config.Shards — and transparently wrapped
// by the live update layer on the first AddEntity/RemoveEntity — and
// is invisible above this layer: all produce identical results, so the
// caches, the facade, and the servers never branch on the layout. Once
// the corpus is live, every cache entry is tagged with the update
// layer's epoch and self-invalidates across writes and compactions.
// Construction fans index
// building out — over the root's subtrees for the monolithic executor
// (xseek.NewParallel), over per-shard segment groups for the sharded
// one (shard.Build) — and query serving reuses cached search results
// and feature stats, so repeated Compare/Snippet calls over the same
// results never re-extract the same subtree twice.
package engine
