package update

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// The equivalence property: after ANY interleaving of adds, removes,
// and compactions, the live engine's Search / ranking / paging output
// is byte-identical (labels, rendered subtrees, score bits, paging
// envelopes, errors) to a from-scratch build over the same logical
// corpus — for a monolithic base and for sharded bases at K ∈ {2, 8}.

var equivVocab = []string{
	"gps", "camera", "zoom", "battery", "rugged", "trail", "alpine",
	"radio", "solar", "compass", "tent", "stove", "filter", "jacket",
}

// randomProduct builds an entity subtree with a guaranteed name leaf
// (so labels never fall back to Dewey IDs) and random keyword content.
func randomProduct(rng *rand.Rand, serial int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<product><name>model%d</name>", serial)
	fmt.Fprintf(&b, "<kind>%s</kind>", equivVocab[rng.Intn(len(equivVocab))])
	for r, n := 0, rng.Intn(3); r < n; r++ {
		// Reviews repeat, making them entities (and thus result roots);
		// the title keeps their labels independent of Dewey positions.
		fmt.Fprintf(&b, "<review><title>rev%d-%d</title><text>%s %s quality</text></review>",
			serial, r, equivVocab[rng.Intn(len(equivVocab))], equivVocab[rng.Intn(len(equivVocab))])
	}
	b.WriteString("</product>")
	return b.String()
}

// corpusXML builds the seed corpus: a non-entity banner child plus n
// products.
func corpusXML(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("<catalog><banner><name>welcome</name><slogan>grand opening sale</slogan></banner>")
	for i := 0; i < n; i++ {
		b.WriteString(randomProduct(rng, i))
	}
	b.WriteString("</catalog>")
	return b.String()
}

// coldExecutor is the from-scratch reference build.
type coldExecutor interface {
	Search(query string) ([]*xseek.Result, error)
	RankResults(results []*xseek.Result, query string) []*xseek.RankedResult
	RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult
	CleanQuery(query string) []string
	TotalNodes() int
	DocFreq(term string) int
}

func buildCold(refKids []*xmltree.Node, k int) coldExecutor {
	root := xmltree.NewElement("catalog")
	for _, c := range refKids {
		root.AppendChild(c.Clone())
	}
	root.AssignIDs(nil)
	if k > 1 {
		return shard.Build(root, k)
	}
	return xseek.NewParallel(root)
}

// canonical serializes a result list into the byte-comparable form:
// label and rendered subtree per result (Dewey IDs are internal
// addresses and legitimately differ while deletions are pending, so
// they are not part of the logical output).
func canonical(results []*xseek.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d results\n", len(results))
	for _, r := range results {
		b.WriteString(r.Label)
		b.WriteString("\n")
		b.WriteString(xmltree.XMLString(r.Node))
		b.WriteString("\n")
	}
	return b.String()
}

func canonicalRanked(ranked []*xseek.RankedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d ranked\n", len(ranked))
	for _, r := range ranked {
		fmt.Fprintf(&b, "%016x %s\n", math.Float64bits(r.Score), r.Label)
		b.WriteString(xmltree.XMLString(r.Node))
	}
	return b.String()
}

var equivQueries = []string{
	"gps", "camera zoom", "quality", "gps battery quality", "welcome",
	"grand opening", "model3", "zzzmissing", "gps zzzmissing", "",
}

var equivPages = []xseek.SearchOptions{
	{},
	{Limit: 3},
	{Limit: 3, Offset: 2},
	{Limit: 100, Offset: 0},
	{Offset: 1000},
}

// assertEquivalent compares every query's full output between the live
// engine and a cold rebuild.
func assertEquivalent(t *testing.T, step string, live *Engine, cold coldExecutor) {
	t.Helper()
	if lt, ct := live.TotalNodes(), cold.TotalNodes(); lt != ct {
		t.Fatalf("%s: TotalNodes %d, cold %d", step, lt, ct)
	}
	for _, term := range equivVocab {
		if ld, cd := live.DocFreq(term), cold.DocFreq(term); ld != cd {
			t.Fatalf("%s: DocFreq(%q) %d, cold %d", step, term, ld, cd)
		}
	}
	for _, q := range equivQueries {
		lr, lerr := live.Search(q)
		cr, cerr := cold.Search(q)
		if (lerr == nil) != (cerr == nil) || (lerr != nil && lerr.Error() != cerr.Error()) {
			t.Fatalf("%s: query %q errors differ: live %v, cold %v", step, q, lerr, cerr)
		}
		if lerr != nil {
			continue
		}
		if lc, cc := canonical(lr), canonical(cr); lc != cc {
			t.Fatalf("%s: query %q results differ:\nlive:\n%s\ncold:\n%s", step, q, lc, cc)
		}
		if lc, cc := live.CleanQuery(q), cold.CleanQuery(q); strings.Join(lc, " ") != strings.Join(cc, " ") {
			t.Fatalf("%s: query %q cleaned differ: %v vs %v", step, q, lc, cc)
		}
		for _, opts := range equivPages {
			lp := live.RankPage(lr, q, opts)
			cp := cold.RankPage(cr, q, opts)
			if lc, cc := canonicalRanked(lp), canonicalRanked(cp); lc != cc {
				t.Fatalf("%s: query %q page %+v ranked pages differ:\nlive:\n%s\ncold:\n%s", step, q, opts, lc, cc)
			}
		}
		lrr := live.RankResults(lr, q)
		crr := cold.RankResults(cr, q)
		if lc, cc := canonicalRanked(lrr), canonicalRanked(crr); lc != cc {
			t.Fatalf("%s: query %q full rankings differ", step, q)
		}
	}
	// The lazy read paths must agree with the eager ones on the same
	// snapshot (and, transitively, with the cold rebuild).
	assertStreamEquivalent(t, step, live)
}

func TestLiveEquivalenceRandomInterleavings(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed*100 + int64(k)))
				xml := corpusXML(rng, 10)
				origin := xmltree.MustParseString(xml)

				var live *Engine
				if k > 1 {
					live = WrapSharded(shard.Build(origin, k))
				} else {
					live = Wrap(xseek.NewParallel(origin))
				}

				// refKids mirrors the live top-level children 1:1 by
				// position; the cold reference is rebuilt from clones.
				ref := xmltree.MustParseString(xml)
				refKids := append([]*xmltree.Node{}, ref.ChildElements()...)
				liveOrds := make([]int, len(refKids))
				for i := range refKids {
					liveOrds[i] = i
				}

				serial := 1000
				assertEquivalent(t, "seed", live, buildCold(refKids, k))
				for op := 0; op < 14; op++ {
					step := fmt.Sprintf("seed %d op %d", seed, op)
					switch r := rng.Float64(); {
					case r < 0.45:
						frag := randomProduct(rng, serial)
						serial++
						id, err := live.AddEntity(xmltree.MustParseString(frag))
						if err != nil {
							t.Fatalf("%s: AddEntity: %v", step, err)
						}
						refKids = append(refKids, xmltree.MustParseString(frag))
						liveOrds = append(liveOrds, id[0])
						step += " add"
					case r < 0.80 && len(refKids) > 1:
						i := rng.Intn(len(refKids))
						if err := live.RemoveEntity([]int{liveOrds[i]}); err != nil {
							t.Fatalf("%s: RemoveEntity: %v", step, err)
						}
						refKids = append(refKids[:i], refKids[i+1:]...)
						liveOrds = append(liveOrds[:i], liveOrds[i+1:]...)
						step += " remove"
					default:
						if err := live.Compact(); err != nil {
							t.Fatalf("%s: Compact: %v", step, err)
						}
						// Compaction renumbers: live ordinals are compact
						// positional indices again.
						for i := range liveOrds {
							liveOrds[i] = i
						}
						step += " compact"
					}
					assertEquivalent(t, step, live, buildCold(refKids, k))
				}
				// A final compaction must also converge exactly.
				if err := live.Compact(); err != nil {
					t.Fatal(err)
				}
				assertEquivalent(t, "final compact", live, buildCold(refKids, k))
			}
		})
	}
}

func TestLiveErrorsMatchCold(t *testing.T) {
	origin := xmltree.MustParseString(corpusXML(rand.New(rand.NewSource(7)), 4))
	live := Wrap(xseek.NewParallel(origin))
	if _, err := live.Search(""); !errors.Is(err, xseek.ErrEmptyQuery) {
		t.Fatalf("empty query error = %v", err)
	}
	if err := live.RemoveEntity([]int{99}); err == nil {
		t.Fatal("removing an absent entity should fail")
	}
	if err := live.RemoveEntity([]int{0, 1}); err == nil {
		t.Fatal("removing a non-top-level ID should fail")
	}
	if _, err := live.AddEntity(nil); err == nil {
		t.Fatal("adding nil should fail")
	}
	if _, err := live.AddEntity(xmltree.NewText("loose")); err == nil {
		t.Fatal("adding a text node should fail")
	}
	// Removing the same entity twice: second attempt fails.
	if err := live.RemoveEntity([]int{1}); err != nil {
		t.Fatal(err)
	}
	if err := live.RemoveEntity([]int{1}); err == nil {
		t.Fatal("double remove should fail")
	}
}
