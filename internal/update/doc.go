// Package update is the live write path of the serving stack: it lets
// callers add and remove top-level entities on a built corpus without a
// full reparse or index rebuild, while readers keep getting answers
// that are indistinguishable from a cold build of the current logical
// corpus.
//
// The design separates a mutable write side from an immutable read
// side, LSM-style:
//
//   - The base is a finished executor — a monolithic xseek.Engine or a
//     fan-out shard.Engine — and is never modified in place.
//   - Added entities are appended after the corpus's last top-level
//     child (fresh Dewey ordinals, so every existing posting stays
//     valid) and indexed into a small delta index.
//   - Removed entities go into a tombstone set of top-level Dewey IDs.
//   - Every read runs against the composition base ⊕ delta − tombstones
//     at the posting-list level: per query term, the base lists (one
//     per shard plus the spine for a sharded base) are merged with the
//     delta list and filtered through the tombstones before SLCA
//     computation, so deletions can both remove results and surface
//     the new, shallower SLCAs the monolithic semantics demand.
//   - Compaction folds the pending writes back into a clean base —
//     cheaply merging delta posting lists (and reusing untouched shard
//     indexes) when only adds are pending, or rebuilding from the
//     pruned, renumbered tree when tombstones are pending.
//
// All reads are lock-free: the entire mutable surface lives in one
// immutable state value behind an atomic pointer, and every mutation
// (including compaction) installs a fresh state with a bumped epoch.
// In-flight queries keep the state they started with, so compaction
// never blocks a reader; the serving layer (internal/engine) watches
// the epoch to invalidate its caches.
//
// Corpus statistics (node count, per-term document frequencies, the
// schema summary) are maintained exactly — not approximately — across
// every mutation, so TF-IDF scores, planner decisions, spell
// correction, and entity inference all match a from-scratch build of
// the same logical corpus bit for bit. The schema is recomposed from
// cached per-subtree evidence (xseek.CollectEvidence/ComposeSchema)
// instead of re-walking the corpus.
package update
