package update

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// assertStreamEquivalent verifies the live streamed read paths against
// the live eager ones on the same snapshot: the doc-order cursor
// drained must equal Search, and the streamed ranked page must be
// bit-identical (scores, labels, total) to RankPage over the eager
// results. Called from assertEquivalent, so it runs under every
// interleaving of adds, removes, and compactions the equivalence suite
// generates, for monolithic and sharded bases alike.
func assertStreamEquivalent(t *testing.T, step string, live *Engine) {
	t.Helper()
	for _, q := range equivQueries {
		er, eerr := live.Search(q)
		sc, serr := live.SearchStream(q)
		if (eerr == nil) != (serr == nil) || (eerr != nil && eerr.Error() != serr.Error()) {
			t.Fatalf("%s: query %q stream errors differ: eager %v, stream %v", step, q, eerr, serr)
		}
		if eerr != nil {
			continue
		}
		var sr []*xseek.Result
		for {
			r, ok := sc.Next()
			if !ok {
				break
			}
			sr = append(sr, r)
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("%s: query %q stream failed: %v", step, q, err)
		}
		if lc, cc := canonical(sr), canonical(er); lc != cc {
			t.Fatalf("%s: query %q streamed results differ:\nstream:\n%s\neager:\n%s", step, q, lc, cc)
		}
		for _, opts := range equivPages {
			want := live.RankPage(er, q, opts)
			got, total, err := live.SearchRankedPageStream(q, opts)
			if err != nil {
				t.Fatalf("%s: query %q opts %+v streamed ranked failed: %v", step, q, opts, err)
			}
			if total != len(er) {
				t.Fatalf("%s: query %q opts %+v streamed total %d, want %d", step, q, opts, total, len(er))
			}
			if lc, cc := canonicalRanked(got), canonicalRanked(want); lc != cc {
				t.Fatalf("%s: query %q opts %+v streamed ranked differs:\nstream:\n%s\neager:\n%s",
					step, q, opts, lc, cc)
			}

			// The score-bounded path over the live composite (delta ⊕
			// base, tombstones applied): exact mode must stay
			// bit-identical under every interleaving, approximate mode
			// may only degrade the total.
			wgot, wtotal, wst, err := live.SearchRankedPageWAND(q, opts)
			if err != nil {
				t.Fatalf("%s: query %q opts %+v wand ranked failed: %v", step, q, opts, err)
			}
			if wst.Terminated {
				t.Fatalf("%s: query %q opts %+v exact wand terminated", step, q, opts)
			}
			if wtotal != len(er) {
				t.Fatalf("%s: query %q opts %+v wand total %d, want %d", step, q, opts, wtotal, len(er))
			}
			if lc, cc := canonicalRanked(wgot), canonicalRanked(want); lc != cc {
				t.Fatalf("%s: query %q opts %+v wand ranked differs:\nwand:\n%s\neager:\n%s",
					step, q, opts, lc, cc)
			}
			aopts := opts
			aopts.Accuracy = xseek.AccuracyApprox
			agot, atotal, ast, err := live.SearchRankedPageWAND(q, aopts)
			if err != nil {
				t.Fatalf("%s: query %q opts %+v approx wand failed: %v", step, q, opts, err)
			}
			if atotal != len(er) && atotal != xseek.StreamTotalUnknown {
				t.Fatalf("%s: query %q opts %+v approx wand total %d, want %d or unknown",
					step, q, opts, atotal, len(er))
			}
			if atotal == xseek.StreamTotalUnknown && !ast.Terminated {
				t.Fatalf("%s: query %q opts %+v approx wand unknown total without Terminated", step, q, opts)
			}
			if lc, cc := canonicalRanked(agot), canonicalRanked(want); lc != cc {
				t.Fatalf("%s: query %q opts %+v approx wand page differs:\nwand:\n%s\neager:\n%s",
					step, q, opts, lc, cc)
			}
		}
	}
}

// TestStreamSnapshotSurvivesWrites: a cursor opened before writes keeps
// streaming its epoch's answer — identical to the eager result set
// captured at open time — while adds, removes, and a compaction land.
func TestStreamSnapshotSurvivesWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	live := Wrap(xseek.NewParallel(xmltree.MustParseString(corpusXML(rng, 12))))
	before, err := live.Search("quality")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := live.SearchStream("quality")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave pulls with writes that change the logical corpus.
	var got []*xseek.Result
	for i := 0; ; i++ {
		r, ok := sc.Next()
		if !ok {
			break
		}
		got = append(got, r)
		switch i {
		case 0:
			if _, err := live.AddEntity(xmltree.MustParseString(randomProduct(rng, 500))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := live.RemoveEntity([]int{1}); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := live.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lc, cc := canonical(got), canonical(before); lc != cc {
		t.Fatalf("stream diverged from its snapshot:\nstream:\n%s\nsnapshot:\n%s", lc, cc)
	}
}

// TestConcurrentStreamsDuringWrites is the race-detector stress: many
// goroutines holding open streamed cursors (doc-order and ranked)
// while writers add, remove, and compact. Every cursor must drain
// without error and deliver an internally consistent snapshot (labels
// unique, document order strictly increasing emission).
func TestConcurrentStreamsDuringWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	live := Wrap(xseek.NewParallel(xmltree.MustParseString(corpusXML(rng, 16))))

	const readers, writes = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(33))
		serial := 2000
		for i := 0; i < writes; i++ {
			switch {
			case i%7 == 6:
				if err := live.Compact(); err != nil {
					errs <- fmt.Errorf("compact: %w", err)
					return
				}
			case i%3 == 0:
				// Remove a random live top-level entity, tolerating races
				// on already-removed ordinals.
				if root := live.Root(); len(root.Children) > 1 {
					victim := root.Children[wrng.Intn(len(root.Children))]
					_ = live.RemoveEntity(victim.ID)
				}
			default:
				serial++
				if _, err := live.AddEntity(xmltree.MustParseString(randomProduct(wrng, serial))); err != nil {
					errs <- fmt.Errorf("add: %w", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{"quality", "gps", "camera zoom", "gps battery"}
			for i := 0; i < 30; i++ {
				q := queries[(r+i)%len(queries)]
				if i%2 == 0 {
					sc, err := live.SearchStream(q)
					if err != nil {
						continue // all terms may be missing mid-churn
					}
					var prev *xseek.Result
					seen := make(map[string]bool)
					for {
						res, ok := sc.Next()
						if !ok {
							break
						}
						if prev != nil && prev.Node.ID.Compare(res.Node.ID) >= 0 {
							errs <- fmt.Errorf("reader %d: doc order violated: %v then %v", r, prev.Node.ID, res.Node.ID)
							return
						}
						if seen[res.Node.ID.String()] {
							errs <- fmt.Errorf("reader %d: duplicate entity %v", r, res.Node.ID)
							return
						}
						seen[res.Node.ID.String()] = true
						prev = res
					}
					if err := sc.Err(); err != nil {
						errs <- fmt.Errorf("reader %d: stream error: %w", r, err)
						return
					}
				} else {
					if _, total, err := live.SearchRankedPageStream(q, xseek.SearchOptions{Limit: 5}); err == nil && total < 0 {
						errs <- fmt.Errorf("reader %d: negative streamed total %d", r, total)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
