package update

import (
	"repro/internal/index"
	"repro/internal/xseek"
)

// The live engine's score-bounded ranked path. The bound for one term
// composes per-part bounds in two steps, each matching where a result
// subtree's postings can actually live:
//
//   - Base parts sum. A monolithic base is one part; a sharded base
//     splits one logical list into spine + per-shard parts, and a
//     spine wrapper node's subtree can span several of them, so only
//     the always-admissible sum composition is safe there (tf is
//     additive over disjoint parts).
//   - Base ⊕ delta takes the max. Added entities receive fresh
//     top-level ordinals the base never used, so any non-root node's
//     postings live entirely on one side — the delta for added
//     subtrees, the base for original ones — and the max of the two
//     sides bounds both.
//
// Tombstones only remove postings; ignoring them keeps every bound
// admissible and never raises one.

// termBounds builds one composite bound cursor per scoring term over
// this snapshot, or nil when any part lacks bound metadata (legacy
// compact payload) — the fallback-to-streaming signal.
func (s *state) termBounds(terms []string) []xseek.TermBound {
	out := make([]xseek.TermBound, 0, len(terms))
	for _, t := range terms {
		df := s.df.get(t)
		if df == 0 {
			continue
		}
		idf := xseek.IDF(s.totalNodes, df)
		if idf == 0 {
			continue
		}
		lbs, ok := s.src.bounds(t)
		if !ok {
			return nil
		}
		base := make([]index.BoundCursor, 0, len(lbs))
		for _, lb := range lbs {
			if lb.Blocks() > 0 {
				base = append(base, lb.Cursor())
			}
		}
		sides := make([]index.BoundCursor, 0, 2)
		if len(base) > 0 {
			sides = append(sides, index.SumBoundCursor(base...))
		}
		if s.delta != nil {
			if lb := s.delta.TermBounds(t); lb != nil && lb.Blocks() > 0 {
				sides = append(sides, lb.Cursor())
			}
		}
		if len(sides) == 0 {
			// df > 0 yet no part holds postings cannot happen; guard
			// anyway with a zero bound.
			sides = append(sides, index.BoundsOf(nil).Cursor())
		}
		out = append(out, xseek.TermBound{IDF: idf, Cur: index.MaxBoundCursor(sides...)})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// SearchRankedPageWAND runs the score-bounded ranked pipeline over
// the live corpus: the streamed composite pipeline of
// SearchRankedPageStream with block-max pruning on top. Exact mode is
// bit-identical to it; approximate mode may stop draining and report
// StreamTotalUnknown.
func (e *Engine) SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error) {
	s := e.view()
	terms, err := compileStream(s, query)
	if err != nil {
		return nil, 0, xseek.WANDStats{}, err
	}
	e.plannerStreamed.Add(1)
	it := s.slcaIter(terms, e)
	es := xseek.NewEntityStream(it, s.root, s.schema)
	return xseek.ConsumeRankedWAND(es, opts, s.streamScorer(terms), s.termBounds(terms), nil)
}
