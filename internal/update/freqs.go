package update

// freqs is the live per-term document-frequency table. Copying the
// whole vocabulary on every write would dominate the cost of an add
// (the base table has one entry per corpus term), so the table is an
// immutable base map shared by every state since the last compaction
// plus a small copy-on-write overlay of adjustments from the pending
// writes. Aggregates (distinct live terms, total postings) are
// maintained alongside so index statistics stay O(1).
type freqs struct {
	base map[string]int // shared, never mutated after construction
	over map[string]int // pending adjustments; entries may zero a term out
	// terms is the number of distinct live terms (df > 0); postings is
	// their sum — together the cold index's Stats.
	terms, postings int
}

func newFreqs(base map[string]int) freqs {
	f := freqs{base: base, terms: len(base)}
	for _, n := range base {
		f.postings += n
	}
	return f
}

// get returns the live document frequency of term (0 when absent).
func (f freqs) get(term string) int { return f.base[term] + f.over[term] }

// each visits every live term once with its frequency, in map order.
func (f freqs) each(fn func(term string, df int)) {
	for t, n := range f.base {
		if d, ok := f.over[t]; ok {
			if n+d > 0 {
				fn(t, n+d)
			}
			continue
		}
		fn(t, n)
	}
	for t, d := range f.over {
		if _, inBase := f.base[t]; !inBase && d > 0 {
			fn(t, d)
		}
	}
}

// adjusted returns a new table with the signed per-term deltas applied
// to a copied overlay; the base stays shared. sign is +1 for an added
// subtree's contributions, -1 for a removed one's.
func (f freqs) adjusted(contrib map[string]int, sign int) freqs {
	nf := freqs{base: f.base, terms: f.terms, postings: f.postings,
		over: make(map[string]int, len(f.over)+len(contrib))}
	for t, d := range f.over {
		nf.over[t] = d
	}
	for t, d := range contrib {
		before := nf.base[t] + nf.over[t]
		nf.over[t] += sign * d
		after := nf.base[t] + nf.over[t]
		nf.postings += after - before
		switch {
		case before == 0 && after > 0:
			nf.terms++
		case before > 0 && after == 0:
			nf.terms--
		}
	}
	return nf
}
