package update

import (
	"fmt"
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// This file is the composite read path: every query runs against
// base ⊕ delta − tombstones at the posting-list level, so the SLCA,
// entity-mapping, ranking, and spell-correction stages all behave
// exactly as a cold engine over the live logical corpus would.

// list materializes the live composite posting list for one term:
// base lists (one per shard plus spine for a sharded base) merged with
// the delta list, minus every posting under a tombstone. Filtering
// must happen before SLCA computation — removing a subtree's witnesses
// can surface new, shallower SLCAs, not just hide old ones.
func (s *state) list(term string) index.PostingList {
	parts := s.src.postings(term)
	if s.delta != nil {
		parts = append(parts, s.delta.Lookup(term))
	}
	if len(s.tombstones) > 0 {
		for i := range parts {
			parts[i] = index.Without(parts[i], s.tombstones)
		}
	}
	return index.MergeLists(parts...)
}

// lists resolves every term's composite list, sharing work between
// duplicate terms.
func (s *state) lists(terms []string) []index.PostingList {
	cache := make(map[string]index.PostingList, len(terms))
	out := make([]index.PostingList, len(terms))
	for i, t := range terms {
		l, ok := cache[t]
		if !ok {
			l = s.list(t)
			cache[t] = l
		}
		out[i] = l
	}
	return out
}

// nodeAt resolves a Dewey ID against the live tree. Only the top
// ordinal needs special handling: removals leave holes in the root's
// ordinal sequence, so it is looked up in the ordinal-sorted live
// child table; below a top-level child, subtrees are untouched and
// positional resolution applies.
func (s *state) nodeAt(id dewey.ID) *xmltree.Node {
	if len(id) == 0 {
		return s.root
	}
	i := sort.Search(len(s.top), func(k int) bool { return s.top[k].ord >= id[0] })
	if i == len(s.top) || s.top[i].ord != id[0] {
		return nil
	}
	return s.top[i].node.NodeAt(id[1:])
}

// Search runs a keyword query over the live corpus with exactly the
// monolithic pipeline semantics: tokenize → whole-corpus keyword check
// → plan → SLCA over composite lists → entity mapping. Results come
// back in document order; globally absent keywords produce the same
// NoMatchError a cold engine reports.
func (e *Engine) Search(query string) ([]*xseek.Result, error) {
	s := e.view()
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, xseek.ErrEmptyQuery
	}
	var missing []string
	for _, t := range terms {
		if s.df.get(t) == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, &index.NoMatchError{Terms: missing}
	}
	lists := s.lists(terms)
	alg := slca.Plan(index.StatsOf(lists))
	if alg == slca.AlgIndexedLookup {
		e.plannerIndexed.Add(1)
	} else {
		e.plannerScan.Add(1)
	}
	return s.mapToEntities(slca.ComputeWith(alg, lists))
}

// mapToEntities is the entity-map + label stage over the live tree,
// mirroring the xseek pipeline: lift each SLCA to its nearest enclosing
// entity under the live schema, merge matches sharing an entity, label,
// and sort into document order.
func (s *state) mapToEntities(matches []dewey.ID) ([]*xseek.Result, error) {
	var out []*xseek.Result
	seen := make(map[string]bool)
	for _, m := range matches {
		n := s.nodeAt(m)
		if n == nil {
			return nil, fmt.Errorf("update: internal: SLCA %v not in live tree", m)
		}
		resultRoot := s.schema.NearestEntity(n)
		if resultRoot == nil {
			resultRoot = n
		}
		key := resultRoot.ID.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, &xseek.Result{Node: resultRoot, Match: n, Label: xseek.LabelFor(resultRoot)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID.Compare(out[j].Node.ID) < 0 })
	return out, nil
}

// RankResults scores and orders a result set with the exact cold-build
// TF-IDF: term frequencies counted on the composite lists, inverse
// document frequencies derived from the live (maintained) corpus
// statistics, stable sort keeping document order on ties.
func (e *Engine) RankResults(results []*xseek.Result, query string) []*xseek.RankedResult {
	out := e.scoreResults(e.view(), results, query)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RankPage returns the options' window of the RankResults ordering.
func (e *Engine) RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult {
	lo, hi := opts.Window(len(results))
	return e.RankResults(results, query)[lo:hi]
}

// scoreResults computes TF-IDF scores in input order — the live twin of
// the xseek and shard scoring stages, sharing their weight formulas so
// scores are bit-identical.
func (e *Engine) scoreResults(s *state, results []*xseek.Result, query string) []*xseek.RankedResult {
	terms := index.TokenizeQuery(query)
	lists := make(map[string]index.PostingList, len(terms))
	out := make([]*xseek.RankedResult, len(results))
	for i, r := range results {
		score := 0.0
		for _, t := range terms {
			df := s.df.get(t)
			if df == 0 {
				continue
			}
			l, ok := lists[t]
			if !ok {
				l = s.list(t)
				lists[t] = l
			}
			tf := index.CountUnder(l, r.Node.ID)
			if tf == 0 {
				continue
			}
			score += xseek.TermWeight(tf, xseek.IDF(s.totalNodes, df))
		}
		out[i] = &xseek.RankedResult{Result: r, Score: score}
	}
	return out
}

// CleanQuery spell-corrects each keyword against the live vocabulary
// with the single-index candidate ranking (distance, then frequency,
// then term).
func (e *Engine) CleanQuery(query string) []string {
	s := e.view()
	terms := index.TokenizeQuery(query)
	out := make([]string, len(terms))
	for i, t := range terms {
		if s.df.get(t) > 0 {
			out[i] = t
			continue
		}
		if sugg := index.SuggestIn(s.eachTerm, t, 2); len(sugg) > 0 {
			out[i] = sugg[0]
		} else {
			out[i] = t
		}
	}
	return out
}

func (s *state) eachTerm(f func(term string, df int)) {
	s.df.each(f)
}

// Root returns the live document tree. Mutations replace it (the
// returned tree itself is immutable), so do not retain it across
// writes.
func (e *Engine) Root() *xmltree.Node { return e.view().root }

// Schema returns the live schema summary, maintained to equal a cold
// inference of the current logical corpus.
func (e *Engine) Schema() *xseek.Schema { return e.view().schema }

// TotalNodes returns the live corpus node count.
func (e *Engine) TotalNodes() int { return e.view().totalNodes }

// DocFreq returns the number of live corpus nodes containing term.
func (e *Engine) DocFreq(term string) int { return e.view().df.get(term) }

// PlannerDecisions reports the SLCA cost-planner tallies for queries
// executed on the live read path.
func (e *Engine) PlannerDecisions() (indexedLookup, scanEager int64) {
	return e.plannerIndexed.Load(), e.plannerScan.Load()
}
