package update

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// TestConcurrentReadersDuringWrites hammers one live engine with
// readers (search, ranking, paging, spell-correction, statistics)
// while a writer interleaves adds, removes, and compactions. Run under
// -race this is the lock-free epoch-swap proof: readers must never see
// a torn state, and every answer must be internally consistent (well-
// formed results for whatever epoch the reader landed on).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	for _, k := range []int{1, 4} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			origin := xmltree.MustParseString(corpusXML(rng, 12))
			var live *Engine
			if k > 1 {
				live = WrapSharded(shard.Build(origin, k))
			} else {
				live = Wrap(xseek.NewParallel(origin))
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					queries := []string{"gps", "camera zoom", "quality", "welcome", "nomatchterm"}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := queries[i%len(queries)]
						results, err := live.Search(q)
						if err != nil {
							continue
						}
						ranked := live.RankPage(results, q, xseek.SearchOptions{Limit: 3})
						if len(ranked) > len(results) {
							t.Errorf("page larger than result set: %d > %d", len(ranked), len(results))
							return
						}
						for _, res := range ranked {
							if res.Node == nil || res.Label == "" {
								t.Error("malformed ranked result")
								return
							}
						}
						live.CleanQuery("camra")
						live.IndexStats()
						live.TotalNodes()
					}
				}(r)
			}

			wrng := rand.New(rand.NewSource(12))
			serial := 5000
			for op := 0; op < 60; op++ {
				switch r := wrng.Float64(); {
				case r < 0.5:
					if _, err := live.AddEntity(xmltree.MustParseString(randomProduct(wrng, serial))); err != nil {
						t.Fatal(err)
					}
					serial++
				case r < 0.8:
					// Remove whatever entity is currently last; ignore
					// not-found races with our own earlier removals.
					s := live.view()
					if len(s.top) > 1 {
						_ = live.RemoveEntity([]int{s.top[len(s.top)-1].ord})
					}
				default:
					if err := live.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			close(stop)
			wg.Wait()

			// The corpus must still be exactly reconstructible: compact and
			// verify against a cold rebuild of the final tree.
			if err := live.Compact(); err != nil {
				t.Fatal(err)
			}
			final := live.Root()
			cold := xseek.NewParallel(rebuildTree(final))
			for _, q := range []string{"gps", "quality", "welcome"} {
				lr, lerr := live.Search(q)
				cr, cerr := cold.Search(q)
				if (lerr == nil) != (cerr == nil) {
					t.Fatalf("final state: query %q errors differ: %v vs %v", q, lerr, cerr)
				}
				if canonical(lr) != canonical(cr) {
					t.Fatalf("final state: query %q diverged from cold rebuild", q)
				}
			}
		})
	}
}
