package update

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// benchCorpus builds a 1k-entity catalog.
func benchCorpus(n int) *xmltree.Node {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<product><name>model%d</name><kind>%s</kind></product>",
			i, equivVocab[rng.Intn(len(equivVocab))])
	}
	b.WriteString("</catalog>")
	return xmltree.MustParseString(b.String())
}

func benchEntity(serial int) *xmltree.Node {
	return xmltree.MustParseString(fmt.Sprintf(
		"<product><name>fresh%d</name><kind>gps</kind></product>", serial))
}

// BenchmarkIncrementalAdd contrasts the live write path against the
// only alternative the engine had before it: a full rebuild per new
// entity. "live-add" measures sustained ingest on one engine —
// including a compaction every 64 adds, so the delta never grows
// unboundedly and the amortized merge cost is charged to the adds that
// caused it. "full-rebuild" measures one cold engine construction over
// the same 1k-entity corpus.
func BenchmarkIncrementalAdd(b *testing.B) {
	const entities = 1000
	b.Run("live-add", func(b *testing.B) {
		live := Wrap(xseek.NewParallel(benchCorpus(entities)))
		if _, err := live.AddEntity(benchEntity(0)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := live.AddEntity(benchEntity(i + 1)); err != nil {
				b.Fatal(err)
			}
			if (i+1)%64 == 0 {
				if err := live.Compact(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		root := benchCorpus(entities + 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := xseek.NewParallel(root)
			if eng == nil {
				b.Fatal("nil engine")
			}
		}
	})
}

// TestIncrementalAddSpeedup is the benchmark's claim as a regression
// guard: adding one entity to a 1k-entity corpus through the live
// write path must beat a full rebuild by a wide margin. The asserted
// floor is deliberately below the benchmarked ~10x+ ratio to keep CI
// timing noise from flaking the suite; the benchmark reports the real
// number.
func TestIncrementalAddSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const entities = 1000
	root := benchCorpus(entities)

	start := time.Now()
	live := Wrap(xseek.NewParallel(root))
	buildTime := time.Since(start)

	// Warm: the first mutation collects per-child schema evidence once.
	if _, err := live.AddEntity(benchEntity(0)); err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := live.AddEntity(benchEntity(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	addTime := time.Since(start) / rounds

	rebuilds := 3
	start = time.Now()
	for i := 0; i < rebuilds; i++ {
		xseek.NewParallel(root)
	}
	rebuildTime := time.Since(start) / time.Duration(rebuilds)

	ratio := float64(rebuildTime) / float64(addTime)
	t.Logf("cold build %v, rebuild %v, incremental add %v (%.1fx faster)",
		buildTime, rebuildTime, addTime, ratio)
	if ratio < 5 {
		t.Fatalf("incremental add only %.1fx faster than full rebuild (add %v, rebuild %v)",
			ratio, addTime, rebuildTime)
	}
}
