package update

import (
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xseek"
)

// This file is the live read path's lazy twin: composite posting
// sequences (base parts ⊕ delta − tombstones) exposed as iterators
// instead of materialized lists, driving the streamed SLCA and
// entity-mapping stages over the live tree. Snapshots are immutable,
// so a stream stays consistent across concurrent writes — it simply
// keeps reading the epoch it was opened on.

// termIter returns the lazy composite iterator for one term: the base
// parts and the delta list merged on the fly, tombstoned subtrees
// skipped during iteration. Equivalent to iterating state.list(term)
// without allocating the merged list. gallop selects skip-accelerated
// seeks (the streamed IndexedLookup discipline) over linear advance.
func (s *state) termIter(term string, gallop bool) index.Iter {
	mk := index.ListIterLinear
	if gallop {
		mk = index.ListIter
	}
	parts := s.src.postings(term)
	iters := make([]index.Iter, 0, len(parts)+1)
	for _, p := range parts {
		if len(p) > 0 {
			iters = append(iters, mk(p))
		}
	}
	if s.delta != nil {
		if l := s.delta.Lookup(term); len(l) > 0 {
			iters = append(iters, mk(l))
		}
	}
	if len(iters) == 0 {
		return index.EmptyIter()
	}
	it := index.MergeIter(iters...)
	if len(s.tombstones) > 0 {
		it = index.WithoutIter(it, s.tombstones)
	}
	return it
}

// planStats derives plan statistics from the maintained exact document
// frequencies — the live twin of index.StatsOf over materialized
// composite lists, available without materializing them.
func (s *state) planStats(terms []string) index.PlanStats {
	st := index.PlanStats{Lengths: make([]int, len(terms))}
	for i, t := range terms {
		n := s.df.get(t)
		st.Lengths[i] = n
		if i == 0 || n < st.Min {
			st.Min = n
		}
		if n > st.Max {
			st.Max = n
		}
	}
	if st.Min > 0 {
		st.Skew = float64(st.Max) / float64(st.Min)
	}
	return st
}

// slcaIter builds the lazy SLCA stage over the live composite
// sequences: the rarest term drives, the others answer neighbour
// probes with the planned seek discipline. Counts the planner decision
// on the engine's counters, like the eager Search does.
func (s *state) slcaIter(terms []string, counters *Engine) slca.Iterator {
	stats := s.planStats(terms)
	alg := slca.Plan(stats)
	if counters != nil {
		if alg == slca.AlgIndexedLookup {
			counters.plannerIndexed.Add(1)
		} else {
			counters.plannerScan.Add(1)
		}
	}
	gallop := alg == slca.AlgIndexedLookup
	smallest := 0
	for i, t := range terms {
		if s.df.get(t) < s.df.get(terms[smallest]) {
			smallest = i
		}
	}
	others := make([]index.Iter, 0, len(terms)-1)
	for i, t := range terms {
		if i != smallest {
			others = append(others, s.termIter(t, gallop))
		}
	}
	return slca.StreamIters(s.termIter(terms[smallest], gallop), others)
}

// compileStream tokenizes and keyword-checks a query against one live
// snapshot — the shared front half of the streamed read paths.
func compileStream(s *state, query string) ([]string, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, xseek.ErrEmptyQuery
	}
	var missing []string
	for _, t := range terms {
		if s.df.get(t) == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, &index.NoMatchError{Terms: missing}
	}
	return terms, nil
}

// SearchStream returns a lazy doc-order result cursor over the live
// corpus. The cursor reads the snapshot current at the call, so it
// stays valid — and internally consistent — while writes land; it just
// does not see them.
func (e *Engine) SearchStream(query string) (xseek.Cursor, error) {
	s := e.view()
	terms, err := compileStream(s, query)
	if err != nil {
		return nil, err
	}
	it := s.slcaIter(terms, e)
	return xseek.NewResultStream(xseek.NewEntityStream(it, s.root, s.schema)), nil
}

// streamScorer returns the live scorer for the query's terms: monotone
// counters over the materialized composite lists with the live IDF,
// replicating scoreResults' accumulation exactly so streamed scores
// are bit-identical to eager ones.
func (s *state) streamScorer(terms []string) xseek.Scorer {
	type termCursor struct {
		idf     float64
		counter index.Counter
	}
	lists := make(map[string]index.PostingList, len(terms))
	cursors := make([]termCursor, 0, len(terms))
	for _, t := range terms {
		df := s.df.get(t)
		if df == 0 {
			continue
		}
		l, ok := lists[t]
		if !ok {
			l = s.list(t)
			lists[t] = l
		}
		cursors = append(cursors, termCursor{idf: xseek.IDF(s.totalNodes, df), counter: index.NewCounter(l)})
	}
	return func(id dewey.ID) float64 {
		score := 0.0
		for i := range cursors {
			if tf := cursors[i].counter.CountUnder(id); tf > 0 {
				score += xseek.TermWeight(tf, cursors[i].idf)
			}
		}
		return score
	}
}

// SearchRankedPageStream runs the streamed ranked pipeline over the
// live corpus: lazy composite SLCAs, streamed entity mapping,
// bounded-heap top-k. Page, scores, and total are bit-identical to
// Search + RankPage over the same snapshot.
func (e *Engine) SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error) {
	s := e.view()
	terms, err := compileStream(s, query)
	if err != nil {
		return nil, 0, err
	}
	e.plannerStreamed.Add(1)
	it := s.slcaIter(terms, e)
	es := xseek.NewEntityStream(it, s.root, s.schema)
	return xseek.ConsumeRankedStream(es, opts, s.streamScorer(terms))
}

// EstimateResults bounds the query's live result count for stream
// planning: the smallest term's exact document frequency, 0 when the
// query cannot match.
func (e *Engine) EstimateResults(query string) int {
	s := e.view()
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return 0
	}
	est := -1
	for _, t := range terms {
		df := s.df.get(t)
		if df == 0 {
			return 0
		}
		if est == -1 || df < est {
			est = df
		}
	}
	return est
}

// StreamedDecisions reports how many ranked pages ran the streamed
// pipeline on the live read path.
func (e *Engine) StreamedDecisions() int64 { return e.plannerStreamed.Load() }
