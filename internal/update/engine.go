package update

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// JournalOp is one durable write: an entity addition (the fragment's
// XML, replayed through AddEntity) or a removal (the victim's top-level
// ordinal). The persistence layer (snapshot v3) records the journal of
// ops since the last compaction so a restart can replay pending writes
// onto the reloaded base.
type JournalOp struct {
	// Remove discriminates the variants.
	Remove bool
	// XML is the added entity's serialized subtree (Remove == false).
	XML string
	// Ord is the affected entity's top-level ordinal. For adds it is
	// informational (replay re-derives it); for removes it identifies
	// the victim.
	Ord int
}

// Engine is a live, updatable executor over one corpus. It implements
// the same query surface as xseek.Engine and shard.Engine — Search,
// CleanQuery, RankResults, RankPage, corpus statistics — and is safe
// for any number of concurrent readers alongside one writer at a time
// (writers serialize internally).
type Engine struct {
	writeMu sync.Mutex // serializes AddEntity / RemoveEntity / Compact
	cur     atomic.Pointer[state]

	// evidence caches each top-level child's schema contribution.
	// Writer-only (guarded by writeMu).
	evidence map[*xmltree.Node]*xseek.Evidence
	rootTag  string

	plannerIndexed, plannerScan atomic.Int64
	plannerStreamed             atomic.Int64
	updates, compactions        atomic.Int64
}

// topEntry locates one live top-level element child by its Dewey
// ordinal. Ordinals are never reused, so after removals the sequence
// may have holes; lookups binary-search it.
type topEntry struct {
	ord  int
	node *xmltree.Node
}

// state is one immutable snapshot of the live corpus. Every mutation
// installs a fresh state; readers load it once per operation and never
// see a torn view.
type state struct {
	epoch uint64

	// Exactly one of baseX/baseSh is non-nil: the immutable base
	// executor the pending writes are layered over.
	baseX    *xseek.Engine
	baseSh   *shard.Engine
	baseRoot *xmltree.Node
	src      source

	// root is the live document: a copy-on-write clone of the base root
	// whose children are exactly the live top-level subtrees (added
	// entities appended, removed ones absent). Subtrees below the root
	// are shared with the base and immutable.
	root   *xmltree.Node
	schema *xseek.Schema
	top    []topEntry
	// nextOrd is the Dewey ordinal the next added entity receives.
	// Ordinals of removed entities are never reused, so existing
	// postings stay unambiguous until compaction renumbers.
	nextOrd int

	tombstones []dewey.ID // sorted, top-level IDs of removed entities
	deltaRoots []*xmltree.Node
	delta      *index.Index // over deltaRoots; nil when none

	// Exact whole-corpus statistics for the live logical corpus.
	df         freqs
	totalNodes int
	elements   int
	// tagCounts tallies the live element children per tag — the root's
	// sibling-count evidence for the incremental schema fold.
	tagCounts map[string]int

	journal []JournalOp // pending ops since the last compaction
}

// source exposes a base executor's posting lists per term: one list for
// a monolithic base, spine + per-shard lists for a sharded one. Lists
// are document-ordered and pairwise disjoint.
type source interface {
	postings(term string) []index.PostingList
	// bounds returns each part's block-max score-bound metadata for
	// term (absent parts report empty bounds), or ok=false when any
	// part cannot provide it — a legacy compact payload, which makes
	// the WAND path fall back to unpruned streaming.
	bounds(term string) ([]*index.ListBounds, bool)
}

type monoSource struct{ x *xseek.Engine }

func (m monoSource) postings(term string) []index.PostingList {
	return []index.PostingList{m.x.Index().Lookup(term)}
}

func (m monoSource) bounds(term string) ([]*index.ListBounds, bool) {
	lb := m.x.Index().TermBounds(term)
	if lb == nil {
		return nil, false
	}
	return []*index.ListBounds{lb}, true
}

type shardSource struct{ idxs []*index.Index }

func (s shardSource) postings(term string) []index.PostingList {
	out := make([]index.PostingList, 0, len(s.idxs))
	for _, ix := range s.idxs {
		out = append(out, ix.Lookup(term))
	}
	return out
}

func (s shardSource) bounds(term string) ([]*index.ListBounds, bool) {
	out := make([]*index.ListBounds, 0, len(s.idxs))
	for _, ix := range s.idxs {
		lb := ix.TermBounds(term)
		if lb == nil {
			return nil, false
		}
		out = append(out, lb)
	}
	return out, true
}

// Wrap makes a monolithic engine updatable. The wrapped engine must not
// be mutated by anyone else afterwards.
func Wrap(x *xseek.Engine) *Engine { return wrap(x, nil) }

// WrapSharded makes a sharded engine updatable.
func WrapSharded(sh *shard.Engine) *Engine { return wrap(nil, sh) }

func wrap(x *xseek.Engine, sh *shard.Engine) *Engine {
	e := &Engine{evidence: make(map[*xmltree.Node]*xseek.Evidence)}
	s := baseState(x, sh, 0)
	e.rootTag = s.root.Tag
	e.cur.Store(s)
	return e
}

// baseSymbols returns the symbol table delta indexes should intern
// into: the base's, so merged lists stay ID-aligned.
func (s *state) baseSymbols() *index.SymbolTable {
	if s.baseSh != nil {
		return s.baseSh.Symbols()
	}
	return s.baseX.Index().Symbols()
}

// baseState builds the clean state over a freshly built (or compacted)
// base executor: no delta, no tombstones, statistics read off the base.
func baseState(x *xseek.Engine, sh *shard.Engine, epoch uint64) *state {
	s := &state{epoch: epoch, baseX: x, baseSh: sh}
	if sh != nil {
		s.baseRoot = sh.Root()
		s.schema = sh.Schema()
		idxs := append([]*index.Index{sh.SpineIndex()}, sh.ShardIndexes()...)
		s.src = shardSource{idxs: idxs}
		s.df = newFreqs(sh.TermFrequencies())
		s.totalNodes = sh.TotalNodes()
		s.elements = sh.IndexStats().IndexedElements
	} else {
		s.baseRoot = x.Root()
		s.schema = x.Schema()
		s.src = monoSource{x: x}
		base := make(map[string]int)
		x.Index().EachTerm(func(t string, df int) { base[t] = df })
		s.df = newFreqs(base)
		s.totalNodes = x.TotalNodes()
		s.elements = x.Index().Stats().IndexedElements
	}
	s.root = s.baseRoot
	s.top = topEntries(s.baseRoot)
	s.tagCounts = make(map[string]int, 4)
	for _, t := range s.top {
		s.tagCounts[t.node.Tag]++
	}
	s.nextOrd = len(s.baseRoot.Children)
	return s
}

// topEntries lists the root's element children with their ordinals. On
// a clean base tree child positions equal Dewey ordinals (AssignIDs
// numbers text children too).
func topEntries(root *xmltree.Node) []topEntry {
	var out []topEntry
	for i, c := range root.Children {
		if c.Kind == xmltree.Element {
			out = append(out, topEntry{ord: i, node: c})
		}
	}
	return out
}

// view returns the current immutable state.
func (e *Engine) view() *state { return e.cur.Load() }

// Epoch returns the state's monotonically increasing version. Any
// mutation — add, remove, or compaction — bumps it; the serving layer
// tags cache entries with it.
func (e *Engine) Epoch() uint64 { return e.view().epoch }

// BaseXseek returns the current monolithic base, or nil for a sharded
// one. Compaction replaces the base, so do not retain the result.
func (e *Engine) BaseXseek() *xseek.Engine { return e.view().baseX }

// BaseSharded returns the current sharded base, or nil.
func (e *Engine) BaseSharded() *shard.Engine { return e.view().baseSh }

// Pending reports the delta and tombstone backlog awaiting compaction.
func (e *Engine) Pending() (deltaEntities, tombstones int) {
	s := e.view()
	return len(s.deltaRoots), len(s.tombstones)
}

// PendingOps returns the journal length — the number of writes since
// the last compaction, the quantity auto-compaction thresholds watch.
func (e *Engine) PendingOps() int { return len(e.view().journal) }

// Updates returns the lifetime add+remove count.
func (e *Engine) Updates() int64 { return e.updates.Load() }

// Compactions returns the lifetime compaction count.
func (e *Engine) Compactions() int64 { return e.compactions.Load() }

// Journal returns a copy of the pending ops since the last compaction,
// in application order.
func (e *Engine) Journal() []JournalOp {
	s := e.view()
	out := make([]JournalOp, len(s.journal))
	copy(out, s.journal)
	return out
}

// SnapshotParts returns one consistent view of the persistence
// surface: the base tree, the base executor (exactly one non-nil), and
// the journal of pending writes layered over it.
func (e *Engine) SnapshotParts() (baseRoot *xmltree.Node, x *xseek.Engine, sh *shard.Engine, journal []JournalOp) {
	s := e.view()
	journal = make([]JournalOp, len(s.journal))
	copy(journal, s.journal)
	return s.baseRoot, s.baseX, s.baseSh, journal
}

// IndexStats returns aggregate index statistics for the live corpus,
// equal to the statistics a cold index over it would report.
func (e *Engine) IndexStats() index.Stats {
	s := e.view()
	return index.Stats{Terms: s.df.terms, Postings: s.df.postings, IndexedElements: s.elements}
}

// AddEntity appends an entity subtree as a new top-level child of the
// live document, assigns it fresh Dewey labels after the current last
// ordinal, and indexes it into the delta. The engine takes ownership of
// n (callers must not retain or mutate it). It returns the new entity's
// Dewey ID — the handle RemoveEntity accepts.
func (e *Engine) AddEntity(n *xmltree.Node) (dewey.ID, error) {
	if n == nil || n.Kind != xmltree.Element {
		return nil, fmt.Errorf("update: AddEntity requires an element subtree")
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	s := e.view()

	ord := s.nextOrd
	id := dewey.New(ord)
	n.AssignIDs(id)
	// Serialize for the journal before wiring the node in, so the
	// fragment round-trips standalone.
	fragment := xmltree.XMLString(n)

	ns := &state{
		epoch: s.epoch + 1,
		baseX: s.baseX, baseSh: s.baseSh, baseRoot: s.baseRoot, src: s.src,
		root:       rootWith(s.root, nil, n),
		nextOrd:    ord + 1,
		tombstones: s.tombstones,
		totalNodes: s.totalNodes + n.CountNodes(),
	}
	n.Parent = ns.root
	ns.top = append(s.top[:len(s.top):len(s.top)], topEntry{ord: ord, node: n})
	ns.deltaRoots = append(s.deltaRoots[:len(s.deltaRoots):len(s.deltaRoots)], n)

	// Index only the new entity and append its lists onto the existing
	// delta (the new ordinal follows every delta ordinal, so Merge's
	// document-order precondition holds): each add costs O(entity),
	// not a re-index of the whole pending delta.
	// The delta interns into the base's symbol table so base and delta
	// lists agree on symbol IDs — Merge's ID-direct fast path, and one
	// shared symbol section if this state gets snapshotted as v4.
	ent := index.BuildForestShared(ns.root, []*xmltree.Node{n}, s.baseSymbols())
	if s.delta != nil {
		ns.delta = index.Merge(ns.root, s.delta, ent)
	} else {
		ns.delta = ent
	}
	ns.df = s.df.adjusted(termContrib(ent), +1)
	ns.elements = s.elements + ent.Stats().IndexedElements

	ev := xseek.CollectEvidence(n, e.rootTag)
	e.evidence[n] = ev
	ns.tagCounts = copyCounts(s.tagCounts)
	ns.tagCounts[n.Tag]++
	ns.schema = s.schema.WithChildEvidence(ev, e.rootTag, n.Tag, ns.tagCounts[n.Tag])
	ns.journal = append(s.journal[:len(s.journal):len(s.journal)], JournalOp{XML: fragment, Ord: ord})

	e.updates.Add(1)
	e.cur.Store(ns)
	return id, nil
}

// RemoveEntity removes the top-level entity with the given Dewey ID
// from the live corpus: its subtree leaves the live tree and its ID
// joins the tombstone set, masking every base or delta posting under it
// until compaction physically drops them.
func (e *Engine) RemoveEntity(id dewey.ID) error {
	if len(id) != 1 {
		return fmt.Errorf("update: %v is not a top-level entity ID", id)
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	s := e.view()

	i := sort.Search(len(s.top), func(k int) bool { return s.top[k].ord >= id[0] })
	if i == len(s.top) || s.top[i].ord != id[0] {
		return fmt.Errorf("update: no live top-level entity %v", id)
	}
	victim := s.top[i].node

	ns := &state{
		epoch: s.epoch + 1,
		baseX: s.baseX, baseSh: s.baseSh, baseRoot: s.baseRoot, src: s.src,
		root:       rootWith(s.root, victim, nil),
		nextOrd:    s.nextOrd,
		deltaRoots: s.deltaRoots,
		delta:      s.delta,
		totalNodes: s.totalNodes - victim.CountNodes(),
	}
	ns.top = make([]topEntry, 0, len(s.top)-1)
	ns.top = append(append(ns.top, s.top[:i]...), s.top[i+1:]...)
	ns.tombstones = insertSorted(s.tombstones, id)

	vic := index.BuildForest(s.root, []*xmltree.Node{victim})
	ns.df = s.df.adjusted(termContrib(vic), -1)
	ns.elements = s.elements - vic.Stats().IndexedElements

	delete(e.evidence, victim)
	ns.tagCounts = copyCounts(s.tagCounts)
	if ns.tagCounts[victim.Tag]--; ns.tagCounts[victim.Tag] == 0 {
		delete(ns.tagCounts, victim.Tag)
	}
	// Removal can lower sibling maxima and instance tallies in ways a
	// fold cannot express; recompose from the cached evidence.
	ns.schema = e.composeSchema(ns)
	ns.journal = append(s.journal[:len(s.journal):len(s.journal)], JournalOp{Remove: true, Ord: id[0]})

	e.updates.Add(1)
	e.cur.Store(ns)
	return nil
}

// Compact folds the pending delta and tombstones back into a clean
// base under an epoch swap; in-flight readers keep their state and are
// never blocked. With only adds pending, the delta posting lists are
// appended onto the base index (and, for a sharded base, only the
// shards whose partition group changed are re-indexed); with tombstones
// pending, the live tree is pruned, renumbered, and rebuilt from
// scratch — the amortized cost that keeps every earlier per-op write
// cheap. Compacting with nothing pending is a no-op.
func (e *Engine) Compact() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	s := e.view()
	if len(s.tombstones) == 0 && len(s.deltaRoots) == 0 {
		return nil
	}

	var ns *state
	switch {
	case len(s.tombstones) == 0 && s.baseSh == nil:
		merged := index.Merge(s.root, s.baseX.Index(), s.delta)
		idf := make(map[string]float64, s.df.terms)
		s.df.each(func(t string, n int) {
			idf[t] = xseek.IDF(s.totalNodes, n)
		})
		x := xseek.FromPartsRanked(s.root, merged, xseek.InferSchemaParallel(s.root, 0), s.totalNodes, idf)
		ns = baseState(x, nil, s.epoch+1)
	case len(s.tombstones) == 0:
		sh, _ := shard.BuildReusing(s.root, s.baseSh.ShardCount(), s.baseSh)
		ns = baseState(nil, sh, s.epoch+1)
	default:
		fresh := rebuildTree(s.root)
		if s.baseSh != nil {
			ns = baseState(nil, shard.Build(fresh, s.baseSh.ShardCount()), s.epoch+1)
		} else {
			ns = baseState(xseek.NewParallel(fresh), nil, s.epoch+1)
		}
		// The rebuild renumbered every subtree: cached evidence keyed by
		// the old nodes no longer describes the tree. Recollect lazily.
		e.evidence = make(map[*xmltree.Node]*xseek.Evidence)
	}

	e.compactions.Add(1)
	e.cur.Store(ns)
	return nil
}

// composeSchema recomposes the exact whole-corpus schema from the
// cached per-child evidence. Called with writeMu held.
func (e *Engine) composeSchema(s *state) *xseek.Schema {
	children := make([]*xmltree.Node, len(s.top))
	for i, t := range s.top {
		children[i] = t.node
	}
	return xseek.ComposeSchema(s.root, children, e.childEvidence)
}

func (e *Engine) childEvidence(c *xmltree.Node) *xseek.Evidence {
	if ev := e.evidence[c]; ev != nil {
		return ev
	}
	ev := xseek.CollectEvidence(c, e.rootTag)
	e.evidence[c] = ev
	return ev
}

// rootWith returns a copy-on-write clone of root whose children are
// root's minus `without` (when non-nil) plus `extra` appended (when
// non-nil). The clone is what makes reads lock-free: concurrent readers
// keep walking the old root while the new state exposes the new one,
// and the shared child subtrees are immutable either way.
func rootWith(root *xmltree.Node, without, extra *xmltree.Node) *xmltree.Node {
	nr := &xmltree.Node{Kind: root.Kind, Tag: root.Tag, Text: root.Text, ID: root.ID}
	if len(root.Attrs) > 0 {
		nr.Attrs = make([]xmltree.Attr, len(root.Attrs))
		copy(nr.Attrs, root.Attrs)
	}
	n := len(root.Children)
	if extra != nil {
		n++
	}
	nr.Children = make([]*xmltree.Node, 0, n)
	for _, c := range root.Children {
		if c != without {
			nr.Children = append(nr.Children, c)
		}
	}
	if extra != nil {
		nr.Children = append(nr.Children, extra)
	}
	return nr
}

// rebuildTree deep-clones the live document into a fresh, compactly
// renumbered tree, leaving the old one untouched for in-flight readers.
func rebuildTree(root *xmltree.Node) *xmltree.Node {
	fresh := &xmltree.Node{Kind: root.Kind, Tag: root.Tag, Text: root.Text}
	if len(root.Attrs) > 0 {
		fresh.Attrs = make([]xmltree.Attr, len(root.Attrs))
		copy(fresh.Attrs, root.Attrs)
	}
	for _, c := range root.Children {
		fresh.AppendChild(c.Clone())
	}
	fresh.AssignIDs(nil)
	return fresh
}

// termContrib collects an entity index's per-term document counts.
func termContrib(idx *index.Index) map[string]int {
	out := make(map[string]int)
	idx.EachTerm(func(t string, df int) { out[t] = df })
	return out
}

func copyCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for t, n := range m {
		out[t] = n
	}
	return out
}

// insertSorted returns a fresh sorted ID list with id inserted.
func insertSorted(ids []dewey.ID, id dewey.ID) []dewey.ID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k].Compare(id) >= 0 })
	out := make([]dewey.ID, 0, len(ids)+1)
	out = append(out, ids[:i]...)
	out = append(out, id)
	return append(out, ids[i:]...)
}
