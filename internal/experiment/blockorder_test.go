package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xseek"
)

func TestBlockOrderAblation(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 3, Movies: 120})
	eng := xseek.New(root)
	stats, err := ResultStats(eng, "horror vampire")
	if err != nil {
		t.Fatal(err)
	}
	res := BlockOrderAblation(stats, core.Options{SizeBound: 8, Threshold: 0.1}, 5, 42)
	if res.Trials != 5 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Min > res.Baseline || res.Max < res.Baseline {
		t.Fatalf("baseline %d outside [%d,%d]", res.Baseline, res.Min, res.Max)
	}
	if res.Min <= 0 {
		t.Fatalf("min DoD = %d, expected differentiation", res.Min)
	}
	// The fixpoint should be fairly stable across orders: the spread
	// must stay within 20% of the baseline (a loose sanity band — a
	// huge spread would mean the algorithm is order-chaotic).
	if res.Baseline > 0 && float64(res.Max-res.Min) > 0.2*float64(res.Baseline) {
		t.Fatalf("block order spread too large: min=%d max=%d baseline=%d",
			res.Min, res.Max, res.Baseline)
	}
}
