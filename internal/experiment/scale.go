package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
)

// ScalePoint measures DFS generation at one result-set size.
type ScalePoint struct {
	Results int
	DoD     map[core.Algorithm]int
	Elapsed map[core.Algorithm]time.Duration
}

// ScaleSweep measures how the algorithms behave as the number of
// compared results grows: the same statistics list truncated to
// increasing prefixes. This exposes the paper's Figure 4(b) crossover
// — single-swap is cheaper on small comparisons, while multi-swap's
// bigger steps converge in fewer rounds and win on large ones.
func ScaleSweep(stats []*feature.Stats, algs []core.Algorithm, opts core.Options, sizes []int) []ScalePoint {
	var out []ScalePoint
	for _, n := range sizes {
		if n > len(stats) {
			n = len(stats)
		}
		p := ScalePoint{
			Results: n,
			DoD:     make(map[core.Algorithm]int),
			Elapsed: make(map[core.Algorithm]time.Duration),
		}
		subset := stats[:n]
		for _, alg := range algs {
			start := time.Now()
			dfss := core.Generate(alg, subset, opts)
			p.Elapsed[alg] = time.Since(start)
			p.DoD[alg] = core.TotalDoD(dfss, normThreshold(opts))
		}
		out = append(out, p)
		if n == len(stats) {
			break
		}
	}
	return out
}

// WriteScale renders a scale sweep with both DoD and time columns.
func WriteScale(w io.Writer, title string, points []ScalePoint) {
	fmt.Fprintln(w, title)
	if len(points) == 0 {
		return
	}
	var algs []core.Algorithm
	for a := range points[0].DoD {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	header := []string{"results"}
	for _, a := range algs {
		header = append(header, string(a)+" DoD", string(a)+" time")
	}
	rows := [][]string{header}
	for _, p := range points {
		row := []string{fmt.Sprintf("%d", p.Results)}
		for _, a := range algs {
			row = append(row,
				fmt.Sprintf("%d", p.DoD[a]),
				fmt.Sprintf("%.4fs", p.Elapsed[a].Seconds()))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}
