package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xseek"
)

func TestScaleSweep(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 200})
	eng := xseek.New(root)
	stats, err := ResultStats(eng, "action revenge")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 10 {
		t.Fatalf("broad query returned only %d results", len(stats))
	}
	algs := []core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap}
	pts := ScaleSweep(stats, algs, core.Options{SizeBound: 8, Threshold: 0.1}, []int{2, 5, 10, 10_000})
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Oversized request clamps to the available results and stops.
	last := pts[len(pts)-1]
	if last.Results != len(stats) {
		t.Fatalf("final point has %d results, want %d", last.Results, len(stats))
	}
	// DoD grows with the number of compared results (more pairs).
	for i := 1; i < len(pts); i++ {
		if pts[i].DoD[core.AlgMultiSwap] < pts[i-1].DoD[core.AlgMultiSwap] {
			t.Fatalf("DoD shrank as results grew: %v", pts)
		}
	}
	var b strings.Builder
	WriteScale(&b, "scale", pts)
	out := b.String()
	if !strings.Contains(out, "multi-swap DoD") || !strings.Contains(out, "single-swap time") {
		t.Fatalf("scale table:\n%s", out)
	}
}

func TestScaleSweepEmpty(t *testing.T) {
	var b strings.Builder
	WriteScale(&b, "empty", nil)
	if !strings.Contains(b.String(), "empty") {
		t.Fatal("title missing")
	}
}

func TestRichnessSweep(t *testing.T) {
	algs := []core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap}
	pts, err := RichnessSweep(1, "gps", algs, core.Options{SizeBound: 8, Threshold: 0.1}, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// More reviews per product -> richer feature statistics.
	if pts[1].AvgFeatures <= pts[0].AvgFeatures {
		t.Fatalf("feature richness did not grow: %.1f -> %.1f", pts[0].AvgFeatures, pts[1].AvgFeatures)
	}
	for _, p := range pts {
		if p.DoD[core.AlgMultiSwap] <= 0 {
			t.Fatalf("no differentiation at richness %d", p.ReviewsPerProduct)
		}
	}
	var b strings.Builder
	WriteRichness(&b, "richness", pts)
	if !strings.Contains(b.String(), "avg features") {
		t.Fatalf("richness table:\n%s", b.String())
	}
	// Empty input renders just the title.
	b.Reset()
	WriteRichness(&b, "richness", nil)
	if !strings.Contains(b.String(), "richness") {
		t.Fatal("empty richness table missing title")
	}
}

func TestRichnessSweepBadQuery(t *testing.T) {
	if _, err := RichnessSweep(1, "zzznope", []core.Algorithm{core.AlgTopK}, core.Options{}, []int{5}); err == nil {
		t.Fatal("bad query should error")
	}
}
