package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xseek"
)

func smallMovies(t *testing.T) *Report {
	t.Helper()
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 120})
	rep, err := Run(root, dataset.MovieQueries()[:4],
		[]core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap},
		core.Options{SizeBound: 8, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunProducesAllCells(t *testing.T) {
	rep := smallMovies(t)
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.NumResults < 2 {
			t.Fatalf("%s returned %d results", run.ID, run.NumResults)
		}
		for _, alg := range rep.Algorithms {
			if _, ok := run.DoD[alg]; !ok {
				t.Fatalf("%s missing DoD for %s", run.ID, alg)
			}
			if run.Elapsed[alg] <= 0 {
				t.Fatalf("%s has non-positive time for %s", run.ID, alg)
			}
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	// The headline result: multi-swap DoD >= single-swap DoD on (at
	// least nearly) every query, per Figure 4(a).
	rep := smallMovies(t)
	worse := 0
	for _, run := range rep.Runs {
		if run.DoD[core.AlgMultiSwap] < run.DoD[core.AlgSingleSwap] {
			worse++
			t.Logf("%s: multi %d < single %d", run.ID, run.DoD[core.AlgMultiSwap], run.DoD[core.AlgSingleSwap])
		}
	}
	if worse > 1 {
		t.Fatalf("multi-swap lost on %d/4 queries", worse)
	}
}

func TestTablesRender(t *testing.T) {
	rep := smallMovies(t)
	var a, b strings.Builder
	rep.WriteDoDTable(&a)
	rep.WriteTimeTable(&b)
	for _, want := range []string{"QM1", "QM4", "single-swap", "multi-swap"} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("DoD table missing %q:\n%s", want, a.String())
		}
		if !strings.Contains(b.String(), want) {
			t.Fatalf("time table missing %q:\n%s", want, b.String())
		}
	}
	if !strings.Contains(b.String(), "s") {
		t.Fatal("time table has no seconds")
	}
}

func TestRunBadQuery(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 50})
	_, err := Run(root, []string{"zzzznope"}, []core.Algorithm{core.AlgTopK}, core.Options{})
	if err == nil {
		t.Fatal("unmatched query should surface an error")
	}
}

func TestThresholdSweep(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 2, Movies: 100})
	eng := xseek.New(root)
	stats, err := ResultStats(eng, dataset.MovieQueries()[0])
	if err != nil {
		t.Fatal(err)
	}
	pts := ThresholdSweep(stats, []core.Algorithm{core.AlgMultiSwap}, 6, []float64{0.05, 0.1, 0.5, 2.0})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Stricter thresholds (larger x) can only shrink the set of
	// differentiable (type, value) witnesses, so optimal DoD is
	// non-increasing in x; local search should follow that trend.
	for i := 1; i < len(pts); i++ {
		if pts[i].DoD[core.AlgMultiSwap] > pts[i-1].DoD[core.AlgMultiSwap]+2 {
			t.Fatalf("DoD rose sharply with stricter threshold: %v", pts)
		}
	}
	var b strings.Builder
	WriteSweep(&b, "threshold sweep", "x", pts)
	if !strings.Contains(b.String(), "0.05") {
		t.Fatalf("sweep table:\n%s", b.String())
	}
}

func TestSizeBoundSweep(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 2, Movies: 100})
	eng := xseek.New(root)
	stats, err := ResultStats(eng, dataset.MovieQueries()[1])
	if err != nil {
		t.Fatal(err)
	}
	pts := SizeBoundSweep(stats, []core.Algorithm{core.AlgMultiSwap}, 0.1, []int{2, 4, 8, 16})
	for i := 1; i < len(pts); i++ {
		// More budget, weakly more differentiation (allow tiny local
		// search wobble of 1).
		if pts[i].DoD[core.AlgMultiSwap]+1 < pts[i-1].DoD[core.AlgMultiSwap] {
			t.Fatalf("DoD fell as L grew: %v", pts)
		}
	}
}
