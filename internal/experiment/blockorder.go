package experiment

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/feature"
)

// BlockOrderStats summarizes the DoD spread of multi-swap under
// different coordinate (block) orders — the DESIGN.md ablation asking
// how sensitive the local optimum is to visiting results round-robin
// in document order versus random orders.
type BlockOrderStats struct {
	Baseline int // DoD with the natural (document) order
	Min, Max int // DoD range over random permutations
	Trials   int
}

// BlockOrderAblation runs multi-swap on `trials` random permutations
// of the result list (total DoD is order-invariant as an objective,
// but coordinate ascent's path and fixpoint are not) and reports the
// spread against the natural order.
func BlockOrderAblation(stats []*feature.Stats, opts core.Options, trials int, seed int64) BlockOrderStats {
	x := normThreshold(opts)
	out := BlockOrderStats{
		Baseline: core.TotalDoD(core.MultiSwap(stats, opts), x),
		Trials:   trials,
	}
	out.Min, out.Max = out.Baseline, out.Baseline
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		perm := make([]*feature.Stats, len(stats))
		for j, p := range r.Perm(len(stats)) {
			perm[j] = stats[p]
		}
		dod := core.TotalDoD(core.MultiSwap(perm, opts), x)
		if dod < out.Min {
			out.Min = dod
		}
		if dod > out.Max {
			out.Max = dod
		}
	}
	return out
}
