// Package experiment is the evaluation harness: it runs keyword
// queries end-to-end (search → entity identification → feature
// extraction → DFS generation), measuring the quality (DoD, Figure
// 4(a)) and processing time (Figure 4(b)) of each DFS algorithm, and
// renders the paper-style series. It also hosts the ablation sweeps
// DESIGN.md calls out (threshold x, size bound L).
package experiment
