package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFocusRecovery(t *testing.T) {
	algs := []core.Algorithm{core.AlgTopK, core.AlgMultiSwap}
	r, err := RunFocusRecovery(1, "men jackets", algs,
		core.Options{SizeBound: 12, Threshold: 0.1, Pad: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Brands < 3 {
		t.Fatalf("brands = %d", r.Brands)
	}
	for _, alg := range algs {
		if r.SubcatRate[alg] < 0 || r.SubcatRate[alg] > 1 {
			t.Fatalf("%s subcat rate = %f", alg, r.SubcatRate[alg])
		}
	}
	// The planted focuses dominate their brands' distributions, so the
	// multi-swap table must surface the feature focus for most brands
	// at a 12-feature budget.
	if r.FeatureRate[core.AlgMultiSwap] < 0.5 {
		t.Fatalf("multi-swap recovered only %.0f%% of feature focuses",
			r.FeatureRate[core.AlgMultiSwap]*100)
	}
	var b strings.Builder
	WriteFocusRecovery(&b, "focus recovery", r)
	if !strings.Contains(b.String(), "multi-swap") || !strings.Contains(b.String(), "% of") {
		t.Fatalf("table:\n%s", b.String())
	}
}

func TestFocusRecoveryBadQuery(t *testing.T) {
	if _, err := RunFocusRecovery(1, "zzznope", []core.Algorithm{core.AlgTopK}, core.Options{}); err == nil {
		t.Fatal("bad query should error")
	}
}
