package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// QueryRun is the measurement of one query under several algorithms.
type QueryRun struct {
	ID         string // e.g. "QM1"
	Query      string
	NumResults int
	DoD        map[core.Algorithm]int
	Elapsed    map[core.Algorithm]time.Duration
}

// Report is a complete Figure-4-style experiment: one row per query.
type Report struct {
	Runs       []QueryRun
	Algorithms []core.Algorithm
	Opts       core.Options
}

// ResultStats runs a query and extracts per-result feature statistics
// — the common prefix of every experiment.
func ResultStats(eng *xseek.Engine, query string) ([]*feature.Stats, error) {
	results, err := eng.Search(query)
	if err != nil {
		return nil, fmt.Errorf("experiment: query %q: %w", query, err)
	}
	stats := make([]*feature.Stats, len(results))
	for i, r := range results {
		stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
	}
	return stats, nil
}

// Run executes every query with every algorithm over the document.
// Queries are labelled QM1..QMn in order, matching the paper's axis.
func Run(root *xmltree.Node, queries []string, algs []core.Algorithm, opts core.Options) (*Report, error) {
	eng := xseek.New(root)
	rep := &Report{Algorithms: algs, Opts: opts}
	for qi, q := range queries {
		stats, err := ResultStats(eng, q)
		if err != nil {
			return nil, err
		}
		run := QueryRun{
			ID:         fmt.Sprintf("QM%d", qi+1),
			Query:      q,
			NumResults: len(stats),
			DoD:        make(map[core.Algorithm]int),
			Elapsed:    make(map[core.Algorithm]time.Duration),
		}
		for _, alg := range algs {
			start := time.Now()
			dfss := core.Generate(alg, stats, opts)
			run.Elapsed[alg] = time.Since(start)
			run.DoD[alg] = core.TotalDoD(dfss, normThreshold(opts))
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

func normThreshold(o core.Options) float64 {
	if o.Threshold <= 0 {
		return core.DefaultThreshold
	}
	return o.Threshold
}

// WriteDoDTable renders the Figure 4(a) series: DoD per query per
// algorithm.
func (r *Report) WriteDoDTable(w io.Writer) {
	fmt.Fprintln(w, "Figure 4(a) — Quality of DFSs (total DoD per query)")
	r.writeSeries(w, func(run QueryRun, alg core.Algorithm) string {
		return fmt.Sprintf("%d", run.DoD[alg])
	})
}

// WriteTimeTable renders the Figure 4(b) series: processing time per
// query per algorithm.
func (r *Report) WriteTimeTable(w io.Writer) {
	fmt.Fprintln(w, "Figure 4(b) — Processing time per query")
	r.writeSeries(w, func(run QueryRun, alg core.Algorithm) string {
		return fmt.Sprintf("%.4fs", run.Elapsed[alg].Seconds())
	})
}

func (r *Report) writeSeries(w io.Writer, cell func(QueryRun, core.Algorithm) string) {
	cols := []string{"query", "keywords", "results"}
	for _, alg := range r.Algorithms {
		cols = append(cols, string(alg))
	}
	rows := [][]string{cols}
	for _, run := range r.Runs {
		row := []string{run.ID, run.Query, fmt.Sprintf("%d", run.NumResults)}
		for _, alg := range r.Algorithms {
			row = append(row, cell(run, alg))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}

func writeAligned(w io.Writer, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// SweepPoint is one measurement in a parameter sweep.
type SweepPoint struct {
	Param float64
	DoD   map[core.Algorithm]int
}

// ThresholdSweep measures DoD as the differentiation threshold x
// varies, on a fixed query's results (ablation of the paper's x=10%).
func ThresholdSweep(stats []*feature.Stats, algs []core.Algorithm, sizeBound int, thresholds []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, x := range thresholds {
		opts := core.Options{SizeBound: sizeBound, Threshold: x}
		p := SweepPoint{Param: x, DoD: make(map[core.Algorithm]int)}
		for _, alg := range algs {
			p.DoD[alg] = core.TotalDoD(core.Generate(alg, stats, opts), x)
		}
		out = append(out, p)
	}
	return out
}

// SizeBoundSweep measures DoD as L varies (ablation of the size
// bound's effect; DoD is non-decreasing in L for each algorithm's
// optimum but local search may wobble).
func SizeBoundSweep(stats []*feature.Stats, algs []core.Algorithm, threshold float64, bounds []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(bounds))
	for _, l := range bounds {
		opts := core.Options{SizeBound: l, Threshold: threshold}
		p := SweepPoint{Param: float64(l), DoD: make(map[core.Algorithm]int)}
		for _, alg := range algs {
			p.DoD[alg] = core.TotalDoD(core.Generate(alg, stats, opts), threshold)
		}
		out = append(out, p)
	}
	return out
}

// WriteSweep renders a sweep as an aligned table.
func WriteSweep(w io.Writer, title, paramName string, points []SweepPoint) {
	fmt.Fprintln(w, title)
	if len(points) == 0 {
		return
	}
	var algs []core.Algorithm
	for a := range points[0].DoD {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	rows := [][]string{{paramName}}
	for _, a := range algs {
		rows[0] = append(rows[0], string(a))
	}
	for _, p := range points {
		row := []string{fmt.Sprintf("%g", p.Param)}
		for _, a := range algs {
			row = append(row, fmt.Sprintf("%d", p.DoD[a]))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}
