package experiment

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// FocusRecovery quantifies the demo's Outdoor Retailer claim — that
// the comparison table lets a user learn each brand's specialty — as a
// measurable proxy for the companion paper's user study. The retailer
// generator plants a ground-truth focus (dominant jacket subcategory
// and dominant product feature) per brand; this experiment builds the
// brand comparison for the walkthrough query and reports, per
// algorithm, the fraction of brands whose planted focus values appear
// in their own DFS.
type FocusRecovery struct {
	Brands int
	// SubcatRate / FeatureRate are in [0,1]: how many brands' focus
	// subcategory / feature the DFS surfaces.
	SubcatRate  map[core.Algorithm]float64
	FeatureRate map[core.Algorithm]float64
}

// RunFocusRecovery executes the experiment on a fresh retailer corpus.
func RunFocusRecovery(seed int64, query string, algs []core.Algorithm, opts core.Options) (*FocusRecovery, error) {
	root := dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed})
	eng := xseek.New(root)
	results, err := eng.Search(query)
	if err != nil {
		return nil, fmt.Errorf("experiment: focus recovery: %w", err)
	}

	// Lift product results to their brands, deduplicated.
	seen := make(map[string]bool)
	var brands []*xmltree.Node
	for _, r := range results {
		for cur := r.Node; cur != nil; cur = cur.Parent {
			if cur.Tag == "brand" {
				if key := cur.ID.String(); !seen[key] {
					seen[key] = true
					brands = append(brands, cur)
				}
				break
			}
		}
	}
	if len(brands) < 2 {
		return nil, fmt.Errorf("experiment: focus recovery: only %d brands matched %q", len(brands), query)
	}

	stats := make([]*feature.Stats, len(brands))
	labels := make([]string, len(brands))
	for i, b := range brands {
		label := b.FirstChildElement("name").Value()
		labels[i] = label
		stats[i] = feature.Extract(b, eng.Schema(), label)
	}
	truth := make(map[string]dataset.BrandFocus)
	for _, f := range dataset.BrandFocuses() {
		truth[f.Brand] = f
	}

	out := &FocusRecovery{
		Brands:      len(brands),
		SubcatRate:  make(map[core.Algorithm]float64),
		FeatureRate: make(map[core.Algorithm]float64),
	}
	for _, alg := range algs {
		dfss := core.Generate(alg, stats, opts)
		subcat, feat := 0, 0
		for i, d := range dfss {
			spec, ok := truth[labels[i]]
			if !ok {
				continue
			}
			if dfsShowsValue(d, "subcategory", spec.Subcategory) {
				subcat++
			}
			if dfsShowsValue(d, "feature", spec.Feature) {
				feat++
			}
		}
		out.SubcatRate[alg] = float64(subcat) / float64(len(brands))
		out.FeatureRate[alg] = float64(feat) / float64(len(brands))
	}
	return out, nil
}

// dfsShowsValue reports whether the DFS displays the given value under
// any feature type with the given attribute name.
func dfsShowsValue(d *core.DFS, attribute, value string) bool {
	for _, f := range d.Features() {
		if f.Attribute == attribute && f.Value == value {
			return true
		}
	}
	return false
}

// WriteFocusRecovery renders the experiment as an aligned table.
func WriteFocusRecovery(w io.Writer, title string, r *FocusRecovery) {
	fmt.Fprintln(w, title)
	var algs []core.Algorithm
	for a := range r.SubcatRate {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	rows := [][]string{{"algorithm", "subcategory focus recovered", "feature focus recovered"}}
	for _, a := range algs {
		rows = append(rows, []string{
			string(a),
			fmt.Sprintf("%.0f%% of %d brands", r.SubcatRate[a]*100, r.Brands),
			fmt.Sprintf("%.0f%% of %d brands", r.FeatureRate[a]*100, r.Brands),
		})
	}
	writeAligned(w, rows)
}
