package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xseek"
)

// RichnessPoint measures DFS generation as results get feature-richer.
type RichnessPoint struct {
	ReviewsPerProduct int     // corpus knob driving feature richness
	AvgFeatures       float64 // mean distinct features per result
	AvgTypes          float64 // mean distinct feature types per result
	DoD               map[core.Algorithm]int
	Elapsed           map[core.Algorithm]time.Duration
}

// RichnessSweep grows the Product Reviews corpus's per-product review
// count, which enriches each result's feature statistics (more values
// per type, heavier tails), and measures DoD and generation time on a
// fixed query — the full paper's "vary the number of features m"
// experiment, reproduced through the corpus knob that controls m.
func RichnessSweep(seed int64, query string, algs []core.Algorithm, opts core.Options, reviewCounts []int) ([]RichnessPoint, error) {
	var out []RichnessPoint
	for _, rc := range reviewCounts {
		root := dataset.ProductReviews(dataset.ReviewsConfig{
			Seed:                seed,
			ProductsPerCategory: 6,
			MinReviews:          rc,
			MaxReviews:          rc,
		})
		eng := xseek.New(root)
		stats, err := ResultStats(eng, query)
		if err != nil {
			return nil, fmt.Errorf("experiment: richness %d: %w", rc, err)
		}
		p := RichnessPoint{
			ReviewsPerProduct: rc,
			DoD:               make(map[core.Algorithm]int),
			Elapsed:           make(map[core.Algorithm]time.Duration),
		}
		for _, s := range stats {
			p.AvgFeatures += float64(s.FeatureCount())
			p.AvgTypes += float64(s.TypeCount())
		}
		if len(stats) > 0 {
			p.AvgFeatures /= float64(len(stats))
			p.AvgTypes /= float64(len(stats))
		}
		for _, alg := range algs {
			start := time.Now()
			dfss := core.Generate(alg, stats, opts)
			p.Elapsed[alg] = time.Since(start)
			p.DoD[alg] = core.TotalDoD(dfss, normThreshold(opts))
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteRichness renders the sweep.
func WriteRichness(w io.Writer, title string, points []RichnessPoint) {
	fmt.Fprintln(w, title)
	if len(points) == 0 {
		return
	}
	var algs []core.Algorithm
	for a := range points[0].DoD {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	header := []string{"reviews/product", "avg features", "avg types"}
	for _, a := range algs {
		header = append(header, string(a)+" DoD", string(a)+" time")
	}
	rows := [][]string{header}
	for _, p := range points {
		row := []string{
			fmt.Sprintf("%d", p.ReviewsPerProduct),
			fmt.Sprintf("%.1f", p.AvgFeatures),
			fmt.Sprintf("%.1f", p.AvgTypes),
		}
		for _, a := range algs {
			row = append(row,
				fmt.Sprintf("%d", p.DoD[a]),
				fmt.Sprintf("%.4fs", p.Elapsed[a].Seconds()))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}
