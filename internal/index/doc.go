// Package index implements the keyword-search substrate of XSACT: a
// tokenizer and an inverted index mapping terms to document-ordered
// lists of Dewey IDs of the XML nodes whose direct text (or tag name)
// contains the term. The SLCA algorithms in package slca consume these
// posting lists.
package index
