package index

import (
	"sort"

	"repro/internal/dewey"
)

// This file is the lazy counterpart of merge.go: pull-based cursors
// over document-ordered posting lists, composable the same way the
// eager MergeLists/Without compose materialized lists. The streaming
// SLCA algorithms (package slca) and the live read path (package
// update) are built on these, so a top-k query touches only the
// postings its result window actually needs.

// Iter is a forward cursor over a document-ordered posting sequence.
// The cursor sits before an element; Peek returns it without moving,
// Next returns it and moves past, and Seek moves forward to the first
// element >= id (and peeks it). Seek targets must be non-decreasing
// across calls — the cursor never moves backward.
//
// PredOf answers the one backward-looking question SLCA needs — the
// last element strictly before id in the whole sequence — without
// moving the cursor, so a streaming driver can probe both neighbours
// of a position the way the eager algorithms do.
type Iter interface {
	// Peek returns the element at the cursor without advancing.
	Peek() (dewey.ID, bool)
	// Next returns the element at the cursor and advances past it.
	Next() (dewey.ID, bool)
	// Seek advances the cursor to the first element >= id and returns
	// it (peek semantics). Targets must be non-decreasing.
	Seek(id dewey.ID) (dewey.ID, bool)
	// PredOf returns the last element of the whole sequence that is
	// strictly before id in document order. It never moves the cursor.
	PredOf(id dewey.ID) (dewey.ID, bool)
}

// sliceIter cursors over one materialized posting list. Seek uses
// galloping (exponential) search from the cursor — O(log gap), so a
// full pass of monotone seeks costs O(n) and a sparse pass costs near
// the information-theoretic bound — optionally accelerated by a
// prebuilt skip ladder (see skips.go).
type sliceIter struct {
	list  PostingList
	skips PostingList // skips[b] == list[(b+1)*skipInterval-1]; may be nil
	pos   int
	// linear makes Seek advance one element at a time — the merge
	// discipline of the streaming ScanEager variant, which is cheaper
	// than galloping when the driver is about as dense as this list.
	linear bool
}

// ListIter returns a galloping cursor over list.
func ListIter(list PostingList) Iter { return &sliceIter{list: list} }

// ListIterLinear returns a cursor whose Seek advances linearly, for
// callers that expect to visit most elements (streamed scans).
func ListIterLinear(list PostingList) Iter { return &sliceIter{list: list, linear: true} }

func (it *sliceIter) Peek() (dewey.ID, bool) {
	if it.pos >= len(it.list) {
		return nil, false
	}
	return it.list[it.pos], true
}

func (it *sliceIter) Next() (dewey.ID, bool) {
	if it.pos >= len(it.list) {
		return nil, false
	}
	v := it.list[it.pos]
	it.pos++
	return v, true
}

func (it *sliceIter) Seek(id dewey.ID) (dewey.ID, bool) {
	n := len(it.list)
	if it.pos >= n {
		return nil, false
	}
	if it.list[it.pos].Compare(id) >= 0 {
		return it.list[it.pos], true
	}
	if it.linear {
		for it.pos < n && it.list[it.pos].Compare(id) < 0 {
			it.pos++
		}
	} else {
		it.gallop(id)
	}
	if it.pos >= n {
		return nil, false
	}
	return it.list[it.pos], true
}

// gallop advances pos to the first element >= id. Precondition:
// list[pos] < id and pos < len(list).
func (it *sliceIter) gallop(id dewey.ID) {
	n := len(it.list)
	lo := it.pos + 1
	if it.skips != nil {
		// Whole blocks whose last element is < id cannot contain the
		// target. Gallop the ladder forward from the cursor's own block
		// — monotone seek sequences mostly land in the same or the next
		// block, so this costs O(log blocks-skipped) instead of a
		// binary search over the whole ladder — then binary-search the
		// bracketed ladder range and finally the surviving block.
		nb := len(it.skips)
		sb := it.pos / skipInterval
		if sb < nb && it.skips[sb].Compare(id) < 0 {
			bound := 1
			for sb+bound < nb && it.skips[sb+bound].Compare(id) < 0 {
				bound <<= 1
			}
			start := sb + 1
			if bound > 1 {
				start = sb + bound>>1 // previous probe, known < id
			}
			end := sb + bound + 1
			if end > nb {
				end = nb
			}
			sb = start + sort.Search(end-start, func(k int) bool { return it.skips[start+k].Compare(id) >= 0 })
		}
		if p := sb * skipInterval; p > lo {
			lo = p
		}
		hi := n
		if sb < len(it.skips) {
			if h := (sb + 1) * skipInterval; h < hi {
				hi = h
			}
		}
		it.pos = lo + sort.Search(hi-lo, func(k int) bool { return it.list[lo+k].Compare(id) >= 0 })
		return
	}
	// Exponential search from the cursor: double the step until the
	// probe reaches an element >= id (or the end), then binary-search
	// the bracketed range.
	bound := 1
	for lo+bound < n && it.list[lo+bound].Compare(id) < 0 {
		bound <<= 1
	}
	start := lo
	if bound > 1 {
		start = lo + bound>>1 // previous probe, known < id
	}
	end := lo + bound + 1
	if end > n {
		end = n
	}
	it.pos = start + sort.Search(end-start, func(k int) bool { return it.list[start+k].Compare(id) >= 0 })
}

func (it *sliceIter) PredOf(id dewey.ID) (dewey.ID, bool) {
	n := len(it.list)
	p := it.pos
	// Fast path: right after Seek(id) the cursor sits exactly at the
	// first element >= id, making pos-1 the predecessor.
	ok := (p == n || it.list[p].Compare(id) >= 0) && (p == 0 || it.list[p-1].Compare(id) < 0)
	if !ok {
		p = sort.Search(n, func(k int) bool { return it.list[k].Compare(id) >= 0 })
	}
	if p == 0 {
		return nil, false
	}
	return it.list[p-1], true
}

// mergeIter is the lazy MergeLists: a k-way merge over child cursors
// covering pairwise-disjoint node sets. Each operation scans the k
// heads (k is the shard fan-out plus delta — single digits), which
// beats heap bookkeeping at that size.
type mergeIter struct {
	children []Iter
}

// MergeIter returns a cursor over the merged document-order sequence
// of the children, which must cover pairwise-disjoint node sets (the
// MergeLists precondition). Single-child merges return the child.
func MergeIter(children ...Iter) Iter {
	live := make([]Iter, 0, len(children))
	for _, c := range children {
		if c != nil {
			live = append(live, c)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return &mergeIter{children: live}
}

// min returns the child index holding the smallest head, or -1 when
// every child is exhausted.
func (it *mergeIter) min() int {
	best := -1
	var bestID dewey.ID
	for i, c := range it.children {
		v, ok := c.Peek()
		if !ok {
			continue
		}
		if best == -1 || v.Compare(bestID) < 0 {
			best, bestID = i, v
		}
	}
	return best
}

func (it *mergeIter) Peek() (dewey.ID, bool) {
	if b := it.min(); b >= 0 {
		return it.children[b].Peek()
	}
	return nil, false
}

func (it *mergeIter) Next() (dewey.ID, bool) {
	if b := it.min(); b >= 0 {
		return it.children[b].Next()
	}
	return nil, false
}

func (it *mergeIter) Seek(id dewey.ID) (dewey.ID, bool) {
	for _, c := range it.children {
		if v, ok := c.Peek(); ok && v.Compare(id) < 0 {
			c.Seek(id)
		}
	}
	return it.Peek()
}

func (it *mergeIter) PredOf(id dewey.ID) (dewey.ID, bool) {
	var best dewey.ID
	found := false
	for _, c := range it.children {
		if p, ok := c.PredOf(id); ok && (!found || p.Compare(best) > 0) {
			best, found = p, true
		}
	}
	return best, found
}

// withoutIter is the lazy Without: it presents the inner sequence
// minus every element under a tombstoned subtree, skipping each
// excluded block with a single inner Seek past the subtree instead of
// filtering element by element.
type withoutIter struct {
	inner Iter
	excl  []dewey.ID // sorted, pairwise disjoint subtree roots
	done  bool
}

// WithoutIter returns a cursor over inner minus every element that
// falls under one of the exclude subtrees. exclude must be sorted in
// document order and pairwise disjoint (the Without precondition).
func WithoutIter(inner Iter, exclude []dewey.ID) Iter {
	if len(exclude) == 0 {
		return inner
	}
	return &withoutIter{inner: inner, excl: exclude}
}

// tombOf returns the exclude root whose subtree contains id, if any.
func (it *withoutIter) tombOf(id dewey.ID) (dewey.ID, bool) {
	k := sort.Search(len(it.excl), func(i int) bool { return it.excl[i].Compare(id) > 0 })
	if k == 0 {
		return nil, false
	}
	if t := it.excl[k-1]; t.IsAncestorOrSelf(id) {
		return t, true
	}
	return nil, false
}

// subtreeBound returns the smallest ID that compares greater than
// every node in t's subtree: t with its last component incremented.
func subtreeBound(t dewey.ID) dewey.ID {
	b := t.Clone()
	b[len(b)-1]++
	return b
}

func (it *withoutIter) Peek() (dewey.ID, bool) {
	if it.done {
		return nil, false
	}
	for {
		v, ok := it.inner.Peek()
		if !ok {
			return nil, false
		}
		t, bad := it.tombOf(v)
		if !bad {
			return v, true
		}
		if len(t) == 0 { // the root is tombstoned: nothing survives
			it.done = true
			return nil, false
		}
		it.inner.Seek(subtreeBound(t))
	}
}

func (it *withoutIter) Next() (dewey.ID, bool) {
	if _, ok := it.Peek(); !ok {
		return nil, false
	}
	return it.inner.Next()
}

func (it *withoutIter) Seek(id dewey.ID) (dewey.ID, bool) {
	if it.done {
		return nil, false
	}
	it.inner.Seek(id)
	return it.Peek()
}

func (it *withoutIter) PredOf(id dewey.ID) (dewey.ID, bool) {
	cur := id
	for {
		p, ok := it.inner.PredOf(cur)
		if !ok {
			return nil, false
		}
		t, bad := it.tombOf(p)
		if !bad {
			return p, true
		}
		if len(t) == 0 {
			return nil, false
		}
		// p and everything between t and cur lie inside the excluded
		// subtree (p was the last inner element < cur); retry strictly
		// before the subtree root. t decreases every round, so this
		// terminates.
		cur = t
	}
}

// emptyIter is an exhausted cursor.
type emptyIter struct{}

// EmptyIter returns a cursor over the empty sequence.
func EmptyIter() Iter { return emptyIter{} }

func (emptyIter) Peek() (dewey.ID, bool)           { return nil, false }
func (emptyIter) Next() (dewey.ID, bool)           { return nil, false }
func (emptyIter) Seek(dewey.ID) (dewey.ID, bool)   { return nil, false }
func (emptyIter) PredOf(dewey.ID) (dewey.ID, bool) { return nil, false }

// CollectIter drains it into a materialized posting list — the bridge
// back to the eager algebra (and the equivalence oracle in tests).
func CollectIter(it Iter) PostingList {
	var out PostingList
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Counter counts postings under successive subtree roots with a
// monotone cursor: roots must arrive in document order (the order
// streamed results are emitted in), so each count gallops forward from
// the previous root instead of binary-searching the whole list. The
// count equals CountUnder exactly.
type Counter struct {
	list PostingList
	pos  int
}

// NewCounter returns a Counter over list.
func NewCounter(list PostingList) Counter { return Counter{list: list} }

// CountUnder returns how many postings fall inside the subtree at
// root. Successive roots must be non-decreasing in document order.
func (c *Counter) CountUnder(root dewey.ID) int {
	n := len(c.list)
	// First posting >= root, galloping from the cursor.
	lo := c.pos
	if lo < n && c.list[lo].Compare(root) < 0 {
		bound := 1
		for lo+bound < n && c.list[lo+bound].Compare(root) < 0 {
			bound <<= 1
		}
		start := lo + bound>>1
		if bound == 1 {
			start = lo
		}
		end := lo + bound + 1
		if end > n {
			end = n
		}
		lo = start + sort.Search(end-start, func(k int) bool { return c.list[start+k].Compare(root) >= 0 })
	}
	// Keep the cursor at the subtree start, not its end: the next root
	// may be a descendant of this one (results can nest) but never
	// precedes it.
	c.pos = lo
	if len(root) == 0 {
		return n - lo
	}
	// Subtree end, galloping as well: a result entity typically holds
	// few postings, so the end sits near the start and doubling finds
	// it in O(log tf) probes instead of O(log (n-lo)).
	outside := func(p dewey.ID) bool {
		return p.Compare(root) > 0 && !root.IsAncestorOrSelf(p)
	}
	hi := lo
	if hi < n && !outside(c.list[hi]) {
		bound := 1
		for hi+bound < n && !outside(c.list[hi+bound]) {
			bound <<= 1
		}
		start := hi + bound>>1
		if bound == 1 {
			start = hi
		}
		end := hi + bound + 1
		if end > n {
			end = n
		}
		hi = start + sort.Search(end-start, func(k int) bool { return outside(c.list[start+k]) })
	}
	return hi - lo
}
