package index

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// SymbolTable interns the strings an index keys by — terms and the
// element-label tokens that indexNode posts — into dense uint32 IDs.
// IDs are assigned in first-sight order, so a table is append-only and
// an ID, once handed out, never changes meaning. All posting maps are
// keyed by these IDs; the strings live in exactly one place.
//
// A table may be shared: the live write path builds delta indexes
// against the base index's table so base and delta lists for the same
// term carry the same ID, and a sharded build gives every shard (and
// the spine) one table. Sharing is what makes Merge's same-table fast
// path and the v4 snapshot's single symbol section possible.
//
// The RWMutex makes Intern safe against concurrent readers: queries
// resolve terms through ID/Name while writes intern new delta terms
// into the same table.
type SymbolTable struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]uint32
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]uint32)}
}

// Intern returns s's ID, assigning the next dense ID on first sight.
func (st *SymbolTable) Intern(s string) uint32 {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	id = uint32(len(st.names))
	st.names = append(st.names, s)
	st.ids[s] = id
	return id
}

// ID returns s's ID if s has been interned.
func (st *SymbolTable) ID(s string) (uint32, bool) {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	return id, ok
}

// Name returns the string behind id ("" for IDs the table never
// assigned).
func (st *SymbolTable) Name(id uint32) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(id) >= len(st.names) {
		return ""
	}
	return st.names[id]
}

// Len returns the number of interned symbols. IDs are always in
// [0, Len).
func (st *SymbolTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.names)
}

// AppendEncoded appends the table's binary form to b: a uvarint symbol
// count, then each name as uvarint length + bytes, in ID order. This
// is the v4 snapshot's symbol section.
func (st *SymbolTable) AppendEncoded(b []byte) []byte {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b = binary.AppendUvarint(b, uint64(len(st.names)))
	for _, s := range st.names {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// DecodeSymbolTable parses AppendEncoded's form. The whole input must
// be consumed; trailing bytes are corruption.
func DecodeSymbolTable(data []byte) (*SymbolTable, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("index: symbol table: corrupt count")
	}
	pos := k
	// Every symbol costs at least its one-byte length prefix, so a count
	// beyond the remaining bytes is corruption, not a huge allocation.
	if n > uint64(len(data)-pos)+1 {
		return nil, fmt.Errorf("index: symbol table: count %d exceeds payload", n)
	}
	st := &SymbolTable{
		names: make([]string, 0, n),
		ids:   make(map[string]uint32, n),
	}
	for i := uint64(0); i < n; i++ {
		ln, k := binary.Uvarint(data[pos:])
		if k <= 0 || uint64(len(data)-pos-k) < ln {
			return nil, fmt.Errorf("index: symbol table: corrupt name %d", i)
		}
		pos += k
		name := string(data[pos : pos+int(ln)])
		pos += int(ln)
		st.ids[name] = uint32(len(st.names))
		st.names = append(st.names, name)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("index: symbol table: %d trailing bytes", len(data)-pos)
	}
	return st, nil
}
