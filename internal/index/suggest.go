package index

import "sort"

// Suggest returns the indexed terms within the given Levenshtein
// distance of term, most frequent first — the "query cleaning"
// companion technique the paper lists for a full keyword-search stack.
// The term itself (distance 0) is excluded; maxDist is clamped to 2
// (larger radii return junk on natural vocabularies).
func (idx *Index) Suggest(term string, maxDist int) []string {
	return SuggestIn(idx.EachTerm, term, maxDist)
}

// SuggestIn is Suggest over an arbitrary vocabulary source: each must
// call its visitor once per (term, document frequency) pair, in any
// order — the candidate sort is total (distance, then frequency, then
// term), so iteration order never shows in the output. The sharded
// engine uses it to spell-correct against the union vocabulary of all
// shards with exactly the single-index ranking.
func SuggestIn(each func(func(term string, df int)), term string, maxDist int) []string {
	if maxDist < 1 {
		maxDist = 1
	}
	if maxDist > 2 {
		maxDist = 2
	}
	type cand struct {
		term string
		freq int
		dist int
	}
	var out []cand
	each(func(t string, df int) {
		if t == term {
			return
		}
		// Cheap length filter before the DP.
		dl := len(t) - len(term)
		if dl < -maxDist || dl > maxDist {
			return
		}
		if d := levenshtein(term, t, maxDist); d <= maxDist {
			out = append(out, cand{term: t, freq: df, dist: d})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		if out[i].freq != out[j].freq {
			return out[i].freq > out[j].freq
		}
		return out[i].term < out[j].term
	})
	terms := make([]string, len(out))
	for i, c := range out {
		terms[i] = c.term
	}
	return terms
}

// levenshtein computes the edit distance between a and b, giving up
// early (returning limit+1) once every cell of a DP row exceeds limit.
func levenshtein(a, b string, limit int) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if v := prev[j] + 1; v < m { // delete
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insert
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > limit {
			return limit + 1
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
