package index

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"TomTom GPS", []string{"tomtom", "gps"}},
		{"easy-to-read", []string{"easy", "to", "read"}},
		{"4.2", []string{"4", "2"}},
		{"  spaces   everywhere ", []string{"spaces", "everywhere"}},
		{"Go 730 (Tri-lingual) BOX", []string{"go", "730", "tri", "lingual", "box"}},
		{"---", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeQueryDeduplicates(t *testing.T) {
	got := TokenizeQuery("gps GPS gps tomtom")
	want := []string{"gps", "tomtom"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeQuery = %v, want %v", got, want)
	}
}

const doc = `
<store>
  <product><name>TomTom GPS</name><price>199</price></product>
  <product><name>Garmin GPS</name><price>249</price></product>
  <product><name>Garmin Watch</name></product>
</store>`

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	root, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return Build(root)
}

func TestLookupPostings(t *testing.T) {
	idx := buildTestIndex(t)
	gps := idx.Lookup("gps")
	if len(gps) != 2 {
		t.Fatalf("gps postings = %d, want 2", len(gps))
	}
	// Document order.
	if gps[0].Compare(gps[1]) >= 0 {
		t.Fatalf("postings not in document order: %v", gps)
	}
	if idx.DocFreq("garmin") != 2 {
		t.Fatalf("garmin freq = %d", idx.DocFreq("garmin"))
	}
	if idx.DocFreq("zzz") != 0 {
		t.Fatal("absent term should have zero postings")
	}
}

func TestTagNameIndexed(t *testing.T) {
	idx := buildTestIndex(t)
	// "product" appears as a tag three times.
	if idx.DocFreq("product") != 3 {
		t.Fatalf("product (tag) freq = %d, want 3", idx.DocFreq("product"))
	}
	// "name" as tag.
	if idx.DocFreq("name") != 3 {
		t.Fatalf("name (tag) freq = %d, want 3", idx.DocFreq("name"))
	}
}

func TestAttributeValuesIndexed(t *testing.T) {
	root := xmltree.MustParseString(`<r><item color="deep blue"/></r>`)
	idx := Build(root)
	if idx.DocFreq("blue") != 1 {
		t.Fatalf("blue freq = %d, want 1", idx.DocFreq("blue"))
	}
}

func TestNoDuplicatePostingPerNode(t *testing.T) {
	root := xmltree.MustParseString(`<r><x>gps gps gps</x></r>`)
	idx := Build(root)
	if got := idx.DocFreq("gps"); got != 1 {
		t.Fatalf("repeated term posted %d times for one node, want 1", got)
	}
}

func TestQueryListsMissingTerm(t *testing.T) {
	idx := buildTestIndex(t)
	_, _, err := idx.QueryLists([]string{"gps", "unicorn"})
	var nm *NoMatchError
	if !errors.As(err, &nm) {
		t.Fatalf("err = %v, want NoMatchError", err)
	}
	if len(nm.Terms) != 1 || nm.Terms[0] != "unicorn" {
		t.Fatalf("missing terms = %v", nm.Terms)
	}
}

func TestQueryListsAllPresent(t *testing.T) {
	idx := buildTestIndex(t)
	lists, stats, err := idx.QueryLists([]string{"gps", "garmin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 2 || len(lists[0]) == 0 || len(lists[1]) == 0 {
		t.Fatalf("lists = %v", lists)
	}
	if len(stats.Lengths) != 2 || stats.Lengths[0] != len(lists[0]) || stats.Lengths[1] != len(lists[1]) {
		t.Fatalf("stats lengths = %v for lists %d/%d", stats.Lengths, len(lists[0]), len(lists[1]))
	}
	if stats.Min == 0 || stats.Skew < 1 {
		t.Fatalf("stats = %+v, want Min > 0 and Skew >= 1", stats)
	}
}

func TestVocabularySorted(t *testing.T) {
	idx := buildTestIndex(t)
	vocab := idx.Vocabulary()
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] >= vocab[i] {
			t.Fatalf("vocabulary not strictly sorted at %d: %q >= %q", i, vocab[i-1], vocab[i])
		}
	}
}

func TestStats(t *testing.T) {
	idx := buildTestIndex(t)
	s := idx.Stats()
	if s.Terms != len(idx.Vocabulary()) {
		t.Fatalf("stats terms = %d, vocab = %d", s.Terms, len(idx.Vocabulary()))
	}
	if s.Postings <= 0 {
		t.Fatal("no postings counted")
	}
}

// TestStatsIndexedElementsDistinct is the regression test for the
// Stats bug that reported total term occurrences as the element count.
func TestStatsIndexedElementsDistinct(t *testing.T) {
	idx := buildTestIndex(t)
	s := idx.Stats()
	// Every element in the fixture posts at least its tag name: one
	// <store>, three <product>s, three <name>s, two <price>s.
	if s.IndexedElements != 9 {
		t.Fatalf("IndexedElements = %d, want 9 distinct elements", s.IndexedElements)
	}
	// The old bug reported term occurrences, which here exceed the
	// element count (each <name> alone posts several terms).
	if s.IndexedElements >= s.Postings {
		t.Fatalf("IndexedElements %d should be below total postings %d", s.IndexedElements, s.Postings)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	root := xmltree.MustParseString(doc)
	idx := Build(root)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, root)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range idx.Vocabulary() {
		a, b := idx.Lookup(term), back.Lookup(term)
		if len(a) != len(b) {
			t.Fatalf("term %q: %d vs %d postings", term, len(a), len(b))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("term %q posting %d: %v vs %v", term, i, a[i], b[i])
			}
		}
	}
	if !reflect.DeepEqual(idx.Vocabulary(), back.Vocabulary()) {
		t.Fatal("vocabulary mismatch after round trip")
	}
	if back.Stats() != idx.Stats() {
		t.Fatalf("stats after round trip = %+v, want %+v", back.Stats(), idx.Stats())
	}
}

func TestLoadRejectsWrongWireVersion(t *testing.T) {
	var buf bytes.Buffer
	stale := gobIndex{Version: WireVersion - 1}
	if err := gob.NewEncoder(&buf).Encode(&stale); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, nil)
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("Load of stale version: err = %v, want wire-version error", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob")), nil); err == nil {
		t.Fatal("Load of garbage succeeded")
	}
}

func TestPostingsResolveToContainingNodes(t *testing.T) {
	root := xmltree.MustParseString(doc)
	idx := Build(root)
	for _, id := range idx.Lookup("tomtom") {
		n := root.NodeAt(id)
		if n == nil {
			t.Fatalf("posting %v resolves to nothing", id)
		}
		if n.Tag != "name" {
			t.Fatalf("tomtom posted on <%s>, want <name>", n.Tag)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	root := xmltree.MustParseString(doc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(root)
	}
}

func BenchmarkLookup(b *testing.B) {
	root := xmltree.MustParseString(doc)
	idx := Build(root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = idx.Lookup("gps")
	}
}
