package index

import (
	"reflect"
	"testing"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

func ids(paths ...[]int) PostingList {
	out := make(PostingList, len(paths))
	for i, p := range paths {
		out[i] = dewey.New(p...)
	}
	return out
}

func TestMergeLists(t *testing.T) {
	a := ids([]int{0}, []int{0, 1}, []int{3})
	b := ids([]int{1}, []int{2, 0})
	c := ids([]int{4})
	got := MergeLists(a, b, c)
	want := ids([]int{0}, []int{0, 1}, []int{1}, []int{2, 0}, []int{3}, []int{4})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeLists = %v, want %v", got, want)
	}
	if out := MergeLists(nil, a, nil); !reflect.DeepEqual(out, a) {
		t.Fatalf("single non-empty list should pass through, got %v", out)
	}
	if out := MergeLists(); out != nil {
		t.Fatalf("empty merge = %v, want nil", out)
	}
}

func TestWithout(t *testing.T) {
	list := ids([]int{}, []int{0}, []int{0, 2}, []int{1}, []int{2}, []int{2, 1}, []int{3})
	got := Without(list, []dewey.ID{dewey.New(0), dewey.New(2)})
	want := ids([]int{}, []int{1}, []int{3})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Without = %v, want %v", got, want)
	}
	// Excluding a subtree with no postings is a no-op.
	if out := Without(list, []dewey.ID{dewey.New(7)}); !reflect.DeepEqual(out, list) {
		t.Fatalf("Without(absent) = %v, want original", out)
	}
	// No exclusions shares the input.
	if out := Without(list, nil); len(out) != len(list) {
		t.Fatalf("Without(nil) changed length")
	}
}

func TestMergeEqualsColdBuild(t *testing.T) {
	// Build a tree, index a prefix of its top-level children as the
	// base and the rest as the delta; the merge must equal the full
	// build exactly.
	root := xmltree.MustParseString(`<cat>
	  <p><name>alpha gps</name><price>10</price></p>
	  <p><name>beta gps</name><price>20</price></p>
	  <p><name>gamma radio</name><price>30</price></p>
	</cat>`)
	kids := root.ChildElements()
	base := BuildForest(root, kids[:2])
	delta := BuildForest(root, kids[2:])
	all := BuildForest(root, kids)
	merged := Merge(root, base, delta)
	if got, want := merged.Stats(), all.Stats(); got != want {
		t.Fatalf("merged stats = %+v, want %+v", got, want)
	}
	for _, term := range all.Vocabulary() {
		if !reflect.DeepEqual(merged.Lookup(term), all.Lookup(term)) {
			t.Fatalf("term %q: merged %v, want %v", term, merged.Lookup(term), all.Lookup(term))
		}
	}
	if len(merged.Vocabulary()) != len(all.Vocabulary()) {
		t.Fatalf("vocabulary drift")
	}
}
