package index

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// BuildForest constructs an index over a forest: the subtrees rooted at
// the given trees, in the order given. root is the document the trees
// belong to (postings keep their global Dewey IDs, so lists built from
// disjoint forests of the same document can be compared and merged).
// When the trees are passed in document order the per-term lists come
// out sorted without a re-sort, exactly as Build's preorder walk does;
// the same safety-net check guards hand-built trees.
//
// This is the per-shard build primitive of package shard: each shard
// indexes only its own segment subtrees.
func BuildForest(root *xmltree.Node, trees []*xmltree.Node) *Index {
	return BuildForestShared(root, trees, nil)
}

// BuildForestShared is BuildForest interning into st (fresh when nil).
// The live write path builds delta indexes against the base index's
// table so base and delta agree on symbol IDs, and the sharded build
// gives every shard one table.
func BuildForestShared(root *xmltree.Node, trees []*xmltree.Node, st *SymbolTable) *Index {
	idx := newIndex(root, st)
	for _, t := range trees {
		idx.indexSubtree(t)
	}
	idx.ensureSorted()
	return idx
}

// BuildNodes constructs an index over exactly the given nodes — their
// own tags, attributes, and direct text, with no descent into children.
// Package shard uses it for the spine: the handful of ancestor nodes
// (document root, wrapper elements) that sit above every shard's
// segments and therefore belong to no shard.
func BuildNodes(root *xmltree.Node, nodes []*xmltree.Node) *Index {
	return BuildNodesShared(root, nodes, nil)
}

// BuildNodesShared is BuildNodes interning into st (fresh when nil).
func BuildNodesShared(root *xmltree.Node, nodes []*xmltree.Node, st *SymbolTable) *Index {
	idx := newIndex(root, st)
	for _, n := range nodes {
		idx.indexNode(n)
	}
	idx.ensureSorted()
	return idx
}

// ensureSorted re-sorts any posting list that is out of document order.
// The check is linear and the sort only runs on a violation, so builds
// that post in document order pay one scan, not an O(n log n) sort.
func (idx *Index) ensureSorted() {
	idx.lids = nil // the build is over; drop the intern memo
	for id, list := range idx.postings {
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].Compare(list[j]) < 0 }) {
			sort.Slice(list, func(i, j int) bool { return list[i].Compare(list[j]) < 0 })
			idx.postings[id] = list
		}
	}
	// Every construction path (Build, BuildForest, BuildNodes, Merge,
	// the parallel builder) funnels through here, so the skip ladders
	// are derived exactly once per index.
	idx.buildSkips()
}

// CountUnder returns how many posting IDs fall inside the subtree
// rooted at root. Descendants form a contiguous block in document
// order, so two binary searches bound the range.
func CountUnder(postings PostingList, root dewey.ID) int {
	lo := sort.Search(len(postings), func(i int) bool {
		return postings[i].Compare(root) >= 0
	})
	hi := sort.Search(len(postings), func(i int) bool {
		return postings[i].Compare(root) > 0 && !root.IsAncestorOrSelf(postings[i])
	})
	if hi < lo {
		return 0
	}
	return hi - lo
}
