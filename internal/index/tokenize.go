package index

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase alphanumeric terms. Any rune that is
// neither a letter nor a digit separates tokens, so "easy-to-read"
// yields [easy to read] and "4.2" yields [4 2]. Empty input yields nil.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// TokenizeQuery tokenizes a keyword query and removes duplicate terms,
// preserving first-occurrence order. SLCA semantics treat a query as a
// set of keywords.
func TokenizeQuery(q string) []string {
	terms := Tokenize(q)
	seen := make(map[string]bool, len(terms))
	out := terms[:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
