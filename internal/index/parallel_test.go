package index

import (
	"testing"

	"repro/internal/dataset"
)

// TestBuildParallelMatchesBuild checks the fan-out/merge construction
// against the serial walk term by term and posting by posting.
func TestBuildParallelMatchesBuild(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 7, Movies: 120})
	serial := Build(root)
	for _, workers := range []int{1, 2, 3, 8} {
		par := BuildParallel(root, workers)
		if got, want := len(par.postings), len(serial.postings); got != want {
			t.Fatalf("workers=%d: %d terms, want %d", workers, got, want)
		}
		for id, want := range serial.postings {
			term := serial.symbols.Name(id)
			got := par.Lookup(term)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: term %q has %d postings, want %d", workers, term, len(got), len(want))
			}
			for i := range want {
				if got[i].Compare(want[i]) != 0 {
					t.Fatalf("workers=%d: term %q posting %d = %v, want %v", workers, term, i, got[i], want[i])
				}
			}
		}
		if par.terms != serial.terms {
			t.Fatalf("workers=%d: terms counter %d, want %d", workers, par.terms, serial.terms)
		}
		if par.elements != serial.elements {
			t.Fatalf("workers=%d: elements counter %d, want %d", workers, par.elements, serial.elements)
		}
	}
}

// TestBuildParallelPostingsSorted verifies the merged lists come out in
// document order without the serial path's safety-net sort.
func TestBuildParallelPostingsSorted(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 3})
	idx := BuildParallel(root, 4)
	for term, list := range idx.postings {
		for i := 1; i < len(list); i++ {
			if list[i-1].Compare(list[i]) >= 0 {
				t.Fatalf("term %q postings out of order at %d: %v >= %v", term, i, list[i-1], list[i])
			}
		}
	}
}

// TestBuildParallelSmallTreeFallsBack covers the serial fallback on
// trees too small to shard.
func TestBuildParallelSmallTreeFallsBack(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 2})
	serial := Build(root)
	par := BuildParallel(root, 8)
	if len(par.postings) != len(serial.postings) {
		t.Fatalf("fallback index differs: %d terms vs %d", len(par.postings), len(serial.postings))
	}
}
