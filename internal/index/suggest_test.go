package index

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"gps", "gps", 0},
		{"garmin", "garmen", 1},
		{"tomtom", "tomtim", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b, 10); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinEarlyExit(t *testing.T) {
	if got := levenshtein("aaaaaaaa", "bbbbbbbb", 2); got != 3 {
		t.Fatalf("early exit returned %d, want limit+1 = 3", got)
	}
}

func suggestIndex(t testing.TB) *Index {
	t.Helper()
	doc := `
<store>
  <product><name>garmin gps</name></product>
  <product><name>garmin gps</name></product>
  <product><name>tomtom gps</name></product>
  <product><name>gypsum board</name></product>
</store>`
	return Build(xmltree.MustParseString(doc))
}

func TestSuggestTypo(t *testing.T) {
	idx := suggestIndex(t)
	got := idx.Suggest("garmen", 1)
	if !reflect.DeepEqual(got, []string{"garmin"}) {
		t.Fatalf("Suggest(garmen) = %v", got)
	}
}

func TestSuggestOrdersByDistanceThenFrequency(t *testing.T) {
	idx := suggestIndex(t)
	got := idx.Suggest("gos", 2)
	if len(got) == 0 || got[0] != "gps" {
		t.Fatalf("Suggest(gos) = %v, want gps first", got)
	}
}

func TestSuggestExcludesExactTerm(t *testing.T) {
	idx := suggestIndex(t)
	for _, s := range idx.Suggest("gps", 2) {
		if s == "gps" {
			t.Fatal("suggestion includes the queried term itself")
		}
	}
}

func TestSuggestClampsDistance(t *testing.T) {
	idx := suggestIndex(t)
	// maxDist 0 clamps to 1, 99 clamps to 2; both must not panic and
	// must respect the clamp.
	if got := idx.Suggest("garmen", 0); len(got) != 1 {
		t.Fatalf("clamped-low Suggest = %v", got)
	}
	for _, s := range idx.Suggest("garmin", 99) {
		if levenshtein("garmin", s, 10) > 2 {
			t.Fatalf("suggestion %q beyond clamped distance", s)
		}
	}
}

func BenchmarkSuggest(b *testing.B) {
	idx := suggestIndex(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = idx.Suggest("garmen", 2)
	}
}
