package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dewey"
)

// compactRoundtrip encodes idx against a fresh table and reopens it.
func compactRoundtrip(t *testing.T, idx *Index, eager bool) *Index {
	t.Helper()
	st := NewSymbolTable()
	payload, err := EncodeCompact(idx, st)
	if err != nil {
		t.Fatalf("EncodeCompact: %v", err)
	}
	out, err := OpenCompact(idx.Root(), st, payload, eager)
	if err != nil {
		t.Fatalf("OpenCompact: %v", err)
	}
	return out
}

// TestCompactRoundtrip checks that every list survives the
// encode/open/materialize cycle bit for bit, lazily and eagerly.
func TestCompactRoundtrip(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 3, Movies: 150})
	idx := Build(root)
	for _, eager := range []bool{false, true} {
		got := compactRoundtrip(t, idx, eager)
		if g, w := got.Stats(), idx.Stats(); g != w {
			t.Fatalf("eager=%v: Stats = %+v, want %+v", eager, g, w)
		}
		for _, term := range idx.Vocabulary() {
			want := idx.Lookup(term)
			if df := got.DocFreq(term); df != len(want) {
				t.Fatalf("eager=%v: DocFreq(%q) = %d, want %d", eager, term, df, len(want))
			}
			gl := got.Lookup(term)
			if len(gl) != len(want) {
				t.Fatalf("eager=%v: Lookup(%q) has %d postings, want %d", eager, term, len(gl), len(want))
			}
			for i := range want {
				if !gl[i].Equal(want[i]) {
					t.Fatalf("eager=%v: %q posting %d = %v, want %v", eager, term, i, gl[i], want[i])
				}
			}
		}
		if g, w := got.Vocabulary(), idx.Vocabulary(); len(g) != len(w) {
			t.Fatalf("eager=%v: vocabulary %d terms, want %d", eager, len(g), len(w))
		}
	}
}

// TestCompactBlockIterEquivalence drives the lazily-decoding block
// cursor and a plain materialized cursor through identical random
// monotone Seek/PredOf/Next sequences over long (ladder-bearing) and
// short lists.
func TestCompactBlockIterEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, compactBlock, compactBlock + 1, 5 * compactBlock, skipMinLen + 700} {
		list := make(PostingList, 0, n)
		cur := 0
		for len(list) < n {
			cur += 1 + r.Intn(5)
			list = append(list, dewey.New(0, cur, r.Intn(3)))
		}
		idx := newIndex(nil, nil)
		idx.postings[idx.intern("t")] = list
		idx.ensureSorted()

		cidx := compactRoundtrip(t, idx, false)
		for trial := 0; trial < 20; trial++ {
			a := cidx.TermIter("t")
			b := ListIter(list)
			if _, isBlock := a.(*blockIter); !isBlock {
				t.Fatalf("n=%d: expected a blockIter before materialization, got %T", n, a)
			}
			tgt := 0
			for i := 0; i < 60; i++ {
				tgt += r.Intn(cur/30 + 2)
				id := dewey.New(0, tgt, r.Intn(3))
				switch r.Intn(3) {
				case 0:
					av, aok := a.Seek(id)
					bv, bok := b.Seek(id)
					if aok != bok || (aok && !av.Equal(bv)) {
						t.Fatalf("n=%d: Seek(%v): block %v/%v, slice %v/%v", n, id, av, aok, bv, bok)
					}
				case 1:
					av, aok := a.PredOf(id)
					bv, bok := b.PredOf(id)
					if aok != bok || (aok && !av.Equal(bv)) {
						t.Fatalf("n=%d: PredOf(%v): block %v/%v, slice %v/%v", n, id, av, aok, bv, bok)
					}
				default:
					av, aok := a.Next()
					bv, bok := b.Next()
					if aok != bok || (aok && !av.Equal(bv)) {
						t.Fatalf("n=%d: Next(): block %v/%v, slice %v/%v", n, av, aok, bv, bok)
					}
				}
			}
		}

		// Full drain equals the source list.
		drained := CollectIter(cidx.TermIter("t"))
		if len(drained) != len(list) {
			t.Fatalf("n=%d: drained %d postings, want %d", n, len(drained), len(list))
		}
		for i := range list {
			if !drained[i].Equal(list[i]) {
				t.Fatalf("n=%d: drained[%d] = %v, want %v", n, i, drained[i], list[i])
			}
		}
	}
}

// TestCompactResidency checks the lazy/materialize residency
// accounting that feeds the engine's resident_blocks metric.
func TestCompactResidency(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 5, Movies: 60})
	idx := Build(root)
	cidx := compactRoundtrip(t, idx, false)

	ms := cidx.MemStats()
	if ms.DataBytes == 0 || ms.ResidentLists != 0 || ms.ResidentBlocks != 0 {
		t.Fatalf("fresh compact index: MemStats = %+v, want data>0 and nothing resident", ms)
	}
	// Cursoring a list must not materialize it...
	it := cidx.TermIter("movie")
	it.Next()
	if ms = cidx.MemStats(); ms.ResidentLists != 0 {
		t.Fatalf("after TermIter: %d resident lists, want 0", ms.ResidentLists)
	}
	// ...but Lookup does.
	if l := cidx.Lookup("movie"); len(l) == 0 {
		t.Fatal("Lookup(movie) empty")
	}
	if ms = cidx.MemStats(); ms.ResidentLists != 1 || ms.ResidentBlocks == 0 {
		t.Fatalf("after Lookup: MemStats = %+v, want exactly one resident list", ms)
	}

	// A built (non-compact) index reports everything resident.
	bms := idx.MemStats()
	if bms.DataBytes != 0 || bms.ResidentLists == 0 {
		t.Fatalf("built index: MemStats = %+v", bms)
	}
}

// TestCompactSkipBlocks checks the ladder accounting matches the
// materialized contract: count/skipInterval entries once a list is
// long enough, whether or not it has been decoded.
func TestCompactSkipBlocks(t *testing.T) {
	n := skipMinLen + 500
	list := make(PostingList, n)
	for i := range list {
		list[i] = dewey.New(0, i, 0)
	}
	idx := newIndex(nil, nil)
	idx.postings[idx.intern("t")] = list
	idx.ensureSorted()

	cidx := compactRoundtrip(t, idx, false)
	want := n / skipInterval
	if got := cidx.SkipBlocks("t"); got != want {
		t.Fatalf("lazy SkipBlocks = %d, want %d", got, want)
	}
	cidx.Lookup("t") // materialize
	if got := cidx.SkipBlocks("t"); got != want {
		t.Fatalf("resident SkipBlocks = %d, want %d", got, want)
	}
	// The resident ladder must obey the sliceIter contract.
	cp := cidx.compact
	ladder := cp.skips[mustID(t, cidx, "t")]
	lst := cp.resident[mustID(t, cidx, "t")]
	for b, e := range ladder {
		if !e.Equal(lst[(b+1)*skipInterval-1]) {
			t.Fatalf("ladder[%d] = %v, want %v", b, e, lst[(b+1)*skipInterval-1])
		}
	}
	if !sort.SliceIsSorted(lst, func(i, j int) bool { return lst[i].Compare(lst[j]) < 0 }) {
		t.Fatal("materialized list out of order")
	}
}

func mustID(t *testing.T, idx *Index, term string) uint32 {
	t.Helper()
	id, ok := idx.TermID(term)
	if !ok {
		t.Fatalf("term %q not interned", term)
	}
	return id
}

// TestSymbolTableCodec round-trips a table and rejects corruption.
func TestSymbolTableCodec(t *testing.T) {
	st := NewSymbolTable()
	words := []string{"alpha", "beta", "", "gamma", "alpha-2"}
	for _, w := range words {
		st.Intern(w)
	}
	enc := st.AppendEncoded(nil)
	dec, err := DecodeSymbolTable(enc)
	if err != nil {
		t.Fatalf("DecodeSymbolTable: %v", err)
	}
	if dec.Len() != st.Len() {
		t.Fatalf("decoded %d symbols, want %d", dec.Len(), st.Len())
	}
	for i, w := range words {
		if id, ok := dec.ID(w); !ok || id != uint32(i) {
			t.Fatalf("decoded ID(%q) = %d/%v, want %d", w, id, ok, i)
		}
		if dec.Name(uint32(i)) != w {
			t.Fatalf("decoded Name(%d) = %q, want %q", i, dec.Name(uint32(i)), w)
		}
	}
	if _, err := DecodeSymbolTable(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated table decoded without error")
	}
	if _, err := DecodeSymbolTable(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}
