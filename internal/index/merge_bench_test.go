package index

import (
	"testing"

	"repro/internal/dewey"
)

// The live read path runs MergeLists and Without per term on every
// query; these benchmarks track their allocation behaviour, and the
// companion tests pin the zero-alloc fast paths so a regression fails
// loudly rather than just slowing live reads down.

func benchParts(nParts, perPart int) []PostingList {
	parts := make([]PostingList, nParts)
	for p := 0; p < nParts; p++ {
		l := make(PostingList, perPart)
		for i := 0; i < perPart; i++ {
			// Chained ranges: part p owns top-level ordinals [p*perPart, ...).
			l[i] = dewey.New(p*perPart+i, 0)
		}
		parts[p] = l
	}
	return parts
}

func interleavedParts(nParts, perPart int) []PostingList {
	parts := make([]PostingList, nParts)
	for p := 0; p < nParts; p++ {
		l := make(PostingList, perPart)
		for i := 0; i < perPart; i++ {
			l[i] = dewey.New(i*nParts+p, 0)
		}
		parts[p] = l
	}
	return parts
}

func TestWithoutNoOverlapAllocsNothing(t *testing.T) {
	list := benchParts(1, 4096)[0]
	excl := []dewey.ID{dewey.New(100000), dewey.New(100007)}
	if got := testing.AllocsPerRun(20, func() {
		if out := Without(list, excl); len(out) != len(list) {
			t.Fatal("unexpected exclusion")
		}
	}); got != 0 {
		t.Fatalf("Without with no overlap allocated %v times per run, want 0", got)
	}
}

func TestMergeListsChainedSingleAlloc(t *testing.T) {
	parts := benchParts(4, 1024)
	if got := testing.AllocsPerRun(20, func() {
		if out := MergeLists(parts...); len(out) != 4*1024 {
			t.Fatal("bad merge length")
		}
	}); got > 1 {
		t.Fatalf("chained MergeLists allocated %v times per run, want <= 1", got)
	}
}

func BenchmarkWithoutNoOverlap(b *testing.B) {
	list := benchParts(1, 8192)[0]
	excl := []dewey.ID{dewey.New(1 << 30)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Without(list, excl)
	}
}

func BenchmarkWithoutSparseOverlap(b *testing.B) {
	list := benchParts(1, 8192)[0]
	// Tombstone 4 of the 8192 top-level entities.
	excl := []dewey.ID{dewey.New(10), dewey.New(1000), dewey.New(4000), dewey.New(8000)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Without(list, excl)
	}
}

func BenchmarkMergeListsChained(b *testing.B) {
	parts := benchParts(8, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeLists(parts...)
	}
}

func BenchmarkMergeListsTwoWay(b *testing.B) {
	parts := interleavedParts(2, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeLists(parts...)
	}
}

func BenchmarkMergeListsKWay(b *testing.B) {
	parts := interleavedParts(8, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeLists(parts...)
	}
}

// BenchmarkLazyComposite pits the eager compose (MergeLists + Without)
// against the lazy cursor for a top-k style consumer that only needs
// the first few postings.
func BenchmarkLazyComposite(b *testing.B) {
	parts := interleavedParts(4, 4096)
	excl := []dewey.ID{dewey.New(7), dewey.New(4001)}
	b.Run("eager-all", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			withouts := make([]PostingList, len(parts))
			for j, p := range parts {
				withouts[j] = Without(p, excl)
			}
			MergeLists(withouts...)
		}
	})
	b.Run("lazy-first-16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			its := make([]Iter, len(parts))
			for j, p := range parts {
				its[j] = ListIter(p)
			}
			it := WithoutIter(MergeIter(its...), excl)
			for k := 0; k < 16; k++ {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		}
	})
}
