package index

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// Compact postings layout: every posting list delta-encoded against its
// predecessor in varint blocks of compactBlock postings. The layout is
// position-independent bytes, so a v4 snapshot section can be mmap-ed
// and served in place — a cursor decodes one block at a time, and the
// per-block last IDs double as the skip ladder the PR 6 Seek machinery
// already gallops.
//
// Payload form (all integers uvarint unless noted):
//
//	magic version             // versioned header (see compactMagic);
//	                          // legacy payloads start at terms directly
//	terms elements nLists
//	nLists × regionLen        // 0 = term has no postings here
//	                          // region bytes follow each nonzero len
//
// Region form, one per non-empty list:
//
//	count nBlocks
//	nBlocks × blockLen        // bytes of each block
//	nBlocks × lastID          // last posting of each block, absolute
//	nBlocks × blockMaxTF      // per-block entity tf bound (versioned
//	                          // payloads only; see bounds.go)
//	block bytes, concatenated
//
// Block form (up to compactBlock postings):
//
//	first posting:  len, then len components, absolute
//	rest:           prefixLen suffixLen, then suffix components,
//	                delta-encoded against the previous posting
//
// The lastID array is the directory a cursor navigates blocks by; for
// full blocks its entries equal list[(b+1)*compactBlock-1], exactly
// the sliceIter skip-ladder contract. The blockMaxTF array rides
// beside it so a ranked consumer can bound scores (and skip whole
// blocks) without decoding any block — it is the on-disk form of
// ListBounds.
const compactBlock = skipInterval

// compactMagic is the first uvarint of a versioned compact payload.
// The original (PR 7) layout began with the terms count instead; no
// plausible corpus reaches ~7.2e16 term occurrences, so the sentinel
// can never be mistaken for one, and a payload that does not start
// with it is parsed as the legacy layout — served fine, but with no
// block maxima, which makes WAND fall back to unpruned streaming.
const compactMagic = uint64(1)<<56 | 0x78ac

// compactVersion is the layout revision a versioned payload declares.
// Version 2 added the per-block max-tf directory. Unknown versions
// are rejected at open (the caller rebuilds from the tree).
const compactVersion = 2

// EncodeCompact serializes idx's postings in the compact layout, keyed
// by st's IDs. Terms idx knows that st does not yet are interned into
// st, so encoding K shard indexes against one table yields one shared
// symbol section. The encoding is deterministic for a fixed st.
func EncodeCompact(idx *Index, st *SymbolTable) ([]byte, error) {
	lists := make(map[uint32]PostingList)
	remap := st != idx.symbols
	idx.eachList(func(id uint32, l PostingList) {
		if remap {
			id = st.Intern(idx.symbols.Name(id))
		}
		lists[id] = l
	})
	n := st.Len()
	buf := binary.AppendUvarint(nil, compactMagic)
	buf = binary.AppendUvarint(buf, compactVersion)
	buf = binary.AppendUvarint(buf, uint64(idx.terms))
	buf = binary.AppendUvarint(buf, uint64(idx.elements))
	buf = binary.AppendUvarint(buf, uint64(n))
	var region []byte
	for id := 0; id < n; id++ {
		l := lists[uint32(id)]
		if len(l) == 0 {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		var err error
		region, err = appendListRegion(region[:0], l)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(region)))
		buf = append(buf, region...)
	}
	return buf, nil
}

// appendListRegion appends one list's region to b.
func appendListRegion(b []byte, list PostingList) ([]byte, error) {
	count := len(list)
	nBlocks := (count + compactBlock - 1) / compactBlock
	b = binary.AppendUvarint(b, uint64(count))
	b = binary.AppendUvarint(b, uint64(nBlocks))
	blocks := make([][]byte, nBlocks)
	for bi := 0; bi < nBlocks; bi++ {
		lo, hi := bi*compactBlock, (bi+1)*compactBlock
		if hi > count {
			hi = count
		}
		blk, err := appendBlock(nil, list[lo:hi])
		if err != nil {
			return nil, err
		}
		blocks[bi] = blk
	}
	for _, blk := range blocks {
		b = binary.AppendUvarint(b, uint64(len(blk)))
	}
	for bi := 0; bi < nBlocks; bi++ {
		b = appendCompactID(b, list[min((bi+1)*compactBlock, count)-1])
	}
	for _, m := range blockMaxTFs(list) {
		b = binary.AppendUvarint(b, uint64(m))
	}
	for _, blk := range blocks {
		b = append(b, blk...)
	}
	return b, nil
}

// appendCompactID appends one absolute Dewey ID: length, then
// components.
func appendCompactID(b []byte, id dewey.ID) []byte {
	b = binary.AppendUvarint(b, uint64(len(id)))
	for _, c := range id {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return b
}

// appendBlock delta-encodes up to compactBlock postings.
func appendBlock(b []byte, list PostingList) ([]byte, error) {
	for i, id := range list {
		for _, c := range id {
			if c < 0 {
				return nil, fmt.Errorf("index: compact: negative Dewey component in %v", id)
			}
		}
		if i == 0 {
			b = appendCompactID(b, id)
			continue
		}
		p := dewey.CommonPrefixLen(list[i-1], id)
		b = binary.AppendUvarint(b, uint64(p))
		b = binary.AppendUvarint(b, uint64(len(id)-p))
		for _, c := range id[p:] {
			b = binary.AppendUvarint(b, uint64(c))
		}
	}
	return b, nil
}

// uvarintAt reads one uvarint from data at pos.
func uvarintAt(data []byte, pos int) (uint64, int, error) {
	v, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return 0, 0, fmt.Errorf("index: compact: corrupt varint at offset %d", pos)
	}
	return v, pos + k, nil
}

// compactPostings serves lists straight out of an encoded payload —
// for an mmap-ed snapshot, `data` is the mapping itself and nothing is
// decoded until a query touches a list. The directory (counts, region
// offsets) is the only eager state, one O(nLists) varint walk at open.
type compactPostings struct {
	data   []byte
	counts []int32 // postings per ID; 0 = absent
	offs   []int64 // region offset in data; -1 = absent
	// hasBounds marks a versioned payload whose regions carry the
	// per-block max-tf directory; legacy payloads serve identically
	// but report no score bounds.
	hasBounds bool

	mu             sync.RWMutex
	views          map[uint32]*listView   // parsed region directories
	resident       map[uint32]PostingList // fully decoded lists
	skips          map[uint32]PostingList // ladders of resident long lists
	residentBlocks int
}

// listView is one list's parsed region directory: where each block's
// bytes live and the per-block last IDs that double as the skip
// ladder. Immutable once built.
type listView struct {
	count  int
	starts []int // absolute block offsets in data
	lens   []int // block byte lengths
	lasts  PostingList
	// maxTF and suffix are the decoded per-block tf bounds and their
	// suffix maxima (bounds.go); nil on legacy payloads.
	maxTF  []int32
	suffix []int32
}

// OpenCompact attaches a compact payload (EncodeCompact's output) to
// root as a servable index sharing st. The payload must outlive the
// index and is never written to — an mmap-ed file section qualifies.
// With eager set, every list is decoded up front (the pre-v4 resident
// behavior); otherwise blocks decode lazily as queries touch them.
func OpenCompact(root *xmltree.Node, st *SymbolTable, payload []byte, eager bool) (*Index, error) {
	terms, pos, err := uvarintAt(payload, 0)
	if err != nil {
		return nil, err
	}
	hasBounds := false
	if terms == compactMagic {
		ver, p, err := uvarintAt(payload, pos)
		if err != nil {
			return nil, err
		}
		if ver != compactVersion {
			return nil, fmt.Errorf("index: compact: payload version %d, want %d", ver, compactVersion)
		}
		hasBounds = true
		terms, pos, err = uvarintAt(payload, p)
		if err != nil {
			return nil, err
		}
	}
	elements, pos, err := uvarintAt(payload, pos)
	if err != nil {
		return nil, err
	}
	n64, pos, err := uvarintAt(payload, pos)
	if err != nil {
		return nil, err
	}
	if n64 > uint64(len(payload)-pos)+1 {
		return nil, fmt.Errorf("index: compact: list count %d exceeds payload", n64)
	}
	n := int(n64)
	cp := &compactPostings{
		data:      payload,
		counts:    make([]int32, n),
		offs:      make([]int64, n),
		hasBounds: hasBounds,
		views:     make(map[uint32]*listView),
		resident:  make(map[uint32]PostingList),
		skips:     make(map[uint32]PostingList),
	}
	for id := 0; id < n; id++ {
		rl64, p, err := uvarintAt(payload, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		if rl64 == 0 {
			cp.offs[id] = -1
			continue
		}
		rl := int(rl64)
		if rl64 > uint64(len(payload)-pos) {
			return nil, fmt.Errorf("index: compact: region for symbol %d truncated", id)
		}
		c, _, err := uvarintAt(payload, pos)
		if err != nil {
			return nil, err
		}
		cp.counts[id] = int32(c)
		cp.offs[id] = int64(pos)
		pos += rl
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("index: compact: %d trailing bytes", len(payload)-pos)
	}
	idx := &Index{
		symbols:  st,
		postings: make(map[uint32]PostingList),
		root:     root,
		terms:    int(terms),
		elements: int(elements),
		compact:  cp,
	}
	if eager {
		cp.each(func(id uint32, _ int) { cp.materialize(id) })
	}
	return idx, nil
}

func (cp *compactPostings) count(id uint32) int {
	if int(id) >= len(cp.counts) {
		return 0
	}
	return int(cp.counts[id])
}

// each visits every non-empty list's ID and count, in ID order,
// without decoding anything.
func (cp *compactPostings) each(f func(id uint32, df int)) {
	for i, c := range cp.counts {
		if c > 0 {
			f(uint32(i), int(c))
		}
	}
}

// view parses (and caches) id's region directory. A nil result means
// the list is absent. Parse failures panic: the payload passed its
// section CRC at load, so a malformed region past that point is memory
// corruption or an encoder bug, and failing loud beats serving a
// silently truncated list.
func (cp *compactPostings) view(id uint32) *listView {
	cp.mu.RLock()
	v := cp.views[id]
	cp.mu.RUnlock()
	if v != nil {
		return v
	}
	if int(id) >= len(cp.offs) || cp.offs[id] < 0 {
		return nil
	}
	v, err := cp.parseView(int(cp.offs[id]))
	if err != nil {
		panic(fmt.Sprintf("index: compact: symbol %d: %v (after checksum verification)", id, err))
	}
	cp.mu.Lock()
	if prior := cp.views[id]; prior != nil {
		v = prior
	} else {
		cp.views[id] = v
	}
	cp.mu.Unlock()
	return v
}

func (cp *compactPostings) parseView(pos int) (*listView, error) {
	count64, pos, err := uvarintAt(cp.data, pos)
	if err != nil {
		return nil, err
	}
	nb64, pos, err := uvarintAt(cp.data, pos)
	if err != nil {
		return nil, err
	}
	count, nb := int(count64), int(nb64)
	if nb != (count+compactBlock-1)/compactBlock {
		return nil, fmt.Errorf("block count %d inconsistent with %d postings", nb, count)
	}
	v := &listView{
		count:  count,
		starts: make([]int, nb),
		lens:   make([]int, nb),
	}
	for bi := 0; bi < nb; bi++ {
		ln, p, err := uvarintAt(cp.data, pos)
		if err != nil {
			return nil, err
		}
		v.lens[bi], pos = int(ln), p
	}
	// lasts: absolute IDs, decoded into one arena.
	v.lasts = make(PostingList, nb)
	var arena []int
	for bi := 0; bi < nb; bi++ {
		ln, p, err := uvarintAt(cp.data, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		start := len(arena)
		for j := uint64(0); j < ln; j++ {
			c, p, err := uvarintAt(cp.data, pos)
			if err != nil {
				return nil, err
			}
			arena, pos = append(arena, int(c)), p
		}
		v.lasts[bi] = dewey.ID(arena[start:len(arena):len(arena)])
	}
	if cp.hasBounds {
		v.maxTF = make([]int32, nb)
		for bi := 0; bi < nb; bi++ {
			m, p, err := uvarintAt(cp.data, pos)
			if err != nil {
				return nil, err
			}
			v.maxTF[bi], pos = int32(m), p
		}
		v.suffix = suffixMax(append([]int32(nil), v.maxTF...))
	}
	for bi := 0; bi < nb; bi++ {
		v.starts[bi] = pos
		pos += v.lens[bi]
		if pos > len(cp.data) {
			return nil, fmt.Errorf("block %d overruns payload", bi)
		}
	}
	return v, nil
}

// blockLen returns how many postings block bi holds.
func (v *listView) blockLen(bi int) int {
	if bi == len(v.starts)-1 {
		if r := v.count % compactBlock; r != 0 {
			return r
		}
	}
	return compactBlock
}

// decodeBlockInto decodes block bi of v into out backed by arena (both
// reset), returning the filled slices for reuse.
func (cp *compactPostings) decodeBlockInto(v *listView, bi int, out PostingList, arena []int) (PostingList, []int) {
	out, arena = out[:0], arena[:0]
	pos, n := v.starts[bi], v.blockLen(bi)
	var prev dewey.ID
	for i := 0; i < n; i++ {
		var plen, slen uint64
		var err error
		if i == 0 {
			slen, pos, err = uvarintAt(cp.data, pos)
		} else {
			plen, pos, err = uvarintAt(cp.data, pos)
			if err == nil {
				slen, pos, err = uvarintAt(cp.data, pos)
			}
		}
		if err == nil && int(plen) > len(prev) {
			err = fmt.Errorf("prefix %d longer than previous ID", plen)
		}
		if err != nil {
			panic(fmt.Sprintf("index: compact: block %d posting %d: %v (after checksum verification)", bi, i, err))
		}
		start := len(arena)
		arena = append(arena, prev[:plen]...)
		for j := uint64(0); j < slen; j++ {
			c, p, err := uvarintAt(cp.data, pos)
			if err != nil {
				panic(fmt.Sprintf("index: compact: block %d posting %d: %v (after checksum verification)", bi, i, err))
			}
			arena, pos = append(arena, int(c)), p
		}
		id := dewey.ID(arena[start:len(arena):len(arena)])
		out = append(out, id)
		prev = id
	}
	return out, arena
}

// materialize decodes id's whole list into the heap, caching it (and
// its skip ladder, rebuilt from the block lasts) for every later
// Lookup. Absent lists return nil.
func (cp *compactPostings) materialize(id uint32) PostingList {
	cp.mu.RLock()
	l, ok := cp.resident[id]
	cp.mu.RUnlock()
	if ok {
		return l
	}
	v := cp.view(id)
	if v == nil {
		return nil
	}
	list := make(PostingList, 0, v.count)
	arena := make([]int, 0, v.count*4)
	var blk PostingList
	var blkArena []int
	for bi := range v.starts {
		blk, blkArena = cp.decodeBlockInto(v, bi, blk, blkArena)
		for _, id := range blk {
			start := len(arena)
			arena = append(arena, id...)
			list = append(list, dewey.ID(arena[start:len(arena):len(arena)]))
		}
	}
	cp.mu.Lock()
	if prior, ok := cp.resident[id]; ok {
		list = prior
	} else {
		cp.resident[id] = list
		cp.residentBlocks += len(v.starts)
		if v.count >= skipMinLen {
			cp.skips[id] = v.lasts[:v.count/skipInterval]
		}
	}
	cp.mu.Unlock()
	return list
}

// iter returns a cursor over id's list: the materialized list when
// resident (with its ladder), else a lazily-decoding blockIter.
func (cp *compactPostings) iter(id uint32) Iter {
	cp.mu.RLock()
	l, ok := cp.resident[id]
	sk := cp.skips[id]
	cp.mu.RUnlock()
	if ok {
		if len(l) == 0 {
			return EmptyIter()
		}
		return &sliceIter{list: l, skips: sk}
	}
	v := cp.view(id)
	if v == nil {
		return EmptyIter()
	}
	return &blockIter{cp: cp, v: v, blk: -1}
}

// bounds returns id's score-bound metadata straight from the payload
// directory — no block is decoded. nil means the payload predates
// block maxima (legacy layout); an absent list reports empty bounds.
func (cp *compactPostings) bounds(id uint32) *ListBounds {
	if !cp.hasBounds {
		return nil
	}
	v := cp.view(id)
	if v == nil {
		return emptyBounds
	}
	return &ListBounds{lasts: v.lasts, suffix: v.suffix}
}

// skipBlocks mirrors Index.SkipBlocks for compact lists: the ladder a
// materialized copy would carry.
func (cp *compactPostings) skipBlocks(id uint32) int {
	c := cp.count(id)
	if c < skipMinLen {
		return 0
	}
	return c / skipInterval
}

// blockIter cursors over a compact list without materializing it: at
// most one block (plus one PredOf scratch block) is decoded at a time,
// and Seek jumps blocks via the lasts directory the way sliceIter
// gallops its ladder. Satisfies the full Iter contract of iter.go.
type blockIter struct {
	cp *compactPostings
	v  *listView

	blk int // decoded block index; -1 before first decode, nBlocks when exhausted
	buf PostingList
	pos int // cursor within buf

	// PredOf scratch: a second decoded block, so probing a neighbour
	// never disturbs the cursor's own block.
	pblk int
	pbuf PostingList
}

// load decodes block bi into the cursor buffer. Every block decodes
// into fresh memory: returned IDs may be retained by callers (the
// SLCA pipeline does), so the buffers are never reused.
func (it *blockIter) load(bi int) {
	it.buf, _ = it.cp.decodeBlockInto(it.v, bi, nil, nil)
	it.blk, it.pos = bi, 0
}

// ensure makes the cursor sit on a live element, advancing across
// block boundaries; reports false when exhausted.
func (it *blockIter) ensure() bool {
	nb := len(it.v.starts)
	if it.blk < 0 {
		it.load(0)
	}
	for it.pos >= len(it.buf) {
		if it.blk+1 >= nb {
			it.blk, it.buf, it.pos = nb, it.buf[:0], 0
			return false
		}
		it.load(it.blk + 1)
	}
	return true
}

func (it *blockIter) Peek() (dewey.ID, bool) {
	if !it.ensure() {
		return nil, false
	}
	return it.buf[it.pos], true
}

func (it *blockIter) Next() (dewey.ID, bool) {
	if !it.ensure() {
		return nil, false
	}
	v := it.buf[it.pos]
	it.pos++
	return v, true
}

func (it *blockIter) Seek(id dewey.ID) (dewey.ID, bool) {
	v, ok := it.Peek()
	if !ok {
		return nil, false
	}
	if v.Compare(id) >= 0 {
		return v, true
	}
	// Find the first block (from the cursor's) whose last element can
	// hold the target; everything before it is < id.
	lasts := it.v.lasts
	b := it.blk + sort.Search(len(lasts)-it.blk, func(k int) bool {
		return lasts[it.blk+k].Compare(id) >= 0
	})
	if b >= len(lasts) {
		it.blk, it.buf, it.pos = len(lasts), it.buf[:0], 0
		return nil, false
	}
	if b != it.blk {
		it.load(b)
	}
	it.pos += sort.Search(len(it.buf)-it.pos, func(k int) bool {
		return it.buf[it.pos+k].Compare(id) >= 0
	})
	return it.Peek()
}

// curBlock returns the block Peek would serve the next element from:
// the decoded block while it has elements left, else the one after it.
// Clamped to nBlocks when exhausted.
func (it *blockIter) curBlock() int {
	nb := len(it.v.starts)
	cur := it.blk
	if cur < 0 {
		return 0
	}
	if it.pos >= len(it.buf) && cur < nb {
		cur++
	}
	return cur
}

// BlockMaxTF returns the encoded tf bound of the cursor's current
// block: no single non-root result subtree intersecting the block (or
// any later one, after taking the running suffix max) holds more than
// this many of the list's postings. 0 when the payload predates block
// maxima or the cursor is exhausted.
func (it *blockIter) BlockMaxTF() int {
	cur := it.curBlock()
	if it.v.maxTF == nil || cur >= len(it.v.maxTF) {
		return 0
	}
	return int(it.v.maxTF[cur])
}

// SkipBlock advances the cursor to the first posting of the block
// after the current one, without decoding anything in between — the
// WAND move for a block whose BlockMaxTF cannot change the top-k.
// Reports false (leaving the cursor exhausted) when no block remains.
func (it *blockIter) SkipBlock() bool {
	nb := len(it.v.starts)
	cur := it.curBlock()
	if cur+1 >= nb {
		it.blk, it.buf, it.pos = nb, it.buf[:0], 0
		return false
	}
	it.load(cur + 1)
	return true
}

func (it *blockIter) PredOf(id dewey.ID) (dewey.ID, bool) {
	lasts := it.v.lasts
	nb := len(lasts)
	// First block that could contain an element >= id.
	b := sort.Search(nb, func(k int) bool { return lasts[k].Compare(id) >= 0 })
	if b == nb {
		// Every element is < id; the overall last is the predecessor.
		return lasts[nb-1], true
	}
	// Block b holds the first element >= id (lasts[b-1] < id bounds the
	// earlier blocks away). Probe it without moving the cursor.
	var blk PostingList
	switch {
	case b == it.blk:
		// The cursor's buffer always holds the whole decoded block;
		// pos only indexes into it.
		blk = it.buf
	case b == it.pblk && len(it.pbuf) > 0:
		blk = it.pbuf
	default:
		it.pbuf, _ = it.cp.decodeBlockInto(it.v, b, nil, nil)
		it.pblk = b
		blk = it.pbuf
	}
	k := sort.Search(len(blk), func(i int) bool { return blk[i].Compare(id) >= 0 })
	if k > 0 {
		return blk[k-1], true
	}
	if b == 0 {
		return nil, false
	}
	return lasts[b-1], true
}
