package index

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// This file holds the posting-list algebra of the live write path
// (package update): composing a base index with a delta index and a
// tombstone set without rebuilding either.

// MergeLists merges document-ordered posting lists over disjoint node
// sets into one document-ordered list. The sharded live read path uses
// it to present per-shard (plus spine, plus delta) lists as the single
// list a monolithic index would hold.
func MergeLists(lists ...PostingList) PostingList {
	var nonEmpty []PostingList
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		return nonEmpty[0]
	}
	out := make(PostingList, 0, total)
	pos := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, l := range nonEmpty {
			if pos[i] == len(l) {
				continue
			}
			if best == -1 || l[pos[i]].Compare(nonEmpty[best][pos[best]]) < 0 {
				best = i
			}
		}
		out = append(out, nonEmpty[best][pos[best]])
		pos[best]++
	}
	return out
}

// Without returns list minus every posting that falls inside one of
// the subtrees rooted at exclude. exclude must be sorted in document
// order and pairwise disjoint (no ID an ancestor of another), which is
// what a tombstone set over top-level entities is. When nothing is
// excluded the input list is returned unchanged (and must then be
// treated as shared).
func Without(list PostingList, exclude []dewey.ID) PostingList {
	if len(list) == 0 || len(exclude) == 0 {
		return list
	}
	kept := make(PostingList, 0, len(list))
	i := 0
	for _, ex := range exclude {
		// Descendants-or-self of ex form one contiguous block.
		lo := sort.Search(len(list), func(k int) bool {
			return list[k].Compare(ex) >= 0
		})
		hi := sort.Search(len(list), func(k int) bool {
			return list[k].Compare(ex) > 0 && !ex.IsAncestorOrSelf(list[k])
		})
		if lo < i {
			lo = i
		}
		kept = append(kept, list[i:lo]...)
		if hi > i {
			i = hi
		}
	}
	return append(kept, list[i:]...)
}

// Merge combines a base index with a delta index built over later
// document positions: every delta posting must follow every base
// posting of the same term in document order, which holds by
// construction when the delta indexes entities appended after the
// base's last top-level child. Shared (unmodified) posting lists are
// reused, not copied; the inputs must stay immutable afterwards. root
// is the tree the merged index describes.
func Merge(root *xmltree.Node, base, delta *Index) *Index {
	m := &Index{
		postings: make(map[string]PostingList, len(base.postings)+len(delta.postings)),
		root:     root,
		terms:    base.terms + delta.terms,
		elements: base.elements + delta.elements,
	}
	for t, l := range base.postings {
		d, ok := delta.postings[t]
		if !ok {
			m.postings[t] = l
			continue
		}
		nl := make(PostingList, 0, len(l)+len(d))
		nl = append(append(nl, l...), d...)
		m.postings[t] = nl
	}
	for t, d := range delta.postings {
		if _, ok := base.postings[t]; !ok {
			m.postings[t] = d
		}
	}
	// Safety net, mirroring Build: a misuse that violates the append
	// precondition degrades to a sort, not a corrupt index.
	m.ensureSorted()
	return m
}
