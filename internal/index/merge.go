package index

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// This file holds the posting-list algebra of the live write path
// (package update): composing a base index with a delta index and a
// tombstone set without rebuilding either.

// MergeLists merges document-ordered posting lists over disjoint node
// sets into one document-ordered list. The sharded live read path uses
// it to present per-shard (plus spine, plus delta) lists as the single
// list a monolithic index would hold.
func MergeLists(lists ...PostingList) PostingList {
	// First pass allocates nothing: count the non-empty inputs and
	// check whether they already chain end-to-start in document order —
	// the common shape on the live read path, where base shards and the
	// delta cover successive Dewey ranges.
	n, total := 0, 0
	var first, second PostingList
	chained := true
	var prevLast dewey.ID
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		if n == 0 {
			first = l
		} else if n == 1 {
			second = l
		}
		if n > 0 && prevLast.Compare(l[0]) >= 0 {
			chained = false
		}
		prevLast = l[len(l)-1]
		n++
		total += len(l)
	}
	switch n {
	case 0:
		return nil
	case 1:
		return first
	}
	out := make(PostingList, 0, total)
	if chained {
		for _, l := range lists {
			out = append(out, l...)
		}
		return out
	}
	if n == 2 {
		return mergeTwo(out, first, second)
	}
	nonEmpty := make([]PostingList, 0, n)
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
		}
	}
	pos := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, l := range nonEmpty {
			if pos[i] == len(l) {
				continue
			}
			if best == -1 || l[pos[i]].Compare(nonEmpty[best][pos[best]]) < 0 {
				best = i
			}
		}
		out = append(out, nonEmpty[best][pos[best]])
		pos[best]++
	}
	return out
}

// mergeTwo merges two overlapping document-ordered lists into out
// (empty, pre-sized) without the k-way scan's per-element overhead.
func mergeTwo(out, a, b PostingList) PostingList {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Compare(b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Without returns list minus every posting that falls inside one of
// the subtrees rooted at exclude. exclude must be sorted in document
// order and pairwise disjoint (no ID an ancestor of another), which is
// what a tombstone set over top-level entities is. When nothing is
// excluded the input list is returned unchanged (and must then be
// treated as shared).
func Without(list PostingList, exclude []dewey.ID) PostingList {
	if len(list) == 0 || len(exclude) == 0 {
		return list
	}
	// Pass 1, allocation-free: measure how much the exclusion actually
	// removes. Most live reads exclude nothing from most lists (the
	// tombstoned entities rarely contain a given term), and those calls
	// must not copy — Without runs per term per part on every query.
	removed := 0
	i := 0
	for _, ex := range exclude {
		lo, hi := excludedBlock(list, ex)
		if lo < i {
			lo = i
		}
		if hi > lo {
			removed += hi - lo
			i = hi
		}
	}
	if removed == 0 {
		return list
	}
	kept := make(PostingList, 0, len(list)-removed)
	i = 0
	for _, ex := range exclude {
		lo, hi := excludedBlock(list, ex)
		if lo < i {
			lo = i
		}
		kept = append(kept, list[i:lo]...)
		if hi > i {
			i = hi
		}
	}
	return append(kept, list[i:]...)
}

// excludedBlock bounds the contiguous run of list that falls inside
// ex's subtree: descendants-or-self of ex form one block in document
// order, so two binary searches delimit it.
func excludedBlock(list PostingList, ex dewey.ID) (lo, hi int) {
	lo = sort.Search(len(list), func(k int) bool {
		return list[k].Compare(ex) >= 0
	})
	hi = sort.Search(len(list), func(k int) bool {
		return list[k].Compare(ex) > 0 && !ex.IsAncestorOrSelf(list[k])
	})
	return lo, hi
}

// Merge combines a base index with a delta index built over later
// document positions: every delta posting must follow every base
// posting of the same term in document order, which holds by
// construction when the delta indexes entities appended after the
// base's last top-level child. Shared (unmodified) posting lists are
// reused, not copied; the inputs must stay immutable afterwards. root
// is the tree the merged index describes.
func Merge(root *xmltree.Node, base, delta *Index) *Index {
	m := &Index{
		symbols:  base.symbols,
		postings: make(map[uint32]PostingList),
		root:     root,
		terms:    base.terms + delta.terms,
		elements: base.elements + delta.elements,
	}
	base.eachList(func(id uint32, l PostingList) {
		m.postings[id] = l
	})
	// When delta shares base's table (the live write path builds it
	// that way) IDs line up and the merge is ID-direct; a foreign-table
	// delta remaps by name, costing one intern per delta term.
	sameTable := delta.symbols == base.symbols
	delta.eachList(func(did uint32, d PostingList) {
		id := did
		if !sameTable {
			id = base.symbols.Intern(delta.symbols.Name(did))
		}
		l, ok := m.postings[id]
		if !ok {
			m.postings[id] = d
			return
		}
		nl := make(PostingList, 0, len(l)+len(d))
		m.postings[id] = append(append(nl, l...), d...)
	})
	// Safety net, mirroring Build: a misuse that violates the append
	// precondition degrades to a sort, not a corrupt index.
	m.ensureSorted()
	return m
}
