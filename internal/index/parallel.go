package index

import (
	"runtime"
	"sync"

	"repro/internal/xmltree"
)

// BuildParallel constructs the same index as Build but fans the walk
// out over the root's child subtrees: each worker indexes a contiguous
// chunk of children into a private posting map, and the partials are
// merged in child order. Child subtrees are disjoint, contiguous
// blocks of document order, so concatenating per-term lists chunk by
// chunk (after the root's own postings) preserves the Dewey sort
// without a global re-sort. workers <= 0 selects GOMAXPROCS.
//
// Small trees fall back to the serial Build — the fan-out only pays
// for itself on corpora with many root children.
func BuildParallel(root *xmltree.Node, workers int) *Index {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	kids := root.Children
	if workers == 1 || len(kids) < 2*workers {
		return Build(root)
	}

	// Root node itself: its postings precede every descendant's.
	idx := newIndex(root, nil)
	idx.indexNode(root)

	// Chunk children evenly; each chunk builds a private partial index
	// sharing the final index's symbol table (Intern is synchronized,
	// and each partial memoizes term→ID locally), so the merge below
	// concatenates lists by ID with no string handling.
	chunks := splitChunks(len(kids), workers)
	partials := make([]*Index, len(chunks))
	var wg sync.WaitGroup
	for ci, ch := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			p := newIndex(nil, idx.symbols)
			for _, c := range kids[lo:hi] {
				p.indexSubtree(c)
			}
			partials[ci] = p
		}(ci, ch[0], ch[1])
	}
	wg.Wait()

	// Merge in chunk order: per-term lists concatenate sorted.
	for _, p := range partials {
		for id, list := range p.postings {
			idx.postings[id] = append(idx.postings[id], list...)
		}
		idx.terms += p.terms
		idx.elements += p.elements
	}
	// Same safety net as Build for hand-built trees whose IDs were
	// assigned out of order.
	idx.ensureSorted()
	return idx
}

// splitChunks divides [0, n) into at most k contiguous, non-empty
// [lo, hi) ranges of near-equal size.
func splitChunks(n, k int) [][2]int {
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
