package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dewey"
)

// randomList builds a sorted, duplicate-free posting list of n random
// Dewey IDs up to the given depth.
func randomList(r *rand.Rand, n, depth int) PostingList {
	seen := make(map[string]bool)
	var out PostingList
	for len(out) < n {
		d := 1 + r.Intn(depth)
		id := make(dewey.ID, d)
		for i := range id {
			id[i] = r.Intn(8)
		}
		if seen[id.String()] {
			continue
		}
		seen[id.String()] = true
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func eq(t *testing.T, got, want PostingList, what string) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
}

func TestListIterCollectRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		l := randomList(r, r.Intn(50), 4)
		eq(t, CollectIter(ListIter(l)), l, "gallop")
		eq(t, CollectIter(ListIterLinear(l)), l, "linear")
	}
}

func TestMergeIterEqualsMergeLists(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		// Disjoint node sets: partition one random list.
		all := randomList(r, 60, 4)
		k := 1 + r.Intn(4)
		parts := make([]PostingList, k)
		for _, id := range all {
			g := r.Intn(k)
			parts[g] = append(parts[g], id)
		}
		its := make([]Iter, k)
		for i, p := range parts {
			its[i] = ListIter(p)
		}
		eq(t, CollectIter(MergeIter(its...)), MergeLists(parts...), "merge")
	}
}

func TestWithoutIterEqualsWithout(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		l := randomList(r, 50, 4)
		// Disjoint top-level tombstones, like the live path's.
		var excl []dewey.ID
		for ord := 0; ord < 8; ord++ {
			if r.Intn(3) == 0 {
				excl = append(excl, dewey.New(ord))
			}
		}
		eq(t, CollectIter(WithoutIter(ListIter(l), excl)), Without(l, excl), "without")
	}
}

// TestIterSeekPredAgainstBruteForce drives Seek with a random monotone
// target sequence through a composed merge-minus-tombstones cursor and
// checks every Seek and PredOf answer against the materialized
// composite list.
func TestIterSeekPredAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		all := randomList(r, 80, 4)
		parts := make([]PostingList, 3)
		for _, id := range all {
			g := r.Intn(3)
			parts[g] = append(parts[g], id)
		}
		var excl []dewey.ID
		for ord := 0; ord < 8; ord += 2 {
			if r.Intn(2) == 0 {
				excl = append(excl, dewey.New(ord))
			}
		}
		want := Without(MergeLists(parts...), excl)

		it := WithoutIter(MergeIter(ListIter(parts[0]), ListIterLinear(parts[1]), ListIter(parts[2])), excl)
		targets := randomList(r, 30, 4) // sorted: a valid monotone seek sequence
		for _, tgt := range targets {
			gotV, gotOK := it.Seek(tgt)
			wi := sort.Search(len(want), func(k int) bool { return want[k].Compare(tgt) >= 0 })
			if wantOK := wi < len(want); gotOK != wantOK || (gotOK && !gotV.Equal(want[wi])) {
				t.Fatalf("Seek(%v): got %v/%v, want index %d of %v", tgt, gotV, gotOK, wi, want)
			}
			gotP, gotPOK := it.PredOf(tgt)
			pi := sort.Search(len(want), func(k int) bool { return want[k].Compare(tgt) >= 0 })
			if wantPOK := pi > 0; gotPOK != wantPOK || (gotPOK && !gotP.Equal(want[pi-1])) {
				t.Fatalf("PredOf(%v): got %v/%v, want %v", tgt, gotP, gotPOK, want)
			}
		}
	}
}

// TestSkipLadderSeek checks that the skip-accelerated cursor answers
// exactly like the plain galloping one on a ladder-bearing list.
func TestSkipLadderSeek(t *testing.T) {
	n := skipMinLen + 500
	list := make(PostingList, n)
	for i := range list {
		list[i] = dewey.New(0, i, 0)
	}
	idx := newIndex(nil, nil)
	idx.postings[idx.intern("t")] = list
	idx.buildSkips()
	if got, want := idx.SkipBlocks("t"), n/skipInterval; got != want {
		t.Fatalf("SkipBlocks = %d, want %d", got, want)
	}

	r := rand.New(rand.NewSource(5))
	withSkips := idx.TermIter("t")
	plain := ListIter(list)
	tgt := 0
	for i := 0; i < 200; i++ {
		tgt += r.Intn(20)
		id := dewey.New(0, tgt, r.Intn(2))
		a, aok := withSkips.Seek(id)
		b, bok := plain.Seek(id)
		if aok != bok || (aok && !a.Equal(b)) {
			t.Fatalf("Seek(%v): skip %v/%v, plain %v/%v", id, a, aok, b, bok)
		}
		ap, apok := withSkips.PredOf(id)
		bp, bpok := plain.PredOf(id)
		if apok != bpok || (apok && !ap.Equal(bp)) {
			t.Fatalf("PredOf(%v): skip %v/%v, plain %v/%v", id, ap, apok, bp, bpok)
		}
	}
}

// TestCounterEqualsCountUnder feeds document-ordered (possibly nested)
// roots to the monotone Counter and compares with CountUnder.
func TestCounterEqualsCountUnder(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		list := randomList(r, 60, 4)
		roots := randomList(r, 20, 3)
		roots = append(roots, dewey.Root()) // root counts everything
		sort.Slice(roots, func(i, j int) bool { return roots[i].Compare(roots[j]) < 0 })
		c := NewCounter(list)
		for _, root := range roots {
			if got, want := c.CountUnder(root), CountUnder(list, root); got != want {
				t.Fatalf("CountUnder(%v) = %d, want %d", root, got, want)
			}
		}
	}
}

func TestMergeIterDrainThenSeekExhausted(t *testing.T) {
	it := MergeIter(ListIter(PostingList{dewey.New(0)}), ListIter(nil))
	if v, ok := it.Next(); !ok || !v.Equal(dewey.New(0)) {
		t.Fatalf("Next = %v/%v", v, ok)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("expected exhaustion")
	}
	if _, ok := it.Seek(dewey.New(5)); ok {
		t.Fatal("Seek past exhaustion should fail")
	}
}

func TestWithoutIterRootTombstone(t *testing.T) {
	l := PostingList{dewey.New(0), dewey.New(1, 2)}
	it := WithoutIter(ListIter(l), []dewey.ID{dewey.Root()})
	if _, ok := it.Next(); ok {
		t.Fatal("root tombstone should exclude everything")
	}
	if _, ok := it.PredOf(dewey.New(9)); ok {
		t.Fatal("root tombstone PredOf should find nothing")
	}
}
