package index

import (
	"repro/internal/dewey"
)

// Block-max score bounds: the metadata behind WAND-style top-k
// pruning (xseek's score-bounded consumer). For each posting list we
// keep, per 64-posting block, an upper bound on the term frequency
// any single result subtree intersecting that block (or any later
// block) can reach — so a ranked consumer holding a full top-k heap
// can prove that no remaining entity can displace the kept worst and
// stop scoring (or stop draining entirely, in approximate mode).
//
// The bound is built from depth-1 groups. Postings are document-
// ordered Dewey IDs, so postings sharing a first component — the same
// top-level subtree — form one contiguous run. Any result node with a
// non-empty ID lies inside exactly one top-level subtree, and every
// posting it dominates shares its first component, so its term
// frequency is at most its group's whole-list run length. A block's
// max is the largest run length among the groups touching it, and the
// suffix maximum over blocks bounds every entity whose first covering
// block is at or past b:
//
//	tf(e) <= suffix[firstBlock(e.ID)]   for len(e.ID) > 0
//
// because e's own postings (all >= e.ID in document order) place e's
// group in some block >= firstBlock(e.ID). The root (empty ID) spans
// every group and is NOT covered — consumers must score it exactly.
//
// Both bound sources feed the same structure: heap-resident lists via
// BoundsOf, compact (v4) payloads via the per-block max-tf field the
// codec stores next to the last-ID directory (compact.go).

// ListBounds is one posting list's immutable block-max metadata: the
// per-block last IDs (the block directory) and the suffix maxima of
// the per-block tf bounds.
type ListBounds struct {
	lasts  PostingList
	suffix []int32
}

// emptyBounds backs absent lists: zero blocks, every bound 0.
var emptyBounds = &ListBounds{}

// blockMaxTFs computes the per-block tf bound of a document-ordered
// list: for each compactBlock-sized block, the largest depth-1 group
// run length among the postings in it. Root postings (empty IDs)
// belong to no group and are skipped — the root is scored exactly.
func blockMaxTFs(list PostingList) []int32 {
	nb := (len(list) + compactBlock - 1) / compactBlock
	out := make([]int32, nb)
	for i := 0; i < len(list); {
		if len(list[i]) == 0 {
			i++
			continue
		}
		c := list[i][0]
		j := i + 1
		for j < len(list) && len(list[j]) > 0 && list[j][0] == c {
			j++
		}
		n := int32(j - i)
		for b := i / compactBlock; b <= (j-1)/compactBlock; b++ {
			if n > out[b] {
				out[b] = n
			}
		}
		i = j
	}
	return out
}

// suffixMax folds per-block maxima into their suffix maxima, in
// place: out[b] = max(in[b:]).
func suffixMax(m []int32) []int32 {
	for b := len(m) - 2; b >= 0; b-- {
		if m[b+1] > m[b] {
			m[b] = m[b+1]
		}
	}
	return m
}

// BoundsOf computes the block-max bound metadata of a document-
// ordered posting list in one pass. The result shares no memory with
// derived state that could change; list itself must stay immutable
// (the standing PostingList contract).
func BoundsOf(list PostingList) *ListBounds {
	if len(list) == 0 {
		return emptyBounds
	}
	nb := (len(list) + compactBlock - 1) / compactBlock
	lasts := make(PostingList, nb)
	for b := range lasts {
		lasts[b] = list[min((b+1)*compactBlock, len(list))-1]
	}
	return &ListBounds{lasts: lasts, suffix: suffixMax(blockMaxTFs(list))}
}

// Blocks returns the number of 64-posting blocks the list spans.
func (lb *ListBounds) Blocks() int { return len(lb.suffix) }

// MaxTF returns the whole-list tf bound: no single non-root result
// subtree can contain more than this many of the list's postings.
func (lb *ListBounds) MaxTF() int {
	if len(lb.suffix) == 0 {
		return 0
	}
	return int(lb.suffix[0])
}

// BoundCursor is the monotone consumer interface over bound metadata:
// MaxTFFrom must be called with non-decreasing (document-ordered),
// non-empty IDs and returns an upper bound on the term frequency of
// the queried entity and of every later one. BlocksLeft reports how
// many blocks the cursor has not yet passed — the work a cutoff
// saves, surfaced as the blocks_skipped metric.
type BoundCursor interface {
	MaxTFFrom(id dewey.ID) int
	BlocksLeft() int
}

// listBoundCursor advances linearly over one list's block directory;
// queries are monotone, so a whole query's advances cost O(blocks)
// total.
type listBoundCursor struct {
	lb  *ListBounds
	cur int
}

// Cursor returns a fresh bound cursor positioned before the first
// block.
func (lb *ListBounds) Cursor() BoundCursor { return &listBoundCursor{lb: lb} }

func (c *listBoundCursor) MaxTFFrom(id dewey.ID) int {
	lasts := c.lb.lasts
	for c.cur < len(lasts) && lasts[c.cur].Compare(id) < 0 {
		c.cur++
	}
	if c.cur >= len(c.lb.suffix) {
		return 0 // every posting precedes id: nothing left under it
	}
	return int(c.lb.suffix[c.cur])
}

func (c *listBoundCursor) BlocksLeft() int { return len(c.lb.suffix) - c.cur }

// maxBoundCursor bounds a composition whose parts never split one
// subtree's postings: the max of the parts' bounds. Valid for the
// live delta ⊕ base composition — an added entity's postings live
// entirely in the delta (fresh top-level ordinals), a base node's
// entirely in the base.
type maxBoundCursor struct{ parts []BoundCursor }

// MaxBoundCursor composes part cursors by max. Use only when every
// result subtree's postings are known to live in exactly one part;
// otherwise compose with SumBoundCursor.
func MaxBoundCursor(parts ...BoundCursor) BoundCursor {
	if len(parts) == 1 {
		return parts[0]
	}
	return &maxBoundCursor{parts: parts}
}

func (c *maxBoundCursor) MaxTFFrom(id dewey.ID) int {
	ub := 0
	for _, p := range c.parts {
		if v := p.MaxTFFrom(id); v > ub {
			ub = v
		}
	}
	return ub
}

func (c *maxBoundCursor) BlocksLeft() int {
	n := 0
	for _, p := range c.parts {
		n += p.BlocksLeft()
	}
	return n
}

// sumBoundCursor bounds an arbitrary partition of one corpus's
// postings: tf is additive over disjoint parts, so the sum of the
// parts' bounds is always admissible (if loose). The sharded base of
// a live engine needs it — a spine wrapper node's subtree can span
// the spine part and several shard parts.
type sumBoundCursor struct{ parts []BoundCursor }

// SumBoundCursor composes part cursors by sum — the always-valid
// composition for parts that partition one logical posting list.
func SumBoundCursor(parts ...BoundCursor) BoundCursor {
	if len(parts) == 1 {
		return parts[0]
	}
	return &sumBoundCursor{parts: parts}
}

func (c *sumBoundCursor) MaxTFFrom(id dewey.ID) int {
	ub := 0
	for _, p := range c.parts {
		ub += p.MaxTFFrom(id)
	}
	return ub
}

func (c *sumBoundCursor) BlocksLeft() int {
	n := 0
	for _, p := range c.parts {
		n += p.BlocksLeft()
	}
	return n
}

// TermBounds returns term's block-max bound metadata, computing it on
// first use and caching it per symbol: from the heap list when the
// list is resident, or straight from the compact payload's per-block
// max-tf directory without materializing the list. A nil return means
// the backing payload predates block maxima (a legacy v4 snapshot) —
// the caller's signal to fall back to unpruned streaming. Terms the
// index does not know return the empty bounds, never nil.
func (idx *Index) TermBounds(term string) *ListBounds {
	id, ok := idx.symbols.ID(term)
	if !ok {
		return emptyBounds
	}
	return idx.boundsID(id)
}

func (idx *Index) boundsID(id uint32) *ListBounds {
	idx.boundsMu.Lock()
	lb, ok := idx.bounds[id]
	idx.boundsMu.Unlock()
	if ok {
		return lb
	}
	// postings is read-only after construction, so the unlocked read
	// is safe; compact materialization has its own lock.
	if l, ok := idx.postings[id]; ok {
		lb = BoundsOf(l)
	} else if idx.compact != nil {
		lb = idx.compact.bounds(id)
		if lb == nil {
			return nil // legacy payload: bounds unavailable, don't cache
		}
	} else {
		lb = emptyBounds
	}
	idx.boundsMu.Lock()
	if prior, ok := idx.bounds[id]; ok {
		lb = prior
	} else {
		if idx.bounds == nil {
			idx.bounds = make(map[uint32]*ListBounds)
		}
		idx.bounds[id] = lb
	}
	idx.boundsMu.Unlock()
	return lb
}
