package index

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"repro/internal/xmltree"
)

// TestPropTokenizeWellFormed: tokens are nonempty, lowercase,
// alphanumeric-only, for arbitrary input strings.
func TestPropTokenizeWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lowercased as far as Unicode allows (some letters,
				// e.g. math bold capitals, have no lowercase form).
				if r != unicode.ToLower(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTokenizeCoversInput: every letter/digit of the input appears
// in some token (nothing is silently dropped).
func TestPropTokenizeCoversInput(t *testing.T) {
	f := func(s string) bool {
		joined := strings.Join(Tokenize(s), "")
		count := 0
		for _, r := range s {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				count++
			}
		}
		return len([]rune(joined)) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTokenizeQueryIdempotent: re-tokenizing the joined query
// terms yields the same terms.
func TestPropTokenizeQueryIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := TokenizeQuery(s)
		twice := TokenizeQuery(strings.Join(once, " "))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPostingsSortedAndUnique: for arbitrary (small) documents,
// every posting list is strictly increasing in document order.
func TestPropPostingsSortedAndUnique(t *testing.T) {
	docs := []string{
		`<a><b>x y</b><b>x</b><c>y z</c></a>`,
		`<a><a><a>deep deep</a></a></a>`,
		`<r><p k="v w">v</p><p>w w v</p></r>`,
		`<r><x>1 2 3</x><y>3 2 1</y><z>2</z></r>`,
	}
	for _, doc := range docs {
		idx := Build(xmltree.MustParseString(doc))
		for _, term := range idx.Vocabulary() {
			list := idx.Lookup(term)
			for i := 1; i < len(list); i++ {
				if list[i-1].Compare(list[i]) >= 0 {
					t.Fatalf("doc %q term %q: postings not strictly sorted: %v", doc, term, list)
				}
			}
		}
	}
}
