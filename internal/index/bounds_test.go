package index

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// randomGroupedList builds a strictly increasing posting list whose
// IDs fall into depth-1 groups of varied sizes — the structure the
// block-max bound is built over.
func randomGroupedList(r *rand.Rand, n int) PostingList {
	list := make(PostingList, 0, n)
	g, x := 0, 0
	for len(list) < n {
		if x > 0 && r.Intn(6) == 0 {
			g += 1 + r.Intn(3)
			x = 0
		}
		x += 1 + r.Intn(4)
		list = append(list, dewey.New(g, x, r.Intn(3)))
	}
	return list
}

// listIndex wraps one list as a servable in-heap index under term "t".
func listIndex(list PostingList) *Index {
	idx := newIndex(nil, nil)
	idx.postings[idx.intern("t")] = list
	idx.ensureSorted()
	return idx
}

// TestBoundsAdmissible: for every node of a real corpus, the bound
// cursor queried at the node's ID (in document order) must dominate
// the node's actual term frequency — the invariant the WAND consumer's
// correctness rests on — for heap-resident and compact-served bounds
// alike.
func TestBoundsAdmissible(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 9, Movies: 120})
	built := Build(root)
	compact := func() *Index {
		st := NewSymbolTable()
		payload, err := EncodeCompact(built, st)
		if err != nil {
			t.Fatal(err)
		}
		out, err := OpenCompact(root, st, payload, false)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	var walk func(n *xmltree.Node, visit func(*xmltree.Node))
	walk = func(n *xmltree.Node, visit func(*xmltree.Node)) {
		visit(n)
		for _, c := range n.Children {
			walk(c, visit)
		}
	}
	for _, idx := range []*Index{built, compact} {
		for _, term := range []string{"movie", "action", "revenge", "director"} {
			lb := idx.TermBounds(term)
			if lb == nil {
				t.Fatalf("TermBounds(%q) = nil on a current-format index", term)
			}
			list := built.Lookup(term)
			cur := lb.Cursor()
			counter := NewCounter(list)
			walk(root, func(n *xmltree.Node) {
				if len(n.ID) == 0 {
					return // the root is exempt by contract
				}
				tf := counter.CountUnder(n.ID)
				ub := cur.MaxTFFrom(n.ID)
				if tf > ub {
					t.Fatalf("term %q node %v: tf %d exceeds bound %d", term, n.ID, tf, ub)
				}
			})
			if lb.MaxTF() > len(list) {
				t.Fatalf("term %q: MaxTF %d exceeds list length %d", term, lb.MaxTF(), len(list))
			}
		}
		if lb := idx.TermBounds("no-such-term"); lb == nil || lb.Blocks() != 0 {
			t.Fatalf("unknown term bounds = %v, want empty", lb)
		}
	}
}

// TestBoundCursorMonotone pins the cursor mechanics on a handcrafted
// list: suffix maxima, exhaustion, and BlocksLeft accounting.
func TestBoundCursorMonotone(t *testing.T) {
	// Three groups: sizes 3, 1, 2 — all within one block.
	list := PostingList{
		dewey.New(0, 1), dewey.New(0, 2), dewey.New(0, 3),
		dewey.New(1, 1),
		dewey.New(2, 1), dewey.New(2, 2),
	}
	lb := BoundsOf(list)
	if lb.Blocks() != 1 || lb.MaxTF() != 3 {
		t.Fatalf("Blocks=%d MaxTF=%d, want 1/3", lb.Blocks(), lb.MaxTF())
	}
	cur := lb.Cursor()
	if got := cur.MaxTFFrom(dewey.ID{0}); got != 3 {
		t.Fatalf("MaxTFFrom({0}) = %d, want 3", got)
	}
	if got := cur.BlocksLeft(); got != 1 {
		t.Fatalf("BlocksLeft = %d, want 1", got)
	}
	// Past the whole list: bound 0, nothing left.
	if got := cur.MaxTFFrom(dewey.ID{9}); got != 0 {
		t.Fatalf("MaxTFFrom({9}) = %d, want 0", got)
	}
	if got := cur.BlocksLeft(); got != 0 {
		t.Fatalf("exhausted BlocksLeft = %d, want 0", got)
	}

	// Composition: max picks the larger side, sum adds.
	a, b := BoundsOf(list).Cursor(), BoundsOf(list[:4]).Cursor()
	if got := MaxBoundCursor(a, b).MaxTFFrom(dewey.ID{0}); got != 3 {
		t.Fatalf("max composition = %d, want 3", got)
	}
	a, b = BoundsOf(list).Cursor(), BoundsOf(list[:4]).Cursor()
	if got := SumBoundCursor(a, b).MaxTFFrom(dewey.ID{0}); got != 6 {
		t.Fatalf("sum composition = %d, want 6", got)
	}
}

// encodeCompactLegacy writes idx's postings in the original (PR 7)
// compact layout: no magic/version header, no per-block max-tf
// directory. It is the byte form old v4 snapshots carry, kept here to
// pin the fallback behaviour.
func encodeCompactLegacy(t *testing.T, idx *Index, st *SymbolTable) []byte {
	t.Helper()
	lists := make(map[uint32]PostingList)
	remap := st != idx.symbols
	idx.eachList(func(id uint32, l PostingList) {
		if remap {
			id = st.Intern(idx.symbols.Name(id))
		}
		lists[id] = l
	})
	n := st.Len()
	buf := binary.AppendUvarint(nil, uint64(idx.terms))
	buf = binary.AppendUvarint(buf, uint64(idx.elements))
	buf = binary.AppendUvarint(buf, uint64(n))
	for id := 0; id < n; id++ {
		l := lists[uint32(id)]
		if len(l) == 0 {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		count := len(l)
		nBlocks := (count + compactBlock - 1) / compactBlock
		var region []byte
		region = binary.AppendUvarint(region, uint64(count))
		region = binary.AppendUvarint(region, uint64(nBlocks))
		blocks := make([][]byte, nBlocks)
		for bi := 0; bi < nBlocks; bi++ {
			lo, hi := bi*compactBlock, (bi+1)*compactBlock
			if hi > count {
				hi = count
			}
			blk, err := appendBlock(nil, l[lo:hi])
			if err != nil {
				t.Fatalf("appendBlock: %v", err)
			}
			blocks[bi] = blk
		}
		for _, blk := range blocks {
			region = binary.AppendUvarint(region, uint64(len(blk)))
		}
		for bi := 0; bi < nBlocks; bi++ {
			region = appendCompactID(region, l[min((bi+1)*compactBlock, count)-1])
		}
		for _, blk := range blocks {
			region = append(region, blk...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(region)))
		buf = append(buf, region...)
	}
	return buf
}

// TestLegacyCompactPayloadFallsBack: a payload written before block
// maxima existed must still serve postings bit-identically, while
// reporting nil TermBounds — the unpruned-streaming fallback signal.
func TestLegacyCompactPayloadFallsBack(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 4, Movies: 80})
	idx := Build(root)
	st := NewSymbolTable()
	payload := encodeCompactLegacy(t, idx, st)
	legacy, err := OpenCompact(root, st, payload, false)
	if err != nil {
		t.Fatalf("OpenCompact(legacy): %v", err)
	}
	for _, term := range idx.Vocabulary() {
		want := idx.Lookup(term)
		got := legacy.Lookup(term)
		if len(got) != len(want) {
			t.Fatalf("legacy Lookup(%q): %d postings, want %d", term, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("legacy Lookup(%q)[%d] = %v, want %v", term, i, got[i], want[i])
			}
		}
	}
	if lb := legacy.TermBounds("movie"); lb != nil {
		t.Fatalf("legacy TermBounds = %v, want nil (fallback signal)", lb)
	}
	// Unknown terms stay empty-not-nil even on legacy payloads: there is
	// nothing to bound, so no fallback is needed.
	if lb := legacy.TermBounds("no-such-term"); lb == nil || lb.Blocks() != 0 {
		t.Fatalf("legacy unknown-term bounds = %v, want empty", lb)
	}
}

// TestCompactVersionRejected: a versioned payload declaring an unknown
// revision must fail closed at open.
func TestCompactVersionRejected(t *testing.T) {
	buf := binary.AppendUvarint(nil, compactMagic)
	buf = binary.AppendUvarint(buf, compactVersion+1)
	buf = binary.AppendUvarint(buf, 0) // terms
	buf = binary.AppendUvarint(buf, 0) // elements
	buf = binary.AppendUvarint(buf, 0) // nLists
	if _, err := OpenCompact(nil, NewSymbolTable(), buf, false); err == nil {
		t.Fatal("unknown payload version opened without error")
	}
}

// skipRef is the reference model fuzzed cursors are checked against: a
// plain position over the materialized list with the same block
// arithmetic the blockIter promises.
type skipRef struct {
	list PostingList
	max  []int32
	pos  int
}

func (r *skipRef) curBlock() int {
	if r.pos >= len(r.list) {
		return len(r.max)
	}
	return r.pos / compactBlock
}

func (r *skipRef) blockMaxTF() int {
	cur := r.curBlock()
	if cur >= len(r.max) {
		return 0
	}
	return int(r.max[cur])
}

func (r *skipRef) skipBlock() bool {
	cur := r.curBlock()
	if cur+1 >= len(r.max) {
		r.pos = len(r.list)
		return false
	}
	r.pos = (cur + 1) * compactBlock
	return true
}

// driveSkipEquivalence runs one op sequence over a blockIter and the
// reference model, failing on the first divergence.
func driveSkipEquivalence(t *testing.T, list PostingList, ops []byte) {
	t.Helper()
	cidx := func() *Index {
		idx := listIndex(list)
		st := NewSymbolTable()
		payload, err := EncodeCompact(idx, st)
		if err != nil {
			t.Fatal(err)
		}
		out, err := OpenCompact(nil, st, payload, false)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()
	a, ok := cidx.TermIter("t").(*blockIter)
	if !ok {
		t.Fatalf("expected a blockIter, got %T", cidx.TermIter("t"))
	}
	ref := &skipRef{list: list, max: blockMaxTFs(list)}
	tgtG, tgtX := 0, 0
	for i, op := range ops {
		switch op % 3 {
		case 0:
			av, aok := a.Next()
			var bv dewey.ID
			bok := ref.pos < len(ref.list)
			if bok {
				bv = ref.list[ref.pos]
				ref.pos++
			}
			if aok != bok || (aok && !av.Equal(bv)) {
				t.Fatalf("op %d Next: block %v/%v, ref %v/%v", i, av, aok, bv, bok)
			}
		case 1:
			// Forward-only Seek targets (the Iter contract).
			tgtX += int(op) % 7
			if op%5 == 0 {
				tgtG++
				tgtX = 0
			}
			id := dewey.New(tgtG, tgtX)
			av, aok := a.Seek(id)
			for ref.pos < len(ref.list) && ref.list[ref.pos].Compare(id) < 0 {
				ref.pos++
			}
			var bv dewey.ID
			bok := ref.pos < len(ref.list)
			if bok {
				bv = ref.list[ref.pos]
			}
			if aok != bok || (aok && !av.Equal(bv)) {
				t.Fatalf("op %d Seek(%v): block %v/%v, ref %v/%v", i, id, av, aok, bv, bok)
			}
		default:
			am := a.BlockMaxTF()
			bm := ref.blockMaxTF()
			if am != bm {
				t.Fatalf("op %d BlockMaxTF: block %d, ref %d (pos %d)", i, am, bm, ref.pos)
			}
			aok := a.SkipBlock()
			bok := ref.skipBlock()
			if aok != bok {
				t.Fatalf("op %d SkipBlock: block %v, ref %v", i, aok, bok)
			}
			av, aPeek := a.Peek()
			var bv dewey.ID
			bPeek := ref.pos < len(ref.list)
			if bPeek {
				bv = ref.list[ref.pos]
			}
			if aPeek != bPeek || (aPeek && !av.Equal(bv)) {
				t.Fatalf("op %d post-skip Peek: block %v/%v, ref %v/%v", i, av, aPeek, bv, bPeek)
			}
		}
	}
}

// TestBlockIterSkipBlockEquivalence: deterministic sweep of the fuzz
// property over list shapes that straddle block boundaries.
func TestBlockIterSkipBlockEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{1, compactBlock - 1, compactBlock, compactBlock + 1, 3*compactBlock + 7, 10 * compactBlock} {
		list := randomGroupedList(r, n)
		for trial := 0; trial < 10; trial++ {
			ops := make([]byte, 80)
			r.Read(ops)
			driveSkipEquivalence(t, list, ops)
		}
	}
}

// FuzzBlockIterSkipBlock fuzzes SkipBlock/BlockMaxTF/Next/Seek
// interleavings on the lazily-decoding cursor against the materialized
// reference model.
func FuzzBlockIterSkipBlock(f *testing.F) {
	f.Add(int64(1), uint16(100), []byte{0, 1, 2, 2, 1, 0})
	f.Add(int64(7), uint16(300), []byte{2, 2, 2, 2, 2, 2, 2, 2})
	f.Add(int64(42), uint16(1), []byte{2, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, n uint16, ops []byte) {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		size := int(n)%1200 + 1
		list := randomGroupedList(rand.New(rand.NewSource(seed)), size)
		driveSkipEquivalence(t, list, ops)
	})
}
