package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// PostingList is the document-ordered list of Dewey IDs of nodes that
// contain a term. Lists are sorted by dewey.ID.Compare and contain no
// duplicates.
type PostingList []dewey.ID

// Index is an inverted index over one XML tree. A node "contains" a
// term if the term appears in the node's direct text children, in its
// attribute values, or equals a token of its tag name. Only element
// nodes are posted; the element owning a text node is what keyword
// search should return.
//
// Terms are interned through a SymbolTable (possibly shared with other
// indexes — see intern.go) and every internal map is keyed by the
// dense uint32 symbol ID; the string-keyed API resolves through the
// table. Postings live either in the heap map or, for snapshot-opened
// indexes, in a compact varint payload decoded lazily (compact.go).
type Index struct {
	symbols  *SymbolTable
	postings map[uint32]PostingList
	root     *xmltree.Node
	terms    int // total term occurrences, for stats
	elements int // distinct elements with at least one posting
	// skips holds the skip-pointer ladders of long posting lists (see
	// skips.go); nil until buildSkips runs, absent for short lists.
	skips map[uint32]PostingList
	// compact backs a snapshot-opened index: lists absent from the
	// postings map are served (and materialized on demand) from it.
	compact *compactPostings
	// lids memoizes term→ID for this builder so indexing pays one
	// synchronized table hit per distinct term, not per posting.
	// Dropped when the build finishes.
	lids map[string]uint32
	// bounds caches per-term block-max score bounds (bounds.go),
	// computed lazily on the first WAND query touching the term.
	boundsMu sync.Mutex
	bounds   map[uint32]*ListBounds
}

// newIndex returns an empty index over root interning into st (a fresh
// table when nil).
func newIndex(root *xmltree.Node, st *SymbolTable) *Index {
	if st == nil {
		st = NewSymbolTable()
	}
	return &Index{
		symbols:  st,
		postings: make(map[uint32]PostingList),
		root:     root,
	}
}

// Build constructs an index over the tree rooted at root. The tree must
// already carry Dewey IDs (xmltree.Parse assigns them; call AssignIDs
// after manual construction).
func Build(root *xmltree.Node) *Index {
	idx := newIndex(root, nil)
	idx.indexSubtree(root)
	// Walk is preorder, which is document order, so lists are already
	// sorted; ensureSorted is a safety net for hand-built trees whose
	// IDs were assigned out of order.
	idx.ensureSorted()
	return idx
}

// intern resolves term to its symbol ID through the build-local memo.
func (idx *Index) intern(term string) uint32 {
	if id, ok := idx.lids[term]; ok {
		return id
	}
	id := idx.symbols.Intern(term)
	if idx.lids == nil {
		idx.lids = make(map[string]uint32)
	}
	idx.lids[term] = id
	return id
}

// indexNode posts the terms of a single element node.
func (idx *Index) indexNode(n *xmltree.Node) {
	if n.Kind != xmltree.Element {
		return
	}
	seen := make(map[uint32]bool)
	add := func(term string) {
		if term == "" {
			return
		}
		id := idx.intern(term)
		if seen[id] {
			return
		}
		if len(seen) == 0 {
			idx.elements++
		}
		seen[id] = true
		idx.postings[id] = append(idx.postings[id], n.ID)
		idx.terms++
	}
	for _, t := range Tokenize(n.Tag) {
		add(t)
	}
	for _, a := range n.Attrs {
		for _, t := range Tokenize(a.Value) {
			add(t)
		}
	}
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			for _, t := range Tokenize(c.Text) {
				add(t)
			}
		}
	}
}

// indexSubtree posts every element in root's subtree in document order.
func (idx *Index) indexSubtree(root *xmltree.Node) {
	root.Walk(func(n *xmltree.Node) bool {
		idx.indexNode(n)
		return true
	})
}

// Root returns the tree the index was built over.
func (idx *Index) Root() *xmltree.Node { return idx.root }

// Symbols returns the index's symbol table. Shared tables are common:
// deltas intern into their base's table, shards into their engine's.
func (idx *Index) Symbols() *SymbolTable { return idx.symbols }

// TermID resolves term through the symbol table. Note a shared table
// may know terms this particular index holds no postings for.
func (idx *Index) TermID(term string) (uint32, bool) { return idx.symbols.ID(term) }

// lookupID returns the posting list behind a symbol ID, materializing
// compact-backed lists on first touch.
func (idx *Index) lookupID(id uint32) PostingList {
	if l, ok := idx.postings[id]; ok {
		return l
	}
	if idx.compact != nil {
		return idx.compact.materialize(id)
	}
	return nil
}

// Lookup returns the posting list for term (already lowercased by
// Tokenize conventions). The returned slice must not be modified.
func (idx *Index) Lookup(term string) PostingList {
	id, ok := idx.symbols.ID(term)
	if !ok {
		return nil
	}
	return idx.lookupID(id)
}

// DocFreq returns the number of nodes containing term.
func (idx *Index) DocFreq(term string) int {
	id, ok := idx.symbols.ID(term)
	if !ok {
		return 0
	}
	return idx.docFreqID(id)
}

func (idx *Index) docFreqID(id uint32) int {
	if l, ok := idx.postings[id]; ok {
		return len(l)
	}
	if idx.compact != nil {
		return idx.compact.count(id)
	}
	return 0
}

// EachTermID calls f for every indexed term's symbol ID and document
// frequency without resolving names — the cheapest whole-vocabulary
// walk. Compact-backed indexes answer from the directory alone.
func (idx *Index) EachTermID(f func(id uint32, df int)) {
	if idx.compact != nil {
		idx.compact.each(f)
		return
	}
	for id, l := range idx.postings {
		f(id, len(l))
	}
}

// EachTerm calls f for every indexed term with its document frequency,
// in unspecified order — the allocation- and sort-free walk for
// callers that aggregate over the whole vocabulary.
func (idx *Index) EachTerm(f func(term string, df int)) {
	idx.EachTermID(func(id uint32, df int) {
		f(idx.symbols.Name(id), df)
	})
}

// eachList visits every non-empty posting list by symbol ID,
// materializing compact-backed lists.
func (idx *Index) eachList(f func(id uint32, list PostingList)) {
	if idx.compact != nil {
		idx.compact.each(func(id uint32, _ int) {
			f(id, idx.compact.materialize(id))
		})
		return
	}
	for id, l := range idx.postings {
		f(id, l)
	}
}

// Vocabulary returns all indexed terms in lexicographic order.
func (idx *Index) Vocabulary() []string {
	var terms []string
	idx.EachTermID(func(id uint32, _ int) {
		terms = append(terms, idx.symbols.Name(id))
	})
	sort.Strings(terms)
	return terms
}

// Stats summarizes the index. The JSON form is served by xsactd's
// /api/v1/metrics endpoint.
type Stats struct {
	Terms           int `json:"terms"`            // distinct terms
	Postings        int `json:"postings"`         // total postings
	IndexedElements int `json:"indexed_elements"` // distinct elements with at least one posting
}

// Stats returns summary statistics for the index.
func (idx *Index) Stats() Stats {
	s := Stats{IndexedElements: idx.elements}
	idx.EachTermID(func(_ uint32, df int) {
		s.Terms++
		s.Postings += df
	})
	return s
}

// MemStats reports where the index's postings live. For a fully
// in-heap index DataBytes is 0 and every list is resident; for a
// compact-backed (snapshot-opened) index DataBytes is the payload size
// and the resident numbers grow only as queries decode lists.
type MemStats struct {
	DataBytes      int64 `json:"data_bytes"`      // compact payload backing the index
	ResidentLists  int64 `json:"resident_lists"`  // lists decoded into the heap
	ResidentBlocks int64 `json:"resident_blocks"` // 64-posting blocks decoded into the heap
}

// MemStats returns the index's residency counters.
func (idx *Index) MemStats() MemStats {
	var ms MemStats
	for _, l := range idx.postings {
		ms.ResidentLists++
		ms.ResidentBlocks += int64((len(l) + compactBlock - 1) / compactBlock)
	}
	if cp := idx.compact; cp != nil {
		ms.DataBytes = int64(len(cp.data))
		cp.mu.RLock()
		ms.ResidentLists += int64(len(cp.resident))
		ms.ResidentBlocks += int64(cp.residentBlocks)
		cp.mu.RUnlock()
	}
	return ms
}

// PlanStats summarizes the shape of a query's posting lists so callers
// can choose an execution strategy (which SLCA algorithm, whether to
// bother at all) without re-resolving the terms.
type PlanStats struct {
	// Lengths holds each term's posting-list length, in term order.
	Lengths []int
	// Min and Max are the smallest and largest list lengths. The
	// smallest list is the driving list of the eager SLCA algorithms.
	Min, Max int
	// Skew is Max/Min, the planner's main signal: a high ratio means a
	// rare term drives the search and indexed lookups into the long
	// lists win; near 1 means the lists are uniform and a linear merge
	// wins. Skew is 0 when any list is empty (the query cannot match).
	Skew float64
}

// StatsOf computes plan statistics for an already-resolved list set.
func StatsOf(lists []PostingList) PlanStats {
	s := PlanStats{Lengths: make([]int, len(lists))}
	for i, l := range lists {
		n := len(l)
		s.Lengths[i] = n
		if i == 0 || n < s.Min {
			s.Min = n
		}
		if n > s.Max {
			s.Max = n
		}
	}
	if s.Min > 0 {
		s.Skew = float64(s.Max) / float64(s.Min)
	}
	return s
}

// QueryLists resolves each query term to its posting list, along with
// the plan statistics of the resolved set. It returns an error listing
// the terms with empty postings, because SLCA over an absent keyword is
// defined to be empty and callers usually want to report that to the
// user instead.
func (idx *Index) QueryLists(terms []string) ([]PostingList, PlanStats, error) {
	lists := make([]PostingList, len(terms))
	var missing []string
	for i, t := range terms {
		lists[i] = idx.Lookup(t)
		if len(lists[i]) == 0 {
			missing = append(missing, t)
		}
	}
	stats := StatsOf(lists)
	if len(missing) > 0 {
		return lists, stats, &NoMatchError{Terms: missing}
	}
	return lists, stats, nil
}

// NoMatchError reports query keywords that match no node.
type NoMatchError struct {
	Terms []string
}

func (e *NoMatchError) Error() string {
	return fmt.Sprintf("index: no matches for keywords %v", e.Terms)
}

// WireVersion identifies the Save/Load encoding. Bump it whenever the
// gob wire form changes incompatibly; Load rejects mismatches so stale
// snapshots fall back to a rebuild instead of decoding garbage.
const WireVersion = 2

// gobIndex is the wire form for Save/Load. Dewey IDs flatten to []int.
// Terms stay strings on this wire so v1-v3 snapshots keep loading
// regardless of symbol assignment; the v4 snapshot uses the compact
// ID-keyed layout instead (compact.go).
type gobIndex struct {
	Version  int
	Postings map[string][][]int
	Terms    int
	Elements int
}

// Save writes the index postings to w with encoding/gob, prefixed by
// the wire version. The tree itself is not persisted; pair Save with
// the document it indexes.
func (idx *Index) Save(w io.Writer) error {
	g := gobIndex{
		Version:  WireVersion,
		Postings: make(map[string][][]int),
		Terms:    idx.terms,
		Elements: idx.elements,
	}
	idx.eachList(func(id uint32, list PostingList) {
		ids := make([][]int, len(list))
		for i, pid := range list {
			ids[i] = []int(pid)
		}
		g.Postings[idx.symbols.Name(id)] = ids
	})
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads postings written by Save and attaches them to root. An
// index written under a different wire version is rejected. Terms are
// interned into a fresh table.
func Load(r io.Reader, root *xmltree.Node) (*Index, error) {
	var g gobIndex
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if g.Version != WireVersion {
		return nil, fmt.Errorf("index: load: wire version %d, want %d", g.Version, WireVersion)
	}
	idx := newIndex(root, nil)
	idx.terms = g.Terms
	idx.elements = g.Elements
	for term, ids := range g.Postings {
		list := make(PostingList, len(ids))
		for i, id := range ids {
			list[i] = dewey.ID(id)
		}
		idx.postings[idx.intern(term)] = list
	}
	idx.lids = nil
	idx.buildSkips()
	return idx, nil
}
