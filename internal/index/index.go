package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// PostingList is the document-ordered list of Dewey IDs of nodes that
// contain a term. Lists are sorted by dewey.ID.Compare and contain no
// duplicates.
type PostingList []dewey.ID

// Index is an inverted index over one XML tree. A node "contains" a
// term if the term appears in the node's direct text children, in its
// attribute values, or equals a token of its tag name. Only element
// nodes are posted; the element owning a text node is what keyword
// search should return.
type Index struct {
	postings map[string]PostingList
	root     *xmltree.Node
	terms    int // total term occurrences, for stats
	elements int // distinct elements with at least one posting
	// skips holds the skip-pointer ladders of long posting lists (see
	// skips.go); nil until buildSkips runs, absent for short lists.
	skips map[string]PostingList
}

// Build constructs an index over the tree rooted at root. The tree must
// already carry Dewey IDs (xmltree.Parse assigns them; call AssignIDs
// after manual construction).
func Build(root *xmltree.Node) *Index {
	idx := &Index{
		postings: make(map[string]PostingList),
		root:     root,
	}
	idx.indexSubtree(root)
	// Walk is preorder, which is document order, so lists are already
	// sorted; ensureSorted is a safety net for hand-built trees whose
	// IDs were assigned out of order.
	idx.ensureSorted()
	return idx
}

// indexNode posts the terms of a single element node.
func (idx *Index) indexNode(n *xmltree.Node) {
	if n.Kind != xmltree.Element {
		return
	}
	seen := make(map[string]bool)
	add := func(term string) {
		if term == "" || seen[term] {
			return
		}
		if len(seen) == 0 {
			idx.elements++
		}
		seen[term] = true
		idx.postings[term] = append(idx.postings[term], n.ID)
		idx.terms++
	}
	for _, t := range Tokenize(n.Tag) {
		add(t)
	}
	for _, a := range n.Attrs {
		for _, t := range Tokenize(a.Value) {
			add(t)
		}
	}
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			for _, t := range Tokenize(c.Text) {
				add(t)
			}
		}
	}
}

// indexSubtree posts every element in root's subtree in document order.
func (idx *Index) indexSubtree(root *xmltree.Node) {
	root.Walk(func(n *xmltree.Node) bool {
		idx.indexNode(n)
		return true
	})
}

// Root returns the tree the index was built over.
func (idx *Index) Root() *xmltree.Node { return idx.root }

// Lookup returns the posting list for term (already lowercased by
// Tokenize conventions). The returned slice must not be modified.
func (idx *Index) Lookup(term string) PostingList {
	return idx.postings[term]
}

// DocFreq returns the number of nodes containing term.
func (idx *Index) DocFreq(term string) int { return len(idx.postings[term]) }

// EachTerm calls f for every indexed term with its document frequency,
// in unspecified order — the allocation- and sort-free walk for
// callers that aggregate over the whole vocabulary.
func (idx *Index) EachTerm(f func(term string, df int)) {
	for t, l := range idx.postings {
		f(t, len(l))
	}
}

// Vocabulary returns all indexed terms in lexicographic order.
func (idx *Index) Vocabulary() []string {
	terms := make([]string, 0, len(idx.postings))
	for t := range idx.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}

// Stats summarizes the index. The JSON form is served by xsactd's
// /api/v1/metrics endpoint.
type Stats struct {
	Terms           int `json:"terms"`            // distinct terms
	Postings        int `json:"postings"`         // total postings
	IndexedElements int `json:"indexed_elements"` // distinct elements with at least one posting
}

// Stats returns summary statistics for the index.
func (idx *Index) Stats() Stats {
	s := Stats{Terms: len(idx.postings)}
	for _, l := range idx.postings {
		s.Postings += len(l)
	}
	s.IndexedElements = idx.elements
	return s
}

// PlanStats summarizes the shape of a query's posting lists so callers
// can choose an execution strategy (which SLCA algorithm, whether to
// bother at all) without re-resolving the terms.
type PlanStats struct {
	// Lengths holds each term's posting-list length, in term order.
	Lengths []int
	// Min and Max are the smallest and largest list lengths. The
	// smallest list is the driving list of the eager SLCA algorithms.
	Min, Max int
	// Skew is Max/Min, the planner's main signal: a high ratio means a
	// rare term drives the search and indexed lookups into the long
	// lists win; near 1 means the lists are uniform and a linear merge
	// wins. Skew is 0 when any list is empty (the query cannot match).
	Skew float64
}

// StatsOf computes plan statistics for an already-resolved list set.
func StatsOf(lists []PostingList) PlanStats {
	s := PlanStats{Lengths: make([]int, len(lists))}
	for i, l := range lists {
		n := len(l)
		s.Lengths[i] = n
		if i == 0 || n < s.Min {
			s.Min = n
		}
		if n > s.Max {
			s.Max = n
		}
	}
	if s.Min > 0 {
		s.Skew = float64(s.Max) / float64(s.Min)
	}
	return s
}

// QueryLists resolves each query term to its posting list, along with
// the plan statistics of the resolved set. It returns an error listing
// the terms with empty postings, because SLCA over an absent keyword is
// defined to be empty and callers usually want to report that to the
// user instead.
func (idx *Index) QueryLists(terms []string) ([]PostingList, PlanStats, error) {
	lists := make([]PostingList, len(terms))
	var missing []string
	for i, t := range terms {
		lists[i] = idx.postings[t]
		if len(lists[i]) == 0 {
			missing = append(missing, t)
		}
	}
	stats := StatsOf(lists)
	if len(missing) > 0 {
		return lists, stats, &NoMatchError{Terms: missing}
	}
	return lists, stats, nil
}

// NoMatchError reports query keywords that match no node.
type NoMatchError struct {
	Terms []string
}

func (e *NoMatchError) Error() string {
	return fmt.Sprintf("index: no matches for keywords %v", e.Terms)
}

// WireVersion identifies the Save/Load encoding. Bump it whenever the
// gob wire form changes incompatibly; Load rejects mismatches so stale
// snapshots fall back to a rebuild instead of decoding garbage.
const WireVersion = 2

// gobIndex is the wire form for Save/Load. Dewey IDs flatten to []int.
type gobIndex struct {
	Version  int
	Postings map[string][][]int
	Terms    int
	Elements int
}

// Save writes the index postings to w with encoding/gob, prefixed by
// the wire version. The tree itself is not persisted; pair Save with
// the document it indexes.
func (idx *Index) Save(w io.Writer) error {
	g := gobIndex{
		Version:  WireVersion,
		Postings: make(map[string][][]int, len(idx.postings)),
		Terms:    idx.terms,
		Elements: idx.elements,
	}
	for term, list := range idx.postings {
		ids := make([][]int, len(list))
		for i, id := range list {
			ids[i] = []int(id)
		}
		g.Postings[term] = ids
	}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads postings written by Save and attaches them to root. An
// index written under a different wire version is rejected.
func Load(r io.Reader, root *xmltree.Node) (*Index, error) {
	var g gobIndex
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if g.Version != WireVersion {
		return nil, fmt.Errorf("index: load: wire version %d, want %d", g.Version, WireVersion)
	}
	idx := &Index{
		postings: make(map[string]PostingList, len(g.Postings)),
		root:     root,
		terms:    g.Terms,
		elements: g.Elements,
	}
	for term, ids := range g.Postings {
		list := make(PostingList, len(ids))
		for i, id := range ids {
			list[i] = dewey.ID(id)
		}
		idx.postings[term] = list
	}
	idx.buildSkips()
	return idx, nil
}
