package index

import "repro/internal/dewey"

// Skip-pointer ladders: for long posting lists the index precomputes a
// sampled ladder — the last ID of every skipInterval-sized block — so
// a streamed query's Seek jumps whole blocks with one binary search
// over the (64x smaller) ladder instead of galloping through the list.
// Ladders are built once per index (Build/Load/Merge all funnel
// through the same hook) and shared by every query; short lists stay
// ladder-free and fall back to plain galloping, which is already
// O(log gap) there. Compact-backed lists carry the ladder inside the
// payload itself: the per-block last IDs double as ladder entries
// (compact.go).

const (
	// skipInterval is the block size one ladder entry summarizes.
	skipInterval = 64
	// skipMinLen is the list length below which a ladder isn't worth
	// its construction and memory: galloping a short list is cheap.
	skipMinLen = 1024
)

// buildSkips (re)derives the skip ladders for every qualifying posting
// list. Ladder entries alias the list's IDs, so the memory cost is one
// slice header per block.
func (idx *Index) buildSkips() {
	if idx.skips != nil {
		idx.skips = nil
	}
	for id, list := range idx.postings {
		if len(list) < skipMinLen {
			continue
		}
		list = packList(list)
		idx.postings[id] = list
		if idx.skips == nil {
			idx.skips = make(map[uint32]PostingList)
		}
		blocks := len(list) / skipInterval
		ladder := make(PostingList, blocks)
		for b := 0; b < blocks; b++ {
			ladder[b] = list[(b+1)*skipInterval-1]
		}
		idx.skips[id] = ladder
	}
}

// packList rewrites a long posting list so all its IDs share one
// contiguous arena. Postings otherwise alias tree-node IDs scattered
// across the heap by the parse, making every gallop probe a cache
// miss; a packed list is walked in sequential memory, which is most of
// what the ladder's block search pays for. Entries are capacity-pinned
// subslices, keeping the same immutability guarantees as the tree IDs
// they replace.
func packList(list PostingList) PostingList {
	total := 0
	for _, id := range list {
		total += len(id)
	}
	arena := make([]int, 0, total)
	packed := make(PostingList, len(list))
	for i, id := range list {
		start := len(arena)
		arena = append(arena, id...)
		packed[i] = dewey.ID(arena[start:len(arena):len(arena)])
	}
	return packed
}

// TermIter returns a cursor over term's posting list, accelerated by
// the term's skip ladder when one exists. An absent term yields an
// exhausted cursor. Compact-backed lists are cursored in place — one
// decoded block at a time — until something materializes them.
func (idx *Index) TermIter(term string) Iter {
	id, ok := idx.symbols.ID(term)
	if !ok {
		return EmptyIter()
	}
	if list, ok := idx.postings[id]; ok {
		if len(list) == 0 {
			return EmptyIter()
		}
		return &sliceIter{list: list, skips: idx.skips[id]}
	}
	if idx.compact != nil {
		return idx.compact.iter(id)
	}
	return EmptyIter()
}

// SkipBlocks reports how many ladder entries term's posting list
// carries (0 when the list is short enough to go ladder-free) — an
// observability hook for tests and metrics.
func (idx *Index) SkipBlocks(term string) int {
	id, ok := idx.symbols.ID(term)
	if !ok {
		return 0
	}
	if l, ok := idx.skips[id]; ok {
		return len(l)
	}
	if _, ok := idx.postings[id]; ok {
		return 0
	}
	if idx.compact != nil {
		return idx.compact.skipBlocks(id)
	}
	return 0
}
