package persist

// This file implements the multi-shard snapshot layout (format
// version 2). The header line is followed by one gob envelope whose
// index data is split into per-shard sections, each carrying its own
// CRC32. Shard sections decode lazily — Load verifies only the
// metadata, schema, and term-frequency sections up front, and hands
// the shard bytes to shard.FromSources, which decodes (and checksums)
// a section the first time a query touches that shard. A section that
// fails its checksum or decode costs a rebuild of that one shard from
// its own segment subtrees; the other shards still load from disk.

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// shardedEnvelope is the gob wire form of the multi-shard layout.
type shardedEnvelope struct {
	Meta Meta
	// Schema and Freqs (the aggregated term→document-frequency table,
	// gob-encoded) are needed before any shard materializes, so they
	// are verified eagerly under one checksum. IndexedElements rides
	// along so aggregate index statistics never force a shard decode.
	Schema          []byte
	Freqs           []byte
	IndexedElements int
	HeadChecksum    uint32 // crc32(Schema ++ Freqs)
	// Shards holds each shard's index section (written by
	// index.Index.Save) with an individual checksum, verified lazily.
	Shards         [][]byte
	ShardChecksums []uint32
}

// headChecksum covers the eagerly-verified sections.
func (e *shardedEnvelope) headChecksum() uint32 {
	crc := crc32.NewIEEE()
	crc.Write(e.Schema)
	crc.Write(e.Freqs)
	return crc.Sum32()
}

// saveSharded writes the multi-shard layout for a sharded executor.
func saveSharded(w io.Writer, sh *shard.Engine, meta Meta) error {
	env := shardedEnvelope{Meta: meta}

	var schBuf bytes.Buffer
	if err := sh.Schema().Save(&schBuf); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	env.Schema = schBuf.Bytes()

	var dfBuf bytes.Buffer
	if err := gob.NewEncoder(&dfBuf).Encode(sh.TermFrequencies()); err != nil {
		return fmt.Errorf("persist: encode term frequencies: %w", err)
	}
	env.Freqs = dfBuf.Bytes()
	env.IndexedElements = sh.IndexStats().IndexedElements
	env.HeadChecksum = env.headChecksum()

	for g, idx := range sh.ShardIndexes() {
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			return fmt.Errorf("persist: shard %d: %w", g, err)
		}
		env.Shards = append(env.Shards, buf.Bytes())
		env.ShardChecksums = append(env.ShardChecksums, crc32.ChecksumIEEE(buf.Bytes()))
	}

	if _, err := fmt.Fprintf(w, "%s %d\n", magic, ShardedFormatVersion); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// loadSharded decodes the v2 multi-shard layout into a sharded serving
// engine with lazily materializing shards.
func loadSharded(br *bufio.Reader, root *xmltree.Node, cfg engine.Config) (*engine.Engine, Meta, error) {
	var env shardedEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode: %w", err)
	}
	if got := env.headChecksum(); got != env.HeadChecksum {
		return nil, Meta{}, fmt.Errorf("persist: schema/frequency checksum mismatch (%08x, want %08x): snapshot corrupt", got, env.HeadChecksum)
	}
	if err := verifyFingerprint(env.Meta, root); err != nil {
		return nil, Meta{}, err
	}
	if env.Meta.Shards != len(env.Shards) || len(env.Shards) != len(env.ShardChecksums) {
		return nil, Meta{}, fmt.Errorf("persist: snapshot declares %d shards but carries %d sections / %d checksums",
			env.Meta.Shards, len(env.Shards), len(env.ShardChecksums))
	}
	schema, err := xseek.LoadSchema(bytes.NewReader(env.Schema))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	var df map[string]int
	if err := gob.NewDecoder(bytes.NewReader(env.Freqs)).Decode(&df); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode term frequencies: %w", err)
	}

	loaders := make([]func() (*index.Index, error), len(env.Shards))
	for g := range env.Shards {
		data, sum := env.Shards[g], env.ShardChecksums[g]
		loaders[g] = func() (*index.Index, error) {
			if got := crc32.ChecksumIEEE(data); got != sum {
				return nil, fmt.Errorf("persist: shard checksum mismatch (%08x, want %08x)", got, sum)
			}
			return index.Load(bytes.NewReader(data), root)
		}
	}
	sh, err := shard.FromSources(root, schema, env.Meta.Shards, df, env.IndexedElements, loaders)
	if err != nil {
		return nil, Meta{}, err
	}
	return engine.FromSharded(sh, cfg), env.Meta, nil
}
