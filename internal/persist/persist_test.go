package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/table"
	"repro/internal/xmltree"
)

func testRoot() *xmltree.Node {
	return dataset.ProductReviews(dataset.ReviewsConfig{Seed: 11})
}

func snapshotOf(t testing.TB, eng *engine.Engine, meta Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, eng, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripGoldenEquality: an engine loaded from a snapshot must
// be observationally identical to one built fresh — same search
// results, same ranking scores, same comparison tables.
func TestRoundTripGoldenEquality(t *testing.T) {
	root := testRoot()
	fresh := engine.New(root)
	snap := snapshotOf(t, fresh, Meta{CorpusName: "reviews", Seed: 11})

	loaded, meta, err := Load(bytes.NewReader(snap), root, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.CorpusName != "reviews" || meta.Seed != 11 {
		t.Fatalf("meta after load = %+v", meta)
	}

	for _, q := range []string{"tomtom gps", "garmin", "canon camera"} {
		want, err1 := fresh.Search(q)
		got, err2 := loaded.Search(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %q: errors %v / %v", q, err1, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Label != want[i].Label {
				t.Fatalf("query %q result %d: %q vs %q", q, i, got[i].Label, want[i].Label)
			}
		}

		wantRanked, _ := fresh.SearchRanked(q)
		gotRanked, _ := loaded.SearchRanked(q)
		for i := range wantRanked {
			if gotRanked[i].Label != wantRanked[i].Label || gotRanked[i].Score != wantRanked[i].Score {
				t.Fatalf("query %q rank %d: (%q, %g) vs (%q, %g)", q, i,
					gotRanked[i].Label, gotRanked[i].Score, wantRanked[i].Label, wantRanked[i].Score)
			}
		}

		if len(want) < 2 {
			continue
		}
		opts := core.Options{SizeBound: 8, Pad: true}
		wantTable := table.Build(fresh.Generate(core.AlgMultiSwap, want[:2], opts)).Text()
		gotTable := table.Build(loaded.Generate(core.AlgMultiSwap, got[:2], opts)).Text()
		if gotTable != wantTable {
			t.Fatalf("query %q: comparison tables differ:\n%s\nvs\n%s", q, gotTable, wantTable)
		}
	}
}

func TestLoadRejectsCorruptSnapshot(t *testing.T) {
	root := testRoot()
	snap := snapshotOf(t, engine.New(root), Meta{})

	cases := map[string][]byte{
		"empty":          nil,
		"not a snapshot": []byte("hello world\n"),
		"bad magic":      append([]byte("NOTASNAP 1\n"), snap[len("XSACTSNAP 1\n"):]...),
		"old version":    append([]byte("XSACTSNAP 0\n"), snap[len("XSACTSNAP 1\n"):]...),
		"truncated":      snap[:len(snap)/2],
		"bit rot":        append(append([]byte{}, snap[:len(snap)-40]...), make([]byte, 40)...),
	}
	for name, data := range cases {
		if _, _, err := Load(bytes.NewReader(data), root, engine.Config{}); err == nil {
			t.Errorf("%s: Load succeeded, want error", name)
		}
	}
}

// TestLoadRejectsStaleContent: a corpus whose content changed but
// whose shape (root tag, node count) did not must still be rejected —
// the postings would silently point at the wrong terms otherwise.
func TestLoadRejectsStaleContent(t *testing.T) {
	before := xmltree.MustParseString(`<store><product><name>TomTom Go</name></product></store>`)
	after := xmltree.MustParseString(`<store><product><name>Garmin Nuvi</name></product></store>`)
	snap := snapshotOf(t, engine.New(before), Meta{})
	_, _, err := Load(bytes.NewReader(snap), after, engine.Config{})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("Load against changed content: err = %v, want fingerprint mismatch", err)
	}
}

func TestLoadRejectsWrongCorpus(t *testing.T) {
	snap := snapshotOf(t, engine.New(testRoot()), Meta{CorpusName: "reviews"})
	other := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 10})
	_, _, err := Load(bytes.NewReader(snap), other, engine.Config{})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("Load against wrong corpus: err = %v, want fingerprint mismatch", err)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	root := testRoot()
	fresh := engine.New(root)
	path := filepath.Join(t.TempDir(), "snapshots", "reviews.snap")
	if err := SaveFile(path, fresh, Meta{CorpusName: "reviews", Seed: 11}); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadFile(path, root, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.CorpusName != "reviews" {
		t.Fatalf("meta = %+v", meta)
	}
	rs, err := loaded.Search("tomtom gps")
	if err != nil || len(rs) == 0 {
		t.Fatalf("loaded engine search: %d results, err %v", len(rs), err)
	}
	// No temp files left behind by the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot", len(entries))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "nope.snap"), testRoot(), engine.Config{}); err == nil {
		t.Fatal("LoadFile of missing file succeeded")
	}
}

// benchRoot is a corpus big enough that derived-state construction,
// not tree generation, dominates startup — the regime snapshots exist
// for.
func benchRoot() *xmltree.Node {
	return dataset.ProductReviews(dataset.ReviewsConfig{
		Seed: 11, ProductsPerCategory: 12, MinReviews: 20, MaxReviews: 40,
	})
}

// BenchmarkStartupRebuild vs BenchmarkStartupSnapshotLoad measure the
// server-restart cost the snapshot layer removes: building an engine's
// derived state from the tree versus reloading it from a snapshot.
func BenchmarkStartupRebuild(b *testing.B) {
	root := benchRoot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = engine.New(root)
	}
}

func BenchmarkStartupSnapshotLoad(b *testing.B) {
	root := benchRoot()
	snap := snapshotOf(b, engine.New(root), Meta{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(snap), root, engine.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
