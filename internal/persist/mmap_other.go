//go:build !unix

package persist

import "os"

// mapFile on platforms without mmap support reads the whole file — the
// io.ReaderAt-style fallback: same lazy block decode, no page-fault
// residency win.
func mapFile(f *os.File) (data []byte, cleanup func(), err error) {
	return readFileFallback(f)
}
