//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps f read-only. The returned cleanup releases the mapping
// and must only be called on load-error paths: a mapping backing a
// served engine stays alive for the engine's (in practice the
// process's) lifetime, which is the point — postings fault in by page
// instead of being decoded up front. Falls back to a plain read when
// the file cannot be mapped (pipes, some filesystems).
func mapFile(f *os.File) (data []byte, cleanup func(), err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("persist: snapshot too large to map (%d bytes)", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFileFallback(f)
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
