package persist

// This file implements the compact snapshot layout (format version 4):
// after the usual header line, a flat sequence of self-describing
// binary sections, each `[1-byte kind][uint64 LE length][payload]
// [uint32 LE crc32]`. Unlike the gob envelopes of v1-v3, every section
// is addressable without decoding its neighbours, so LoadFile can mmap
// the whole file and serve postings straight out of the mapping: the
// symbol table and postings payloads are the index.SymbolTable /
// index.OpenCompact byte forms, decoded lazily block by block as
// queries touch them. Cold start touches only the section directory,
// the symbol table, the schema, and the corpus fingerprint walk.
//
// Section kinds, in file order:
//
//	'M'  head: gob(v4Head) — Meta plus the aggregate element count
//	'X'  optional: the document XML, making the snapshot self-contained
//	     (written when saving a compacted live corpus, whose tree the
//	     loading caller cannot regenerate; Load then ignores its root
//	     argument, as v3 does)
//	'Y'  symbol table (index.SymbolTable.AppendEncoded)
//	'S'  schema (xseek.Schema.Save)
//	'F'  sharded only: gob term→document-frequency table
//	'P'  postings payload (index.EncodeCompact): one for a monolithic
//	     engine, K in group order for a sharded one. The payload is
//	     self-versioning (a magic + version uvarint pair ahead of the
//	     term count): current payloads carry per-block score-bound
//	     maxima for WAND pruning, while files written before the bounds
//	     existed decode fine and simply run ranked pages unpruned —
//	     no v4 format bump either way.
//
// CRC policy: every section except sharded 'P' sections is verified at
// load — fail closed into a rebuild. Sharded 'P' sections verify
// lazily on first touch, and a corrupt one rebuilds only that shard
// (the v2 semantics, counted in Rebuilds).
//
// A live engine with journaled (uncompacted) writes cannot be saved as
// v4 — the layout has no journal section by design; SaveFormat falls
// back to v3 for it, and loadLive rejects a v3 envelope wrapping a v4
// base (a combination no writer produces — version skew fails closed).

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// CompactFormatVersion identifies the mmap-able sectioned layout.
const CompactFormatVersion = 4

// Section kinds.
const (
	secHead    = 'M'
	secXML     = 'X'
	secSymbols = 'Y'
	secSchema  = 'S'
	secFreqs   = 'F'
	secPost    = 'P'
)

// v4Head is the gob payload of the 'M' section.
type v4Head struct {
	Meta            Meta
	IndexedElements int
}

// v4Section is one parsed section. Data aliases the snapshot bytes
// (the mapping, when mmap-ed); Sum is the stored CRC, verified eagerly
// or lazily per the policy above.
type v4Section struct {
	Kind byte
	Data []byte
	Sum  uint32
}

func (s v4Section) verify() error {
	if got := crc32.ChecksumIEEE(s.Data); got != s.Sum {
		return fmt.Errorf("persist: v4 section %q checksum mismatch (%08x, want %08x): snapshot corrupt", s.Kind, got, s.Sum)
	}
	return nil
}

// writeV4Section writes one framed section.
func writeV4Section(w io.Writer, kind byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: v4 section %q: %w", kind, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("persist: v4 section %q: %w", kind, err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("persist: v4 section %q: %w", kind, err)
	}
	return nil
}

// parseV4Sections splits the post-header bytes into sections without
// copying or verifying payloads.
func parseV4Sections(data []byte) ([]v4Section, error) {
	var out []v4Section
	pos := 0
	for pos < len(data) {
		if len(data)-pos < 13 {
			return nil, fmt.Errorf("persist: v4: truncated section header at offset %d", pos)
		}
		kind := data[pos]
		n := binary.LittleEndian.Uint64(data[pos+1 : pos+9])
		pos += 9
		if n > uint64(len(data)-pos-4) {
			return nil, fmt.Errorf("persist: v4: section %q truncated (%d bytes declared, %d available)", kind, n, len(data)-pos-4)
		}
		payload := data[pos : pos+int(n)]
		pos += int(n)
		sum := binary.LittleEndian.Uint32(data[pos : pos+4])
		pos += 4
		out = append(out, v4Section{Kind: kind, Data: payload, Sum: sum})
	}
	return out, nil
}

// SaveFormat is Save with an explicit snapshot format: 0 selects the
// automatic legacy layout (v1/v2/v3, exactly Save's behavior) and
// CompactFormatVersion the sectioned mmap-able layout. A live engine
// with uncompacted writes falls back to v3 even when v4 is requested —
// the journal must travel, and only v3 carries one; the next
// compaction makes the corpus v4-eligible again.
func SaveFormat(w io.Writer, eng *engine.Engine, meta Meta, format int) error {
	switch format {
	case 0:
		return Save(w, eng, meta)
	case CompactFormatVersion:
	default:
		return fmt.Errorf("persist: save format %d not supported (want 0 or %d)", format, CompactFormatVersion)
	}
	if live := eng.Live(); live != nil && live.Epoch() > 0 {
		baseRoot, x, sh, journal := live.SnapshotParts()
		if len(journal) > 0 {
			return saveLive(w, live, meta)
		}
		// Compacted: the base is the whole corpus. Serialize the tree
		// into the snapshot ('X' section) so a restart reconstructs the
		// written-to corpus no generator can reproduce, and fingerprint
		// the re-parse — exactly the tree Load will hand back.
		baseXML := xmltree.XMLString(baseRoot)
		reparsed, err := xmltree.ParseString(baseXML)
		if err != nil {
			return fmt.Errorf("persist: live base does not round-trip: %w", err)
		}
		return saveV4(w, reparsed, x, sh, []byte(baseXML), meta)
	}
	return saveV4(w, eng.Root(), eng.Xseek(), eng.Sharded(), nil, meta)
}

// saveV4 writes the sectioned layout. xml, when non-nil, becomes the
// self-containing 'X' section.
func saveV4(w io.Writer, root *xmltree.Node, x *xseek.Engine, sh *shard.Engine, xml []byte, meta Meta) error {
	meta.RootTag = root.Tag
	meta.NodeCount, meta.ContentHash = fingerprint(root)

	// One symbol table for every postings section, interned in sorted
	// vocabulary order so snapshot bytes are deterministic.
	st := index.NewSymbolTable()
	head := v4Head{Meta: meta}
	var idxs []*index.Index
	if sh != nil {
		head.Meta.Shards = sh.ShardCount()
		head.IndexedElements = sh.IndexStats().IndexedElements
		idxs = sh.ShardIndexes()
		for _, t := range sh.SpineIndex().Vocabulary() {
			st.Intern(t)
		}
	} else {
		idxs = []*index.Index{x.Index()}
	}
	for _, idx := range idxs {
		for _, t := range idx.Vocabulary() {
			st.Intern(t)
		}
	}

	if _, err := fmt.Fprintf(w, "%s %d\n", magic, CompactFormatVersion); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	var headBuf bytes.Buffer
	if err := gob.NewEncoder(&headBuf).Encode(&head); err != nil {
		return fmt.Errorf("persist: encode head: %w", err)
	}
	if err := writeV4Section(w, secHead, headBuf.Bytes()); err != nil {
		return err
	}
	if xml != nil {
		if err := writeV4Section(w, secXML, xml); err != nil {
			return err
		}
	}
	if err := writeV4Section(w, secSymbols, st.AppendEncoded(nil)); err != nil {
		return err
	}
	var schBuf bytes.Buffer
	var schema *xseek.Schema
	if sh != nil {
		schema = sh.Schema()
	} else {
		schema = x.Schema()
	}
	if err := schema.Save(&schBuf); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := writeV4Section(w, secSchema, schBuf.Bytes()); err != nil {
		return err
	}
	if sh != nil {
		var dfBuf bytes.Buffer
		if err := gob.NewEncoder(&dfBuf).Encode(sh.TermFrequencies()); err != nil {
			return fmt.Errorf("persist: encode term frequencies: %w", err)
		}
		if err := writeV4Section(w, secFreqs, dfBuf.Bytes()); err != nil {
			return err
		}
	}
	for g, idx := range idxs {
		payload, err := index.EncodeCompact(idx, st)
		if err != nil {
			return fmt.Errorf("persist: postings %d: %w", g, err)
		}
		if err := writeV4Section(w, secPost, payload); err != nil {
			return err
		}
	}
	return nil
}

// loadV4 assembles a serving engine over the section bytes (everything
// after the header line). data may be an mmap-ed region: postings
// sections are handed to the index layer as-is and decoded lazily, so
// data must stay valid for the engine's lifetime.
func loadV4(data []byte, root *xmltree.Node, cfg engine.Config) (*engine.Engine, Meta, error) {
	secs, err := parseV4Sections(data)
	if err != nil {
		return nil, Meta{}, err
	}
	var head *v4Head
	var symSec, schSec, xmlSec, freqSec *v4Section
	var posts []v4Section
	for i := range secs {
		s := &secs[i]
		switch s.Kind {
		case secHead:
			if err := s.verify(); err != nil {
				return nil, Meta{}, err
			}
			head = &v4Head{}
			if err := gob.NewDecoder(bytes.NewReader(s.Data)).Decode(head); err != nil {
				return nil, Meta{}, fmt.Errorf("persist: decode head: %w", err)
			}
		case secXML:
			xmlSec = s
		case secSymbols:
			symSec = s
		case secSchema:
			schSec = s
		case secFreqs:
			freqSec = s
		case secPost:
			posts = append(posts, *s)
		default:
			return nil, Meta{}, fmt.Errorf("persist: v4: unknown section kind %q", s.Kind)
		}
	}
	if head == nil || symSec == nil || schSec == nil || len(posts) == 0 {
		return nil, Meta{}, fmt.Errorf("persist: v4: missing required sections")
	}
	if xmlSec != nil {
		// Self-contained snapshot: the tree travels with it, and the
		// caller's root (a generator corpus that cannot know about
		// compacted writes) is ignored, as in v3.
		if err := xmlSec.verify(); err != nil {
			return nil, Meta{}, err
		}
		root, err = xmltree.ParseString(string(xmlSec.Data))
		if err != nil {
			return nil, Meta{}, fmt.Errorf("persist: parse embedded corpus: %w", err)
		}
	}
	if err := verifyFingerprint(head.Meta, root); err != nil {
		return nil, Meta{}, err
	}
	if err := symSec.verify(); err != nil {
		return nil, Meta{}, err
	}
	st, err := index.DecodeSymbolTable(symSec.Data)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	if err := schSec.verify(); err != nil {
		return nil, Meta{}, err
	}
	schema, err := xseek.LoadSchema(bytes.NewReader(schSec.Data))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}

	if head.Meta.Shards == 0 {
		if len(posts) != 1 {
			return nil, Meta{}, fmt.Errorf("persist: v4: %d postings sections for a monolithic snapshot", len(posts))
		}
		if err := posts[0].verify(); err != nil {
			return nil, Meta{}, err
		}
		idx, err := index.OpenCompact(root, st, posts[0].Data, cfg.MaterializePostings)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("persist: %w", err)
		}
		return engine.FromXseek(xseek.FromParts(root, idx, schema), cfg), head.Meta, nil
	}

	if freqSec == nil {
		return nil, Meta{}, fmt.Errorf("persist: v4: sharded snapshot missing frequency section")
	}
	if err := freqSec.verify(); err != nil {
		return nil, Meta{}, err
	}
	var df map[string]int
	if err := gob.NewDecoder(bytes.NewReader(freqSec.Data)).Decode(&df); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode term frequencies: %w", err)
	}
	if head.Meta.Shards != len(posts) {
		return nil, Meta{}, fmt.Errorf("persist: snapshot declares %d shards but carries %d postings sections", head.Meta.Shards, len(posts))
	}
	loaders := make([]func() (*index.Index, error), len(posts))
	lroot := root
	for g := range posts {
		sec := posts[g]
		loaders[g] = func() (*index.Index, error) {
			// Lazy per-shard verification: a flipped bit in one shard's
			// postings rebuilds that shard, not the corpus.
			if err := sec.verify(); err != nil {
				return nil, err
			}
			return index.OpenCompact(lroot, st, sec.Data, cfg.MaterializePostings)
		}
	}
	sh, err := shard.FromSourcesShared(root, schema, head.Meta.Shards, df, head.IndexedElements, loaders, st)
	if err != nil {
		return nil, Meta{}, err
	}
	return engine.FromSharded(sh, cfg), head.Meta, nil
}
