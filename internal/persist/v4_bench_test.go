package persist

import (
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// BenchmarkStartupMmap measures the v4 restart path against
// BenchmarkStartupRebuild (persist_test.go): map the snapshot and
// decode only the section directory, symbol table, and schema —
// postings stay encoded in the mapping until queries touch them.
func BenchmarkStartupMmap(b *testing.B) {
	root := benchRoot()
	path := filepath.Join(b.TempDir(), "bench.v4")
	if err := SaveFileFormat(path, engine.New(root), Meta{CorpusName: "bench"}, CompactFormatVersion); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LoadFile(path, root, engine.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartupMmapFirstQuery adds the first query on top of the
// mapped load — the latency a restarted server's first client sees,
// including the lazy block decodes that query faults in.
func BenchmarkStartupMmapFirstQuery(b *testing.B) {
	root := benchRoot()
	path := filepath.Join(b.TempDir(), "bench.v4")
	if err := SaveFileFormat(path, engine.New(root), Meta{CorpusName: "bench"}, CompactFormatVersion); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _, err := LoadFile(path, root, engine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Search("tomtom gps"); err != nil {
			b.Fatal(err)
		}
	}
}
