// Package persist snapshots an engine's derived state — the inverted
// index (or its K shards), the inferred schema, and corpus metadata —
// so a server restart reloads them from disk instead of re-walking the
// corpus. The tree itself is not persisted: corpora are cheap to
// regenerate (dataset seeds) or re-parse, while index construction and
// schema inference dominate startup; a snapshot skips exactly that
// derived work.
//
// Two container layouts share the one-line text header
// ("XSACTSNAP <version>\n"), and Load dispatches on it:
//
//   - Version 1 (monolithic): one gob envelope holding the metadata
//     and the index/schema sections under a single checksum. Any
//     corruption fails the load and the caller rebuilds everything.
//   - Version 2 (sharded): the envelope carries the schema and the
//     aggregated term-frequency table (verified eagerly), plus one
//     index section per shard, each with its own CRC32. Shard sections
//     decode lazily on first use, and a section that fails its
//     checksum is repaired by rebuilding only that shard from its own
//     segment subtrees — the other shards still load from disk.
//
// Either way the section wire forms stay owned by internal/index and
// internal/xseek (their Save/Load), and Load verifies the header, the
// versions, and a corpus fingerprint (root tag + node count + content
// hash) before trusting anything; every whole-file failure is an
// error, and callers fall back to a rebuild.
package persist
