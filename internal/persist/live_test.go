package persist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/xmltree"
)

func liveCorpusXML(n int) string {
	var b strings.Builder
	b.WriteString("<shop>")
	for i := 0; i < n; i++ {
		kind := "gps"
		if i%2 == 1 {
			kind = "radio"
		}
		fmt.Fprintf(&b, "<product><name>item%d</name><kind>%s</kind></product>", i, kind)
	}
	b.WriteString("</shop>")
	return b.String()
}

// searchFingerprint canonicalizes an engine's answers over a query set.
func searchFingerprint(t *testing.T, eng *engine.Engine, queries ...string) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		rs, err := eng.Search(q)
		fmt.Fprintf(&b, "q=%s err=%v n=%d\n", q, err, len(rs))
		for _, r := range rs {
			b.WriteString(r.Label)
			b.WriteString("\n")
			b.WriteString(xmltree.XMLString(r.Node))
		}
	}
	st := eng.IndexStats()
	fmt.Fprintf(&b, "stats=%+v nodes=%d\n", st, eng.TotalNodes())
	return b.String()
}

func mustWrite(t *testing.T, eng *engine.Engine, addXML string, removeOrd int) {
	t.Helper()
	if addXML != "" {
		n, err := xmltree.ParseString(addXML)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.AddEntity(n); err != nil {
			t.Fatal(err)
		}
	}
	if removeOrd >= 0 {
		if err := eng.RemoveEntity([]int{removeOrd}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := engine.Config{Shards: shards}
			root := xmltree.MustParseString(liveCorpusXML(6))
			eng := engine.NewWithConfig(root, cfg)

			mustWrite(t, eng, "<product><name>fresh0</name><kind>gps</kind></product>", -1)
			mustWrite(t, eng, "<product><name>fresh1</name><kind>solar</kind></product>", 1)

			var buf bytes.Buffer
			if err := Save(&buf, eng, Meta{CorpusName: "shop", Seed: 7}); err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(buf.String(), fmt.Sprintf("%s %d\n", magic, LiveFormatVersion)) {
				t.Fatalf("live engine snapshot not in v3 layout: %q", buf.String()[:24])
			}

			// The caller's root is ignored for v3; pass an unrelated tree
			// to prove the layout is self-contained.
			loaded, meta, err := Load(bytes.NewReader(buf.Bytes()), xmltree.MustParseString("<other/>"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if meta.CorpusName != "shop" || meta.Seed != 7 {
				t.Fatalf("meta = %+v", meta)
			}
			queries := []string{"gps", "radio", "solar", "fresh1", "item1", "zzz"}
			if got, want := searchFingerprint(t, loaded, queries...), searchFingerprint(t, eng, queries...); got != want {
				t.Fatalf("reloaded live engine diverges:\ngot:\n%s\nwant:\n%s", got, want)
			}
			// The replayed backlog must still be pending (not silently
			// compacted away), so a later compaction behaves identically.
			lm, em := loaded.Metrics(), eng.Metrics()
			if lm.PendingDelta != em.PendingDelta || lm.PendingTombstones != em.PendingTombstones {
				t.Fatalf("pending backlog drifted: loaded %+v, live %+v", lm, em)
			}
		})
	}
}

func TestLiveSnapshotCrashMidCompactionReplay(t *testing.T) {
	cfg := engine.Config{}
	root := xmltree.MustParseString(liveCorpusXML(6))
	eng := engine.NewWithConfig(root, cfg)
	mustWrite(t, eng, "<product><name>fresh0</name><kind>gps</kind></product>", 2)
	mustWrite(t, eng, "<product><name>fresh1</name><kind>gps</kind></product>", -1)

	// The durable image on disk at the moment compaction starts: base +
	// journal. A crash anywhere inside compaction leaves exactly this.
	var crashImage bytes.Buffer
	if err := Save(&crashImage, eng, Meta{CorpusName: "shop"}); err != nil {
		t.Fatal(err)
	}

	// The surviving process compacts; the crashed replica replays.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	recovered, _, err := Load(bytes.NewReader(crashImage.Bytes()), xmltree.MustParseString("<other/>"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"gps", "radio", "fresh0", "item2", "zzz"}
	if got, want := searchFingerprint(t, recovered, queries...), searchFingerprint(t, eng, queries...); got != want {
		t.Fatalf("recovered replica diverges from compacted engine:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// And compacting the recovered replica converges to the same corpus.
	if err := recovered.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, want := searchFingerprint(t, recovered, queries...), searchFingerprint(t, eng, queries...); got != want {
		t.Fatalf("post-recovery compaction diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLiveSnapshotCorruptionRejected(t *testing.T) {
	eng := engine.New(xmltree.MustParseString(liveCorpusXML(4)))
	mustWrite(t, eng, "<product><name>fresh0</name><kind>gps</kind></product>", -1)
	var buf bytes.Buffer
	if err := Save(&buf, eng, Meta{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff
	if _, _, err := Load(bytes.NewReader(raw), xmltree.MustParseString("<other/>"), engine.Config{}); err == nil {
		t.Fatal("corrupt live snapshot loaded without error")
	}
}
