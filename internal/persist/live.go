package persist

// This file implements the live snapshot layout (format version 3): a
// complete base snapshot — the base tree's XML plus a nested v1/v2
// snapshot of its derived state — followed by the journal of writes
// pending since the last compaction. Loading parses the base tree,
// reopens the base snapshot over it, and replays the journal through
// the serving engine's write path, so a restart (including one that
// interrupted a compaction before its epoch swap committed) resumes
// with exactly the pre-crash corpus: compaction is atomic-or-nothing.
//
// Unlike v1/v2, the layout is self-contained: the caller's tree cannot
// describe a corpus that has accepted writes, so Load ignores it and
// reconstructs the document from the snapshot.

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/dewey"
	"repro/internal/engine"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// liveEnvelope is the gob wire form of the live layout.
type liveEnvelope struct {
	Meta Meta
	// BaseXML is the base document (xmltree.XMLString); Base is a full
	// v1/v2 snapshot of the base engine's derived state over it.
	BaseXML []byte
	Base    []byte
	// Journal is the gob-encoded []update.JournalOp pending over the
	// base, in application order.
	Journal  []byte
	Checksum uint32 // crc32(BaseXML ++ Base ++ Journal)
}

func (e *liveEnvelope) checksum() uint32 {
	crc := crc32.NewIEEE()
	crc.Write(e.BaseXML)
	crc.Write(e.Base)
	crc.Write(e.Journal)
	return crc.Sum32()
}

// saveLive writes the v3 layout for a live engine. The base tree is
// serialized and immediately re-parsed so the recorded fingerprint is
// computed over exactly the tree Load will reconstruct (serialization
// normalizes whitespace-only differences; index postings and the
// schema are insensitive to them).
func saveLive(w io.Writer, live *update.Engine, meta Meta) error {
	baseRoot, x, sh, journal := live.SnapshotParts()
	baseXML := xmltree.XMLString(baseRoot)
	reparsed, err := xmltree.ParseString(baseXML)
	if err != nil {
		return fmt.Errorf("persist: live base does not round-trip: %w", err)
	}

	var baseBuf bytes.Buffer
	if err := saveParts(&baseBuf, reparsed, x, sh, Meta{CorpusName: meta.CorpusName, Seed: meta.Seed}); err != nil {
		return err
	}
	var jBuf bytes.Buffer
	if err := gob.NewEncoder(&jBuf).Encode(journal); err != nil {
		return fmt.Errorf("persist: encode journal: %w", err)
	}

	meta.RootTag = reparsed.Tag
	meta.NodeCount, meta.ContentHash = fingerprint(reparsed)
	if sh != nil {
		meta.Shards = sh.ShardCount()
	}
	env := liveEnvelope{Meta: meta, BaseXML: []byte(baseXML), Base: baseBuf.Bytes(), Journal: jBuf.Bytes()}
	env.Checksum = env.checksum()
	if _, err := fmt.Fprintf(w, "%s %d\n", magic, LiveFormatVersion); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// loadLive decodes the v3 layout: reopen the base, then replay the
// journal through the engine's write path. Any failure — corrupt
// section, unreplayable op — fails the load; the caller falls back to
// a rebuild of whatever corpus it can generate.
func loadLive(br *bufio.Reader, cfg engine.Config) (*engine.Engine, Meta, error) {
	var env liveEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode: %w", err)
	}
	if got := env.checksum(); got != env.Checksum {
		return nil, Meta{}, fmt.Errorf("persist: live checksum mismatch (%08x, want %08x): snapshot corrupt", got, env.Checksum)
	}
	root, err := xmltree.ParseString(string(env.BaseXML))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: parse live base: %w", err)
	}
	// Version skew fails closed: no writer produces a v3 envelope
	// around a v4 base (SaveFormat writes compacted live corpora as
	// self-contained v4, journaled ones as all-v3), so finding one
	// means mismatched tooling stitched sections together. Refusing
	// here sends the caller to a rebuild instead of trusting a base
	// whose combination was never tested against this journal.
	if bytes.HasPrefix(env.Base, []byte(fmt.Sprintf("%s %d\n", magic, CompactFormatVersion))) {
		return nil, Meta{}, fmt.Errorf("persist: v3 live envelope wrapping a v4 base: version skew, rebuild required")
	}
	eng, _, err := Load(bytes.NewReader(env.Base), root, cfg)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: live base: %w", err)
	}
	var journal []update.JournalOp
	if err := gob.NewDecoder(bytes.NewReader(env.Journal)).Decode(&journal); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode journal: %w", err)
	}
	for i, op := range journal {
		if op.Remove {
			if err := eng.RemoveEntity(dewey.New(op.Ord)); err != nil {
				return nil, Meta{}, fmt.Errorf("persist: replay op %d: %w", i, err)
			}
			continue
		}
		n, err := xmltree.ParseString(op.XML)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("persist: replay op %d: %w", i, err)
		}
		if _, err := eng.AddEntity(n); err != nil {
			return nil, Meta{}, fmt.Errorf("persist: replay op %d: %w", i, err)
		}
	}
	return eng, env.Meta, nil
}
