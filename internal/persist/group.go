package persist

// This file implements the per-group snapshot (shard-group format
// version 1): the unit of state a distributed shard server ships and
// reloads. It is deliberately journal-shaped, like the v3 live
// layout: the base document at the leg's last compaction plus the
// write ops applied since, so a restored leg replays its way back to
// the exact pre-crash state — same tree, same Dewey ordinals (holes
// included), same group index — and resumes at the same epoch. The
// whole-corpus ranking constants ride along as integers so the
// restored leg scores bit-identically without a coordinator round
// trip.

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/update"
)

// groupMagic opens a shard-group snapshot; it is distinct from the
// engine snapshot magic so neither loader misreads the other's files.
const groupMagic = "xsact-shard-group"

// GroupFormatVersion is the current shard-group snapshot version.
const GroupFormatVersion = 1

// GroupSnapshot is one shard server's complete per-corpus state.
type GroupSnapshot struct {
	// Epoch is the leg's state version at snapshot time; the base
	// tree's epoch is Epoch - len(Journal).
	Epoch uint64
	// ShardID / Shards pin the group this snapshot serves; a restore
	// into a differently shaped cluster fails closed.
	ShardID int
	Shards  int
	// BaseXML is the document at the leg's last compaction
	// (xmltree.XMLString); ordinals are contiguous there, so parse +
	// AssignIDs(nil) reproduces the exact base Dewey IDs.
	BaseXML string
	// Journal is the writes applied since the base, in application
	// order (the same op type the v3 live layout replays).
	Journal []update.JournalOp
	// TotalNodes and DF are the installed whole-corpus ranking
	// constants at snapshot time.
	TotalNodes int
	DF         map[string]int
}

// groupEnvelope is the gob wire form following the header line.
type groupEnvelope struct {
	Payload  []byte // gob-encoded GroupSnapshot
	Checksum uint32 // crc32(Payload)
}

// EncodeGroup writes the shard-group snapshot layout.
func EncodeGroup(w io.Writer, snap *GroupSnapshot) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("persist: encode group snapshot: %w", err)
	}
	env := groupEnvelope{Payload: buf.Bytes()}
	env.Checksum = crc32.ChecksumIEEE(env.Payload)
	if _, err := fmt.Fprintf(w, "%s %d\n", groupMagic, GroupFormatVersion); err != nil {
		return fmt.Errorf("persist: write group header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("persist: encode group envelope: %w", err)
	}
	return nil
}

// DecodeGroup reads a shard-group snapshot, failing closed on header,
// version, or checksum violations.
func DecodeGroup(r io.Reader) (*GroupSnapshot, error) {
	br := bufio.NewReader(r)
	var m string
	var v int
	if _, err := fmt.Fscanf(br, "%s %d\n", &m, &v); err != nil {
		return nil, fmt.Errorf("persist: read group header: %w", err)
	}
	if m != groupMagic {
		return nil, fmt.Errorf("persist: not a shard-group snapshot (magic %q)", m)
	}
	if v != GroupFormatVersion {
		return nil, fmt.Errorf("persist: unsupported shard-group version %d", v)
	}
	var env groupEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: decode group envelope: %w", err)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.Checksum {
		return nil, fmt.Errorf("persist: group checksum mismatch (%08x, want %08x): snapshot corrupt", got, env.Checksum)
	}
	var snap GroupSnapshot
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decode group snapshot: %w", err)
	}
	return &snap, nil
}
