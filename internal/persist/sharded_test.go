package persist

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/engine"
)

// shardedSnapshot saves a sharded engine over testRoot and returns the
// engine and raw snapshot bytes.
func shardedSnapshot(t *testing.T, shards int) (*engine.Engine, []byte) {
	t.Helper()
	root := testRoot()
	eng := engine.NewWithConfig(root, engine.Config{Shards: shards})
	return eng, snapshotOf(t, eng, Meta{CorpusName: "reviews", Seed: 11})
}

// TestShardedRoundTrip: a multi-shard snapshot reloads into a sharded
// engine whose searches and aggregate statistics match the saved
// engine exactly, with zero shard rebuilds.
func TestShardedRoundTrip(t *testing.T) {
	eng, snap := shardedSnapshot(t, 3)
	if !bytes.HasPrefix(snap, []byte("XSACTSNAP 2\n")) {
		t.Fatalf("sharded snapshot header = %q, want version 2", snap[:12])
	}

	loaded, meta, err := Load(bytes.NewReader(snap), testRoot(), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shards != 3 || loaded.ShardCount() != 3 {
		t.Fatalf("loaded %d shards (meta %d), want 3", loaded.ShardCount(), meta.Shards)
	}
	for _, q := range []string{"tomtom", "tomtom gps", "easy camera"} {
		want, _ := eng.Search(q)
		got, err := loaded.Search(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Label != want[i].Label || !got[i].Node.ID.Equal(want[i].Node.ID) {
				t.Fatalf("%q result %d: %s@%s vs %s@%s", q, i,
					got[i].Label, got[i].Node.ID, want[i].Label, want[i].Node.ID)
			}
		}
	}
	if loaded.IndexStats() != eng.IndexStats() {
		t.Fatalf("index stats diverge after round trip: %+v vs %+v", loaded.IndexStats(), eng.IndexStats())
	}
	if n := loaded.Sharded().Rebuilds(); n != 0 {
		t.Fatalf("clean snapshot load rebuilt %d shards, want 0", n)
	}
}

// reencode decodes a v2 snapshot's envelope, applies f, and re-encodes
// it — targeted corruption for the lazy-shard tests.
func reencode(t *testing.T, snap []byte, f func(*shardedEnvelope)) []byte {
	t.Helper()
	body := bytes.TrimPrefix(snap, []byte("XSACTSNAP 2\n"))
	var env shardedEnvelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	f(&env)
	var out bytes.Buffer
	out.WriteString("XSACTSNAP 2\n")
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestShardedSingleShardCorruption: flipping bytes in exactly one
// shard section must not fail the load — that one shard is rebuilt
// from the tree on first use, and searches remain identical.
func TestShardedSingleShardCorruption(t *testing.T) {
	eng, snap := shardedSnapshot(t, 3)
	bad := reencode(t, snap, func(env *shardedEnvelope) {
		env.Shards[1][0] ^= 0xFF
		env.Shards[1][len(env.Shards[1])/2] ^= 0xFF
	})

	loaded, _, err := Load(bytes.NewReader(bad), testRoot(), engine.Config{})
	if err != nil {
		t.Fatalf("single-shard corruption should not fail the load: %v", err)
	}
	for _, q := range []string{"tomtom gps", "easy", "camera zoom"} {
		want, _ := eng.Search(q)
		got, err := loaded.Search(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Label != want[i].Label {
				t.Fatalf("%q result %d: %q vs %q", q, i, got[i].Label, want[i].Label)
			}
		}
	}
	if n := loaded.Sharded().Rebuilds(); n != 1 {
		t.Fatalf("rebuilds = %d, want exactly 1 (the corrupt shard)", n)
	}
}

// TestShardedHeadCorruption: corrupting the eagerly-verified schema or
// frequency sections must fail the whole load (the caller rebuilds).
func TestShardedHeadCorruption(t *testing.T) {
	_, snap := shardedSnapshot(t, 2)
	bad := reencode(t, snap, func(env *shardedEnvelope) {
		env.Freqs[0] ^= 0xFF
	})
	if _, _, err := Load(bytes.NewReader(bad), testRoot(), engine.Config{}); err == nil {
		t.Fatal("head corruption must fail the load")
	}

	bad = reencode(t, snap, func(env *shardedEnvelope) {
		env.Meta.Shards = 5 // declared K no longer matches the sections
	})
	if _, _, err := Load(bytes.NewReader(bad), testRoot(), engine.Config{}); err == nil {
		t.Fatal("shard-count mismatch must fail the load")
	}
}

// TestShardedWrongCorpus: a sharded snapshot of one corpus must be
// rejected for a different tree.
func TestShardedWrongCorpus(t *testing.T) {
	_, snap := shardedSnapshot(t, 2)
	other := testRoot()
	other.Children[0].Tag = "mutated"
	if _, _, err := Load(bytes.NewReader(snap), other, engine.Config{}); err == nil {
		t.Fatal("fingerprint mismatch must fail the load")
	}
}
