package persist

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// FormatVersion identifies the single-index snapshot container format;
// ShardedFormatVersion the multi-shard layout; LiveFormatVersion the
// live layout (base snapshot + pending-write journal, see live.go).
// The index and schema sections carry their own wire versions on top.
// Load dispatches on the header, so any layout reopens transparently.
const (
	FormatVersion        = 1
	ShardedFormatVersion = 2
	LiveFormatVersion    = 3
)

// magic is the first token of the header line.
const magic = "XSACTSNAP"

// Meta identifies the corpus a snapshot was taken from. CorpusName and
// Seed are caller-supplied identity (empty/zero when not applicable);
// RootTag, NodeCount, ContentHash, and Shards are filled in by Save
// and verified (fingerprint) or honored (shard layout) by Load.
type Meta struct {
	CorpusName  string
	Seed        int64
	RootTag     string
	NodeCount   int
	ContentHash uint64
	// Shards is the sharded executor's group count; 0 for a
	// single-index snapshot.
	Shards int
}

// fingerprint summarizes the live tree: node count plus an FNV-1a hash
// over every node's Dewey ID, kind, tag, text, and attributes in
// document order. The ID ties each node's content to its position in
// the tree, so re-nestings that preserve the preorder data sequence
// still change the hash — essential, because the persisted posting
// lists address nodes by Dewey ID. The hash walk is far cheaper than
// tokenizing and indexing the same content.
func fingerprint(root *xmltree.Node) (count int, hash uint64) {
	h := fnv.New64a()
	var sep = []byte{0}
	// idBuf renders each node's Dewey ID with the same bytes as
	// dewey.ID.String — the walk runs on every snapshot save, load, and
	// mmap open, and a per-node String() allocation dominates the
	// otherwise near-zero v4 open cost.
	idBuf := make([]byte, 0, 64)
	root.Walk(func(n *xmltree.Node) bool {
		count++
		idBuf = idBuf[:0]
		if len(n.ID) == 0 {
			idBuf = append(idBuf, '/')
		}
		for i, c := range n.ID {
			if i > 0 {
				idBuf = append(idBuf, '.')
			}
			idBuf = strconv.AppendInt(idBuf, int64(c), 10)
		}
		h.Write(idBuf)
		h.Write([]byte{byte(n.Kind)})
		h.Write([]byte(n.Tag))
		h.Write(sep)
		h.Write([]byte(n.Text))
		for _, a := range n.Attrs {
			h.Write(sep)
			h.Write([]byte(a.Name))
			h.Write(sep)
			h.Write([]byte(a.Value))
		}
		h.Write(sep)
		return true
	})
	return count, h.Sum64()
}

// envelope is the gob wire form following the header line. Checksum
// guards the sections against bit rot: gob itself decodes corrupted
// bytes without complaint as long as they parse.
type envelope struct {
	Meta     Meta
	Checksum uint32 // crc32(Index ++ Schema)
	Index    []byte // written by index.Index.Save
	Schema   []byte // written by xseek.Schema.Save
}

// checksum is the integrity check over the snapshot's data sections.
func (e *envelope) checksum() uint32 {
	crc := crc32.NewIEEE()
	crc.Write(e.Index)
	crc.Write(e.Schema)
	return crc.Sum32()
}

// Save writes a snapshot of eng's derived state to w — the
// single-index layout for a monolithic engine, the multi-shard layout
// (per-shard sections with individual checksums) for a sharded one,
// and the live layout (base sections plus a journal of pending writes)
// for an engine that has accepted updates. meta's CorpusName and Seed
// are recorded as given; the corpus fingerprint is taken from the
// engine's own tree.
func Save(w io.Writer, eng *engine.Engine, meta Meta) error {
	if live := eng.Live(); live != nil && live.Epoch() > 0 {
		return saveLive(w, live, meta)
	}
	return saveParts(w, eng.Root(), eng.Xseek(), eng.Sharded(), meta)
}

// saveParts writes the immutable layouts (v1/v2) for an executor given
// by its parts: sh selects the multi-shard layout, otherwise x the
// single-index one. root supplies the corpus fingerprint.
func saveParts(w io.Writer, root *xmltree.Node, x *xseek.Engine, sh *shard.Engine, meta Meta) error {
	meta.RootTag = root.Tag
	meta.NodeCount, meta.ContentHash = fingerprint(root)
	if sh != nil {
		meta.Shards = sh.ShardCount()
		return saveSharded(w, sh, meta)
	}

	var idxBuf, schBuf bytes.Buffer
	if err := x.Index().Save(&idxBuf); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := x.Schema().Save(&schBuf); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", magic, FormatVersion); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	env := envelope{Meta: meta, Index: idxBuf.Bytes(), Schema: schBuf.Bytes()}
	env.Checksum = env.checksum()
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and assembles a serving engine
// over root with the given cache bounds, skipping index construction
// and schema inference. The header selects the layout: a single-index
// snapshot yields a monolithic engine, a multi-shard snapshot a
// sharded one (whose shard count comes from the snapshot, overriding
// cfg.Shards). It fails — and the caller should rebuild — when the
// header or any wire version mismatches, the metadata or schema is
// corrupt, or the snapshot's corpus fingerprint does not match root;
// corruption confined to one shard's section is repaired by rebuilding
// just that shard on first use instead.
func Load(r io.Reader, root *xmltree.Node, cfg engine.Config) (*engine.Engine, Meta, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: read header: %w", err)
	}
	var gotMagic string
	var version int
	if _, err := fmt.Sscanf(header, "%s %d", &gotMagic, &version); err != nil || gotMagic != magic {
		return nil, Meta{}, fmt.Errorf("persist: not a snapshot (header %q)", header)
	}
	switch version {
	case FormatVersion:
		return loadSingle(br, root, cfg)
	case ShardedFormatVersion:
		return loadSharded(br, root, cfg)
	case LiveFormatVersion:
		// The live layout is self-contained: its base tree travels in
		// the snapshot (the live corpus has writes the caller's tree
		// cannot know about), so the passed root is ignored.
		return loadLive(br, cfg)
	case CompactFormatVersion:
		// The generic reader path buys none of the mapping win: read
		// the sections into memory and serve them lazily from there.
		// LoadFile has the mmap fast path.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("persist: read v4 sections: %w", err)
		}
		return loadV4(data, root, cfg)
	default:
		return nil, Meta{}, fmt.Errorf("persist: format version %d, want %d, %d, %d or %d",
			version, FormatVersion, ShardedFormatVersion, LiveFormatVersion, CompactFormatVersion)
	}
}

// loadSingle decodes the v1 single-index layout.
func loadSingle(br *bufio.Reader, root *xmltree.Node, cfg engine.Config) (*engine.Engine, Meta, error) {
	var env envelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: decode: %w", err)
	}
	if got := env.checksum(); got != env.Checksum {
		return nil, Meta{}, fmt.Errorf("persist: checksum mismatch (%08x, want %08x): snapshot corrupt", got, env.Checksum)
	}
	if err := verifyFingerprint(env.Meta, root); err != nil {
		return nil, Meta{}, err
	}
	idx, err := index.Load(bytes.NewReader(env.Index), root)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	schema, err := xseek.LoadSchema(bytes.NewReader(env.Schema))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	return engine.FromXseek(xseek.FromParts(root, idx, schema), cfg), env.Meta, nil
}

// verifyFingerprint checks a snapshot's corpus identity against the
// live tree.
func verifyFingerprint(meta Meta, root *xmltree.Node) error {
	count, hash := fingerprint(root)
	if meta.RootTag != root.Tag || meta.NodeCount != count || meta.ContentHash != hash {
		return fmt.Errorf("persist: snapshot of corpus <%s> (%d nodes, hash %016x) does not match <%s> (%d nodes, hash %016x)",
			meta.RootTag, meta.NodeCount, meta.ContentHash, root.Tag, count, hash)
	}
	return nil
}

// SaveFile writes a snapshot to path atomically (temp file + rename),
// creating parent directories as needed.
func SaveFile(path string, eng *engine.Engine, meta Meta) error {
	return SaveFileFormat(path, eng, meta, 0)
}

// SaveFileFormat is SaveFile with an explicit snapshot format (see
// SaveFormat).
func SaveFileFormat(path string, eng *engine.Engine, meta Meta, format int) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveFormat(tmp, eng, meta, format); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// LoadFile is Load over the file at path, with one upgrade: a v4
// snapshot is mmap-ed (where the platform allows) and served straight
// out of the mapping — the near-zero-restart path, where postings page
// in lazily as queries touch them. The mapping backs the returned
// engine and is intentionally never unmapped while it serves.
func LoadFile(path string, root *xmltree.Node, cfg engine.Config) (*engine.Engine, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, Meta{}, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, Meta{}, fmt.Errorf("persist: %w", err)
	}
	if version != CompactFormatVersion {
		return Load(f, root, cfg)
	}
	data, cleanup, err := mapFile(f)
	if err != nil {
		return nil, Meta{}, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		cleanup()
		return nil, Meta{}, fmt.Errorf("persist: v4 snapshot missing header line")
	}
	eng, meta, err := loadV4(data[nl+1:], root, cfg)
	if err != nil {
		cleanup()
		return nil, Meta{}, err
	}
	return eng, meta, nil
}

// sniffVersion reads just the header line's format version.
func sniffVersion(f *os.File) (int, error) {
	header, err := bufio.NewReader(io.LimitReader(f, 64)).ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("persist: read header: %w", err)
	}
	var gotMagic string
	var version int
	if _, err := fmt.Sscanf(header, "%s %d", &gotMagic, &version); err != nil || gotMagic != magic {
		return 0, fmt.Errorf("persist: not a snapshot (header %q)", header)
	}
	return version, nil
}

// readFileFallback reads the whole file from the start — the
// platform-independent fallback behind mapFile.
func readFileFallback(f *os.File) ([]byte, func(), error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	return data, func() {}, nil
}
