package persist

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/update"
)

// groupFixture builds a realistic group snapshot and its encoding: a
// journaled leg with ranking constants installed, the shape a shard
// server ships to a healing peer.
func groupFixture(t testing.TB) (*GroupSnapshot, []byte) {
	t.Helper()
	snap := &GroupSnapshot{
		Epoch:   7,
		ShardID: 1,
		Shards:  2,
		BaseXML: "<root><item><leaf>alpha beta </leaf></item><item><leaf>gamma </leaf></item></root>",
		Journal: []update.JournalOp{
			{Ord: 2, XML: "<item><leaf>delta </leaf></item>"},
			{Remove: true, Ord: 0},
		},
		TotalNodes: 11,
		DF:         map[string]int{"alpha": 1, "beta": 1, "gamma": 1, "delta": 1},
	}
	var buf bytes.Buffer
	if err := EncodeGroup(&buf, snap); err != nil {
		t.Fatalf("encode fixture: %v", err)
	}
	return snap, buf.Bytes()
}

// FuzzGroupSnapshotDecode drives DecodeGroup with arbitrary bytes: it
// must never panic, and whenever it does accept an input, the decoded
// snapshot must survive a re-encode/re-decode round trip unchanged —
// the property the self-healing restore path depends on.
func FuzzGroupSnapshotDecode(f *testing.F) {
	_, valid := groupFixture(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("xsact-shard-group 1\n"))
	f.Add([]byte("xsact-shard-group 2\n"))
	f.Add([]byte("xsact-snapshot 4\ngarbage"))
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeGroup(bytes.NewReader(data))
		if err != nil {
			return // rejected: failing closed is always acceptable
		}
		var buf bytes.Buffer
		if err := EncodeGroup(&buf, snap); err != nil {
			t.Fatalf("re-encode accepted snapshot: %v", err)
		}
		again, err := DecodeGroup(&buf)
		if err != nil {
			t.Fatalf("re-decode re-encoded snapshot: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("accepted snapshot not round-trip stable:\n first  %+v\n second %+v", snap, again)
		}
	})
}

// TestGroupSnapshotDecodeTruncation feeds every strict prefix of a
// valid encoding to the decoder: all of them must fail closed, none
// may panic or hand back a partial snapshot.
func TestGroupSnapshotDecodeTruncation(t *testing.T) {
	_, valid := groupFixture(t)
	for cut := 0; cut < len(valid); cut++ {
		if snap, err := DecodeGroup(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded: %+v", cut, len(valid), snap)
		}
	}
}

// TestGroupSnapshotDecodeBitFlips flips one bit in every byte of a
// valid encoding: each corruption must either be rejected or decode
// to exactly the original snapshot (a flip the checksum provably
// cannot miss lands in the payload; header and envelope flips may
// break framing instead, which is equally fail-closed).
func TestGroupSnapshotDecodeBitFlips(t *testing.T) {
	want, valid := groupFixture(t)
	rejected := 0
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 1 << (i % 8)
		snap, err := DecodeGroup(bytes.NewReader(mut))
		if err != nil {
			rejected++
			continue
		}
		if !reflect.DeepEqual(snap, want) {
			t.Fatalf("flip at byte %d decoded to a different snapshot:\n got  %+v\n want %+v", i, snap, want)
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was rejected; the checksum is not engaged")
	}
}

// TestGroupSnapshotHeaderRejections pins the decoder's fail-closed
// answers for wrong magic and unsupported versions.
func TestGroupSnapshotHeaderRejections(t *testing.T) {
	_, valid := groupFixture(t)
	body := valid[bytes.IndexByte(valid, '\n')+1:]
	for _, tc := range []struct{ name, header, wantErr string }{
		{"wrong magic", "xsact-snapshot 1\n", "not a shard-group snapshot"},
		{"future version", fmt.Sprintf("%s %d\n", "xsact-shard-group", GroupFormatVersion+1), "unsupported shard-group version"},
	} {
		_, err := DecodeGroup(strings.NewReader(tc.header + string(body)))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
