package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// v4SnapshotOf saves eng in the compact v4 layout.
func v4SnapshotOf(t testing.TB, eng *engine.Engine, meta Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveFormat(&buf, eng, meta, CompactFormatVersion); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rankedFingerprint canonicalizes an engine's ranked answers — labels,
// scores, and paging envelopes — over a query set at several windows.
// Two engines with equal fingerprints are observationally identical to
// a ranked-search client.
func rankedFingerprint(t *testing.T, eng *engine.Engine, queries ...string) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		for _, opts := range []xseek.SearchOptions{
			{},
			{Limit: 1},
			{Limit: 2, Offset: 1},
			{Limit: 8},
		} {
			page, err := eng.SearchRankedPage(q, opts)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			fmt.Fprintf(&b, "q=%s limit=%d offset=%d total=%d at=%d\n", q, opts.Limit, opts.Offset, page.Total, page.Offset)
			for _, r := range page.Results {
				fmt.Fprintf(&b, "  %s %s %.17g\n", r.Label, r.Node.ID, r.Score)
			}
		}
	}
	st := eng.IndexStats()
	fmt.Fprintf(&b, "stats=%+v nodes=%d\n", st, eng.TotalNodes())
	return b.String()
}

var v4Queries = []string{"tomtom gps", "garmin", "canon camera", "easy camera", "tomtom"}

// TestV4RoundTripEquivalence: an engine loaded from a v4 snapshot must
// be bit-identical to the fresh-built one — same ranked labels, same
// scores, same paging envelopes — for the monolithic executor and for
// sharded ones, with and without eager materialization.
func TestV4RoundTripEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, eager := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/eager=%v", shards, eager), func(t *testing.T) {
				fresh := engine.NewWithConfig(testRoot(), engine.Config{Shards: shards})
				snap := v4SnapshotOf(t, fresh, Meta{CorpusName: "reviews", Seed: 11})
				if !bytes.HasPrefix(snap, []byte("XSACTSNAP 4\n")) {
					t.Fatalf("v4 snapshot header = %q", snap[:12])
				}

				cfg := engine.Config{MaterializePostings: eager}
				loaded, meta, err := Load(bytes.NewReader(snap), testRoot(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if meta.CorpusName != "reviews" || meta.Seed != 11 {
					t.Fatalf("meta after load = %+v", meta)
				}
				wantShards := shards
				if wantShards < 2 {
					wantShards = 0
				}
				if meta.Shards != wantShards {
					t.Fatalf("meta.Shards = %d, want %d", meta.Shards, wantShards)
				}

				want := rankedFingerprint(t, fresh, v4Queries...)
				got := rankedFingerprint(t, loaded, v4Queries...)
				if got != want {
					t.Fatalf("ranked results diverge after v4 round trip:\n%s\nvs fresh:\n%s", got, want)
				}
				if sh := loaded.Sharded(); sh != nil {
					if n := sh.Rebuilds(); n != 0 {
						t.Fatalf("clean v4 load rebuilt %d shards, want 0", n)
					}
				}
			})
		}
	}
}

// TestV4Deterministic: the compact payloads — symbol table and every
// postings section — are byte-identical across saves of one engine
// (the table is interned in sorted vocabulary order, so IDs and the
// delta streams keyed by them cannot drift with map iteration order).
// The gob-encoded head/schema sections are exempt: gob serializes maps
// in iteration order, a nondeterminism v4 inherits from the v1-v3 wire
// forms it shares them with.
func TestV4Deterministic(t *testing.T) {
	for _, shards := range []int{1, 3} {
		eng := engine.NewWithConfig(testRoot(), engine.Config{Shards: shards})
		a := v4SnapshotOf(t, eng, Meta{CorpusName: "reviews", Seed: 11})
		b := v4SnapshotOf(t, eng, Meta{CorpusName: "reviews", Seed: 11})
		if len(a) != len(b) {
			t.Fatalf("shards=%d: two saves of one engine differ in size (%d vs %d bytes)", shards, len(a), len(b))
		}
		nPost := 1
		if shards > 1 {
			nPost = shards
		}
		for _, sec := range []struct {
			kind byte
			n    int
		}{{secSymbols, 1}, {secPost, nPost}} {
			for i := 0; i < sec.n; i++ {
				ao, al := v4Span(t, a, sec.kind, i)
				bo, bl := v4Span(t, b, sec.kind, i)
				if ao != bo || al != bl || !bytes.Equal(a[ao:ao+al], b[bo:bo+bl]) {
					t.Fatalf("shards=%d: section %q #%d differs between saves", shards, sec.kind, i)
				}
			}
		}
	}
}

// TestV4FileMmapRoundTrip: the LoadFile fast path — mmap where the
// platform allows — serves the same answers as the generic reader path
// and as the fresh engine.
func TestV4FileMmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap", "reviews.v4")
	fresh := engine.NewWithConfig(testRoot(), engine.Config{Shards: 2})
	if err := SaveFileFormat(path, fresh, Meta{CorpusName: "reviews", Seed: 11}, CompactFormatVersion); err != nil {
		t.Fatal(err)
	}

	loaded, meta, err := LoadFile(path, testRoot(), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shards != 2 {
		t.Fatalf("meta.Shards = %d, want 2", meta.Shards)
	}
	want := rankedFingerprint(t, fresh, v4Queries...)
	if got := rankedFingerprint(t, loaded, v4Queries...); got != want {
		t.Fatalf("mmap-loaded engine diverges from fresh:\n%s\nvs\n%s", got, want)
	}

	// The lazy-decoded index reports its payload footprint.
	if m := loaded.Metrics(); m.IndexBytes == 0 {
		t.Fatalf("v4-loaded engine reports IndexBytes = 0")
	}

	// LoadFile still dispatches legacy layouts through the reader path.
	legacy := filepath.Join(dir, "reviews.v2")
	if err := SaveFile(legacy, fresh, Meta{CorpusName: "reviews", Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(legacy, testRoot(), engine.Config{}); err != nil {
		t.Fatalf("LoadFile(v2): %v", err)
	}
}

// TestV4LiveCompactedSelfContained: a compacted live corpus saves as a
// self-contained v4 snapshot (the tree travels in the 'X' section),
// reloads without the caller knowing the written-to corpus, and
// accepts the same post-restart writes as an engine that never
// restarted.
func TestV4LiveCompactedSelfContained(t *testing.T) {
	root := xmltree.MustParseString(liveCorpusXML(6))
	eng := engine.New(root)
	mustWrite(t, eng, "<product><name>fresh0</name><kind>gps</kind></product>", -1)
	mustWrite(t, eng, "<product><name>fresh1</name><kind>solar</kind></product>", 1)
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}

	snap := v4SnapshotOf(t, eng, Meta{CorpusName: "shop", Seed: 7})
	if !bytes.HasPrefix(snap, []byte("XSACTSNAP 4\n")) {
		t.Fatalf("compacted live engine snapshot header = %q, want v4", snap[:12])
	}

	// The caller's root is ignored: pass a tree that cannot possibly
	// describe the written-to corpus.
	loaded, _, err := Load(bytes.NewReader(snap), xmltree.MustParseString("<unrelated/>"), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"gps", "solar", "fresh0", "item3 radio"}
	if got, want := searchFingerprint(t, loaded, queries...), searchFingerprint(t, eng, queries...); got != want {
		t.Fatalf("self-contained v4 reload diverges:\n%s\nvs\n%s", got, want)
	}

	// Interleave further writes on both sides; they must stay in step.
	for _, e := range []*engine.Engine{eng, loaded} {
		mustWrite(t, e, "<product><name>post0</name><kind>gps</kind></product>", -1)
		mustWrite(t, e, "<product><name>post1</name><kind>lunar</kind></product>", 2)
	}
	queries = append(queries, "post0", "lunar", "gps")
	if got, want := searchFingerprint(t, loaded, queries...), searchFingerprint(t, eng, queries...); got != want {
		t.Fatalf("post-reload writes diverge:\n%s\nvs\n%s", got, want)
	}
}

// TestV4JournaledFallsBackToV3: a live engine with pending journaled
// writes cannot be represented in v4 (no journal section by design);
// requesting v4 writes the v3 live layout instead, which reloads.
func TestV4JournaledFallsBackToV3(t *testing.T) {
	root := xmltree.MustParseString(liveCorpusXML(4))
	eng := engine.New(root)
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, eng, "<product><name>pending</name><kind>gps</kind></product>", -1)

	snap := v4SnapshotOf(t, eng, Meta{CorpusName: "shop", Seed: 7})
	if !bytes.HasPrefix(snap, []byte("XSACTSNAP 3\n")) {
		t.Fatalf("journaled live engine snapshot header = %q, want v3 fallback", snap[:12])
	}
	loaded, _, err := Load(bytes.NewReader(snap), nil, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := searchFingerprint(t, loaded, "pending", "gps"), searchFingerprint(t, eng, "pending", "gps"); got != want {
		t.Fatalf("v3 fallback reload diverges:\n%s\nvs\n%s", got, want)
	}
}

// v4Span locates one raw section in snapshot bytes: the offset and
// length of its payload (the CRC is the 4 bytes following it). n picks
// among repeated kinds ('P' appears once per shard).
func v4Span(t *testing.T, snap []byte, kind byte, n int) (off, size int) {
	t.Helper()
	pos := bytes.IndexByte(snap, '\n') + 1
	if pos == 0 {
		t.Fatal("snapshot missing header line")
	}
	for pos < len(snap) {
		k := snap[pos]
		sz := int(binary.LittleEndian.Uint64(snap[pos+1 : pos+9]))
		if k == kind {
			if n == 0 {
				return pos + 9, sz
			}
			n--
		}
		pos += 9 + sz + 4
	}
	t.Fatalf("section %q #%d not found", kind, n)
	return 0, 0
}

// flipped returns a copy of snap with the byte at off xor-ed.
func flipped(snap []byte, off int) []byte {
	out := append([]byte(nil), snap...)
	out[off] ^= 0x40
	return out
}

// TestV4CorruptionFailsClosed: every flavor of damage to an
// eagerly-verified region — truncation mid-section, a flipped bit in
// the symbol table, a monolithic postings payload, or a stored CRC —
// must fail the load (sending the caller to a rebuild), never serve
// from the damaged bytes.
func TestV4CorruptionFailsClosed(t *testing.T) {
	eng := engine.New(testRoot())
	snap := v4SnapshotOf(t, eng, Meta{CorpusName: "reviews", Seed: 11})
	symOff, symLen := v4Span(t, snap, secSymbols, 0)
	postOff, postLen := v4Span(t, snap, secPost, 0)

	cases := []struct {
		name string
		data []byte
	}{
		{"truncated mid-section", snap[:postOff+postLen/2]},
		{"truncated mid-header", snap[:postOff-5]},
		{"bit flip in symbol table", flipped(snap, symOff+symLen/2)},
		{"bit flip in postings payload", flipped(snap, postOff+postLen/2)},
		{"bit flip in stored CRC", flipped(snap, postOff+postLen+2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Load(bytes.NewReader(tc.data), testRoot(), engine.Config{}); err == nil {
				t.Fatal("corrupt v4 snapshot loaded without error")
			}

			// The mmap path must reject it identically.
			path := filepath.Join(t.TempDir(), "corrupt.v4")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := LoadFile(path, testRoot(), engine.Config{}); err == nil {
				t.Fatal("corrupt v4 snapshot loaded via LoadFile without error")
			}
		})
	}
}

// TestV4ShardCorruptionRebuildsOneShard: sharded postings sections are
// verified lazily; a flipped bit in one shard's payload must not fail
// the load or poison results — that shard is rebuilt from the tree on
// first touch, and answers stay exact.
func TestV4ShardCorruptionRebuildsOneShard(t *testing.T) {
	fresh := engine.NewWithConfig(testRoot(), engine.Config{Shards: 3})
	snap := v4SnapshotOf(t, fresh, Meta{CorpusName: "reviews", Seed: 11})
	postOff, postLen := v4Span(t, snap, secPost, 1)

	loaded, _, err := Load(bytes.NewReader(flipped(snap, postOff+postLen/2)), testRoot(), engine.Config{})
	if err != nil {
		t.Fatalf("one corrupt shard section failed the whole load: %v", err)
	}
	want := rankedFingerprint(t, fresh, v4Queries...)
	if got := rankedFingerprint(t, loaded, v4Queries...); got != want {
		t.Fatalf("results diverge after shard rebuild:\n%s\nvs\n%s", got, want)
	}
	if n := loaded.Sharded().Rebuilds(); n != 1 {
		t.Fatalf("rebuilt %d shards, want exactly the corrupt one", n)
	}
}

// TestV4VersionSkewFailsClosed: a v3 live envelope whose base is a v4
// snapshot is a combination no writer produces; loadLive must refuse
// it rather than replay a journal over an untested base.
func TestV4VersionSkewFailsClosed(t *testing.T) {
	root := xmltree.MustParseString(liveCorpusXML(4))
	base := v4SnapshotOf(t, engine.New(root), Meta{CorpusName: "shop", Seed: 7})

	env := liveEnvelope{
		Meta:    Meta{CorpusName: "shop", Seed: 7},
		BaseXML: []byte(xmltree.XMLString(root)),
		Base:    base,
	}
	env.Checksum = env.checksum()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d\n", magic, LiveFormatVersion)
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatal(err)
	}

	_, _, err := Load(bytes.NewReader(buf.Bytes()), root, engine.Config{})
	if err == nil {
		t.Fatal("v3 envelope wrapping a v4 base loaded without error")
	}
	if !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("err = %v, want version-skew rejection", err)
	}
}

// TestSnapshotCrossVersion: every layout the current build can write —
// v1 single-index, v2 sharded, v3 live, v4 compact — must load back
// with matching answers. CI runs this by name as the cross-version
// compatibility gate.
func TestSnapshotCrossVersion(t *testing.T) {
	queries := []string{"tomtom gps", "garmin"}

	write := func(eng *engine.Engine, format int) []byte {
		var buf bytes.Buffer
		if err := SaveFormat(&buf, eng, Meta{CorpusName: "reviews", Seed: 11}, format); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	mono := engine.New(testRoot())
	sharded := engine.NewWithConfig(testRoot(), engine.Config{Shards: 2})
	live := engine.New(xmltree.MustParseString(liveCorpusXML(4)))
	mustWrite(t, live, "<product><name>fresh</name><kind>gps</kind></product>", -1)

	cases := []struct {
		name    string
		version int
		snap    []byte
		ref     *engine.Engine
		root    *xmltree.Node
	}{
		{"v1 single-index", FormatVersion, write(mono, 0), mono, testRoot()},
		{"v2 sharded", ShardedFormatVersion, write(sharded, 0), sharded, testRoot()},
		{"v3 live", LiveFormatVersion, write(live, 0), live, nil},
		{"v4 compact", CompactFormatVersion, write(mono, CompactFormatVersion), mono, testRoot()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			header := fmt.Sprintf("%s %d\n", magic, tc.version)
			if !bytes.HasPrefix(tc.snap, []byte(header)) {
				t.Fatalf("snapshot header = %q, want %q", tc.snap[:13], header)
			}
			loaded, _, err := Load(bytes.NewReader(tc.snap), tc.root, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			qs := queries
			if tc.ref == live {
				qs = []string{"fresh", "gps"}
			}
			if got, want := searchFingerprint(t, loaded, qs...), searchFingerprint(t, tc.ref, qs...); got != want {
				t.Fatalf("%s reload diverges:\n%s\nvs\n%s", tc.name, got, want)
			}
		})
	}
}
