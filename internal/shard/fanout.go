package shard

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Fanout is the transport-agnostic fan-out/merge layer: the whole
// query pipeline of a sharded corpus — global keyword check, per-leg
// dispatch, SLCA spine fix-up, K-way ranked merge, whole-corpus
// ranking constants — over an abstract set of Legs. The in-process
// Engine embeds one over local legs; package dist builds one over
// HTTP legs. Both produce bit-identical output because every shared
// decision (spine fix-up, merge keys, TF-IDF inputs) is made here
// from aggregated integer statistics.
type Fanout struct {
	root   *xmltree.Node
	schema *xseek.Schema
	part   Partition
	legs   []Leg

	// spine is a pipeline engine over the tiny spine-only index; it
	// also supplies the entity-map stage for spine-rooted SLCAs.
	spine *xseek.Engine
	// spineByDepth orders the spine deepest-first for the SLCA fix-up.
	spineByDepth []*xmltree.Node
	own          Ownership

	// Whole-corpus ranking constants, aggregated across legs so
	// per-leg scores are bit-identical to monolithic scores.
	totalNodes int
	df         map[string]int
	idf        map[string]float64
	// elements is the aggregate count of distinct indexed elements,
	// carried alongside df so IndexStats never has to materialize a
	// lazy shard.
	elements int

	// plannerStreamed counts ranked pages that ran the streamed
	// fan-out. A pointer so epoch-swapped fan-outs (dist) can carry
	// one counter across rebuilds via AdoptCounters.
	plannerStreamed *atomic.Int64

	// onLegErr, when non-nil, is consulted when a ranked leg fails:
	// returning nil drops that leg's contribution and degrades the
	// page (spine fix-up skipped, total reported as
	// xseek.StreamTotalUnknown) instead of failing the query.
	// Doc-order Search is always strict — a missing leg could promote
	// spurious spine SLCAs, which would be wrong, not just partial.
	onLegErr func(g int, err error) error
}

// Ownership maps subtree IDs to their owning partition group.
type Ownership struct {
	// spineSet marks spine Dewey IDs (owned by no group).
	spineSet map[string]bool
	// groupStart[g] is the Dewey ID of group g's first segment, the
	// ownership boundary for result scoring.
	groupStart []dewey.ID
}

// Ownership derives the partition's subtree-to-group mapping.
// Entities appended after the partition was planned (live adds carry
// ordinals beyond every planned segment) resolve to the last group.
func (p Partition) Ownership() Ownership {
	o := Ownership{spineSet: make(map[string]bool, len(p.Spine))}
	for _, n := range p.Spine {
		o.spineSet[n.ID.String()] = true
	}
	o.groupStart = make([]dewey.ID, len(p.Groups))
	for g, r := range p.Groups {
		if r[0] < r[1] {
			o.groupStart[g] = p.Segments[r[0]].ID
		} else {
			o.groupStart[g] = dewey.Root() // empty group: owns nothing
		}
	}
	return o
}

// Owner returns the group owning the subtree at id, or -1 for spine
// nodes (whose subtrees span groups).
func (o Ownership) Owner(id dewey.ID) int {
	if o.spineSet[id.String()] {
		return -1
	}
	g := sort.Search(len(o.groupStart), func(i int) bool {
		return o.groupStart[i].Compare(id) > 0
	}) - 1
	if g < 0 {
		return -1
	}
	return g
}

// Spine reports whether id is a spine node of the partition.
func (o Ownership) Spine(id dewey.ID) bool { return o.spineSet[id.String()] }

// newFanout fills in the partition-derived lookup structures. The IDF
// table is created empty and populated by initRanking: every leg
// engine built against it holds a reference to this one shared map,
// so legs materialized before and after the frequencies are
// aggregated see the same weights.
func newFanout(root *xmltree.Node, schema *xseek.Schema, part Partition, spineIdx *index.Index) *Fanout {
	f := &Fanout{
		root:            root,
		schema:          schema,
		part:            part,
		totalNodes:      part.NodeCount, // == root.CountNodes(), free from the partition walk
		idf:             make(map[string]float64),
		own:             part.Ownership(),
		plannerStreamed: new(atomic.Int64),
	}
	f.spineByDepth = append(f.spineByDepth, part.Spine...)
	sort.SliceStable(f.spineByDepth, func(i, j int) bool {
		return f.spineByDepth[i].ID.Level() > f.spineByDepth[j].ID.Level()
	})
	f.spine = xseek.FromPartsRanked(root, spineIdx, schema, f.totalNodes, f.idf)
	return f
}

// NewFanout assembles a fan-out over explicit legs — the distributed
// coordinator's constructor. spineIdx must index exactly the
// partition's spine nodes; df must be the whole-corpus per-term
// document frequencies (spine included) and elements the aggregate
// distinct-indexed-element count, both aggregated from the same
// integer statistics the legs score with, so every derived IDF weight
// is bit-identical on both sides of the transport.
func NewFanout(root *xmltree.Node, schema *xseek.Schema, part Partition, spineIdx *index.Index, legs []Leg, df map[string]int, elements int) *Fanout {
	f := newFanout(root, schema, part, spineIdx)
	f.legs = legs
	f.elements = elements
	f.initRanking(df)
	return f
}

// WithLegFailurePolicy returns a shallow view of the fan-out whose
// ranked paths consult policy when a leg fails (see onLegErr). The
// receiver is unchanged; the view shares all state and counters.
func (f *Fanout) WithLegFailurePolicy(policy func(g int, err error) error) *Fanout {
	nf := *f
	nf.onLegErr = policy
	return &nf
}

// AdoptCounters carries the streamed-decision counter over from a
// previous fan-out of the same logical corpus (epoch-swapped rebuilds
// must not reset metrics).
func (f *Fanout) AdoptCounters(prev *Fanout) {
	if prev != nil {
		f.plannerStreamed = prev.plannerStreamed
	}
}

// initRanking installs the whole-corpus term statistics, filling the
// shared IDF table in place.
func (f *Fanout) initRanking(df map[string]int) {
	f.df = df
	for t, n := range df {
		f.idf[t] = xseek.IDF(f.totalNodes, n)
	}
}

// Root returns the corpus the fan-out serves.
func (f *Fanout) Root() *xmltree.Node { return f.root }

// Schema returns the (whole-corpus) inferred schema summary.
func (f *Fanout) Schema() *xseek.Schema { return f.schema }

// Partition returns the segment/spine split the legs were built on.
func (f *Fanout) Partition() Partition { return f.part }

// LegCount returns K, the number of legs.
func (f *Fanout) LegCount() int { return len(f.legs) }

// TotalNodes returns the whole-corpus node count.
func (f *Fanout) TotalNodes() int { return f.totalNodes }

// DocFreq returns the number of corpus nodes containing term,
// aggregated across every leg — the CorpusStats view database
// selection scores.
func (f *Fanout) DocFreq(term string) int { return f.df[term] }

// OwnerGroup returns the leg owning the subtree at id, or -1 for
// spine nodes.
func (f *Fanout) OwnerGroup(id dewey.ID) int { return f.own.Owner(id) }

// IndexStats returns aggregate index statistics equal to the
// monolithic index's: distinct terms and total postings fall out of
// the shared frequency table (a posting is one (term, element) pair,
// so postings sum to Σ df), and the element count is carried from
// build/snapshot time. No leg is touched — a metrics probe never
// forces a lazy shard to decode.
func (f *Fanout) IndexStats() index.Stats {
	s := index.Stats{Terms: len(f.df), IndexedElements: f.elements}
	for _, n := range f.df {
		s.Postings += n
	}
	return s
}

// TermFrequencies returns a copy of the aggregated per-term document
// frequencies. The persistence layer snapshots them so a lazy loader
// can install whole-corpus ranking constants before any shard index
// has been decoded.
func (f *Fanout) TermFrequencies() map[string]int {
	out := make(map[string]int, len(f.df))
	for t, n := range f.df {
		out[t] = n
	}
	return out
}

// SpineEngine returns the pipeline engine over the spine-only index.
func (f *Fanout) SpineEngine() *xseek.Engine { return f.spine }

// StreamedDecisions reports how many ranked pages ran the streamed
// fan-out.
func (f *Fanout) StreamedDecisions() int64 { return f.plannerStreamed.Load() }

// tfCounts resolves postings-under-subtree counts for a probe batch:
// a group-owned probe goes to its owning leg alone; a spine probe
// sums the local spine index and every leg (the node sets are
// disjoint, so the sums equal the monolithic index's counts exactly).
// One batched call per leg, whatever the probe count — the unit of
// work a remote leg pays a round trip for.
func (f *Fanout) tfCounts(probes []TFProbe) ([]int, error) {
	out := make([]int, len(probes))
	perLeg := make([][]int, len(f.legs)) // probe indices routed to each leg
	for i, p := range probes {
		if g := f.own.Owner(p.ID); g >= 0 {
			perLeg[g] = append(perLeg[g], i)
			continue
		}
		out[i] = index.CountUnder(f.spine.Index().Lookup(p.Term), p.ID)
		for g := range f.legs {
			perLeg[g] = append(perLeg[g], i)
		}
	}
	counts := make([][]int, len(f.legs))
	errs := make([]error, len(f.legs))
	core.ForEachParallel(len(f.legs), 0, func(g int) {
		if len(perLeg[g]) == 0 {
			return
		}
		sub := make([]TFProbe, len(perLeg[g]))
		for j, i := range perLeg[g] {
			sub[j] = probes[i]
		}
		counts[g], errs[g] = f.legs[g].TFUnderLeg(sub)
	})
	for g := range f.legs {
		if errs[g] != nil {
			return nil, errs[g]
		}
		if len(perLeg[g]) == 0 {
			continue
		}
		if len(counts[g]) != len(perLeg[g]) {
			return nil, fmt.Errorf("shard: leg %d returned %d counts for %d probes", g, len(counts[g]), len(perLeg[g]))
		}
		for j, i := range perLeg[g] {
			out[i] += counts[g][j]
		}
	}
	return out, nil
}
