// Package shard scales one corpus across K index shards: the document
// is partitioned at top-level entity boundaries, each shard owns an
// inverted index over its contiguous run of entity subtrees, and
// queries fan out per shard and merge — with results provably
// identical to a single monolithic index over the same corpus.
//
// # Partition model
//
// Plan splits the tree into segments and a spine:
//
//   - a segment is a subtree rooted at a topmost entity (an inferred
//     *-node with no entity proper ancestor), or a maximal entity-free
//     subtree hanging off the spine. Segments are self-contained: no
//     SLCA inside a segment can have a witness outside it.
//   - the spine is the small set of remaining nodes — the document
//     root and any wrapper elements above the topmost entities. Spine
//     nodes are the only nodes whose subtrees span segment (and hence
//     shard) boundaries.
//
// Segments are chunked into K contiguous, node-count-balanced groups;
// each group's subtrees are indexed into one shard (index.BuildForest),
// and the spine nodes' own tokens go into a separate tiny spine index
// (index.BuildNodes). The shard node sets are disjoint and their union
// is the document, so per-term posting lists concatenate to exactly
// the monolithic index's lists.
//
// # Query execution
//
// Search fans the xseek stage pipeline (compile → plan → SLCA →
// entity-map) out per shard. Because a segment subtree lies entirely
// within one shard, a node inside a segment is a global SLCA if and
// only if it is a shard-local SLCA of that shard — so the per-shard
// SLCA sets are unioned after discarding spine-node hits. Spine nodes
// need global knowledge and get a separate fix-up: each spine node is
// accepted (deepest first) when every keyword has a witness somewhere
// under it and no already-accepted SLCA lies below it. The merged,
// document-ordered result list is byte-identical to the monolithic
// engine's.
//
// Ranking reuses the whole-corpus constants: document frequencies are
// aggregated across shards at build time, so per-shard TF-IDF scores
// equal monolithic scores bit for bit, and RankPage merges the
// per-shard ranked streams with a K-way heap — top-k never
// materializes the full cross-shard ranking.
//
// # Laziness and repair
//
// Shards built from snapshot sources (package persist) materialize on
// first use; a shard whose snapshot section is corrupt is rebuilt from
// its own segment subtrees only, leaving the other shards' lazy loads
// untouched.
package shard
