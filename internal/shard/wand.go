package shard

import (
	"repro/internal/xseek"
)

// The fan-out's score-bounded ranked path: SearchRankedPageStream
// with block-max pruning in every leg, plus one shared monotone
// threshold — each leg publishes its own k-th-best score as its heap
// fills, so a slow leg can prune with the global bar, not just its
// own. Leg scoring (and therefore leg bounds) is leg-local: a leg's
// hits lie inside its own segments, and spine-owned SLCAs are
// filtered out and fixed up eagerly afterwards, exactly as in the
// plain streamed path. Cross-leg pruning uses strict comparison only:
// a pruned entity scores strictly below the final global k-th score,
// so it can affect neither membership nor tie order of the page.
//
// Over a transport the threshold circulates as per-leg score floors: a
// remote leg starts from a snapshot of the shared bar and reports its
// final bar back. Any snapshot is a lower bound on the global k-th
// best score, so staleness only costs pruning opportunity, never
// correctness.

// SearchRankedPageWAND returns the options' window of the relevance
// ranking with score-bounded pruning in every leg. Exact mode is
// bit-identical to SearchRankedPageStream (and the eager path);
// approximate mode may stop draining legs early, reporting
// StreamTotalUnknown as the total. An unbounded window falls back to
// the eager path, like the streamed twin.
func (f *Fanout) SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error) {
	return f.rankedPage(query, opts, true)
}
