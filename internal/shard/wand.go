package shard

import (
	"errors"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xseek"
)

// The fan-out's score-bounded ranked path: SearchRankedPageStream
// with block-max pruning in every leg, plus one shared monotone
// threshold — each leg publishes its own k-th-best score as its heap
// fills, so a slow leg can prune with the global bar, not just its
// own. Leg scoring (and therefore leg bounds) is shard-local: a
// shard's hits lie inside its own segments, and spine-owned SLCAs are
// filtered out and fixed up eagerly afterwards, exactly as in the
// plain streamed path. Cross-leg pruning uses strict comparison only:
// a pruned entity scores strictly below the final global k-th score,
// so it can affect neither membership nor tie order of the page.

// SearchRankedPageWAND returns the options' window of the relevance
// ranking with score-bounded pruning in every shard leg. Exact mode
// is bit-identical to SearchRankedPageStream (and the eager path);
// approximate mode may stop draining legs early, reporting
// StreamTotalUnknown as the total. An unbounded window falls back to
// the eager path, like the streamed twin.
func (e *Engine) SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error) {
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	hi := 0
	if opts.Limit > 0 {
		if n := lo + opts.Limit; n > lo { // overflow-safe, mirroring Window
			hi = n
		}
	}
	if hi == 0 {
		results, err := e.Search(query)
		if err != nil {
			return nil, 0, xseek.WANDStats{}, err
		}
		return e.RankPage(results, query, opts), len(results), xseek.WANDStats{}, nil
	}

	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, 0, xseek.WANDStats{}, xseek.ErrEmptyQuery
	}
	var missing []string
	for _, t := range terms {
		if e.df[t] == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, 0, xseek.WANDStats{}, &index.NoMatchError{Terms: missing}
	}
	e.plannerStreamed.Add(1)

	shared := &xseek.SharedThreshold{}
	legOpts := xseek.SearchOptions{Limit: hi, Accuracy: opts.Accuracy}
	type shardOut struct {
		top   []*xseek.RankedResult // the shard's own top-hi, rank order
		slcas []dewey.ID            // kept (non-spine) SLCAs, document order
		total int                   // the shard's full entity-result count
		stats xseek.WANDStats
		err   error
	}
	outs := make([]shardOut, len(e.shards))
	core.ForEachParallel(len(e.shards), 0, func(g int) {
		sh := e.shards[g].get()
		q, err := sh.Compile(query)
		if err != nil {
			// A keyword missing from this shard silences the shard only.
			var noMatch *index.NoMatchError
			if !errors.As(err, &noMatch) {
				outs[g].err = err
			}
			return
		}
		it, err := q.SLCAIter()
		if err != nil {
			outs[g].err = err
			return
		}
		filtered := slca.FilterTee(it,
			func(id dewey.ID) bool { return !e.spineSet[id.String()] },
			func(id dewey.ID) { outs[g].slcas = append(outs[g].slcas, id) },
		)
		es := xseek.NewEntityStream(filtered, e.root, e.schema)
		top, total, stats, err := xseek.ConsumeRankedWAND(es, legOpts, sh.StreamScorer(terms), sh.TermBounds(terms), shared)
		outs[g].top, outs[g].total, outs[g].stats, outs[g].err = top, total, stats, err
	})

	var st xseek.WANDStats
	total := 0
	var segSLCAs []dewey.ID // groups are contiguous, so the concat is sorted
	streams := make([][]*xseek.RankedResult, 0, len(outs)+1)
	for _, o := range outs {
		if o.err != nil {
			return nil, 0, st, o.err
		}
		st.Add(o.stats)
		if o.total >= 0 {
			total += o.total
		}
		segSLCAs = append(segSLCAs, o.slcas...)
		if len(o.top) > 0 {
			streams = append(streams, o.top)
		}
	}

	// Spine fix-up with whole-corpus knowledge, exactly as in the
	// streamed path. Spine results never enter a leg's pruning, so the
	// fix-up is unaffected by the cutoffs.
	if spineIDs := e.spineSLCAs(terms, segSLCAs); len(spineIDs) > 0 {
		spineRes, err := e.spine.MapToEntities(spineIDs)
		if err != nil {
			return nil, 0, st, err
		}
		total += len(spineRes)
		spine := e.RankPage(spineRes, query, xseek.SearchOptions{Limit: hi})
		if len(spine) > 0 {
			streams = append(streams, spine)
		}
	}

	merged := mergeRankedStreams(streams, hi)
	if lo > len(merged) {
		lo = len(merged)
	}
	if st.Terminated {
		// Some leg abandoned its drain; its count (and so the sum) is
		// meaningless.
		total = xseek.StreamTotalUnknown
	}
	return merged[lo:], total, st, nil
}
