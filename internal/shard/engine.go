package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Engine is a sharded search executor over one corpus. It presents the
// same query surface as a single xseek.Engine — Search, CleanQuery,
// RankResults, RankPage, CorpusStats — and guarantees identical
// output; only the execution strategy (per-shard fan-out and merge)
// differs. All methods are safe for concurrent use.
//
// The query pipeline itself lives in the embedded Fanout, which runs
// over the abstract Leg interface; Engine supplies in-process legs
// (lazily materialized shard engines) plus everything tied to local
// index ownership: building, reuse, symbol tables, snapshot hooks.
type Engine struct {
	*Fanout

	// syms is the symbol table shared by the spine index and every
	// shard built by this engine, so a v4 snapshot writes one symbol
	// section for all K shards. Indexes adopted from a prior engine
	// (BuildReusing) may carry their own tables; all cross-index
	// composition is string-keyed, so that is correct, just less
	// compact until the next full build.
	syms *index.SymbolTable

	shards []*lazyShard

	rebuilds atomic.Int64
}

// lazyShard materializes one shard's pipeline engine on first use. A
// mutex (not sync.Once) serializes builds so a panicking build can be
// retried instead of poisoning the slot.
type lazyShard struct {
	mu    sync.Mutex
	build func() *xseek.Engine
	eng   atomic.Pointer[xseek.Engine]
}

func (l *lazyShard) get() *xseek.Engine {
	if e := l.eng.Load(); e != nil {
		return e
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.eng.Load(); e != nil {
		return e
	}
	e := l.build()
	l.eng.Store(e)
	// Drop the loader: for snapshot-backed shards it captures the raw
	// encoded section bytes, which would otherwise stay live for the
	// engine's lifetime next to the decoded index.
	l.build = nil
	return e
}

// peek returns the shard engine if it has been materialized, without
// forcing a load.
func (l *lazyShard) peek() *xseek.Engine { return l.eng.Load() }

// Build constructs a K-shard engine over root: schema inference runs
// first (the partition depends on it), then the K shard indexes and
// the spine index build concurrently. Document frequencies are
// aggregated across the finished shards into the shared ranking
// constants.
func Build(root *xmltree.Node, k int) *Engine {
	e, _ := buildReusing(root, k, nil)
	return e
}

// BuildReusing is Build with an index-reuse pass over a prior engine of
// the same corpus lineage: any group of the fresh partition whose
// segment sequence is identical (same subtree objects, same Dewey IDs)
// to one of prior's groups adopts prior's already-built index instead
// of re-indexing. It returns the engine plus how many groups were
// reused. This is the single-shard compaction primitive of the live
// write path: entities appended at the end of the document land in the
// trailing groups of the re-balanced partition, so every group whose
// boundary survives the re-balance (its size overshoot absorbs the
// growth) carries its index over and only the perturbed shards are
// rebuilt. The output is identical to Build's for the same root and k.
func BuildReusing(root *xmltree.Node, k int, prior *Engine) (*Engine, int) {
	return buildReusing(root, k, prior)
}

func buildReusing(root *xmltree.Node, k int, prior *Engine) (*Engine, int) {
	schema := xseek.InferSchemaParallel(root, 0)
	part := Plan(root, schema, k)
	st := index.NewSymbolTable()

	reused := 0
	indexes := make([]*index.Index, len(part.Groups))
	var wg sync.WaitGroup
	for g, r := range part.Groups {
		if prior != nil {
			if idx := prior.reusableIndex(part.Segments[r[0]:r[1]]); idx != nil {
				indexes[g] = idx
				reused++
				continue
			}
		}
		wg.Add(1)
		go func(g int, lo, hi int) {
			defer wg.Done()
			indexes[g] = index.BuildForestShared(root, part.Segments[lo:hi], st)
		}(g, r[0], r[1])
	}
	wg.Wait()

	e := newEngine(root, schema, part, st)
	e.shards = make([]*lazyShard, len(indexes))
	for g, idx := range indexes {
		sh := &lazyShard{}
		sh.eng.Store(xseek.FromPartsRanked(root, idx, schema, e.totalNodes, e.idf))
		e.shards[g] = sh
		e.elements += idx.Stats().IndexedElements
	}
	e.elements += e.spine.Index().Stats().IndexedElements
	e.initRanking(e.aggregateDF())
	e.initLegs()
	return e, reused
}

// reusableIndex returns the prior engine's index over exactly the given
// segment sequence, or nil when no group matches. Matching is by node
// identity, which implies identical Dewey IDs and content — the only
// condition under which a prior posting set is still byte-valid.
func (e *Engine) reusableIndex(segs []*xmltree.Node) *index.Index {
	for g, r := range e.part.Groups {
		lo, hi := r[0], r[1]
		if hi-lo != len(segs) {
			continue
		}
		match := true
		for i := range segs {
			if e.part.Segments[lo+i] != segs[i] {
				match = false
				break
			}
		}
		if match {
			return e.shards[g].get().Index()
		}
	}
	return nil
}

// SpineIndex returns the index over the spine nodes (document root and
// wrapper elements above the topmost entities). Together with
// ShardIndexes it exposes every posting the engine holds — the live
// write path reads them to compose its base ⊕ delta − tombstones view.
func (e *Engine) SpineIndex() *index.Index { return e.spine.Index() }

// FromSources assembles a sharded engine whose shard indexes load
// lazily — typically from a multi-shard snapshot (package persist). k,
// df, and elements (the aggregate distinct-indexed-element count, see
// IndexStats) must come from the snapshot; the partition is recomputed
// deterministically from root + schema + k, so it matches the one the
// indexes were built under. load[g] supplies group g's index; a nil
// or failing loader falls back to rebuilding that one shard from its
// own segment subtrees, counted in Rebuilds.
func FromSources(root *xmltree.Node, schema *xseek.Schema, k int, df map[string]int, elements int, load []func() (*index.Index, error)) (*Engine, error) {
	return FromSourcesShared(root, schema, k, df, elements, load, nil)
}

// FromSourcesShared is FromSources with an explicit symbol table (fresh
// when nil): a v4 snapshot's shard sections all intern through the
// snapshot's one table, and rebuild fallbacks join it too.
func FromSourcesShared(root *xmltree.Node, schema *xseek.Schema, k int, df map[string]int, elements int, load []func() (*index.Index, error), st *index.SymbolTable) (*Engine, error) {
	part := Plan(root, schema, k)
	if len(load) != len(part.Groups) {
		return nil, fmt.Errorf("shard: %d shard sources for a %d-group partition", len(load), len(part.Groups))
	}
	if st == nil {
		st = index.NewSymbolTable()
	}
	e := newEngine(root, schema, part, st)
	e.initRanking(df)
	e.elements = elements
	e.shards = make([]*lazyShard, len(part.Groups))
	for g := range part.Groups {
		g := g
		sh := &lazyShard{}
		sh.build = func() *xseek.Engine {
			if src := load[g]; src != nil {
				if idx, err := src(); err == nil {
					return xseek.FromPartsRanked(root, idx, schema, e.totalNodes, e.idf)
				}
			}
			e.rebuilds.Add(1)
			lo, hi := part.Groups[g][0], part.Groups[g][1]
			idx := index.BuildForestShared(root, part.Segments[lo:hi], st)
			return xseek.FromPartsRanked(root, idx, schema, e.totalNodes, e.idf)
		}
		e.shards[g] = sh
	}
	e.initLegs()
	return e, nil
}

// newEngine wraps a fresh Fanout (the transport-agnostic pipeline
// state) with the engine's local index machinery. The spine index is
// built here through the shared symbol table.
func newEngine(root *xmltree.Node, schema *xseek.Schema, part Partition, st *index.SymbolTable) *Engine {
	if st == nil {
		st = index.NewSymbolTable()
	}
	return &Engine{
		Fanout: newFanout(root, schema, part, index.BuildNodesShared(root, part.Spine, st)),
		syms:   st,
	}
}

// initLegs installs the in-process legs over the engine's shard slots.
// Must run after e.shards is populated; the legs share the fan-out's
// spine set so their kept-filters agree with the merge layer.
func (e *Engine) initLegs() {
	e.legs = make([]Leg, len(e.shards))
	for g, sh := range e.shards {
		e.legs[g] = &localLeg{root: e.root, schema: e.schema, spineSet: e.own.spineSet, sh: sh}
	}
}

// Symbols returns the symbol table shared by the spine and the shards
// this engine built (see the field comment for the reuse caveat).
func (e *Engine) Symbols() *index.SymbolTable { return e.syms }

// MemStats aggregates index residency over the spine and the
// materialized shards, without forcing a lazy shard to decode.
func (e *Engine) MemStats() index.MemStats {
	ms := e.spine.Index().MemStats()
	for _, sh := range e.shards {
		if x := sh.peek(); x != nil {
			m := x.Index().MemStats()
			ms.DataBytes += m.DataBytes
			ms.ResidentLists += m.ResidentLists
			ms.ResidentBlocks += m.ResidentBlocks
		}
	}
	return ms
}

// aggregateDF sums document frequencies over every shard index plus
// the spine index. Shard node sets are disjoint, so the sums equal the
// monolithic index's frequencies exactly.
func (e *Engine) aggregateDF() map[string]int {
	df := make(map[string]int)
	add := func(x *xseek.Engine) {
		x.Index().EachTerm(func(t string, n int) { df[t] += n })
	}
	add(e.spine)
	for _, sh := range e.shards {
		add(sh.get())
	}
	return df
}

// ShardCount returns K, the number of index shards.
func (e *Engine) ShardCount() int { return len(e.shards) }

// Rebuilds reports how many shards were rebuilt from the tree because
// their snapshot source was missing or corrupt.
func (e *Engine) Rebuilds() int64 { return e.rebuilds.Load() }

// PlannerDecisions sums the SLCA cost-planner counters over the
// materialized shards (a query compiles once per shard, so sharded
// counts run K× a monolithic engine's).
func (e *Engine) PlannerDecisions() (indexedLookup, scanEager int64) {
	for _, sh := range e.shards {
		if x := sh.peek(); x != nil {
			i, s := x.PlannerDecisions()
			indexedLookup += i
			scanEager += s
		}
	}
	return indexedLookup, scanEager
}

// ShardIndexes materializes and returns every shard's inverted index
// in group order — the persistence layer's save hook.
func (e *Engine) ShardIndexes() []*index.Index {
	out := make([]*index.Index, len(e.shards))
	for g, sh := range e.shards {
		out[g] = sh.get().Index()
	}
	return out
}
