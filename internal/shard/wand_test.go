package shard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// TestShardedWANDEquivalence: the score-bounded fan-out in exact mode
// must be bit-identical to the monolithic eager engine at K ∈ {2, 8}
// shards across randomized corpora and window shapes — the
// cross-algorithm property the shared threshold must not break. In
// approximate mode the page must still be that exact window; only the
// total may degrade to StreamTotalUnknown.
func TestShardedWANDEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	pageGrid := []xseek.SearchOptions{
		{Limit: 1}, {Limit: 2}, {Limit: 3, Offset: 1},
		{Limit: 2, Offset: 2}, {Limit: 100}, {Offset: 1}, {},
		{Limit: 4, Offset: 999},
	}
	for ti := 0; ti < 12; ti++ {
		doc := randomDoc(r, vocab)
		root := xmltree.MustParseString(doc)
		mono := xseek.NewParallel(root)
		for _, k := range []int{2, 8} {
			sharded := Build(root, k)
			for qi := 0; qi < 6; qi++ {
				n := r.Intn(3) + 1
				terms := make([]string, n)
				for i := range terms {
					terms[i] = vocab[r.Intn(len(vocab))]
				}
				query := strings.Join(terms, " ")
				want, wantErr := mono.Search(query)

				for _, opts := range pageGrid {
					wantPage, wantTotal, wantPageErr := func() ([]*xseek.RankedResult, int, error) {
						if wantErr != nil {
							return nil, 0, wantErr
						}
						return mono.RankPage(want, query, opts), len(want), nil
					}()
					gotPage, gotTotal, st, gotErr := sharded.SearchRankedPageWAND(query, opts)
					if !sameError(wantPageErr, gotErr) {
						t.Fatalf("tree %d K=%d query %q page %+v: err %v vs %v",
							ti, k, query, opts, gotErr, wantPageErr)
					}
					if gotErr != nil {
						continue
					}
					if st.Terminated {
						t.Fatalf("tree %d K=%d query %q page %+v: exact mode terminated", ti, k, query, opts)
					}
					if gotTotal != wantTotal {
						t.Fatalf("tree %d K=%d query %q page %+v: total %d want %d",
							ti, k, query, opts, gotTotal, wantTotal)
					}
					if rankedKey(gotPage) != rankedKey(wantPage) {
						t.Fatalf("tree %d K=%d query %q page %+v:\n got  %s\n want %s",
							ti, k, query, opts, rankedKey(gotPage), rankedKey(wantPage))
					}

					// Approximate mode: same page, total exact or unknown.
					aPage, aTotal, ast, aErr := sharded.SearchRankedPageWAND(query,
						xseek.SearchOptions{Limit: opts.Limit, Offset: opts.Offset, Accuracy: xseek.AccuracyApprox})
					if aErr != nil {
						t.Fatalf("tree %d K=%d query %q page %+v approx: %v", ti, k, query, opts, aErr)
					}
					if rankedKey(aPage) != rankedKey(wantPage) {
						t.Fatalf("tree %d K=%d query %q page %+v approx:\n got  %s\n want %s",
							ti, k, query, opts, rankedKey(aPage), rankedKey(wantPage))
					}
					if aTotal != wantTotal && aTotal != xseek.StreamTotalUnknown {
						t.Fatalf("tree %d K=%d query %q page %+v approx: total %d, want %d or unknown",
							ti, k, query, opts, aTotal, wantTotal)
					}
					if aTotal == xseek.StreamTotalUnknown && !ast.Terminated {
						t.Fatalf("tree %d K=%d query %q page %+v approx: unknown total without Terminated", ti, k, query, opts)
					}
				}
			}
		}
	}
}
