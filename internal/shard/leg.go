package shard

import (
	"errors"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// A Leg is one fan-out target: the execution engine of one shard
// group, behind a transport-agnostic call surface. The in-process
// localLeg wraps a lazily built xseek.Engine; package dist implements
// the same interface over HTTP so the coordinator reuses this
// package's merge path unchanged. Every Leg must produce exactly what
// the in-process leg produces for the same group — the merge layer
// depends on it for bit-identical results.
//
// A keyword absent from a leg's group silences that leg (empty
// output, nil error), never the whole query; the global missing-term
// check runs against the aggregated frequencies before any leg is
// called.
type Leg interface {
	// SearchLeg runs the doc-order leg: compile → SLCA → spine filter →
	// entity mapping over the group's index.
	SearchLeg(q LegQuery) (LegDocs, error)
	// RankedLeg runs the streamed (q.WAND false) or score-bounded
	// (q.WAND true) ranked leg, returning the leg's own top q.Limit in
	// rank order plus its kept SLCAs and full entity-result count.
	// shared is the fan-out's monotone-max threshold; a remote leg
	// forwards a snapshot of it as its score floor and raises it with
	// the leg's final threshold on return.
	RankedLeg(q LegQuery, shared *xseek.SharedThreshold) (LegPage, error)
	// RankSubsetLeg heap-selects the top q.Limit of an explicit
	// leg-owned doc-order result subset — the eager RankPage's
	// per-group stage. The returned entries must reference the input
	// Result objects.
	RankSubsetLeg(q LegQuery, subset []*xseek.Result) ([]*xseek.RankedResult, error)
	// TFUnderLeg counts the postings of probe.Term inside the subtree
	// at probe.ID in the group's index, one count per probe.
	TFUnderLeg(probes []TFProbe) ([]int, error)
}

// LegQuery carries one query leg's parameters.
type LegQuery struct {
	// Query is the normalized query string; Terms its tokenization
	// (forwarded so legs never re-tokenize).
	Query string
	Terms []string
	// Limit is the number of ranked entries the leg keeps (the
	// fan-out's offset+limit); 0 means unbounded.
	Limit int
	// WAND selects the score-bounded consumer; Accuracy is forwarded
	// to it.
	WAND     bool
	Accuracy xseek.Accuracy
}

// LegDocs is a doc-order leg's output: the group-internal SLCAs it
// kept (document order) and their entity-mapped results.
//
// A kept SLCA can lift to an entity that sits on the spine — an
// entity whose subtree the partition split across groups. Such a
// result needs cross-group knowledge (another leg may hold earlier
// matches under the same entity, and its term frequencies span
// groups), so it is reported in Boundary, not Results: the fan-out
// merges Boundary entries across legs and scores them with
// whole-corpus counts. Results therefore contains only group-owned
// roots, which can never collide across legs.
type LegDocs struct {
	SLCAs    []dewey.ID
	Results  []*xseek.Result
	Boundary []*xseek.Result
}

// LegPage is a ranked leg's output.
type LegPage struct {
	// Top is the leg's own top-Limit, rank order. Spine-rooted
	// entities are excluded — their leg-local scores would be partial
	// — and reported through Boundary instead.
	Top []*xseek.RankedResult
	// SLCAs are the leg's kept (non-spine) SLCAs, document order.
	SLCAs []dewey.ID
	// Boundary are the leg's spine-rooted entity results (document
	// order, unscored); see LegDocs.Boundary. The fan-out merges them
	// across legs and scores them with whole-corpus counts.
	Boundary []*xseek.Result
	// Total is the leg's full entity-result count, Boundary excluded
	// (xseek.StreamTotalUnknown after an approximate early stop).
	Total int
	Stats xseek.WANDStats
}

// TFProbe asks for the posting count of one term inside one subtree.
type TFProbe struct {
	Term string
	ID   dewey.ID
}

// NewLocalLeg wraps an already-built group engine as a Leg — the
// building block a shard server uses to serve its one group remotely.
// part supplies the spine set for the leg's kept-filter; it must be
// the same partition the group index was built under, so server and
// coordinator agree on which SLCAs are cross-segment artifacts.
func NewLocalLeg(root *xmltree.Node, schema *xseek.Schema, part Partition, eng *xseek.Engine) Leg {
	sh := &lazyShard{}
	sh.eng.Store(eng)
	return &localLeg{root: root, schema: schema, spineSet: part.Ownership().spineSet, sh: sh}
}

// localLeg is the in-process Leg over one lazily materialized shard
// engine.
type localLeg struct {
	root     *xmltree.Node
	schema   *xseek.Schema
	spineSet map[string]bool
	sh       *lazyShard
}

func (l *localLeg) SearchLeg(q LegQuery) (LegDocs, error) {
	sh := l.sh.get()
	cq, err := sh.Compile(q.Query)
	if err != nil {
		// A keyword missing from this shard only means no SLCA can
		// fall inside it; other shards (or the spine) still answer.
		var noMatch *index.NoMatchError
		if errors.As(err, &noMatch) {
			return LegDocs{}, nil
		}
		return LegDocs{}, err
	}
	ids := cq.SLCAs()
	kept := make([]dewey.ID, 0, len(ids))
	for _, id := range ids {
		if !l.spineSet[id.String()] {
			kept = append(kept, id)
		}
	}
	rs, err := sh.MapToEntities(kept)
	if err != nil {
		return LegDocs{}, err
	}
	out := LegDocs{SLCAs: kept}
	for _, r := range rs {
		// A group-internal SLCA can still lift to a spine-rooted
		// entity (the partition split that entity's subtree). Those
		// results need cross-group merging, so they travel separately.
		if l.spineSet[r.Node.ID.String()] {
			out.Boundary = append(out.Boundary, r)
		} else {
			out.Results = append(out.Results, r)
		}
	}
	return out, nil
}

func (l *localLeg) RankedLeg(q LegQuery, shared *xseek.SharedThreshold) (LegPage, error) {
	sh := l.sh.get()
	cq, err := sh.Compile(q.Query)
	if err != nil {
		var noMatch *index.NoMatchError
		if errors.As(err, &noMatch) {
			return LegPage{}, nil
		}
		return LegPage{}, err
	}
	it, err := cq.SLCAIter()
	if err != nil {
		return LegPage{}, err
	}
	var out LegPage
	// Drop cross-segment artifacts (spine-owned SLCAs) before entity
	// mapping, collecting the survivors for the spine fix-up — the
	// streamed twin of the kept-filter in SearchLeg.
	filtered := slca.FilterTee(it,
		func(id dewey.ID) bool { return !l.spineSet[id.String()] },
		func(id dewey.ID) { out.SLCAs = append(out.SLCAs, id) },
	)
	es := xseek.NewEntityStream(filtered, l.root, l.schema)
	// Entities rooted on the spine leave the stream before scoring and
	// counting: the leg's index sees only its own groups' matches, so
	// its score for a cross-group entity would be partial, and another
	// leg may emit the same entity. The fan-out re-derives both from
	// the Boundary reports with whole-corpus knowledge.
	es.FilterEntities(
		func(n *xmltree.Node) bool { return !l.spineSet[n.ID.String()] },
		func(h xseek.EntityHit) {
			out.Boundary = append(out.Boundary, &xseek.Result{Node: h.Node, Match: h.Match, Label: xseek.LabelFor(h.Node)})
		},
	)
	if q.WAND {
		opts := xseek.SearchOptions{Limit: q.Limit, Accuracy: q.Accuracy}
		out.Top, out.Total, out.Stats, err = xseek.ConsumeRankedWAND(es, opts, sh.StreamScorer(q.Terms), sh.TermBounds(q.Terms), shared)
	} else {
		out.Top, out.Total, err = xseek.ConsumeRankedStream(es, xseek.SearchOptions{Limit: q.Limit}, sh.StreamScorer(q.Terms))
	}
	if err != nil {
		return LegPage{}, err
	}
	return out, nil
}

func (l *localLeg) RankSubsetLeg(q LegQuery, subset []*xseek.Result) ([]*xseek.RankedResult, error) {
	return l.sh.get().RankPage(subset, q.Query, xseek.SearchOptions{Limit: q.Limit}), nil
}

func (l *localLeg) TFUnderLeg(probes []TFProbe) ([]int, error) {
	idx := l.sh.get().Index()
	out := make([]int, len(probes))
	for i, p := range probes {
		out[i] = index.CountUnder(idx.Lookup(p.Term), p.ID)
	}
	return out, nil
}
