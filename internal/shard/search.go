package shard

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xseek"
)

// Search runs a keyword query across every shard and merges, returning
// exactly the result list a monolithic engine produces: same result
// set, same document order, same labels, same NoMatchError for
// globally absent keywords.
//
// The per-shard leg runs the ordinary xseek pipeline (compile → plan →
// SLCA → entity-map) over the shard's index; a keyword absent from one
// shard just silences that shard, not the query. Shard-local SLCAs
// that land on spine nodes are cross-segment artifacts and are
// discarded; the spine fix-up then re-derives the true spine SLCAs
// with whole-corpus knowledge.
func (e *Engine) Search(query string) ([]*xseek.Result, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, xseek.ErrEmptyQuery
	}
	// Global keyword check first: a term with zero aggregate frequency
	// fails the whole query, mirroring the monolithic NoMatchError (in
	// term order).
	var missing []string
	for _, t := range terms {
		if e.df[t] == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, &index.NoMatchError{Terms: missing}
	}

	type shardOut struct {
		slcas   []dewey.ID      // segment-internal SLCAs, document order
		results []*xseek.Result // their entity-mapped results
		err     error
	}
	outs := make([]shardOut, len(e.shards))
	core.ForEachParallel(len(e.shards), 0, func(g int) {
		sh := e.shards[g].get()
		q, err := sh.Compile(query)
		if err != nil {
			// A keyword missing from this shard only means no SLCA can
			// fall inside it; other shards (or the spine) still answer.
			var noMatch *index.NoMatchError
			if !errors.As(err, &noMatch) {
				outs[g].err = err
			}
			return
		}
		ids := q.SLCAs()
		kept := make([]dewey.ID, 0, len(ids))
		for _, id := range ids {
			if !e.spineSet[id.String()] {
				kept = append(kept, id)
			}
		}
		rs, err := sh.MapToEntities(kept)
		outs[g] = shardOut{slcas: kept, results: rs, err: err}
	})
	var merged []*xseek.Result
	var segSLCAs []dewey.ID // all kept SLCAs; sorted, since groups are contiguous
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		merged = append(merged, o.results...)
		segSLCAs = append(segSLCAs, o.slcas...)
	}

	spineIDs := e.spineSLCAs(terms, segSLCAs)
	if len(spineIDs) > 0 {
		spineRes, err := e.spine.MapToEntities(spineIDs)
		if err != nil {
			return nil, err
		}
		merged = mergeByID(spineRes, merged)
	}
	return merged, nil
}

// spineSLCAs derives the SLCAs that land on spine nodes — the one part
// of the answer needing cross-shard knowledge. Walking the spine
// deepest-first, a node is an SLCA exactly when every keyword has a
// witness somewhere in its subtree and no already-established SLCA
// (segment-internal or deeper spine) lies strictly below it. The spine
// is tiny (root plus wrappers above the topmost entities), so this is
// a handful of binary searches per query.
func (e *Engine) spineSLCAs(terms []string, segSLCAs []dewey.ID) []dewey.ID {
	var accepted []dewey.ID
	for _, n := range e.spineByDepth {
		// Cheap disqualifiers first: a single binary search over the
		// segment SLCAs (and a scan of the few accepted deeper spine
		// nodes) usually rejects the node before the per-term witness
		// counting ever runs.
		if hasStrictDescendant(segSLCAs, n.ID) {
			continue
		}
		below := false
		for _, a := range accepted {
			if n.ID.IsAncestorOf(a) {
				below = true
				break
			}
		}
		if below {
			continue
		}
		if !e.candidateUnder(n.ID, terms) {
			continue
		}
		accepted = append(accepted, n.ID)
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Compare(accepted[j]) < 0 })
	return accepted
}

// candidateUnder reports whether every term has at least one posting
// inside the subtree at id, summing witnesses across all shard indexes
// and the spine index.
func (e *Engine) candidateUnder(id dewey.ID, terms []string) bool {
	for _, t := range terms {
		if e.tfUnder(t, id) == 0 {
			return false
		}
	}
	return true
}

// tfUnder counts the postings of term inside the subtree at id. For a
// segment-owned subtree one shard answers; for a spine subtree the
// disjoint shard and spine counts sum to exactly the monolithic
// index's count.
func (e *Engine) tfUnder(term string, id dewey.ID) int {
	if g := e.ownerShard(id); g >= 0 {
		return index.CountUnder(e.shards[g].get().Index().Lookup(term), id)
	}
	tf := index.CountUnder(e.spine.Index().Lookup(term), id)
	for _, sh := range e.shards {
		tf += index.CountUnder(sh.get().Index().Lookup(term), id)
	}
	return tf
}

// hasStrictDescendant reports whether the sorted ID list contains a
// proper descendant of id. Descendants follow id immediately in
// document order, so one binary search decides.
func hasStrictDescendant(sorted []dewey.ID, id dewey.ID) bool {
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k].Compare(id) > 0 })
	return i < len(sorted) && id.IsAncestorOf(sorted[i])
}

// mergeByID merges two document-ordered result lists into one. Result
// roots are distinct across the inputs (spine vs segment nodes), so no
// dedupe is needed.
func mergeByID(a, b []*xseek.Result) []*xseek.Result {
	out := make([]*xseek.Result, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Node.ID.Compare(b[j].Node.ID) < 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
