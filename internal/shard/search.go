package shard

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Search runs a keyword query across every leg and merges, returning
// exactly the result list a monolithic engine produces: same result
// set, same document order, same labels, same NoMatchError for
// globally absent keywords.
//
// The per-leg work (compile → plan → SLCA → entity-map over the
// group's index, spine filtering) lives behind the Leg interface;
// leg-local SLCAs that land on spine nodes are cross-segment
// artifacts and are discarded there, then the spine fix-up re-derives
// the true spine SLCAs with whole-corpus knowledge.
//
// The doc-order path is always strict: any leg failure fails the
// query, whatever the failure policy, because a missing leg's segment
// SLCAs could promote spurious spine SLCAs — a wrong answer, not a
// partial one.
func (f *Fanout) Search(query string) ([]*xseek.Result, error) {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, xseek.ErrEmptyQuery
	}
	// Global keyword check first: a term with zero aggregate frequency
	// fails the whole query, mirroring the monolithic NoMatchError (in
	// term order).
	var missing []string
	for _, t := range terms {
		if f.df[t] == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, &index.NoMatchError{Terms: missing}
	}

	lq := LegQuery{Query: query, Terms: terms}
	outs := make([]LegDocs, len(f.legs))
	errs := make([]error, len(f.legs))
	core.ForEachParallel(len(f.legs), 0, func(g int) {
		outs[g], errs[g] = f.legs[g].SearchLeg(lq)
	})
	var merged []*xseek.Result
	var segSLCAs []dewey.ID // all kept SLCAs; sorted, since groups are contiguous
	var boundary [][]*xseek.Result
	for g, o := range outs {
		if errs[g] != nil {
			return nil, errs[g]
		}
		merged = append(merged, o.Results...)
		segSLCAs = append(segSLCAs, o.SLCAs...)
		if len(o.Boundary) > 0 {
			boundary = append(boundary, o.Boundary)
		}
	}

	spineIDs, err := f.spineSLCAs(terms, segSLCAs)
	if err != nil {
		return nil, err
	}
	var spineRes []*xseek.Result
	if len(spineIDs) > 0 {
		if spineRes, err = f.spine.MapToEntities(spineIDs); err != nil {
			return nil, err
		}
	}
	if bucket := coalesceSpineResults(spineRes, boundary); len(bucket) > 0 {
		merged = mergeByID(bucket, merged)
	}
	return merged, nil
}

// coalesceSpineResults merges the spine-rooted result lists — the
// spine fix-up's own results plus every leg's boundary reports — into
// one document-ordered list with one result per entity. Several
// sources can name the same entity (an entity split across groups has
// matches in each, and possibly a spine SLCA of its own); the
// monolithic entity map keeps the document-order-first match as the
// witness, so the merge keeps the entry with the smallest match ID.
func coalesceSpineResults(spineRes []*xseek.Result, boundary [][]*xseek.Result) []*xseek.Result {
	all := spineRes
	for _, b := range boundary {
		all = append(all, b...)
	}
	if len(all) <= 1 {
		return all
	}
	sort.SliceStable(all, func(i, j int) bool {
		if c := all[i].Node.ID.Compare(all[j].Node.ID); c != 0 {
			return c < 0
		}
		return all[i].Match.ID.Compare(all[j].Match.ID) < 0
	})
	out := all[:1]
	for _, r := range all[1:] {
		if !r.Node.ID.Equal(out[len(out)-1].Node.ID) {
			out = append(out, r)
		}
	}
	return out
}

// spineSLCAs derives the SLCAs that land on spine nodes — the one part
// of the answer needing cross-shard knowledge. Walking the spine
// deepest-first, a node is an SLCA exactly when every keyword has a
// witness somewhere in its subtree and no already-established SLCA
// (segment-internal or deeper spine) lies strictly below it. The spine
// is tiny (root plus wrappers above the topmost entities), so the
// witness counts amount to one batched probe per leg.
func (f *Fanout) spineSLCAs(terms []string, segSLCAs []dewey.ID) ([]dewey.ID, error) {
	// Candidates surviving the cheap disqualifier (a binary search over
	// the segment SLCAs); their witness counts are fetched in one
	// batch. A candidate later disqualified by a deeper accepted spine
	// node just ignores its counts — over-fetching is harmless and
	// keeps the remote round trips at one per leg.
	cands := make([]*xmltree.Node, 0, len(f.spineByDepth))
	for _, n := range f.spineByDepth {
		if !hasStrictDescendant(segSLCAs, n.ID) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	uniq := uniqueTerms(terms)
	probes := make([]TFProbe, 0, len(cands)*len(uniq))
	for _, n := range cands {
		for _, t := range uniq {
			probes = append(probes, TFProbe{Term: t, ID: n.ID})
		}
	}
	counts, err := f.tfCounts(probes)
	if err != nil {
		return nil, err
	}

	var accepted []dewey.ID
	for ci, n := range cands {
		below := false
		for _, a := range accepted {
			if n.ID.IsAncestorOf(a) {
				below = true
				break
			}
		}
		if below {
			continue
		}
		witness := true
		for ti := range uniq {
			if counts[ci*len(uniq)+ti] == 0 {
				witness = false
				break
			}
		}
		if !witness {
			continue
		}
		accepted = append(accepted, n.ID)
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Compare(accepted[j]) < 0 })
	return accepted, nil
}

// uniqueTerms returns the terms with duplicates dropped, preserving
// first-occurrence order.
func uniqueTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// hasStrictDescendant reports whether the sorted ID list contains a
// proper descendant of id. Descendants follow id immediately in
// document order, so one binary search decides.
func hasStrictDescendant(sorted []dewey.ID, id dewey.ID) bool {
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k].Compare(id) > 0 })
	return i < len(sorted) && id.IsAncestorOf(sorted[i])
}

// mergeByID merges two document-ordered result lists into one. Result
// roots are distinct across the inputs (spine vs segment nodes), so no
// dedupe is needed.
func mergeByID(a, b []*xseek.Result) []*xseek.Result {
	out := make([]*xseek.Result, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Node.ID.Compare(b[j].Node.ID) < 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
