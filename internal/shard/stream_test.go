package shard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// TestShardedStreamEquivalence: the streamed fan-out must be
// bit-identical to the monolithic eager engine at K ∈ {1, 2, 8} —
// same ranked windows (scores included), same exact totals, same
// errors, and a doc-order cursor that drains to the same result list.
func TestShardedStreamEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	pageGrid := []xseek.SearchOptions{
		{Limit: 1}, {Limit: 2}, {Limit: 3, Offset: 1},
		{Limit: 2, Offset: 2}, {Limit: 100}, {Offset: 1}, {},
		{Limit: 4, Offset: 999},
	}
	for ti := 0; ti < 15; ti++ {
		doc := randomDoc(r, vocab)
		root := xmltree.MustParseString(doc)
		mono := xseek.NewParallel(root)
		for _, k := range []int{1, 2, 8} {
			sharded := Build(root, k)
			for qi := 0; qi < 8; qi++ {
				n := r.Intn(3) + 1
				terms := make([]string, n)
				for i := range terms {
					terms[i] = vocab[r.Intn(len(vocab))]
				}
				query := strings.Join(terms, " ")

				want, wantErr := mono.Search(query)

				// Doc-order cursor drains to the monolithic result list.
				cur, curErr := sharded.SearchStream(query)
				if !sameError(wantErr, curErr) {
					t.Fatalf("tree %d K=%d query %q: cursor err %v vs %v", ti, k, query, curErr, wantErr)
				}
				if curErr == nil {
					var got []*xseek.Result
					for {
						res, ok := cur.Next()
						if !ok {
							break
						}
						got = append(got, res)
					}
					if cur.Err() != nil {
						t.Fatalf("tree %d K=%d query %q: cursor failed: %v", ti, k, query, cur.Err())
					}
					if resultKey(got) != resultKey(want) {
						t.Fatalf("tree %d K=%d query %q cursor:\n got  %s\n want %s",
							ti, k, query, resultKey(got), resultKey(want))
					}
				}

				for _, opts := range pageGrid {
					wantPage, wantTotal, wantPageErr := func() ([]*xseek.RankedResult, int, error) {
						if wantErr != nil {
							return nil, 0, wantErr
						}
						return mono.RankPage(want, query, opts), len(want), nil
					}()
					gotPage, gotTotal, gotErr := sharded.SearchRankedPageStream(query, opts)
					if !sameError(wantPageErr, gotErr) {
						t.Fatalf("tree %d K=%d query %q page %+v: err %v vs %v",
							ti, k, query, opts, gotErr, wantPageErr)
					}
					if gotErr != nil {
						continue
					}
					if gotTotal != wantTotal {
						t.Fatalf("tree %d K=%d query %q page %+v: total %d want %d",
							ti, k, query, opts, gotTotal, wantTotal)
					}
					if rankedKey(gotPage) != rankedKey(wantPage) {
						t.Fatalf("tree %d K=%d query %q page %+v:\n got  %s\n want %s",
							ti, k, query, opts, rankedKey(gotPage), rankedKey(wantPage))
					}
				}
			}
		}
	}
}

// TestShardedStreamCountsDecisions: the streamed fan-out advances the
// engine's streamed counter; the eager path does not.
func TestShardedStreamCountsDecisions(t *testing.T) {
	root := xmltree.MustParseString("<root><n0><leaf>alpha</leaf></n0><n0><leaf>alpha</leaf></n0></root>")
	e := Build(root, 2)
	if e.StreamedDecisions() != 0 {
		t.Fatal("fresh engine has streamed decisions")
	}
	if _, _, err := e.SearchRankedPageStream("alpha", xseek.SearchOptions{Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if e.StreamedDecisions() != 1 {
		t.Fatalf("streamed decisions = %d, want 1", e.StreamedDecisions())
	}
	// The unbounded fallback is eager and must not count.
	if _, _, err := e.SearchRankedPageStream("alpha", xseek.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if e.StreamedDecisions() != 1 {
		t.Fatalf("streamed decisions after eager fallback = %d, want 1", e.StreamedDecisions())
	}
}
