package shard

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// TestPlanShape: on a corpus with one entity level under the root, the
// segments are exactly the entities, the spine is just the root, and
// the groups are contiguous and non-empty.
func TestPlanShape(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 3, ProductsPerCategory: 7})
	schema := xseek.InferSchema(root)
	p := Plan(root, schema, 4)

	if len(p.Spine) == 0 || p.Spine[0] != root {
		t.Fatalf("spine should start at the root, got %d nodes", len(p.Spine))
	}
	for _, s := range p.Segments {
		if s.Tag != "product" {
			t.Fatalf("segment %s@%s: want product entities", s.Tag, s.ID)
		}
	}
	if len(p.Segments) != 21 {
		t.Fatalf("got %d segments, want 21 products", len(p.Segments))
	}
	if len(p.Groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(p.Groups))
	}
	prev := 0
	for g, r := range p.Groups {
		if r[0] != prev || r[1] <= r[0] {
			t.Fatalf("group %d = %v: groups must be contiguous and non-empty", g, r)
		}
		prev = r[1]
	}
	if prev != len(p.Segments) {
		t.Fatalf("groups cover [0,%d), want [0,%d)", prev, len(p.Segments))
	}
}

// TestPlanDeterministic: the partition must be a pure function of
// (root, schema, k) — snapshot loading relies on recomputing it.
func TestPlanDeterministic(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 7})
	schema := xseek.InferSchema(root)
	a, b := Plan(root, schema, 5), Plan(root, schema, 5)
	if fmt.Sprint(a.Groups) != fmt.Sprint(b.Groups) || len(a.Segments) != len(b.Segments) {
		t.Fatalf("partition not deterministic: %v vs %v", a.Groups, b.Groups)
	}
}

// TestPlanClamping: more shards than segments clamps; a document with
// no element children still yields one (empty) group.
func TestPlanClamping(t *testing.T) {
	root := xmltree.MustParseString("<r><a>x y</a><a>y z</a></r>")
	p := Plan(root, xseek.InferSchema(root), 8)
	if len(p.Groups) != 2 {
		t.Fatalf("2 segments, 8 shards: got %d groups, want 2", len(p.Groups))
	}

	leaf := xmltree.MustParseString("<r>only text</r>")
	p = Plan(leaf, xseek.InferSchema(leaf), 4)
	if len(p.Groups) != 1 || p.Groups[0] != [2]int{0, 0} {
		t.Fatalf("leaf doc: groups = %v, want one empty group", p.Groups)
	}
	if e := Build(leaf, 4); e.ShardCount() != 1 {
		t.Fatalf("leaf doc builds %d shards, want 1", e.ShardCount())
	}
}

// TestPlanWrappedEntities: entities nested under wrapper elements put
// the wrappers on the spine, and entity-free subtrees become segments
// of their own.
func TestPlanWrappedEntities(t *testing.T) {
	doc := `<catalog>
		<meta><updated>today</updated></meta>
		<section>
			<product><name>a</name></product>
			<product><name>b</name></product>
		</section>
		<section>
			<product><name>c</name></product>
			<product><name>d</name></product>
		</section>
	</catalog>`
	root := xmltree.MustParseString(doc)
	p := Plan(root, xseek.InferSchema(root), 2)

	var spineTags, segTags []string
	for _, n := range p.Spine {
		spineTags = append(spineTags, n.Tag)
	}
	for _, n := range p.Segments {
		segTags = append(segTags, n.Tag)
	}
	// <section> repeats → it is itself an entity, so sections are the
	// topmost entities and become segments; <meta> is entity-free.
	if fmt.Sprint(spineTags) != "[catalog]" {
		t.Fatalf("spine = %v, want [catalog]", spineTags)
	}
	if fmt.Sprint(segTags) != "[meta section section]" {
		t.Fatalf("segments = %v, want [meta section section]", segTags)
	}
}

// TestCrossShardRootSLCA: when two keywords co-occur only at the
// document root — their witnesses in different shards — the sharded
// engine must still produce the root SLCA, exactly like the
// monolithic engine.
func TestCrossShardRootSLCA(t *testing.T) {
	doc := `<r><p><name>first</name><v>alpha</v></p><p><name>second</name><v>beta</v></p></r>`
	root := xmltree.MustParseString(doc)
	mono := xseek.New(root)
	sharded := Build(root, 2)
	if sharded.ShardCount() != 2 {
		t.Fatalf("want 2 shards, got %d", sharded.ShardCount())
	}

	want, _ := mono.Search("alpha beta")
	got, err := sharded.Search("alpha beta")
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(got) != resultKey(want) {
		t.Fatalf("cross-shard SLCA: got %s, want %s", resultKey(got), resultKey(want))
	}
	if len(got) != 1 || got[0].Node != root {
		t.Fatalf("expected the root as the single result, got %d results", len(got))
	}
}

// TestSpineOnlyTerm: a keyword appearing only in the root's own text
// is served by the spine index; pairing it with an entity keyword
// still works.
func TestSpineOnlyTerm(t *testing.T) {
	doc := `<r>catalogtitle <p><name>a</name><v>alpha</v></p><p><name>b</name><v>beta</v></p></r>`
	root := xmltree.MustParseString(doc)
	mono := xseek.New(root)
	sharded := Build(root, 2)

	for _, q := range []string{"catalogtitle", "catalogtitle alpha", "alpha"} {
		want, wantErr := mono.Search(q)
		got, gotErr := sharded.Search(q)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: err %v vs %v", q, gotErr, wantErr)
		}
		if resultKey(got) != resultKey(want) {
			t.Fatalf("%q: got %s, want %s", q, resultKey(got), resultKey(want))
		}
	}
}

// TestFromSourcesRebuildFallback: a failing shard source must rebuild
// only that shard — counted in Rebuilds — and searches must stay
// identical to the monolithic engine.
func TestFromSourcesRebuildFallback(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 5, ProductsPerCategory: 4})
	schema := xseek.InferSchemaParallel(root, 0)
	fresh := Build(root, 3)

	loaders := make([]func() (*index.Index, error), 3)
	indexes := fresh.ShardIndexes()
	for g := range loaders {
		g := g
		if g == 1 {
			loaders[g] = func() (*index.Index, error) { return nil, fmt.Errorf("corrupt section") }
			continue
		}
		loaders[g] = func() (*index.Index, error) { return indexes[g], nil }
	}
	loaded, err := FromSources(root, schema, 3, fresh.TermFrequencies(), fresh.IndexStats().IndexedElements, loaders)
	if err != nil {
		t.Fatal(err)
	}

	mono := xseek.New(root)
	for _, q := range []string{"tomtom", "tomtom gps", "garmin easy"} {
		want, _ := mono.Search(q)
		got, err := loaded.Search(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if resultKey(got) != resultKey(want) {
			t.Fatalf("%q: got %s, want %s", q, resultKey(got), resultKey(want))
		}
	}
	if n := loaded.Rebuilds(); n != 1 {
		t.Fatalf("rebuilds = %d, want exactly 1 (only the failing shard)", n)
	}
}
