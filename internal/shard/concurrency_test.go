package shard

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/xseek"
)

// TestConcurrentLazySearch hammers a lazily-loading sharded engine
// with parallel queries: shard materialization must be race-free and
// happen at most once per shard (run under -race in CI).
func TestConcurrentLazySearch(t *testing.T) {
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: 8, ProductsPerCategory: 5})
	schema := xseek.InferSchemaParallel(root, 0)
	fresh := Build(root, 4)
	indexes := fresh.ShardIndexes()
	loaders := make([]func() (*index.Index, error), len(indexes))
	for g := range loaders {
		g := g
		loaders[g] = func() (*index.Index, error) { return indexes[g], nil }
	}
	lazy, err := FromSources(root, schema, 4, fresh.TermFrequencies(), fresh.IndexStats().IndexedElements, loaders)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"tomtom gps", "easy", "garmin", "camera zoom", "tomtom gps"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(w+i)%len(queries)]
				rs, err := lazy.Search(q)
				if err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
				_ = lazy.RankPage(rs, q, xseek.SearchOptions{Limit: 5})
			}
		}(w)
	}
	wg.Wait()
	if n := lazy.Rebuilds(); n != 0 {
		t.Fatalf("rebuilds = %d, want 0", n)
	}
}
