package shard

import (
	"errors"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/slca"
	"repro/internal/xseek"
)

// This file is the fan-out's streamed ranked path: each shard runs the
// lazy SLCA → entity → bounded-heap pipeline over its own index
// (collecting its kept SLCAs on the fly for the spine fix-up), and the
// per-shard top lists merge through the existing K-way rank merge. No
// shard ever materializes its full result list — only its top
// Offset+Limit survive per leg — yet the page, scores, and total are
// bit-identical to Search + RankPage.

// SearchRankedPageStream returns the options' window of the relevance
// ranking plus the exact total, running every shard leg streamed. An
// unbounded window (Limit <= 0) has nothing to terminate early and
// falls back to the eager path.
func (e *Engine) SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error) {
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	hi := 0
	if opts.Limit > 0 {
		if n := lo + opts.Limit; n > lo { // overflow-safe, mirroring Window
			hi = n
		}
	}
	if hi == 0 {
		results, err := e.Search(query)
		if err != nil {
			return nil, 0, err
		}
		return e.RankPage(results, query, opts), len(results), nil
	}

	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, 0, xseek.ErrEmptyQuery
	}
	var missing []string
	for _, t := range terms {
		if e.df[t] == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, 0, &index.NoMatchError{Terms: missing}
	}
	e.plannerStreamed.Add(1)

	type shardOut struct {
		top   []*xseek.RankedResult // the shard's own top-hi, rank order
		slcas []dewey.ID            // kept (non-spine) SLCAs, document order
		total int                   // the shard's full entity-result count
		err   error
	}
	outs := make([]shardOut, len(e.shards))
	core.ForEachParallel(len(e.shards), 0, func(g int) {
		sh := e.shards[g].get()
		q, err := sh.Compile(query)
		if err != nil {
			// A keyword missing from this shard silences the shard only.
			var noMatch *index.NoMatchError
			if !errors.As(err, &noMatch) {
				outs[g].err = err
			}
			return
		}
		it, err := q.SLCAIter()
		if err != nil {
			outs[g].err = err
			return
		}
		// Drop cross-segment artifacts (spine-owned SLCAs) before entity
		// mapping, collecting the survivors for the spine fix-up — the
		// streamed twin of the kept-filter in Search.
		filtered := slca.FilterTee(it,
			func(id dewey.ID) bool { return !e.spineSet[id.String()] },
			func(id dewey.ID) { outs[g].slcas = append(outs[g].slcas, id) },
		)
		es := xseek.NewEntityStream(filtered, e.root, e.schema)
		top, total, err := xseek.ConsumeRankedStream(es, xseek.SearchOptions{Limit: hi}, sh.StreamScorer(terms))
		outs[g].top, outs[g].total, outs[g].err = top, total, err
	})

	total := 0
	var segSLCAs []dewey.ID // groups are contiguous, so the concat is sorted
	streams := make([][]*xseek.RankedResult, 0, len(outs)+1)
	for _, o := range outs {
		if o.err != nil {
			return nil, 0, o.err
		}
		total += o.total
		segSLCAs = append(segSLCAs, o.slcas...)
		if len(o.top) > 0 {
			streams = append(streams, o.top)
		}
	}

	// Spine fix-up with whole-corpus knowledge, exactly as in Search;
	// the handful of spine results is scored and cut like the eager
	// RankPage's spine bucket.
	if spineIDs := e.spineSLCAs(terms, segSLCAs); len(spineIDs) > 0 {
		spineRes, err := e.spine.MapToEntities(spineIDs)
		if err != nil {
			return nil, 0, err
		}
		total += len(spineRes)
		spine := e.RankPage(spineRes, query, xseek.SearchOptions{Limit: hi})
		if len(spine) > 0 {
			streams = append(streams, spine)
		}
	}

	merged := mergeRankedStreams(streams, hi)
	if lo > len(merged) {
		lo = len(merged)
	}
	return merged[lo:], total, nil
}

// SearchStream returns a doc-order result cursor. The fan-out's
// doc-order answer needs every shard's results merged before the first
// emission can be trusted, so this materializes via Search and wraps
// the list — a true per-shard lazy merge is future work; the serving
// layer's cursor cache still benefits from the uniform interface.
func (e *Engine) SearchStream(query string) (xseek.Cursor, error) {
	results, err := e.Search(query)
	if err != nil {
		return nil, err
	}
	return xseek.SliceCursor(results), nil
}

// EstimateResults bounds the query's result count for stream planning:
// the smallest aggregate document frequency, 0 when the query cannot
// match anywhere.
func (e *Engine) EstimateResults(query string) int {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return 0
	}
	est := -1
	for _, t := range terms {
		df := e.df[t]
		if df == 0 {
			return 0
		}
		if est == -1 || df < est {
			est = df
		}
	}
	return est
}

// StreamedDecisions reports how many ranked pages ran the streamed
// fan-out on this engine.
func (e *Engine) StreamedDecisions() int64 { return e.plannerStreamed.Load() }
