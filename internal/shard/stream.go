package shard

import (
	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xseek"
)

// This file is the fan-out's streamed ranked path: each leg runs the
// lazy SLCA → entity → bounded-heap pipeline over its own index
// (collecting its kept SLCAs on the fly for the spine fix-up), and the
// per-leg top lists merge through the existing K-way rank merge. No
// leg ever materializes its full result list — only its top
// Offset+Limit survive per leg — yet the page, scores, and total are
// bit-identical to Search + RankPage.

// SearchRankedPageStream returns the options' window of the relevance
// ranking plus the exact total, running every leg streamed. An
// unbounded window (Limit <= 0) has nothing to terminate early and
// falls back to the eager path.
func (f *Fanout) SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error) {
	page, total, _, err := f.rankedPage(query, opts, false)
	return page, total, err
}

// rankedPage is the shared ranked fan-out behind the streamed and
// score-bounded (wand) paths; the two differ only in which consumer a
// leg runs and whether a shared threshold circulates.
func (f *Fanout) rankedPage(query string, opts xseek.SearchOptions, wand bool) ([]*xseek.RankedResult, int, xseek.WANDStats, error) {
	var zero xseek.WANDStats
	lo := opts.Offset
	if lo < 0 {
		lo = 0
	}
	hi := 0
	if opts.Limit > 0 {
		if n := lo + opts.Limit; n > lo { // overflow-safe, mirroring Window
			hi = n
		}
	}
	if hi == 0 {
		results, err := f.Search(query)
		if err != nil {
			return nil, 0, zero, err
		}
		page, err := f.RankPageErr(results, query, opts)
		if err != nil {
			return nil, 0, zero, err
		}
		return page, len(results), zero, nil
	}

	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return nil, 0, zero, xseek.ErrEmptyQuery
	}
	var missing []string
	for _, t := range terms {
		if f.df[t] == 0 {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		return nil, 0, zero, &index.NoMatchError{Terms: missing}
	}
	f.plannerStreamed.Add(1)

	lq := LegQuery{Query: query, Terms: terms, Limit: hi, WAND: wand, Accuracy: opts.Accuracy}
	var shared *xseek.SharedThreshold
	if wand {
		shared = &xseek.SharedThreshold{}
	}
	outs := make([]LegPage, len(f.legs))
	errs := make([]error, len(f.legs))
	core.ForEachParallel(len(f.legs), 0, func(g int) {
		outs[g], errs[g] = f.legs[g].RankedLeg(lq, shared)
	})

	var st xseek.WANDStats
	total := 0
	degraded := false
	var segSLCAs []dewey.ID // groups are contiguous, so the concat is sorted
	var boundary [][]*xseek.Result
	streams := make([][]*xseek.RankedResult, 0, len(outs)+1)
	for g, o := range outs {
		if errs[g] != nil {
			// The failure policy may trade completeness for availability:
			// the failed leg's contribution is dropped, the page degrades
			// (spine fix-up skipped, total unknowable), and the caller
			// sees the loss via the flagged total — partial, never
			// silently wrong.
			if f.onLegErr != nil {
				if err := f.onLegErr(g, errs[g]); err == nil {
					degraded = true
					continue
				}
			}
			return nil, 0, st, errs[g]
		}
		st.Add(o.Stats)
		if o.Total >= 0 {
			total += o.Total
		}
		segSLCAs = append(segSLCAs, o.SLCAs...)
		if len(o.Boundary) > 0 {
			boundary = append(boundary, o.Boundary)
		}
		if len(o.Top) > 0 {
			streams = append(streams, o.Top)
		}
	}

	// Spine fix-up with whole-corpus knowledge, exactly as in Search:
	// the spine's own SLCAs plus the legs' boundary reports (entities
	// whose subtrees the partition split across groups) coalesce into
	// one spine bucket, scored with cross-leg term counts and cut like
	// the eager RankPage's spine bucket. A degraded or early-terminated
	// run skips it: the fix-up needs every leg's kept SLCAs, boundary
	// reports, and witness counts to be sound, and such a run already
	// reports its total as unknown.
	if !degraded && !st.Terminated {
		spineIDs, err := f.spineSLCAs(terms, segSLCAs)
		if err != nil {
			return nil, 0, st, err
		}
		var spineRes []*xseek.Result
		if len(spineIDs) > 0 {
			if spineRes, err = f.spine.MapToEntities(spineIDs); err != nil {
				return nil, 0, st, err
			}
		}
		if bucket := coalesceSpineResults(spineRes, boundary); len(bucket) > 0 {
			total += len(bucket)
			spine, err := f.RankPageErr(bucket, query, xseek.SearchOptions{Limit: hi})
			if err != nil {
				return nil, 0, st, err
			}
			if len(spine) > 0 {
				streams = append(streams, spine)
			}
		}
	}

	merged := mergeRankedStreams(streams, hi)
	if lo > len(merged) {
		lo = len(merged)
	}
	if st.Terminated || degraded {
		// Some leg abandoned its drain (or was dropped); its count (and
		// so the sum) is meaningless.
		total = xseek.StreamTotalUnknown
	}
	return merged[lo:], total, st, nil
}

// SearchStream returns a doc-order result cursor. The fan-out's
// doc-order answer needs every leg's results merged before the first
// emission can be trusted, so this materializes via Search and wraps
// the list — a true per-leg lazy merge is future work; the serving
// layer's cursor cache still benefits from the uniform interface.
func (f *Fanout) SearchStream(query string) (xseek.Cursor, error) {
	results, err := f.Search(query)
	if err != nil {
		return nil, err
	}
	return xseek.SliceCursor(results), nil
}

// EstimateResults bounds the query's result count for stream planning:
// the smallest aggregate document frequency, 0 when the query cannot
// match anywhere.
func (f *Fanout) EstimateResults(query string) int {
	terms := index.TokenizeQuery(query)
	if len(terms) == 0 {
		return 0
	}
	est := -1
	for _, t := range terms {
		df := f.df[t]
		if df == 0 {
			return 0
		}
		if est == -1 || df < est {
			est = df
		}
	}
	return est
}
