package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// randomDoc builds a random XML corpus over a small vocabulary:
// repeated container elements (which the schema infers as entities)
// wrapping nested structure whose leaves carry 1-3 random terms, plus
// the occasional keyword directly on a wrapper — so spine nodes carry
// postings too and the cross-shard fix-up path is exercised.
func randomDoc(r *rand.Rand, vocab []string) string {
	var b strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		if depth >= 4 || r.Intn(3) == 0 {
			b.WriteString("<leaf>")
			for i := r.Intn(3) + 1; i > 0; i-- {
				b.WriteString(vocab[r.Intn(len(vocab))])
				b.WriteString(" ")
			}
			b.WriteString("</leaf>")
			return
		}
		d := r.Intn(3)
		fmt.Fprintf(&b, "<n%d>", d)
		for i := r.Intn(4) + 1; i > 0; i-- {
			emit(depth + 1)
		}
		fmt.Fprintf(&b, "</n%d>", d)
	}
	b.WriteString("<root>")
	if r.Intn(2) == 0 {
		// Root-level text: postings on the document root itself.
		b.WriteString(vocab[r.Intn(len(vocab))])
		b.WriteString(" ")
	}
	for i := r.Intn(6) + 2; i > 0; i-- {
		emit(1)
	}
	b.WriteString("</root>")
	return b.String()
}

func resultKey(rs []*xseek.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.Node.ID.String() + "=" + r.Match.ID.String() + "=" + r.Label
	}
	return strings.Join(parts, ";")
}

func rankedKey(rs []*xseek.RankedResult) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s@%v", r.Node.ID, r.Score)
	}
	return strings.Join(parts, ";")
}

// TestShardedSearchEquivalence is the core sharding property test: on
// random corpora and queries, the sharded engine at K ∈ {1, 2, 8} must
// return byte-identical results to the monolithic xseek engine — same
// result set, order, labels and match nodes, the same NoMatchError
// terms, bit-identical ranking scores including tie order, and
// identical RankPage windows for every tested limit/offset.
func TestShardedSearchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	trees := 30
	queriesPerTree := 10
	for ti := 0; ti < trees; ti++ {
		doc := randomDoc(r, vocab)
		root := xmltree.MustParseString(doc)
		mono := xseek.NewParallel(root)
		for _, k := range []int{1, 2, 8} {
			sharded := Build(root, k)
			for qi := 0; qi < queriesPerTree; qi++ {
				n := r.Intn(3) + 1
				terms := make([]string, n)
				for i := range terms {
					terms[i] = vocab[r.Intn(len(vocab))]
				}
				query := strings.Join(terms, " ")

				want, wantErr := mono.Search(query)
				got, gotErr := sharded.Search(query)
				if !sameError(wantErr, gotErr) {
					t.Fatalf("tree %d K=%d query %q: err %v vs %v\ndoc: %s", ti, k, query, gotErr, wantErr, doc)
				}
				if resultKey(got) != resultKey(want) {
					t.Fatalf("tree %d K=%d query %q:\n got  %s\n want %s\ndoc: %s",
						ti, k, query, resultKey(got), resultKey(want), doc)
				}
				if wantErr != nil {
					continue
				}

				wantRanked := mono.RankResults(want, query)
				gotRanked := sharded.RankResults(got, query)
				if rankedKey(gotRanked) != rankedKey(wantRanked) {
					t.Fatalf("tree %d K=%d query %q ranked:\n got  %s\n want %s",
						ti, k, query, rankedKey(gotRanked), rankedKey(wantRanked))
				}

				for _, opts := range []xseek.SearchOptions{
					{Limit: 1}, {Limit: 2}, {Limit: 3, Offset: 1},
					{Limit: 2, Offset: 2}, {Limit: 100}, {Offset: 1},
				} {
					wantPage := mono.RankPage(want, query, opts)
					gotPage := sharded.RankPage(got, query, opts)
					if rankedKey(gotPage) != rankedKey(wantPage) {
						t.Fatalf("tree %d K=%d query %q page %+v:\n got  %s\n want %s",
							ti, k, query, opts, rankedKey(gotPage), rankedKey(wantPage))
					}
				}
			}
		}
	}
}

// sameError compares the search error surface the serving layers rely
// on: both nil, or both the same NoMatchError terms, or both the same
// message.
func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	var na, nb *index.NoMatchError
	if errors.As(a, &na) != errors.As(b, &nb) {
		return false
	}
	if na != nil {
		return fmt.Sprint(na.Terms) == fmt.Sprint(nb.Terms)
	}
	return a.Error() == b.Error()
}
