package shard

import (
	"container/heap"
	"sort"

	"repro/internal/index"
	"repro/internal/xseek"
)

// RankResults scores and orders an already-merged result set exactly
// as a monolithic engine does: every term frequency is counted in the
// result's owning leg (or summed across legs for spine-rooted
// results), weighted by the shared whole-corpus IDF, and the stable
// sort keeps document order on ties. Scores are bit-identical to the
// monolithic ranking.
//
// With in-process legs this never fails; over a transport it can, and
// this executor-shaped signature has no error channel. A failed
// fan-out returns nil — observably unavailable, never silently wrong.
// Error-aware callers use RankResultsErr.
func (f *Fanout) RankResults(results []*xseek.Result, query string) []*xseek.RankedResult {
	out, err := f.RankResultsErr(results, query)
	if err != nil {
		return nil
	}
	return out
}

// RankResultsErr is RankResults with the transport error surfaced.
func (f *Fanout) RankResultsErr(results []*xseek.Result, query string) ([]*xseek.RankedResult, error) {
	out, err := f.scoreResults(results, query)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// RankPage returns one window of the ranking RankResults would
// produce without materializing the full cross-leg ranking: the
// merged result list is split back into its per-leg runs, each leg
// heap-selects only its own top Offset+Limit, and a K-way heap merge
// streams the winners out in global rank order. A window covering the
// whole set falls back to the full sort, matching xseek.RankPage.
// Like RankResults, a transport failure returns nil.
func (f *Fanout) RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult {
	out, err := f.RankPageErr(results, query, opts)
	if err != nil {
		return nil
	}
	return out
}

// RankPageErr is RankPage with the transport error surfaced.
func (f *Fanout) RankPageErr(results []*xseek.Result, query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, error) {
	lo, hi := opts.Window(len(results))
	if hi >= len(results) {
		full, err := f.RankResultsErr(results, query)
		if err != nil {
			return nil, err
		}
		return full[lo:], nil
	}

	// Split the document-ordered merged list into per-owner runs.
	// Each run preserves document order, the rank tie-break.
	runs := make([][]*xseek.Result, len(f.legs)+1) // last bucket: spine-rooted
	for _, r := range results {
		g := f.own.Owner(r.Node.ID)
		if g < 0 {
			g = len(f.legs)
		}
		runs[g] = append(runs[g], r)
	}

	lq := LegQuery{Query: query, Terms: index.TokenizeQuery(query), Limit: hi}
	streams := make([][]*xseek.RankedResult, 0, len(runs))
	for g, run := range runs {
		if len(run) == 0 {
			continue
		}
		if g < len(f.legs) {
			// The leg's own bounded-heap top-k, with the shared IDF: no
			// leg ever contributes more than hi entries to the window,
			// so deeper ranks are never computed.
			top, err := f.legs[g].RankSubsetLeg(lq, run)
			if err != nil {
				return nil, err
			}
			streams = append(streams, top)
		} else {
			spine, err := f.scoreResults(run, query)
			if err != nil {
				return nil, err
			}
			sort.SliceStable(spine, func(i, j int) bool { return spine[i].Score > spine[j].Score })
			if len(spine) > hi {
				spine = spine[:hi]
			}
			streams = append(streams, spine)
		}
	}

	merged := mergeRankedStreams(streams, hi)
	return merged[lo:], nil
}

// scoreResults computes TF-IDF scores in input order with the shared
// whole-corpus constants — the sharded twin of xseek's scoring stage.
// Frequencies are fetched in one batched probe per leg; accumulation
// stays in (result, term-occurrence) order so every float operation
// matches the monolithic scorer's exactly.
func (f *Fanout) scoreResults(results []*xseek.Result, query string) ([]*xseek.RankedResult, error) {
	terms := index.TokenizeQuery(query)
	type slot struct {
		ri  int     // result index
		idf float64 // the occurrence's term weight input
	}
	var probes []TFProbe
	var slots []slot
	for ri, r := range results {
		for _, t := range terms {
			idf, ok := f.idf[t]
			if !ok {
				continue
			}
			probes = append(probes, TFProbe{Term: t, ID: r.Node.ID})
			slots = append(slots, slot{ri: ri, idf: idf})
		}
	}
	counts, err := f.tfCounts(probes)
	if err != nil {
		return nil, err
	}
	out := make([]*xseek.RankedResult, len(results))
	for ri, r := range results {
		out[ri] = &xseek.RankedResult{Result: r}
	}
	for si, s := range slots {
		if counts[si] == 0 {
			continue
		}
		out[s.ri].Score += xseek.TermWeight(counts[si], s.idf)
	}
	return out, nil
}

// mergeHeap is a max-heap over the heads of per-leg ranked streams,
// ordered by (score desc, document order asc) — the exact key of the
// monolithic stable ranking, since each stream's entries carry
// strictly increasing document positions.
type mergeHeap []*rankedStream

type rankedStream struct {
	entries []*xseek.RankedResult
	pos     int
}

func (h mergeHeap) head(i int) *xseek.RankedResult { return h[i].entries[h[i].pos] }

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h.head(i), h.head(j)
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node.ID.Compare(b.Node.ID) < 0
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*rankedStream)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old) - 1; s := old[n]; *h = old[:n]; return s }

// mergeRankedStreams streams the first max entries of the merged
// ranking out of the per-leg streams.
func mergeRankedStreams(streams [][]*xseek.RankedResult, max int) []*xseek.RankedResult {
	h := make(mergeHeap, 0, len(streams))
	for _, s := range streams {
		if len(s) > 0 {
			h = append(h, &rankedStream{entries: s})
		}
	}
	heap.Init(&h)
	out := make([]*xseek.RankedResult, 0, max)
	for len(out) < max && h.Len() > 0 {
		s := h[0]
		out = append(out, s.entries[s.pos])
		s.pos++
		if s.pos == len(s.entries) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// CleanQuery spell-corrects each keyword against the union vocabulary
// of every leg, with the same candidate ranking (distance, then
// aggregate frequency, then term) a monolithic index uses.
func (f *Fanout) CleanQuery(query string) []string {
	terms := index.TokenizeQuery(query)
	out := make([]string, len(terms))
	for i, t := range terms {
		if f.df[t] > 0 {
			out[i] = t
			continue
		}
		if sugg := index.SuggestIn(f.eachTerm, t, 2); len(sugg) > 0 {
			out[i] = sugg[0]
		} else {
			out[i] = t
		}
	}
	return out
}

// eachTerm iterates the aggregated (term, document frequency)
// vocabulary.
func (f *Fanout) eachTerm(fn func(term string, df int)) {
	for t, n := range f.df {
		fn(t, n)
	}
}
