package shard

import (
	"container/heap"
	"sort"

	"repro/internal/index"
	"repro/internal/xseek"
)

// RankResults scores and orders an already-merged result set exactly
// as a monolithic engine does: every term frequency is counted in the
// result's owning shard (or summed across shards for spine-rooted
// results), weighted by the shared whole-corpus IDF, and the stable
// sort keeps document order on ties. Scores are bit-identical to the
// monolithic ranking.
func (e *Engine) RankResults(results []*xseek.Result, query string) []*xseek.RankedResult {
	out := e.scoreResults(results, query)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RankPage returns one window of the ranking RankResults would
// produce without materializing the full cross-shard ranking: the
// merged result list is split back into its per-shard runs, each shard
// heap-selects only its own top Offset+Limit, and a K-way heap merge
// streams the winners out in global rank order. A window covering the
// whole set falls back to the full sort, matching xseek.RankPage.
func (e *Engine) RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult {
	lo, hi := opts.Window(len(results))
	if hi >= len(results) {
		return e.RankResults(results, query)[lo:]
	}

	// Split the document-ordered merged list into per-owner runs.
	// Each run preserves document order, the rank tie-break.
	runs := make([][]*xseek.Result, len(e.shards)+1) // last bucket: spine-rooted
	for _, r := range results {
		g := e.ownerShard(r.Node.ID)
		if g < 0 {
			g = len(e.shards)
		}
		runs[g] = append(runs[g], r)
	}

	streams := make([][]*xseek.RankedResult, 0, len(runs))
	for g, run := range runs {
		if len(run) == 0 {
			continue
		}
		if g < len(e.shards) {
			// The shard's own bounded-heap top-k, with the shared IDF:
			// no shard ever contributes more than hi entries to the
			// window, so deeper ranks are never computed.
			streams = append(streams, e.shards[g].get().RankPage(run, query, xseek.SearchOptions{Limit: hi}))
		} else {
			spine := e.scoreResults(run, query)
			sort.SliceStable(spine, func(i, j int) bool { return spine[i].Score > spine[j].Score })
			if len(spine) > hi {
				spine = spine[:hi]
			}
			streams = append(streams, spine)
		}
	}

	merged := mergeRankedStreams(streams, hi)
	return merged[lo:]
}

// scoreResults computes TF-IDF scores in input order with the shared
// whole-corpus constants — the sharded twin of xseek's scoring stage.
func (e *Engine) scoreResults(results []*xseek.Result, query string) []*xseek.RankedResult {
	terms := index.TokenizeQuery(query)
	out := make([]*xseek.RankedResult, len(results))
	for i, r := range results {
		score := 0.0
		for _, t := range terms {
			idf, ok := e.idf[t]
			if !ok {
				continue
			}
			tf := e.tfUnder(t, r.Node.ID)
			if tf == 0 {
				continue
			}
			score += xseek.TermWeight(tf, idf)
		}
		out[i] = &xseek.RankedResult{Result: r, Score: score}
	}
	return out
}

// mergeHeap is a max-heap over the heads of per-shard ranked streams,
// ordered by (score desc, document order asc) — the exact key of the
// monolithic stable ranking, since each stream's entries carry
// strictly increasing document positions.
type mergeHeap []*rankedStream

type rankedStream struct {
	entries []*xseek.RankedResult
	pos     int
}

func (h mergeHeap) head(i int) *xseek.RankedResult { return h[i].entries[h[i].pos] }

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h.head(i), h.head(j)
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node.ID.Compare(b.Node.ID) < 0
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*rankedStream)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old) - 1; s := old[n]; *h = old[:n]; return s }

// mergeRankedStreams streams the first max entries of the merged
// ranking out of the per-shard streams.
func mergeRankedStreams(streams [][]*xseek.RankedResult, max int) []*xseek.RankedResult {
	h := make(mergeHeap, 0, len(streams))
	for _, s := range streams {
		if len(s) > 0 {
			h = append(h, &rankedStream{entries: s})
		}
	}
	heap.Init(&h)
	out := make([]*xseek.RankedResult, 0, max)
	for len(out) < max && h.Len() > 0 {
		s := h[0]
		out = append(out, s.entries[s.pos])
		s.pos++
		if s.pos == len(s.entries) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// CleanQuery spell-corrects each keyword against the union vocabulary
// of every shard, with the same candidate ranking (distance, then
// aggregate frequency, then term) a monolithic index uses.
func (e *Engine) CleanQuery(query string) []string {
	terms := index.TokenizeQuery(query)
	out := make([]string, len(terms))
	for i, t := range terms {
		if e.df[t] > 0 {
			out[i] = t
			continue
		}
		if sugg := index.SuggestIn(e.eachTerm, t, 2); len(sugg) > 0 {
			out[i] = sugg[0]
		} else {
			out[i] = t
		}
	}
	return out
}

// eachTerm iterates the aggregated (term, document frequency)
// vocabulary.
func (e *Engine) eachTerm(f func(term string, df int)) {
	for t, n := range e.df {
		f(t, n)
	}
}
