package shard

import (
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Partition is a deterministic split of one document into shardable
// segments plus the shared spine. The same (root, schema, K) always
// yields the same partition, which is what lets a snapshot loader
// rebuild a single corrupt shard without consulting the others.
type Partition struct {
	// Segments are the shard-unit subtree roots in document order:
	// every topmost entity, plus every maximal entity-free subtree
	// hanging off the spine.
	Segments []*xmltree.Node
	// Spine holds the remaining nodes in document order: the root and
	// any wrapper elements above the topmost entities. Only these
	// nodes' subtrees cross segment boundaries.
	Spine []*xmltree.Node
	// Groups are the K contiguous [lo, hi) ranges over Segments, one
	// per shard, balanced by subtree node count.
	Groups [][2]int
	// Sizes holds each segment's subtree node count; NodeCount is the
	// whole document's. Both fall out of the single partition walk, so
	// callers never re-walk the tree for them.
	Sizes     []int
	NodeCount int
}

// Plan partitions the document for k shards. k is clamped to
// [1, len(Segments)] — a document with fewer top-level units than
// requested shards simply gets fewer shards. A document with no
// element children at all yields one empty group. The entire partition
// (classification, sizes, total node count) costs one tree walk.
func Plan(root *xmltree.Node, schema *xseek.Schema, k int) Partition {
	var p Partition
	p.collect(root, schema)
	p.Groups = chunkBySize(p.Sizes, k)
	return p
}

// collect walks the spine from n downward: entity children and
// entity-free children become segments, children that wrap deeper
// entities are spine and recursed into. Node counts accumulate along
// the way.
func (p *Partition) collect(n *xmltree.Node, schema *xseek.Schema) {
	p.Spine = append(p.Spine, n)
	p.NodeCount++
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			p.NodeCount++ // a spine node's own text children
			continue      // their content is indexed as part of the spine node
		}
		size, hasEnt := scan(c, schema)
		if schema.IsEntity(c) || !hasEnt {
			p.Segments = append(p.Segments, c)
			p.Sizes = append(p.Sizes, size)
			p.NodeCount += size
			continue
		}
		p.collect(c, schema)
	}
}

// scan computes a subtree's node count and whether it contains an
// entity instance, in one walk.
func scan(n *xmltree.Node, schema *xseek.Schema) (size int, hasEntity bool) {
	n.Walk(func(m *xmltree.Node) bool {
		size++
		if !hasEntity && m.Kind == xmltree.Element && schema.IsEntity(m) {
			hasEntity = true
		}
		return true
	})
	return size, hasEntity
}

// chunkBySize splits sizes into at most k contiguous non-empty groups
// whose size sums are as even as the greedy boundary walk allows. With
// no segments at all it returns a single empty group, so a degenerate
// document still builds one (empty) shard.
func chunkBySize(sizes []int, k int) [][2]int {
	n := len(sizes)
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	out := make([][2]int, 0, k)
	lo, cum := 0, 0
	for g := 0; g < k; g++ {
		hi := lo + 1
		cum += sizes[lo]
		target := total * (g + 1) / k
		// Stop early enough to leave one segment for each later group.
		for hi < n-(k-g-1) && cum < target {
			cum += sizes[hi]
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
