package shard

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// reuseCorpus builds a corpus of n same-shaped products.
func reuseCorpus(n int) *xmltree.Node {
	var b strings.Builder
	b.WriteString("<shop>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<product><name>item%d</name><kind>gadget</kind></product>", i)
	}
	b.WriteString("</shop>")
	return xmltree.MustParseString(b.String())
}

func TestBuildReusingMatchesBuildAndReusesShards(t *testing.T) {
	root := reuseCorpus(12)
	const k = 4
	prior := Build(root, k)

	same, reused := BuildReusing(root, k, prior)
	if reused != k {
		t.Fatalf("identical corpus: reused %d groups, want %d", reused, k)
	}
	assertSameResults(t, same, Build(root, k), "gadget")

	// A structurally equal but distinct tree shares no node objects, so
	// nothing may be (incorrectly) reused.
	grown := reuseCorpus(12)
	fresh, reusedNone := BuildReusing(grown, k, prior)
	if reusedNone != 0 {
		t.Fatalf("unrelated trees: reused %d groups, want 0", reusedNone)
	}
	assertSameResults(t, fresh, Build(grown, k), "gadget")
}

func assertSameResults(t *testing.T, a, b *Engine, query string) {
	t.Helper()
	ra, errA := a.Search(query)
	rb, errB := b.Search(query)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Label != rb[i].Label || !ra[i].Node.ID.Equal(rb[i].Node.ID) {
			t.Fatalf("result %d differs: %s@%s vs %s@%s", i, ra[i].Label, ra[i].Node.ID, rb[i].Label, rb[i].Node.ID)
		}
	}
}

func TestBuildReusingAppendOnSharedTree(t *testing.T) {
	// The real compaction scenario: the grown tree shares its existing
	// child objects with the tree the prior engine indexed, so every
	// group whose boundary survives the re-balance is reused. The first
	// two products are much heavier than the rest, so group 0's size
	// overshoot absorbs the appended entity and only the last group is
	// rebuilt.
	var b strings.Builder
	b.WriteString("<shop>")
	for i := 0; i < 4; i++ {
		reviews := 0
		if i < 2 {
			reviews = 5
		}
		fmt.Fprintf(&b, "<product><name>item%d</name><kind>gadget</kind>", i)
		for r := 0; r < reviews; r++ {
			fmt.Fprintf(&b, "<review>opinion %d</review>", r)
		}
		b.WriteString("</product>")
	}
	b.WriteString("</shop>")
	root := xmltree.MustParseString(b.String())
	const k = 2
	prior := Build(root, k)

	p := xmltree.NewElement("product")
	p.Leaf("name", "item4").Leaf("kind", "gadget")
	p.AssignIDs(root.ID.Child(len(root.Children)))
	p.Parent = root
	root.Children = append(root.Children, p)

	eng, reused := BuildReusing(root, k, prior)
	if reused != 1 {
		t.Fatalf("append-at-end compaction reused %d shards, want 1", reused)
	}
	assertSameResults(t, eng, Build(root, k), "gadget")
}
