package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Coordinator fans one corpus's queries out to remote shard legs and
// merges them through the exact shard.Fanout pipeline the in-process
// engine runs, so pages, scores (Float64bits), tie order, and totals
// are bit-identical. It also owns the write path: writers serialize
// here, the statistics delta is computed once on the coordinator's
// tree replica, and one WriteOp broadcast moves every leg (and then
// the coordinator) to the next epoch.
type Coordinator struct {
	corpus string
	shards int
	cfg    Config

	reps *replicaTable
	adm  *admission

	cl       *legClient
	counters Counters

	writeMu sync.Mutex
	// pending is a write whose broadcast failed partway: some replicas
	// may have applied it, so it must be re-broadcast (idempotent per
	// epoch) and committed before any different op is accepted.
	pending *pendingWrite
	cur     atomic.Pointer[coordState]

	updates, compactions atomic.Int64
}

// pendingWrite is an indeterminate broadcast awaiting re-issue.
type pendingWrite struct {
	path   string
	op     any
	commit func()
}

// coordState is one immutable epoch of the coordinator's view.
type coordState struct {
	epoch uint64
	// root is the live tree replica; part the effective partition —
	// the plan from the last compaction with live adds appended to the
	// last group and removed segments dropped, mirroring how every leg
	// resolves ownership.
	root     *xmltree.Node
	schema   *xseek.Schema
	part     shard.Partition
	own      shard.Ownership
	spineIdx *index.Index

	// Exact whole-corpus statistics, maintained with the same integer
	// deltas the in-process live engine applies.
	df         map[string]int
	totalNodes int
	elements   int

	nextOrd    int
	hasRemove  bool // a removal is pending since the last compaction
	journalLen int

	fan *shard.Fanout
}

// Dial connects to a cluster of single-replica shard servers — one
// endpoint per shard group. See DialReplicas for replicated groups.
func Dial(endpoints []string, corpus string, root *xmltree.Node, cfg Config) (*Coordinator, error) {
	groups, err := groupsOf(endpoints, 1)
	if err != nil {
		return nil, err
	}
	return DialReplicas(groups, corpus, root, cfg)
}

// DialReplicas connects to a cluster of shard servers with N replicas
// per shard group, validates the topology (every replica of group g
// must identify as shard g and be at epoch 0), aggregates the global
// document frequencies (spine + one replica per group — replicas are
// state-identical by protocol), and pushes the ranking constants to
// every replica so each scores with the whole-corpus IDF. root must
// be the same document every shard server bootstrapped from.
//
// Idempotent reads spread round-robin over a group's healthy replicas
// and fail over on per-replica errors; writes broadcast to every
// replica of every group under the epoch protocol.
func DialReplicas(groups [][]string, corpus string, root *xmltree.Node, cfg Config) (*Coordinator, error) {
	reps, err := newReplicaTable(groups)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		corpus: corpus,
		shards: len(groups),
		cfg:    cfg.withDefaults(),
		reps:   reps,
		adm:    newAdmission(cfg.MaxInflight, cfg.MaxQueue),
	}
	co.cl = newLegClient(co.cfg, corpus, reps, &co.counters)

	schema := xseek.InferSchemaParallel(root, 0)
	part := shard.Plan(root, schema, co.shards)
	spineIdx := index.BuildNodes(root, part.Spine)

	for g := range groups {
		for r := 0; r < reps.count(g); r++ {
			var info InfoResponse
			if err := co.cl.getReplica(g, r, "/shard/v1/info", jsonInto(&info)); err != nil {
				return nil, fmt.Errorf("dist: leg %d replica %d: %w", g, r, err)
			}
			if info.ShardID != g || info.Shards != co.shards {
				return nil, fmt.Errorf("dist: leg %d replica %d identifies as shard %d/%d, want %d/%d",
					g, r, info.ShardID, info.Shards, g, co.shards)
			}
			if info.Epoch != 0 {
				return nil, fmt.Errorf("dist: leg %d replica %d is at epoch %d; bootstrap requires clean legs",
					g, r, info.Epoch)
			}
		}
	}

	// Aggregate global document frequencies: the spine's (local) plus
	// every leg's. The node sets are disjoint, so the sums equal the
	// monolithic index's counts exactly. One replica per group
	// suffices — Dial just validated they are all at epoch 0 with the
	// same bootstrap tree.
	df := make(map[string]int)
	spineIdx.EachTerm(func(t string, n int) { df[t] += n })
	elements := spineIdx.Stats().IndexedElements
	for g := range groups {
		var stats StatsResponse
		if err := co.cl.getReplica(g, 0, "/shard/v1/stats", func(r io.Reader) error { return DecodeFrame(r, &stats) }); err != nil {
			return nil, fmt.Errorf("dist: leg %d stats: %w", g, err)
		}
		for t, n := range stats.DF {
			df[t] += n
		}
		elements += stats.Elements
	}

	rk := Ranking{TotalNodes: part.NodeCount, DF: df}
	for g := range groups {
		for r := 0; r < reps.count(g); r++ {
			if err := co.cl.callReplica(g, r, "/shard/v1/ranking", &rk, nil); err != nil {
				return nil, fmt.Errorf("dist: leg %d replica %d ranking push: %w", g, r, err)
			}
		}
	}

	st := &coordState{
		root:       root,
		schema:     schema,
		part:       part,
		own:        part.Ownership(),
		spineIdx:   spineIdx,
		df:         df,
		totalNodes: part.NodeCount,
		elements:   elements,
		nextOrd:    len(root.Children),
	}
	co.install(st, nil)
	return co, nil
}

// install builds the state's fan-out over fresh epoch-bound HTTP legs
// and publishes it.
func (co *Coordinator) install(st *coordState, prev *coordState) {
	legs := make([]shard.Leg, len(st.part.Groups))
	for g := range legs {
		legs[g] = &httpLeg{cl: co.cl, g: g, epoch: st.epoch, root: st.root}
	}
	fan := shard.NewFanout(st.root, st.schema, st.part, st.spineIdx, legs, st.df, st.elements)
	if prev != nil {
		fan.AdoptCounters(prev.fan)
	}
	if co.cfg.AllowPartial {
		fan = fan.WithLegFailurePolicy(func(g int, err error) error {
			if errors.Is(err, errEpochMismatch) {
				// Not a failure — a write raced; the coordinator-level
				// retry re-runs the fan-out on the fresh state.
				return err
			}
			co.counters.Degraded.Add(1)
			return nil
		})
	}
	st.fan = fan
	co.cur.Store(st)
}

// Endpoint returns leg g's first replica's current base URL.
func (co *Coordinator) Endpoint(g int) string {
	return co.reps.endpoint(g, 0)
}

// SetLegEndpoint repoints leg g's first replica — the recovery hook
// after a single-replica leg is restarted (possibly elsewhere) from
// its shipped snapshot.
func (co *Coordinator) SetLegEndpoint(g int, url string) {
	co.reps.set(g, 0, url)
}

// ReplicaEndpoint returns replica r of group g's current base URL.
func (co *Coordinator) ReplicaEndpoint(g, r int) string {
	return co.reps.endpoint(g, r)
}

// SetReplicaEndpoint repoints one replica of a group and clears its
// failure mark — the recovery hook after a replica is restarted
// (possibly elsewhere) from a local or peer-fetched snapshot.
func (co *Coordinator) SetReplicaEndpoint(g, r int, url string) {
	co.reps.set(g, r, url)
}

// ReplicaCount returns group g's replica count.
func (co *Coordinator) ReplicaCount(g int) int { return co.reps.count(g) }

// Replicas returns the widest group's replica count — the cluster's
// nominal replication factor.
func (co *Coordinator) Replicas() int { return co.reps.maxReplicas() }

// Epoch returns the coordinator's current state version.
func (co *Coordinator) Epoch() uint64 { return co.cur.Load().epoch }

// LegCount returns the number of serving legs (partition groups).
func (co *Coordinator) LegCount() int { return len(co.cur.Load().part.Groups) }

// DistCounters reports transport-health metrics: retries issued,
// hedged reads launched, degraded (partial) pages served, leg calls
// that failed after all retries, reads failed over to another
// replica, and ranked queries shed by admission control.
func (co *Coordinator) DistCounters() (retries, hedges, degraded, legErrs, failovers, shed int64) {
	return co.counters.Retries.Load(), co.counters.Hedges.Load(),
		co.counters.Degraded.Load(), co.counters.LegErrs.Load(),
		co.counters.Failovers.Load(), co.counters.Shed.Load()
}

// ShipSnapshot fetches group g's snapshot — the bytes a replacement
// process restores from — failing over across the group's replicas.
func (co *Coordinator) ShipSnapshot(g int) ([]byte, error) {
	var buf bytes.Buffer
	err := co.cl.getSpread(g, "/shard/v1/snapshot", func(r io.Reader) error {
		buf.Reset()
		_, err := io.Copy(&buf, r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// queryAttempts bounds the re-runs a query gets when it catches a leg
// mid-write (epoch mismatch). Each re-run reloads the state, so one
// attempt after the write settles is enough in practice.
const queryAttempts = 4

// retryQuery re-runs f on the freshest state until the epochs settle.
func retryQuery[T any](co *Coordinator, f func(*coordState) (T, error)) (T, error) {
	var out T
	var err error
	for i := 0; i < queryAttempts; i++ {
		s := co.cur.Load()
		out, err = f(s)
		if err == nil || !errors.Is(err, errEpochMismatch) {
			return out, err
		}
		// A write is in flight: the legs are ahead of (or behind) the
		// state we fanned out with. Give the broadcast a moment to
		// publish, then re-run on the fresh state.
		co.cfg.Sleep(5 * time.Millisecond)
	}
	return out, err
}

// ---- executor surface (the same one internal/engine serves) ----

func (co *Coordinator) Root() *xmltree.Node   { return co.cur.Load().root }
func (co *Coordinator) Schema() *xseek.Schema { return co.cur.Load().schema }
func (co *Coordinator) TotalNodes() int       { return co.cur.Load().totalNodes }
func (co *Coordinator) DocFreq(term string) int {
	return co.cur.Load().df[term]
}
func (co *Coordinator) EstimateResults(query string) int {
	return co.cur.Load().fan.EstimateResults(query)
}
func (co *Coordinator) CleanQuery(query string) []string {
	return co.cur.Load().fan.CleanQuery(query)
}
func (co *Coordinator) PlannerDecisions() (indexedLookup, scanEager int64) { return 0, 0 }
func (co *Coordinator) StreamedDecisions() int64 {
	return co.cur.Load().fan.StreamedDecisions()
}
func (co *Coordinator) IndexStats() index.Stats {
	return co.cur.Load().fan.IndexStats()
}

func (co *Coordinator) Search(query string) ([]*xseek.Result, error) {
	return retryQuery(co, func(s *coordState) ([]*xseek.Result, error) {
		return s.fan.Search(query)
	})
}

func (co *Coordinator) SearchStream(query string) (xseek.Cursor, error) {
	return retryQuery(co, func(s *coordState) (xseek.Cursor, error) {
		return s.fan.SearchStream(query)
	})
}

// admit gates a ranked query through admission control, counting the
// shed. Only the error-returning ranked paths are gated: doc-order
// reads and writes always run, and the nil-on-error ranking helpers
// are excluded so overload never masquerades as an empty page.
func (co *Coordinator) admit() error {
	if err := co.adm.acquire(); err != nil {
		co.counters.Shed.Add(1)
		return err
	}
	return nil
}

func (co *Coordinator) SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error) {
	if err := co.admit(); err != nil {
		return nil, 0, err
	}
	defer co.adm.release()
	type page struct {
		rs    []*xseek.RankedResult
		total int
	}
	p, err := retryQuery(co, func(s *coordState) (page, error) {
		rs, total, err := s.fan.SearchRankedPageStream(query, opts)
		return page{rs, total}, err
	})
	return p.rs, p.total, err
}

func (co *Coordinator) SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error) {
	if err := co.admit(); err != nil {
		return nil, 0, xseek.WANDStats{}, err
	}
	defer co.adm.release()
	type page struct {
		rs    []*xseek.RankedResult
		total int
		stats xseek.WANDStats
	}
	p, err := retryQuery(co, func(s *coordState) (page, error) {
		rs, total, stats, err := s.fan.SearchRankedPageWAND(query, opts)
		return page{rs, total, stats}, err
	})
	return p.rs, p.total, p.stats, err
}

// RankResults and RankPage have no error channel in the executor
// surface; a fan-out that cannot complete returns nil — observably
// unavailable, never silently wrong.
func (co *Coordinator) RankResults(results []*xseek.Result, query string) []*xseek.RankedResult {
	out, err := retryQuery(co, func(s *coordState) ([]*xseek.RankedResult, error) {
		return s.fan.RankResultsErr(results, query)
	})
	if err != nil {
		return nil
	}
	return out
}

func (co *Coordinator) RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult {
	out, err := retryQuery(co, func(s *coordState) ([]*xseek.RankedResult, error) {
		return s.fan.RankPageErr(results, query, opts)
	})
	if err != nil {
		return nil
	}
	return out
}

// ---- write path ----

// PendingOps returns the number of writes since the last compaction.
func (co *Coordinator) PendingOps() int { return co.cur.Load().journalLen }

// Updates returns the lifetime add+remove count.
func (co *Coordinator) Updates() int64 { return co.updates.Load() }

// Compactions returns the lifetime compaction count.
func (co *Coordinator) Compactions() int64 { return co.compactions.Load() }

// AddEntity appends an entity as a new top-level child across the
// cluster: fresh ordinal, broadcast fragment, post-write ranking
// computed once here and installed everywhere. The coordinator takes
// ownership of n.
func (co *Coordinator) AddEntity(n *xmltree.Node) (dewey.ID, error) {
	if n == nil || n.Kind != xmltree.Element {
		return nil, fmt.Errorf("dist: AddEntity requires an element subtree")
	}
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	if err := co.flushPendingLocked(); err != nil {
		return nil, err
	}
	s := co.cur.Load()

	ord := s.nextOrd
	id := dewey.New(ord)
	n.AssignIDs(id)
	// Serialize before wiring in, so the fragment round-trips
	// standalone on every replica.
	fragment := xmltree.XMLString(n)
	newRoot := rootWith(s.root, nil, n)
	n.Parent = newRoot

	ent := index.BuildForest(newRoot, []*xmltree.Node{n})
	df := adjustedDF(s.df, termContrib(ent), +1)
	totalNodes := s.totalNodes + n.CountNodes()

	op := &WriteOp{Epoch: s.epoch, Ord: ord, XML: fragment,
		Ranking: Ranking{TotalNodes: totalNodes, DF: df}}

	ns := &coordState{
		epoch:      s.epoch + 1,
		root:       newRoot,
		schema:     xseek.InferSchemaParallel(newRoot, 0),
		part:       appendSegment(s.part, n, totalNodes),
		spineIdx:   s.spineIdx,
		df:         df,
		totalNodes: totalNodes,
		elements:   s.elements + ent.Stats().IndexedElements,
		nextOrd:    ord + 1,
		hasRemove:  s.hasRemove,
		journalLen: s.journalLen + 1,
	}
	ns.own = ns.part.Ownership()
	if err := co.commitLocked("/shard/v1/write", op, s, ns, co.updates.Add); err != nil {
		return nil, err
	}
	return id, nil
}

// RemoveEntity removes a top-level entity across the cluster. Spine-
// rooted elements (wrappers the partition treats as write-invariant
// structure) cannot be removed through the distributed path.
func (co *Coordinator) RemoveEntity(id dewey.ID) error {
	if len(id) != 1 {
		return fmt.Errorf("dist: %v is not a top-level entity ID", id)
	}
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	if err := co.flushPendingLocked(); err != nil {
		return err
	}
	s := co.cur.Load()

	victim := childByOrdinal(s.root, id[0])
	if victim == nil || victim.Kind != xmltree.Element {
		return fmt.Errorf("dist: no live top-level entity %v", id)
	}
	if s.own.Spine(victim.ID) {
		return fmt.Errorf("dist: %v is spine-rooted; spine removals are not distributable", id)
	}

	vic := index.BuildForest(s.root, []*xmltree.Node{victim})
	df := adjustedDF(s.df, termContrib(vic), -1)
	totalNodes := s.totalNodes - victim.CountNodes()

	op := &WriteOp{Epoch: s.epoch, Remove: true, Ord: id[0],
		Ranking: Ranking{TotalNodes: totalNodes, DF: df}}

	newRoot := rootWith(s.root, victim, nil)
	ns := &coordState{
		epoch:      s.epoch + 1,
		root:       newRoot,
		schema:     xseek.InferSchemaParallel(newRoot, 0),
		part:       removeSegment(s.part, victim, totalNodes),
		spineIdx:   s.spineIdx,
		df:         df,
		totalNodes: totalNodes,
		elements:   s.elements - vic.Stats().IndexedElements,
		nextOrd:    s.nextOrd,
		hasRemove:  true,
		journalLen: s.journalLen + 1,
	}
	ns.own = ns.part.Ownership()
	return co.commitLocked("/shard/v1/write", op, s, ns, co.updates.Add)
}

// Compact re-bases the cluster: every leg (and the coordinator)
// re-plans and rebuilds from the live tree, renumbering exactly when
// a removal is pending — the same decision rule the in-process
// compaction applies, so the compacted corpora stay bit-identical.
// With nothing pending it is a no-op.
func (co *Coordinator) Compact() error {
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	if err := co.flushPendingLocked(); err != nil {
		return err
	}
	s := co.cur.Load()
	if s.journalLen == 0 {
		return nil
	}
	op := &CompactOp{Epoch: s.epoch, Renumber: s.hasRemove}

	root := s.root
	if s.hasRemove {
		root = rebuildTree(s.root)
	}
	schema := xseek.InferSchemaParallel(root, 0)
	part := shard.Plan(root, schema, co.shards)
	ns := &coordState{
		epoch:      s.epoch + 1,
		root:       root,
		schema:     schema,
		part:       part,
		own:        part.Ownership(),
		spineIdx:   index.BuildNodes(root, part.Spine),
		df:         s.df,
		totalNodes: s.totalNodes,
		elements:   s.elements,
		nextOrd:    len(root.Children),
	}
	return co.commitLocked("/shard/v1/compact", op, s, ns, func(int64) int64 {
		return co.compactions.Add(1)
	})
}

// Flush re-issues any pending (partially-broadcast) write until every
// replica has acknowledged it, then publishes the held state. It is a
// no-op when no write is pending. Callers use it to settle the
// cluster after a broadcast failure before asserting convergence.
func (co *Coordinator) Flush() error {
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	return co.flushPendingLocked()
}

// commitLocked broadcasts op and, on success, publishes ns and bumps
// the lifetime counter. On failure the op may have been applied by
// some replicas, so it is parked as pending: the op itself keeps
// failing closed (every later write first re-broadcasts it, which the
// already-moved replicas acknowledge idempotently) rather than
// letting a *different* op at the same epoch diverge the cluster.
// Callers must hold writeMu.
func (co *Coordinator) commitLocked(path string, op any, s, ns *coordState, bump func(int64) int64) error {
	commit := func() {
		co.install(ns, s)
		bump(1)
	}
	if err := co.broadcast(path, op); err != nil {
		co.pending = &pendingWrite{path: path, op: op, commit: commit}
		return err
	}
	commit()
	return nil
}

// flushPendingLocked re-broadcasts the parked write, if any, and
// commits it once every replica acknowledges. Callers must hold
// writeMu.
func (co *Coordinator) flushPendingLocked() error {
	p := co.pending
	if p == nil {
		return nil
	}
	if err := co.broadcast(p.path, p.op); err != nil {
		return fmt.Errorf("dist: pending write still unacknowledged: %w", err)
	}
	p.commit()
	co.pending = nil
	return nil
}

// broadcast sends one op to every replica of every shard group in
// parallel and fails if any replica cannot be moved. Ops are
// idempotent per epoch: a replica that already applied this op
// acknowledges the retry, so a failed broadcast can simply be
// re-issued (the coordinator publishes only after every replica has
// acknowledged).
func (co *Coordinator) broadcast(path string, op any) error {
	type target struct{ g, r int }
	var targets []target
	for g := 0; g < co.shards; g++ {
		for r := 0; r < co.reps.count(g); r++ {
			targets = append(targets, target{g, r})
		}
	}
	errs := make([]error, len(targets))
	core.ForEachParallel(len(targets), 0, func(i int) {
		errs[i] = co.cl.callReplica(targets[i].g, targets[i].r, path, op, nil)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: write broadcast to leg %d replica %d: %w",
				targets[i].g, targets[i].r, err)
		}
	}
	return nil
}

// appendSegment extends the effective partition with a live-added
// entity: a new trailing segment owned by the last group.
func appendSegment(p shard.Partition, n *xmltree.Node, nodeCount int) shard.Partition {
	np := shard.Partition{
		Segments:  append(p.Segments[:len(p.Segments):len(p.Segments)], n),
		Spine:     p.Spine,
		Groups:    append([][2]int(nil), p.Groups...),
		Sizes:     append(p.Sizes[:len(p.Sizes):len(p.Sizes)], n.CountNodes()),
		NodeCount: nodeCount,
	}
	np.Groups[len(np.Groups)-1][1]++
	return np
}

// removeSegment drops a live-removed entity's segment from the
// effective partition, shrinking its group's range.
func removeSegment(p shard.Partition, victim *xmltree.Node, nodeCount int) shard.Partition {
	si := -1
	for i, sg := range p.Segments {
		if sg == victim {
			si = i
			break
		}
	}
	np := shard.Partition{Spine: p.Spine, NodeCount: nodeCount}
	if si < 0 {
		// The victim is not segment-rooted (it lives inside another
		// segment) — impossible for top-level entities; keep the
		// partition shape rather than corrupt it.
		np.Segments, np.Groups, np.Sizes = p.Segments, p.Groups, p.Sizes
		return np
	}
	np.Segments = append(append([]*xmltree.Node(nil), p.Segments[:si]...), p.Segments[si+1:]...)
	np.Sizes = append(append([]int(nil), p.Sizes[:si]...), p.Sizes[si+1:]...)
	np.Groups = make([][2]int, len(p.Groups))
	for g, r := range p.Groups {
		lo, hi := r[0], r[1]
		if si < lo {
			lo--
		}
		if si < hi {
			hi--
		}
		np.Groups[g] = [2]int{lo, hi}
	}
	return np
}

// termContrib collects an entity index's per-term document counts.
func termContrib(idx *index.Index) map[string]int {
	out := make(map[string]int)
	idx.EachTerm(func(t string, df int) { out[t] = df })
	return out
}

// adjustedDF returns a fresh frequency table with delta applied at
// sign — the same integer bookkeeping the in-process live engine's
// freqs.adjusted performs, with exhausted terms dropped so the
// vocabulary size matches a cold index's.
func adjustedDF(base, delta map[string]int, sign int) map[string]int {
	out := make(map[string]int, len(base)+len(delta))
	for t, n := range base {
		out[t] = n
	}
	for t, n := range delta {
		out[t] += sign * n
		if out[t] <= 0 {
			delete(out, t)
		}
	}
	return out
}
