package dist_test

// Replica-set coverage: spread/failover bit-identity, all-replica
// writes, the pending-write (partial broadcast) protocol, peer-
// snapshot self-healing, admission-control shedding, and the
// injectable backoff schedule. The randomized soak over the same
// machinery lives in chaos_test.go.

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Gate modes: a gate sits in front of one replica's handler and
// injects faults without the replica's URL changing.
const (
	gateOK   int32 = iota
	gateDown       // connection aborted — replica dead or partitioned away
	gateSlow       // fixed delay before serving
	gateHold       // block until released (admission-control tests)
)

// gate wraps one replica with a switchable fault mode and a swappable
// backing server, so tests can kill, partition, slow, and restart a
// replica in place.
type gate struct {
	mode    atomic.Int32
	delay   atomic.Int64 // slow-mode delay in nanoseconds
	release chan struct{}
	srv     atomic.Pointer[dist.Server]
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch g.mode.Load() {
	case gateDown:
		panic(http.ErrAbortHandler)
	case gateSlow:
		time.Sleep(time.Duration(g.delay.Load()))
	case gateHold:
		<-g.release
	}
	g.srv.Load().ServeHTTP(w, r)
}

// repCluster is one corpus served by k shard groups × r replicas,
// each behind a fault gate, plus a dialed coordinator.
type repCluster struct {
	gates [][]*gate // [group][replica]
	https [][]*httptest.Server
	co    *dist.Coordinator
}

// startReplicatedCluster boots k shard groups with r gate-fronted
// replicas each (every replica parses its own copy of doc) and dials
// a replicated coordinator over them.
func startReplicatedCluster(t *testing.T, k, r int, doc string, cfg dist.Config) *repCluster {
	t.Helper()
	cl := &repCluster{}
	groups := make([][]string, k)
	for g := 0; g < k; g++ {
		cl.gates = append(cl.gates, make([]*gate, r))
		cl.https = append(cl.https, make([]*httptest.Server, r))
		for ri := 0; ri < r; ri++ {
			sv, err := dist.NewServer(g, k)
			if err != nil {
				t.Fatalf("NewServer(%d, %d): %v", g, k, err)
			}
			if err := sv.AddCorpus(testCorpus, xmltree.MustParseString(doc)); err != nil {
				t.Fatalf("group %d replica %d AddCorpus: %v", g, ri, err)
			}
			gt := &gate{release: make(chan struct{})}
			gt.srv.Store(sv)
			hs := httptest.NewServer(gt)
			t.Cleanup(hs.Close)
			cl.gates[g][ri] = gt
			cl.https[g][ri] = hs
			groups[g] = append(groups[g], hs.URL)
		}
	}
	co, err := dist.DialReplicas(groups, testCorpus, xmltree.MustParseString(doc), cfg)
	if err != nil {
		t.Fatalf("DialReplicas: %v", err)
	}
	cl.co = co
	return cl
}

// rebuildReplica replaces a killed replica's state from a live peer's
// snapshot — the self-healing join path — and re-opens its gate.
func (cl *repCluster) rebuildReplica(t *testing.T, g, r, peerR int, shards int) {
	t.Helper()
	snap, err := dist.FetchSnapshot(cl.https[g][peerR].URL, testCorpus, 0)
	if err != nil {
		t.Fatalf("group %d: fetch peer snapshot from replica %d: %v", g, peerR, err)
	}
	sv, err := dist.NewServer(g, shards)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := sv.RestoreCorpus(testCorpus, snap); err != nil {
		t.Fatalf("group %d replica %d: restore from peer snapshot: %v", g, r, err)
	}
	cl.gates[g][r].srv.Store(sv)
	cl.gates[g][r].mode.Store(gateOK)
	cl.co.SetReplicaEndpoint(g, r, cl.https[g][r].URL)
}

// noSleep is the fake sleeper tests inject to skip retry backoff.
func noSleep(time.Duration) {}

// TestReplicaSpreadEquivalence is the replication property test: a
// coordinator spreading reads over N ∈ {1, 2, 3} replicas per group
// must stay bit-identical — scores to the Float64bits, paging
// envelopes, every read path — to the in-process sharded engine,
// through live writes and compactions.
func TestReplicaSpreadEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	doc := randomDoc(r, vocab)
	for _, k := range []int{1, 2} {
		for _, reps := range []int{1, 2, 3} {
			ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), k))
			cl := startReplicatedCluster(t, k, reps, doc, dist.Config{})
			ctx := fmt.Sprintf("K=%d R=%d", k, reps)
			if got := cl.co.Replicas(); got != reps {
				t.Fatalf("%s: Replicas() = %d", ctx, got)
			}
			query := func(n int) string {
				terms := make([]string, n)
				for i := range terms {
					terms[i] = vocab[r.Intn(len(vocab))]
				}
				return strings.Join(terms, " ")
			}
			// Cold reads: repeat each check so the rotation actually
			// lands on every replica.
			for qi := 0; qi < 2*reps; qi++ {
				checkEquivalence(t, ref, cl.co, query(r.Intn(2)+1), ctx+" cold")
			}
			// Live writes: adds, a remove, a compaction — every replica
			// must apply each op for the later spread reads to agree.
			var ids []string
			for step := 0; step < 4; step++ {
				frag := entityDoc(r, vocab)
				wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
				if err != nil {
					t.Fatalf("%s: ref add: %v", ctx, err)
				}
				gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag))
				if err != nil {
					t.Fatalf("%s: dist add: %v", ctx, err)
				}
				if gotID.String() != wantID.String() {
					t.Fatalf("%s: add ID %s vs %s", ctx, gotID, wantID)
				}
				ids = append(ids, gotID.String())
				for qi := 0; qi < reps; qi++ {
					checkEquivalence(t, ref, cl.co, query(r.Intn(2)+1), ctx+" after add")
				}
			}
			did, _ := parseDewey(ids[0])
			if err := ref.RemoveEntity(did); err != nil {
				t.Fatalf("%s: ref remove: %v", ctx, err)
			}
			if err := cl.co.RemoveEntity(did); err != nil {
				t.Fatalf("%s: dist remove: %v", ctx, err)
			}
			for qi := 0; qi < reps; qi++ {
				checkEquivalence(t, ref, cl.co, query(r.Intn(2)+1), ctx+" after remove")
			}
			if err := ref.Compact(); err != nil {
				t.Fatalf("%s: ref compact: %v", ctx, err)
			}
			if err := cl.co.Compact(); err != nil {
				t.Fatalf("%s: dist compact: %v", ctx, err)
			}
			if got, want := cl.co.Epoch(), ref.Epoch(); got != want {
				t.Fatalf("%s: epoch %d vs %d", ctx, got, want)
			}
			for qi := 0; qi < 2*reps; qi++ {
				checkEquivalence(t, ref, cl.co, query(r.Intn(2)+1), ctx+" after compact")
			}
		}
	}
}

// TestReplicaFailoverRead kills one replica per group and asserts
// reads keep succeeding bit-identically off the survivors, counting
// failovers — then heals the replicas and checks they serve again.
func TestReplicaFailoverRead(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	doc := randomDoc(r, vocab)
	k := 2
	ref := shard.Build(xmltree.MustParseString(doc), k)
	cl := startReplicatedCluster(t, k, 2, doc, dist.Config{Retries: -1, Sleep: noSleep})

	// A write before the failure, so the surviving replicas must prove
	// they applied it.
	refLive := update.WrapSharded(ref)
	frag := entityDoc(r, vocab)
	if _, err := refLive.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("ref add: %v", err)
	}
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("dist add: %v", err)
	}

	for g := 0; g < k; g++ {
		cl.gates[g][0].mode.Store(gateDown)
	}
	for qi := 0; qi < 6; qi++ {
		checkEquivalence(t, refLive, cl.co, vocab[qi%len(vocab)], "replica 0 down")
	}
	_, _, _, _, failovers, _ := cl.co.DistCounters()
	if failovers == 0 {
		t.Fatal("no failovers counted with replica 0 of every group down")
	}

	// Heal; the healed replicas must still be bit-identical (they
	// applied the pre-failure write too) once the rotation returns to
	// them.
	for g := 0; g < k; g++ {
		cl.gates[g][0].mode.Store(gateOK)
	}
	for qi := 0; qi < 8; qi++ {
		checkEquivalence(t, refLive, cl.co, vocab[qi%len(vocab)], "healed")
	}
}

// TestReplicaWriteRequiresAll pins the write-side contract: with any
// replica down the epoch must freeze (the broadcast fails), and after
// healing, Flush settles the parked write on every replica — no
// divergence, no lost write, bit-identical reads everywhere.
func TestReplicaWriteRequiresAll(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	doc := randomDoc(r, vocab)
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), 2))
	cl := startReplicatedCluster(t, 2, 2, doc, dist.Config{Retries: -1, Sleep: noSleep})

	cl.gates[1][1].mode.Store(gateDown)
	frag := entityDoc(r, vocab)
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err == nil {
		t.Fatal("AddEntity succeeded with a replica down; writes must reach every replica")
	}
	if got := cl.co.Epoch(); got != 0 {
		t.Fatalf("epoch advanced to %d on a failed broadcast", got)
	}

	// A different write must NOT slip in at the same epoch: the parked
	// op re-broadcasts first and the whole call fails while the
	// replica stays down.
	if _, err := cl.co.AddEntity(xmltree.MustParseString(entityDoc(r, vocab))); err == nil {
		t.Fatal("second AddEntity succeeded over an unsettled pending write")
	}
	if got := cl.co.Epoch(); got != 0 {
		t.Fatalf("epoch advanced to %d with the pending write unsettled", got)
	}

	cl.gates[1][1].mode.Store(gateOK)
	if err := cl.co.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if got := cl.co.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after flush, want 1 (only the first op committed)", got)
	}
	if _, err := ref.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("ref add: %v", err)
	}
	for qi := 0; qi < 8; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "after flush")
	}

	// Writes flow again at the settled epoch.
	frag2 := entityDoc(r, vocab)
	wantID, err := ref.AddEntity(xmltree.MustParseString(frag2))
	if err != nil {
		t.Fatalf("ref add 2: %v", err)
	}
	gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag2))
	if err != nil {
		t.Fatalf("dist add 2 after flush: %v", err)
	}
	if gotID.String() != wantID.String() {
		t.Fatalf("add 2 ID %s vs %s", gotID, wantID)
	}
	for qi := 0; qi < 8; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "after resumed write")
	}
}

// TestReplicaPendingWriteAutoFlush checks the other settlement path:
// the next write call itself re-broadcasts the parked op (committing
// it) before applying the new one — two epochs from one call, both
// ops on every replica.
func TestReplicaPendingWriteAutoFlush(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	doc := randomDoc(r, vocab)
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), 1))
	cl := startReplicatedCluster(t, 1, 2, doc, dist.Config{Retries: -1, Sleep: noSleep})

	cl.gates[0][1].mode.Store(gateDown)
	frag1 := entityDoc(r, vocab)
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag1)); err == nil {
		t.Fatal("AddEntity succeeded with a replica down")
	}
	cl.gates[0][1].mode.Store(gateOK)

	frag2 := entityDoc(r, vocab)
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag2)); err != nil {
		t.Fatalf("AddEntity after heal (auto-flush path): %v", err)
	}
	if got := cl.co.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2 (pending + new op)", got)
	}
	if _, err := ref.AddEntity(xmltree.MustParseString(frag1)); err != nil {
		t.Fatalf("ref add 1: %v", err)
	}
	if _, err := ref.AddEntity(xmltree.MustParseString(frag2)); err != nil {
		t.Fatalf("ref add 2: %v", err)
	}
	for qi := 0; qi < 6; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "after auto-flush")
	}
}

// TestReplicaPeerSnapshotSelfHeal kills a replica after live writes,
// rebuilds it from a surviving peer's /shard/v1/snapshot, and proves
// the healed replica serves bit-identically — by killing its sibling
// so every read must come off the restored state — and acknowledges
// writes at the current epoch.
func TestReplicaPeerSnapshotSelfHeal(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	doc := randomDoc(r, vocab)
	k := 2
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), k))
	cl := startReplicatedCluster(t, k, 2, doc, dist.Config{Retries: -1, Sleep: noSleep})

	// Move the cluster off epoch 0 so the restored replica has a
	// journal to replay, not just a base tree.
	for i := 0; i < 3; i++ {
		frag := entityDoc(r, vocab)
		if _, err := ref.AddEntity(xmltree.MustParseString(frag)); err != nil {
			t.Fatalf("ref add: %v", err)
		}
		if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err != nil {
			t.Fatalf("dist add: %v", err)
		}
	}

	// Kill group 0 replica 1 outright (state gone), then heal it from
	// replica 0's snapshot.
	cl.gates[0][1].mode.Store(gateDown)
	cl.gates[0][1].srv.Store(nil)
	cl.rebuildReplica(t, 0, 1, 0, k)

	// Force reads onto the restored replica: its sibling goes down.
	cl.gates[0][0].mode.Store(gateDown)
	for qi := 0; qi < 6; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "restored replica serving")
	}

	// And it must accept writes at the current epoch once the sibling
	// is back (writes need every replica).
	cl.gates[0][0].mode.Store(gateOK)
	frag := entityDoc(r, vocab)
	wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("ref add after heal: %v", err)
	}
	gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("dist add after heal: %v", err)
	}
	if gotID.String() != wantID.String() {
		t.Fatalf("post-heal add ID %s vs %s", gotID, wantID)
	}
	for qi := 0; qi < 6; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "after post-heal write")
	}
}

// TestAdmissionShed pins the load-shedding contract: with the
// in-flight cap saturated, excess ranked queries fail fast with
// ErrOverloaded (counted in DistCounters), writes and doc-order reads
// are never shed, and nothing about the epoch state is disturbed.
func TestAdmissionShed(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	doc := randomDoc(r, vocab)
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), 1))
	cl := startReplicatedCluster(t, 1, 1, doc, dist.Config{MaxInflight: 1, MaxQueue: -1})

	// Hold the leg: the one admitted ranked query will block inside
	// its fan-out, keeping the slot occupied.
	gt := cl.gates[0][0]
	gt.mode.Store(gateHold)
	started := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := cl.co.SearchRankedPageStream(vocab[0], xseek.SearchOptions{Limit: 3})
		firstDone <- err
	}()
	<-started
	// Wait until the admitted query actually reaches the gate, so the
	// slot is provably held.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := cl.co.SearchRankedPageStream(vocab[1], xseek.SearchOptions{Limit: 3}); err != nil {
			if !errors.Is(err, dist.ErrOverloaded) {
				t.Fatalf("excess ranked query: got %v, want ErrOverloaded", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw ErrOverloaded with the in-flight cap saturated")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, _, _, _, shed := cl.co.DistCounters()
	if shed == 0 {
		t.Fatal("shed counter is zero after an ErrOverloaded rejection")
	}

	// Doc-order search is never shed — it must hang on the held gate,
	// not fail fast. Probe via a goroutine: it blocks until release.
	docDone := make(chan error, 1)
	go func() {
		_, err := cl.co.Search(vocab[0])
		docDone <- err
	}()
	select {
	case err := <-docDone:
		t.Fatalf("doc-order search returned early (err=%v); it should not be shed or fail fast", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gt.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted ranked query failed after release: %v", err)
	}
	if err := <-docDone; err != nil {
		t.Fatalf("doc-order search failed after release: %v", err)
	}

	// Shedding corrupted nothing: epoch intact, writes flow, reads
	// stay bit-identical, and the freed slot admits ranked queries.
	gt.mode.Store(gateOK)
	if got := cl.co.Epoch(); got != 0 {
		t.Fatalf("epoch = %d after shedding, want 0", got)
	}
	frag := entityDoc(r, vocab)
	if _, err := ref.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("ref add: %v", err)
	}
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("dist add after shedding: %v", err)
	}
	for qi := 0; qi < 4; qi++ {
		checkEquivalence(t, ref, cl.co, vocab[qi%len(vocab)], "after shedding")
	}
}

// TestBackoffScheduleInjectable pins the retry backoff schedule via
// the injectable sleeper: no wall-clock waiting, exact doubling from
// the configured base, one sleep before each retry.
func TestBackoffScheduleInjectable(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	vocab := []string{"alpha", "beta"}
	doc := randomDoc(r, vocab)
	var mu []time.Duration
	rec := func(d time.Duration) { mu = append(mu, d) }
	cl := startReplicatedCluster(t, 1, 1, doc, dist.Config{
		Retries: 3, Backoff: 10 * time.Millisecond, Sleep: rec,
	})

	cl.gates[0][0].mode.Store(gateDown)
	if _, err := cl.co.Search(vocab[0]); err == nil {
		t.Fatal("Search succeeded with the only replica down")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(mu) != fmt.Sprint(want) {
		t.Fatalf("recorded backoff schedule %v, want %v", mu, want)
	}

	// Heal mid-schedule: a sleeper that re-opens the gate during the
	// first backoff proves the retry loop actually re-runs the call
	// and recovers.
	cl2 := startReplicatedClusterHealing(t, doc)
	if _, err := cl2.co.Search(vocab[0]); err != nil {
		t.Fatalf("Search did not recover via retry after heal: %v", err)
	}
	retries, _, _, _, _, _ := cl2.co.DistCounters()
	if retries == 0 {
		t.Fatal("no retries counted on the recovered call")
	}
}

// startReplicatedClusterHealing builds a one-replica cluster whose
// gate starts down and heals inside the first backoff sleep.
func startReplicatedClusterHealing(t *testing.T, doc string) *repCluster {
	t.Helper()
	var cl *repCluster
	healed := false
	cl = startReplicatedCluster(t, 1, 1, doc, dist.Config{
		Retries: 2, Backoff: time.Millisecond,
		Sleep: func(time.Duration) {
			if !healed {
				healed = true
				cl.gates[0][0].mode.Store(gateOK)
			}
		},
	})
	cl.gates[0][0].mode.Store(gateDown)
	return cl
}
