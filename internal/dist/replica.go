package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
)

// replicaTable is the coordinator's endpoint table: N replica base
// URLs per shard group, with per-replica failure marks and a
// per-group rotation counter that spreads idempotent reads
// round-robin across healthy replicas. Writes ignore the rotation —
// they go to every replica of every group.
type replicaTable struct {
	mu     sync.RWMutex
	groups [][]string // [group][replica] base URLs

	// fails[g][r] counts consecutive failures against a replica; a
	// non-zero count demotes it to the back of the read order until a
	// call succeeds again. rr[g] is group g's read-rotation cursor.
	fails [][]atomic.Int32
	rr    []atomic.Uint32
}

// newReplicaTable validates and copies the per-group replica URLs.
func newReplicaTable(groups [][]string) (*replicaTable, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("dist: no shard endpoints")
	}
	t := &replicaTable{
		groups: make([][]string, len(groups)),
		fails:  make([][]atomic.Int32, len(groups)),
		rr:     make([]atomic.Uint32, len(groups)),
	}
	for g, reps := range groups {
		if len(reps) == 0 {
			return nil, fmt.Errorf("dist: shard group %d has no replicas", g)
		}
		t.groups[g] = append([]string(nil), reps...)
		t.fails[g] = make([]atomic.Int32, len(reps))
	}
	return t, nil
}

// GroupEndpoints splits a flat endpoint list into consecutive replica
// sets of size replicas for DialReplicas — with replicas = 2 the
// first two endpoints form shard group 0, the next two group 1, and
// so on. replicas < 1 is treated as 1 (one single-replica group per
// endpoint). The list length must divide evenly.
func GroupEndpoints(endpoints []string, replicas int) ([][]string, error) {
	return groupsOf(endpoints, replicas)
}

// groupsOf splits a flat endpoint list into consecutive replica sets
// of size replicas (1 means one single-replica group per endpoint).
func groupsOf(endpoints []string, replicas int) ([][]string, error) {
	if replicas < 1 {
		replicas = 1
	}
	if len(endpoints) == 0 || len(endpoints)%replicas != 0 {
		return nil, fmt.Errorf("dist: %d endpoints do not divide into replica sets of %d",
			len(endpoints), replicas)
	}
	groups := make([][]string, 0, len(endpoints)/replicas)
	for i := 0; i < len(endpoints); i += replicas {
		groups = append(groups, endpoints[i:i+replicas])
	}
	return groups, nil
}

// count returns group g's replica count.
func (t *replicaTable) count(g int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.groups[g])
}

// maxReplicas returns the widest group's replica count.
func (t *replicaTable) maxReplicas() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	max := 0
	for _, g := range t.groups {
		if len(g) > max {
			max = len(g)
		}
	}
	return max
}

// endpoint returns replica r of group g's current base URL.
func (t *replicaTable) endpoint(g, r int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.groups[g][r]
}

// set repoints one replica — the recovery hook after a replica is
// restarted (possibly elsewhere) from a peer snapshot.
func (t *replicaTable) set(g, r int, url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.groups[g][r] = url
	t.fails[g][r].Store(0)
}

// order returns group g's replica indexes in this read's try order:
// round-robin rotation for spread, with replicas carrying unresolved
// failure marks demoted behind the healthy ones. Every replica is
// always included — when all are marked, the read still tries each.
func (t *replicaTable) order(g int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.groups[g])
	if n == 1 {
		return []int{0}
	}
	start := int(t.rr[g].Add(1)-1) % n
	out := make([]int, 0, n)
	var down []int
	for i := 0; i < n; i++ {
		r := (start + i) % n
		if t.fails[g][r].Load() == 0 {
			out = append(out, r)
		} else {
			down = append(down, r)
		}
	}
	return append(out, down...)
}

// ok clears replica (g, r)'s failure mark after a successful call.
func (t *replicaTable) ok(g, r int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.fails[g][r].Store(0)
}

// bad marks replica (g, r) failed, demoting it in the read order
// until a call succeeds again.
func (t *replicaTable) bad(g, r int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.fails[g][r].Add(1)
}

// FetchSnapshot pulls one corpus's group snapshot from a live peer
// replica — the self-healing path a restarting shard server takes
// when its local snapshot is missing or stale: restore from the
// shipped bytes and rejoin the cluster at the peer's current epoch
// without a coordinator round trip.
func FetchSnapshot(baseURL, corpus string, timeout time.Duration) (*persist.GroupSnapshot, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	u := baseURL + "/shard/v1/snapshot?corpus=" + url.QueryEscape(corpus)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: fetch peer snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: peer snapshot: status %d", resp.StatusCode)
	}
	snap, err := persist.DecodeGroup(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: peer snapshot: %w", err)
	}
	return snap, nil
}
