package dist

import (
	"repro/internal/xmltree"
)

// Tree-mutation helpers mirroring the in-process live engine's
// (package update) exactly: writes must produce the same live tree —
// same child order, same Dewey ordinals, same holes — on every
// replica, or scores and result IDs drift from the in-process
// engine's.

// rootWith returns a copy-on-write clone of root whose children are
// root's minus `without` (when non-nil) plus `extra` appended (when
// non-nil). Concurrent readers keep walking the old root; the shared
// child subtrees are immutable either way.
func rootWith(root *xmltree.Node, without, extra *xmltree.Node) *xmltree.Node {
	nr := &xmltree.Node{Kind: root.Kind, Tag: root.Tag, Text: root.Text, ID: root.ID}
	if len(root.Attrs) > 0 {
		nr.Attrs = make([]xmltree.Attr, len(root.Attrs))
		copy(nr.Attrs, root.Attrs)
	}
	n := len(root.Children)
	if extra != nil {
		n++
	}
	nr.Children = make([]*xmltree.Node, 0, n)
	for _, c := range root.Children {
		if c != without {
			nr.Children = append(nr.Children, c)
		}
	}
	if extra != nil {
		nr.Children = append(nr.Children, extra)
	}
	return nr
}

// rebuildTree deep-clones the live document into a fresh, compactly
// renumbered tree, leaving the old one untouched for in-flight
// readers — the compaction renumbering step, identical to update's.
func rebuildTree(root *xmltree.Node) *xmltree.Node {
	fresh := &xmltree.Node{Kind: root.Kind, Tag: root.Tag, Text: root.Text}
	if len(root.Attrs) > 0 {
		fresh.Attrs = make([]xmltree.Attr, len(root.Attrs))
		copy(fresh.Attrs, root.Attrs)
	}
	for _, c := range root.Children {
		fresh.AppendChild(c.Clone())
	}
	fresh.AssignIDs(nil)
	return fresh
}
