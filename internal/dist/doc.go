// Package dist turns the sharded fan-out/merge seam into a network
// boundary: xsactd -shard-server processes each serve one shard group
// over a versioned JSON wire API, and a Coordinator fans queries out
// over HTTP, aggregates global document frequencies, circulates the
// WAND threshold as per-leg score floors, and performs the SLCA spine
// fix-up and K-way ranked merge through the exact same
// shard.Fanout code the in-process engine runs — so distributed
// results are bit-identical (Float64bits scores, tie order, paging
// envelopes) to the in-process sharded engine.
//
// # Topology
//
// Every process replicates the document tree (it is the cheap part —
// the indexes dominate memory); each shard server builds and serves
// only its own group's inverted index. The coordinator holds the
// spine index (root + wrapper nodes, invariant under writes) and the
// aggregated ranking constants. Because ranking ships as integers
// (document frequencies and node counts) and both sides derive IDF
// with the same formula, every score is computed from identical
// inputs in identical order on either side of the wire.
//
// # Writes
//
// Writes route by entity ordinal under the epoch protocol: the
// coordinator serializes writers, computes the statistics delta
// locally, broadcasts one WriteOp (fragment + post-write ranking) to
// every leg, and publishes its new state only after every leg has
// acknowledged. Legs reject ops targeting a different epoch with 409,
// and queries carry the coordinator's epoch so a page is never
// assembled from mixed states. Removing a spine-rooted top-level
// element is rejected: the spine is the one structure both sides
// treat as write-invariant between compactions.
//
// # Failure semantics
//
// Per-request timeouts, bounded retries with backoff, and hedged
// reads live in the leg client. Ranked queries may degrade under an
// AllowPartial policy: a dead leg's contribution is dropped and the
// page is flagged (total = StreamTotalUnknown) — partial and marked,
// never silently wrong. Doc-order search is always strict, because a
// missing leg could promote spurious spine SLCAs. A leg restarted
// from its shipped group snapshot (package persist) resumes at the
// snapshot's epoch with bit-identical state.
//
// # Replication and admission control
//
// DialReplicas accepts N replica endpoints per shard group. Reads
// rotate round-robin across a group's healthy replicas and fail over
// to the next replica before spending the retry budget; hedged reads
// race two distinct replicas. Writes broadcast to every replica of
// every group; a replica that misses a write holds the op as pending
// (reads against it 409 until the next broadcast or Flush lands it),
// so lag costs latency, never answers. A crashed replica self-heals
// by fetching a live peer's group snapshot (FetchSnapshot against
// /shard/v1/snapshot) and rejoining at the peer's epoch.
//
// Config.MaxInflight bounds concurrently running ranked queries with
// a semaphore plus a bounded wait queue; queries past both watermarks
// are shed with ErrOverloaded (HTTP 503 + Retry-After upstream)
// without touching cluster state. Doc-order reads and writes are
// never shed. The chaos harness in chaos_test.go soaks kills,
// restarts-from-peer, partitions, slow legs, and shed bursts under a
// logged seed, checking every settled read bit-identical against a
// replayed in-process oracle.
package dist
