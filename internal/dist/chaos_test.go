package dist_test

// The chaos/soak harness: a seeded randomized schedule of replica
// kills, restarts (self-healed from a peer snapshot), partitions, and
// slow legs, interleaved with concurrent reads and epoch-lockstep
// writes. The correctness oracle is per-epoch replay: every
// successful read captured at a stable epoch must be bit-identical to
// an in-process reference rebuilt by replaying the committed op log
// to that epoch; flagged partial pages must be score-bit subsets of
// the reference's full ranking. After the schedule drains — every
// replica healed, every parked write flushed — the cluster must have
// reconverged exactly: epoch == committed ops, reads bit-identical,
// and writes flowing.
//
// The schedule is reproducible: the seed is logged on every run and
// can be pinned with XSACT_CHAOS_SEED. Short mode runs a trimmed
// smoke schedule; the full soak runs under -race in CI.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dewey"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// chaosOp is one committed cluster write, replayable against a fresh
// in-process engine.
type chaosOp struct {
	kind int // opAdd, opRemove, opCompact
	frag string
	ord  int
}

const (
	opAdd = iota
	opRemove
	opCompact
)

// replica lifecycle states the chaos scheduler tracks.
const (
	repAlive = iota
	repSlow
	repPartitioned
	repDead // state destroyed; healing requires a peer snapshot
)

// chaosRef replays committed op prefixes into cached per-epoch
// reference engines. Epoch e's reference is the base corpus with
// committed[:e] applied — exactly the state every replica serves at
// epoch e, ordinal holes and renumbering compactions included.
type chaosRef struct {
	mu    sync.Mutex
	doc   string
	k     int
	ops   []chaosOp // committed (epoch-bumping) ops, in order
	cache map[int]*update.Engine
}

func (c *chaosRef) committed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

func (c *chaosRef) append(op chaosOp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops = append(c.ops, op)
}

// at returns the reference engine for epoch e, or nil when e is ahead
// of the committed log (a write was mid-publish; the reader skips).
func (c *chaosRef) at(t *testing.T, e int) *update.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e > len(c.ops) {
		return nil
	}
	if ref, ok := c.cache[e]; ok {
		return ref
	}
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(c.doc), c.k))
	for i := 0; i < e; i++ {
		var err error
		switch op := c.ops[i]; op.kind {
		case opAdd:
			_, err = ref.AddEntity(xmltree.MustParseString(op.frag))
		case opRemove:
			err = ref.RemoveEntity(dewey.New(op.ord))
		case opCompact:
			err = ref.Compact()
		}
		if err != nil {
			t.Errorf("chaos ref replay op %d/%d: %v", i, e, err)
			return nil
		}
	}
	if ref.Epoch() != uint64(e) {
		t.Errorf("chaos ref replay: epoch %d after %d ops", ref.Epoch(), e)
		return nil
	}
	c.cache[e] = ref
	return ref
}

// fullRankingSet fingerprints every result of a query at one epoch as
// id@scorebits — the membership set a flagged partial page must be a
// subset of.
func fullRankingSet(ref *update.Engine, query string) map[string]bool {
	rs, err := ref.Search(query)
	if err != nil {
		return map[string]bool{}
	}
	set := make(map[string]bool, len(rs))
	for _, rr := range ref.RankResults(rs, query) {
		set[fmt.Sprintf("%s@%016x", rr.Node.ID, math.Float64bits(rr.Score))] = true
	}
	return set
}

func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("XSACT_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad XSACT_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

// TestChaos is the distributed layer's soak test. Reproduce a failure
// with XSACT_CHAOS_SEED=<logged seed>.
func TestChaos(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed %d (rerun: XSACT_CHAOS_SEED=%d go test -run TestChaos ./internal/dist/)", seed, seed)
	r := rand.New(rand.NewSource(seed))

	steps, readers := 120, 4
	if testing.Short() {
		steps, readers = 30, 2
	}

	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	// Query only terms the base corpus actually contains, so reads
	// exercise real result merging rather than degenerating into
	// no-match responses.
	var doc string
	var queryVocab []string
	for try := 0; len(queryVocab) < 3; try++ {
		if try > 50 {
			t.Fatal("could not generate a base corpus covering 3 vocab terms")
		}
		doc = randomDoc(r, vocab)
		queryVocab = queryVocab[:0]
		for _, term := range vocab {
			if strings.Contains(doc, term) {
				queryVocab = append(queryVocab, term)
			}
		}
	}
	const k, reps = 2, 2
	cl := startReplicatedCluster(t, k, reps, doc, dist.Config{
		Retries: 1, Backoff: time.Millisecond, Hedge: 2 * time.Millisecond,
		AllowPartial: true,
	})
	ref := &chaosRef{doc: doc, k: k, cache: make(map[int]*update.Engine)}

	// ---- concurrent readers ----
	var (
		done         = make(chan struct{})
		wg           sync.WaitGroup
		verified     atomic.Int64 // reads checked bit-identical against a replayed epoch
		subsetChecks atomic.Int64 // flagged partial pages checked as ranking subsets
		readErrs     atomic.Int64 // reads that failed mid-chaos (allowed)
	)
	readOnce := func(t *testing.T, rr *rand.Rand) {
		query := queryVocab[rr.Intn(len(queryVocab))]
		if rr.Intn(3) == 0 {
			query += " " + queryVocab[rr.Intn(len(queryVocab))]
		}
		opts := xseek.SearchOptions{Limit: rr.Intn(4) + 1, Offset: rr.Intn(2)}
		e0 := cl.co.Epoch()
		path := rr.Intn(4)
		var (
			err    error
			key    string
			total  = -2 // sentinel: not a paged read
			ranked []*xseek.RankedResult
		)
		switch path {
		case 0: // doc-order search, strict
			var rs []*xseek.Result
			rs, err = cl.co.Search(query)
			key = resultKey(rs)
		case 1:
			ranked, total, err = cl.co.SearchRankedPageStream(query, opts)
			key = rankedKey(ranked)
		case 2:
			wopts := opts
			wopts.Accuracy = xseek.AccuracyExact
			ranked, total, _, err = cl.co.SearchRankedPageWAND(query, wopts)
			key = rankedKey(ranked)
		case 3:
			wopts := opts
			wopts.Accuracy = xseek.AccuracyApprox
			ranked, total, _, err = cl.co.SearchRankedPageWAND(query, wopts)
			key = rankedKey(ranked)
		}
		e1 := cl.co.Epoch()
		if err != nil {
			// A no-match answer at a stable epoch is a real (negative)
			// result, not a failure: the reference must agree on it.
			var noMatch *index.NoMatchError
			if errors.As(err, &noMatch) && path == 0 && e0 == e1 {
				if refEng := ref.at(t, int(e0)); refEng != nil {
					if _, rerr := refEng.Search(query); !sameError(err, rerr) {
						t.Errorf("epoch %d query %q: got %v, reference %v", e0, query, err, rerr)
					} else {
						verified.Add(1)
					}
					return
				}
			}
			// Mid-chaos transport failures are allowed; wrong answers
			// are not.
			readErrs.Add(1)
			return
		}
		if e0 != e1 {
			return // epoch moved underfoot; no single reference applies
		}
		refEng := ref.at(t, int(e0))
		if refEng == nil {
			return // epoch published ahead of the writer's log append
		}
		if total == xseek.StreamTotalUnknown || path == 3 {
			// Flagged partial page (or approx WAND, whose totals are
			// contractually loose): every hit must still be a real
			// (id, score-bits) member of the reference's full ranking.
			set := fullRankingSet(refEng, query)
			for _, hit := range ranked {
				hk := fmt.Sprintf("%s@%016x", hit.Node.ID, math.Float64bits(hit.Score))
				if !set[hk] {
					t.Errorf("epoch %d query %q path %d: partial page hit %s not in reference ranking", e0, query, path, hk)
					return
				}
			}
			subsetChecks.Add(1)
			return
		}
		var wantKey string
		wantTotal := -2
		switch path {
		case 0:
			rs, rerr := refEng.Search(query)
			if rerr != nil {
				return // e.g. NoMatch raced with a term's last occurrence
			}
			wantKey = resultKey(rs)
		case 1:
			rs, tot, rerr := refEng.SearchRankedPageStream(query, opts)
			if rerr != nil {
				return
			}
			wantKey, wantTotal = rankedKey(rs), tot
		case 2:
			wopts := opts
			wopts.Accuracy = xseek.AccuracyExact
			rs, tot, _, rerr := refEng.SearchRankedPageWAND(query, wopts)
			if rerr != nil {
				return
			}
			wantKey, wantTotal = rankedKey(rs), tot
		}
		if key != wantKey {
			t.Errorf("epoch %d query %q path %d opts %+v:\n got  %s\n want %s", e0, query, path, opts, key, wantKey)
			return
		}
		if wantTotal != -2 && total != wantTotal {
			t.Errorf("epoch %d query %q path %d: total %d, want %d", e0, query, path, total, wantTotal)
			return
		}
		verified.Add(1)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(rseed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(rseed))
			for {
				select {
				case <-done:
					return
				default:
					readOnce(t, rr)
				}
			}
		}(seed + int64(i) + 1)
	}

	// ---- chaos + write schedule (single-threaded) ----
	status := [k][reps]int{} // repAlive etc.
	healthySibling := func(g, ri int) (int, bool) {
		for o := 0; o < reps; o++ {
			if o != ri && status[g][o] == repAlive {
				return o, true
			}
		}
		return -1, false
	}
	heal := func(g, ri int) {
		switch status[g][ri] {
		case repDead:
			peer, ok := healthySibling(g, ri)
			if !ok {
				return // no live peer to restore from; try later
			}
			cl.rebuildReplica(t, g, ri, peer, k)
		case repSlow, repPartitioned:
			cl.gates[g][ri].mode.Store(gateOK)
		}
		status[g][ri] = repAlive
	}

	var indet *chaosOp  // one op whose broadcast outcome is unknown
	var removable []int // ordinals of committed adds, valid until compaction
	settle := func() bool {
		// Settle the parked write, if any, before issuing another op.
		// Epoch arithmetic resolves the outcome: the writer is the only
		// committer, so epoch == committed ops once settled.
		if indet == nil {
			return true
		}
		if err := cl.co.Flush(); err != nil {
			return false
		}
		if cl.co.Epoch() == uint64(ref.committed()+1) {
			ref.append(*indet)
		}
		indet = nil
		return true
	}

	for step := 0; step < steps; step++ {
		// Fault injection.
		g, ri := r.Intn(k), r.Intn(reps)
		switch ev := r.Intn(8); ev {
		case 0: // kill: state destroyed; never orphan a group entirely
			if status[g][ri] == repAlive {
				if _, ok := healthySibling(g, ri); ok {
					cl.gates[g][ri].mode.Store(gateDown)
					cl.gates[g][ri].srv.Store(nil)
					status[g][ri] = repDead
				}
			}
		case 1: // partition: unreachable, state intact
			if status[g][ri] == repAlive {
				cl.gates[g][ri].mode.Store(gateDown)
				status[g][ri] = repPartitioned
			}
		case 2: // slow leg
			if status[g][ri] == repAlive {
				cl.gates[g][ri].delay.Store(int64(2 * time.Millisecond))
				cl.gates[g][ri].mode.Store(gateSlow)
				status[g][ri] = repSlow
			}
		case 3, 4: // heal something
			heal(g, ri)
		}

		// Write attempt.
		if r.Intn(5) < 3 && settle() {
			switch choice := r.Intn(10); {
			case choice < 6: // add
				frag := entityDoc(r, vocab)
				op := chaosOp{kind: opAdd, frag: frag}
				if id, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err == nil {
					ref.append(op)
					removable = append(removable, id[0])
				} else {
					indet = &op
				}
			case choice < 8 && len(removable) > 0: // remove a committed add
				i := r.Intn(len(removable))
				ord := removable[i]
				removable = append(removable[:i], removable[i+1:]...)
				op := chaosOp{kind: opRemove, ord: ord}
				if err := cl.co.RemoveEntity(dewey.New(ord)); err == nil {
					ref.append(op)
				} else {
					indet = &op
				}
			default: // compact (only logged if it actually bumped)
				e0 := cl.co.Epoch()
				op := chaosOp{kind: opCompact}
				removable = nil // compaction may renumber
				if err := cl.co.Compact(); err == nil {
					if cl.co.Epoch() == e0+1 {
						ref.append(op)
					}
				} else {
					indet = &op
				}
			}
		}
		// Periodic calm window: heal everything (two passes, so a dead
		// replica whose sibling was also faulted heals off the sibling
		// healed in pass one), settle any parked write — a half-applied
		// broadcast leaves one group's replicas a whole epoch ahead,
		// correctly 409-ing every read until it commits — and then
		// verify a few reads from this goroutine. No writer is
		// concurrent with them, so the epoch is provably stable and the
		// exact oracle must engage, even when the async readers keep
		// catching faults.
		if step%10 == 9 {
			for pass := 0; pass < 2; pass++ {
				for g := 0; g < k; g++ {
					for ri := 0; ri < reps; ri++ {
						heal(g, ri)
					}
				}
			}
			settle()
			for i := 0; i < 3; i++ {
				readOnce(t, r)
			}
		}
		time.Sleep(time.Millisecond)
	}

	// ---- drain: heal everything, settle the log, prove reconvergence ----
	for g := 0; g < k; g++ {
		for ri := 0; ri < reps; ri++ {
			heal(g, ri)
		}
	}
	for g := 0; g < k; g++ { // dead replicas whose sibling was faulted heal on the second pass
		for ri := 0; ri < reps; ri++ {
			if status[g][ri] != repAlive {
				heal(g, ri)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !settle() {
		if time.Now().After(deadline) {
			t.Fatal("pending write never settled after full heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	if got, want := cl.co.Epoch(), uint64(ref.committed()); got != want {
		t.Fatalf("drained cluster at epoch %d, committed ops %d", got, want)
	}
	final := ref.at(t, ref.committed())
	if final == nil {
		t.Fatal("no final reference")
	}
	for _, q := range vocab {
		checkEquivalence(t, final, cl.co, q, "drained")
	}
	// The drained cluster takes writes again, in lockstep.
	frag := entityDoc(r, vocab)
	if _, err := final.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("final ref add: %v", err)
	}
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("post-drain add: %v", err)
	}
	if err := final.Compact(); err != nil {
		t.Fatalf("final ref compact: %v", err)
	}
	if err := cl.co.Compact(); err != nil {
		t.Fatalf("post-drain compact: %v", err)
	}
	checkEquivalence(t, final, cl.co, vocab[0]+" "+vocab[1], "post-drain write")

	retries, hedges, degraded, legErrs, failovers, shed := cl.co.DistCounters()
	t.Logf("chaos done: %d verified exact reads, %d subset checks, %d tolerated read errors; counters retries=%d hedges=%d degraded=%d legErrs=%d failovers=%d shed=%d",
		verified.Load(), subsetChecks.Load(), readErrs.Load(), retries, hedges, degraded, legErrs, failovers, shed)
	if verified.Load() == 0 {
		t.Error("chaos harness verified zero reads; the oracle never engaged")
	}
}
