package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Server is one shard server: it replicates the document tree per
// corpus but builds and serves only its own group's inverted index,
// behind the /shard/v1 wire API. Queries are lock-free over an
// atomically swapped immutable state; writes serialize per corpus.
type Server struct {
	shardID int
	shards  int

	mu      sync.RWMutex
	corpora map[string]*corpus
}

// corpus is one served corpus's slot.
type corpus struct {
	writeMu sync.Mutex // serializes write / compact / ranking installs
	cur     atomic.Pointer[legState]
}

// legState is one immutable snapshot of a leg's corpus state. Every
// mutation installs a fresh state; queries load it once and never see
// a torn view.
type legState struct {
	epoch uint64
	// baseRoot is the tree at the last compaction (contiguous
	// ordinals); root is the live tree layered over it by the journal.
	baseRoot *xmltree.Node
	root     *xmltree.Node
	schema   *xseek.Schema
	// part/own are the partition planned at the last compaction; live
	// adds resolve to the last group, exactly as the coordinator
	// resolves them.
	part shard.Partition
	own  shard.Ownership
	// segs are this group's live segment subtrees; idx its index.
	segs []*xmltree.Node
	syms *index.SymbolTable
	idx  *index.Index
	// ranking is the coordinator-installed whole-corpus statistics;
	// nil until the first push — queries answer 503 before that.
	ranking *Ranking
	eng     *xseek.Engine
	leg     shard.Leg
	journal []update.JournalOp
}

func (s *legState) ready() bool { return s.ranking != nil }

// finish derives the query-serving machinery (IDF table, group
// engine, leg) from the state's raw parts. The IDF weights are
// computed from the pushed integers with the same formula the
// coordinator and the in-process engine use, so scores agree bit for
// bit.
func (s *legState) finish() {
	if s.ranking == nil {
		return
	}
	idf := make(map[string]float64, len(s.ranking.DF))
	for t, n := range s.ranking.DF {
		idf[t] = xseek.IDF(s.ranking.TotalNodes, n)
	}
	s.eng = xseek.FromPartsRanked(s.root, s.idx, s.schema, s.ranking.TotalNodes, idf)
	s.leg = shard.NewLocalLeg(s.root, s.schema, s.part, s.eng)
}

// NewServer creates a shard server for group shardID of a
// shards-process cluster.
func NewServer(shardID, shards int) (*Server, error) {
	if shards < 1 || shardID < 0 || shardID >= shards {
		return nil, fmt.Errorf("dist: shard id %d out of range for %d shards", shardID, shards)
	}
	return &Server{shardID: shardID, shards: shards, corpora: make(map[string]*corpus)}, nil
}

// ShardID returns the group this server serves.
func (sv *Server) ShardID() int { return sv.shardID }

// AddCorpus installs a corpus replica and builds this group's index
// over it. Every shard server (and the coordinator) must bootstrap
// from an identical tree — typically the same deterministic dataset
// seed — so the planned partitions agree.
func (sv *Server) AddCorpus(name string, root *xmltree.Node) error {
	st := bootstrapState(root, sv.shardID, sv.shards)
	c := &corpus{}
	c.cur.Store(st)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if _, dup := sv.corpora[name]; dup {
		return fmt.Errorf("dist: corpus %q already installed", name)
	}
	sv.corpora[name] = c
	return nil
}

// bootstrapState plans the partition and builds the group index for a
// clean tree. A group beyond the partition's clamp (fewer segments
// than shards) serves an empty index: it silences every query, which
// is exactly what the in-process engine's clamped fan-out computes.
func bootstrapState(root *xmltree.Node, shardID, shards int) *legState {
	schema := xseek.InferSchemaParallel(root, 0)
	part := shard.Plan(root, schema, shards)
	syms := index.NewSymbolTable()
	var segs []*xmltree.Node
	if shardID < len(part.Groups) {
		r := part.Groups[shardID]
		segs = part.Segments[r[0]:r[1]]
	}
	return &legState{
		baseRoot: root,
		root:     root,
		schema:   schema,
		part:     part,
		own:      part.Ownership(),
		segs:     segs,
		syms:     syms,
		idx:      index.BuildForestShared(root, segs, syms),
	}
}

// RestoreCorpus installs a corpus from a shipped group snapshot: the
// base tree is reparsed, the journal replayed through the same write
// path live ops take, and the recorded ranking installed — the
// restored leg resumes at the snapshot's epoch with bit-identical
// state.
func (sv *Server) RestoreCorpus(name string, snap *persist.GroupSnapshot) error {
	if snap.ShardID != sv.shardID || snap.Shards != sv.shards {
		return fmt.Errorf("dist: snapshot is for shard %d/%d, this server is %d/%d",
			snap.ShardID, snap.Shards, sv.shardID, sv.shards)
	}
	root, err := xmltree.ParseString(snap.BaseXML)
	if err != nil {
		return fmt.Errorf("dist: parse snapshot base: %w", err)
	}
	st := bootstrapState(root, sv.shardID, sv.shards)
	st.epoch = snap.Epoch - uint64(len(snap.Journal))
	ranking := Ranking{TotalNodes: snap.TotalNodes, DF: snap.DF}
	for i, jop := range snap.Journal {
		op := &WriteOp{Epoch: st.epoch, Remove: jop.Remove, Ord: jop.Ord, XML: jop.XML, Ranking: ranking}
		ns, err := applyWrite(st, op, sv.shardID)
		if err != nil {
			return fmt.Errorf("dist: replay snapshot op %d: %w", i, err)
		}
		st = ns
	}
	st.ranking = &ranking
	st.finish()
	c := &corpus{}
	c.cur.Store(st)
	sv.mu.Lock()
	sv.corpora[name] = c
	sv.mu.Unlock()
	return nil
}

func (sv *Server) corpus(name string) *corpus {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return sv.corpora[name]
}

// Epoch returns the corpus's current state version (0 if unknown).
func (sv *Server) Epoch(name string) uint64 {
	if c := sv.corpus(name); c != nil {
		return c.cur.Load().epoch
	}
	return 0
}

// ServeHTTP routes the /shard/v1 wire API.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := sv.corpus(r.URL.Query().Get("corpus"))
	if c == nil {
		http.Error(w, "dist: unknown corpus", http.StatusNotFound)
		return
	}
	switch r.URL.Path {
	case "/shard/v1/info":
		sv.handleInfo(w, c)
	case "/shard/v1/stats":
		sv.handleStats(w, c)
	case "/shard/v1/ranking":
		sv.handleRanking(w, r, c)
	case "/shard/v1/query":
		sv.handleQuery(w, r, c)
	case "/shard/v1/write":
		sv.handleWrite(w, r, c)
	case "/shard/v1/compact":
		sv.handleCompact(w, r, c)
	case "/shard/v1/snapshot":
		sv.handleSnapshot(w, c)
	default:
		http.NotFound(w, r)
	}
}

func (sv *Server) handleInfo(w http.ResponseWriter, c *corpus) {
	s := c.cur.Load()
	writeJSON(w, &InfoResponse{Epoch: s.epoch, ShardID: sv.shardID, Shards: sv.shards, Ready: s.ready()})
}

func (sv *Server) handleStats(w http.ResponseWriter, c *corpus) {
	s := c.cur.Load()
	df := make(map[string]int)
	s.idx.EachTerm(func(t string, n int) { df[t] = n })
	resp := &StatsResponse{Epoch: s.epoch, DF: df, Elements: s.idx.Stats().IndexedElements}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeFrame(w, resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (sv *Server) handleRanking(w http.ResponseWriter, r *http.Request, c *corpus) {
	var rk Ranking
	if err := json.NewDecoder(r.Body).Decode(&rk); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	s := c.cur.Load()
	ns := *s
	ns.ranking = &rk
	ns.finish()
	c.cur.Store(&ns)
	writeJSON(w, map[string]uint64{"epoch": ns.epoch})
}

func (sv *Server) handleQuery(w http.ResponseWriter, r *http.Request, c *corpus) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s := c.cur.Load()
	if !s.ready() {
		http.Error(w, "dist: ranking not installed", http.StatusServiceUnavailable)
		return
	}
	if req.Epoch != s.epoch {
		http.Error(w, fmt.Sprintf("dist: epoch mismatch: request %d, leg %d", req.Epoch, s.epoch), http.StatusConflict)
		return
	}
	env, err := serveQuery(s, &req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	env.Epoch = s.epoch
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeFrame(w, env); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveQuery executes one leg query against an immutable state,
// through the exact same shard.Leg implementation the in-process
// fan-out runs.
func serveQuery(s *legState, req *QueryRequest) (*Envelope, error) {
	acc := xseek.AccuracyExact
	if req.Approx {
		acc = xseek.AccuracyApprox
	}
	lq := shard.LegQuery{Query: req.Query, Terms: req.Terms, Limit: req.Limit, WAND: req.WAND, Accuracy: acc}
	switch req.Kind {
	case KindSearch:
		docs, err := s.leg.SearchLeg(lq)
		if err != nil {
			return nil, err
		}
		env := &Envelope{Total: len(docs.Results)}
		for _, r := range docs.Results {
			env.Hits = append(env.Hits, wireHit(r, 0))
		}
		for _, r := range docs.Boundary {
			env.Boundary = append(env.Boundary, wireHit(r, 0))
		}
		for _, id := range docs.SLCAs {
			env.SLCAs = append(env.SLCAs, id.String())
		}
		return env, nil
	case KindRanked:
		shared := &xseek.SharedThreshold{}
		shared.Raise(math.Float64frombits(req.FloorBits))
		page, err := s.leg.RankedLeg(lq, shared)
		if err != nil {
			return nil, err
		}
		env := &Envelope{
			Total:         page.Total,
			ThresholdBits: math.Float64bits(shared.Load()),
			Stats: WireStats{
				Bounded:       page.Stats.Bounded,
				Pruned:        page.Stats.Pruned,
				BlocksSkipped: page.Stats.BlocksSkipped,
				Terminated:    page.Stats.Terminated,
			},
		}
		for _, r := range page.Top {
			env.Hits = append(env.Hits, wireHit(r.Result, math.Float64bits(r.Score)))
		}
		for _, r := range page.Boundary {
			env.Boundary = append(env.Boundary, wireHit(r, 0))
		}
		for _, id := range page.SLCAs {
			env.SLCAs = append(env.SLCAs, id.String())
		}
		return env, nil
	case KindSubset:
		subset := make([]*xseek.Result, len(req.Subset))
		for i, h := range req.Subset {
			r, err := resolveHit(s.root, h)
			if err != nil {
				return nil, err
			}
			subset[i] = r
		}
		top, err := s.leg.RankSubsetLeg(lq, subset)
		if err != nil {
			return nil, err
		}
		env := &Envelope{Total: len(top)}
		for _, r := range top {
			env.Hits = append(env.Hits, wireHit(r.Result, math.Float64bits(r.Score)))
		}
		return env, nil
	case KindTF:
		counts := make([]int, len(req.Probes))
		for i, p := range req.Probes {
			id, err := parseID(p.ID)
			if err != nil {
				return nil, err
			}
			counts[i] = index.CountUnder(s.idx.Lookup(p.Term), id)
		}
		return &Envelope{Counts: counts}, nil
	default:
		return nil, fmt.Errorf("dist: unknown query kind %q", req.Kind)
	}
}

func wireHit(r *xseek.Result, scoreBits uint64) WireHit {
	return WireHit{
		ID:        r.Node.ID.String(),
		Match:     r.Match.ID.String(),
		Label:     r.Label,
		ScoreBits: scoreBits,
	}
}

// resolveHit reconstructs a Result from its wire form against this
// replica's tree.
func resolveHit(root *xmltree.Node, h WireHit) (*xseek.Result, error) {
	id, err := parseID(h.ID)
	if err != nil {
		return nil, err
	}
	node, err := resolveNode(root, id)
	if err != nil {
		return nil, err
	}
	mid, err := parseID(h.Match)
	if err != nil {
		return nil, err
	}
	match, err := resolveNode(root, mid)
	if err != nil {
		return nil, err
	}
	return &xseek.Result{Node: node, Match: match, Label: h.Label}, nil
}

func (sv *Server) handleWrite(w http.ResponseWriter, r *http.Request, c *corpus) {
	var op WriteOp
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	s := c.cur.Load()
	if op.Epoch+1 == s.epoch {
		// Idempotent retry of the op we already applied.
		writeJSON(w, map[string]uint64{"epoch": s.epoch})
		return
	}
	if op.Epoch != s.epoch {
		http.Error(w, fmt.Sprintf("dist: epoch mismatch: op %d, leg %d", op.Epoch, s.epoch), http.StatusConflict)
		return
	}
	ns, err := applyWrite(s, &op, sv.shardID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	ns.ranking = &op.Ranking
	ns.finish()
	c.cur.Store(ns)
	writeJSON(w, map[string]uint64{"epoch": ns.epoch})
}

// applyWrite produces the successor state for one write op. It is
// shared by the live write handler and snapshot replay; the caller
// installs the ranking and publishes. Tree mutation mirrors the
// in-process live engine exactly (copy-on-write root, appended or
// dropped child, ordinals never reused); only the owning group's
// index changes — adds merge the new entity's postings onto the last
// group, removes rebuild the victim's group over its surviving
// segments.
func applyWrite(s *legState, op *WriteOp, shardID int) (*legState, error) {
	ns := &legState{
		epoch:    s.epoch + 1,
		baseRoot: s.baseRoot,
		schema:   s.schema,
		part:     s.part,
		own:      s.own,
		segs:     s.segs,
		syms:     s.syms,
		idx:      s.idx,
	}
	if op.Remove {
		victim := childByOrdinal(s.root, op.Ord)
		if victim == nil || victim.Kind != xmltree.Element {
			return nil, fmt.Errorf("dist: no live top-level entity %d", op.Ord)
		}
		if s.own.Spine(victim.ID) {
			return nil, fmt.Errorf("dist: entity %d is spine-rooted; spine removals are not distributable", op.Ord)
		}
		ns.root = rootWith(s.root, victim, nil)
		if owner := s.own.Owner(victim.ID); owner == shardID {
			segs := make([]*xmltree.Node, 0, len(s.segs))
			for _, sg := range s.segs {
				if sg != victim {
					segs = append(segs, sg)
				}
			}
			ns.segs = segs
			ns.idx = index.BuildForestShared(ns.root, segs, s.syms)
		}
	} else {
		n, err := xmltree.ParseString(op.XML)
		if err != nil {
			return nil, fmt.Errorf("dist: parse write fragment: %w", err)
		}
		n.AssignIDs(dewey.New(op.Ord))
		ns.root = rootWith(s.root, nil, n)
		n.Parent = ns.root
		// Added entities belong to the last planned group, the same
		// rule Ownership resolves their ordinals with.
		if shardID == len(s.part.Groups)-1 {
			ent := index.BuildForestShared(ns.root, []*xmltree.Node{n}, s.syms)
			ns.idx = index.Merge(ns.root, s.idx, ent)
			ns.segs = append(s.segs[:len(s.segs):len(s.segs)], n)
		}
	}
	ns.schema = xseek.InferSchemaParallel(ns.root, 0)
	ns.journal = append(s.journal[:len(s.journal):len(s.journal)],
		update.JournalOp{Remove: op.Remove, Ord: op.Ord, XML: op.XML})
	return ns, nil
}

func (sv *Server) handleCompact(w http.ResponseWriter, r *http.Request, c *corpus) {
	var op CompactOp
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	s := c.cur.Load()
	if op.Epoch+1 == s.epoch {
		writeJSON(w, map[string]uint64{"epoch": s.epoch})
		return
	}
	if op.Epoch != s.epoch {
		http.Error(w, fmt.Sprintf("dist: epoch mismatch: op %d, leg %d", op.Epoch, s.epoch), http.StatusConflict)
		return
	}
	root := s.root
	if op.Renumber {
		// A removal is pending: prune and renumber, exactly as the
		// in-process compaction does.
		root = rebuildTree(s.root)
	}
	ns := bootstrapState(root, sv.shardID, sv.shards)
	ns.epoch = s.epoch + 1
	ns.ranking = s.ranking
	ns.finish()
	c.cur.Store(ns)
	writeJSON(w, map[string]uint64{"epoch": ns.epoch})
}

func (sv *Server) handleSnapshot(w http.ResponseWriter, c *corpus) {
	s := c.cur.Load()
	if !s.ready() {
		http.Error(w, "dist: ranking not installed", http.StatusServiceUnavailable)
		return
	}
	snap := &persist.GroupSnapshot{
		Epoch:      s.epoch,
		ShardID:    sv.shardID,
		Shards:     sv.shards,
		BaseXML:    xmltree.XMLString(s.baseRoot),
		Journal:    s.journal,
		TotalNodes: s.ranking.TotalNodes,
		DF:         s.ranking.DF,
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := persist.EncodeGroup(w, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// sortedCorpora lists the server's corpora (for diagnostics).
func (sv *Server) sortedCorpora() []string {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	out := make([]string, 0, len(sv.corpora))
	for name := range sv.corpora {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
