package dist

import (
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when the coordinator's admission control
// sheds a ranked query: the in-flight cap is full and the waiting
// queue is past its watermark. Shedding is load protection, not
// failure — the cluster state is untouched and the caller should
// retry after a short delay (the HTTP layer maps this to 503 with a
// Retry-After header). Doc-order reads and writes are never shed.
var ErrOverloaded = errors.New("dist: coordinator overloaded, retry later")

// admission is a bounded in-flight semaphore with a queue-depth
// watermark: up to max queries run concurrently, up to queue more
// wait for a slot, and everything beyond that is shed immediately.
// A nil *admission admits everything (admission control off).
type admission struct {
	sem     chan struct{}
	queue   int64
	waiting atomic.Int64
}

// newAdmission builds the semaphore. maxInflight <= 0 disables
// admission control; maxQueue < 0 disables queueing (shed as soon as
// the in-flight cap is hit), 0 defaults the watermark to maxInflight.
func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue == 0 {
		maxQueue = maxInflight
	} else if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{sem: make(chan struct{}, maxInflight), queue: int64(maxQueue)}
}

// acquire takes an in-flight slot, waiting in the bounded queue when
// the cap is full and returning ErrOverloaded past the watermark.
func (a *admission) acquire() error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queue {
		a.waiting.Add(-1)
		return ErrOverloaded
	}
	a.sem <- struct{}{}
	a.waiting.Add(-1)
	return nil
}

// release frees the slot acquire took.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.sem
}

// Inflight reports the currently admitted and queued ranked queries
// (both 0 when admission control is off).
func (a *admission) stats() (inflight, waiting int64) {
	if a == nil {
		return 0, 0
	}
	return int64(len(a.sem)), a.waiting.Load()
}
