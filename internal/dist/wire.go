package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format. Responses carrying query results are framed:
//
//	"XDW1" | uint32 payload length | JSON payload | uint32 CRC-32C
//
// (big-endian integers, CRC over the payload bytes). The frame fails
// closed: truncation, length mismatch, or any bit flip in the payload
// is an error, never a silently wrong score. Scores travel as
// math.Float64bits so a page reassembled from the wire is
// bit-identical to one computed in process; Dewey IDs travel in their
// canonical dotted string form.

// wireMagic opens every framed message.
const wireMagic = "XDW1"

// maxFrame bounds a frame's payload; a length prefix beyond it is
// rejected before any allocation.
const maxFrame = 1 << 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame frames v's JSON encoding.
func EncodeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [8]byte
	copy(hdr[:4], wireMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.Checksum(payload, crcTable))
	_, err = w.Write(sum[:])
	return err
}

// DecodeFrame reads one frame into v, failing closed on any header,
// length, or checksum violation.
func DecodeFrame(r io.Reader, v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("dist: truncated frame header: %w", err)
	}
	if string(hdr[:4]) != wireMagic {
		return fmt.Errorf("dist: bad frame magic %q", hdr[:4])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("dist: truncated frame payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return fmt.Errorf("dist: truncated frame checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("dist: frame checksum mismatch: %08x != %08x", got, want)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("dist: frame payload: %w", err)
	}
	return nil
}

// Query kinds. Each maps onto one shard.Leg method.
const (
	KindSearch = "search" // doc-order leg: SLCAs + entity results
	KindRanked = "ranked" // streamed/WAND ranked leg: top page
	KindSubset = "subset" // heap-select the top of an explicit subset
	KindTF     = "tf"     // batched postings-under-subtree counts
)

// QueryRequest is the body of POST /shard/v1/query.
type QueryRequest struct {
	// Epoch is the coordinator's state version; a leg at any other
	// epoch rejects with 409 so a page is never assembled from mixed
	// states.
	Epoch uint64 `json:"epoch"`
	Kind  string `json:"kind"`
	Query string `json:"query"`
	// Terms is the coordinator's tokenization, forwarded so both sides
	// agree without re-tokenizing.
	Terms []string `json:"terms,omitempty"`
	Limit int      `json:"limit,omitempty"`
	// WAND selects the score-bounded consumer for KindRanked; Approx
	// allows its early stop.
	WAND   bool `json:"wand,omitempty"`
	Approx bool `json:"approx,omitempty"`
	// FloorBits is a snapshot of the coordinator's shared WAND
	// threshold (Float64bits), the leg's starting score floor. Any
	// snapshot is a lower bound on the global k-th best score, so
	// staleness only costs pruning opportunity, never exactness.
	FloorBits uint64 `json:"floorBits,omitempty"`
	// Subset carries the explicit results for KindSubset (scores
	// unset); Probes the (term, subtree) pairs for KindTF.
	Subset []WireHit   `json:"subset,omitempty"`
	Probes []WireProbe `json:"probes,omitempty"`
}

// WireHit is one result on the wire. IDs are canonical Dewey strings
// resolved against the receiver's tree replica; ScoreBits is the
// ranked score as math.Float64bits (0 on doc-order hits).
type WireHit struct {
	ID        string `json:"id"`
	Match     string `json:"match"`
	Label     string `json:"label"`
	ScoreBits uint64 `json:"scoreBits,omitempty"`
}

// WireProbe asks for the posting count of one term inside one subtree.
type WireProbe struct {
	Term string `json:"term"`
	ID   string `json:"id"`
}

// WireStats mirrors xseek.WANDStats.
type WireStats struct {
	Bounded       bool  `json:"bounded,omitempty"`
	Pruned        int64 `json:"pruned,omitempty"`
	BlocksSkipped int64 `json:"blocksSkipped,omitempty"`
	Terminated    bool  `json:"terminated,omitempty"`
}

// Envelope is a leg's framed query response.
type Envelope struct {
	Epoch uint64 `json:"epoch"`
	// Hits are the leg's results (doc order for KindSearch, rank order
	// for KindRanked/KindSubset).
	Hits []WireHit `json:"hits,omitempty"`
	// SLCAs are the leg's kept (non-spine) SLCAs, document order.
	SLCAs []string `json:"slcas,omitempty"`
	// Boundary are the leg's spine-rooted entity results (document
	// order, scores unset): entities whose subtrees the partition
	// split across groups, which the coordinator merges cross-leg and
	// scores with whole-corpus counts.
	Boundary []WireHit `json:"boundary,omitempty"`
	// Total is the leg's full entity-result count, Boundary excluded
	// (xseek.StreamTotalUnknown after an approximate early stop).
	Total int `json:"total"`
	// ThresholdBits is the leg's final WAND threshold (Float64bits);
	// the coordinator folds it back into the shared threshold.
	ThresholdBits uint64    `json:"thresholdBits,omitempty"`
	Stats         WireStats `json:"stats,omitempty"`
	// Counts answers KindTF, one count per probe.
	Counts []int `json:"counts,omitempty"`
}

// Ranking is the whole-corpus ranking constants the coordinator
// pushes: integers only, so both sides derive bit-identical IDF
// weights with xseek.IDF.
type Ranking struct {
	TotalNodes int            `json:"totalNodes"`
	DF         map[string]int `json:"df"`
}

// WriteOp is the body of POST /shard/v1/write: one entity addition or
// removal, broadcast to every leg under the epoch protocol.
type WriteOp struct {
	// Epoch is the state version this op transforms; a leg already at
	// Epoch+1 treats the op as an idempotent retry.
	Epoch  uint64 `json:"epoch"`
	Remove bool   `json:"remove,omitempty"`
	Ord    int    `json:"ord"`
	XML    string `json:"xml,omitempty"`
	// Ranking is the post-write whole-corpus statistics, computed once
	// at the coordinator and installed by every leg.
	Ranking Ranking `json:"ranking"`
}

// CompactOp is the body of POST /shard/v1/compact. Renumber mirrors
// the in-process compaction decision: true exactly when a removal is
// pending, so both sides rebuild (and renumber) identically.
type CompactOp struct {
	Epoch    uint64 `json:"epoch"`
	Renumber bool   `json:"renumber"`
}

// InfoResponse describes a leg (GET /shard/v1/info).
type InfoResponse struct {
	Epoch   uint64 `json:"epoch"`
	ShardID int    `json:"shardId"`
	Shards  int    `json:"shards"`
	// Ready reports whether the ranking has been installed; until
	// then queries answer 503.
	Ready bool `json:"ready"`
}

// StatsResponse carries a leg's own index statistics
// (GET /shard/v1/stats) for the coordinator's global aggregation.
type StatsResponse struct {
	Epoch    uint64         `json:"epoch"`
	DF       map[string]int `json:"df"`
	Elements int            `json:"elements"`
}
