package dist

import (
	"fmt"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// resolveNode walks root's replica to the node carrying id. Positional
// indexing answers directly on cold trees; live roots have ordinal
// holes after removals, so a binary search over the (ordinal-sorted)
// children backs it up — the same discipline xseek's path walker uses.
// Resolution fails closed: a wire ID that does not name a live node is
// an error, never a misattributed result.
func resolveNode(root *xmltree.Node, id dewey.ID) (*xmltree.Node, error) {
	cur := root
	for _, ord := range id {
		next := childByOrdinal(cur, ord)
		if next == nil {
			return nil, fmt.Errorf("dist: no node at %v in tree replica", id)
		}
		cur = next
	}
	return cur, nil
}

// childByOrdinal finds the child carrying Dewey ordinal ord, or nil.
func childByOrdinal(parent *xmltree.Node, ord int) *xmltree.Node {
	cs := parent.Children
	if ord >= 0 && ord < len(cs) {
		if cid := cs[ord].ID; len(cid) > 0 && cid[len(cid)-1] == ord {
			return cs[ord]
		}
	}
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := (lo + hi) / 2
		cid := cs[mid].ID
		if len(cid) > 0 && cid[len(cid)-1] >= ord {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(cs) {
		if cid := cs[lo].ID; len(cid) > 0 && cid[len(cid)-1] == ord {
			return cs[lo]
		}
	}
	return nil
}

// parseID parses a canonical Dewey string off the wire.
func parseID(s string) (dewey.ID, error) {
	id, err := dewey.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("dist: bad wire ID %q: %w", s, err)
	}
	return id, nil
}
