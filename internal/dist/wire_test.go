package dist

// The wire frame fails closed: truncation, bit flips, and garbage must
// all come back as errors, never as a silently wrong envelope. The
// fuzzer hammers DecodeFrame with arbitrary bytes; the deterministic
// tests prove every strict prefix and every single-byte corruption of
// a valid frame is rejected.

import (
	"bytes"
	"math"
	"testing"
)

func sampleEnvelope() *Envelope {
	return &Envelope{
		Epoch: 7,
		Hits: []WireHit{
			{ID: "1.0", Match: "1.0.2", Label: "leaf", ScoreBits: math.Float64bits(1.25)},
			{ID: "3.1", Match: "3.1.0", Label: "leaf", ScoreBits: math.Float64bits(0.5)},
		},
		SLCAs:         []string{"1", "3.1"},
		Total:         17,
		ThresholdBits: math.Float64bits(0.25),
		Stats:         WireStats{Bounded: true, Pruned: 4, BlocksSkipped: 2},
		Counts:        []int{3, 0, 9},
	}
}

func encodeSample(t testing.TB) []byte {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, sampleEnvelope()); err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	data := encodeSample(t)
	var got Envelope
	if err := DecodeFrame(bytes.NewReader(data), &got); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	want := sampleEnvelope()
	if got.Epoch != want.Epoch || got.Total != want.Total ||
		got.ThresholdBits != want.ThresholdBits || got.Stats != want.Stats ||
		len(got.Hits) != len(want.Hits) || len(got.SLCAs) != len(want.SLCAs) ||
		len(got.Counts) != len(want.Counts) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, *want)
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, got.Hits[i], want.Hits[i])
		}
	}
}

// TestFrameTruncation feeds every strict prefix of a valid frame:
// each must fail (header, payload, or checksum cut short).
func TestFrameTruncation(t *testing.T) {
	data := encodeSample(t)
	for n := 0; n < len(data); n++ {
		var v Envelope
		if err := DecodeFrame(bytes.NewReader(data[:n]), &v); err == nil {
			t.Fatalf("prefix of length %d/%d decoded without error", n, len(data))
		}
	}
}

// TestFrameBitFlip corrupts each byte of a valid frame in turn: magic,
// length, payload, and checksum corruption must all be caught.
func TestFrameBitFlip(t *testing.T) {
	data := encodeSample(t)
	for i := 0; i < len(data); i++ {
		for _, flip := range []byte{0x01, 0x80} {
			mut := bytes.Clone(data)
			mut[i] ^= flip
			var v Envelope
			if err := DecodeFrame(bytes.NewReader(mut), &v); err == nil {
				t.Fatalf("flip 0x%02x at byte %d/%d decoded without error", flip, i, len(data))
			}
		}
	}
}

// FuzzLegEnvelopeDecode asserts DecodeFrame never panics and never
// over-allocates on arbitrary input, and that anything it does accept
// re-encodes to a decodable frame.
func FuzzLegEnvelopeDecode(f *testing.F) {
	f.Add(encodeSample(f))
	var empty bytes.Buffer
	if err := EncodeFrame(&empty, &Envelope{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("XDW1"))
	f.Add([]byte("XDW1\x00\x00\x00\x02{}\x00\x00\x00\x00"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Envelope
		if err := DecodeFrame(bytes.NewReader(data), &v); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, &v); err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		var again Envelope
		if err := DecodeFrame(bytes.NewReader(buf.Bytes()), &again); err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
	})
}
