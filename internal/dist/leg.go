package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/dewey"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// errEpochMismatch marks a leg response rejected for targeting a
// different state version. It is never retried at the transport
// level; the coordinator reloads its state and re-runs the whole
// fan-out instead, so a page is never assembled from mixed epochs.
var errEpochMismatch = errors.New("dist: leg epoch mismatch")

// Config tunes the coordinator's leg transport.
type Config struct {
	// Timeout bounds each HTTP attempt (default 5s).
	Timeout time.Duration
	// Retries is the number of additional attempts after a transport
	// failure (default 2); Backoff the delay before the first retry,
	// doubling each time (default 25ms). With replicas, one "attempt"
	// already tries every replica of the group — the retry loop only
	// re-runs after the whole replica set failed.
	Retries int
	Backoff time.Duration
	// Hedge, when > 0, launches a second identical read if the first
	// has not answered within this delay; the first response wins.
	// With replicas the hedge starts on the next replica in the read
	// rotation. Only idempotent query reads hedge — writes never do.
	Hedge time.Duration
	// AllowPartial lets ranked queries degrade when a leg is
	// unreachable after retries: the leg's contribution is dropped and
	// the page is flagged (total = xseek.StreamTotalUnknown). Doc-order
	// search stays strict regardless.
	AllowPartial bool
	// MaxInflight caps the ranked queries the coordinator admits
	// concurrently (0 = unlimited); MaxQueue is the queue-depth
	// watermark beyond the cap (0 defaults to MaxInflight, negative
	// sheds as soon as the cap is hit). Excess ranked queries fail
	// fast with ErrOverloaded instead of piling onto the legs;
	// doc-order reads and writes are never shed.
	MaxInflight int
	MaxQueue    int
	// Sleep is the retry/backoff sleeper (nil = time.Sleep). Tests
	// inject a fake clock here to assert backoff schedules without
	// wall-clock waiting.
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Counters are the coordinator's transport-health metrics.
type Counters struct {
	Retries   atomic.Int64
	Hedges    atomic.Int64
	Degraded  atomic.Int64
	LegErrs   atomic.Int64
	Failovers atomic.Int64
	Shed      atomic.Int64
}

// legClient issues wire calls to shard servers with per-request
// timeouts, read spreading and failover across a group's replicas,
// bounded retries with exponential backoff, and optional hedged
// reads.
type legClient struct {
	cfg      Config
	hc       *http.Client
	corpus   string
	reps     *replicaTable
	counters *Counters
}

func newLegClient(cfg Config, corpus string, reps *replicaTable, counters *Counters) *legClient {
	cfg = cfg.withDefaults()
	return &legClient{cfg: cfg, hc: &http.Client{}, corpus: corpus, reps: reps, counters: counters}
}

// terminal reports an error no retry can fix.
func terminal(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusConflict || se.code == http.StatusUnprocessableEntity ||
			se.code == http.StatusNotFound || se.code == http.StatusBadRequest
	}
	return false
}

// conflict reports a 409 epoch rejection — terminal for this replica
// (no retry can fix it) but still worth failing over: a sibling
// replica that has not applied a half-broadcast write yet may serve
// the requested epoch.
func conflict(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusConflict
}

// replicaFault reports whether err indicts the replica itself (down,
// hung, or erroring server-side) rather than the request; only these
// demote the replica in the read order.
func replicaFault(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("dist: leg status %d: %s", e.code, e.body) }

// query runs one leg query with replica spread/failover, retries, and
// hedging, decoding the framed envelope. One "attempt" walks group
// g's replicas in rotation order and fails over to the next replica
// on any per-replica error before the retry loop (and its backoff)
// ever engages; a request-shaped rejection (400/404/422) aborts the
// walk because every replica would reject it identically.
func (c *legClient) query(g int, req *QueryRequest) (*Envelope, error) {
	attempt := func() (*Envelope, error) { return c.spreadQuery(g, req) }
	run := attempt
	if c.cfg.Hedge > 0 {
		run = func() (*Envelope, error) { return hedged(c.cfg.Hedge, c.counters, attempt) }
	}
	var err error
	backoff := c.cfg.Backoff
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			c.counters.Retries.Add(1)
			c.cfg.Sleep(backoff)
			backoff *= 2
		}
		var env *Envelope
		if env, err = run(); err == nil {
			return env, nil
		}
		if terminal(err) {
			break
		}
	}
	c.counters.LegErrs.Add(1)
	if conflict(err) {
		var se *statusError
		errors.As(err, &se)
		return nil, fmt.Errorf("%w: %s", errEpochMismatch, se.body)
	}
	return nil, err
}

// spreadQuery tries group g's replicas once each in read-rotation
// order (healthy first), returning the first success.
func (c *legClient) spreadQuery(g int, req *QueryRequest) (*Envelope, error) {
	var err error
	for i, r := range c.reps.order(g) {
		if i > 0 {
			c.counters.Failovers.Add(1)
		}
		var env Envelope
		if err = c.postReplica(g, r, "/shard/v1/query", req, frameInto(&env)); err == nil {
			c.reps.ok(g, r)
			return &env, nil
		}
		if replicaFault(err) {
			c.reps.bad(g, r)
		}
		if terminal(err) && !conflict(err) {
			// The request itself is malformed or names unknown state;
			// every replica would reject it the same way.
			break
		}
	}
	return nil, err
}

// hedged races a second identical attempt if the first has not
// answered within the hedge delay; the first result wins and the
// loser's response is discarded.
func hedged[T any](delay time.Duration, counters *Counters, attempt func() (T, error)) (T, error) {
	type out struct {
		v   T
		err error
	}
	ch := make(chan out, 2)
	go func() { v, err := attempt(); ch <- out{v, err} }()
	t := time.NewTimer(delay)
	defer t.Stop()
	launched, pending := 1, 1
	var firstErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.v, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launched == 1 || pending == 0 {
				// Either the sole attempt failed before the hedge fired
				// (the retry loop, not a hedge, handles a known-bad
				// call), or both racers failed.
				var zero T
				return zero, firstErr
			}
			// One of two racers failed; wait for the sibling.
		case <-t.C:
			if launched == 1 {
				counters.Hedges.Add(1)
				launched, pending = 2, 2
				go func() { v, err := attempt(); ch <- out{v, err} }()
			}
		}
	}
}

// callReplica runs one non-query wire call (write, compact, ranking)
// against one specific replica, with retries but no hedging and no
// failover — write-path ops must reach every replica individually, so
// spreading them would defeat the point.
func (c *legClient) callReplica(g, r int, path string, body any, out any) error {
	var err error
	backoff := c.cfg.Backoff
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			c.counters.Retries.Add(1)
			c.cfg.Sleep(backoff)
			backoff *= 2
		}
		if err = c.postReplica(g, r, path, body, jsonInto(out)); err == nil {
			c.reps.ok(g, r)
			return nil
		}
		if replicaFault(err) {
			c.reps.bad(g, r)
		}
		if terminal(err) {
			break
		}
	}
	c.counters.LegErrs.Add(1)
	if conflict(err) {
		var se *statusError
		errors.As(err, &se)
		return fmt.Errorf("%w: %s", errEpochMismatch, se.body)
	}
	return err
}

// getReplica fetches one GET endpoint (info, stats, snapshot) from a
// specific replica.
func (c *legClient) getReplica(g, r int, path string, decode func(io.Reader) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(g, r, path), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(b))}
	}
	return decode(resp.Body)
}

// getSpread fetches one GET endpoint from any replica of group g,
// walking the read rotation (idempotent reads only).
func (c *legClient) getSpread(g int, path string, decode func(io.Reader) error) error {
	var err error
	for i, r := range c.reps.order(g) {
		if i > 0 {
			c.counters.Failovers.Add(1)
		}
		if err = c.getReplica(g, r, path, decode); err == nil {
			c.reps.ok(g, r)
			return nil
		}
		if replicaFault(err) {
			c.reps.bad(g, r)
		}
	}
	return err
}

func (c *legClient) url(g, r int, path string) string {
	return c.reps.endpoint(g, r) + path + "?corpus=" + url.QueryEscape(c.corpus)
}

func (c *legClient) postReplica(g, r int, path string, body any, decode func(io.Reader) error) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(g, r, path), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(b))}
	}
	if decode == nil {
		return nil
	}
	return decode(resp.Body)
}

func frameInto(v any) func(io.Reader) error {
	return func(r io.Reader) error { return DecodeFrame(r, v) }
}

func jsonInto(v any) func(io.Reader) error {
	if v == nil {
		return nil
	}
	return func(r io.Reader) error { return json.NewDecoder(r).Decode(v) }
}

// httpLeg is the remote shard.Leg: each coordinator state binds fresh
// legs to its epoch and tree replica, so queries through a stale
// state self-identify at the legs (409) instead of mixing epochs.
type httpLeg struct {
	cl    *legClient
	g     int
	epoch uint64
	root  *xmltree.Node
}

func (l *httpLeg) SearchLeg(q shard.LegQuery) (shard.LegDocs, error) {
	env, err := l.cl.query(l.g, &QueryRequest{Epoch: l.epoch, Kind: KindSearch, Query: q.Query, Terms: q.Terms})
	if err != nil {
		return shard.LegDocs{}, err
	}
	var out shard.LegDocs
	out.SLCAs, err = parseIDs(env.SLCAs)
	if err != nil {
		return shard.LegDocs{}, err
	}
	out.Results = make([]*xseek.Result, len(env.Hits))
	for i, h := range env.Hits {
		if out.Results[i], err = resolveHit(l.root, h); err != nil {
			return shard.LegDocs{}, err
		}
	}
	if out.Boundary, err = resolveHits(l.root, env.Boundary); err != nil {
		return shard.LegDocs{}, err
	}
	return out, nil
}

// resolveHits reconstructs a wire hit list against the coordinator's
// tree replica, nil for an empty list.
func resolveHits(root *xmltree.Node, hits []WireHit) ([]*xseek.Result, error) {
	if len(hits) == 0 {
		return nil, nil
	}
	out := make([]*xseek.Result, len(hits))
	for i, h := range hits {
		r, err := resolveHit(root, h)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (l *httpLeg) RankedLeg(q shard.LegQuery, sharedT *xseek.SharedThreshold) (shard.LegPage, error) {
	req := &QueryRequest{
		Epoch: l.epoch, Kind: KindRanked,
		Query: q.Query, Terms: q.Terms, Limit: q.Limit,
		WAND: q.WAND, Approx: q.Accuracy == xseek.AccuracyApprox,
	}
	if q.WAND && sharedT != nil {
		// Ship a snapshot of the cross-leg threshold as this leg's
		// starting score floor. Any snapshot is a lower bound on the
		// global k-th best score, so staleness only costs pruning
		// opportunity, never exactness.
		req.FloorBits = math.Float64bits(sharedT.Load())
	}
	env, err := l.cl.query(l.g, req)
	if err != nil {
		return shard.LegPage{}, err
	}
	if q.WAND && sharedT != nil {
		sharedT.Raise(math.Float64frombits(env.ThresholdBits))
	}
	var out shard.LegPage
	out.Total = env.Total
	out.Stats = xseek.WANDStats{
		Bounded:       env.Stats.Bounded,
		Pruned:        env.Stats.Pruned,
		BlocksSkipped: env.Stats.BlocksSkipped,
		Terminated:    env.Stats.Terminated,
	}
	out.SLCAs, err = parseIDs(env.SLCAs)
	if err != nil {
		return shard.LegPage{}, err
	}
	if out.Boundary, err = resolveHits(l.root, env.Boundary); err != nil {
		return shard.LegPage{}, err
	}
	out.Top = make([]*xseek.RankedResult, len(env.Hits))
	for i, h := range env.Hits {
		r, err := resolveHit(l.root, h)
		if err != nil {
			return shard.LegPage{}, err
		}
		out.Top[i] = &xseek.RankedResult{Result: r, Score: math.Float64frombits(h.ScoreBits)}
	}
	return out, nil
}

func (l *httpLeg) RankSubsetLeg(q shard.LegQuery, subset []*xseek.Result) ([]*xseek.RankedResult, error) {
	req := &QueryRequest{
		Epoch: l.epoch, Kind: KindSubset,
		Query: q.Query, Terms: q.Terms, Limit: q.Limit,
		Subset: make([]WireHit, len(subset)),
	}
	byID := make(map[string]*xseek.Result, len(subset))
	for i, r := range subset {
		req.Subset[i] = wireHit(r, 0)
		byID[req.Subset[i].ID] = r
	}
	env, err := l.cl.query(l.g, req)
	if err != nil {
		return nil, err
	}
	out := make([]*xseek.RankedResult, len(env.Hits))
	for i, h := range env.Hits {
		orig, ok := byID[h.ID]
		if !ok {
			return nil, fmt.Errorf("dist: leg %d ranked unknown subset entry %s", l.g, h.ID)
		}
		out[i] = &xseek.RankedResult{Result: orig, Score: math.Float64frombits(h.ScoreBits)}
	}
	return out, nil
}

func (l *httpLeg) TFUnderLeg(probes []shard.TFProbe) ([]int, error) {
	req := &QueryRequest{Epoch: l.epoch, Kind: KindTF, Probes: make([]WireProbe, len(probes))}
	for i, p := range probes {
		req.Probes[i] = WireProbe{Term: p.Term, ID: p.ID.String()}
	}
	env, err := l.cl.query(l.g, req)
	if err != nil {
		return nil, err
	}
	if len(env.Counts) != len(probes) {
		return nil, fmt.Errorf("dist: leg %d returned %d counts for %d probes", l.g, len(env.Counts), len(probes))
	}
	return env.Counts, nil
}

func parseIDs(ss []string) ([]dewey.ID, error) {
	if len(ss) == 0 {
		return nil, nil
	}
	out := make([]dewey.ID, len(ss))
	for i, s := range ss {
		id, err := parseID(s)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}
