package dist_test

// The distributed equivalence harness: every shard-level bit-identity
// property re-run through real HTTP servers and the coordinator. The
// legs here are httptest servers — each process-isolated in state (its
// own parse of the corpus, its own index) if not in address space; the
// true multi-process run lives in cmd/xsactd's TestShardServerProcesses.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// randomDoc mirrors the shard package's corpus generator: repeated
// entity containers with nested structure, keyword-bearing leaves, and
// the occasional term directly on a wrapper so spine fix-up runs.
func randomDoc(r *rand.Rand, vocab []string) string {
	var b strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		if depth >= 4 || r.Intn(3) == 0 {
			b.WriteString("<leaf>")
			for i := r.Intn(3) + 1; i > 0; i-- {
				b.WriteString(vocab[r.Intn(len(vocab))])
				b.WriteString(" ")
			}
			b.WriteString("</leaf>")
			return
		}
		d := r.Intn(3)
		fmt.Fprintf(&b, "<n%d>", d)
		for i := r.Intn(4) + 1; i > 0; i-- {
			emit(depth + 1)
		}
		fmt.Fprintf(&b, "</n%d>", d)
	}
	b.WriteString("<root>")
	if r.Intn(2) == 0 {
		b.WriteString(vocab[r.Intn(len(vocab))])
		b.WriteString(" ")
	}
	for i := r.Intn(6) + 2; i > 0; i-- {
		emit(1)
	}
	b.WriteString("</root>")
	return b.String()
}

// entityDoc builds one standalone entity fragment for live-add tests.
func entityDoc(r *rand.Rand, vocab []string) string {
	var b strings.Builder
	b.WriteString("<n0>")
	for i := r.Intn(3) + 1; i > 0; i-- {
		b.WriteString("<leaf>")
		for j := r.Intn(3) + 1; j > 0; j-- {
			b.WriteString(vocab[r.Intn(len(vocab))])
			b.WriteString(" ")
		}
		b.WriteString("</leaf>")
	}
	b.WriteString("</n0>")
	return b.String()
}

func resultKey(rs []*xseek.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.Node.ID.String() + "=" + r.Match.ID.String() + "=" + r.Label
	}
	return strings.Join(parts, ";")
}

// rankedKey fingerprints a ranked page down to the score bits, so two
// scores that happen to print alike still have to BE alike.
func rankedKey(rs []*xseek.RankedResult) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s@%016x", r.Node.ID, math.Float64bits(r.Score))
	}
	return strings.Join(parts, ";")
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	var na, nb *index.NoMatchError
	if errors.As(a, &na) != errors.As(b, &nb) {
		return false
	}
	if na != nil {
		return fmt.Sprint(na.Terms) == fmt.Sprint(nb.Terms)
	}
	return a.Error() == b.Error()
}

// cluster is one corpus served by k httptest shard legs plus a dialed
// coordinator.
type cluster struct {
	servers []*dist.Server
	https   []*httptest.Server
	co      *dist.Coordinator
}

const testCorpus = "c"

// startCluster boots k shard servers (each parsing its own copy of
// doc — no shared tree) and dials a coordinator over them.
func startCluster(t *testing.T, k int, doc string, cfg dist.Config) *cluster {
	return startClusterWrapped(t, k, doc, cfg, nil)
}

// startClusterWrapped is startCluster with a per-leg handler wrapper —
// the fault-injection hook (hangs, failures, request counting).
func startClusterWrapped(t *testing.T, k int, doc string, cfg dist.Config, wrap func(g int, h http.Handler) http.Handler) *cluster {
	t.Helper()
	cl := &cluster{}
	endpoints := make([]string, k)
	for g := 0; g < k; g++ {
		sv, err := dist.NewServer(g, k)
		if err != nil {
			t.Fatalf("NewServer(%d, %d): %v", g, k, err)
		}
		if err := sv.AddCorpus(testCorpus, xmltree.MustParseString(doc)); err != nil {
			t.Fatalf("leg %d AddCorpus: %v", g, err)
		}
		var h http.Handler = sv
		if wrap != nil {
			h = wrap(g, h)
		}
		hs := httptest.NewServer(h)
		t.Cleanup(hs.Close)
		cl.servers = append(cl.servers, sv)
		cl.https = append(cl.https, hs)
		endpoints[g] = hs.URL
	}
	co, err := dist.Dial(endpoints, testCorpus, xmltree.MustParseString(doc), cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cl.co = co
	return cl
}

// pageOptions are the limit/offset envelopes every equivalence check
// walks — the same set the in-process shard tests use.
var pageOptions = []xseek.SearchOptions{
	{Limit: 1}, {Limit: 2}, {Limit: 3, Offset: 1},
	{Limit: 2, Offset: 2}, {Limit: 100}, {Offset: 1},
}

// checkEquivalence runs one query through both sides and asserts
// bit-identity across every read path: doc-order search, full
// ranking, eager ranked pages, streamed ranked pages, and exact +
// approximate WAND pages.
func checkEquivalence(t *testing.T, ref refEngine, co *dist.Coordinator, query, ctx string) {
	t.Helper()
	want, wantErr := ref.Search(query)
	got, gotErr := co.Search(query)
	if !sameError(wantErr, gotErr) {
		t.Fatalf("%s query %q: err %v vs %v", ctx, query, gotErr, wantErr)
	}
	if resultKey(got) != resultKey(want) {
		t.Fatalf("%s query %q:\n got  %s\n want %s", ctx, query, resultKey(got), resultKey(want))
	}
	if wantErr != nil {
		return
	}
	wantRanked := ref.RankResults(want, query)
	gotRanked := co.RankResults(got, query)
	if rankedKey(gotRanked) != rankedKey(wantRanked) {
		t.Fatalf("%s query %q ranked:\n got  %s\n want %s", ctx, query, rankedKey(gotRanked), rankedKey(wantRanked))
	}
	for _, opts := range pageOptions {
		wantPage := ref.RankPage(want, query, opts)
		gotPage := co.RankPage(got, query, opts)
		if rankedKey(gotPage) != rankedKey(wantPage) {
			t.Fatalf("%s query %q page %+v:\n got  %s\n want %s",
				ctx, query, opts, rankedKey(gotPage), rankedKey(wantPage))
		}

		wantS, wantTotal, wsErr := ref.SearchRankedPageStream(query, opts)
		gotS, gotTotal, gsErr := co.SearchRankedPageStream(query, opts)
		if !sameError(wsErr, gsErr) {
			t.Fatalf("%s query %q stream %+v: err %v vs %v", ctx, query, opts, gsErr, wsErr)
		}
		if gotTotal != wantTotal || rankedKey(gotS) != rankedKey(wantS) {
			t.Fatalf("%s query %q stream %+v:\n got  total=%d %s\n want total=%d %s",
				ctx, query, opts, gotTotal, rankedKey(gotS), wantTotal, rankedKey(wantS))
		}

		for _, acc := range []xseek.Accuracy{xseek.AccuracyExact, xseek.AccuracyApprox} {
			wopts := opts
			wopts.Accuracy = acc
			wantW, wantWT, _, wwErr := ref.SearchRankedPageWAND(query, wopts)
			gotW, gotWT, _, gwErr := co.SearchRankedPageWAND(query, wopts)
			if !sameError(wwErr, gwErr) {
				t.Fatalf("%s query %q wand %+v acc=%d: err %v vs %v", ctx, query, opts, acc, gwErr, wwErr)
			}
			if rankedKey(gotW) != rankedKey(wantW) {
				t.Fatalf("%s query %q wand %+v acc=%d:\n got  %s\n want %s",
					ctx, query, opts, acc, rankedKey(gotW), rankedKey(wantW))
			}
			// Exact mode pins the total too. Approximate mode's total is
			// contractually "exact or StreamTotalUnknown": whether a side
			// stops draining depends on its index's block layout, which
			// legitimately differs between a tombstone-masked live index
			// and a rebuilt one — so totals must agree only when both
			// sides report a known one.
			if acc == xseek.AccuracyExact && gotWT != wantWT {
				t.Fatalf("%s query %q wand %+v: total %d vs %d", ctx, query, opts, gotWT, wantWT)
			}
			if acc == xseek.AccuracyApprox && gotWT >= 0 && wantWT >= 0 && gotWT != wantWT {
				t.Fatalf("%s query %q wand approx %+v: total %d vs %d", ctx, query, opts, gotWT, wantWT)
			}
		}
	}
}

func parseDewey(s string) (dewey.ID, error) { return dewey.Parse(s) }

// refEngine is the read surface shared by the in-process references
// (shard.Engine cold, update.Engine live).
type refEngine interface {
	Search(query string) ([]*xseek.Result, error)
	RankResults(results []*xseek.Result, query string) []*xseek.RankedResult
	RankPage(results []*xseek.Result, query string, opts xseek.SearchOptions) []*xseek.RankedResult
	SearchRankedPageStream(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, error)
	SearchRankedPageWAND(query string, opts xseek.SearchOptions) ([]*xseek.RankedResult, int, xseek.WANDStats, error)
}

// TestCoordinatorEquivalence is the tentpole property test: on random
// corpora and queries, the HTTP coordinator at K ∈ {1, 2, 4} must be
// bit-identical to the in-process sharded engine on every read path.
func TestCoordinatorEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	trees := 6
	queriesPerTree := 8
	for ti := 0; ti < trees; ti++ {
		doc := randomDoc(r, vocab)
		root := xmltree.MustParseString(doc)
		for _, k := range []int{1, 2, 4} {
			ref := shard.Build(root, k)
			cl := startCluster(t, k, doc, dist.Config{})
			for qi := 0; qi < queriesPerTree; qi++ {
				n := r.Intn(3) + 1
				terms := make([]string, n)
				for i := range terms {
					terms[i] = vocab[r.Intn(len(vocab))]
				}
				query := strings.Join(terms, " ")
				checkEquivalence(t, ref, cl.co, query, fmt.Sprintf("tree %d K=%d", ti, k))
			}
			if cq := cl.co.CleanQuery("alpah"); fmt.Sprint(cq) != fmt.Sprint(ref.CleanQuery("alpah")) {
				t.Fatalf("tree %d K=%d CleanQuery: %v vs %v", ti, k, cq, ref.CleanQuery("alpah"))
			}
		}
	}
}

// TestCoordinatorLiveEquivalence interleaves adds, removes, and
// compactions through the coordinator and an in-process live engine
// over the same corpus, checking bit-identity after every step —
// including the epoch bumps, ordinal holes after removals, and the
// renumbering compaction.
func TestCoordinatorLiveEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for ti := 0; ti < 3; ti++ {
		doc := randomDoc(r, vocab)
		for _, k := range []int{1, 2, 4} {
			ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), k))
			cl := startCluster(t, k, doc, dist.Config{})
			ctx := func(step int, op string) string {
				return fmt.Sprintf("tree %d K=%d step %d after %s", ti, k, step, op)
			}
			var ids []string // live entity IDs added through both sides
			for step := 0; step < 12; step++ {
				var op string
				switch choice := r.Intn(6); {
				case choice <= 2: // add
					frag := entityDoc(r, vocab)
					wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
					if err != nil {
						t.Fatalf("%s: ref add: %v", ctx(step, "add"), err)
					}
					gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag))
					if err != nil {
						t.Fatalf("%s: dist add: %v", ctx(step, "add"), err)
					}
					if gotID.String() != wantID.String() {
						t.Fatalf("%s: add ID %s vs %s", ctx(step, "add"), gotID, wantID)
					}
					ids = append(ids, gotID.String())
					op = "add " + gotID.String()
				case choice <= 4 && len(ids) > 0: // remove a live-added entity
					i := r.Intn(len(ids))
					id := ids[i]
					ids = append(ids[:i], ids[i+1:]...)
					did, _ := parseDewey(id)
					wantErr := ref.RemoveEntity(did)
					gotErr := cl.co.RemoveEntity(did)
					if !sameError(wantErr, gotErr) {
						t.Fatalf("%s: remove %s: %v vs %v", ctx(step, "remove"), id, gotErr, wantErr)
					}
					op = "remove " + id
				default: // compact
					if err := ref.Compact(); err != nil {
						t.Fatalf("%s: ref compact: %v", ctx(step, "compact"), err)
					}
					if err := cl.co.Compact(); err != nil {
						t.Fatalf("%s: dist compact: %v", ctx(step, "compact"), err)
					}
					ids = nil // compaction may renumber; stale handles invalid
					op = "compact"
				}
				if got, want := cl.co.Epoch(), ref.Epoch(); got != want {
					t.Fatalf("%s: epoch %d vs %d", ctx(step, op), got, want)
				}
				for qi := 0; qi < 3; qi++ {
					terms := make([]string, r.Intn(2)+1)
					for i := range terms {
						terms[i] = vocab[r.Intn(len(vocab))]
					}
					checkEquivalence(t, ref, cl.co, strings.Join(terms, " "), ctx(step, op))
				}
			}
		}
	}
}

// TestCoordinatorStatsEquivalence pins the aggregated corpus
// statistics — the integers every score is derived from — to the
// in-process engine's.
func TestCoordinatorStatsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	doc := randomDoc(r, vocab)
	root := xmltree.MustParseString(doc)
	for _, k := range []int{1, 2, 4} {
		ref := shard.Build(root, k)
		cl := startCluster(t, k, doc, dist.Config{})
		if got, want := cl.co.TotalNodes(), ref.TotalNodes(); got != want {
			t.Fatalf("K=%d TotalNodes %d vs %d", k, got, want)
		}
		for _, term := range vocab {
			if got, want := cl.co.DocFreq(term), ref.DocFreq(term); got != want {
				t.Fatalf("K=%d DocFreq(%q) %d vs %d", k, term, got, want)
			}
			if got, want := cl.co.EstimateResults(term), ref.EstimateResults(term); got != want {
				t.Fatalf("K=%d EstimateResults(%q) %d vs %d", k, term, got, want)
			}
		}
		if got, want := cl.co.IndexStats(), ref.IndexStats(); got != want {
			t.Fatalf("K=%d IndexStats %+v vs %+v", k, got, want)
		}
	}
}

// TestCoordinatorBoundaryEntity pins the cross-group entity case the
// chaos harness first exposed: a singleton wrapper tag is spine at
// partition time (its subtree is split across groups), then a live add
// makes the tag repeated, so the re-inferred schema turns the wrapper
// into an entity. From then on, SLCAs inside different groups lift to
// the same spine-rooted entity; the coordinator must merge them into
// one result with the document-order-first witness, placed in document
// order, and score it with term counts summed across groups — exactly
// as the monolithic engine does.
func TestCoordinatorBoundaryEntity(t *testing.T) {
	// w wraps four segments (item is repeated, so n0 and w stay spine);
	// misc and misc2 are singletons whose nearest entity, once n0
	// becomes one, is n0 itself — on both sides of the group boundary.
	doc := "<root><n0><w>" +
		"<item><leaf>alpha beta </leaf><leaf>gamma </leaf></item>" +
		"<misc>alpha gamma </misc>" +
		"<item><leaf>beta delta </leaf><leaf>delta </leaf></item>" +
		"<misc2>alpha delta </misc2>" +
		"</w></n0><item><leaf>gamma epsilon </leaf></item></root>"
	queries := []string{"alpha", "gamma", "delta", "alpha gamma", "alpha delta", "beta epsilon"}
	for _, k := range []int{2, 3, 4} {
		ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), k))
		cl := startCluster(t, k, doc, dist.Config{})
		ctx := func(step string) string { return fmt.Sprintf("K=%d %s", k, step) }
		for _, q := range queries {
			checkEquivalence(t, ref, cl.co, q, ctx("bootstrap"))
		}

		// The add makes n0 repeated — from here on it is an entity whose
		// subtree straddles the group boundary.
		frag := "<n0><leaf>epsilon </leaf></n0>"
		wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
		if err != nil {
			t.Fatalf("%s: ref add: %v", ctx("add"), err)
		}
		gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag))
		if err != nil {
			t.Fatalf("%s: dist add: %v", ctx("add"), err)
		}
		if gotID.String() != wantID.String() {
			t.Fatalf("%s: add ID %s vs %s", ctx("add"), gotID, wantID)
		}
		for _, q := range queries {
			checkEquivalence(t, ref, cl.co, q, ctx("after add"))
		}

		// Removing it flips n0 back to a singleton non-entity; matches
		// must stop lifting to the spine again.
		if err := ref.RemoveEntity(wantID); err != nil {
			t.Fatalf("%s: ref remove: %v", ctx("remove"), err)
		}
		if err := cl.co.RemoveEntity(gotID); err != nil {
			t.Fatalf("%s: dist remove: %v", ctx("remove"), err)
		}
		for _, q := range queries {
			checkEquivalence(t, ref, cl.co, q, ctx("after remove"))
		}
	}
}
