package dist_test

// Fault injection against the coordinator: hung legs, killed legs,
// degraded (partial) ranked pages, hedged reads, and restart from a
// shipped group snapshot. The contract under test: a failing leg may
// make a query slow, unavailable, or flagged-partial — never silently
// wrong.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// spreadDoc is a deterministic corpus whose entities all match
// "alpha", so any K splits the result set across every group.
func spreadDoc(entities int) string {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < entities; i++ {
		fmt.Fprintf(&b, "<n0><leaf>alpha beta</leaf><leaf>only%d gamma</leaf></n0>", i)
	}
	b.WriteString("</root>")
	return b.String()
}

// TestLegHangTimeoutRetry hangs one leg past the per-request timeout
// and asserts the strict contract: queries fail (not silently shrink),
// the transport records retries and the final leg error, and once the
// leg recovers the same coordinator serves bit-identical results again.
func TestLegHangTimeoutRetry(t *testing.T) {
	doc := spreadDoc(8)
	var hang atomic.Bool
	cl := startClusterWrapped(t, 2, doc,
		dist.Config{Timeout: 100 * time.Millisecond, Retries: 1, Backoff: time.Millisecond},
		func(g int, h http.Handler) http.Handler {
			if g != 1 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if hang.Load() && strings.HasPrefix(r.URL.Path, "/shard/v1/query") {
					time.Sleep(400 * time.Millisecond)
				}
				h.ServeHTTP(w, r)
			})
		})
	ref := shard.Build(xmltree.MustParseString(doc), 2)

	checkEquivalence(t, ref, cl.co, "alpha", "healthy before hang")

	hang.Store(true)
	if _, err := cl.co.Search("alpha"); err == nil {
		t.Fatal("doc-order search with a hung leg should fail strictly, got nil error")
	}
	if _, _, err := cl.co.SearchRankedPageStream("alpha", xseek.SearchOptions{Limit: 3}); err == nil {
		t.Fatal("ranked page with a hung leg (no AllowPartial) should fail, got nil error")
	}
	retries, _, _, legErrs, _, _ := cl.co.DistCounters()
	if retries == 0 {
		t.Fatalf("expected transport retries against the hung leg, counters: retries=%d", retries)
	}
	if legErrs == 0 {
		t.Fatalf("expected recorded leg errors after retries were exhausted, legErrs=%d", legErrs)
	}

	hang.Store(false)
	checkEquivalence(t, ref, cl.co, "alpha", "healthy after hang cleared")
}

// TestLegKilledDegradedRanked kills one leg of an AllowPartial
// coordinator and asserts the degradation contract: ranked pages come
// back flagged (total unknown) containing only results whose scores
// are bit-identical to the full reference ranking — a partial answer,
// never a wrong one — while doc-order search stays strictly
// unavailable.
func TestLegKilledDegradedRanked(t *testing.T) {
	doc := spreadDoc(8)
	cl := startCluster(t, 2, doc, dist.Config{
		Timeout: 200 * time.Millisecond, Retries: -1, Backoff: time.Millisecond,
		AllowPartial: true,
	})
	ref := shard.Build(xmltree.MustParseString(doc), 2)

	checkEquivalence(t, ref, cl.co, "alpha", "healthy before kill")

	// Reference full ranking: the universe of (result, score) pairs any
	// degraded page may draw from.
	full, _, err := ref.SearchRankedPageStream("alpha", xseek.SearchOptions{Limit: 100})
	if err != nil {
		t.Fatalf("reference ranking: %v", err)
	}
	valid := make(map[string]bool, len(full))
	for _, r := range full {
		valid[rankedKey([]*xseek.RankedResult{r})] = true
	}

	cl.https[1].Close() // kill leg 1

	page, total, err := cl.co.SearchRankedPageStream("alpha", xseek.SearchOptions{Limit: 4})
	if err != nil {
		t.Fatalf("degraded ranked page should succeed, got %v", err)
	}
	if total != xseek.StreamTotalUnknown {
		t.Fatalf("degraded page must be flagged: total = %d, want %d", total, xseek.StreamTotalUnknown)
	}
	if len(page) == 0 {
		t.Fatal("degraded page lost the surviving leg's results too")
	}
	for _, r := range page {
		if key := rankedKey([]*xseek.RankedResult{r}); !valid[key] {
			t.Fatalf("degraded page contains %s, which is not in the reference ranking — silently wrong", key)
		}
	}
	_, _, degraded, _, _, _ := cl.co.DistCounters()
	if degraded == 0 {
		t.Fatalf("expected degraded counter > 0 after serving a partial page")
	}

	// Doc-order search must not degrade: a missing leg could promote
	// spurious spine SLCAs, which would be wrong rather than partial.
	if _, err := cl.co.Search("alpha"); err == nil {
		t.Fatal("doc-order search with a dead leg must fail even under AllowPartial")
	}
}

// TestHedgedReads delays a leg's first query response past the hedge
// threshold and asserts the duplicate read was launched and the
// results stayed correct.
func TestHedgedReads(t *testing.T) {
	doc := spreadDoc(6)
	var slowOnce atomic.Bool
	slowOnce.Store(true)
	cl := startClusterWrapped(t, 2, doc,
		dist.Config{Timeout: 2 * time.Second, Retries: -1, Hedge: 20 * time.Millisecond},
		func(g int, h http.Handler) http.Handler {
			if g != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/shard/v1/query") && slowOnce.CompareAndSwap(true, false) {
					time.Sleep(300 * time.Millisecond)
				}
				h.ServeHTTP(w, r)
			})
		})
	ref := shard.Build(xmltree.MustParseString(doc), 2)

	checkEquivalence(t, ref, cl.co, "alpha", "hedged first query")
	_, hedges, _, _, _, _ := cl.co.DistCounters()
	if hedges == 0 {
		t.Fatalf("expected a hedged read to have been launched, hedges=%d", hedges)
	}
}

// TestSnapshotRestart ships a leg's group snapshot, kills the leg,
// restores a brand-new server process-equivalent from the snapshot,
// repoints the coordinator, and asserts bit-identical recovery — tree,
// epoch, journal replay, and every read path.
func TestSnapshotRestart(t *testing.T) {
	doc := spreadDoc(8)
	cl := startCluster(t, 2, doc, dist.Config{
		Timeout: 300 * time.Millisecond, Retries: -1, Backoff: time.Millisecond,
	})
	ref := update.WrapSharded(shard.Build(xmltree.MustParseString(doc), 2))

	// A write burst the snapshot must carry: two adds and a removal of
	// the first (leaving an ordinal hole in the journal replay).
	frags := []string{
		"<n0><leaf>delta alpha</leaf></n0>",
		"<n0><leaf>epsilon alpha</leaf></n0>",
	}
	var firstID string
	for i, frag := range frags {
		wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
		if err != nil {
			t.Fatalf("ref add %d: %v", i, err)
		}
		gotID, err := cl.co.AddEntity(xmltree.MustParseString(frag))
		if err != nil {
			t.Fatalf("dist add %d: %v", i, err)
		}
		if gotID.String() != wantID.String() {
			t.Fatalf("add %d: ID %s vs %s", i, gotID, wantID)
		}
		if i == 0 {
			firstID = gotID.String()
		}
	}
	did, err := parseDewey(firstID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RemoveEntity(did); err != nil {
		t.Fatalf("ref remove: %v", err)
	}
	if err := cl.co.RemoveEntity(did); err != nil {
		t.Fatalf("dist remove: %v", err)
	}
	checkEquivalence(t, ref, cl.co, "alpha", "after write burst")

	data, err := cl.co.ShipSnapshot(1)
	if err != nil {
		t.Fatalf("ShipSnapshot: %v", err)
	}
	snap, err := persist.DecodeGroup(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("DecodeGroup: %v", err)
	}
	if snap.Epoch != cl.co.Epoch() {
		t.Fatalf("snapshot epoch %d, coordinator at %d", snap.Epoch, cl.co.Epoch())
	}

	cl.https[1].Close() // the leg process dies
	if _, err := cl.co.Search("alpha"); err == nil {
		t.Fatal("search with a dead leg should fail before recovery")
	}

	// A replacement process restores from the shipped bytes and is
	// repointed without redialing.
	sv, err := dist.NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.RestoreCorpus(testCorpus, snap); err != nil {
		t.Fatalf("RestoreCorpus: %v", err)
	}
	hs := httptestNewServer(t, sv)
	cl.co.SetLegEndpoint(1, hs)
	if got, want := sv.Epoch(testCorpus), cl.co.Epoch(); got != want {
		t.Fatalf("restored leg at epoch %d, coordinator at %d", got, want)
	}

	checkEquivalence(t, ref, cl.co, "alpha", "after snapshot restore")
	checkEquivalence(t, ref, cl.co, "delta", "after snapshot restore")
	checkEquivalence(t, ref, cl.co, "epsilon", "after snapshot restore")

	// The restored cluster keeps taking writes.
	frag := "<n0><leaf>zeta alpha</leaf></n0>"
	if _, err := ref.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.co.AddEntity(xmltree.MustParseString(frag)); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	checkEquivalence(t, ref, cl.co, "zeta", "write after restore")
	if err := ref.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cl.co.Compact(); err != nil {
		t.Fatalf("compact after restore: %v", err)
	}
	checkEquivalence(t, ref, cl.co, "alpha", "compact after restore")
}

// TestCoordinatorConcurrentQueriesAndWrites races readers against the
// write path — the test CI runs under the race detector. Readers may
// observe cross-epoch churn as a retried-then-failed epoch error,
// never a torn page.
func TestCoordinatorConcurrentQueriesAndWrites(t *testing.T) {
	doc := spreadDoc(8)
	cl := startCluster(t, 2, doc, dist.Config{Retries: 1, Backoff: time.Millisecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.co.Search("alpha"); err != nil && !strings.Contains(err.Error(), "epoch") {
					select {
					case errs <- fmt.Errorf("search: %w", err):
					default:
					}
				}
				if _, _, err := cl.co.SearchRankedPageStream("alpha beta", xseek.SearchOptions{Limit: 3}); err != nil && !strings.Contains(err.Error(), "epoch") {
					select {
					case errs <- fmt.Errorf("ranked: %w", err):
					default:
					}
				}
			}
		}()
	}
	var ids []string
	for i := 0; i < 8; i++ {
		frag := fmt.Sprintf("<n0><leaf>alpha fresh%d</leaf></n0>", i)
		id, err := cl.co.AddEntity(xmltree.MustParseString(frag))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		ids = append(ids, id.String())
		if i == 3 {
			did, _ := parseDewey(ids[0])
			if err := cl.co.RemoveEntity(did); err != nil {
				t.Fatalf("remove: %v", err)
			}
		}
		if i == 5 {
			if err := cl.co.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("concurrent reader saw a non-epoch error: %v", err)
	default:
	}

	// Settled cluster must equal a cold engine over the final tree.
	ref := shard.Build(xmltree.MustParseString(xmltree.XMLString(cl.co.Root())), 2)
	want, _ := ref.Search("alpha")
	got, err := cl.co.Search("alpha")
	if err != nil {
		t.Fatalf("settled search: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("settled result count %d vs cold rebuild %d", len(got), len(want))
	}
}

// httptestNewServer wraps httptest.NewServer with cleanup, returning
// the URL.
func httptestNewServer(t *testing.T, h http.Handler) string {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs.URL
}
