// Package slca computes Smallest Lowest Common Ancestors (SLCAs) of
// XML keyword queries — the match semantics used by XSeek and hence by
// XSACT's search-engine substrate.
//
// Given posting lists S1..Sk (one per keyword), a node v is an LCA
// candidate if its subtree contains at least one node from every list;
// v is an SLCA if additionally no proper descendant of v is also a
// candidate. Results are returned in document order.
//
// Two algorithms are provided: Naive, a simple quadratic-ish scan used
// as a correctness oracle, and IndexedLookupEager, the classic
// efficient algorithm that walks the smallest list and probes the
// others with binary search (Xu & Papakonstantinou, SIGMOD 2005).
package slca

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
)

// Compute returns the SLCAs of the given posting lists using the
// efficient algorithm. It is the entry point callers should use.
func Compute(lists []index.PostingList) []dewey.ID {
	return IndexedLookupEager(lists)
}

// Naive computes SLCAs by materializing, for every node in the first
// list, the LCA closure against all other lists, then removing
// non-smallest results. It is O(n²) in the worst case and exists as a
// correctness oracle for tests.
func Naive(lists []index.PostingList) []dewey.ID {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		// SLCA of a single keyword list: the nodes themselves, minus
		// ancestors of other matches.
		return removeAncestors(dedupe(cloneIDs(lists[0])))
	}
	// For every element of the first list, compute the smallest LCA it
	// can form with one element from each other list.
	var candidates []dewey.ID
	for _, a := range lists[0] {
		cur := a.Clone()
		for _, other := range lists[1:] {
			best := bestLCAWith(cur, other)
			cur = best
		}
		candidates = append(candidates, cur)
	}
	return removeAncestors(dedupe(candidates))
}

// bestLCAWith returns the deepest LCA formable between id and any
// element of list.
func bestLCAWith(id dewey.ID, list index.PostingList) dewey.ID {
	best := dewey.Root()
	for _, b := range list {
		l := id.LCA(b)
		if l.Level() > best.Level() {
			best = l
		}
	}
	return best
}

// IndexedLookupEager implements the Indexed Lookup Eager SLCA
// algorithm. It iterates over the smallest posting list; for each node
// v it finds, in every other list, the closest match to v's left and
// right (binary search in document order) and keeps the deeper of the
// two LCAs. Candidate SLCAs are emitted eagerly and dominated
// (ancestor) candidates removed on the fly.
func IndexedLookupEager(lists []index.PostingList) []dewey.ID {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		return removeAncestors(dedupe(cloneIDs(lists[0])))
	}
	// Walk the smallest list for efficiency.
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	others := make([]index.PostingList, 0, len(lists)-1)
	for i, l := range lists {
		if i != smallest {
			others = append(others, l)
		}
	}

	var out []dewey.ID
	push := func(cand dewey.ID) {
		// Maintain out as a document-ordered list of incomparable
		// nodes. Candidates arrive roughly in document order of the
		// driving list, but their LCAs may repeat or nest, so compare
		// against the current tail.
		for len(out) > 0 {
			last := out[len(out)-1]
			if last.Equal(cand) {
				return // duplicate
			}
			if last.IsAncestorOf(cand) {
				// cand is smaller (deeper) — it replaces the ancestor.
				out = out[:len(out)-1]
				continue
			}
			if cand.IsAncestorOf(last) {
				return // existing result is smaller
			}
			break
		}
		out = append(out, cand)
	}

	for _, v := range lists[smallest] {
		cand := v.Clone()
		dead := false
		for _, other := range others {
			l := closestLCA(cand, other)
			if l == nil {
				dead = true
				break
			}
			cand = l
		}
		if !dead {
			push(cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return removeAncestors(out)
}

// closestLCA returns the deepest LCA of id with either the closest
// left or closest right neighbour in list (document order), or nil if
// the list is empty.
func closestLCA(id dewey.ID, list index.PostingList) dewey.ID {
	if len(list) == 0 {
		return nil
	}
	// First position >= id in document order.
	pos := sort.Search(len(list), func(i int) bool { return list[i].Compare(id) >= 0 })
	best := dewey.Root()
	if pos < len(list) {
		if l := id.LCA(list[pos]); l.Level() >= best.Level() {
			best = l
		}
	}
	if pos > 0 {
		if l := id.LCA(list[pos-1]); l.Level() > best.Level() {
			best = l
		}
	}
	return best
}

// removeAncestors removes every ID that is a proper ancestor of
// another ID in the list, leaving only "smallest" (deepest) nodes.
// Input must be sorted in document order and duplicate-free. In
// document order a node's descendants immediately follow it, so a node
// has a descendant in the list iff the next element is one — a single
// pass over adjacent pairs suffices.
func removeAncestors(sorted []dewey.ID) []dewey.ID {
	var out []dewey.ID
	for i, id := range sorted {
		if i+1 < len(sorted) && id.IsAncestorOf(sorted[i+1]) {
			continue
		}
		out = append(out, id)
	}
	return out
}

func dedupe(ids []dewey.ID) []dewey.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || !ids[i-1].Equal(id) {
			out = append(out, id)
		}
	}
	return out
}

func cloneIDs(ids index.PostingList) []dewey.ID {
	out := make([]dewey.ID, len(ids))
	for i, id := range ids {
		out[i] = id.Clone()
	}
	return out
}

// ELCA computes Exclusive LCAs: nodes v such that v's subtree contains
// every keyword even after removing the subtrees of v's descendant
// SLCAs. ELCA is a superset of SLCA and is provided for completeness
// of the XSeek substrate (some XSeek variants return ELCAs).
func ELCA(lists []index.PostingList) []dewey.ID {
	slcas := IndexedLookupEager(lists)
	if len(slcas) == 0 {
		return nil
	}
	// A node is an ELCA iff, excluding matches under its descendant
	// SLCAs, it still covers all keywords. Check every ancestor of
	// every SLCA (small sets in practice).
	seen := make(map[string]bool)
	var out []dewey.ID
	consider := func(v dewey.ID) {
		key := v.String()
		if seen[key] {
			return
		}
		seen[key] = true
		if isELCA(v, lists, slcas) {
			out = append(out, v)
		}
	}
	for _, s := range slcas {
		consider(s)
		cur := s
		for {
			p, ok := cur.Parent()
			if !ok {
				break
			}
			consider(p)
			cur = p
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// isELCA reports whether v contains a witness of every keyword that is
// not under a proper-descendant candidate of v. A node is a candidate
// iff it contains all keywords, which holds exactly for the
// ancestors-or-selves of SLCAs; since candidacy is upward closed, a
// match m under v is excluded iff the child of v on the path to m is
// itself a candidate (i.e. is an ancestor-or-self of some SLCA).
func isELCA(v dewey.ID, lists []index.PostingList, slcas []dewey.ID) bool {
	for _, list := range lists {
		found := false
		for _, m := range list {
			if !v.IsAncestorOrSelf(m) {
				continue
			}
			if m.Equal(v) {
				found = true // witness at v itself is never excluded
				break
			}
			child := m[:v.Level()+1]
			excluded := false
			for _, s := range slcas {
				if child.IsAncestorOrSelf(s) {
					excluded = true
					break
				}
			}
			if !excluded {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
