package slca

import (
	"sort"
	"sync/atomic"

	"repro/internal/dewey"
	"repro/internal/index"
)

// Algorithm names one SLCA evaluation strategy.
type Algorithm string

const (
	// AlgAuto lets the cost planner choose between the eager variants.
	AlgAuto Algorithm = "auto"
	// AlgIndexedLookup is IndexedLookupEager: walk the smallest list,
	// binary-search the others. Wins when the driving list is much
	// shorter than the rest (|S1|·k·log|S| ≪ Σ|Si|).
	AlgIndexedLookup Algorithm = "indexed-lookup-eager"
	// AlgScanEager is ScanEager: walk the smallest list, advance merge
	// pointers through the others. Wins when list sizes are uniform —
	// one linear pass beats |S1|·log|S| random probes.
	AlgScanEager Algorithm = "scan-eager"
	// AlgNaive is the quadratic correctness oracle.
	AlgNaive Algorithm = "naive"
)

// DefaultSkewThreshold is the Max/Min list-length ratio above which the
// planner prefers IndexedLookupEager over ScanEager. Calibrated with
// BenchmarkPlanner (see BENCH_PLANNER.json): at skew 1 the merge is
// ~30% faster than binary probing and stays ahead through skew 32, the
// two cross at skew ≈ 48, and by skew 256 indexed lookup wins ~4.5x.
const DefaultSkewThreshold = 48.0

// Plan picks the cheaper eager algorithm from posting-list shape
// statistics: indexed lookup when a rare term makes the driving list
// much shorter than the longest list, scan otherwise. It is a pure
// function so callers can record or override the decision.
func Plan(stats index.PlanStats) Algorithm {
	if stats.Skew >= DefaultSkewThreshold {
		return AlgIndexedLookup
	}
	return AlgScanEager
}

// KnownAlgorithm reports whether alg names an implemented strategy,
// counting AlgAuto and the empty string (both defer to the planner).
// Callers accepting algorithm overrides should validate with it so a
// typo fails loudly instead of computing an empty result set.
func KnownAlgorithm(alg Algorithm) bool {
	switch alg {
	case AlgAuto, "", AlgIndexedLookup, AlgScanEager, AlgNaive:
		return true
	}
	return false
}

// Planner-decision counters for the package-level Compute entry point.
// These are process-wide totals: every Compute call in the process —
// across any number of engines, corpora, and tests — lands in the same
// two counters, so they cannot attribute decisions to a corpus and
// would double-count a query that multiple engines route through
// Compute. The engine-level counters (xseek.Engine.PlannerDecisions,
// update.Engine.PlannerDecisions, shard.Engine.PlannerDecisions) are
// the authoritative per-corpus tallies — the engines call Plan
// directly and count on their own atomics, never through Compute — and
// they are what the serving layer's metrics surface.
var plannedIndexed, plannedScan atomic.Int64

// plannerDecisions reports how many package-level Compute calls the
// planner routed to each eager algorithm since process start. It is a
// process-wide diagnostic total that cannot be attributed to a corpus
// (see the counter comment above), so it stays unexported, read only
// by this package's tests: the engine-level counters are the sole
// exported surface and what the serving layer's metrics report.
func plannerDecisions() (indexedLookup, scanEager int64) {
	return plannedIndexed.Load(), plannedScan.Load()
}

// Compute returns the SLCAs of the given posting lists, picking the
// algorithm with the cost planner. It is the entry point callers
// without an opinion should use.
func Compute(lists []index.PostingList) []dewey.ID {
	alg := Plan(index.StatsOf(lists))
	if alg == AlgIndexedLookup {
		plannedIndexed.Add(1)
	} else {
		plannedScan.Add(1)
	}
	return ComputeWith(alg, lists)
}

// ComputeWith evaluates the lists with a forced algorithm choice —
// benchmarks and the planner itself route through it. AlgAuto (and the
// empty string) defer to the planner; unknown names return nil.
func ComputeWith(alg Algorithm, lists []index.PostingList) []dewey.ID {
	switch alg {
	case AlgIndexedLookup:
		return IndexedLookupEager(lists)
	case AlgScanEager:
		return ScanEager(lists)
	case AlgNaive:
		return Naive(lists)
	case AlgAuto, "":
		return ComputeWith(Plan(index.StatsOf(lists)), lists)
	default:
		return nil
	}
}

// Naive computes SLCAs by materializing, for every node in the first
// list, the LCA closure against all other lists, then removing
// non-smallest results. It is O(n²) in the worst case and exists as a
// correctness oracle for tests.
func Naive(lists []index.PostingList) []dewey.ID {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		// SLCA of a single keyword list: the nodes themselves, minus
		// ancestors of other matches.
		return removeAncestors(dedupe(cloneIDs(lists[0])))
	}
	// For every element of the first list, compute the smallest LCA it
	// can form with one element from each other list.
	var candidates []dewey.ID
	for _, a := range lists[0] {
		cur := a.Clone()
		for _, other := range lists[1:] {
			best := bestLCAWith(cur, other)
			cur = best
		}
		candidates = append(candidates, cur)
	}
	return removeAncestors(dedupe(candidates))
}

// bestLCAWith returns the deepest LCA formable between id and any
// element of list.
func bestLCAWith(id dewey.ID, list index.PostingList) dewey.ID {
	best := dewey.Root()
	for _, b := range list {
		l := id.LCA(b)
		if l.Level() > best.Level() {
			best = l
		}
	}
	return best
}

// IndexedLookupEager implements the Indexed Lookup Eager SLCA
// algorithm. It iterates over the smallest posting list; for each node
// v it finds, in every other list, the closest match to v's left and
// right (binary search in document order) and keeps the deeper of the
// two LCAs. Candidate SLCAs are emitted eagerly and dominated
// (ancestor) candidates removed on the fly.
func IndexedLookupEager(lists []index.PostingList) []dewey.ID {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		return removeAncestors(dedupe(cloneIDs(lists[0])))
	}
	// Walk the smallest list for efficiency.
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	others := make([]index.PostingList, 0, len(lists)-1)
	for i, l := range lists {
		if i != smallest {
			others = append(others, l)
		}
	}

	var out []dewey.ID
	push := func(cand dewey.ID) {
		// Maintain out as a document-ordered list of incomparable
		// nodes. Candidates arrive roughly in document order of the
		// driving list, but their LCAs may repeat or nest, so compare
		// against the current tail.
		for len(out) > 0 {
			last := out[len(out)-1]
			if last.Equal(cand) {
				return // duplicate
			}
			if last.IsAncestorOf(cand) {
				// cand is smaller (deeper) — it replaces the ancestor.
				out = out[:len(out)-1]
				continue
			}
			if cand.IsAncestorOf(last) {
				return // existing result is smaller
			}
			break
		}
		out = append(out, cand)
	}

	for _, v := range lists[smallest] {
		cand := v.Clone()
		dead := false
		for _, other := range others {
			l := closestLCA(cand, other)
			if l == nil {
				dead = true
				break
			}
			cand = l
		}
		if !dead {
			push(cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return removeAncestors(out)
}

// closestLCA returns the deepest LCA of id with either the closest
// left or closest right neighbour in list (document order), or nil if
// the list is empty.
func closestLCA(id dewey.ID, list index.PostingList) dewey.ID {
	if len(list) == 0 {
		return nil
	}
	// First position >= id in document order.
	pos := sort.Search(len(list), func(i int) bool { return list[i].Compare(id) >= 0 })
	best := dewey.Root()
	if pos < len(list) {
		if l := id.LCA(list[pos]); l.Level() >= best.Level() {
			best = l
		}
	}
	if pos > 0 {
		if l := id.LCA(list[pos-1]); l.Level() > best.Level() {
			best = l
		}
	}
	return best
}

// removeAncestors removes every ID that is a proper ancestor of
// another ID in the list, leaving only "smallest" (deepest) nodes.
// Input must be sorted in document order and duplicate-free. In
// document order a node's descendants immediately follow it, so a node
// has a descendant in the list iff the next element is one — a single
// pass over adjacent pairs suffices.
func removeAncestors(sorted []dewey.ID) []dewey.ID {
	var out []dewey.ID
	for i, id := range sorted {
		if i+1 < len(sorted) && id.IsAncestorOf(sorted[i+1]) {
			continue
		}
		out = append(out, id)
	}
	return out
}

func dedupe(ids []dewey.ID) []dewey.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || !ids[i-1].Equal(id) {
			out = append(out, id)
		}
	}
	return out
}

func cloneIDs(ids index.PostingList) []dewey.ID {
	out := make([]dewey.ID, len(ids))
	for i, id := range ids {
		out[i] = id.Clone()
	}
	return out
}

// ELCA computes Exclusive LCAs: nodes v such that v's subtree contains
// every keyword even after removing the subtrees of v's descendant
// SLCAs. ELCA is a superset of SLCA and is provided for completeness
// of the XSeek substrate (some XSeek variants return ELCAs).
func ELCA(lists []index.PostingList) []dewey.ID {
	slcas := IndexedLookupEager(lists)
	if len(slcas) == 0 {
		return nil
	}
	// A node is an ELCA iff, excluding matches under its descendant
	// SLCAs, it still covers all keywords. Check every ancestor of
	// every SLCA (small sets in practice).
	seen := make(map[string]bool)
	var out []dewey.ID
	consider := func(v dewey.ID) {
		key := v.String()
		if seen[key] {
			return
		}
		seen[key] = true
		if isELCA(v, lists, slcas) {
			out = append(out, v)
		}
	}
	for _, s := range slcas {
		consider(s)
		cur := s
		for {
			p, ok := cur.Parent()
			if !ok {
				break
			}
			consider(p)
			cur = p
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// isELCA reports whether v contains a witness of every keyword that is
// not under a proper-descendant candidate of v. A node is a candidate
// iff it contains all keywords, which holds exactly for the
// ancestors-or-selves of SLCAs; since candidacy is upward closed, a
// match m under v is excluded iff the child of v on the path to m is
// itself a candidate (i.e. is an ancestor-or-self of some SLCA).
func isELCA(v dewey.ID, lists []index.PostingList, slcas []dewey.ID) bool {
	for _, list := range lists {
		found := false
		for _, m := range list {
			if !v.IsAncestorOrSelf(m) {
				continue
			}
			if m.Equal(v) {
				found = true // witness at v itself is never excluded
				break
			}
			child := m[:v.Level()+1]
			excluded := false
			for _, s := range slcas {
				if child.IsAncestorOrSelf(s) {
					excluded = true
					break
				}
			}
			if !excluded {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
