package slca

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestPlanPicksByskew(t *testing.T) {
	cases := []struct {
		lengths []int
		want    Algorithm
	}{
		{[]int{100, 100}, AlgScanEager},                                 // uniform
		{[]int{100, 120, 90}, AlgScanEager},                             // near-uniform
		{[]int{10, 10 * int(DefaultSkewThreshold)}, AlgIndexedLookup},   // at threshold
		{[]int{5, 100000}, AlgIndexedLookup},                            // rare + common
		{[]int{0, 100}, AlgScanEager},                                   // empty list: skew 0, choice moot
		{[]int{7, 7*int(DefaultSkewThreshold) - 1}, AlgScanEager},       // just under threshold
		{[]int{3, 50, 3 * int(DefaultSkewThreshold)}, AlgIndexedLookup}, // max/min drives it
	}
	for _, c := range cases {
		lists := make([]index.PostingList, len(c.lengths))
		for i, n := range c.lengths {
			lists[i] = make(index.PostingList, n)
			for j := range lists[i] {
				lists[i][j] = dewey.New(0, j)
			}
		}
		if got := Plan(index.StatsOf(lists)); got != c.want {
			t.Errorf("Plan(%v) = %s, want %s", c.lengths, got, c.want)
		}
	}
}

func TestComputeWithUnknownAlgorithm(t *testing.T) {
	lists := []index.PostingList{{dewey.New(0)}, {dewey.New(1)}}
	if got := ComputeWith(Algorithm("nope"), lists); got != nil {
		t.Fatalf("unknown algorithm returned %v, want nil", got)
	}
}

func TestComputeCountsPlannerDecisions(t *testing.T) {
	i0, s0 := plannerDecisions()
	// Uniform lists → scan; skewed lists → indexed lookup.
	uniform := []index.PostingList{
		{dewey.New(0, 0), dewey.New(1, 0)},
		{dewey.New(0, 1), dewey.New(1, 1)},
	}
	skewed := []index.PostingList{{dewey.New(0, 0)}, make(index.PostingList, 100)}
	for j := range skewed[1] {
		skewed[1][j] = dewey.New(j/10, j%10)
	}
	Compute(uniform)
	Compute(skewed)
	i1, s1 := plannerDecisions()
	if i1-i0 != 1 || s1-s0 != 1 {
		t.Fatalf("planner deltas = %d indexed, %d scan; want 1 and 1", i1-i0, s1-s0)
	}
}

// randomDoc builds a random XML corpus over a small vocabulary:
// nested container elements of random fanout whose leaves carry 1-3
// random terms. Structure and content both vary tree to tree (fixed
// seed), exercising nesting depths the hand-written cases miss.
func randomDoc(r *rand.Rand, vocab []string) string {
	var b strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		if depth >= 4 || r.Intn(3) == 0 {
			b.WriteString("<leaf>")
			for i := r.Intn(3) + 1; i > 0; i-- {
				b.WriteString(vocab[r.Intn(len(vocab))])
				b.WriteString(" ")
			}
			b.WriteString("</leaf>")
			return
		}
		d := r.Intn(3)
		fmt.Fprintf(&b, "<n%d>", d)
		for i := r.Intn(4) + 1; i > 0; i-- {
			emit(depth + 1)
		}
		fmt.Fprintf(&b, "</n%d>", d)
	}
	b.WriteString("<root>")
	for i := r.Intn(6) + 2; i > 0; i-- {
		emit(1)
	}
	b.WriteString("</root>")
	return b.String()
}

// TestAlgorithmsAgreeOnRandomTrees is the cross-algorithm property
// test: on randomized corpora and queries, Naive (the oracle),
// IndexedLookupEager, ScanEager, and the planned Compute must produce
// identical SLCA sets.
func TestAlgorithmsAgreeOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	trees := 40
	queriesPerTree := 12
	for ti := 0; ti < trees; ti++ {
		doc := randomDoc(r, vocab)
		idx := index.Build(xmltree.MustParseString(doc))
		for qi := 0; qi < queriesPerTree; qi++ {
			k := r.Intn(3) + 1
			terms := make([]string, k)
			for i := range terms {
				terms[i] = vocab[r.Intn(len(vocab))]
			}
			lists, _, _ := idx.QueryLists(terms) // missing terms fine: all algorithms return nil
			oracle := idKey(Naive(lists))
			for _, alg := range []Algorithm{AlgIndexedLookup, AlgScanEager, AlgAuto} {
				if got := idKey(ComputeWith(alg, lists)); got != oracle {
					t.Fatalf("tree %d query %v: %s = %q, oracle = %q\ndoc: %s",
						ti, terms, alg, got, oracle, doc)
				}
			}
			if got := idKey(Compute(lists)); got != oracle {
				t.Fatalf("tree %d query %v: Compute = %q, oracle = %q", ti, terms, got, oracle)
			}
		}
	}
}

func idKey(ids []dewey.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, ";")
}
