// Package slca computes Smallest Lowest Common Ancestors (SLCAs) of
// XML keyword queries — the match semantics used by XSeek and hence by
// XSACT's search-engine substrate.
//
// Given posting lists S1..Sk (one per keyword), a node v is an LCA
// candidate if its subtree contains at least one node from every list;
// v is an SLCA if additionally no proper descendant of v is also a
// candidate. Results are returned in document order.
//
// Three algorithms are provided: Naive, a simple quadratic-ish scan
// used as a correctness oracle, and the two eager algorithms of Xu &
// Papakonstantinou (SIGMOD 2005) — IndexedLookupEager, which walks the
// smallest list and probes the others with binary search, and
// ScanEager, which advances merge pointers through the others instead.
// Which eager variant wins depends on posting-list skew, so Compute
// routes through a cost-based planner (Plan) that picks from the
// lists' shape statistics.
package slca
