package slca

import (
	"repro/internal/dewey"
	"repro/internal/index"
)

// This file holds the streaming (lazy) twins of the eager SLCA
// algorithms: the same smallest-list-driven candidate computation, but
// pulled one result at a time through an Iterator instead of
// materialized, sorted, and pruned in bulk. A consumer that stops
// after k results pays for the driving-list prefix that produced them,
// not for the whole result set — latency scales with the limit.

// Iterator yields SLCAs one at a time, in document order, each exactly
// once. Returned IDs are read-only views: safe to retain (they alias
// immutable index storage with pinned capacity), never to mutate in
// place.
type Iterator interface {
	Next() (dewey.ID, bool)
}

// DefaultStreamRatio is the planner's third-choice threshold: a query
// asking for the top `need` results runs streamed when the driving
// (smallest) posting list holds at least need*DefaultStreamRatio
// postings — i.e. when early termination can plausibly skip most of
// the eager work. Calibrated with BenchmarkStreamTopK (see
// BENCH_STREAM.json): at ratios below ~4 the streamed and eager costs
// converge, while small windows over rare+common workloads above the
// threshold win 4-8x.
const DefaultStreamRatio = 4

// PlanStreamed reports whether a query for the first `need` results
// (offset+limit) should run the streamed pipeline instead of an eager
// algorithm. need <= 0 means "all results", which streaming cannot
// shortcut.
func PlanStreamed(stats index.PlanStats, need int) bool {
	return need > 0 && stats.Min >= need*DefaultStreamRatio
}

// streamer drives the shortest posting list through the other lists'
// cursors and emits surviving SLCAs. One tentative slot suffices for
// exactness: if v_i < v_j are driver nodes, candidate(v_j) either
// follows candidate(v_i) in document order or is a proper ancestor of
// it (both candidates are ancestors-or-self of their driver nodes, and
// subtrees nest or are disjoint). So a new candidate can only (a)
// duplicate the tentative, (b) replace a tentative it descends from,
// (c) die because it is an ancestor of the tentative, or (d) finalize
// the tentative — an already-emitted result is never invalidated
// later, which is what makes early termination safe.
type streamer struct {
	driver index.Iter
	others []index.Iter
	tent   dewey.ID
	done   bool
}

// Next implements Iterator.
func (s *streamer) Next() (dewey.ID, bool) {
	if s.done {
		return nil, false
	}
	for {
		v, ok := s.driver.Next()
		if !ok {
			break
		}
		cand := s.candidate(v)
		switch {
		case s.tent == nil:
			s.tent = cand
		case s.tent.Equal(cand):
			// Duplicate of the tentative: merged.
		case s.tent.IsAncestorOf(cand):
			// Deeper (smaller) LCA under the tentative replaces it.
			s.tent = cand
		case cand.IsAncestorOf(s.tent):
			// The candidate contains an established smaller result.
		default:
			out := s.tent
			s.tent = cand
			return out, true
		}
	}
	s.done = true
	if s.tent != nil {
		out := s.tent
		s.tent = nil
		return out, true
	}
	return nil, false
}

// candidate folds driver node v against every other list exactly as
// the eager ScanEager does: the deepest LCA of the running candidate
// with v's closest left or right neighbour in each list.
func (s *streamer) candidate(v dewey.ID) dewey.ID {
	if len(s.others) == 0 {
		return v[:len(v):len(v)]
	}
	cand := v
	for _, it := range s.others {
		best := dewey.Root()
		if r, ok := it.Seek(v); ok {
			if l := cand.PrefixLCA(r); l.Level() >= best.Level() {
				best = l
			}
		}
		if p, ok := it.PredOf(v); ok {
			if l := cand.PrefixLCA(p); l.Level() > best.Level() {
				best = l
			}
		}
		cand = best
	}
	return cand
}

// StreamIters streams the SLCAs of the posting sequences behind the
// given cursors, with driver the cursor over the smallest (or
// exactly-counted, on the live path) sequence. All sequences must be
// non-empty; callers that cannot guarantee that should use Stream or
// check document frequencies first.
func StreamIters(driver index.Iter, others []index.Iter) Iterator {
	return &streamer{driver: driver, others: others}
}

// ScanStream is the streaming twin of ScanEager: the non-driver lists
// advance with linear merge pointers. Equivalent output, pulled
// lazily.
func ScanStream(lists []index.PostingList) Iterator {
	return streamLists(lists, index.ListIterLinear)
}

// IndexedLookupStream is the streaming twin of IndexedLookupEager: the
// non-driver lists are probed with galloping searches, so a rare
// driving term touches only O(|S1|·k·log|S|) postings no matter how
// long the common lists are.
func IndexedLookupStream(lists []index.PostingList) Iterator {
	return streamLists(lists, index.ListIter)
}

// Stream returns a streaming SLCA iterator over the lists, picking the
// seek discipline with the same planner rule the eager path uses
// (scan below the skew threshold, gallop above).
func Stream(lists []index.PostingList) Iterator {
	return StreamWith(Plan(index.StatsOf(lists)), lists)
}

// StreamWith returns a streaming iterator honouring a forced algorithm
// choice. AlgAuto (and the empty string) defer to the planner;
// AlgNaive materializes the oracle's answer and streams it (tests
// only); unknown names return an empty iterator.
func StreamWith(alg Algorithm, lists []index.PostingList) Iterator {
	switch alg {
	case AlgScanEager:
		return ScanStream(lists)
	case AlgIndexedLookup:
		return IndexedLookupStream(lists)
	case AlgNaive:
		return IterOver(Naive(lists))
	case AlgAuto, "":
		return StreamWith(Plan(index.StatsOf(lists)), lists)
	default:
		return IterOver(nil)
	}
}

// streamLists builds the driver/others split for materialized lists.
func streamLists(lists []index.PostingList, mkIter func(index.PostingList) index.Iter) Iterator {
	if len(lists) == 0 {
		return IterOver(nil)
	}
	for _, l := range lists {
		if len(l) == 0 {
			return IterOver(nil)
		}
	}
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	others := make([]index.Iter, 0, len(lists)-1)
	for i, l := range lists {
		if i != smallest {
			others = append(others, mkIter(l))
		}
	}
	return StreamIters(index.ListIter(lists[smallest]), others)
}

// sliceIterator adapts a materialized ID slice to the Iterator shape.
type sliceIterator struct {
	ids []dewey.ID
	pos int
}

// IterOver streams an already-computed, document-ordered SLCA slice —
// the bridge for eager fallbacks (naive oracle, cached results).
func IterOver(ids []dewey.ID) Iterator { return &sliceIterator{ids: ids} }

func (s *sliceIterator) Next() (dewey.ID, bool) {
	if s.pos >= len(s.ids) {
		return nil, false
	}
	v := s.ids[s.pos]
	s.pos++
	return v, true
}

// filterTee drops stream elements the keep predicate rejects and
// reports survivors to tee before yielding them.
type filterTee struct {
	it   Iterator
	keep func(dewey.ID) bool
	tee  func(dewey.ID)
}

// FilterTee wraps a stream with an element filter and an observation
// hook; either function may be nil. The sharded fan-out uses it to
// drop spine-owned SLCAs from a shard's stream while collecting the
// kept ones for the cross-shard fix-up pass.
func FilterTee(it Iterator, keep func(dewey.ID) bool, tee func(dewey.ID)) Iterator {
	return &filterTee{it: it, keep: keep, tee: tee}
}

func (f *filterTee) Next() (dewey.ID, bool) {
	for {
		v, ok := f.it.Next()
		if !ok {
			return nil, false
		}
		if f.keep != nil && !f.keep(v) {
			continue
		}
		if f.tee != nil {
			f.tee(v)
		}
		return v, true
	}
}

// Collect drains it — the materializing bridge back to the eager
// algebra, and the equivalence oracle in tests.
func Collect(it Iterator) []dewey.ID {
	var out []dewey.ID
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
