package slca

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
)

// ScanEager computes SLCAs with the Scan Eager algorithm (Xu &
// Papakonstantinou's merge-based variant): like IndexedLookupEager it
// walks the smallest posting list, but locates each node's closest
// left/right neighbours in the other lists with monotonically
// advancing pointers instead of binary searches. When the driving
// list is not much smaller than the others, one linear merge beats
// |S1|·log|S| lookups; the benchmark harness compares all three.
func ScanEager(lists []index.PostingList) []dewey.ID {
	if len(lists) == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	if len(lists) == 1 {
		return removeAncestors(dedupe(cloneIDs(lists[0])))
	}
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	others := make([]index.PostingList, 0, len(lists)-1)
	for i, l := range lists {
		if i != smallest {
			others = append(others, l)
		}
	}
	ptrs := make([]int, len(others))

	var out []dewey.ID
	for _, v := range lists[smallest] {
		cand := v.Clone()
		for oi, other := range others {
			// Advance the pointer to the first element >= cand.
			p := ptrs[oi]
			for p < len(other) && other[p].Compare(v) < 0 {
				p++
			}
			ptrs[oi] = p
			best := dewey.Root()
			if p < len(other) {
				if l := cand.LCA(other[p]); l.Level() >= best.Level() {
					best = l
				}
			}
			if p > 0 {
				if l := cand.LCA(other[p-1]); l.Level() > best.Level() {
					best = l
				}
			}
			cand = best
		}
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return removeAncestors(dedupe(out))
}
