package slca

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
)

// TestStreamCrossAlgorithmEquivalence extends the eager cross-check:
// on random posting lists, the streamed variants consumed to
// exhaustion must produce exactly the eager (and naive-oracle) result
// set, in the same document order.
func TestStreamCrossAlgorithmEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.Intn(3)
		ls := randomLists(r, k)
		want := Naive(ls)
		checks := map[string][]dewey.ID{
			"ScanEager":           ScanEager(ls),
			"IndexedLookupEager":  IndexedLookupEager(ls),
			"ScanStream":          Collect(ScanStream(ls)),
			"IndexedLookupStream": Collect(IndexedLookupStream(ls)),
			"Stream":              Collect(Stream(ls)),
		}
		for name, got := range checks {
			if !sameIDs(got, want) {
				t.Fatalf("trial %d: %s mismatch:\n got %v\nwant %v\nlists %v",
					trial, name, idStrings(got), idStrings(want), ls)
			}
		}
	}
}

// TestStreamPrefixInvariance: for every k, the first k pulls of the
// stream equal the first k entries of the eager output in document
// order — the property that makes early termination exact.
func TestStreamPrefixInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		ls := randomLists(r, 1+r.Intn(3))
		want := ScanEager(ls)
		for _, k := range []int{1, 2, 3, 7} {
			if k > len(want) {
				k = len(want)
			}
			for name, mk := range map[string]func() Iterator{
				"scan":    func() Iterator { return ScanStream(ls) },
				"indexed": func() Iterator { return IndexedLookupStream(ls) },
			} {
				it := mk()
				var got []dewey.ID
				for i := 0; i < k; i++ {
					v, ok := it.Next()
					if !ok {
						break
					}
					got = append(got, v)
				}
				if !sameIDs(got, want[:k]) {
					t.Fatalf("trial %d: %s prefix %d mismatch: got %v want %v (lists %v)",
						trial, name, k, idStrings(got), idStrings(want[:k]), ls)
				}
			}
		}
	}
}

func TestStreamEmptyAndSingleList(t *testing.T) {
	if _, ok := Stream(nil).Next(); ok {
		t.Fatal("no lists should stream nothing")
	}
	if _, ok := Stream(lists(ids("0.1"), nil)).Next(); ok {
		t.Fatal("an empty list should stream nothing")
	}
	got := Collect(Stream(lists(ids("0.1", "0.1.2", "2"))))
	if !reflect.DeepEqual(idStrings(got), []string{"0.1.2", "2"}) {
		t.Fatalf("single-list stream got %v", idStrings(got))
	}
}

func TestStreamWithUnknownAlgorithm(t *testing.T) {
	if _, ok := StreamWith("bogus", lists(ids("0"))).Next(); ok {
		t.Fatal("unknown algorithm must stream nothing")
	}
	got := Collect(StreamWith(AlgNaive, lists(ids("0.0"), ids("0.1"))))
	if !reflect.DeepEqual(idStrings(got), []string{"0"}) {
		t.Fatalf("naive fallback got %v", idStrings(got))
	}
}

// TestStreamedIDsAppendSafe: streamed IDs are capacity-pinned views,
// so a consumer that extends one (e.g. building a child path) must get
// a fresh backing array instead of clobbering the index storage the
// view aliases.
func TestStreamedIDsAppendSafe(t *testing.T) {
	ls := lists(ids("0.0", "0.1.0"), ids("0.1.1"))
	it := IndexedLookupStream(ls)
	v, ok := it.Next()
	if !ok {
		t.Fatal("expected a result")
	}
	_ = append(v, 99) // extending a view must copy, not write through
	got := Collect(IndexedLookupStream(ls))
	want := Collect(IndexedLookupStream(lists(ids("0.0", "0.1.0"), ids("0.1.1"))))
	if !sameIDs(got, want) {
		t.Fatalf("append through a streamed view corrupted index state: %v vs %v",
			idStrings(got), idStrings(want))
	}
}

func TestPlanStreamed(t *testing.T) {
	stats := index.PlanStats{Min: 1000, Max: 50000}
	if !PlanStreamed(stats, 10) {
		t.Fatal("small window over a large result bound should stream")
	}
	if PlanStreamed(stats, 500) {
		t.Fatal("window close to the result bound should stay eager")
	}
	if PlanStreamed(stats, 0) {
		t.Fatal("need <= 0 (all results) cannot stream")
	}
	if PlanStreamed(index.PlanStats{Min: 8, Max: 8}, 10) {
		t.Fatal("driver shorter than the window should stay eager")
	}
}

func sameIDs(a, b []dewey.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
