package slca

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func ids(idStrs ...string) []dewey.ID {
	out := make([]dewey.ID, len(idStrs))
	for i, s := range idStrs {
		id, err := dewey.Parse(s)
		if err != nil {
			panic(err)
		}
		out[i] = id
	}
	return out
}

func lists(ls ...[]dewey.ID) []index.PostingList {
	out := make([]index.PostingList, len(ls))
	for i, l := range ls {
		out[i] = index.PostingList(l)
	}
	return out
}

func idStrings(in []dewey.ID) []string {
	out := make([]string, len(in))
	for i, id := range in {
		out[i] = id.String()
	}
	return out
}

func TestSLCASingleKeyword(t *testing.T) {
	// Matches at 0.1 and 0.1.2: only the deepest survives.
	got := Compute(lists(ids("0.1", "0.1.2", "2")))
	want := []string{"0.1.2", "2"}
	if !reflect.DeepEqual(idStrings(got), want) {
		t.Fatalf("got %v, want %v", idStrings(got), want)
	}
}

func TestSLCATwoKeywordsSimple(t *testing.T) {
	// k1 at 0.0, k2 at 0.1 -> SLCA is 0.
	got := Compute(lists(ids("0.0"), ids("0.1")))
	if !reflect.DeepEqual(idStrings(got), []string{"0"}) {
		t.Fatalf("got %v", idStrings(got))
	}
}

func TestSLCASmallestWins(t *testing.T) {
	// k1 at 0.0 and 0.1.0; k2 at 0.1.1.
	// LCA(0.1.0, 0.1.1) = 0.1 is smaller than LCA(0.0, 0.1.1) = 0.
	got := Compute(lists(ids("0.0", "0.1.0"), ids("0.1.1")))
	if !reflect.DeepEqual(idStrings(got), []string{"0.1"}) {
		t.Fatalf("got %v, want [0.1]", idStrings(got))
	}
}

func TestSLCAMultipleResults(t *testing.T) {
	// Two independent products both matching both keywords.
	got := Compute(lists(ids("0.0.0", "0.1.0"), ids("0.0.1", "0.1.1")))
	if !reflect.DeepEqual(idStrings(got), []string{"0.0", "0.1"}) {
		t.Fatalf("got %v", idStrings(got))
	}
}

func TestSLCAEmptyListMeansNoResult(t *testing.T) {
	if got := Compute(lists(ids("0.0"), nil)); got != nil {
		t.Fatalf("got %v, want nil", idStrings(got))
	}
	if got := Compute(nil); got != nil {
		t.Fatalf("got %v for no lists", idStrings(got))
	}
}

func TestSLCASameNodeMatchesAll(t *testing.T) {
	// One node contains both keywords.
	got := Compute(lists(ids("0.2.1"), ids("0.2.1")))
	if !reflect.DeepEqual(idStrings(got), []string{"0.2.1"}) {
		t.Fatalf("got %v", idStrings(got))
	}
}

func TestSLCAThreeKeywords(t *testing.T) {
	got := Compute(lists(
		ids("0.0.0", "1.0.0"),
		ids("0.0.1", "1.0.1"),
		ids("0.1", "1.0.2"),
	))
	// Result 0: LCA(0.0.x, 0.1) = 0. Result 1: all under 1.0.
	// 1.0 is not an ancestor of 0, both kept.
	if !reflect.DeepEqual(idStrings(got), []string{"0", "1.0"}) {
		t.Fatalf("got %v", idStrings(got))
	}
}

func randomLists(r *rand.Rand, k int) []index.PostingList {
	out := make([]index.PostingList, k)
	for i := range out {
		n := 1 + r.Intn(8)
		seen := map[string]bool{}
		var l []dewey.ID
		for j := 0; j < n; j++ {
			depth := 1 + r.Intn(4)
			id := make(dewey.ID, depth)
			for d := range id {
				id[d] = r.Intn(3)
			}
			if !seen[id.String()] {
				seen[id.String()] = true
				l = append(l, id)
			}
		}
		pl := index.PostingList(l)
		out[i] = pl
		// sort in document order
		for a := 1; a < len(pl); a++ {
			for b := a; b > 0 && pl[b].Compare(pl[b-1]) < 0; b-- {
				pl[b], pl[b-1] = pl[b-1], pl[b]
			}
		}
	}
	return out
}

// TestPropEagerMatchesNaive cross-checks the efficient algorithm
// against the oracle on random inputs.
func TestPropEagerMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		k := 1 + r.Intn(3)
		ls := randomLists(r, k)
		eager := IndexedLookupEager(ls)
		naive := Naive(ls)
		if !reflect.DeepEqual(idStrings(eager), idStrings(naive)) {
			t.Fatalf("iteration %d: eager %v != naive %v (lists %v)",
				i, idStrings(eager), idStrings(naive), ls)
		}
	}
}

// TestPropSLCAInvariants checks the defining properties: every SLCA
// covers all keywords and no SLCA is an ancestor of another.
func TestPropSLCAInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		ls := randomLists(r, 1+r.Intn(3))
		res := IndexedLookupEager(ls)
		for ai, a := range res {
			for bi, b := range res {
				if ai != bi && a.IsAncestorOf(b) {
					t.Fatalf("SLCA %v is ancestor of SLCA %v", a, b)
				}
			}
			for li, l := range ls {
				covered := false
				for _, m := range l {
					if a.IsAncestorOrSelf(m) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("SLCA %v does not cover keyword list %d", a, li)
				}
			}
		}
	}
}

func TestEndToEndOverRealTree(t *testing.T) {
	doc := `
<store>
  <product><name>TomTom GPS</name><rating>great</rating></product>
  <product><name>Garmin GPS</name><rating>ok</rating></product>
  <product><name>TomTom Watch</name></product>
</store>`
	root := xmltree.MustParseString(doc)
	idx := index.Build(root)
	ls, _, err := idx.QueryLists(index.TokenizeQuery("tomtom gps"))
	if err != nil {
		t.Fatal(err)
	}
	res := Compute(ls)
	// "tomtom gps" both occur in product 1's <name>; the only other
	// joint cover is <store> itself, which is an ancestor of that name
	// and therefore not smallest. Exactly one SLCA: the <name> node.
	if len(res) != 1 {
		t.Fatalf("got %d SLCAs: %v", len(res), idStrings(res))
	}
	n0 := root.NodeAt(res[0])
	if n0.Tag != "name" || n0.Value() != "TomTom GPS" {
		t.Fatalf("SLCA = <%s> %q", n0.Tag, n0.Value())
	}
}

func TestELCASupersetOfSLCA(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		ls := randomLists(r, 1+r.Intn(3))
		s := IndexedLookupEager(ls)
		e := ELCA(ls)
		set := map[string]bool{}
		for _, id := range e {
			set[id.String()] = true
		}
		for _, id := range s {
			if !set[id.String()] {
				t.Fatalf("SLCA %v missing from ELCA %v (slca %v)", id, idStrings(e), idStrings(s))
			}
		}
	}
}

func TestELCAFindsExclusiveAncestor(t *testing.T) {
	// k1 at 0.0, 0.2 ; k2 at 0.1.0, 0.1.1 and k1 at 0.1.2.
	// SLCA: 0.1 (contains k1@0.1.2, k2@0.1.0).
	// 0 contains k1 at 0.0 (outside 0.1) and k2 only inside 0.1 -> not ELCA.
	l1 := ids("0.0", "0.1.2", "0.2")
	l2 := ids("0.1.0", "0.1.1")
	e := ELCA(lists(l1, l2))
	if !reflect.DeepEqual(idStrings(e), []string{"0.1"}) {
		t.Fatalf("ELCA = %v", idStrings(e))
	}
}

func TestELCAWithExclusiveWitnessAtAncestor(t *testing.T) {
	// k1 at 0.0 and 0.1.0; k2 at 0.2 and 0.1.1.
	// SLCA: 0.1. Node 0 still has k1@0.0 and k2@0.2 outside 0.1 -> ELCA.
	l1 := ids("0.0", "0.1.0")
	l2 := ids("0.1.1", "0.2")
	e := ELCA(lists(l1, l2))
	if !reflect.DeepEqual(idStrings(e), []string{"0", "0.1"}) {
		t.Fatalf("ELCA = %v", idStrings(e))
	}
}

func buildBenchLists(n int) []index.PostingList {
	r := rand.New(rand.NewSource(99))
	mk := func() index.PostingList {
		l := make([]dewey.ID, n)
		for i := range l {
			l[i] = dewey.New(r.Intn(50), r.Intn(20), r.Intn(10))
		}
		pl := index.PostingList(l)
		for a := 1; a < len(pl); a++ {
			for b := a; b > 0 && pl[b].Compare(pl[b-1]) < 0; b-- {
				pl[b], pl[b-1] = pl[b-1], pl[b]
			}
		}
		return pl
	}
	return []index.PostingList{mk(), mk()}
}

func BenchmarkIndexedLookupEager(b *testing.B) {
	ls := buildBenchLists(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IndexedLookupEager(ls)
	}
}

func BenchmarkNaive(b *testing.B) {
	ls := buildBenchLists(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Naive(ls)
	}
}
