package slca

import (
	"fmt"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
)

// syntheticLists builds a two-keyword workload over nEntities synthetic
// entities (Dewey IDs (0, i, ·)): the common term appears in every
// entity, the rare term in every skew-th one. skew 1 is the uniform
// workload, larger skews model a rare + common keyword pair.
func syntheticLists(nEntities, skew int) []index.PostingList {
	common := make(index.PostingList, 0, nEntities)
	rare := make(index.PostingList, 0, nEntities/skew+1)
	for i := 0; i < nEntities; i++ {
		common = append(common, dewey.New(0, i, 0))
		if i%skew == 0 {
			rare = append(rare, dewey.New(0, i, 1))
		}
	}
	return []index.PostingList{rare, common}
}

// BenchmarkPlanner calibrates DefaultSkewThreshold: for each list-shape
// skew it times both eager algorithms and the planner's automatic
// choice. The planner is correct when auto tracks the faster fixed
// algorithm at every skew — scan-eager on uniform shapes, indexed
// lookup on heavily skewed ones. BENCH_PLANNER.json records a run.
func BenchmarkPlanner(b *testing.B) {
	const nEntities = 50000
	for _, skew := range []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 256} {
		lists := syntheticLists(nEntities, skew)
		for _, alg := range []Algorithm{AlgIndexedLookup, AlgScanEager, AlgAuto} {
			b.Run(fmt.Sprintf("skew=%d/%s", skew, alg), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = ComputeWith(alg, lists)
				}
			})
		}
	}
}
