package slca

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPropScanEagerMatchesNaive cross-checks the merge-based variant
// against the oracle on random inputs, the same way the binary-search
// variant is verified.
func TestPropScanEagerMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 500; i++ {
		k := 1 + r.Intn(3)
		ls := randomLists(r, k)
		scan := ScanEager(ls)
		naive := Naive(ls)
		if !reflect.DeepEqual(idStrings(scan), idStrings(naive)) {
			t.Fatalf("iteration %d: scan %v != naive %v (lists %v)",
				i, idStrings(scan), idStrings(naive), ls)
		}
	}
}

func TestPropScanEagerMatchesIndexedLookup(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 500; i++ {
		ls := randomLists(r, 1+r.Intn(4))
		a := ScanEager(ls)
		b := IndexedLookupEager(ls)
		if !reflect.DeepEqual(idStrings(a), idStrings(b)) {
			t.Fatalf("iteration %d: scan %v != indexed %v", i, idStrings(a), idStrings(b))
		}
	}
}

func TestScanEagerEdgeCases(t *testing.T) {
	if got := ScanEager(nil); got != nil {
		t.Fatalf("no lists -> %v", got)
	}
	if got := ScanEager(lists(ids("0.0"), nil)); got != nil {
		t.Fatalf("empty list -> %v", got)
	}
	got := ScanEager(lists(ids("0.1", "0.1.2")))
	if !reflect.DeepEqual(idStrings(got), []string{"0.1.2"}) {
		t.Fatalf("single keyword -> %v", idStrings(got))
	}
}

func BenchmarkScanEager(b *testing.B) {
	ls := buildBenchLists(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScanEager(ls)
	}
}
