package table

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/feature"
)

func TestMarkdownRendering(t *testing.T) {
	out := Build(twoDFSs()).Markdown()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("markdown lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| feature | GPS 1 | GPS 3 |") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "*unknown*") {
		t.Fatal("markdown missing unknown marker")
	}
	if !strings.Contains(out, "compact (80%)") {
		t.Fatalf("markdown missing cell:\n%s", out)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tp := feature.Type{Entity: "e", Attribute: "a"}
	s := feature.NewStatsFromCounts("la|bel",
		map[string]int{"e": 2},
		map[feature.Feature]int{{Type: tp, Value: "v|w"}: 2})
	out := Build([]*core.DFS{{Stats: s, Sel: core.Selection{tp: 1}}}).Markdown()
	if strings.Contains(out, "| v|w |") || !strings.Contains(out, `la\|bel`) {
		t.Fatalf("pipes unescaped:\n%s", out)
	}
}

func TestCSVParsesBack(t *testing.T) {
	out := Build(twoDFSs()).CSV()
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not reparse: %v\n%s", err, out)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "feature" || records[0][1] != "GPS 1" {
		t.Fatalf("header = %v", records[0])
	}
	for _, rec := range records {
		if len(rec) != 3 {
			t.Fatalf("ragged record: %v", rec)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tp := feature.Type{Entity: "e", Attribute: "a"}
	s := feature.NewStatsFromCounts(`comma, and "quote"`,
		map[string]int{"e": 2},
		map[feature.Feature]int{{Type: tp, Value: "x,y"}: 2})
	out := Build([]*core.DFS{{Stats: s, Sel: core.Selection{tp: 1}}}).CSV()
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("quoted CSV does not reparse: %v\n%s", err, out)
	}
	if records[0][1] != `comma, and "quote"` {
		t.Fatalf("label mangled: %q", records[0][1])
	}
	if records[1][1] != "x,y" {
		t.Fatalf("value mangled: %q", records[1][1])
	}
}

func TestCSVUnknownIsEmptyField(t *testing.T) {
	out := Build(twoDFSs()).CSV()
	records, _ := csv.NewReader(strings.NewReader(out)).ReadAll()
	found := false
	for _, rec := range records[1:] {
		for _, f := range rec[1:] {
			if f == "" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no empty (unknown) field in CSV:\n%s", out)
	}
}
