package table

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/feature"
)

// Cell is one table cell: the values a DFS shows for a feature type.
type Cell struct {
	// Known is false when the result's DFS does not select the type —
	// the paper's "null means unknown" semantics.
	Known bool
	// Values are the shown values with their relative frequencies.
	Values []CellValue
}

type CellValue struct {
	Value string
	Rel   float64 // relative frequency in [0,1]
	Count int     // raw occurrence count
}

// Row is one comparison row: a feature type across all results.
type Row struct {
	Type  feature.Type
	Cells []Cell
}

// Table is a rendered comparison of several DFSs.
type Table struct {
	Labels []string
	Rows   []Row
}

// Build assembles the comparison table for a set of DFSs. Rows are
// ordered by entity, then by maximum significance across results, so
// the most characteristic types come first.
func Build(dfss []*core.DFS) *Table {
	t := &Table{}
	typeSet := make(map[feature.Type]bool)
	for _, d := range dfss {
		t.Labels = append(t.Labels, d.Stats.Label)
		for tp := range d.Sel {
			typeSet[tp] = true
		}
	}
	types := make([]feature.Type, 0, len(typeSet))
	for tp := range typeSet {
		types = append(types, tp)
	}
	maxSig := func(tp feature.Type) int {
		m := 0
		for _, d := range dfss {
			if s := d.Stats.TypeTotal(tp); s > m {
				m = s
			}
		}
		return m
	}
	sort.Slice(types, func(i, j int) bool {
		if types[i].Entity != types[j].Entity {
			return types[i].Entity < types[j].Entity
		}
		si, sj := maxSig(types[i]), maxSig(types[j])
		if si != sj {
			return si > sj
		}
		return types[i].Attribute < types[j].Attribute
	})
	for _, tp := range types {
		row := Row{Type: tp}
		for _, d := range dfss {
			depth, ok := d.Sel[tp]
			cell := Cell{Known: ok}
			if ok {
				vals := d.Stats.ValuesOf(tp)
				if depth > len(vals) {
					depth = len(vals)
				}
				for _, vc := range vals[:depth] {
					cell.Values = append(cell.Values, CellValue{
						Value: vc.Value,
						Rel:   d.Stats.Rel(tp, vc.Value),
						Count: vc.Count,
					})
				}
			}
			row.Cells = append(row.Cells, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// cellText renders a cell for the text table.
func cellText(c Cell) string {
	if !c.Known {
		return "unknown"
	}
	parts := make([]string, len(c.Values))
	for i, v := range c.Values {
		if v.Rel >= 0.999 {
			parts[i] = v.Value
		} else {
			parts[i] = fmt.Sprintf("%s (%.0f%%)", v.Value, v.Rel*100)
		}
	}
	return strings.Join(parts, ", ")
}

// WriteText renders an aligned plain-text comparison table.
func (t *Table) WriteText(w io.Writer) error {
	headers := append([]string{"feature"}, t.Labels...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, row := range t.Rows {
		line := make([]string, len(headers))
		line[0] = row.Type.String()
		for ci, c := range row.Cells {
			line[ci+1] = cellText(c)
		}
		for i, s := range line {
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells[ri] = line
	}
	var b strings.Builder
	writeLine := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  | ")
			}
			b.WriteString(p)
			b.WriteString(strings.Repeat(" ", widths[i]-len(p)))
		}
		b.WriteByte('\n')
	}
	writeLine(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeLine(sep)
	for _, line := range cells {
		writeLine(line)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text returns the plain-text rendering.
func (t *Table) Text() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}

// WriteHTML renders the table as a self-contained HTML fragment
// (<table> element) for the web demo.
func (t *Table) WriteHTML(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<table class=\"xsact-comparison\">\n<thead><tr><th>feature</th>")
	for _, l := range t.Labels {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(l))
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "<tr><td>%s</td>", html.EscapeString(row.Type.String()))
		for _, c := range row.Cells {
			if !c.Known {
				b.WriteString(`<td class="unknown">unknown</td>`)
				continue
			}
			b.WriteString("<td>")
			for i, v := range c.Values {
				if i > 0 {
					b.WriteString("<br>")
				}
				if v.Rel >= 0.999 {
					b.WriteString(html.EscapeString(v.Value))
				} else {
					fmt.Fprintf(&b, "%s (%.0f%%)", html.EscapeString(v.Value), v.Rel*100)
				}
			}
			b.WriteString("</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// HTML returns the HTML rendering.
func (t *Table) HTML() string {
	var b strings.Builder
	_ = t.WriteHTML(&b)
	return b.String()
}
