package table

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/feature"
)

func twoDFSs() []*core.DFS {
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	use := feature.Type{Entity: "review", Attribute: "bestuse"}
	a := feature.NewStatsFromCounts("GPS 1",
		map[string]int{"review": 10},
		map[feature.Feature]int{
			{Type: pro, Value: "compact"}: 8,
			{Type: use, Value: "auto"}:    6,
		})
	b := feature.NewStatsFromCounts("GPS 3",
		map[string]int{"review": 20},
		map[feature.Feature]int{
			{Type: pro, Value: "compact"}: 4,
		})
	return []*core.DFS{
		{Stats: a, Sel: core.Selection{pro: 1, use: 1}},
		{Stats: b, Sel: core.Selection{pro: 1}},
	}
}

func TestBuildShape(t *testing.T) {
	tbl := Build(twoDFSs())
	if len(tbl.Labels) != 2 || tbl.Labels[0] != "GPS 1" {
		t.Fatalf("labels = %v", tbl.Labels)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (pro, bestuse)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("row %v has %d cells", row.Type, len(row.Cells))
		}
	}
}

func TestUnknownCell(t *testing.T) {
	tbl := Build(twoDFSs())
	var useRow *Row
	for i := range tbl.Rows {
		if tbl.Rows[i].Type.Attribute == "bestuse" {
			useRow = &tbl.Rows[i]
		}
	}
	if useRow == nil {
		t.Fatal("bestuse row missing")
	}
	if !useRow.Cells[0].Known || useRow.Cells[1].Known {
		t.Fatalf("unknown semantics wrong: %+v", useRow.Cells)
	}
}

func TestCellPercentages(t *testing.T) {
	tbl := Build(twoDFSs())
	var proRow *Row
	for i := range tbl.Rows {
		if tbl.Rows[i].Type.Attribute == "pro" {
			proRow = &tbl.Rows[i]
		}
	}
	c0 := proRow.Cells[0].Values[0]
	if c0.Value != "compact" || c0.Count != 8 || c0.Rel < 0.79 || c0.Rel > 0.81 {
		t.Fatalf("cell = %+v", c0)
	}
	c1 := proRow.Cells[1].Values[0]
	if c1.Rel < 0.19 || c1.Rel > 0.21 {
		t.Fatalf("cell = %+v", c1)
	}
}

func TestTextRendering(t *testing.T) {
	out := Build(twoDFSs()).Text()
	for _, want := range []string{"GPS 1", "GPS 3", "review:pro", "compact (80%)", "compact (20%)", "unknown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text table missing %q:\n%s", want, out)
		}
	}
	// Aligned: all lines equal length in a fixed-width table? At least
	// the header separator row exists.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestHTMLRendering(t *testing.T) {
	out := Build(twoDFSs()).HTML()
	for _, want := range []string{"<table", "<th>GPS 1</th>", `class="unknown"`, "compact (80%)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("html table missing %q:\n%s", want, out)
		}
	}
}

func TestHTMLEscapes(t *testing.T) {
	pro := feature.Type{Entity: "e", Attribute: "a"}
	s := feature.NewStatsFromCounts(`<img src=x>`,
		map[string]int{"e": 2},
		map[feature.Feature]int{{Type: pro, Value: `<script>`}: 2})
	tbl := Build([]*core.DFS{{Stats: s, Sel: core.Selection{pro: 1}}})
	out := tbl.HTML()
	if strings.Contains(out, "<script>") || strings.Contains(out, "<img") {
		t.Fatalf("unescaped HTML:\n%s", out)
	}
}

func TestFullFrequencyOmitsPercent(t *testing.T) {
	name := feature.Type{Entity: "product", Attribute: "name"}
	s := feature.NewStatsFromCounts("P",
		map[string]int{"product": 1},
		map[feature.Feature]int{{Type: name, Value: "TomTom"}: 1})
	out := Build([]*core.DFS{{Stats: s, Sel: core.Selection{name: 1}}}).Text()
	if strings.Contains(out, "(100%)") {
		t.Fatalf("100%% frequencies should render bare:\n%s", out)
	}
	if !strings.Contains(out, "TomTom") {
		t.Fatalf("value missing:\n%s", out)
	}
}

func TestRowOrderGroupsEntities(t *testing.T) {
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	name := feature.Type{Entity: "product", Attribute: "name"}
	s := feature.NewStatsFromCounts("P",
		map[string]int{"product": 1, "review": 5},
		map[feature.Feature]int{
			{Type: pro, Value: "compact"}: 5,
			{Type: name, Value: "X"}:      1,
		})
	tbl := Build([]*core.DFS{{Stats: s, Sel: core.Selection{pro: 1, name: 1}}})
	if tbl.Rows[0].Type.Entity != "product" || tbl.Rows[1].Type.Entity != "review" {
		t.Fatalf("rows not grouped by entity: %v, %v", tbl.Rows[0].Type, tbl.Rows[1].Type)
	}
}

func BenchmarkBuildAndRender(b *testing.B) {
	dfss := twoDFSs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(dfss).Text()
	}
}
