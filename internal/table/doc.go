// Package table renders XSACT comparison tables (the paper's Figure 2
// and the table shown by the demo UI's "comparison" button): one row
// per feature type selected in any compared DFS, one column per
// result, each cell showing the values and their relative frequencies,
// with "unknown" where a result does not select the type.
package table
