package table

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the comparison as a GitHub-flavoured Markdown
// table (one row per feature type), for READMEs and issue reports.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	b.WriteString("| feature |")
	for _, l := range t.Labels {
		fmt.Fprintf(&b, " %s |", escapeMarkdown(l))
	}
	b.WriteString("\n|---|")
	for range t.Labels {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |", escapeMarkdown(row.Type.String()))
		for _, c := range row.Cells {
			if !c.Known {
				b.WriteString(" *unknown* |")
				continue
			}
			fmt.Fprintf(&b, " %s |", escapeMarkdown(cellText(c)))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown returns the Markdown rendering.
func (t *Table) Markdown() string {
	var b strings.Builder
	_ = t.WriteMarkdown(&b)
	return b.String()
}

var markdownEscaper = strings.NewReplacer("|", "\\|", "\n", " ")

func escapeMarkdown(s string) string { return markdownEscaper.Replace(s) }

// WriteCSV renders the comparison as RFC-4180-style CSV with a header
// row, for spreadsheets and downstream analysis. Unknown cells are
// empty fields; multi-value cells join with "; ".
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRecord := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvField(f))
		}
		b.WriteString("\r\n")
	}
	writeRecord(append([]string{"feature"}, t.Labels...))
	for _, row := range t.Rows {
		fields := []string{row.Type.String()}
		for _, c := range row.Cells {
			if !c.Known {
				fields = append(fields, "")
				continue
			}
			parts := make([]string, len(c.Values))
			for i, v := range c.Values {
				if v.Rel >= 0.999 {
					parts[i] = v.Value
				} else {
					parts[i] = fmt.Sprintf("%s (%.0f%%)", v.Value, v.Rel*100)
				}
			}
			fields = append(fields, strings.Join(parts, "; "))
		}
		writeRecord(fields)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV returns the CSV rendering.
func (t *Table) CSV() string {
	var b strings.Builder
	_ = t.WriteCSV(&b)
	return b.String()
}

func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
