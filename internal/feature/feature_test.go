package feature

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// figure1Doc mirrors the paper's Figure 1 result fragments: a product
// with reviews carrying pro / bestuse features in the plain-leaf form.
const figure1Doc = `
<store>
  <product>
    <name>TomTom Go 630</name>
    <rating>4.2</rating>
    <reviews>
      <review><pro>easy to read</pro><pro>compact</pro><bestuse>auto</bestuse></review>
      <review><pro>easy to read</pro><pro>compact</pro></review>
      <review><pro>easy to read</pro><bestuse>auto</bestuse></review>
    </reviews>
  </product>
  <product>
    <name>TomTom Go 730</name>
    <rating>4.1</rating>
    <reviews>
      <review><pro>compact</pro><bestuse>fast routing</bestuse></review>
      <review><pro>easy to setup</pro></review>
    </reviews>
  </product>
</store>`

func extractFirst(t *testing.T) (*Stats, *Stats) {
	t.Helper()
	root := xmltree.MustParseString(figure1Doc)
	schema := xseek.InferSchema(root)
	prods := root.ChildElements()
	s1 := Extract(prods[0], schema, "GPS 1")
	s2 := Extract(prods[1], schema, "GPS 2")
	return s1, s2
}

func TestGroupCounts(t *testing.T) {
	s1, s2 := extractFirst(t)
	if got := s1.GroupCount("review"); got != 3 {
		t.Fatalf("s1 review count = %d, want 3", got)
	}
	if got := s2.GroupCount("review"); got != 2 {
		t.Fatalf("s2 review count = %d, want 2", got)
	}
	if got := s1.GroupCount("product"); got != 1 {
		t.Fatalf("s1 product count = %d, want 1", got)
	}
	if got := s1.GroupCount("never-seen"); got != 1 {
		t.Fatalf("unknown entity group = %d, want 1 (no division by zero)", got)
	}
}

func TestOccurrenceCounts(t *testing.T) {
	s1, _ := extractFirst(t)
	pro := Type{Entity: "review", Attribute: "pro"}
	if got := s1.Occ(pro, "easy to read"); got != 3 {
		t.Fatalf("easy to read occ = %d, want 3", got)
	}
	if got := s1.Occ(pro, "compact"); got != 2 {
		t.Fatalf("compact occ = %d, want 2", got)
	}
	if got := s1.Occ(pro, "large screen"); got != 0 {
		t.Fatalf("absent value occ = %d, want 0", got)
	}
	name := Type{Entity: "product", Attribute: "name"}
	if got := s1.Occ(name, "TomTom Go 630"); got != 1 {
		t.Fatalf("name occ = %d", got)
	}
}

func TestRelativeFrequency(t *testing.T) {
	s1, _ := extractFirst(t)
	pro := Type{Entity: "review", Attribute: "pro"}
	if got := s1.Rel(pro, "easy to read"); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("rel(easy to read) = %f, want 1.0", got)
	}
	if got := s1.Rel(pro, "compact"); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("rel(compact) = %f, want 0.667", got)
	}
}

func TestSignificanceOrdering(t *testing.T) {
	s1, _ := extractFirst(t)
	types := s1.TypesOf("review")
	if len(types) != 2 {
		t.Fatalf("review types = %v", types)
	}
	// pro has 5 total occurrences, bestuse 2.
	if types[0].Attribute != "pro" || types[1].Attribute != "bestuse" {
		t.Fatalf("significance order = %v", types)
	}
	if s1.TypeTotal(types[0]) != 5 || s1.TypeTotal(types[1]) != 2 {
		t.Fatalf("totals = %d, %d", s1.TypeTotal(types[0]), s1.TypeTotal(types[1]))
	}
}

func TestValueOrdering(t *testing.T) {
	s1, _ := extractFirst(t)
	pro := Type{Entity: "review", Attribute: "pro"}
	vals := s1.ValuesOf(pro)
	if len(vals) != 2 {
		t.Fatalf("pro values = %v", vals)
	}
	if vals[0].Value != "easy to read" || vals[0].Count != 3 {
		t.Fatalf("top value = %+v", vals[0])
	}
	if vals[1].Value != "compact" || vals[1].Count != 2 {
		t.Fatalf("second value = %+v", vals[1])
	}
}

func TestBooleanLeafEncoding(t *testing.T) {
	// The Figure 1 wrapper form: pros/pro/compact/yes.
	doc := `
<store>
  <product>
    <name>X</name>
    <reviews>
      <review><pros><pro><compact>yes</compact><bright>no</bright></pro></pros></review>
      <review><pros><pro><compact>yes</compact></pro></pros></review>
    </reviews>
  </product>
  <product><name>Y</name><reviews><review><pros><pro><compact>yes</compact></pro></pros></review></reviews></product>
</store>`
	root := xmltree.MustParseString(doc)
	schema := xseek.InferSchema(root)
	s := Extract(root.ChildElements()[0], schema, "X")
	pro := Type{Entity: "review", Attribute: "pro"}
	if got := s.Occ(pro, "compact"); got != 2 {
		t.Fatalf("compact (boolean form) occ = %d, want 2; types=%v", got, s.AllTypes())
	}
	// "no" leaves do not produce features.
	if got := s.Occ(pro, "bright"); got != 0 {
		t.Fatalf("negated feature counted: %d", got)
	}
}

func TestPerInstanceDeduplication(t *testing.T) {
	doc := `
<store>
  <product><name>A</name><reviews>
    <review><pro>compact</pro><pro>compact</pro></review>
    <review><pro>compact</pro></review>
  </reviews></product>
  <product><name>B</name><reviews><review><pro>light</pro></review></reviews></product>
</store>`
	root := xmltree.MustParseString(doc)
	schema := xseek.InferSchema(root)
	s := Extract(root.ChildElements()[0], schema, "A")
	pro := Type{Entity: "review", Attribute: "pro"}
	if got := s.Occ(pro, "compact"); got != 2 {
		t.Fatalf("occ = %d, want 2 (one per review instance)", got)
	}
}

func TestEntityAttribution(t *testing.T) {
	s1, _ := extractFirst(t)
	for _, tp := range s1.AllTypes() {
		switch tp.Attribute {
		case "name", "rating":
			if tp.Entity != "product" {
				t.Errorf("%s attributed to %s, want product", tp.Attribute, tp.Entity)
			}
		case "pro", "bestuse":
			if tp.Entity != "review" {
				t.Errorf("%s attributed to %s, want review", tp.Attribute, tp.Entity)
			}
		}
	}
}

func TestEntitiesSorted(t *testing.T) {
	s1, _ := extractFirst(t)
	ents := s1.Entities()
	for i := 1; i < len(ents); i++ {
		if ents[i-1] >= ents[i] {
			t.Fatalf("entities not sorted: %v", ents)
		}
	}
}

func TestCounts(t *testing.T) {
	s1, _ := extractFirst(t)
	// product: name, rating (2 features); review: pro{easy to read,
	// compact}, bestuse{auto} (3 features) = 5.
	if got := s1.FeatureCount(); got != 5 {
		t.Fatalf("FeatureCount = %d, want 5", got)
	}
	if got := s1.TypeCount(); got != 4 {
		t.Fatalf("TypeCount = %d, want 4", got)
	}
}

func TestStatLine(t *testing.T) {
	s1, _ := extractFirst(t)
	line := s1.StatLine(0)
	if !strings.Contains(line, "pro: easy to read: 3") {
		t.Fatalf("StatLine missing row:\n%s", line)
	}
	if got := len(strings.Split(s1.StatLine(2), "\n")); got != 2 {
		t.Fatalf("StatLine(2) rows = %d", got)
	}
}

func TestNewStatsFromCounts(t *testing.T) {
	pro := Type{Entity: "review", Attribute: "pro"}
	s := NewStatsFromCounts("synthetic",
		map[string]int{"review": 10},
		map[Feature]int{
			{Type: pro, Value: "compact"}: 8,
			{Type: pro, Value: "bright"}:  3,
			{Type: pro, Value: "zero"}:    0, // dropped
		})
	if got := s.Occ(pro, "compact"); got != 8 {
		t.Fatalf("occ = %d", got)
	}
	if got := s.Rel(pro, "compact"); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("rel = %f", got)
	}
	if s.Occ(pro, "zero") != 0 || len(s.ValuesOf(pro)) != 2 {
		t.Fatalf("zero-count feature should be dropped: %v", s.ValuesOf(pro))
	}
	if !s.HasType(pro) {
		t.Fatal("HasType(pro) = false")
	}
	if s.HasType(Type{Entity: "x", Attribute: "y"}) {
		t.Fatal("HasType of absent type = true")
	}
}

func TestDeterministicTieBreaks(t *testing.T) {
	pro := Type{Entity: "e", Attribute: "a"}
	for i := 0; i < 20; i++ {
		s := NewStatsFromCounts("t", map[string]int{"e": 5}, map[Feature]int{
			{Type: pro, Value: "bbb"}: 2,
			{Type: pro, Value: "aaa"}: 2,
			{Type: pro, Value: "ccc"}: 2,
		})
		vals := s.ValuesOf(pro)
		if vals[0].Value != "aaa" || vals[1].Value != "bbb" || vals[2].Value != "ccc" {
			t.Fatalf("tie break not lexicographic: %v", vals)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	root := xmltree.MustParseString(figure1Doc)
	schema := xseek.InferSchema(root)
	prod := root.ChildElements()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(prod, schema, "bench")
	}
}

func TestXMLAttributesBecomeFeatures(t *testing.T) {
	doc := `
<store>
  <product sku="A1" instock="yes">
    <name>X</name>
    <reviews>
      <review verified="true"><pro>compact</pro></review>
      <review><pro>compact</pro></review>
    </reviews>
  </product>
  <product sku="B2"><name>Y</name></product>
</store>`
	root := xmltree.MustParseString(doc)
	schema := xseek.InferSchema(root)
	s := Extract(root.ChildElements()[0], schema, "X")
	sku := Type{Entity: "product", Attribute: "sku"}
	if got := s.Occ(sku, "A1"); got != 1 {
		t.Fatalf("sku occ = %d, want 1 (types %v)", got, s.AllTypes())
	}
	// Attributes on entity instances attribute to that entity.
	verified := Type{Entity: "review", Attribute: "verified"}
	if got := s.Occ(verified, "true"); got != 1 {
		t.Fatalf("verified occ = %d, want 1", got)
	}
	// instock="yes" stays an attribute feature with its literal value.
	instock := Type{Entity: "product", Attribute: "instock"}
	if got := s.Occ(instock, "yes"); got != 1 {
		t.Fatalf("instock occ = %d, want 1", got)
	}
}

func TestAttributeOnConnectionNodeAttachesToEntity(t *testing.T) {
	doc := `
<store>
  <product>
    <name>X</name>
    <shipping speed="fast"><carrier>ups</carrier></shipping>
  </product>
  <product><name>Y</name></product>
</store>`
	root := xmltree.MustParseString(doc)
	schema := xseek.InferSchema(root)
	s := Extract(root.ChildElements()[0], schema, "X")
	speed := Type{Entity: "product", Attribute: "speed"}
	if got := s.Occ(speed, "fast"); got != 1 {
		t.Fatalf("speed occ = %d; types %v", got, s.AllTypes())
	}
}
