// Package feature extracts (entity, attribute, value) features from
// XML search results and aggregates their occurrence statistics — the
// "Feature Extractor" box of XSACT's architecture (Figure 3).
//
// A feature is a triplet (entity, attribute, value), e.g.
// (review, pro, compact); a feature type is the (entity, attribute)
// pair. The occurrence of feature (t, v) in a result is the number of
// instances of t's entity that carry attribute = v, and its relative
// frequency divides by the number of entity instances in the result —
// "8 of 11 reviewers say compact" = 73%.
package feature
