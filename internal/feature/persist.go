package feature

import (
	"encoding/gob"
	"fmt"
	"io"
)

// gobStats is the wire form of Stats: plain maps, no ordering caches
// (they are recomputed on load, keeping freeze the single source of
// ordering truth).
type gobStats struct {
	Label      string
	GroupCount map[string]int
	Occ        map[Type]map[string]int
}

// Save writes the statistics with encoding/gob. Extraction over a
// product with hundreds of reviews is the most expensive step of the
// interactive pipeline, so callers serving repeat comparisons can
// cache Stats alongside the corpus.
func (s *Stats) Save(w io.Writer) error {
	g := gobStats{Label: s.Label, GroupCount: s.groupCount, Occ: s.occ}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("feature: save stats: %w", err)
	}
	return nil
}

// LoadStats reads statistics written by Save and rebuilds the
// significance orderings.
func LoadStats(r io.Reader) (*Stats, error) {
	var g gobStats
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("feature: load stats: %w", err)
	}
	s := &Stats{
		Label:      g.Label,
		groupCount: g.GroupCount,
		occ:        g.Occ,
		typeTotals: make(map[Type]int),
		types:      make(map[string][]Type),
		values:     make(map[Type][]ValueCount),
	}
	if s.groupCount == nil {
		s.groupCount = make(map[string]int)
	}
	if s.occ == nil {
		s.occ = make(map[Type]map[string]int)
	}
	for t, vals := range s.occ {
		for _, c := range vals {
			s.typeTotals[t] += c
		}
	}
	s.freeze()
	return s, nil
}
