package feature

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// Type identifies a feature type: an attribute of an entity.
type Type struct {
	Entity    string
	Attribute string
}

// String renders the type in the paper's "entity:attribute" style.
func (t Type) String() string { return t.Entity + ":" + t.Attribute }

// Less orders types deterministically (entity, then attribute).
func (t Type) Less(o Type) bool {
	if t.Entity != o.Entity {
		return t.Entity < o.Entity
	}
	return t.Attribute < o.Attribute
}

// Feature is a concrete (entity, attribute, value) triplet.
type Feature struct {
	Type
	Value string
}

// String renders "entity:attribute:value" as in the paper's Figure 1.
func (f Feature) String() string { return f.Type.String() + ":" + f.Value }

// ValueCount is a value of a feature type with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// Stats holds the feature statistics of one search result. Construct
// with Extract; the ordering accessors embody the significance order
// that validity (Desideratum 2) is defined against.
type Stats struct {
	// Label identifies the result in tables and logs.
	Label string

	groupCount map[string]int          // entity tag -> instance count in this result
	occ        map[Type]map[string]int // type -> value -> occurrences
	typeTotals map[Type]int            // type -> total occurrences
	entities   []string                // entity tags, sorted
	types      map[string][]Type       // entity -> types in significance order
	values     map[Type][]ValueCount   // type -> values in descending-count order
}

// affirmative reports whether a leaf value is a yes-marker, in which
// case the leaf's tag is the value and its parent's tag the attribute
// (the buzzillions "pro -> compact -> yes" encoding from Figure 1).
func affirmative(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "yes", "true", "y", "1":
		return true
	}
	return false
}

func negative(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "no", "false", "n", "0":
		return true
	}
	return false
}

// Extract computes the feature statistics of the result subtree rooted
// at result. The schema (from the whole document) supplies entity
// boundaries. Features are derived from leaf elements:
//
//   - plain leaf <pro>compact</pro> under entity review yields
//     (review, pro, compact);
//   - boolean leaf <compact>yes</compact> under parent <pro> yields
//     (review, pro, compact) too — the Figure 1 encoding; "no" leaves
//     are skipped (only affirmations count, as in the paper);
//   - leaves with no enclosing entity attach to the result root's tag.
//
// Occurrences count entity instances, so repeating <pro>compact</pro>
// twice inside one review still counts once for that review.
func Extract(result *xmltree.Node, schema *xseek.Schema, label string) *Stats {
	s := &Stats{
		Label:      label,
		groupCount: make(map[string]int),
		occ:        make(map[Type]map[string]int),
		typeTotals: make(map[Type]int),
		types:      make(map[string][]Type),
		values:     make(map[Type][]ValueCount),
	}

	// Count entity instances within the result (the result root counts
	// as one instance of its own tag even if not a schema entity, so
	// singleton attributes like product name get group size 1).
	s.groupCount[result.Tag] = 1
	result.Walk(func(n *xmltree.Node) bool {
		if n != result && n.Kind == xmltree.Element && schema.IsEntity(n) {
			s.groupCount[n.Tag]++
		}
		return true
	})

	// perInstance dedupes (entity instance, feature) pairs.
	perInstance := make(map[string]bool)

	result.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.Element {
			return true
		}
		// XML attributes are features of the element that carries them
		// — <product sku="A1"> yields (product, sku, A1). The carrying
		// element itself is the owning entity when it is one.
		for _, a := range n.Attrs {
			if a.Value == "" {
				continue
			}
			owner := n
			if n != result && !schema.IsEntity(n) {
				owner = owningEntity(n, result, schema)
			}
			f := Feature{Type: Type{Entity: owner.Tag, Attribute: a.Name}, Value: a.Value}
			key := owner.ID.String() + "\x00" + f.Type.String() + "\x00" + f.Value
			if !perInstance[key] {
				perInstance[key] = true
				s.add(f)
			}
		}
		if !n.IsLeafElement() {
			return true
		}
		v := n.Value()
		if v == "" {
			return true
		}
		var f Feature
		if affirmative(v) && n.Parent != nil && n.Parent.Kind == xmltree.Element {
			// <pro><compact>yes</compact></pro> form.
			f = Feature{Type: Type{Attribute: n.Parent.Tag}, Value: n.Tag}
		} else if negative(v) {
			return true
		} else {
			f = Feature{Type: Type{Attribute: n.Tag}, Value: v}
		}
		owner := owningEntity(n, result, schema)
		f.Entity = owner.Tag
		key := owner.ID.String() + "\x00" + f.Type.String() + "\x00" + f.Value
		if perInstance[key] {
			return true
		}
		perInstance[key] = true
		s.add(f)
		return true
	})

	s.freeze()
	return s
}

// owningEntity returns the entity instance a leaf belongs to: the
// nearest strict-ancestor entity within the result, or the result root.
// The leaf's own node is skipped even if its tag repeats (a repeating
// leaf like <pro> is a multi-valued attribute, not an entity).
func owningEntity(leaf, result *xmltree.Node, schema *xseek.Schema) *xmltree.Node {
	for cur := leaf.Parent; cur != nil && cur != result.Parent; cur = cur.Parent {
		if cur.Kind == xmltree.Element && (cur == result || schema.IsEntity(cur)) {
			return cur
		}
	}
	return result
}

func (s *Stats) add(f Feature) {
	vals := s.occ[f.Type]
	if vals == nil {
		vals = make(map[string]int)
		s.occ[f.Type] = vals
	}
	vals[f.Value]++
	s.typeTotals[f.Type]++
}

// freeze computes the deterministic significance orderings.
func (s *Stats) freeze() {
	entSet := make(map[string]bool)
	for t := range s.occ {
		entSet[t.Entity] = true
		s.types[t.Entity] = append(s.types[t.Entity], t)
	}
	for e := range entSet {
		s.entities = append(s.entities, e)
	}
	sort.Strings(s.entities)
	// Significance ties break toward the more *concentrated* type (the
	// one whose occurrences pile onto fewer values): "subcategory:
	// rain (28)" summarizes an entity set better than "price" with
	// sixty distinct values, even when both occur once per instance.
	maxValueCount := func(t Type) int {
		m := 0
		for _, c := range s.occ[t] {
			if c > m {
				m = c
			}
		}
		return m
	}
	for e, ts := range s.types {
		sort.Slice(ts, func(i, j int) bool {
			ti, tj := ts[i], ts[j]
			if s.typeTotals[ti] != s.typeTotals[tj] {
				return s.typeTotals[ti] > s.typeTotals[tj]
			}
			if mi, mj := maxValueCount(ti), maxValueCount(tj); mi != mj {
				return mi > mj
			}
			return ti.Less(tj)
		})
		s.types[e] = ts
	}
	for t, vals := range s.occ {
		vcs := make([]ValueCount, 0, len(vals))
		for v, c := range vals {
			vcs = append(vcs, ValueCount{Value: v, Count: c})
		}
		sort.Slice(vcs, func(i, j int) bool {
			if vcs[i].Count != vcs[j].Count {
				return vcs[i].Count > vcs[j].Count
			}
			return vcs[i].Value < vcs[j].Value
		})
		s.values[t] = vcs
	}
}

// Entities returns the entity tags present in the result, sorted.
func (s *Stats) Entities() []string { return s.entities }

// TypesOf returns the feature types of an entity in significance order
// (descending total occurrences; ties broken lexicographically).
func (s *Stats) TypesOf(entity string) []Type { return s.types[entity] }

// AllTypes returns every feature type in the result.
func (s *Stats) AllTypes() []Type {
	var out []Type
	for _, e := range s.entities {
		out = append(out, s.types[e]...)
	}
	return out
}

// HasType reports whether the result carries any feature of type t.
func (s *Stats) HasType(t Type) bool { return s.typeTotals[t] > 0 }

// ValuesOf returns the values of type t in descending occurrence
// order. The returned slice must not be modified.
func (s *Stats) ValuesOf(t Type) []ValueCount { return s.values[t] }

// Occ returns the occurrence count of feature (t, v).
func (s *Stats) Occ(t Type, v string) int { return s.occ[t][v] }

// TypeTotal returns the total occurrences of type t (its significance).
func (s *Stats) TypeTotal(t Type) int { return s.typeTotals[t] }

// GroupCount returns the number of instances of the entity in the
// result (the denominator of relative frequencies). Unknown entities
// report 1 so Rel never divides by zero.
func (s *Stats) GroupCount(entity string) int {
	if c := s.groupCount[entity]; c > 0 {
		return c
	}
	return 1
}

// Rel returns the relative frequency of feature (t, v) in the result:
// occurrences divided by entity instances, in [0, 1].
func (s *Stats) Rel(t Type, v string) float64 {
	return float64(s.Occ(t, v)) / float64(s.GroupCount(t.Entity))
}

// FeatureCount returns the number of distinct features in the result.
func (s *Stats) FeatureCount() int {
	n := 0
	for _, vals := range s.occ {
		n += len(vals)
	}
	return n
}

// TypeCount returns the number of distinct feature types.
func (s *Stats) TypeCount() int { return len(s.occ) }

// StatLine renders the "ATTR:VALUE:# of occ" listing of Figure 1 for
// the top k features, most significant first.
func (s *Stats) StatLine(k int) string {
	var rows []string
	for _, e := range s.entities {
		for _, t := range s.types[e] {
			for _, vc := range s.values[t] {
				rows = append(rows, fmt.Sprintf("%s: %s: %d", t.Attribute, vc.Value, vc.Count))
			}
		}
	}
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return strings.Join(rows, "\n")
}

// NewStatsFromCounts builds a Stats directly from explicit counts —
// the unit-test and synthetic-benchmark entry point that bypasses XML.
// groupCounts maps entity tag to instance count; counts maps features
// to occurrences.
func NewStatsFromCounts(label string, groupCounts map[string]int, counts map[Feature]int) *Stats {
	s := &Stats{
		Label:      label,
		groupCount: make(map[string]int, len(groupCounts)),
		occ:        make(map[Type]map[string]int),
		typeTotals: make(map[Type]int),
		types:      make(map[string][]Type),
		values:     make(map[Type][]ValueCount),
	}
	for e, c := range groupCounts {
		s.groupCount[e] = c
	}
	for f, c := range counts {
		if c <= 0 {
			continue
		}
		vals := s.occ[f.Type]
		if vals == nil {
			vals = make(map[string]int)
			s.occ[f.Type] = vals
		}
		vals[f.Value] += c
		s.typeTotals[f.Type] += c
	}
	s.freeze()
	return s
}
