package feature

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStatsSaveLoadRoundTrip(t *testing.T) {
	s1, _ := extractFirst(t)
	var buf bytes.Buffer
	if err := s1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != s1.Label {
		t.Fatalf("label = %q", back.Label)
	}
	if !reflect.DeepEqual(back.Entities(), s1.Entities()) {
		t.Fatalf("entities: %v vs %v", back.Entities(), s1.Entities())
	}
	for _, e := range s1.Entities() {
		if !reflect.DeepEqual(back.TypesOf(e), s1.TypesOf(e)) {
			t.Fatalf("type order for %s: %v vs %v", e, back.TypesOf(e), s1.TypesOf(e))
		}
		for _, tp := range s1.TypesOf(e) {
			if !reflect.DeepEqual(back.ValuesOf(tp), s1.ValuesOf(tp)) {
				t.Fatalf("values for %s differ", tp)
			}
			if back.GroupCount(tp.Entity) != s1.GroupCount(tp.Entity) {
				t.Fatalf("group count for %s differs", tp.Entity)
			}
		}
	}
	if back.FeatureCount() != s1.FeatureCount() || back.TypeCount() != s1.TypeCount() {
		t.Fatal("counts differ after round trip")
	}
}

func TestLoadStatsGarbage(t *testing.T) {
	if _, err := LoadStats(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage should not load")
	}
}

func TestLoadStatsEmpty(t *testing.T) {
	empty := NewStatsFromCounts("empty", nil, nil)
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FeatureCount() != 0 || len(back.Entities()) != 0 {
		t.Fatalf("empty stats round trip: %d features", back.FeatureCount())
	}
}
