package dataset

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func TestProductReviewsDeterministic(t *testing.T) {
	a := ProductReviews(ReviewsConfig{Seed: 1, ProductsPerCategory: 2, MinReviews: 3, MaxReviews: 6})
	b := ProductReviews(ReviewsConfig{Seed: 1, ProductsPerCategory: 2, MinReviews: 3, MaxReviews: 6})
	if xmltree.XMLString(a) != xmltree.XMLString(b) {
		t.Fatal("same seed produced different corpora")
	}
	c := ProductReviews(ReviewsConfig{Seed: 2, ProductsPerCategory: 2, MinReviews: 3, MaxReviews: 6})
	if xmltree.XMLString(a) == xmltree.XMLString(c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestProductReviewsShape(t *testing.T) {
	root := ProductReviews(ReviewsConfig{Seed: 7, ProductsPerCategory: 4, MinReviews: 5, MaxReviews: 10})
	prods := root.FindAll("product")
	if len(prods) != 12 { // 3 categories x 4
		t.Fatalf("products = %d, want 12", len(prods))
	}
	for _, p := range prods {
		if p.FirstChildElement("name") == nil || p.FirstChildElement("rating") == nil {
			t.Fatal("product missing name/rating")
		}
		reviews := p.FirstChildElement("reviews").ChildElements()
		if len(reviews) < 5 || len(reviews) > 10 {
			t.Fatalf("review count %d outside [5,10]", len(reviews))
		}
		for _, rev := range reviews {
			if len(rev.FindAll("pro")) == 0 {
				t.Fatal("review with no pros")
			}
		}
	}
}

func TestProductReviewsSchemaEntities(t *testing.T) {
	root := ProductReviews(ReviewsConfig{Seed: 3, ProductsPerCategory: 3, MinReviews: 4, MaxReviews: 8})
	s := xseek.InferSchema(root)
	if s.CategoryOf("catalog/product") != xseek.EntityNode {
		t.Fatal("product should be an entity")
	}
	if s.CategoryOf("catalog/product/reviews/review") != xseek.EntityNode {
		t.Fatal("review should be an entity")
	}
	if s.CategoryOf("catalog/product/rating") != xseek.AttributeNode {
		t.Fatal("rating should be an attribute")
	}
}

func TestProductReviewsRoundTripsThroughXML(t *testing.T) {
	root := ProductReviews(ReviewsConfig{Seed: 5, ProductsPerCategory: 2, MinReviews: 3, MaxReviews: 5})
	out := xmltree.XMLString(root)
	back, err := xmltree.ParseString(out)
	if err != nil {
		t.Fatalf("generated corpus does not reparse: %v", err)
	}
	if back.CountNodes() != root.CountNodes() {
		t.Fatalf("node count changed: %d vs %d", root.CountNodes(), back.CountNodes())
	}
}

func TestOutdoorRetailerShape(t *testing.T) {
	root := OutdoorRetailer(RetailerConfig{Seed: 1, ProductsPerBrand: 20})
	brands := root.FindAll("brand")
	if len(brands) != len(retailBrands) {
		t.Fatalf("brands = %d", len(brands))
	}
	for _, b := range brands {
		prods := b.FirstChildElement("products").ChildElements()
		if len(prods) != 20 {
			t.Fatalf("products per brand = %d", len(prods))
		}
	}
}

func TestOutdoorRetailerBrandFocus(t *testing.T) {
	root := OutdoorRetailer(RetailerConfig{Seed: 1, ProductsPerBrand: 120})
	for _, b := range root.FindAll("brand") {
		name := b.FirstChildElement("name").Value()
		var spec *brandSpec
		for i := range retailBrands {
			if retailBrands[i].name == name {
				spec = &retailBrands[i]
			}
		}
		if spec == nil {
			t.Fatalf("unknown brand %q", name)
		}
		counts := map[string]int{}
		jackets := 0
		for _, p := range b.FindAll("product") {
			if p.FirstChildElement("category").Value() != "jackets" {
				continue
			}
			jackets++
			counts[p.FirstChildElement("subcategory").Value()]++
		}
		if jackets == 0 {
			t.Fatalf("%s sells no jackets", name)
		}
		// The focus subcategory should be the (or near the) most
		// common; with a 6x boost it should hold a clear plurality.
		best, bestN := "", 0
		for sc, n := range counts {
			if n > bestN {
				best, bestN = sc, n
			}
		}
		if best != spec.focusSubcat {
			t.Errorf("%s focus = %q (want %q); counts=%v", name, best, spec.focusSubcat, counts)
		}
	}
}

func TestMoviesShapeAndQueries(t *testing.T) {
	root := Movies(MoviesConfig{Seed: 1, Movies: 150})
	movies := root.FindAll("movie")
	if len(movies) != 150 {
		t.Fatalf("movies = %d", len(movies))
	}
	for _, m := range movies[:10] {
		if len(m.FindAll("genre")) == 0 || len(m.FindAll("keyword")) < 2 {
			t.Fatal("movie missing genres/keywords")
		}
		if len(m.FindAll("actor")) < 3 {
			t.Fatal("movie missing cast")
		}
	}
	if len(MovieQueries()) != 8 {
		t.Fatalf("want 8 benchmark queries, got %d", len(MovieQueries()))
	}
}

func TestMoviesQueriesReturnResults(t *testing.T) {
	root := Movies(MoviesConfig{Seed: 1, Movies: 300})
	eng := xseek.New(root)
	sizes := make([]int, 0, 8)
	for _, q := range MovieQueries() {
		res, err := eng.Search(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if len(res) < 2 {
			t.Fatalf("query %q returned %d results; differentiation needs >= 2", q, len(res))
		}
		sizes = append(sizes, len(res))
	}
	// The workload should span a range of result-set sizes.
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 2*min {
		t.Logf("query result sizes: %v", sizes)
		t.Error("benchmark queries do not vary result-set size by at least 2x")
	}
}

func TestReviewAndRetailerQueriesWork(t *testing.T) {
	reviews := ProductReviews(ReviewsConfig{Seed: 2, ProductsPerCategory: 4, MinReviews: 5, MaxReviews: 10})
	re := xseek.New(reviews)
	for _, q := range ReviewQueries() {
		res, err := re.Search(q)
		if err != nil {
			t.Fatalf("reviews query %q: %v", q, err)
		}
		if len(res) == 0 {
			t.Fatalf("reviews query %q returned nothing", q)
		}
	}
	retail := OutdoorRetailer(RetailerConfig{Seed: 2, ProductsPerBrand: 30})
	oe := xseek.New(retail)
	for _, q := range RetailerQueries() {
		res, err := oe.Search(q)
		if err != nil {
			t.Fatalf("retailer query %q: %v", q, err)
		}
		if len(res) == 0 {
			t.Fatalf("retailer query %q returned nothing", q)
		}
	}
}

func TestHelpers(t *testing.T) {
	if itoa(0) != "0" || itoa(42) != "42" || itoa(-7) != "-7" {
		t.Fatalf("itoa: %s %s %s", itoa(0), itoa(42), itoa(-7))
	}
	if ftoa1(4.25) != "4.3" && ftoa1(4.25) != "4.2" {
		t.Fatalf("ftoa1(4.25) = %s", ftoa1(4.25))
	}
	if ftoa1(3.96) != "4.0" {
		t.Fatalf("ftoa1(3.96) = %s", ftoa1(3.96))
	}
	if !strings.Contains(ftoa1(5.0), ".") {
		t.Fatal("ftoa1 must always include a decimal")
	}
}

func BenchmarkProductReviews(b *testing.B) {
	cfg := ReviewsConfig{Seed: 1, ProductsPerCategory: 4, MinReviews: 10, MaxReviews: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ProductReviews(cfg)
	}
}

func BenchmarkMovies(b *testing.B) {
	cfg := MoviesConfig{Seed: 1, Movies: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Movies(cfg)
	}
}
