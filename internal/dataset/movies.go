package dataset

import (
	"math/rand"

	"repro/internal/xmltree"
)

// MoviesConfig sizes the IMDB-style movie corpus behind the Figure 4
// benchmark.
type MoviesConfig struct {
	Seed int64
	// Movies is the corpus size. Zero means 300.
	Movies int
}

func (c MoviesConfig) normalized() MoviesConfig {
	if c.Movies <= 0 {
		c.Movies = 300
	}
	return c
}

var (
	movieGenres = []string{
		"action", "comedy", "drama", "thriller", "romance",
		"horror", "scifi", "documentary",
	}
	// genreKeywords gives each genre an affinity pool; a movie's
	// keywords come mostly from its genres' pools, which controls how
	// many results each QM query (genre + keyword) returns.
	genreKeywords = map[string][]string{
		"action":      {"revenge", "heist", "chase", "explosion", "martial arts"},
		"comedy":      {"romance", "family", "road trip", "wedding", "workplace"},
		"drama":       {"war", "family", "courtroom", "coming of age", "politics"},
		"thriller":    {"detective", "conspiracy", "serial killer", "heist", "hostage"},
		"romance":     {"love triangle", "wedding", "second chance", "holiday", "letters"},
		"horror":      {"vampire", "haunted house", "zombie", "curse", "found footage"},
		"scifi":       {"space", "time travel", "robot", "alien", "dystopia"},
		"documentary": {"nature", "music", "sports", "history", "crime"},
	}
	movieAdjectives = []string{
		"Silent", "Crimson", "Last", "Hidden", "Broken", "Golden", "Midnight",
		"Lost", "Burning", "Frozen", "Electric", "Savage", "Gentle", "Iron",
	}
	movieNouns = []string{
		"Horizon", "Echo", "Empire", "River", "Promise", "Shadow", "Garden",
		"Signal", "Harvest", "Voyage", "Cipher", "Reckoning", "Outpost", "Mirror",
	}
	actorPool = []string{
		"Ada Brooks", "Ben Cortez", "Clara Voss", "Dev Anand", "Elena Marsh",
		"Felix Okoye", "Grace Lindqvist", "Hugo Barros", "Iris Takeda",
		"Jonas Werner", "Kira Novak", "Liam Doyle", "Mara Castellanos",
		"Nils Bergman", "Odette Laurent", "Pavel Dmitriev", "Quinn Harlow",
		"Rosa Delgado", "Sven Holm", "Tessa Wright", "Umar Farouk",
		"Vera Kovacs", "Wes Calder", "Xenia Petrova", "Yusuf Demir",
		"Zoe Albright", "Arlo Finch", "Bella Ramos", "Cyrus Vane", "Dara Singh",
	}
	directorPool = []string{
		"A. Kurosawa Jr", "B. Varga", "C. Almeida", "D. Lindgren", "E. Moreau",
		"F. Castellano", "G. Petrov", "H. Tanaka", "I. Svensson", "J. Okafor",
	}
	languagePool = []string{"english", "french", "japanese", "spanish", "korean", "german"}
	countryPool  = []string{"usa", "france", "japan", "spain", "korea", "germany", "uk"}
)

// Movies generates the IMDB-style corpus:
//
//	movies/movie{title, year, rating, genre*, keyword*,
//	             director, language, country, cast/actor*}
//
// Genres are assigned with decreasing popularity (action most common)
// so the eight benchmark queries span a range of result-set sizes, as
// a real query mix would.
func Movies(cfg MoviesConfig) *xmltree.Node {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.NewElement("movies")

	genreProfile := newProfile(r, movieGenres)
	// Deterministic popularity skew, independent of the random weights.
	for i := range genreProfile.weights {
		w := 1.0 / float64(i+1)
		genreProfile.total += w - genreProfile.weights[i]
		genreProfile.weights[i] = w
	}
	actorProfile := newProfile(r, actorPool)

	for m := 0; m < cfg.Movies; m++ {
		movie := root.Elem("movie")
		title := movieAdjectives[r.Intn(len(movieAdjectives))] + " " +
			movieNouns[r.Intn(len(movieNouns))] + " " + itoa(1960+r.Intn(50))
		movie.Leaf("title", title)
		movie.Leaf("year", itoa(1960+r.Intn(50)))
		movie.Leaf("rating", ftoa1(3.0+r.Float64()*6.5))

		genres := genreProfile.pickN(r, 1+r.Intn(3))
		for _, g := range genres {
			movie.Leaf("genre", g)
		}
		// Keywords: mostly from the movie's genres, a few strays.
		kwProfile := newProfile(r, keywordPoolFor(genres))
		for _, kw := range kwProfile.pickN(r, 2+r.Intn(5)) {
			movie.Leaf("keyword", kw)
		}
		if r.Intn(4) == 0 {
			movie.Leaf("keyword", genreKeywords[movieGenres[r.Intn(len(movieGenres))]][r.Intn(5)])
		}

		movie.Leaf("director", directorPool[r.Intn(len(directorPool))])
		movie.Leaf("language", languagePool[r.Intn(len(languagePool))])
		movie.Leaf("country", countryPool[r.Intn(len(countryPool))])
		cast := movie.Elem("cast")
		for _, a := range actorProfile.pickN(r, 3+r.Intn(6)) {
			cast.Leaf("actor", a)
		}
	}
	return finish(root)
}

func keywordPoolFor(genres []string) []string {
	var pool []string
	for _, g := range genres {
		pool = append(pool, genreKeywords[g]...)
	}
	return pool
}

// MovieQueries returns the eight benchmark queries QM1–QM8 used to
// regenerate Figure 4. The paper does not list its IMDB queries; these
// eight combine genres, keywords and languages at varying selectivity
// so the per-query result sets span roughly 4–20 results — the scale
// at which the paper's DoD axis (tens) lives (see EXPERIMENTS.md).
func MovieQueries() []string {
	return []string{
		"action revenge english", // QM1
		"comedy romance french",  // QM2
		"thriller detective",     // QM3
		"drama war german",       // QM4
		"scifi space",            // QM5
		"horror vampire",         // QM6
		"action heist spanish",   // QM7
		"comedy family korean",   // QM8
	}
}
