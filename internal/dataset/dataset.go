package dataset

import (
	"math/rand"

	"repro/internal/xmltree"
)

// profile draws values from a pool with per-instance weights so that
// different products/brands/movies favour different features.
type profile struct {
	pool    []string
	weights []float64
	total   float64
}

// newProfile assigns each pool entry a random squared weight; squaring
// sharpens the skew so a few values dominate (as review data does).
func newProfile(r *rand.Rand, pool []string) *profile {
	p := &profile{pool: pool, weights: make([]float64, len(pool))}
	for i := range pool {
		w := r.Float64()
		p.weights[i] = w * w
		p.total += p.weights[i]
	}
	return p
}

// pick samples one value according to the weights.
func (p *profile) pick(r *rand.Rand) string {
	x := r.Float64() * p.total
	for i, w := range p.weights {
		x -= w
		if x <= 0 {
			return p.pool[i]
		}
	}
	return p.pool[len(p.pool)-1]
}

// pickN samples up to n distinct values.
func (p *profile) pickN(r *rand.Rand, n int) []string {
	if n > len(p.pool) {
		n = len(p.pool)
	}
	seen := make(map[string]bool, n)
	var out []string
	for guard := 0; len(out) < n && guard < 20*n; guard++ {
		v := p.pick(r)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// finish assigns Dewey IDs and returns the tree.
func finish(root *xmltree.Node) *xmltree.Node {
	root.AssignIDs(nil)
	return root
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ftoa1 renders a float with one decimal (ratings like "4.2").
func ftoa1(f float64) string {
	whole := int(f)
	frac := int((f-float64(whole))*10 + 0.5)
	if frac == 10 {
		whole++
		frac = 0
	}
	return itoa(whole) + "." + itoa(frac)
}
