package dataset

import (
	"math/rand"

	"repro/internal/xmltree"
)

// ReviewsConfig sizes the Product Reviews corpus.
type ReviewsConfig struct {
	// Seed drives all sampling; equal seeds give identical corpora.
	Seed int64
	// ProductsPerCategory is how many products each of the three
	// categories gets. Zero means 8.
	ProductsPerCategory int
	// MinReviews / MaxReviews bound the per-product review count.
	// Zeros mean 10 and 80 — "a product can have hundreds of reviews"
	// scaled to keep tests fast; raise for stress runs.
	MinReviews, MaxReviews int
}

func (c ReviewsConfig) normalized() ReviewsConfig {
	if c.ProductsPerCategory <= 0 {
		c.ProductsPerCategory = 8
	}
	if c.MinReviews <= 0 {
		c.MinReviews = 10
	}
	if c.MaxReviews < c.MinReviews {
		c.MaxReviews = c.MinReviews + 70
	}
	return c
}

type reviewCategory struct {
	name     string
	brands   []string
	models   map[string][]string // brand -> model lines (kept consistent: Nuvi is Garmin's)
	pros     []string
	cons     []string
	bestuses []string
}

var reviewCategories = []reviewCategory{
	{
		name:   "GPS",
		brands: []string{"TomTom", "Garmin", "Magellan"},
		models: map[string][]string{
			"TomTom":   {"Go 630", "Go 730", "One XL", "Go 920"},
			"Garmin":   {"Nuvi 260", "Nuvi 760", "Zumo 550", "StreetPilot c340"},
			"Magellan": {"RoadMate 1412", "Maestro 4250", "CrossoverGPS", "Triton 500"},
		},
		pros: []string{
			"compact", "easy to read", "easy to setup", "acquire satellites quickly",
			"large screen", "accurate directions", "long battery life", "loud speaker",
			"fast routing", "clear voice prompts",
		},
		cons: []string{
			"short battery life", "expensive", "slow route calculation",
			"small screen", "poor mounting", "outdated maps",
		},
		bestuses: []string{"auto", "walking", "cycling", "travel", "boating"},
	},
	{
		name:   "mobile phone",
		brands: []string{"Nokia", "Motorola", "Samsung"},
		models: map[string][]string{
			"Nokia":    {"N95", "E71", "6300", "5310"},
			"Motorola": {"RAZR V3", "KRZR K1", "ROKR E8", "Q9"},
			"Samsung":  {"SGH A707", "Blackjack II", "Juke", "Glyde"},
		},
		pros: []string{
			"long battery life", "great camera", "loud speaker", "compact",
			"durable", "good reception", "easy texting", "bright screen",
			"expandable memory", "bluetooth works well",
		},
		cons: []string{
			"poor camera", "weak reception", "flimsy keypad",
			"short battery life", "small buttons", "slow menus",
		},
		bestuses: []string{"business", "texting", "music", "travel", "photos"},
	},
	{
		name:   "digital camera",
		brands: []string{"Canon", "Nikon", "Sony"},
		models: map[string][]string{
			"Canon": {"PowerShot SD1000", "Rebel XTi", "A590", "PowerShot G9"},
			"Nikon": {"D40", "Coolpix L18", "D60", "Coolpix P80"},
			"Sony":  {"Cybershot W120", "H50", "Alpha A200", "Cybershot T70"},
		},
		pros: []string{
			"sharp images", "fast autofocus", "compact", "good low light",
			"long zoom", "easy controls", "vivid colors", "image stabilization",
			"quick startup", "great video mode",
		},
		cons: []string{
			"slow flash recycle", "noisy at high iso", "short battery life",
			"no viewfinder", "bulky", "weak flash",
		},
		bestuses: []string{"travel", "family photos", "sports", "landscapes", "parties"},
	},
}

var reviewerNames = []string{
	"alex", "jordan", "casey", "morgan", "taylor", "riley", "sam", "jamie",
	"drew", "quinn", "avery", "parker", "reese", "rowan", "sage", "blake",
}

// ProductReviews generates the buzzillions-style corpus:
//
//	catalog/product{name, brand, category, price, rating,
//	                reviews/review{reviewer, stars, pro*, con*, bestuse?}}
//
// Each product draws its pros/cons/best-uses from category pools via a
// product-specific skew profile, so two products of the same category
// share feature types but differ in value frequencies — exactly the
// situation DFS construction differentiates.
func ProductReviews(cfg ReviewsConfig) *xmltree.Node {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.NewElement("catalog")
	for _, cat := range reviewCategories {
		for p := 0; p < cfg.ProductsPerCategory; p++ {
			brand := cat.brands[p%len(cat.brands)]
			lineup := cat.models[brand]
			model := lineup[(p/len(cat.brands))%len(lineup)]
			prod := root.Elem("product")
			prod.Leaf("name", brand+" "+model)
			prod.Leaf("brand", brand)
			prod.Leaf("category", cat.name)
			prod.Leaf("price", itoa(40+r.Intn(400)))
			prod.Leaf("rating", ftoa1(2.5+r.Float64()*2.5))

			proProfile := newProfile(r, cat.pros)
			conProfile := newProfile(r, cat.cons)
			useProfile := newProfile(r, cat.bestuses)

			reviews := prod.Elem("reviews")
			n := cfg.MinReviews + r.Intn(cfg.MaxReviews-cfg.MinReviews+1)
			for i := 0; i < n; i++ {
				rev := reviews.Elem("review")
				rev.Leaf("reviewer", reviewerNames[r.Intn(len(reviewerNames))])
				rev.Leaf("stars", itoa(1+r.Intn(5)))
				for _, pro := range proProfile.pickN(r, 1+r.Intn(4)) {
					rev.Leaf("pro", pro)
				}
				if r.Intn(3) > 0 {
					for _, con := range conProfile.pickN(r, 1+r.Intn(2)) {
						rev.Leaf("con", con)
					}
				}
				if r.Intn(2) == 0 {
					rev.Leaf("bestuse", useProfile.pick(r))
				}
			}
		}
	}
	return finish(root)
}

// ReviewQueries returns keyword queries that exercise the Product
// Reviews corpus (used by examples and smoke tests).
func ReviewQueries() []string {
	return []string{
		"tomtom gps",
		"garmin gps",
		"nokia phone",
		"canon camera",
		"gps travel",
	}
}
