// Package dataset generates the synthetic XML corpora this repository
// substitutes for the paper's three crawled datasets (none of which is
// retrievable offline):
//
//   - ProductReviews — buzzillions.com-style products (GPS, mobile
//     phones, digital cameras) with per-review pro/con/best-use
//     features (the paper's Figure 1 data);
//   - OutdoorRetailer — REI.com-style brands with product catalogs
//     (category, subcategory, gender, features);
//   - Movies — the IMDB-style corpus behind the Figure 4 benchmark,
//     with the eight evaluation queries QM1–QM8.
//
// Generators are deterministic given the seed, and each result class
// carries a distinct sampling profile so feature-frequency
// distributions genuinely differ across results — the property the
// DFS algorithms exercise. The DFS generator sees only (entity,
// attribute, value, count) statistics, so matching the shape (entity
// cardinalities, feature variety, frequency skew) of the originals
// preserves the behaviour the paper measures.
package dataset
