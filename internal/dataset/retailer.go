package dataset

import (
	"math/rand"

	"repro/internal/xmltree"
)

// RetailerConfig sizes the Outdoor Retailer corpus.
type RetailerConfig struct {
	Seed int64
	// ProductsPerBrand bounds each brand's catalog size. Zero means 60
	// ("a brand can have hundreds of products", scaled down).
	ProductsPerBrand int
}

func (c RetailerConfig) normalized() RetailerConfig {
	if c.ProductsPerBrand <= 0 {
		c.ProductsPerBrand = 60
	}
	return c
}

// brandSpec gives each brand a focus so that brand-level comparison
// tables expose the paper's narrative: "Marmot mainly sells rain
// jackets, while Columbia focuses on insulated ski jackets".
type brandSpec struct {
	name string
	// focusSubcat is over-weighted in the brand's jacket lineup.
	focusSubcat string
	// focusFeature is over-weighted among product features.
	focusFeature string
}

var retailBrands = []brandSpec{
	{"Marmot", "rain", "waterproof"},
	{"Columbia", "insulated ski", "insulated"},
	{"Patagonia", "fleece", "recycled materials"},
	{"NorthFace", "softshell", "windproof"},
	{"Arcteryx", "hardshell", "breathable"},
	{"REI Co-op", "windbreaker", "packable"},
}

var (
	retailCategories = []string{"jackets", "footwear", "tents", "packs", "bicycles"}
	jacketSubcats    = []string{"rain", "insulated ski", "softshell", "fleece", "windbreaker", "hardshell"}
	otherSubcats     = map[string][]string{
		"footwear": {"hiking boots", "trail runners", "sandals", "climbing shoes"},
		"tents":    {"backpacking", "camping", "ultralight", "four season"},
		"packs":    {"daypack", "overnight", "expedition", "hydration"},
		"bicycles": {"road", "mountain", "hybrid", "commuter"},
	}
	genders        = []string{"men", "women", "unisex"}
	retailFeatures = []string{
		"waterproof", "breathable", "lightweight", "packable", "hooded",
		"insulated", "recycled materials", "windproof", "adjustable fit",
		"pit zips", "reflective trim", "stretch fabric",
	}
	productNouns = []string{
		"Summit", "Ridge", "Cascade", "Alpine", "Trail", "Storm", "Peak",
		"Canyon", "Glacier", "Meadow", "Basin", "Crest",
	}
)

// OutdoorRetailer generates the REI-style corpus:
//
//	retailer/brand{name, products/product{name, category, subcategory,
//	               gender, price, feature*}}
//
// Jackets dominate each catalog (the example query domain), and each
// brand's focus subcategory/feature is sampled three times as often as
// the rest, so brand-level feature statistics differ markedly.
func OutdoorRetailer(cfg RetailerConfig) *xmltree.Node {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.NewElement("retailer")
	for _, spec := range retailBrands {
		brand := root.Elem("brand")
		brand.Leaf("name", spec.name)
		products := brand.Elem("products")

		featProfile := newProfile(r, retailFeatures)
		boost(featProfile, spec.focusFeature)
		subcatProfile := newProfile(r, jacketSubcats)
		boost(subcatProfile, spec.focusSubcat)

		for p := 0; p < cfg.ProductsPerBrand; p++ {
			prod := products.Elem("product")
			category := retailCategories[0] // jackets dominate
			if r.Intn(3) == 0 {
				category = retailCategories[1+r.Intn(len(retailCategories)-1)]
			}
			var subcat string
			if category == "jackets" {
				subcat = subcatProfile.pick(r)
			} else {
				pool := otherSubcats[category]
				subcat = pool[r.Intn(len(pool))]
			}
			gender := genders[r.Intn(len(genders))]
			prod.Leaf("name", spec.name+" "+productNouns[r.Intn(len(productNouns))]+" "+itoa(p))
			prod.Leaf("category", category)
			prod.Leaf("subcategory", subcat)
			prod.Leaf("gender", gender)
			prod.Leaf("price", itoa(30+r.Intn(500)))
			for _, f := range featProfile.pickN(r, 2+r.Intn(4)) {
				prod.Leaf("feature", f)
			}
		}
	}
	return finish(root)
}

// boost makes one pool entry dominate: its weight becomes three times
// the sum of all the others, so the brand's focus value is sampled in
// roughly three of every four draws regardless of the random weights.
func boost(p *profile, value string) {
	for i, v := range p.pool {
		if v == value {
			rest := p.total - p.weights[i]
			p.total = rest + 3*rest
			p.weights[i] = 3 * rest
			return
		}
	}
}

// BrandFocus is the ground-truth specialty the generator gives a brand
// — what a shopper should be able to learn from a brand comparison
// table ("Marmot mainly sells rain jackets").
type BrandFocus struct {
	Brand       string
	Subcategory string // dominant jacket subcategory
	Feature     string // dominant product feature
}

// BrandFocuses exposes the generator's ground truth for evaluation:
// the focus-recovery experiment checks whether DFS tables surface
// these values (see internal/experiment).
func BrandFocuses() []BrandFocus {
	out := make([]BrandFocus, len(retailBrands))
	for i, b := range retailBrands {
		out[i] = BrandFocus{Brand: b.name, Subcategory: b.focusSubcat, Feature: b.focusFeature}
	}
	return out
}

// RetailerQueries returns keyword queries for the Outdoor Retailer
// corpus, led by the paper's "men, jackets" walkthrough.
func RetailerQueries() []string {
	return []string{
		"men jackets",
		"women jackets",
		"rain jackets",
		"hiking boots",
		"mountain bicycles",
	}
}
