package snippet

import (
	"fmt"
	"strings"

	"repro/internal/feature"
	"repro/internal/index"
)

// Snippet is a size-bounded, frequency-ranked digest of one result.
type Snippet struct {
	Label    string
	Features []feature.Feature
}

// Options configures snippet generation.
type Options struct {
	// Size is the maximum number of features shown. Zero means 4,
	// roughly what the paper's Figure 1 snippets display.
	Size int
	// Query biases selection: features whose value or attribute
	// contains a query keyword are ranked first, as in eXtract.
	Query string
}

// Generate builds the snippet of one result from its statistics.
// Features are ranked by (query relevance, occurrence count,
// lexicographic) and truncated to the size bound.
func Generate(stats *feature.Stats, opts Options) *Snippet {
	size := opts.Size
	if size <= 0 {
		size = 4
	}
	terms := index.TokenizeQuery(opts.Query)

	type scored struct {
		f     feature.Feature
		bias  int
		count int
	}
	var all []scored
	for _, t := range stats.AllTypes() {
		for _, vc := range stats.ValuesOf(t) {
			f := feature.Feature{Type: t, Value: vc.Value}
			all = append(all, scored{f: f, bias: bias(f, terms), count: vc.Count})
		}
	}
	// Selection sort of the top `size` keeps the ordering rule in one
	// place and is plenty fast for snippet-scale inputs.
	better := func(a, b scored) bool {
		if a.bias != b.bias {
			return a.bias > b.bias
		}
		if a.count != b.count {
			return a.count > b.count
		}
		if a.f.Type != b.f.Type {
			return a.f.Type.Less(b.f.Type)
		}
		return a.f.Value < b.f.Value
	}
	for i := 0; i < len(all) && i < size; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if better(all[j], all[best]) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if len(all) > size {
		all = all[:size]
	}
	out := &Snippet{Label: stats.Label}
	for _, s := range all {
		out.Features = append(out.Features, s.f)
	}
	return out
}

func bias(f feature.Feature, terms []string) int {
	if len(terms) == 0 {
		return 0
	}
	hay := strings.ToLower(f.Attribute + " " + f.Value)
	n := 0
	for _, t := range terms {
		if strings.Contains(hay, t) {
			n++
		}
	}
	return n
}

// String renders the snippet as a compact one-result digest.
func (s *Snippet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Label)
	for _, f := range s.Features {
		fmt.Fprintf(&b, " [%s: %s]", f.Attribute, f.Value)
	}
	return b.String()
}

// AsSelection converts a snippet to a core-compatible view: the set of
// feature types it shows with the number of values shown per type.
// This is how the paper compares snippet DoD against DFS DoD (its
// Figure 1 snippets have DoD 2 versus XSACT's 5).
func (s *Snippet) AsSelection() map[feature.Type]int {
	out := make(map[feature.Type]int)
	for _, f := range s.Features {
		out[f.Type]++
	}
	return out
}
