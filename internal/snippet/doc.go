// Package snippet implements eXtract-style query-biased snippet
// generation for XML search results (Huang, Liu, Chen, SIGMOD 2008) —
// the baseline XSACT's introduction contrasts with. A snippet shows
// each result's most frequently occurring information within a size
// bound, independently of the other results, which is why snippets are
// "generally not comparable" across results.
package snippet
