package snippet

import (
	"strings"
	"testing"

	"repro/internal/feature"
)

func mkStats(label string) *feature.Stats {
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	use := feature.Type{Entity: "review", Attribute: "bestuse"}
	name := feature.Type{Entity: "product", Attribute: "name"}
	return feature.NewStatsFromCounts(label,
		map[string]int{"review": 11, "product": 1},
		map[feature.Feature]int{
			{Type: pro, Value: "easy to read"}:   10,
			{Type: pro, Value: "compact"}:        8,
			{Type: pro, Value: "large screen"}:   1,
			{Type: use, Value: "auto"}:           6,
			{Type: name, Value: "TomTom Go 630"}: 1,
		})
}

func TestSizeBound(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{Size: 3})
	if len(s.Features) != 3 {
		t.Fatalf("snippet size = %d, want 3", len(s.Features))
	}
}

func TestDefaultSize(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{})
	if len(s.Features) != 4 {
		t.Fatalf("default snippet size = %d, want 4", len(s.Features))
	}
}

func TestFrequencyRanking(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{Size: 2})
	if s.Features[0].Value != "easy to read" || s.Features[1].Value != "compact" {
		t.Fatalf("ranking = %v", s.Features)
	}
}

func TestQueryBias(t *testing.T) {
	// "tomtom" matches only the name feature (count 1); the bias must
	// lift it above the frequent pros.
	s := Generate(mkStats("GPS 1"), Options{Size: 2, Query: "tomtom"})
	if s.Features[0].Value != "TomTom Go 630" {
		t.Fatalf("query bias failed: %v", s.Features)
	}
}

func TestSnippetSmallerThanCorpus(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{Size: 50})
	if len(s.Features) != 5 {
		t.Fatalf("oversize bound kept %d features, want all 5", len(s.Features))
	}
}

func TestStringRendering(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{Size: 2})
	out := s.String()
	if !strings.HasPrefix(out, "GPS 1:") || !strings.Contains(out, "easy to read") {
		t.Fatalf("String = %q", out)
	}
}

func TestAsSelection(t *testing.T) {
	s := Generate(mkStats("GPS 1"), Options{Size: 3})
	sel := s.AsSelection()
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	// Top 3 by count: easy to read (10), compact (8), auto (6):
	// pro depth 2, bestuse depth 1.
	if sel[pro] != 2 {
		t.Fatalf("AsSelection = %v", sel)
	}
	total := 0
	for _, d := range sel {
		total += d
	}
	if total != 3 {
		t.Fatalf("selection size = %d", total)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	pro := feature.Type{Entity: "e", Attribute: "a"}
	st := feature.NewStatsFromCounts("t", map[string]int{"e": 4},
		map[feature.Feature]int{
			{Type: pro, Value: "zzz"}: 2,
			{Type: pro, Value: "aaa"}: 2,
		})
	for i := 0; i < 10; i++ {
		s := Generate(st, Options{Size: 1})
		if s.Features[0].Value != "aaa" {
			t.Fatalf("tie break not deterministic: %v", s.Features)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	st := mkStats("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(st, Options{Size: 4, Query: "tomtom gps"})
	}
}
