// Package dewey implements Dewey (path) labels for nodes of an ordered
// tree. A Dewey ID encodes the path from the root to a node as the
// sequence of 0-based child ordinals, so the root is the empty ID and
// the second child of the root's first child is [0 1].
//
// Dewey IDs give constant-time ancestor tests and lowest-common-ancestor
// computation, and comparing two IDs lexicographically yields document
// order. They are the node-addressing substrate for the SLCA algorithms
// in package slca and the inverted index in package index.
package dewey
