package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey label: the child-ordinal path from the root to a node.
// The zero value (nil) is the root. IDs must be treated as immutable;
// all methods return fresh slices where mutation would otherwise leak.
type ID []int

// Root returns the Dewey ID of the root node (the empty path).
func Root() ID { return ID{} }

// New returns an ID with the given components. The slice is copied.
func New(components ...int) ID {
	id := make(ID, len(components))
	copy(id, components)
	return id
}

// Child returns the ID of the ord-th child (0-based) of id.
func (id ID) Child(ord int) ID {
	child := make(ID, len(id)+1)
	copy(child, id)
	child[len(id)] = ord
	return child
}

// Parent returns the ID of the parent node and true, or nil and false if
// id is the root.
func (id ID) Parent() (ID, bool) {
	if len(id) == 0 {
		return nil, false
	}
	parent := make(ID, len(id)-1)
	copy(parent, id[:len(id)-1])
	return parent, true
}

// Level returns the depth of the node; the root has level 0.
func (id ID) Level() int { return len(id) }

// Clone returns an independent copy of id.
func (id ID) Clone() ID {
	out := make(ID, len(id))
	copy(out, id)
	return out
}

// Compare orders IDs in document order (preorder). It returns a negative
// number if id precedes other, zero if they label the same node, and a
// positive number otherwise. An ancestor precedes its descendants.
func (id ID) Compare(other ID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if id[i] != other[i] {
			if id[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	default:
		return 0
	}
}

// Equal reports whether the two IDs label the same node.
func (id ID) Equal(other ID) bool { return id.Compare(other) == 0 }

// IsAncestorOf reports whether id is a proper ancestor of other.
func (id ID) IsAncestorOf(other ID) bool {
	if len(id) >= len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsAncestorOrSelf reports whether id is other or an ancestor of other.
func (id ID) IsAncestorOrSelf(other ID) bool {
	return id.Equal(other) || id.IsAncestorOf(other)
}

// LCA returns the Dewey ID of the lowest common ancestor of id and other.
func (id ID) LCA(other ID) ID {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && id[i] == other[i] {
		i++
	}
	out := make(ID, i)
	copy(out, id[:i])
	return out
}

// PrefixLCA is LCA without the copy: the result is a capacity-pinned
// subslice of id's backing array. It is safe to retain and to append
// to (the pinned capacity forces append to reallocate), but callers
// must not write its components in place. The SLCA hot loops use it to
// fold candidates without allocating per comparison.
func (id ID) PrefixLCA(other ID) ID {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && id[i] == other[i] {
		i++
	}
	return id[:i:i]
}

// String renders the ID in dotted form, e.g. "0.2.1". The root renders
// as "/".
func (id ID) String() string {
	if len(id) == 0 {
		return "/"
	}
	var b strings.Builder
	for i, c := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Parse parses the dotted form produced by String. It accepts "/" (or
// the empty string) for the root.
func Parse(s string) (ID, error) {
	if s == "/" || s == "" {
		return Root(), nil
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("dewey: parse %q: component %d: %w", s, i, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("dewey: parse %q: negative component %d", s, i)
		}
		id[i] = v
	}
	return id, nil
}

// CommonPrefixLen returns the length of the longest common prefix of
// the two IDs, which is also the level of their LCA.
func CommonPrefixLen(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// SortIDs is a helper ordering for slices of IDs in document order.
// It reports whether a sorts before b.
func SortIDs(a, b ID) bool { return a.Compare(b) < 0 }
