package dewey

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	r := Root()
	if r.Level() != 0 {
		t.Fatalf("root level = %d, want 0", r.Level())
	}
	if _, ok := r.Parent(); ok {
		t.Fatal("root must not have a parent")
	}
	if got := r.String(); got != "/" {
		t.Fatalf("root String() = %q, want /", got)
	}
}

func TestChildParentRoundTrip(t *testing.T) {
	id := New(3, 1, 4)
	child := id.Child(5)
	if child.Level() != 4 {
		t.Fatalf("child level = %d, want 4", child.Level())
	}
	parent, ok := child.Parent()
	if !ok {
		t.Fatal("child must have a parent")
	}
	if !parent.Equal(id) {
		t.Fatalf("parent = %v, want %v", parent, id)
	}
}

func TestChildDoesNotAliasParent(t *testing.T) {
	id := New(1, 2)
	c0 := id.Child(0)
	c1 := id.Child(9)
	if c0[2] != 0 || c1[2] != 9 {
		t.Fatalf("children alias storage: %v %v", c0, c1)
	}
	if id.Level() != 2 {
		t.Fatalf("parent mutated: %v", id)
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{Root(), Root(), 0},
		{Root(), New(0), -1},
		{New(0), Root(), 1},
		{New(0), New(1), -1},
		{New(0, 5), New(0, 5), 0},
		{New(0, 5), New(0, 6), -1},
		{New(1), New(0, 9, 9), 1},
		{New(0, 1), New(0, 1, 0), -1}, // ancestor precedes descendant
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestAncestry(t *testing.T) {
	a := New(0, 2)
	d := New(0, 2, 7, 1)
	if !a.IsAncestorOf(d) {
		t.Fatal("a should be ancestor of d")
	}
	if d.IsAncestorOf(a) {
		t.Fatal("d must not be ancestor of a")
	}
	if a.IsAncestorOf(a) {
		t.Fatal("IsAncestorOf must be proper")
	}
	if !a.IsAncestorOrSelf(a) {
		t.Fatal("IsAncestorOrSelf must include self")
	}
	if New(0, 3).IsAncestorOf(d) {
		t.Fatal("sibling branch is not an ancestor")
	}
	if !Root().IsAncestorOf(d) {
		t.Fatal("root is an ancestor of every non-root node")
	}
}

func TestLCA(t *testing.T) {
	cases := []struct {
		a, b, want ID
	}{
		{New(0, 1, 2), New(0, 1, 3), New(0, 1)},
		{New(0, 1, 2), New(0, 1, 2, 5), New(0, 1, 2)},
		{New(0), New(1), Root()},
		{New(2, 2), New(2, 2), New(2, 2)},
		{Root(), New(4, 4), Root()},
	}
	for _, c := range cases {
		got := c.a.LCA(c.b)
		if !got.Equal(c.want) {
			t.Errorf("LCA(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		rev := c.b.LCA(c.a)
		if !rev.Equal(c.want) {
			t.Errorf("LCA not symmetric: LCA(%v,%v) = %v", c.b, c.a, rev)
		}
		if p := c.a.PrefixLCA(c.b); !p.Equal(c.want) {
			t.Errorf("PrefixLCA(%v,%v) = %v, want %v", c.a, c.b, p, c.want)
		}
	}
}

// TestPrefixLCACapPinned: PrefixLCA results share the receiver's
// backing array but pin capacity, so appending to the result cannot
// overwrite the receiver's later components.
func TestPrefixLCACapPinned(t *testing.T) {
	a := New(0, 1, 2)
	p := a.PrefixLCA(New(0, 1, 9))
	if cap(p) != len(p) {
		t.Fatalf("cap(%v) = %d, want pinned to len %d", p, cap(p), len(p))
	}
	_ = append(p, 77)
	if !a.Equal(New(0, 1, 2)) {
		t.Fatalf("append through PrefixLCA result mutated receiver: %v", a)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, id := range []ID{Root(), New(0), New(1, 0, 7), New(12, 345, 6)} {
		s := id.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !back.Equal(id) {
			t.Fatalf("round trip %v -> %q -> %v", id, s, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"a", "0.x", "-1", "0.-2", "0..1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseEmptyIsRoot(t *testing.T) {
	id, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if id.Level() != 0 {
		t.Fatalf("Parse(\"\") = %v, want root", id)
	}
}

func randomID(r *rand.Rand, maxDepth, maxFanout int) ID {
	depth := r.Intn(maxDepth + 1)
	id := make(ID, depth)
	for i := range id {
		id[i] = r.Intn(maxFanout)
	}
	return id
}

func TestPropCompareAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := randomID(r, 6, 4)
		b := randomID(r, 6, 4)
		if sign(a.Compare(b)) != -sign(b.Compare(a)) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
	}
}

func TestPropCompareTransitiveViaSort(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ids := make([]ID, 500)
	for i := range ids {
		ids[i] = randomID(r, 5, 5)
	}
	sort.Slice(ids, func(i, j int) bool { return SortIDs(ids[i], ids[j]) })
	for i := 1; i < len(ids); i++ {
		if ids[i-1].Compare(ids[i]) > 0 {
			t.Fatalf("sort produced out-of-order pair at %d: %v > %v", i, ids[i-1], ids[i])
		}
	}
}

func TestPropLCAIsCommonAncestor(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randomID(r, 6, 4)
		b := randomID(r, 6, 4)
		l := a.LCA(b)
		if !l.IsAncestorOrSelf(a) || !l.IsAncestorOrSelf(b) {
			t.Fatalf("LCA(%v,%v)=%v is not a common ancestor", a, b, l)
		}
		// Lowest: extending the LCA by one step along a (if possible)
		// must fail to be an ancestor-or-self of b unless a==b prefix.
		if len(l) < len(a) && len(l) < len(b) {
			deeper := l.Child(a[len(l)])
			if deeper.IsAncestorOrSelf(b) {
				t.Fatalf("LCA(%v,%v)=%v is not lowest", a, b, l)
			}
		}
	}
}

func TestPropLCALevelEqualsCommonPrefixLen(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := make(ID, len(aRaw)%7)
		for i := range a {
			a[i] = int(aRaw[i%maxInt(1, len(aRaw))] % 5)
		}
		b := make(ID, len(bRaw)%7)
		for i := range b {
			b[i] = int(bRaw[i%maxInt(1, len(bRaw))] % 5)
		}
		return a.LCA(b).Level() == CommonPrefixLen(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCloneIndependent(t *testing.T) {
	a := New(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func BenchmarkCompare(b *testing.B) {
	x := New(0, 1, 2, 3, 4, 5, 6, 7)
	y := New(0, 1, 2, 3, 4, 5, 6, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkLCA(b *testing.B) {
	x := New(0, 1, 2, 3, 4, 5, 6, 7)
	y := New(0, 1, 2, 3, 9, 9, 9, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.LCA(y)
	}
}
